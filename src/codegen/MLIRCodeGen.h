//===- MLIRCodeGen.h - Ionic model to IR code generation --------*- C++-*-===//
//
// The limpetMLIR code generator: lowers an analyzed ionic model to an IR
// kernel function that computes one time step for a range of cells
// (paper Sec. 3.3). The emitted kernel is scalar (one cell per iteration);
// the vectorizer (Vectorize.h) rewrites it to W cells per iteration.
//
// Pipeline:  ModelInfo -> preprocessor -> integrator expansion ->
//            LUT extraction -> IR emission -> optimization passes.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_CODEGEN_MLIRCODEGEN_H
#define LIMPET_CODEGEN_MLIRCODEGEN_H

#include "codegen/KernelSpec.h"
#include "codegen/LutAnalysis.h"
#include "easyml/ModelInfo.h"
#include "ir/Context.h"
#include "ir/IR.h"
#include "transforms/Pass.h"

#include <memory>
#include <string>

namespace limpet {
namespace codegen {

/// The integrator-expanded, LUT-extracted program of one model.
struct ModelProgram {
  easyml::ModelInfo Info;
  /// Next-value expression per state variable (aligned with
  /// Info.StateVars), in terms of old state/externals/params and __dt/__t.
  std::vector<easyml::ExprPtr> StateUpdates;
  /// Value expression per external (aligned with Info.Externals; null for
  /// externals the model does not compute).
  std::vector<easyml::ExprPtr> ExternalUpdates;
  LutPlan Luts;
};

/// Builds the update program: runs the preprocessor, expands integrators
/// and extracts LUT columns (if \p EnableLuts).
ModelProgram buildModelProgram(const easyml::ModelInfo &Info,
                               bool EnableLuts = true);

/// Code generation options.
struct CodeGenOptions {
  StateLayout Layout = StateLayout::AoS;
  /// Block width of the AoSoA layout (must match the engine's SIMD width
  /// and the runtime allocation). Ignored for AoS/SoA.
  unsigned AoSoABlockWidth = 8;
  bool EnableLuts = true;
  /// Emit Catmull-Rom cubic LUT interpolation instead of linear (the
  /// spline variant the paper lists as future work).
  bool CubicLut = false;
  /// Run the default optimization pipeline on the generated function.
  bool RunPasses = true;
};

/// A generated kernel: the module owning @compute plus everything needed
/// to execute it.
struct GeneratedKernel {
  std::shared_ptr<ir::Context> Ctx;
  std::unique_ptr<ir::Module> Mod;
  ir::Operation *ScalarFunc = nullptr; ///< @compute (one cell per iteration)
  KernelABI Abi;
  ModelProgram Program;
  CodeGenOptions Options;
  /// Per-pass wall time and op counts of the optimization pipeline (empty
  /// when Options.RunPasses was off). Rendered by `limpetc --stats`.
  transforms::PassStatistics PassStats;
};

/// Generates the scalar kernel for \p Info. Asserts the model is valid
/// (run Sema first).
GeneratedKernel generateKernel(const easyml::ModelInfo &Info,
                               const CodeGenOptions &Options);

} // namespace codegen
} // namespace limpet

#endif // LIMPET_CODEGEN_MLIRCODEGEN_H
