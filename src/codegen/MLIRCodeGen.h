//===- MLIRCodeGen.h - Ionic model to IR code generation --------*- C++-*-===//
//
// The limpetMLIR code generator: lowers an analyzed ionic model to an IR
// kernel function that computes one time step for a range of cells
// (paper Sec. 3.3). The emitted kernel is scalar (one cell per iteration);
// the vectorizer (Vectorize.h) rewrites it to W cells per iteration.
//
// Pipeline:  ModelInfo -> preprocessor -> integrator expansion ->
//            LUT extraction -> IR emission -> optimization passes.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_CODEGEN_MLIRCODEGEN_H
#define LIMPET_CODEGEN_MLIRCODEGEN_H

#include "codegen/KernelSpec.h"
#include "codegen/LutAnalysis.h"
#include "easyml/ModelInfo.h"
#include "ir/Context.h"
#include "ir/IR.h"
#include "support/Status.h"
#include "transforms/Pass.h"

#include <memory>
#include <string>

namespace limpet {
namespace codegen {

/// The integrator-expanded, LUT-extracted program of one model.
struct ModelProgram {
  easyml::ModelInfo Info;
  /// Next-value expression per state variable (aligned with
  /// Info.StateVars), in terms of old state/externals/params and __dt/__t.
  std::vector<easyml::ExprPtr> StateUpdates;
  /// Value expression per external (aligned with Info.Externals; null for
  /// externals the model does not compute).
  std::vector<easyml::ExprPtr> ExternalUpdates;
  LutPlan Luts;
};

/// Builds the update program: runs the preprocessor, expands integrators
/// and extracts LUT columns (if \p EnableLuts). Composes the three staged
/// entry points below; the CompilerDriver runs them individually so each
/// stage gets its own telemetry span and IR snapshot.
ModelProgram buildModelProgram(const easyml::ModelInfo &Info,
                               bool EnableLuts = true);

/// Stage "preprocess": copies \p Info into \p P and runs the preprocessor
/// over the copy.
void preprocessProgram(ModelProgram &P, const easyml::ModelInfo &Info);

/// Stage "integrator": expands every state variable's temporal
/// discretization into a next-value expression (and collects computed
/// external updates). Requires preprocessProgram to have run.
void expandIntegrators(ModelProgram &P);

/// Stage "lut-analysis": extracts LUT table columns from the update
/// expressions (rewriting them in place). Requires expandIntegrators to
/// have run. No-op plan when \p EnableLuts is false.
void analyzeLutTables(ModelProgram &P, bool EnableLuts);

/// Code generation options.
struct CodeGenOptions {
  StateLayout Layout = StateLayout::AoS;
  /// Block width of the AoSoA layout (must match the engine's SIMD width
  /// and the runtime allocation). Ignored for AoS/SoA.
  unsigned AoSoABlockWidth = 8;
  bool EnableLuts = true;
  /// Emit Catmull-Rom cubic LUT interpolation instead of linear (the
  /// spline variant the paper lists as future work).
  bool CubicLut = false;
  /// Run the optimization pipeline on the generated function.
  bool RunPasses = true;
  /// Pipeline string for the optimization stage (see
  /// transforms::parsePassPipeline). Empty selects the default pipeline.
  /// Ignored when RunPasses is off.
  std::string PassPipeline;
};

/// A generated kernel: the module owning @compute plus everything needed
/// to execute it.
struct GeneratedKernel {
  std::shared_ptr<ir::Context> Ctx;
  std::unique_ptr<ir::Module> Mod;
  ir::Operation *ScalarFunc = nullptr; ///< @compute (one cell per iteration)
  KernelABI Abi;
  ModelProgram Program;
  CodeGenOptions Options;
  /// Per-pass wall time and op counts of the optimization pipeline (empty
  /// when Options.RunPasses was off). Rendered by `limpetc --stats`.
  transforms::PassStatistics PassStats;
  /// Outcome of the optimization pipeline(s) run on this kernel. An error
  /// here means a pass broke IR verification (or the pipeline string did
  /// not parse); the kernel must not be executed. Callers that go through
  /// the CompilerDriver get this surfaced as a recoverable compile error.
  Status PipelineStatus;
};

/// Generates the scalar kernel for \p Info. Asserts the model is valid
/// (run Sema first). A pipeline failure is recorded in the returned
/// kernel's PipelineStatus rather than asserted.
GeneratedKernel generateKernel(const easyml::ModelInfo &Info,
                               const CodeGenOptions &Options);

/// Stage "emit-ir": emits the scalar @compute kernel for an already-built
/// program. Runs no optimization passes (stage "opt" is separate); the
/// returned kernel owns \p Program moved into it.
GeneratedKernel emitKernelIR(ModelProgram Program,
                             const CodeGenOptions &Options);

/// Stage "opt": runs \p Options' pass pipeline (default pipeline when the
/// string is empty) over \p Func, accumulating statistics into
/// \p K.PassStats and recording the outcome in K.PipelineStatus. Returns
/// the pipeline outcome; a failure leaves the function in its broken state
/// and must be treated as a compile error.
Status optimizeKernelFunc(GeneratedKernel &K, ir::Operation *Func);

} // namespace codegen
} // namespace limpet

#endif // LIMPET_CODEGEN_MLIRCODEGEN_H
