//===- MLIRCodeGen.cpp ----------------------------------------------------===//

#include "codegen/MLIRCodeGen.h"

#include "codegen/Integrators.h"
#include "dialects/Dialects.h"
#include "easyml/Preprocessor.h"
#include "support/Casting.h"
#include "support/Telemetry.h"
#include "support/Trace.h"
#include "transforms/FoldUtils.h"
#include "transforms/Pass.h"

#include <map>

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::easyml;
using namespace limpet::ir;

//===----------------------------------------------------------------------===//
// Program construction
//===----------------------------------------------------------------------===//

void codegen::preprocessProgram(ModelProgram &P, const ModelInfo &Info) {
  P.Info = Info;
  preprocessModel(P.Info);
}

void codegen::expandIntegrators(ModelProgram &P) {
  P.StateUpdates.clear();
  P.ExternalUpdates.clear();
  for (const StateVarInfo &SV : P.Info.StateVars) {
    ExprPtr Update = buildUpdateExpr(SV);
    // Fold the constants the expansion introduced (dt/2 etc. stay runtime,
    // but e.g. markov_be clamps produce foldable subtrees).
    P.StateUpdates.push_back(foldConstants(Update));
  }
  for (const ExternalInfo &Ext : P.Info.Externals)
    P.ExternalUpdates.push_back(Ext.IsComputed ? Ext.Value : nullptr);
}

void codegen::analyzeLutTables(ModelProgram &P, bool EnableLuts) {
  std::vector<ExprPtr *> Roots;
  for (ExprPtr &E : P.StateUpdates)
    Roots.push_back(&E);
  for (ExprPtr &E : P.ExternalUpdates)
    if (E)
      Roots.push_back(&E);
  P.Luts = extractLuts(P.Info, Roots, EnableLuts);
}

ModelProgram codegen::buildModelProgram(const ModelInfo &InfoIn,
                                        bool EnableLuts) {
  ModelProgram P;
  preprocessProgram(P, InfoIn);
  expandIntegrators(P);
  analyzeLutTables(P, EnableLuts);
  return P;
}

//===----------------------------------------------------------------------===//
// IR emission
//===----------------------------------------------------------------------===//

namespace {

/// Emits the loop body of the compute kernel for one model program.
class BodyEmitter {
public:
  BodyEmitter(OpBuilder &B, const ModelProgram &Program, const KernelABI &Abi,
              StateLayout Layout, Block &FuncEntry, Value *Iv)
      : B(B), Program(Program), Abi(Abi), Layout(Layout),
        FuncEntry(FuncEntry), Iv(Iv) {}

  /// Emits loads, the full expression DAG, and the final stores.
  void emitBody() {
    // New values first (they reference only old loads), stores last, so
    // the state update is simultaneous across variables.
    std::vector<Value *> NewState(Program.Info.StateVars.size());
    std::vector<Value *> NewExt(Program.Info.Externals.size(), nullptr);

    for (size_t J = 0; J != Program.Info.Externals.size(); ++J)
      if (Program.ExternalUpdates[J])
        NewExt[J] = ensureFloat(emit(Program.ExternalUpdates[J]));
    for (size_t K = 0; K != Program.Info.StateVars.size(); ++K)
      NewState[K] = ensureFloat(emit(Program.StateUpdates[K]));

    for (size_t K = 0; K != Program.Info.StateVars.size(); ++K) {
      Operation *Store =
          B.create(OpCode::MemStore,
                   {NewState[K], stateMemRef(), stateIndexValue(K)}, {});
      Store->setAttr(attrs::Role, Attribute::makeString("state"));
      Store->setAttr(attrs::Index, Attribute::makeInt(int64_t(K)));
    }
    for (size_t J = 0; J != Program.Info.Externals.size(); ++J) {
      if (!NewExt[J])
        continue;
      Operation *Store =
          B.create(OpCode::MemStore, {NewExt[J], extMemRef(unsigned(J)), Iv},
                   {});
      Store->setAttr(attrs::Role, Attribute::makeString("ext"));
      Store->setAttr(attrs::Index, Attribute::makeInt(int64_t(J)));
    }
  }

private:
  OpBuilder &B;
  const ModelProgram &Program;
  const KernelABI &Abi;
  StateLayout Layout;
  Block &FuncEntry;
  Value *Iv;

  std::map<const Expr *, Value *> Memo;
  std::map<std::string, Value *> VarValues;
  std::map<int, std::pair<Value *, Value *>> LutCoords; // table -> idx,frac

  Context &ctx() { return B.context(); }

  Value *stateMemRef() { return FuncEntry.argument(Abi.stateArg()); }
  Value *extMemRef(unsigned J) {
    return FuncEntry.argument(Abi.externalArg(J));
  }
  Value *paramsMemRef() { return FuncEntry.argument(Abi.paramsArg()); }
  Value *numCellsValue() { return FuncEntry.argument(Abi.numCellsArg()); }
  Value *dtValue() { return FuncEntry.argument(Abi.dtArg()); }
  Value *tValue() { return FuncEntry.argument(Abi.tArg()); }

  /// Emits the flat state index of (Iv, Sv) for the active layout. The
  /// vectorizer recognizes accesses by their role attributes and rebuilds
  /// the addressing, so this scalar chain is only executed by the scalar
  /// engine (and the vector engine's epilogue).
  Value *stateIndexValue(size_t Sv) {
    int64_t NumSv = int64_t(Program.Info.StateVars.size());
    switch (Layout) {
    case StateLayout::AoS: {
      Value *Base = makeMulI(B, Iv, makeConstantI(B, NumSv));
      return makeAddI(B, Base, makeConstantI(B, int64_t(Sv)));
    }
    case StateLayout::SoA: {
      Value *Col = makeMulI(B, makeConstantI(B, int64_t(Sv)),
                            numCellsValue());
      return makeAddI(B, Col, Iv);
    }
    case StateLayout::AoSoA: {
      // Block size equals the SIMD width the state was laid out for; the
      // runtime fixes it to the engine's width. Use the layout's W here.
      int64_t W = int64_t(AoSoABlock);
      Value *Block = makeDivI(B, Iv, makeConstantI(B, W));
      Value *Lane = makeRemI(B, Iv, makeConstantI(B, W));
      Value *Base = makeMulI(B, Block, makeConstantI(B, NumSv * W));
      Value *Col = makeAddI(
          B, Base, makeConstantI(B, int64_t(Sv) * W));
      return makeAddI(B, Col, Lane);
    }
    }
    limpet_unreachable("invalid layout");
  }

public:
  /// AoSoA block width used for scalar addressing; set by the caller
  /// before emitBody when Layout == AoSoA.
  unsigned AoSoABlock = 8;
  /// Emit cubic (Catmull-Rom) LUT interpolation.
  bool CubicLut = false;

private:
  Value *loadStateVar(size_t Sv) {
    Operation *Load = B.create(
        OpCode::MemLoad, {stateMemRef(), stateIndexValue(Sv)}, {ctx().f64()});
    Load->setAttr(attrs::Role, Attribute::makeString("state"));
    Load->setAttr(attrs::Index, Attribute::makeInt(int64_t(Sv)));
    return Load->result();
  }

  Value *loadExternal(size_t J) {
    Operation *Load =
        B.create(OpCode::MemLoad, {extMemRef(unsigned(J)), Iv},
                 {ctx().f64()});
    Load->setAttr(attrs::Role, Attribute::makeString("ext"));
    Load->setAttr(attrs::Index, Attribute::makeInt(int64_t(J)));
    return Load->result();
  }

  Value *loadParam(size_t P) {
    Operation *Load = B.create(
        OpCode::MemLoad, {paramsMemRef(), makeConstantI(B, int64_t(P))},
        {ctx().f64()});
    Load->setAttr(attrs::Role, Attribute::makeString("param"));
    Load->setAttr(attrs::Index, Attribute::makeInt(int64_t(P)));
    return Load->result();
  }

  /// Resolves a variable reference to its loaded value (cached).
  Value *varValue(const std::string &Name) {
    auto It = VarValues.find(Name);
    if (It != VarValues.end())
      return It->second;
    Value *V = nullptr;
    if (Name == DtVarName) {
      V = dtValue();
    } else if (Name == TimeVarName) {
      V = tValue();
    } else if (int Idx = Program.Info.stateVarIndex(Name); Idx >= 0) {
      V = loadStateVar(size_t(Idx));
    } else if (int Idx2 = Program.Info.externalIndex(Name); Idx2 >= 0) {
      V = loadExternal(size_t(Idx2));
    } else if (int Idx3 = Program.Info.paramIndex(Name); Idx3 >= 0) {
      V = loadParam(size_t(Idx3));
    } else {
      limpet_unreachable(
          ("unresolved variable '" + Name + "' in codegen").c_str());
    }
    VarValues.emplace(Name, V);
    return V;
  }

  /// Returns the (idx, frac) pair for a LUT, emitting lut.coord once.
  std::pair<Value *, Value *> lutCoord(int Table) {
    auto It = LutCoords.find(Table);
    if (It != LutCoords.end())
      return It->second;
    const LutTablePlan &Plan = Program.Luts.Tables[size_t(Table)];
    Value *X = varValue(Plan.Spec.VarName);
    Operation *Coord = makeLutCoord(B, X, Table);
    auto Pair = std::make_pair(Coord->result(0), Coord->result(1));
    LutCoords.emplace(Table, Pair);
    return Pair;
  }

  Value *ensureFloat(Value *V) {
    if (V->type().isF64())
      return V;
    assert(V->type().isI1() && "expected a scalar bool");
    return makeSelect(B, V, makeConstantF(B, 1.0), makeConstantF(B, 0.0));
  }

  Value *ensureBool(Value *V) {
    if (V->type().isI1())
      return V;
    assert(V->type().isF64() && "expected a scalar float");
    return makeCmpF(B, CmpPredicate::NE, V, makeConstantF(B, 0.0));
  }

  /// Emits \p E; memoized on node identity, so the shared subtrees the
  /// integrator expansion creates are emitted exactly once.
  Value *emit(const ExprPtr &E) {
    auto It = Memo.find(E.get());
    if (It != Memo.end())
      return It->second;
    Value *V = emitImpl(*E);
    Memo.emplace(E.get(), V);
    return V;
  }

  Value *emitImpl(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Number:
      return makeConstantF(B, E.NumberValue);
    case ExprKind::VarRef:
      return varValue(E.VarName);
    case ExprKind::LutRef: {
      auto [Idx, Frac] = lutCoord(E.LutTable);
      Value *V = makeLutInterp(B, Idx, Frac, E.LutTable, E.LutCol);
      if (CubicLut)
        cast<OpResult>(V)->owner()->setAttr(
            "interp", Attribute::makeString("cubic"));
      return V;
    }
    case ExprKind::Unary: {
      if (E.UnOp == UnaryOp::Neg)
        return makeNegF(B, ensureFloat(emit(E.Operands[0])));
      // Logical not: xor with true.
      Value *A = ensureBool(emit(E.Operands[0]));
      Value *True = transforms::materializeConstant(
          B, Attribute::makeBool(true), ctx().i1());
      return makeXOrI(B, A, True);
    }
    case ExprKind::Binary:
      return emitBinary(E);
    case ExprKind::Ternary: {
      Value *Cond = ensureBool(emit(E.Operands[0]));
      Value *A = ensureFloat(emit(E.Operands[1]));
      Value *Bv = ensureFloat(emit(E.Operands[2]));
      return makeSelect(B, Cond, A, Bv);
    }
    case ExprKind::Call:
      return emitCall(E);
    }
    limpet_unreachable("invalid expr kind");
  }

  Value *emitBinary(const Expr &E) {
    switch (E.BinOp) {
    case BinaryOp::Add:
    case BinaryOp::Sub:
    case BinaryOp::Mul:
    case BinaryOp::Div: {
      Value *L = ensureFloat(emit(E.Operands[0]));
      Value *R = ensureFloat(emit(E.Operands[1]));
      OpCode Code = E.BinOp == BinaryOp::Add   ? OpCode::ArithAddF
                    : E.BinOp == BinaryOp::Sub ? OpCode::ArithSubF
                    : E.BinOp == BinaryOp::Mul ? OpCode::ArithMulF
                                               : OpCode::ArithDivF;
      return makeFloatBinOp(B, Code, L, R);
    }
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne: {
      Value *L = ensureFloat(emit(E.Operands[0]));
      Value *R = ensureFloat(emit(E.Operands[1]));
      CmpPredicate Pred = E.BinOp == BinaryOp::Lt   ? CmpPredicate::LT
                          : E.BinOp == BinaryOp::Le ? CmpPredicate::LE
                          : E.BinOp == BinaryOp::Gt ? CmpPredicate::GT
                          : E.BinOp == BinaryOp::Ge ? CmpPredicate::GE
                          : E.BinOp == BinaryOp::Eq ? CmpPredicate::EQ
                                                    : CmpPredicate::NE;
      return makeCmpF(B, Pred, L, R);
    }
    case BinaryOp::And:
      return makeAndI(B, ensureBool(emit(E.Operands[0])),
                      ensureBool(emit(E.Operands[1])));
    case BinaryOp::Or:
      return makeOrI(B, ensureBool(emit(E.Operands[0])),
                     ensureBool(emit(E.Operands[1])));
    }
    limpet_unreachable("invalid binary op");
  }

  Value *emitCall(const Expr &E) {
    Value *A = ensureFloat(emit(E.Operands[0]));
    switch (E.Fn) {
    case BuiltinFn::Exp:
      return makeMathUnary(B, OpCode::MathExp, A);
    case BuiltinFn::Expm1:
      return makeMathUnary(B, OpCode::MathExpm1, A);
    case BuiltinFn::Log:
      return makeMathUnary(B, OpCode::MathLog, A);
    case BuiltinFn::Log10:
      return makeMathUnary(B, OpCode::MathLog10, A);
    case BuiltinFn::Sqrt:
      return makeMathUnary(B, OpCode::MathSqrt, A);
    case BuiltinFn::Sin:
      return makeMathUnary(B, OpCode::MathSin, A);
    case BuiltinFn::Cos:
      return makeMathUnary(B, OpCode::MathCos, A);
    case BuiltinFn::Tan:
      return makeMathUnary(B, OpCode::MathTan, A);
    case BuiltinFn::Tanh:
      return makeMathUnary(B, OpCode::MathTanh, A);
    case BuiltinFn::Sinh:
      return makeMathUnary(B, OpCode::MathSinh, A);
    case BuiltinFn::Cosh:
      return makeMathUnary(B, OpCode::MathCosh, A);
    case BuiltinFn::Atan:
      return makeMathUnary(B, OpCode::MathAtan, A);
    case BuiltinFn::Asin:
      return makeMathUnary(B, OpCode::MathAsin, A);
    case BuiltinFn::Acos:
      return makeMathUnary(B, OpCode::MathAcos, A);
    case BuiltinFn::Fabs:
      return makeMathUnary(B, OpCode::MathAbs, A);
    case BuiltinFn::Floor:
      return makeMathUnary(B, OpCode::MathFloor, A);
    case BuiltinFn::Ceil:
      return makeMathUnary(B, OpCode::MathCeil, A);
    case BuiltinFn::Square:
      return makeMulF(B, A, A);
    case BuiltinFn::Cube:
      return makeMulF(B, makeMulF(B, A, A), A);
    case BuiltinFn::Pow:
      return makePow(B, A, ensureFloat(emit(E.Operands[1])));
    }
    limpet_unreachable("invalid builtin");
  }
};

} // namespace

GeneratedKernel codegen::emitKernelIR(ModelProgram Program,
                                      const CodeGenOptions &Options) {
  telemetry::TraceSpan Span("codegen:" + Program.Info.Name, "compile");
  telemetry::ScopedTimerNs Timer("compile.codegen.ns");
  GeneratedKernel K;
  K.Ctx = std::make_shared<Context>();
  K.Mod = std::make_unique<Module>();
  K.Options = Options;
  K.Program = std::move(Program);
  for (const LutTablePlan &Plan : K.Program.Luts.Tables) {
    telemetry::counter("compile.lut.tables").add(1);
    telemetry::counter("compile.lut.columns").add(Plan.Columns.size());
    telemetry::counter("compile.lut.rows")
        .add(uint64_t(Plan.Spec.numRows()) * Plan.Columns.size());
  }

  K.Abi.NumExternals = unsigned(K.Program.Info.Externals.size());
  K.Abi.NumParams = unsigned(K.Program.Info.Params.size());
  K.Abi.NumStateVars = unsigned(K.Program.Info.StateVars.size());

  Context &Ctx = *K.Ctx;
  std::vector<Type> ArgTypes(K.Abi.numArgs());
  ArgTypes[K.Abi.stateArg()] = Ctx.memref();
  for (unsigned J = 0; J != K.Abi.NumExternals; ++J)
    ArgTypes[K.Abi.externalArg(J)] = Ctx.memref();
  ArgTypes[K.Abi.paramsArg()] = Ctx.memref();
  ArgTypes[K.Abi.startArg()] = Ctx.i64();
  ArgTypes[K.Abi.endArg()] = Ctx.i64();
  ArgTypes[K.Abi.numCellsArg()] = Ctx.i64();
  ArgTypes[K.Abi.dtArg()] = Ctx.f64();
  ArgTypes[K.Abi.tArg()] = Ctx.f64();

  auto Func = makeFunction(Ctx, "compute", ArgTypes);
  Func->setAttr(attrs::Layout, Attribute::makeString(
                                   std::string(stateLayoutName(Options.Layout))));
  Func->setAttr(attrs::NumSv, Attribute::makeInt(K.Abi.NumStateVars));
  Block &Entry = funcBody(Func.get());

  OpBuilder B(Ctx);
  B.setInsertionPointToEnd(&Entry);
  Value *Step = makeConstantI(B, 1);
  Operation *For =
      makeFor(B, Entry.argument(K.Abi.startArg()),
              Entry.argument(K.Abi.endArg()), Step);
  For->setAttr(attrs::CellLoop, Attribute::makeBool(true));
  Block &Body = forBody(For);

  OpBuilder BodyB(Ctx);
  BodyB.setInsertionPointToEnd(&Body);
  BodyEmitter Emitter(BodyB, K.Program, K.Abi, Options.Layout, Entry,
                      Body.argument(0));
  Emitter.AoSoABlock = Options.AoSoABlockWidth;
  Emitter.CubicLut = Options.CubicLut;
  Emitter.emitBody();
  makeYield(BodyB, {});

  makeReturn(B);

  K.ScalarFunc = K.Mod->addFunction(std::move(Func));
  return K;
}

Status codegen::optimizeKernelFunc(GeneratedKernel &K, ir::Operation *Func) {
  telemetry::ScopedTimerNs Timer("compile.opt.ns");
  transforms::PassManager PM(*K.Ctx);
  std::string_view Spec = K.Options.PassPipeline.empty()
                              ? transforms::defaultPassPipelineSpec()
                              : std::string_view(K.Options.PassPipeline);
  if (Status S = transforms::parsePassPipeline(Spec, PM); !S) {
    K.PipelineStatus = S;
    return S;
  }
  if (!PM.run(Func)) {
    // Recoverable: the caller (driver) reports this instead of executing a
    // kernel the verifier rejected. Release builds used to assert here and
    // silently continue on a broken kernel.
    Status S = Status::error(PM.errorMessage());
    K.PipelineStatus = S;
    // Keep whatever statistics accumulated before the failing pass; they
    // localize which pass broke the kernel in `limpetc --stats`.
    for (const transforms::PassStatistics::Entry &E :
         PM.statistics().Entries)
      K.PassStats.Entries.push_back(E);
    return S;
  }
  for (const transforms::PassStatistics::Entry &E : PM.statistics().Entries)
    K.PassStats.Entries.push_back(E);
  return Status::success();
}

GeneratedKernel codegen::generateKernel(const ModelInfo &Info,
                                        const CodeGenOptions &Options) {
  ModelProgram Program;
  {
    telemetry::TraceSpan ProgramSpan("build-program", "compile");
    Program = buildModelProgram(Info, Options.EnableLuts);
  }
  GeneratedKernel K = emitKernelIR(std::move(Program), Options);
  if (Options.RunPasses)
    (void)optimizeKernelFunc(K, K.ScalarFunc);
  return K;
}
