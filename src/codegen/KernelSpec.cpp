//===- KernelSpec.cpp -----------------------------------------------------===//

#include "codegen/KernelSpec.h"

#include "support/Casting.h"

using namespace limpet;
using namespace limpet::codegen;

std::string_view codegen::stateLayoutName(StateLayout L) {
  switch (L) {
  case StateLayout::AoS:
    return "aos";
  case StateLayout::SoA:
    return "soa";
  case StateLayout::AoSoA:
    return "aosoa";
  }
  limpet_unreachable("invalid layout");
}
