//===- KernelSpec.h - Kernel ABI and data layouts ---------------*- C++-*-===//
//
// Defines the calling convention of generated compute kernels and the cell
// state data layouts (the paper's data-layout transformation, Sec. 3.4.1).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_CODEGEN_KERNELSPEC_H
#define LIMPET_CODEGEN_KERNELSPEC_H

#include <cassert>
#include <cstdint>
#include <string>

namespace limpet {
namespace codegen {

/// Storage layout of per-cell state variables.
enum class StateLayout : uint8_t {
  AoS,   ///< array-of-structures: sv of one cell contiguous (openCARP)
  SoA,   ///< structure-of-arrays: one array per sv
  AoSoA, ///< array-of-structures-of-arrays, block = vector width (paper)
};

std::string_view stateLayoutName(StateLayout L);

/// Flat element index of (cell, sv) for a given layout.
///   AoS:    cell*NumSv + Sv
///   SoA:    Sv*NumCells + cell
///   AoSoA:  (cell/W)*NumSv*W + Sv*W + cell%W
inline int64_t stateIndex(StateLayout L, int64_t Cell, int64_t Sv,
                          int64_t NumSv, int64_t NumCells, int64_t W) {
  switch (L) {
  case StateLayout::AoS:
    return Cell * NumSv + Sv;
  case StateLayout::SoA:
    return Sv * NumCells + Cell;
  case StateLayout::AoSoA:
    return (Cell / W) * NumSv * W + Sv * W + Cell % W;
  }
  assert(false && "invalid layout");
  return 0;
}

/// The generated kernel's argument list (block arguments of @compute):
///   0             : state memref
///   1 .. NumExt   : one memref per external variable (per-cell arrays)
///   1+NumExt      : params memref
///   2+NumExt      : start cell (i64, inclusive)
///   3+NumExt      : end cell (i64, exclusive)
///   4+NumExt      : total number of cells (i64; SoA stride)
///   5+NumExt      : dt (f64)
///   6+NumExt      : t (f64)
struct KernelABI {
  unsigned NumExternals = 0;
  unsigned NumParams = 0;
  unsigned NumStateVars = 0;

  unsigned stateArg() const { return 0; }
  unsigned externalArg(unsigned I) const {
    assert(I < NumExternals && "external index out of range");
    return 1 + I;
  }
  unsigned paramsArg() const { return 1 + NumExternals; }
  unsigned startArg() const { return 2 + NumExternals; }
  unsigned endArg() const { return 3 + NumExternals; }
  unsigned numCellsArg() const { return 4 + NumExternals; }
  unsigned dtArg() const { return 5 + NumExternals; }
  unsigned tArg() const { return 6 + NumExternals; }
  unsigned numArgs() const { return 7 + NumExternals; }
};

/// Names of the op attributes the code generator attaches to state/external
/// accesses so the vectorizer can re-derive addressing for any layout.
namespace attrs {
inline constexpr const char *Role = "limpet.role"; // "state"|"ext"|"param"
inline constexpr const char *Index = "limpet.index"; // sv/ext/param number
inline constexpr const char *CellLoop = "limpet.cell_loop";
inline constexpr const char *Layout = "limpet.layout";
inline constexpr const char *NumSv = "limpet.num_sv";
inline constexpr const char *Width = "limpet.width";
} // namespace attrs

} // namespace codegen
} // namespace limpet

#endif // LIMPET_CODEGEN_KERNELSPEC_H
