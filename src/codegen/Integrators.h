//===- Integrators.h - Temporal discretization methods ----------*- C++-*-===//
//
// Expands each state variable's diff_X right-hand side into an expression
// for the variable's next value, according to its integration method
// (paper Sec. 3.3.2): fe, rk2, rk4, rush_larsen, sundnes and markov_be.
//
// The expansion is symbolic: midpoint evaluations substitute the state
// variable, and the Rush-Larsen family uses the symbolic derivative df/dX
// for the local linearization. The reserved variables "__dt" and "__t"
// denote the time step and current time.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_CODEGEN_INTEGRATORS_H
#define LIMPET_CODEGEN_INTEGRATORS_H

#include "easyml/ModelInfo.h"

namespace limpet {
namespace codegen {

/// Reserved variable names available to update expressions.
inline constexpr const char *DtVarName = "__dt";
inline constexpr const char *TimeVarName = "__t";

/// Threshold below which the Rush-Larsen family falls back to forward
/// Euler (|df/dy| too small for the exponential form to be stable in
/// division).
inline constexpr double RushLarsenEps = 1e-10;

/// Number of Newton iterations of the markov_be method.
inline constexpr int MarkovBENewtonIters = 3;

/// Builds the expression of the next value of \p SV from its inlined diff
/// expression. The result references old state/externals/params plus
/// __dt/__t.
easyml::ExprPtr buildUpdateExpr(const easyml::StateVarInfo &SV);

} // namespace codegen
} // namespace limpet

#endif // LIMPET_CODEGEN_INTEGRATORS_H
