//===- LutAnalysis.h - Lookup-table extraction ------------------*- C++-*-===//
//
// Implements openCARP's LUT acceleration at the AST level (paper Sec.
// 3.4.2): for every variable marked .lookup(lo,hi,step), maximal
// subexpressions that depend only on that variable (and on parameters,
// which are baked into the tables at initialization) are hoisted into
// table columns. At runtime one linear interpolation per column replaces
// the original math.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_CODEGEN_LUTANALYSIS_H
#define LIMPET_CODEGEN_LUTANALYSIS_H

#include "easyml/ModelInfo.h"

#include <vector>

namespace limpet {
namespace codegen {

/// One extracted table: the spec plus the column expressions (functions of
/// the lookup variable and parameters only).
struct LutTablePlan {
  easyml::LutSpec Spec;
  std::vector<easyml::ExprPtr> Columns;
};

/// All tables extracted from a model.
struct LutPlan {
  std::vector<LutTablePlan> Tables;

  bool empty() const { return Tables.empty(); }
  size_t totalColumns() const {
    size_t N = 0;
    for (const LutTablePlan &T : Tables)
      N += T.Columns.size();
    return N;
  }
};

/// Rewrites the expressions rooted at \p Roots in place, replacing
/// extracted subexpressions with LutRef nodes, and returns the plan. Runs
/// after integrator expansion so state-variable substitutions and symbolic
/// derivatives see the full expressions. When \p Enable is false returns an
/// empty plan and leaves the roots untouched (the "no-LUT" ablation
/// configuration).
LutPlan extractLuts(const easyml::ModelInfo &Info,
                    const std::vector<easyml::ExprPtr *> &Roots,
                    bool Enable = true);

} // namespace codegen
} // namespace limpet

#endif // LIMPET_CODEGEN_LUTANALYSIS_H
