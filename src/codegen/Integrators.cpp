//===- Integrators.cpp ----------------------------------------------------===//

#include "codegen/Integrators.h"

#include "easyml/SymbolicDiff.h"
#include "support/Casting.h"

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::easyml;

namespace {

ExprPtr num(double V) { return Expr::makeNumber(V); }
ExprPtr var(const char *Name) { return Expr::makeVarRef(Name); }

ExprPtr bin(BinaryOp Op, ExprPtr A, ExprPtr B) {
  return Expr::makeBinary(Op, std::move(A), std::move(B));
}
ExprPtr add(ExprPtr A, ExprPtr B) {
  return bin(BinaryOp::Add, std::move(A), std::move(B));
}
ExprPtr sub(ExprPtr A, ExprPtr B) {
  return bin(BinaryOp::Sub, std::move(A), std::move(B));
}
ExprPtr mul(ExprPtr A, ExprPtr B) {
  return bin(BinaryOp::Mul, std::move(A), std::move(B));
}
ExprPtr div(ExprPtr A, ExprPtr B) {
  return bin(BinaryOp::Div, std::move(A), std::move(B));
}

ExprPtr dt() { return var(DtVarName); }

/// f with X replaced by \p NewX.
ExprPtr fAt(const ExprPtr &F, const std::string &X, const ExprPtr &NewX) {
  return substitute(F, X, NewX);
}

/// Forward Euler: x + dt*f.
ExprPtr buildFE(const ExprPtr &F, const ExprPtr &X) {
  return add(X, mul(dt(), F));
}

/// Explicit midpoint (rk2): x + dt * f(x + dt/2 * f(x)).
ExprPtr buildRK2(const ExprPtr &F, const std::string &Name,
                 const ExprPtr &X) {
  ExprPtr XMid = add(X, mul(mul(dt(), num(0.5)), F));
  ExprPtr K2 = fAt(F, Name, XMid);
  return add(X, mul(dt(), K2));
}

/// Classic rk4.
ExprPtr buildRK4(const ExprPtr &F, const std::string &Name,
                 const ExprPtr &X) {
  ExprPtr HalfDt = mul(dt(), num(0.5));
  ExprPtr K1 = F;
  ExprPtr K2 = fAt(F, Name, add(X, mul(HalfDt, K1)));
  ExprPtr K3 = fAt(F, Name, add(X, mul(HalfDt, K2)));
  ExprPtr K4 = fAt(F, Name, add(X, mul(dt(), K3)));
  ExprPtr Sum = add(add(K1, mul(num(2), K2)), add(mul(num(2), K3), K4));
  return add(X, mul(mul(dt(), num(1.0 / 6.0)), Sum));
}

/// Rush-Larsen step from \p X with rhs \p FVal and local slope \p BVal:
///   |b| < eps ? x + dt*f : x + (f/b) * expm1(b*dt)
/// Exact for linear gates f = (x_inf - x)/tau; the general form is the
/// exponential integrator on the frozen linearization.
ExprPtr rushLarsenStep(const ExprPtr &X, const ExprPtr &FVal,
                       const ExprPtr &BVal, const ExprPtr &StepDt) {
  ExprPtr Small = bin(BinaryOp::Lt,
                      Expr::makeCall(BuiltinFn::Fabs, {BVal}),
                      num(RushLarsenEps));
  ExprPtr Euler = add(X, mul(StepDt, FVal));
  ExprPtr Expm1 = Expr::makeCall(BuiltinFn::Expm1, {mul(BVal, StepDt)});
  ExprPtr Exponential = add(X, mul(div(FVal, BVal), Expm1));
  return Expr::makeTernary(std::move(Small), std::move(Euler),
                           std::move(Exponential));
}

ExprPtr buildRushLarsen(const ExprPtr &F, const std::string &Name,
                        const ExprPtr &X) {
  ExprPtr B = differentiate(F, Name);
  return rushLarsenStep(X, F, B, dt());
}

/// Sundnes' second-order Rush-Larsen: take a half RL step, re-evaluate the
/// local linearization (a, b) at the midpoint, then take the full
/// exponential step from x with the midpoint coefficients. The step
/// formula consumes the linearization evaluated at x:
///   f_lin(x) = f(x_half) + b_half * (x - x_half).
ExprPtr buildSundnes(const ExprPtr &F, const std::string &Name,
                     const ExprPtr &X) {
  ExprPtr B = differentiate(F, Name);
  ExprPtr HalfDt = mul(dt(), num(0.5));
  ExprPtr XHalf = rushLarsenStep(X, F, B, HalfDt);
  ExprPtr F2 = fAt(F, Name, XHalf);
  ExprPtr B2 = fAt(B, Name, XHalf);
  ExprPtr FLin = add(F2, mul(B2, sub(X, XHalf)));
  return rushLarsenStep(X, FLin, B2, dt());
}

/// Backward Euler via Newton iterations on g(y) = y - x - dt f(y), with
/// the result clamped into [0, 1] (markov models track probabilities; the
/// paper describes this refinement as keeping values "as precise as
/// possible").
ExprPtr buildMarkovBE(const ExprPtr &F, const std::string &Name,
                      const ExprPtr &X) {
  ExprPtr FPrime = differentiate(F, Name);
  ExprPtr Y = X;
  for (int I = 0; I != MarkovBENewtonIters; ++I) {
    ExprPtr FY = fAt(F, Name, Y);
    ExprPtr FPY = fAt(FPrime, Name, Y);
    ExprPtr G = sub(sub(Y, X), mul(dt(), FY));
    ExprPtr GPrime = sub(num(1), mul(dt(), FPY));
    Y = sub(Y, div(G, GPrime));
  }
  // Clamp to [0, 1].
  ExprPtr Below = bin(BinaryOp::Lt, Y, num(0));
  ExprPtr Above = bin(BinaryOp::Gt, Y, num(1));
  ExprPtr Clamped =
      Expr::makeTernary(Below, num(0),
                        Expr::makeTernary(Above, num(1), Y));
  return Clamped;
}

} // namespace

ExprPtr codegen::buildUpdateExpr(const StateVarInfo &SV) {
  assert(SV.Diff && "state variable has no inlined diff expression");
  ExprPtr X = Expr::makeVarRef(SV.Name);
  switch (SV.Method) {
  case IntegMethod::ForwardEuler:
    return buildFE(SV.Diff, X);
  case IntegMethod::RK2:
    return buildRK2(SV.Diff, SV.Name, X);
  case IntegMethod::RK4:
    return buildRK4(SV.Diff, SV.Name, X);
  case IntegMethod::RushLarsen:
    return buildRushLarsen(SV.Diff, SV.Name, X);
  case IntegMethod::Sundnes:
    return buildSundnes(SV.Diff, SV.Name, X);
  case IntegMethod::MarkovBE:
    return buildMarkovBE(SV.Diff, SV.Name, X);
  }
  limpet_unreachable("invalid integration method");
}
