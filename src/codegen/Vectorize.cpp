//===- Vectorize.cpp ------------------------------------------------------===//

#include "codegen/Vectorize.h"

#include "dialects/Dialects.h"
#include "support/Casting.h"
#include "support/Telemetry.h"
#include "support/Trace.h"
#include "transforms/Pass.h"

#include <map>

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::ir;

namespace {

class Vectorizer {
public:
  Vectorizer(GeneratedKernel &K, unsigned W) : K(K), W(W), Ctx(*K.Ctx) {}

  Operation *run() {
    Operation *Scalar = K.ScalarFunc;
    Block &OldEntry = funcBody(Scalar);

    // Create the vector function with the same ABI.
    std::vector<Type> ArgTypes;
    for (unsigned I = 0, E = OldEntry.numArguments(); I != E; ++I)
      ArgTypes.push_back(OldEntry.argument(I)->type());
    std::string Name = "compute_vec" + std::to_string(W);
    auto NewFuncOwned = makeFunction(Ctx, Name, ArgTypes);
    Operation *NewFunc = NewFuncOwned.get();
    for (const NamedAttribute &A : Scalar->attrs())
      if (A.Name != "sym_name")
        NewFunc->setAttr(A.Name, A.Value);
    NewFunc->setAttr(attrs::Width, Attribute::makeInt(W));
    Block &NewEntry = funcBody(NewFunc);
    for (unsigned I = 0, E = OldEntry.numArguments(); I != E; ++I)
      Map[OldEntry.argument(I)] = NewEntry.argument(I);

    PreB.setInsertionPointToEnd(&NewEntry);

    // Walk the old entry block: clone preheader ops scalar, rewrite the
    // cell loop, clone the return.
    for (Operation *Op : OldEntry.ops()) {
      if (Op->opcode() == OpCode::ScfFor && Op->hasAttr(attrs::CellLoop)) {
        rewriteLoop(Op);
        // Broadcasts may have moved the preheader insertion point; put it
        // back behind the loop for the trailing func.return.
        PreB.setInsertionPointToEnd(&NewEntry);
        continue;
      }
      if (Op->opcode() == OpCode::FuncReturn) {
        makeReturn(PreB);
        continue;
      }
      cloneScalar(Op, PreB);
    }

    K.Mod->addFunction(std::move(NewFuncOwned));
    return NewFunc;
  }

private:
  GeneratedKernel &K;
  unsigned W;
  Context &Ctx;
  OpBuilder PreB{Ctx}, BodyB{Ctx};
  std::map<Value *, Value *> Map;        // old value -> new value
  std::map<Value *, Value *> Broadcasts; // new scalar -> cached broadcast
  Operation *NewFor = nullptr;

  Value *mapped(Value *Old) {
    auto It = Map.find(Old);
    assert(It != Map.end() && "operand not mapped during vectorization");
    return It->second;
  }

  /// Clones \p Op with mapped operands and identical result types.
  void cloneScalar(Operation *Op, OpBuilder &B) {
    std::vector<Value *> Operands;
    for (Value *V : Op->operands())
      Operands.push_back(mapped(V));
    std::vector<Type> ResultTypes;
    for (unsigned I = 0, E = Op->numResults(); I != E; ++I)
      ResultTypes.push_back(Op->result(I)->type());
    Operation *New = B.create(Op->opcode(), Operands, ResultTypes, Op->loc());
    for (const NamedAttribute &A : Op->attrs())
      New->setAttr(A.Name, A.Value);
    for (unsigned I = 0, E = Op->numResults(); I != E; ++I)
      Map[Op->result(I)] = New->result(I);
  }

  /// Returns the vector form of \p Old: its mapped value when already a
  /// vector, otherwise a broadcast of the mapped scalar (cached, placed in
  /// the preheader when the scalar is loop-invariant, else in the body).
  Value *getVec(Value *Old) {
    Value *New = mapped(Old);
    if (New->type().isVector())
      return New;
    auto It = Broadcasts.find(New);
    if (It != Broadcasts.end())
      return It->second;
    // A scalar defined in the new preheader (or a function argument) can
    // be broadcast in the preheader; body-defined scalars do not occur
    // (every body value is vectorized).
    Value *Bc = makeBroadcast(bcBuilder(New), New, W);
    Broadcasts[New] = Bc;
    return Bc;
  }

  OpBuilder &bcBuilder(Value *NewScalar) {
    // Broadcast right before the loop when possible.
    if (NewFor) {
      PreB.setInsertionPoint(NewFor);
      return PreB;
    }
    return PreB;
  }

  void rewriteLoop(Operation *OldFor) {
    Block &OldBody = forBody(OldFor);

    Value *Lb = mapped(OldFor->operand(0));
    Value *Ub = mapped(OldFor->operand(1));
    Value *Step = makeConstantI(PreB, int64_t(W));
    NewFor = makeFor(PreB, Lb, Ub, Step);
    NewFor->setAttr(attrs::CellLoop, Attribute::makeBool(true));
    Block &NewBody = forBody(NewFor);
    Value *Iv = NewBody.argument(0);
    Map[OldBody.argument(0)] = Iv;

    BodyB.setInsertionPointToEnd(&NewBody);

    int64_t NumSv = int64_t(K.Abi.NumStateVars);
    StateLayout Layout = K.Options.Layout;

    for (Operation *Op : OldBody.ops()) {
      switch (Op->opcode()) {
      case OpCode::ScfYield:
        makeYield(BodyB, {});
        break;
      case OpCode::MemLoad:
        rewriteLoad(Op, Iv, NumSv, Layout);
        break;
      case OpCode::MemStore:
        rewriteStore(Op, Iv, NumSv, Layout);
        break;
      case OpCode::LutCoord: {
        Value *X = getVec(Op->operand(0));
        Operation *Coord =
            makeLutCoord(BodyB, X, Op->attr("table").asInt());
        Map[Op->result(0)] = Coord->result(0);
        Map[Op->result(1)] = Coord->result(1);
        break;
      }
      case OpCode::LutInterp: {
        Value *Interp =
            makeLutInterp(BodyB, getVec(Op->operand(0)),
                          getVec(Op->operand(1)), Op->attr("table").asInt(),
                          Op->attr("col").asInt());
        if (Attribute Mode = Op->attr("interp"))
          cast<OpResult>(Interp)->owner()->setAttr("interp", Mode);
        Map[Op->result(0)] = Interp;
        break;
      }
      default:
        rewriteCompute(Op, Iv);
        break;
      }
    }
  }

  /// Vectorizes a pure compute op: operands become vectors, result types
  /// become vector types. Scalar i64 address arithmetic left over from the
  /// scalar kernel is skipped (the addressing is rebuilt per layout).
  void rewriteCompute(Operation *Op, Value *Iv) {
    assert((Op->isPure() || Op->isReadOnly()) &&
           "unexpected side-effecting op in cell loop body");
    // Skip scalar address arithmetic: integer-typed ops in the body feed
    // only loads/stores whose addressing is rebuilt.
    bool AllIntResults = Op->numResults() > 0;
    for (unsigned I = 0, E = Op->numResults(); I != E; ++I)
      AllIntResults &= Op->result(I)->type().isI64();
    if (AllIntResults)
      return;

    std::vector<Value *> Operands;
    for (Value *V : Op->operands())
      Operands.push_back(getVec(V));
    std::vector<Type> ResultTypes;
    for (unsigned I = 0, E = Op->numResults(); I != E; ++I) {
      Type Old = Op->result(I)->type();
      assert(!Old.isVector() && !Old.isMemRef() && "unexpected result type");
      ResultTypes.push_back(Ctx.vectorTypeOf(Old, W));
    }
    Operation *New =
        BodyB.create(Op->opcode(), Operands, ResultTypes, Op->loc());
    for (const NamedAttribute &A : Op->attrs())
      New->setAttr(A.Name, A.Value);
    for (unsigned I = 0, E = Op->numResults(); I != E; ++I)
      Map[Op->result(I)] = New->result(I);
  }

  /// Emits the vector address of lane 0 for a state access to \p Sv.
  Value *stateBaseAddress(Value *Iv, int64_t Sv, int64_t NumSv,
                          StateLayout Layout) {
    switch (Layout) {
    case StateLayout::AoSoA: {
      // Cells are blocked by W: lane-0 address = iv*NumSv + Sv*W.
      Value *Base = makeMulI(BodyB, Iv, makeConstantI(BodyB, NumSv));
      return makeAddI(BodyB, Base, makeConstantI(BodyB, Sv * int64_t(W)));
    }
    case StateLayout::SoA: {
      Value *NumCells =
          funcBody(NewFor->parentOp()).argument(K.Abi.numCellsArg());
      Value *Col =
          makeMulI(BodyB, makeConstantI(BodyB, Sv), NumCells);
      return makeAddI(BodyB, Col, Iv);
    }
    case StateLayout::AoS: {
      Value *Base = makeMulI(BodyB, Iv, makeConstantI(BodyB, NumSv));
      return makeAddI(BodyB, Base, makeConstantI(BodyB, Sv));
    }
    }
    limpet_unreachable("invalid layout");
  }

  void rewriteLoad(Operation *Op, Value *Iv, int64_t NumSv,
                   StateLayout Layout) {
    std::string Role = Op->attr(attrs::Role).asString();
    Value *MemRef = mapped(Op->operand(0));
    Value *Result = nullptr;
    Operation *New = nullptr;
    if (Role == "state") {
      int64_t Sv = Op->attr(attrs::Index).asInt();
      Value *Addr = stateBaseAddress(Iv, Sv, NumSv, Layout);
      if (Layout == StateLayout::AoS) {
        New = BodyB.create(OpCode::VecGather, {MemRef, Addr},
                           {Ctx.vecF64(W)});
        New->setAttr("stride", Attribute::makeInt(NumSv));
      } else {
        New = BodyB.create(OpCode::VecLoad, {MemRef, Addr},
                           {Ctx.vecF64(W)});
      }
    } else if (Role == "ext") {
      New = BodyB.create(OpCode::VecLoad, {MemRef, Iv}, {Ctx.vecF64(W)});
    } else if (Role == "param") {
      // Parameter loads normally get hoisted to the preheader by LICM and
      // never reach this path. A load still in the body stays scalar and
      // is broadcast immediately after (keeping dominance intact).
      cloneScalar(Op, BodyB);
      Map[Op->result(0)] = makeBroadcast(BodyB, Map[Op->result(0)], W);
      return;
    } else {
      limpet_unreachable("load without a limpet.role attribute");
    }
    for (const NamedAttribute &A : Op->attrs())
      New->setAttr(A.Name, A.Value);
    Result = New->result(0);
    Map[Op->result(0)] = Result;
  }

  void rewriteStore(Operation *Op, Value *Iv, int64_t NumSv,
                    StateLayout Layout) {
    std::string Role = Op->attr(attrs::Role).asString();
    Value *Stored = getVec(Op->operand(0));
    Value *MemRef = mapped(Op->operand(1));
    Operation *New = nullptr;
    if (Role == "state") {
      int64_t Sv = Op->attr(attrs::Index).asInt();
      Value *Addr = stateBaseAddress(Iv, Sv, NumSv, Layout);
      if (Layout == StateLayout::AoS) {
        New = BodyB.create(OpCode::VecScatter, {Stored, MemRef, Addr}, {});
        New->setAttr("stride", Attribute::makeInt(NumSv));
      } else {
        New = BodyB.create(OpCode::VecStore, {Stored, MemRef, Addr}, {});
      }
    } else if (Role == "ext") {
      New = BodyB.create(OpCode::VecStore, {Stored, MemRef, Iv}, {});
    } else {
      limpet_unreachable("store without a limpet.role attribute");
    }
    for (const NamedAttribute &A : Op->attrs())
      New->setAttr(A.Name, A.Value);
  }
};

} // namespace

Operation *codegen::cloneVectorKernel(GeneratedKernel &K, unsigned Width) {
  assert(Width > 1 && "vector width must be at least 2");
  assert((K.Options.Layout != StateLayout::AoSoA ||
          K.Options.AoSoABlockWidth == Width) &&
         "AoSoA block width must match the vector width");
  telemetry::TraceSpan Span("vectorize", "compile");
  telemetry::ScopedTimerNs Timer("compile.vectorize.ns");
  Vectorizer V(K, Width);
  Operation *Func = V.run();
  telemetry::counter("compile.vectorize.kernels").add(1);
  return Func;
}

Operation *codegen::vectorizeKernel(GeneratedKernel &K, unsigned Width) {
  Operation *Func = cloneVectorKernel(K, Width);
  // A pipeline failure lands in K.PipelineStatus (it used to be an assert
  // that Release builds skipped, continuing on a broken kernel).
  if (K.Options.RunPasses)
    (void)optimizeKernelFunc(K, Func);
  return Func;
}
