//===- Vectorize.h - Kernel SIMDfication ------------------------*- C++-*-===//
//
// Rewrites a scalar compute kernel into its W-lane vector form: "each cell
// can be thought of as representing one element of a vector operand"
// (paper Sec. 3.3). The cell loop's step becomes W; every float value
// becomes vector<Wxf64>; state accesses become contiguous vector
// load/store on the AoSoA/SoA layouts or gather/scatter with stride NumSv
// on AoS; parameter loads stay scalar (hoistable) and are broadcast.
//
// The vector kernel processes ⌊(end-start)/W⌋*W cells; the engine runs the
// scalar kernel as the epilogue for the remaining cells.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_CODEGEN_VECTORIZE_H
#define LIMPET_CODEGEN_VECTORIZE_H

#include "codegen/MLIRCodeGen.h"

namespace limpet {
namespace codegen {

/// Creates "compute_vec<W>" in \p K's module from its scalar kernel and
/// returns it. Runs K.Options' pass pipeline on the new function when
/// K.Options.RunPasses is set; a pipeline failure is recorded in
/// K.PipelineStatus (recoverable) instead of asserting.
ir::Operation *vectorizeKernel(GeneratedKernel &K, unsigned Width);

/// Stage "vectorize": the rewrite alone, with no pass pipeline run on the
/// result. The CompilerDriver runs the "opt" stage on the returned
/// function separately so the pipeline is configurable and snapshot-able.
ir::Operation *cloneVectorKernel(GeneratedKernel &K, unsigned Width);

} // namespace codegen
} // namespace limpet

#endif // LIMPET_CODEGEN_VECTORIZE_H
