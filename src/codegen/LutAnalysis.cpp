//===- LutAnalysis.cpp ----------------------------------------------------===//

#include "codegen/LutAnalysis.h"

#include <map>
#include <set>

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::easyml;

namespace {

/// Rewrites expressions for one table.
class TableExtractor {
public:
  TableExtractor(const ModelInfo &Info, int TableId, LutTablePlan &Plan)
      : Info(Info), TableId(TableId), Plan(Plan) {}

  ExprPtr rewrite(const ExprPtr &E) {
    auto It = Memo.find(E.get());
    if (It != Memo.end())
      return It->second;
    ExprPtr R = rewriteImpl(E);
    Memo.emplace(E.get(), R);
    return R;
  }

private:
  const ModelInfo &Info;
  int TableId;
  LutTablePlan &Plan;
  std::map<const Expr *, ExprPtr> Memo;

  /// True if \p E mentions only the lookup variable and parameters.
  bool tabulatable(const Expr &E) {
    for (const std::string &V : exprFreeVars(E)) {
      if (V == Plan.Spec.VarName)
        continue;
      if (Info.paramIndex(V) >= 0)
        continue;
      return false;
    }
    return true;
  }

  /// True when replacing \p E with an interpolation pays off: the paper's
  /// implementation tabulates expressions containing transcendental calls
  /// or divisions, not single loads or constants.
  static bool worthwhile(const Expr &E) {
    switch (E.Kind) {
    case ExprKind::Call:
      return true;
    case ExprKind::Binary:
      if (E.BinOp == BinaryOp::Div)
        return true;
      break;
    default:
      break;
    }
    for (const ExprPtr &Op : E.Operands)
      if (worthwhile(*Op))
        return true;
    return false;
  }

  int columnFor(const ExprPtr &E) {
    for (size_t I = 0; I != Plan.Columns.size(); ++I)
      if (exprEquals(*Plan.Columns[I], *E))
        return int(I);
    Plan.Columns.push_back(E);
    return int(Plan.Columns.size()) - 1;
  }

  /// Boolean-valued nodes (comparisons, logic) must not become table
  /// columns: linearly interpolating a 0/1 column yields fractional
  /// "truth" values near transitions. Their float-valued children are
  /// tabulated instead.
  static bool boolValued(const Expr &E) {
    if (E.Kind == ExprKind::Binary)
      switch (E.BinOp) {
      case BinaryOp::Lt:
      case BinaryOp::Le:
      case BinaryOp::Gt:
      case BinaryOp::Ge:
      case BinaryOp::Eq:
      case BinaryOp::Ne:
      case BinaryOp::And:
      case BinaryOp::Or:
        return true;
      default:
        return false;
      }
    return E.Kind == ExprKind::Unary && E.UnOp == UnaryOp::Not;
  }

  ExprPtr rewriteImpl(const ExprPtr &E) {
    if (E->Kind == ExprKind::Number || E->Kind == ExprKind::LutRef)
      return E;
    if (E->Kind == ExprKind::VarRef)
      return E; // bare variable loads are cheaper than interpolation

    if (!boolValued(*E) && exprReferences(*E, Plan.Spec.VarName) &&
        tabulatable(*E) && worthwhile(*E)) {
      int Col = columnFor(E);
      return Expr::makeLutRef(TableId, Col, E->Loc);
    }

    bool Changed = false;
    std::vector<ExprPtr> NewOps;
    NewOps.reserve(E->Operands.size());
    for (const ExprPtr &Op : E->Operands) {
      ExprPtr R = rewrite(Op);
      Changed |= R != Op;
      NewOps.push_back(std::move(R));
    }
    if (!Changed)
      return E;
    auto Copy = std::make_shared<Expr>(*E);
    Copy->Operands = std::move(NewOps);
    return Copy;
  }
};

} // namespace

LutPlan codegen::extractLuts(const ModelInfo &Info,
                             const std::vector<easyml::ExprPtr *> &Roots,
                             bool Enable) {
  LutPlan Plan;
  if (!Enable)
    return Plan;
  for (size_t T = 0; T != Info.Luts.size(); ++T) {
    Plan.Tables.push_back({Info.Luts[T], {}});
    TableExtractor Extractor(Info, int(T), Plan.Tables.back());
    for (easyml::ExprPtr *Root : Roots)
      if (*Root)
        *Root = Extractor.rewrite(*Root);
  }
  return Plan;
}
