//===- Dialects.h - Typed op construction helpers ---------------*- C++-*-===//
//
// Thin, typed wrappers over OpBuilder::create for every dialect op the code
// generator emits. Result types are inferred from operands where possible,
// so codegen reads close to the MLIR builders in the paper.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_DIALECTS_DIALECTS_H
#define LIMPET_DIALECTS_DIALECTS_H

#include "ir/Builder.h"

namespace limpet {
namespace ir {

// --- arith ---------------------------------------------------------------

/// arith.constant : f64 (or vector thereof when \p Ty is a vector).
Value *makeConstantF(OpBuilder &B, double V, Type Ty = Type());

/// arith.constant_int : i64.
Value *makeConstantI(OpBuilder &B, int64_t V);

/// Elementwise float binary op (arith.addf & co). Operand types must match;
/// the result has the same type.
Value *makeFloatBinOp(OpBuilder &B, OpCode Code, Value *L, Value *R);

inline Value *makeAddF(OpBuilder &B, Value *L, Value *R) {
  return makeFloatBinOp(B, OpCode::ArithAddF, L, R);
}
inline Value *makeSubF(OpBuilder &B, Value *L, Value *R) {
  return makeFloatBinOp(B, OpCode::ArithSubF, L, R);
}
inline Value *makeMulF(OpBuilder &B, Value *L, Value *R) {
  return makeFloatBinOp(B, OpCode::ArithMulF, L, R);
}
inline Value *makeDivF(OpBuilder &B, Value *L, Value *R) {
  return makeFloatBinOp(B, OpCode::ArithDivF, L, R);
}
inline Value *makeRemF(OpBuilder &B, Value *L, Value *R) {
  return makeFloatBinOp(B, OpCode::ArithRemF, L, R);
}
inline Value *makeMinF(OpBuilder &B, Value *L, Value *R) {
  return makeFloatBinOp(B, OpCode::ArithMinF, L, R);
}
inline Value *makeMaxF(OpBuilder &B, Value *L, Value *R) {
  return makeFloatBinOp(B, OpCode::ArithMaxF, L, R);
}

/// arith.negf.
Value *makeNegF(OpBuilder &B, Value *V);

/// arith.cmpf with the given predicate; result is i1 (or vector<i1>).
Value *makeCmpF(OpBuilder &B, CmpPredicate Pred, Value *L, Value *R);

/// arith.cmpi with the given predicate.
Value *makeCmpI(OpBuilder &B, CmpPredicate Pred, Value *L, Value *R);

/// arith.select: Cond ? A : B. A and B must have the same type; Cond must
/// be bool-like of matching shape.
Value *makeSelect(OpBuilder &B, Value *Cond, Value *A, Value *Bv);

/// Integer binary ops.
Value *makeIntBinOp(OpBuilder &B, OpCode Code, Value *L, Value *R);
inline Value *makeAddI(OpBuilder &B, Value *L, Value *R) {
  return makeIntBinOp(B, OpCode::ArithAddI, L, R);
}
inline Value *makeSubI(OpBuilder &B, Value *L, Value *R) {
  return makeIntBinOp(B, OpCode::ArithSubI, L, R);
}
inline Value *makeMulI(OpBuilder &B, Value *L, Value *R) {
  return makeIntBinOp(B, OpCode::ArithMulI, L, R);
}
inline Value *makeDivI(OpBuilder &B, Value *L, Value *R) {
  return makeIntBinOp(B, OpCode::ArithDivI, L, R);
}
inline Value *makeRemI(OpBuilder &B, Value *L, Value *R) {
  return makeIntBinOp(B, OpCode::ArithRemI, L, R);
}

/// Boolean logic (i1 or vector<i1>).
Value *makeAndI(OpBuilder &B, Value *L, Value *R);
Value *makeOrI(OpBuilder &B, Value *L, Value *R);
Value *makeXOrI(OpBuilder &B, Value *L, Value *R);

// --- math ----------------------------------------------------------------

/// Unary math op (math.exp & co); result type equals operand type.
Value *makeMathUnary(OpBuilder &B, OpCode Code, Value *V);

/// math.powf.
Value *makePow(OpBuilder &B, Value *Base, Value *Exp);

// --- memref ----------------------------------------------------------------

/// memref.load %m[%idx] : f64.
Value *makeMemLoad(OpBuilder &B, Value *MemRef, Value *Index);

/// memref.store %v, %m[%idx].
void makeMemStore(OpBuilder &B, Value *V, Value *MemRef, Value *Index);

// --- vector ----------------------------------------------------------------

/// vector.broadcast %v : f64 -> vector<Wxf64> (kind follows the operand).
Value *makeBroadcast(OpBuilder &B, Value *V, unsigned Width);

/// vector.load %m[%idx] : vector<Wxf64> (contiguous lanes).
Value *makeVecLoad(OpBuilder &B, Value *MemRef, Value *Index, unsigned Width);

/// vector.store %v, %m[%idx].
void makeVecStore(OpBuilder &B, Value *Vec, Value *MemRef, Value *Index);

/// vector.gather %m[%base + lane*Stride] : vector<Wxf64>.
Value *makeVecGather(OpBuilder &B, Value *MemRef, Value *Base, int64_t Stride,
                     unsigned Width);

/// vector.scatter %v -> %m[%base + lane*Stride].
void makeVecScatter(OpBuilder &B, Value *Vec, Value *MemRef, Value *Base,
                    int64_t Stride);

// --- scf -------------------------------------------------------------------

/// Creates scf.for %iv = %lb to %ub step %step with an empty body block
/// (one i64 argument, the induction variable). The caller populates the
/// body and must terminate it with scf.yield.
Operation *makeFor(OpBuilder &B, Value *Lb, Value *Ub, Value *Step);

/// Creates scf.if %cond with empty then/else blocks and \p ResultTypes.
Operation *makeIf(OpBuilder &B, Value *Cond,
                  const std::vector<Type> &ResultTypes);

/// scf.yield with the given operands.
Operation *makeYield(OpBuilder &B, const std::vector<Value *> &Operands);

// --- func ------------------------------------------------------------------

/// Creates a detached func.func named \p Name with an entry block whose
/// arguments have \p ArgTypes. Returns the op; funcBody() gives the block.
std::unique_ptr<Operation> makeFunction(Context &Ctx, std::string_view Name,
                                        const std::vector<Type> &ArgTypes);

/// func.return.
Operation *makeReturn(OpBuilder &B);

// --- lut -------------------------------------------------------------------

/// lut.coord %x {table}: computes (row index : i64, fraction : f64) for the
/// interpolation of table \p TableId at position %x. Vector forms follow
/// the operand type.
Operation *makeLutCoord(OpBuilder &B, Value *X, int64_t TableId);

/// lut.interp %idx, %frac {table, col}: linearly interpolates column
/// \p Col of table \p TableId.
Value *makeLutInterp(OpBuilder &B, Value *Idx, Value *Frac, int64_t TableId,
                     int64_t Col);

} // namespace ir
} // namespace limpet

#endif // LIMPET_DIALECTS_DIALECTS_H
