//===- Dialects.cpp -------------------------------------------------------===//

#include "dialects/Dialects.h"

#include "support/Casting.h"

using namespace limpet;
using namespace limpet::ir;

//===----------------------------------------------------------------------===//
// arith
//===----------------------------------------------------------------------===//

Value *ir::makeConstantF(OpBuilder &B, double V, Type Ty) {
  if (!Ty)
    Ty = B.context().f64();
  assert(Ty.isFloatLike() && "arith.constant requires a float-like type");
  Operation *Op = B.create(OpCode::ArithConstantF, {}, {Ty});
  Op->setAttr("value", Attribute::makeFloat(V));
  return Op->result();
}

Value *ir::makeConstantI(OpBuilder &B, int64_t V) {
  Operation *Op = B.create(OpCode::ArithConstantI, {}, {B.context().i64()});
  Op->setAttr("value", Attribute::makeInt(V));
  return Op->result();
}

Value *ir::makeFloatBinOp(OpBuilder &B, OpCode Code, Value *L, Value *R) {
  assert(L->type() == R->type() && "mismatched operand types");
  assert(L->type().isFloatLike() && "expected float-like operands");
  return B.create(Code, {L, R}, {L->type()})->result();
}

Value *ir::makeNegF(OpBuilder &B, Value *V) {
  assert(V->type().isFloatLike() && "expected a float-like operand");
  return B.create(OpCode::ArithNegF, {V}, {V->type()})->result();
}

static Type boolTypeFor(Context &Ctx, Type OperandTy) {
  if (OperandTy.isVector())
    return Ctx.vecI1(OperandTy.vectorWidth());
  return Ctx.i1();
}

Value *ir::makeCmpF(OpBuilder &B, CmpPredicate Pred, Value *L, Value *R) {
  assert(L->type() == R->type() && "mismatched operand types");
  assert(L->type().isFloatLike() && "expected float-like operands");
  Operation *Op = B.create(OpCode::ArithCmpF, {L, R},
                           {boolTypeFor(B.context(), L->type())});
  Op->setAttr("predicate",
              Attribute::makeString(std::string(cmpPredicateName(Pred))));
  return Op->result();
}

Value *ir::makeCmpI(OpBuilder &B, CmpPredicate Pred, Value *L, Value *R) {
  assert(L->type() == R->type() && "mismatched operand types");
  assert(L->type().isIntLike() && "expected int-like operands");
  Operation *Op = B.create(OpCode::ArithCmpI, {L, R},
                           {boolTypeFor(B.context(), L->type())});
  Op->setAttr("predicate",
              Attribute::makeString(std::string(cmpPredicateName(Pred))));
  return Op->result();
}

Value *ir::makeSelect(OpBuilder &B, Value *Cond, Value *A, Value *Bv) {
  assert(A->type() == Bv->type() && "mismatched select arm types");
  assert(Cond->type().isBoolLike() && "select condition must be bool-like");
  return B.create(OpCode::ArithSelect, {Cond, A, Bv}, {A->type()})->result();
}

Value *ir::makeIntBinOp(OpBuilder &B, OpCode Code, Value *L, Value *R) {
  assert(L->type() == R->type() && "mismatched operand types");
  assert(L->type().isIntLike() && "expected int-like operands");
  return B.create(Code, {L, R}, {L->type()})->result();
}

Value *ir::makeAndI(OpBuilder &B, Value *L, Value *R) {
  assert(L->type() == R->type() && "mismatched operand types");
  return B.create(OpCode::ArithAndI, {L, R}, {L->type()})->result();
}

Value *ir::makeOrI(OpBuilder &B, Value *L, Value *R) {
  assert(L->type() == R->type() && "mismatched operand types");
  return B.create(OpCode::ArithOrI, {L, R}, {L->type()})->result();
}

Value *ir::makeXOrI(OpBuilder &B, Value *L, Value *R) {
  assert(L->type() == R->type() && "mismatched operand types");
  return B.create(OpCode::ArithXOrI, {L, R}, {L->type()})->result();
}

//===----------------------------------------------------------------------===//
// math
//===----------------------------------------------------------------------===//

Value *ir::makeMathUnary(OpBuilder &B, OpCode Code, Value *V) {
  assert(V->type().isFloatLike() && "expected a float-like operand");
  return B.create(Code, {V}, {V->type()})->result();
}

Value *ir::makePow(OpBuilder &B, Value *Base, Value *Exp) {
  assert(Base->type() == Exp->type() && "mismatched operand types");
  return B.create(OpCode::MathPow, {Base, Exp}, {Base->type()})->result();
}

//===----------------------------------------------------------------------===//
// memref
//===----------------------------------------------------------------------===//

Value *ir::makeMemLoad(OpBuilder &B, Value *MemRef, Value *Index) {
  assert(MemRef->type().isMemRef() && "expected a memref operand");
  assert(Index->type().isI64() && "index must be i64");
  return B.create(OpCode::MemLoad, {MemRef, Index}, {B.context().f64()})
      ->result();
}

void ir::makeMemStore(OpBuilder &B, Value *V, Value *MemRef, Value *Index) {
  assert(MemRef->type().isMemRef() && "expected a memref operand");
  assert(V->type().isF64() && "stored value must be f64");
  B.create(OpCode::MemStore, {V, MemRef, Index}, {});
}

//===----------------------------------------------------------------------===//
// vector
//===----------------------------------------------------------------------===//

Value *ir::makeBroadcast(OpBuilder &B, Value *V, unsigned Width) {
  Type VecTy = B.context().vectorTypeOf(V->type(), Width);
  return B.create(OpCode::VecBroadcast, {V}, {VecTy})->result();
}

Value *ir::makeVecLoad(OpBuilder &B, Value *MemRef, Value *Index,
                       unsigned Width) {
  assert(MemRef->type().isMemRef() && "expected a memref operand");
  return B.create(OpCode::VecLoad, {MemRef, Index},
                  {B.context().vecF64(Width)})
      ->result();
}

void ir::makeVecStore(OpBuilder &B, Value *Vec, Value *MemRef, Value *Index) {
  assert(Vec->type().isVector() && "expected a vector value");
  B.create(OpCode::VecStore, {Vec, MemRef, Index}, {});
}

Value *ir::makeVecGather(OpBuilder &B, Value *MemRef, Value *Base,
                         int64_t Stride, unsigned Width) {
  Operation *Op = B.create(OpCode::VecGather, {MemRef, Base},
                           {B.context().vecF64(Width)});
  Op->setAttr("stride", Attribute::makeInt(Stride));
  return Op->result();
}

void ir::makeVecScatter(OpBuilder &B, Value *Vec, Value *MemRef, Value *Base,
                        int64_t Stride) {
  Operation *Op = B.create(OpCode::VecScatter, {Vec, MemRef, Base}, {});
  Op->setAttr("stride", Attribute::makeInt(Stride));
}

//===----------------------------------------------------------------------===//
// scf
//===----------------------------------------------------------------------===//

Operation *ir::makeFor(OpBuilder &B, Value *Lb, Value *Ub, Value *Step) {
  assert(Lb->type().isI64() && Ub->type().isI64() && Step->type().isI64() &&
         "scf.for bounds must be i64");
  Operation *Op = B.create(OpCode::ScfFor, {Lb, Ub, Step}, {});
  Block &Body = Op->addRegion().emplaceBlock();
  Body.addArgument(B.context().i64());
  return Op;
}

Operation *ir::makeIf(OpBuilder &B, Value *Cond,
                      const std::vector<Type> &ResultTypes) {
  assert(Cond->type().isI1() && "scf.if condition must be scalar i1");
  Operation *Op = B.create(OpCode::ScfIf, {Cond}, ResultTypes);
  Op->addRegion().emplaceBlock();
  Op->addRegion().emplaceBlock();
  return Op;
}

Operation *ir::makeYield(OpBuilder &B, const std::vector<Value *> &Operands) {
  return B.create(OpCode::ScfYield, Operands, {});
}

//===----------------------------------------------------------------------===//
// func
//===----------------------------------------------------------------------===//

std::unique_ptr<Operation> ir::makeFunction(Context &Ctx,
                                            std::string_view Name,
                                            const std::vector<Type> &ArgTypes) {
  auto Func = std::make_unique<Operation>(OpCode::FuncFunc);
  Func->setAttr("sym_name", Attribute::makeString(std::string(Name)));
  Block &Entry = Func->addRegion().emplaceBlock();
  for (Type Ty : ArgTypes)
    Entry.addArgument(Ty);
  return Func;
}

Operation *ir::makeReturn(OpBuilder &B) {
  return B.create(OpCode::FuncReturn, {}, {});
}

//===----------------------------------------------------------------------===//
// lut
//===----------------------------------------------------------------------===//

Operation *ir::makeLutCoord(OpBuilder &B, Value *X, int64_t TableId) {
  assert(X->type().isFloatLike() && "lut.coord input must be float-like");
  Context &Ctx = B.context();
  Type IdxTy = X->type().isVector() ? Ctx.vecI64(X->type().vectorWidth())
                                    : Ctx.i64();
  Operation *Op = B.create(OpCode::LutCoord, {X}, {IdxTy, X->type()});
  Op->setAttr("table", Attribute::makeInt(TableId));
  return Op;
}

Value *ir::makeLutInterp(OpBuilder &B, Value *Idx, Value *Frac,
                         int64_t TableId, int64_t Col) {
  assert(Frac->type().isFloatLike() && "lut.interp frac must be float-like");
  Operation *Op = B.create(OpCode::LutInterp, {Idx, Frac}, {Frac->type()});
  Op->setAttr("table", Attribute::makeInt(TableId));
  Op->setAttr("col", Attribute::makeInt(Col));
  return Op->result();
}
