//===- Journal.h - Durable append-only job journal --------------*- C++-*-===//
//
// The daemon's source of truth for which jobs exist and how they ended.
// Every admission appends an Accepted record carrying the full JobSpec
// (as JSON, so journals stay greppable); every terminal transition
// appends a Finished/Failed/Cancelled/Expired/Shed record. A job that
// has an Accepted record but no terminal record when the daemon starts
// was in flight when the previous process died — those are exactly the
// jobs recovery replays, resuming each from its newest valid checkpoint.
//
// Records are individually framed and checksummed with the same
// primitives as checkpoints and artifacts (compiler/Serialize): magic,
// length, FNV-1a 64, payload. Reading tolerates a truncated tail — a
// SIGKILL mid-append loses at most the record being written, never the
// journal — and any corrupt record ends the scan at the last good
// prefix. Appends fsync by default (compiler::durableFsyncEnabled, the
// LIMPET_NO_FSYNC=1 escape hatch applies here too).
//
// Startup compaction rewrites the journal to just the live Accepted
// records (atomic write + rename), so it stays proportional to the
// in-flight job count rather than growing forever.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_DAEMON_JOURNAL_H
#define LIMPET_DAEMON_JOURNAL_H

#include "support/Status.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace limpet {
namespace daemon {

class Journal {
public:
  enum class Kind : uint8_t {
    Accepted = 1, ///< payload = JobSpec JSON
    Started,
    Finished,
    Failed, ///< payload = error text
    Cancelled,
    Expired,
    Shed,
  };

  struct Record {
    Kind K = Kind::Accepted;
    uint64_t JobId = 0;
    std::string Payload;
  };

  explicit Journal(std::string Path) : Path(std::move(Path)) {}
  ~Journal() { close(); }

  const std::string &path() const { return Path; }

  /// Opens (creating if absent) for appending.
  Status open();
  void close();

  /// Appends one framed record and fsyncs it (unless LIMPET_NO_FSYNC=1).
  /// Thread-safe: runner threads and the admission path append
  /// concurrently.
  Status append(Kind K, uint64_t JobId, std::string_view Payload = {});

  /// Reads every intact record. A truncated or corrupt tail ends the scan
  /// cleanly; \p TruncatedOut (optional) reports whether bytes were
  /// dropped. A missing file is an empty journal, not an error.
  static Expected<std::vector<Record>>
  readAll(const std::string &Path, bool *TruncatedOut = nullptr);

  /// Jobs in \p All that were accepted but never reached a terminal
  /// record — the replay set, in admission order.
  static std::vector<Record> unfinished(const std::vector<Record> &All);

  /// Atomically rewrites \p Path to contain exactly \p Live (used at
  /// startup so the journal stays bounded by in-flight jobs).
  static Status compact(const std::string &Path,
                        const std::vector<Record> &Live);

private:
  std::string Path;
  std::mutex Mutex;
  int Fd = -1;
};

} // namespace daemon
} // namespace limpet

#endif // LIMPET_DAEMON_JOURNAL_H
