//===- Json.cpp -----------------------------------------------------------===//

#include "daemon/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace limpet;
using namespace limpet::daemon;

//===----------------------------------------------------------------------===//
// Accessors
//===----------------------------------------------------------------------===//

const JsonValue *JsonValue::find(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

double JsonValue::numberOr(std::string_view Key, double Default) const {
  const JsonValue *V = find(Key);
  return V && V->isNumber() ? V->asNumber() : Default;
}

int64_t JsonValue::intOr(std::string_view Key, int64_t Default) const {
  const JsonValue *V = find(Key);
  return V && V->isNumber() ? int64_t(V->asNumber()) : Default;
}

bool JsonValue::boolOr(std::string_view Key, bool Default) const {
  const JsonValue *V = find(Key);
  return V && V->isBool() ? V->asBool() : Default;
}

std::string JsonValue::stringOr(std::string_view Key,
                                std::string_view Default) const {
  const JsonValue *V = find(Key);
  return V && V->isString() ? V->asString() : std::string(Default);
}

JsonValue &JsonValue::set(std::string_view Key, JsonValue V) {
  if (K != Kind::Object)
    return *this;
  for (auto &[Name, Value] : Members)
    if (Name == Key) {
      Value = std::move(V);
      return *this;
    }
  Members.emplace_back(std::string(Key), std::move(V));
  return *this;
}

JsonValue &JsonValue::push(JsonValue V) {
  if (K == Kind::Array)
    Items.push_back(std::move(V));
  return *this;
}

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

static void escapeInto(std::string &Out, std::string_view S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (uint8_t(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", unsigned(uint8_t(C)));
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

static void renderInto(std::string &Out, const JsonValue &V) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    break;
  case JsonValue::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case JsonValue::Kind::Number: {
    double D = V.asNumber();
    if (!std::isfinite(D)) {
      // JSON has no Inf/NaN; the protocol never sends them, but a checksum
      // of a blown-up population could. Render as null, never bad JSON.
      Out += "null";
      break;
    }
    char Buf[40];
    // %.17g round-trips any double; trim to integer form when exact so
    // ids and counts render as plain integers.
    if (D == double(int64_t(D)) && std::fabs(D) < 9.0e15)
      std::snprintf(Buf, sizeof(Buf), "%lld", (long long)(int64_t)D);
    else
      std::snprintf(Buf, sizeof(Buf), "%.17g", D);
    Out += Buf;
    break;
  }
  case JsonValue::Kind::String:
    escapeInto(Out, V.asString());
    break;
  case JsonValue::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Name, Member] : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      escapeInto(Out, Name);
      Out += ':';
      renderInto(Out, Member);
    }
    Out += '}';
    break;
  }
  case JsonValue::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &Item : V.items()) {
      if (!First)
        Out += ',';
      First = false;
      renderInto(Out, Item);
    }
    Out += ']';
    break;
  }
  }
}

std::string JsonValue::str() const {
  std::string Out;
  renderInto(Out, *this);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parsing
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent parser over one line. Depth-limited so a hostile
/// client cannot overflow the stack with "[[[[[...".
class Parser {
public:
  explicit Parser(std::string_view Text) : Text(Text) {}

  Expected<JsonValue> run() {
    JsonValue V;
    Status S = value(V, 0);
    if (!S)
      return S;
    skipWs();
    if (Pos != Text.size())
      return Status::error("trailing bytes after JSON value");
    return V;
  }

private:
  static constexpr int kMaxDepth = 32;

  std::string_view Text;
  size_t Pos = 0;

  void skipWs() {
    while (Pos < Text.size() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                                 Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Status fail(const char *Msg) {
    return Status::error(std::string("JSON parse error at byte ") +
                         std::to_string(Pos) + ": " + Msg);
  }

  Status value(JsonValue &Out, int Depth) {
    if (Depth > kMaxDepth)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return object(Out, Depth);
    if (C == '[')
      return array(Out, Depth);
    if (C == '"') {
      std::string S;
      if (Status St = stringLit(S); !St)
        return St;
      Out = JsonValue::string(std::move(S));
      return Status::success();
    }
    if (C == 't' || C == 'f')
      return boolean(Out);
    if (C == 'n') {
      if (Text.substr(Pos, 4) == "null") {
        Pos += 4;
        Out = JsonValue::null();
        return Status::success();
      }
      return fail("bad literal");
    }
    return number(Out);
  }

  Status object(JsonValue &Out, int Depth) {
    ++Pos; // '{'
    Out = JsonValue::object();
    skipWs();
    if (eat('}'))
      return Status::success();
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (Status St = stringLit(Key); !St)
        return St;
      skipWs();
      if (!eat(':'))
        return fail("expected ':' after object key");
      JsonValue V;
      if (Status St = value(V, Depth + 1); !St)
        return St;
      Out.set(Key, std::move(V));
      skipWs();
      if (eat(','))
        continue;
      if (eat('}'))
        return Status::success();
      return fail("expected ',' or '}' in object");
    }
  }

  Status array(JsonValue &Out, int Depth) {
    ++Pos; // '['
    Out = JsonValue::array();
    skipWs();
    if (eat(']'))
      return Status::success();
    while (true) {
      JsonValue V;
      if (Status St = value(V, Depth + 1); !St)
        return St;
      Out.push(std::move(V));
      skipWs();
      if (eat(','))
        continue;
      if (eat(']'))
        return Status::success();
      return fail("expected ',' or ']' in array");
    }
  }

  Status boolean(JsonValue &Out) {
    if (Text.substr(Pos, 4) == "true") {
      Pos += 4;
      Out = JsonValue::boolean(true);
      return Status::success();
    }
    if (Text.substr(Pos, 5) == "false") {
      Pos += 5;
      Out = JsonValue::boolean(false);
      return Status::success();
    }
    return fail("bad literal");
  }

  Status number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    bool SawDigit = false;
    while (Pos < Text.size() &&
           (std::isdigit(uint8_t(Text[Pos])) || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '-' ||
            Text[Pos] == '+')) {
      SawDigit |= std::isdigit(uint8_t(Text[Pos])) != 0;
      ++Pos;
    }
    if (!SawDigit)
      return fail("expected a value");
    std::string Lit(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double D = std::strtod(Lit.c_str(), &End);
    if (End != Lit.c_str() + Lit.size())
      return fail("malformed number");
    Out = JsonValue::number(D);
    return Status::success();
  }

  Status stringLit(std::string &Out) {
    ++Pos; // '"'
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return Status::success();
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          break;
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 4 > Text.size())
            return fail("truncated \\u escape");
          unsigned Code = 0;
          for (int I = 0; I != 4; ++I) {
            char H = Text[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= unsigned(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= unsigned(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= unsigned(H - 'A' + 10);
            else
              return fail("bad \\u escape digit");
          }
          // Encode the code point as UTF-8 (BMP only; surrogate pairs in
          // protocol strings are not expected and pass through as two
          // 3-byte sequences, which round-trips our own output).
          if (Code < 0x80) {
            Out += char(Code);
          } else if (Code < 0x800) {
            Out += char(0xC0 | (Code >> 6));
            Out += char(0x80 | (Code & 0x3F));
          } else {
            Out += char(0xE0 | (Code >> 12));
            Out += char(0x80 | ((Code >> 6) & 0x3F));
            Out += char(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          return fail("bad escape character");
        }
        continue;
      }
      Out += C;
      ++Pos;
    }
    return fail("unterminated string");
  }
};

} // namespace

Expected<JsonValue> JsonValue::parse(std::string_view Text) {
  return Parser(Text).run();
}
