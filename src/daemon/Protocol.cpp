//===- Protocol.cpp -------------------------------------------------------===//

#include "daemon/Protocol.h"

#include "codegen/KernelSpec.h"
#include "sim/Diffusion.h"
#include "sim/Ensemble.h"
#include "sim/Stimulus.h"

#include <cstdio>

using namespace limpet;
using namespace limpet::daemon;

std::string_view daemon::jobStateName(JobState S) {
  switch (S) {
  case JobState::Queued:
    return "queued";
  case JobState::Running:
    return "running";
  case JobState::Finished:
    return "finished";
  case JobState::Failed:
    return "failed";
  case JobState::Cancelled:
    return "cancelled";
  case JobState::Expired:
    return "expired";
  case JobState::Shed:
    return "shed";
  }
  return "unknown";
}

bool daemon::jobStateTerminal(JobState S) {
  return S != JobState::Queued && S != JobState::Running;
}

//===----------------------------------------------------------------------===//
// JobSpec <-> JSON
//===----------------------------------------------------------------------===//

static Status parseConfig(const JsonValue &Body, exec::EngineConfig &Cfg) {
  const JsonValue *C = Body.find("config");
  if (!C)
    return Status::success(); // baseline default
  if (!C->isObject())
    return Status::error("'config' must be an object");
  // A "preset" picks one of the paper's configurations; individual fields
  // then override it.
  std::string Preset = C->stringOr("preset", "baseline");
  // "width" is a number, or the string "auto" to defer the width/layout
  // choice to the tuning record / autotuner / capability heuristic.
  unsigned W = 0;
  bool WidthAuto = false;
  if (const JsonValue *WV = C->find("width")) {
    if (WV->isString()) {
      if (WV->asString() != "auto")
        return Status::error("'width' must be a number or \"auto\"");
      WidthAuto = true;
    } else {
      W = unsigned(C->intOr("width", 0));
    }
  }
  if (Preset == "baseline")
    Cfg = WidthAuto ? exec::EngineConfig::autoTuned()
                    : exec::EngineConfig::baseline();
  else if (Preset == "limpetmlir")
    Cfg = exec::EngineConfig::limpetMLIR(W ? W : 4);
  else if (Preset == "autovec")
    Cfg = exec::EngineConfig::autoVecLike(W ? W : 4);
  else if (Preset == "recovery")
    Cfg = exec::EngineConfig::recovery();
  else
    return Status::error("unknown config preset '" + Preset + "'");
  if (W)
    Cfg.Width = W;
  else if (WidthAuto)
    Cfg.Width = exec::EngineConfig::kWidthAuto;
  if (const JsonValue *L = C->find("layout")) {
    if (!L->isString())
      return Status::error("'layout' must be a string");
    const std::string &Name = L->asString();
    if (Name == "aos")
      Cfg.Layout = codegen::StateLayout::AoS;
    else if (Name == "soa")
      Cfg.Layout = codegen::StateLayout::SoA;
    else if (Name == "aosoa")
      Cfg.Layout = codegen::StateLayout::AoSoA;
    else
      return Status::error("unknown layout '" + Name + "'");
  }
  Cfg.FastMath = C->boolOr("fastmath", Cfg.FastMath);
  Cfg.EnableLuts = C->boolOr("luts", Cfg.EnableLuts);
  Cfg.CubicLut = C->boolOr("cubic", Cfg.CubicLut);
  Cfg.PassPipeline = C->stringOr("passes", Cfg.PassPipeline);
  return Status::success();
}

Expected<JobSpec> daemon::parseJobSpec(const JsonValue &Body) {
  if (!Body.isObject())
    return Status::error("job spec must be a JSON object");
  JobSpec Spec;
  Spec.Id = uint64_t(Body.numberOr("id", 0));
  Spec.Tenant = Body.stringOr("tenant", "default");
  if (Spec.Tenant.empty())
    return Status::error("'tenant' must be non-empty");
  Spec.Priority = int(Body.intOr("priority", 0));
  Spec.Model = Body.stringOr("model", "");
  if (Spec.Model.empty())
    return Status::error("'model' is required");
  Spec.NumCells = Body.intOr("cells", Spec.NumCells);
  Spec.NumSteps = Body.intOr("steps", Spec.NumSteps);
  Spec.Dt = Body.numberOr("dt", Spec.Dt);
  if (Spec.NumCells <= 0 || Spec.NumSteps <= 0)
    return Status::error("'cells' and 'steps' must be positive");
  if (!(Spec.Dt > 0))
    return Status::error("'dt' must be positive");
  Spec.Guard = Body.boolOr("guard", Spec.Guard);
  Spec.Autotune = Body.boolOr("autotune", Spec.Autotune);
  Spec.TimeoutSec = Body.numberOr("timeout_sec", 0);
  if (Spec.TimeoutSec < 0)
    return Status::error("'timeout_sec' must be non-negative");
  Spec.CheckpointEveryN = Body.intOr("checkpoint_every", -1);
  if (Spec.CheckpointEveryN < -1)
    Spec.CheckpointEveryN = -1;
  Spec.ProgressEvery = Body.intOr("progress_every", 0);
  Spec.TissueNX = Body.intOr("tissue_nx", 0);
  Spec.TissueNY = Body.intOr("tissue_ny", 1);
  if (Spec.TissueNX < 0 || Spec.TissueNY < 1)
    return Status::error("'tissue_nx' must be >= 0, 'tissue_ny' >= 1");
  Spec.TissueDx = Body.numberOr("tissue_dx", Spec.TissueDx);
  Spec.TissueSigma = Body.numberOr("tissue_sigma", Spec.TissueSigma);
  if (!(Spec.TissueDx > 0))
    return Status::error("'tissue_dx' must be positive");
  if (Spec.TissueSigma < 0)
    return Status::error("'tissue_sigma' must be non-negative");
  if (const JsonValue *DM = Body.find("tissue_method")) {
    if (!DM->isString())
      return Status::error("'tissue_method' must be a string");
    Expected<sim::DiffusionMethod> D =
        sim::parseDiffusionMethod(DM->asString());
    if (!D)
      return D.status();
    Spec.TissueMethod = uint8_t(*D);
  }
  Spec.TissueStim = Body.stringOr("tissue_stim", "");
  if (!Spec.TissueStim.empty()) {
    // Reject a malformed protocol at submit time, not when the job runs.
    sim::TissueGrid G{Spec.TissueNX > 0 ? Spec.TissueNX : 1, Spec.TissueNY,
                      Spec.TissueDx};
    Expected<sim::StimulusProtocol> P =
        sim::StimulusProtocol::parse(Spec.TissueStim, G);
    if (!P)
      return P.status();
  }
  Spec.EnsembleSweep = Body.stringOr("ensemble_sweep", "");
  Spec.EnsembleCellsPer = Body.intOr("ensemble_cells_per", 1);
  if (Spec.EnsembleCellsPer < 1)
    return Status::error("'ensemble_cells_per' must be >= 1");
  if (!Spec.EnsembleSweep.empty()) {
    if (Spec.TissueNX > 0)
      return Status::error(
          "'ensemble_sweep' and 'tissue_nx' are mutually exclusive");
    // Reject a malformed sweep at submit time, not when the job runs; the
    // model-specific checks (unknown parameter names) stay with the
    // runner, which owns the compiled model.
    Expected<sim::EnsembleSpec> E = sim::EnsembleSpec::fromSweep(
        Spec.EnsembleSweep, Spec.EnsembleCellsPer);
    if (!E)
      return E.status();
  }
  if (const JsonValue *E = Body.find("engine")) {
    if (!E->isString())
      return Status::error("'engine' must be a string");
    std::optional<exec::EngineTier> T =
        exec::engineTierFromName(E->asString());
    if (!T)
      return Status::error("unknown engine '" + E->asString() +
                           "' (vm, native, auto)");
    Spec.Tier = *T;
  }
  if (Status S = parseConfig(Body, Spec.Config); !S)
    return S;
  if (Status S = Spec.Config.validate(); !S)
    return S;
  return Spec;
}

JsonValue daemon::jobSpecToJson(const JobSpec &Spec) {
  JsonValue Cfg = JsonValue::object();
  Cfg.set("preset", JsonValue::string("baseline"));
  if (Spec.Config.isAutoWidth())
    Cfg.set("width", JsonValue::string("auto"));
  else
    Cfg.set("width", JsonValue::number(int64_t(Spec.Config.Width)));
  const char *Layout = Spec.Config.Layout == codegen::StateLayout::SoA ? "soa"
                       : Spec.Config.Layout == codegen::StateLayout::AoSoA
                           ? "aosoa"
                           : "aos";
  Cfg.set("layout", JsonValue::string(Layout));
  Cfg.set("fastmath", JsonValue::boolean(Spec.Config.FastMath));
  Cfg.set("luts", JsonValue::boolean(Spec.Config.EnableLuts));
  Cfg.set("cubic", JsonValue::boolean(Spec.Config.CubicLut));
  if (!Spec.Config.PassPipeline.empty())
    Cfg.set("passes", JsonValue::string(Spec.Config.PassPipeline));

  JsonValue J = JsonValue::object();
  J.set("id", JsonValue::number(Spec.Id));
  J.set("tenant", JsonValue::string(Spec.Tenant));
  J.set("priority", JsonValue::number(int64_t(Spec.Priority)));
  J.set("model", JsonValue::string(Spec.Model));
  J.set("cells", JsonValue::number(Spec.NumCells));
  J.set("steps", JsonValue::number(Spec.NumSteps));
  J.set("dt", JsonValue::number(Spec.Dt));
  J.set("guard", JsonValue::boolean(Spec.Guard));
  J.set("autotune", JsonValue::boolean(Spec.Autotune));
  J.set("timeout_sec", JsonValue::number(Spec.TimeoutSec));
  J.set("checkpoint_every", JsonValue::number(Spec.CheckpointEveryN));
  J.set("progress_every", JsonValue::number(Spec.ProgressEvery));
  if (Spec.TissueNX > 0) {
    J.set("tissue_nx", JsonValue::number(Spec.TissueNX));
    J.set("tissue_ny", JsonValue::number(Spec.TissueNY));
    J.set("tissue_dx", JsonValue::number(Spec.TissueDx));
    J.set("tissue_sigma", JsonValue::number(Spec.TissueSigma));
    J.set("tissue_method",
          JsonValue::string(sim::diffusionMethodName(
              sim::DiffusionMethod(Spec.TissueMethod))));
    if (!Spec.TissueStim.empty())
      J.set("tissue_stim", JsonValue::string(Spec.TissueStim));
  }
  if (!Spec.EnsembleSweep.empty()) {
    J.set("ensemble_sweep", JsonValue::string(Spec.EnsembleSweep));
    J.set("ensemble_cells_per", JsonValue::number(Spec.EnsembleCellsPer));
  }
  J.set("engine", JsonValue::string(exec::engineTierName(Spec.Tier)));
  J.set("config", std::move(Cfg));
  return J;
}

//===----------------------------------------------------------------------===//
// Event lines
//===----------------------------------------------------------------------===//

std::string daemon::acceptedEvent(uint64_t Id, size_t QueueDepth) {
  JsonValue J = JsonValue::object();
  J.set("event", JsonValue::string("accepted"));
  J.set("id", JsonValue::number(Id));
  J.set("queue_depth", JsonValue::number(uint64_t(QueueDepth)));
  return J.str();
}

std::string daemon::rejectedEvent(std::string_view Reason,
                                  std::string_view Detail) {
  JsonValue J = JsonValue::object();
  J.set("event", JsonValue::string("rejected"));
  J.set("reason", JsonValue::string(Reason));
  if (!Detail.empty())
    J.set("detail", JsonValue::string(Detail));
  return J.str();
}

std::string daemon::progressEvent(uint64_t Id, int64_t Steps, int64_t Target) {
  JsonValue J = JsonValue::object();
  J.set("event", JsonValue::string("progress"));
  J.set("id", JsonValue::number(Id));
  J.set("steps", JsonValue::number(Steps));
  J.set("target", JsonValue::number(Target));
  return J.str();
}

std::string daemon::terminalEvent(JobState S, uint64_t Id, int64_t Steps,
                                  double Checksum, int64_t Degraded,
                                  int64_t Frozen, std::string_view Error,
                                  bool Replayed, int64_t MembersOk,
                                  int64_t MembersQuarantined) {
  JsonValue J = JsonValue::object();
  J.set("event", JsonValue::string(jobStateName(S)));
  J.set("id", JsonValue::number(Id));
  J.set("steps", JsonValue::number(Steps));
  if (S == JobState::Finished) {
    // The checksum travels as a string: %.17g round-trips the double
    // exactly and the smoke test compares it textually.
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", Checksum);
    J.set("checksum", JsonValue::string(Buf));
    J.set("degraded", JsonValue::number(Degraded));
    J.set("frozen", JsonValue::number(Frozen));
    if (MembersOk >= 0) {
      J.set("members_ok", JsonValue::number(MembersOk));
      J.set("members_quarantined", JsonValue::number(MembersQuarantined));
    }
  }
  if (!Error.empty())
    J.set("error", JsonValue::string(Error));
  if (Replayed)
    J.set("replayed", JsonValue::boolean(true));
  return J.str();
}

std::string daemon::okEvent(std::string_view Detail) {
  JsonValue J = JsonValue::object();
  J.set("event", JsonValue::string("ok"));
  if (!Detail.empty())
    J.set("detail", JsonValue::string(Detail));
  return J.str();
}

std::string daemon::errorEvent(std::string_view Error) {
  JsonValue J = JsonValue::object();
  J.set("event", JsonValue::string("error"));
  J.set("error", JsonValue::string(Error));
  return J.str();
}
