//===- Server.cpp ---------------------------------------------------------===//

#include "daemon/Server.h"

#include "support/Signals.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <filesystem>

#ifndef _WIN32
#include <cerrno>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

using namespace limpet;
using namespace limpet::daemon;

Server::Server(Options Opts)
    : O(std::move(Opts)), Jrnl(O.StateDir + "/journal.lmpj"),
      Queue(O.Limits),
      Runner({O.StateDir, O.SimThreads, O.DefaultCheckpointEvery}, Jrnl) {}

Server::~Server() {
#ifndef _WIN32
  if (ListenFd >= 0)
    ::close(ListenFd);
#endif
}

#ifdef _WIN32

Status Server::start() {
  return Status::error("limpetd requires POSIX sockets");
}
int Server::serve() { return 1; }
Status Server::recover() { return Status::success(); }
void Server::readerLoop(std::shared_ptr<Conn>) {}
void Server::writerLoop(std::shared_ptr<Conn>) {}
void Server::runnerLoop() {}
void Server::dispatch(Conn &, const std::string &) {}
void Server::handleSubmit(Conn &, const JsonValue &) {}
void Server::handleCancel(Conn &, const JsonValue &) {}
void Server::handleStatus(Conn &, const JsonValue &) {}
void Server::handleStats(Conn &, const JsonValue &) {}
struct Server::Conn {};

#else

//===----------------------------------------------------------------------===//
// Connection state
//===----------------------------------------------------------------------===//

struct Server::Conn {
  int Fd = -1;
  /// Guards socket writes: the reader (immediate responses) and the
  /// writer (streamed job events) interleave whole lines. Only
  /// connection threads ever take it — never a runner.
  std::mutex WriteMutex;
  /// Jobs this connection submitted; their rings feed the writer.
  std::mutex JobsMutex;
  std::vector<JobPtr> Subscribed;
  std::atomic<bool> Done{false};

  ~Conn() {
    if (Fd >= 0)
      ::close(Fd);
  }

  /// Sends one NDJSON line. A failed send (client gone) marks the
  /// connection done; SIGPIPE is suppressed per call so a vanished
  /// client is an error code, not a process signal.
  void writeLine(const std::string &Line) {
    std::lock_guard<std::mutex> Lock(WriteMutex);
    std::string Framed = Line + "\n";
    size_t Off = 0;
    while (Off < Framed.size()) {
      ssize_t N = ::send(Fd, Framed.data() + Off, Framed.size() - Off,
                         MSG_NOSIGNAL);
      if (N < 0) {
        if (errno == EINTR)
          continue;
        Done.store(true, std::memory_order_release);
        return;
      }
      Off += size_t(N);
    }
  }

  void subscribe(JobPtr J) {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    Subscribed.push_back(std::move(J));
  }

  /// Closes every subscribed ring so producers stop queuing events for a
  /// client that is gone.
  void closeRings() {
    std::lock_guard<std::mutex> Lock(JobsMutex);
    for (const JobPtr &J : Subscribed)
      if (J->Ring)
        J->Ring->close();
  }
};

//===----------------------------------------------------------------------===//
// Startup: recovery, socket, runner pool
//===----------------------------------------------------------------------===//

Status Server::recover() {
  bool Truncated = false;
  Expected<std::vector<Journal::Record>> All =
      Journal::readAll(Jrnl.path(), &Truncated);
  if (!All)
    return All.status();
  if (Truncated)
    telemetry::counter("daemon.journal.truncated_tail").add();

  uint64_t MaxId = 0;
  for (const Journal::Record &R : *All)
    MaxId = std::max(MaxId, R.JobId);
  NextId.store(MaxId + 1);

  std::vector<Journal::Record> Live = Journal::unfinished(*All);
  // Compact before re-admission: the journal now holds exactly the live
  // Accepted records, and new appends land after them.
  if (Status S = Journal::compact(Jrnl.path(), Live); !S)
    return S;
  if (Status S = Jrnl.open(); !S)
    return S;

  Replayed = 0;
  for (const Journal::Record &Rec : Live) {
    Expected<JsonValue> Body = JsonValue::parse(Rec.Payload);
    if (!Body) {
      Jrnl.append(Journal::Kind::Failed, Rec.JobId,
                  "recovery: unparseable journal payload");
      continue;
    }
    Expected<JobSpec> Spec = parseJobSpec(*Body);
    if (!Spec) {
      Jrnl.append(Journal::Kind::Failed, Rec.JobId,
                  "recovery: " + Spec.status().message());
      continue;
    }
    JobPtr J = std::make_shared<Job>();
    J->Spec = *Spec;
    J->Spec.Id = Rec.JobId;
    J->Replayed = true; // no ring: the submitting client died with us
    JobQueue::Admission A = Queue.submit(J);
    if (!A.Accepted) {
      // Replay goes through the same admission path as live submits; a
      // queue reconfigured smaller across the restart can overflow.
      Jrnl.append(Journal::Kind::Failed, Rec.JobId,
                  "recovery: not re-admitted (" + A.Reason + ")");
      continue;
    }
    if (A.Shed)
      Jrnl.append(Journal::Kind::Shed, A.Shed->Spec.Id);
    ++Replayed;
    telemetry::counter("daemon.jobs.recovered").add();
  }
  return Status::success();
}

Status Server::start() {
  std::error_code Ec;
  std::filesystem::create_directories(O.StateDir, Ec);
  if (Ec)
    return Status::error("cannot create state dir '" + O.StateDir +
                         "': " + Ec.message());

  if (Status S = recover(); !S)
    return S;

  sockaddr_un Addr{};
  if (O.SocketPath.size() >= sizeof(Addr.sun_path))
    return Status::error("socket path too long: '" + O.SocketPath + "'");
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (ListenFd < 0)
    return Status::error(std::string("socket: ") + std::strerror(errno));
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, O.SocketPath.c_str(), sizeof(Addr.sun_path) - 1);
  // A stale socket file from a killed daemon would make bind fail; the
  // journal, not the socket, is what carries state across restarts.
  ::unlink(O.SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0)
    return Status::error("bind '" + O.SocketPath +
                         "': " + std::strerror(errno));
  if (::listen(ListenFd, 16) != 0)
    return Status::error(std::string("listen: ") + std::strerror(errno));

  for (unsigned I = 0; I != std::max(1u, O.Runners); ++I)
    Runners.emplace_back([this] { runnerLoop(); });
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Accept loop
//===----------------------------------------------------------------------===//

int Server::serve() {
  while (!support::shutdownRequested() &&
         !Stopping.load(std::memory_order_acquire)) {
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, 200);
    if (R < 0) {
      if (errno == EINTR)
        continue; // a signal landed; the loop condition re-checks
      break;
    }
    if (R == 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    auto C = std::make_shared<Conn>();
    C->Fd = Fd;
    std::lock_guard<std::mutex> Lock(ReadersMutex);
    Readers.emplace_back([this, C] { readerLoop(C); });
  }

  // Drain: stop admissions, let running jobs hit their shutdown poll
  // (they checkpoint and return non-terminal), join everything.
  Stopping.store(true, std::memory_order_release);
  support::requestShutdown(); // running Simulators stop at next boundary
  Queue.shutdown();
  for (std::thread &T : Runners)
    T.join();
  {
    std::lock_guard<std::mutex> Lock(ReadersMutex);
    for (std::thread &T : Readers)
      T.join();
  }
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(O.SocketPath.c_str());
  Jrnl.close();
  return 0;
}

void Server::runnerLoop() {
  while (JobPtr J = Queue.pop()) {
    Runner.execute(*J);
    Queue.finished(J);
  }
}

//===----------------------------------------------------------------------===//
// Connection threads
//===----------------------------------------------------------------------===//

void Server::readerLoop(std::shared_ptr<Conn> C) {
  std::thread Writer([this, C] { writerLoop(C); });
  std::string Buf;
  char Tmp[4096];
  while (!C->Done.load(std::memory_order_acquire) &&
         !Stopping.load(std::memory_order_acquire)) {
    pollfd P{C->Fd, POLLIN, 0};
    int R = ::poll(&P, 1, 200);
    if (R < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (R == 0)
      continue;
    ssize_t N = ::recv(C->Fd, Tmp, sizeof(Tmp), 0);
    if (N <= 0)
      break;
    Buf.append(Tmp, size_t(N));
    size_t Nl;
    while ((Nl = Buf.find('\n')) != std::string::npos) {
      std::string Line = Buf.substr(0, Nl);
      Buf.erase(0, Nl + 1);
      if (!Line.empty())
        dispatch(*C, Line);
    }
    if (Buf.size() > (1u << 20)) {
      // A megabyte without a newline is not a protocol line.
      C->writeLine(errorEvent("request line too long"));
      break;
    }
  }
  C->Done.store(true, std::memory_order_release);
  Writer.join();
  C->closeRings();
}

void Server::writerLoop(std::shared_ptr<Conn> C) {
  // Poll the subscribed rings. 1 ms of latency on a progress event is
  // invisible to clients; what matters is that producers never wait.
  while (!C->Done.load(std::memory_order_acquire)) {
    bool Wrote = false;
    {
      std::lock_guard<std::mutex> Lock(C->JobsMutex);
      for (const JobPtr &J : C->Subscribed) {
        std::string Line;
        while (J->Ring && J->Ring->tryPop(Line)) {
          C->writeLine(Line);
          Wrote = true;
        }
      }
    }
    if (!Wrote)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

//===----------------------------------------------------------------------===//
// Request dispatch
//===----------------------------------------------------------------------===//

void Server::dispatch(Conn &C, const std::string &Line) {
  Expected<JsonValue> Req = JsonValue::parse(Line);
  if (!Req) {
    C.writeLine(errorEvent(Req.status().message()));
    return;
  }
  std::string Verb = Req->stringOr("verb", "");
  if (Verb == "submit")
    handleSubmit(C, *Req);
  else if (Verb == "cancel")
    handleCancel(C, *Req);
  else if (Verb == "status")
    handleStatus(C, *Req);
  else if (Verb == "stats")
    handleStats(C, *Req);
  else if (Verb == "ping")
    C.writeLine(okEvent("pong"));
  else if (Verb == "shutdown") {
    C.writeLine(okEvent("shutting down"));
    Stopping.store(true, std::memory_order_release);
  } else
    C.writeLine(errorEvent("unknown verb '" + Verb + "'"));
}

void Server::handleSubmit(Conn &C, const JsonValue &Body) {
  Expected<JobSpec> Spec = parseJobSpec(Body);
  if (!Spec) {
    telemetry::counter("daemon.jobs.rejected").add();
    C.writeLine(rejectedEvent("bad-request", Spec.status().message()));
    return;
  }
  JobPtr J = std::make_shared<Job>();
  J->Spec = *Spec;
  J->Spec.Id = NextId.fetch_add(1);
  J->Ring = std::make_shared<EventRing>(256);

  JobQueue::Admission A = Queue.submit(J);
  if (!A.Accepted) {
    telemetry::counter("daemon.jobs.rejected").add();
    telemetry::counter("daemon.jobs.rejected_" + A.Reason).add();
    C.writeLine(rejectedEvent(A.Reason, {}));
    return;
  }
  // Journal the admission before acknowledging it: once the client sees
  // "accepted", the job survives a daemon SIGKILL.
  Jrnl.append(Journal::Kind::Accepted, J->Spec.Id,
              jobSpecToJson(J->Spec).str());
  if (A.Shed) {
    Jrnl.append(Journal::Kind::Shed, A.Shed->Spec.Id);
    A.Shed->Error = "shed by higher-priority job " +
                    std::to_string(J->Spec.Id);
    if (A.Shed->Ring)
      A.Shed->Ring->tryPush(terminalEvent(JobState::Shed, A.Shed->Spec.Id, 0,
                                          0, 0, 0, A.Shed->Error, false));
    telemetry::counter("daemon.jobs.shed").add();
  }
  C.subscribe(J);
  telemetry::counter("daemon.jobs.accepted").add();
  telemetry::counter("daemon.tenant." + J->Spec.Tenant + ".accepted").add();
  C.writeLine(acceptedEvent(J->Spec.Id, Queue.queuedCount()));
}

void Server::handleCancel(Conn &C, const JsonValue &Body) {
  uint64_t Id = uint64_t(Body.numberOr("id", 0));
  JobPtr J = Queue.find(Id);
  if (!J) {
    C.writeLine(errorEvent("unknown job id " + std::to_string(Id)));
    return;
  }
  if (JobPtr Q = Queue.removeQueued(Id)) {
    // Never started: terminal immediately.
    Q->State.store(JobState::Cancelled, std::memory_order_release);
    Jrnl.append(Journal::Kind::Cancelled, Id);
    if (Q->Ring)
      Q->Ring->tryPush(
          terminalEvent(JobState::Cancelled, Id, 0, 0, 0, 0, {}, false));
    telemetry::counter("daemon.jobs.cancelled").add();
    C.writeLine(okEvent("cancelled while queued"));
    return;
  }
  JobState S = J->State.load(std::memory_order_acquire);
  if (jobStateTerminal(S)) {
    C.writeLine(errorEvent("job " + std::to_string(Id) + " already " +
                           std::string(jobStateName(S))));
    return;
  }
  // Running: cooperative. The Simulator stops at its next step boundary,
  // writes a final checkpoint, and the runner emits the terminal event.
  J->Token.cancel();
  C.writeLine(okEvent("cancel requested"));
}

static JsonValue jobStatusJson(const Job &J) {
  JsonValue S = JsonValue::object();
  S.set("id", JsonValue::number(J.Spec.Id));
  S.set("tenant", JsonValue::string(J.Spec.Tenant));
  S.set("model", JsonValue::string(J.Spec.Model));
  S.set("priority", JsonValue::number(int64_t(J.Spec.Priority)));
  S.set("state", JsonValue::string(
                     jobStateName(J.State.load(std::memory_order_acquire))));
  S.set("steps", JsonValue::number(J.StepsDone));
  if (J.MembersOk >= 0) {
    S.set("members_ok", JsonValue::number(J.MembersOk));
    S.set("members_quarantined", JsonValue::number(J.MembersQuarantined));
  }
  if (J.Replayed)
    S.set("replayed", JsonValue::boolean(true));
  if (!J.Error.empty())
    S.set("error", JsonValue::string(J.Error));
  if (J.Ring && J.Ring->dropped())
    S.set("dropped_events", JsonValue::number(J.Ring->dropped()));
  return S;
}

void Server::handleStatus(Conn &C, const JsonValue &Body) {
  JsonValue Out = JsonValue::object();
  Out.set("event", JsonValue::string("status"));
  if (const JsonValue *Id = Body.find("id")) {
    JobPtr J = Queue.find(uint64_t(Id->asNumber()));
    if (!J) {
      C.writeLine(errorEvent("unknown job id"));
      return;
    }
    Out.set("job", jobStatusJson(*J));
  } else {
    JsonValue Jobs = JsonValue::array();
    for (const JobPtr &J : Queue.all())
      Jobs.push(jobStatusJson(*J));
    Out.set("jobs", std::move(Jobs));
  }
  Out.set("queued", JsonValue::number(uint64_t(Queue.queuedCount())));
  Out.set("running", JsonValue::number(uint64_t(Queue.runningCount())));
  Out.set("shed", JsonValue::number(Queue.shedCount()));
  C.writeLine(Out.str());
}

void Server::handleStats(Conn &C, const JsonValue &Body) {
  // Tenant-scoped when asked: the prefix overload walks only the
  // requested subtree of the counter registry.
  std::string Tenant = Body.stringOr("tenant", "");
  std::string Prefix =
      Tenant.empty() ? std::string("daemon.") : "daemon.tenant." + Tenant + ".";
  JsonValue Counters = JsonValue::object();
  for (const auto &[Path, Value] :
       telemetry::Registry::instance().snapshot(Prefix))
    Counters.set(Path, JsonValue::number(Value));
  JsonValue Out = JsonValue::object();
  Out.set("event", JsonValue::string("stats"));
  Out.set("counters", std::move(Counters));
  Out.set("queued", JsonValue::number(uint64_t(Queue.queuedCount())));
  Out.set("running", JsonValue::number(uint64_t(Queue.runningCount())));
  Out.set("shed", JsonValue::number(Queue.shedCount()));
  C.writeLine(Out.str());
}

#endif // _WIN32
