//===- Journal.cpp --------------------------------------------------------===//

#include "daemon/Journal.h"

#include "compiler/Artifact.h"
#include "compiler/Serialize.h"
#include "support/FailPoint.h"

#include <cerrno>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <unistd.h>
#endif

using namespace limpet;
using namespace limpet::daemon;

/// "LJNL" little-endian: the per-record frame marker. Distinct from the
/// checkpoint and artifact magics so a misdirected file is rejected at
/// the first frame.
static constexpr uint32_t kJournalMagic = 0x4C4E4A4C;

static std::string frameRecord(Journal::Kind K, uint64_t JobId,
                               std::string_view Payload) {
  compiler::ByteWriter Body;
  Body.u8(uint8_t(K));
  Body.u64(JobId);
  Body.str(Payload);
  compiler::ByteWriter Frame;
  Frame.u32(kJournalMagic);
  Frame.u32(uint32_t(Body.Out.size()));
  Frame.u64(compiler::fnv1a64(Body.Out));
  Frame.Out += Body.Out;
  return std::move(Frame.Out);
}

Status Journal::open() {
#ifdef _WIN32
  return Status::error("the job journal requires a POSIX filesystem");
#else
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd >= 0)
    return Status::success();
  Fd = ::open(Path.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (Fd < 0)
    return Status::error("cannot open journal '" + Path +
                         "': " + std::strerror(errno));
  return Status::success();
#endif
}

void Journal::close() {
#ifndef _WIN32
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
#endif
}

Status Journal::append(Kind K, uint64_t JobId, std::string_view Payload) {
#ifdef _WIN32
  (void)K;
  (void)JobId;
  (void)Payload;
  return Status::error("the job journal requires a POSIX filesystem");
#else
  std::string Frame = frameRecord(K, JobId, Payload);
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Fd < 0)
    return Status::error("journal '" + Path + "' is not open");
  // The disk filling up must surface as a recoverable Status with no
  // partial frame appended (the failpoint fires before any bytes go
  // out; a real mid-frame ENOSPC leaves a torn tail, which readAll
  // already drops as truncated).
  if (support::failPoint("write-enospc")) {
    errno = ENOSPC;
    return Status::error("journal append failed: " +
                         std::string(std::strerror(errno)));
  }
  // One write per record: O_APPEND makes the offset atomic, and a crash
  // mid-write only ever truncates the tail record, which readAll drops.
  const char *P = Frame.data();
  size_t Left = Frame.size();
  while (Left > 0) {
    ssize_t N = ::write(Fd, P, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return Status::error("journal append failed: " +
                           std::string(std::strerror(errno)));
    }
    P += N;
    Left -= size_t(N);
  }
  if (compiler::durableFsyncEnabled() && ::fsync(Fd) != 0)
    return Status::error("journal fsync failed: " +
                         std::string(std::strerror(errno)));
  return Status::success();
#endif
}

Expected<std::vector<Journal::Record>>
Journal::readAll(const std::string &Path, bool *TruncatedOut) {
  if (TruncatedOut)
    *TruncatedOut = false;
  std::string Bytes;
  if (Status S = compiler::readFileBytes(Path, Bytes); !S) {
    // A journal that does not exist yet (first daemon start) is simply
    // empty; an unreadable one recovers to empty rather than refusing to
    // start — the worst case is forgetting jobs, never corrupting state.
    return std::vector<Record>();
  }
  std::vector<Record> Out;
  size_t Pos = 0;
  while (Pos < Bytes.size()) {
    compiler::ByteReader Header(
        std::string_view(Bytes).substr(Pos, 16));
    uint32_t Magic = Header.u32();
    uint32_t Len = Header.u32();
    uint64_t Sum = Header.u64();
    if (Header.failed() || Magic != kJournalMagic ||
        Pos + 16 + Len > Bytes.size()) {
      // Truncated or corrupt tail: everything before it is good.
      if (TruncatedOut)
        *TruncatedOut = true;
      break;
    }
    std::string_view Body = std::string_view(Bytes).substr(Pos + 16, Len);
    if (compiler::fnv1a64(Body) != Sum) {
      if (TruncatedOut)
        *TruncatedOut = true;
      break;
    }
    compiler::ByteReader R(Body);
    Record Rec;
    Rec.K = Kind(R.u8());
    Rec.JobId = R.u64();
    Rec.Payload = R.str();
    if (R.failed() || uint8_t(Rec.K) < uint8_t(Kind::Accepted) ||
        uint8_t(Rec.K) > uint8_t(Kind::Shed)) {
      if (TruncatedOut)
        *TruncatedOut = true;
      break;
    }
    Out.push_back(std::move(Rec));
    Pos += 16 + Len;
  }
  return Out;
}

std::vector<Journal::Record>
Journal::unfinished(const std::vector<Record> &All) {
  std::vector<Record> Live;
  for (const Record &R : All) {
    if (R.K == Kind::Accepted) {
      Live.push_back(R);
      continue;
    }
    if (R.K == Kind::Started)
      continue; // non-terminal
    for (size_t I = 0; I != Live.size(); ++I)
      if (Live[I].JobId == R.JobId) {
        Live.erase(Live.begin() + long(I));
        break;
      }
  }
  return Live;
}

Status Journal::compact(const std::string &Path,
                        const std::vector<Record> &Live) {
  std::string Bytes;
  for (const Record &R : Live)
    Bytes += frameRecord(R.K, R.JobId, R.Payload);
  return compiler::writeFileAtomic(Bytes, Path);
}
