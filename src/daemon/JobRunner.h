//===- JobRunner.h - One job, admission to terminal state -------*- C++-*-===//
//
// Executes a single accepted job end to end: resolve the model, compile
// it through the CompilerDriver (content-addressed cache, so repeat jobs
// skip codegen), probe and prepare the job's checkpoint directory, run
// the Simulator with the job's cancel token and progress stream, and map
// the outcome to a terminal JobState with its journal record, NDJSON
// event, and on-disk result file.
//
// Fault isolation is the point: every failure mode — unknown model,
// compile error, invalid config, unwritable state dir — lands in a
// structured Failed record for *this* job, and a guarded run that froze
// cells still Finishes with the degradation counts attached. Nothing a
// job does can take down the daemon or its neighbours.
//
// A shutdown-interrupted job is the one non-terminal outcome: the runner
// leaves no terminal journal record, so the next daemon start replays
// the job from its newest valid checkpoint (bit-identical continuation,
// same guarantee as limpetc --resume).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_DAEMON_JOBRUNNER_H
#define LIMPET_DAEMON_JOBRUNNER_H

#include "daemon/JobQueue.h"
#include "daemon/Journal.h"

#include <string>

namespace limpet {
namespace daemon {

class JobRunner {
public:
  struct Config {
    /// Daemon state directory; each job gets StateDir/job-<id>/ with its
    /// rotated checkpoints and result file.
    std::string StateDir;
    /// Worker threads each simulation steps with (they share the global
    /// ThreadPool; concurrent fork-joins serialize at its submit lock).
    unsigned SimThreads = 2;
    /// Durable checkpoint cadence for jobs that do not specify one.
    int64_t DefaultCheckpointEvery = 10000;
  };

  JobRunner(Config C, Journal &J) : Cfg(std::move(C)), Jrnl(J) {}

  /// Runs \p J to a terminal state (journal + result file + terminal
  /// event pushed to its ring), or to shutdown-interruption (no terminal
  /// record; the job replays on restart). Returns the state the job
  /// ended in — Queued when interrupted by shutdown.
  JobState execute(Job &J);

  /// The per-job state directory ("<state>/job-<id>").
  std::string jobDir(uint64_t Id) const;

private:
  JobState finish(Job &J, JobState S);
  JobState fail(Job &J, std::string Error);

  Config Cfg;
  Journal &Jrnl;
};

} // namespace daemon
} // namespace limpet

#endif // LIMPET_DAEMON_JOBRUNNER_H
