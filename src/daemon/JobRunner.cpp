//===- JobRunner.cpp ------------------------------------------------------===//

#include "daemon/JobRunner.h"

#include "compiler/CompilerDriver.h"
#include "compiler/Serialize.h"
#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Ensemble.h"
#include "sim/Simulator.h"
#include "sim/TissueSimulator.h"
#include "support/Telemetry.h"

#include <chrono>
#include <memory>
#include <optional>
#include <thread>

using namespace limpet;
using namespace limpet::daemon;

std::string JobRunner::jobDir(uint64_t Id) const {
  return Cfg.StateDir + "/job-" + std::to_string(Id);
}

static Journal::Kind journalKind(JobState S) {
  switch (S) {
  case JobState::Finished:
    return Journal::Kind::Finished;
  case JobState::Failed:
    return Journal::Kind::Failed;
  case JobState::Cancelled:
    return Journal::Kind::Cancelled;
  case JobState::Expired:
    return Journal::Kind::Expired;
  case JobState::Shed:
    return Journal::Kind::Shed;
  default:
    return Journal::Kind::Started;
  }
}

/// Terminal events must not be lost to a momentarily full ring the way
/// progress samples may be; retry briefly, but never block the runner on
/// a dead client (the result file and journal carry the truth anyway).
static void pushTerminal(Job &J, const std::string &Line) {
  if (!J.Ring)
    return;
  for (int Attempt = 0; Attempt != 500; ++Attempt) {
    if (J.Ring->tryPush(Line) || J.Ring->closed())
      return;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

JobState JobRunner::finish(Job &J, JobState S) {
  std::string Event =
      terminalEvent(S, J.Spec.Id, J.StepsDone, J.Checksum, J.Degraded,
                    J.Frozen, J.Error, J.Replayed, J.MembersOk,
                    J.MembersQuarantined);
  // Journal first (the durable truth), then the result file (what the
  // smoke harness and late status queries read), then the live stream.
  Jrnl.append(journalKind(S), J.Spec.Id, J.Error);
  compiler::writeFileAtomic(Event + "\n", jobDir(J.Spec.Id) + "/result.json");
  J.State.store(S, std::memory_order_release);
  pushTerminal(J, Event);
  telemetry::counter(std::string("daemon.jobs.") +
                     std::string(jobStateName(S)))
      .add();
  telemetry::counter("daemon.tenant." + J.Spec.Tenant + "." +
                     std::string(jobStateName(S)))
      .add();
  return S;
}

JobState JobRunner::fail(Job &J, std::string Error) {
  J.Error = std::move(Error);
  return finish(J, JobState::Failed);
}

JobState JobRunner::execute(Job &J) {
  Jrnl.append(Journal::Kind::Started, J.Spec.Id);
  telemetry::counter("daemon.jobs.started").add();
  if (J.Replayed)
    telemetry::counter("daemon.jobs.replayed").add();

  const models::ModelEntry *Entry = models::findModel(J.Spec.Model);
  if (!Entry)
    return fail(J, "unknown model '" + J.Spec.Model + "'");

  // Compile through the driver: the content-addressed cache makes repeat
  // jobs (and replays) warm starts that skip every codegen stage.
  compiler::DriverOptions DOpts;
  DOpts.Config = J.Spec.Config;
  DOpts.Tier = J.Spec.Tier;
  DOpts.Autotune = J.Spec.Autotune;
  compiler::CompilerDriver Driver(DOpts);
  compiler::CompileResult R = Driver.compileEntry(*Entry);
  if (!R)
    return fail(J, "compile failed: " + R.Err.message());
  // The native tier degrades, never fails: a job asking for it on a box
  // without a toolchain runs on the VM (bit-identical results), and the
  // fallback is visible in telemetry rather than the job outcome.
  if (J.Spec.Tier != exec::EngineTier::VM) {
    telemetry::counter(R.NativeAttached ? "daemon.jobs.native"
                                        : "daemon.jobs.native_fallback")
        .add();
  }

  std::string Dir = jobDir(J.Spec.Id);
  std::string CkptDir = Dir + "/ckpt";
  sim::CheckpointStore Store(CkptDir);
  // Probe up front: an unwritable state directory is this job's clean
  // failure, not a crash at its first checkpoint.
  if (Status St = Store.prepare(); !St)
    return fail(J, "checkpoint dir: " + St.message());

  sim::SimOptions Opts;
  Opts.NumCells = J.Spec.NumCells;
  Opts.NumSteps = J.Spec.NumSteps;
  Opts.Dt = J.Spec.Dt;
  Opts.NumThreads = Cfg.SimThreads;
  Opts.StimPeriod = 100.0;
  Opts.Guard.Enabled = J.Spec.Guard;
  Opts.Checkpoint.Dir = CkptDir;
  // -1 = cadence unspecified: the daemon's default keeps jobs resumable
  // without every client opting in; an explicit 0 means final-checkpoint
  // only (the interrupt path still writes one).
  Opts.Checkpoint.EveryN = J.Spec.CheckpointEveryN >= 0
                               ? J.Spec.CheckpointEveryN
                               : Cfg.DefaultCheckpointEvery;
  Opts.Checkpoint.SourceHash = R.SourceHash;
  Opts.Cancel = &J.Token;
  if (J.Spec.ProgressEvery > 0 && J.Ring) {
    Opts.ProgressEvery = J.Spec.ProgressEvery;
    EventRing *Ring = J.Ring.get();
    uint64_t Id = J.Spec.Id;
    // tryPush only: a stalled client drops progress samples, it never
    // slows the stepping loop.
    Opts.Progress = [Ring, Id](int64_t Steps, int64_t Target) {
      Ring->tryPush(progressEvent(Id, Steps, Target));
    };
  }

  // The ensemble model owns the lowered CompiledModel; declared before
  // Sim so it outlives the runner built on it.
  std::optional<sim::EnsembleModel> EMod;
  sim::EnsembleRunner *EnsSim = nullptr;
  std::unique_ptr<sim::Simulator> Sim;
  if (J.Spec.TissueNX > 0) {
    // Tissue job: the reaction-diffusion driver over the spec's grid.
    // The journal carries the same fields, so a replayed job rebuilds an
    // identical driver and its checkpoint's tissue section matches.
    sim::TissueOptions TO;
    TO.Grid = {J.Spec.TissueNX, J.Spec.TissueNY, J.Spec.TissueDx};
    TO.Sigma = J.Spec.TissueSigma;
    TO.Method = sim::DiffusionMethod(J.Spec.TissueMethod);
    if (!J.Spec.TissueStim.empty()) {
      Expected<sim::StimulusProtocol> P =
          sim::StimulusProtocol::parse(J.Spec.TissueStim, TO.Grid);
      if (!P)
        return fail(J, "tissue stimulus: " + P.status().message());
      TO.Stim = *P;
    }
    TO.Sim = Opts;
    auto TS = std::make_unique<sim::TissueSimulator>(*R.Model, TO);
    if (Status St = TS->preflight(); !St)
      return fail(J, "tissue preflight: " + St.message());
    telemetry::counter("daemon.jobs.tissue").add();
    Sim = std::move(TS);
  } else if (!J.Spec.EnsembleSweep.empty()) {
    // Ensemble job: one kernel for the whole sweep. Admission already
    // validated the grammar; re-parsing here keeps journal replay safe
    // against a hand-edited journal, and the model-specific checks
    // (unknown parameter names) land in a structured Failed record.
    Expected<sim::EnsembleSpec> ESpec = sim::EnsembleSpec::fromSweep(
        J.Spec.EnsembleSweep, J.Spec.EnsembleCellsPer);
    if (!ESpec)
      return fail(J, "ensemble sweep: " + ESpec.status().message());
    DiagnosticEngine Diags;
    auto Info = easyml::compileModelInfo(Entry->Name, Entry->Source, Diags);
    if (!Info)
      return fail(J, "ensemble frontend: " + Diags.str());
    Expected<sim::EnsembleModel> Built = sim::buildEnsembleModel(
        *Info, std::move(*ESpec), R.Model->config());
    if (!Built)
      return fail(J, "ensemble: " + Built.status().message());
    EMod.emplace(std::move(*Built));
    auto ER = std::make_unique<sim::EnsembleRunner>(*EMod, Opts);
    EnsSim = ER.get();
    telemetry::counter("daemon.jobs.ensemble").add();
    Sim = std::move(ER);
  } else {
    Sim = std::make_unique<sim::Simulator>(*R.Model, Opts);
  }
  sim::Simulator &S = *Sim;

  // Replay path: continue from the newest valid checkpoint. A job that
  // has none (killed before its first checkpoint) starts over — same
  // spec, same result.
  if (J.Replayed) {
    if (Expected<sim::CheckpointData> C = Store.loadNewestValid()) {
      if (Status St = S.resumeFrom(*C); !St)
        telemetry::counter("daemon.jobs.resume_failed").add();
    }
  }

  if (J.Spec.TimeoutSec > 0)
    J.Token.setDeadlineAfter(J.Spec.TimeoutSec);

  S.run();

  J.StepsDone = S.stepsDone();
  // The interruption check MUST come before any terminal accounting —
  // ensemble quarantines included. A member that hit its dt-floor while
  // the daemon was shutting down is a *non-terminal* outcome: the final
  // checkpoint's ensemble section already pins its quarantine, and the
  // journal's Accepted-without-terminal shape replays the job, which
  // resumes with that member still quarantined. Writing a terminal
  // record here instead would turn a routine restart into a lost sweep.
  if (S.interrupted()) {
    switch (S.stopReason()) {
    case sim::StopReason::Cancelled:
      return finish(J, JobState::Cancelled);
    case sim::StopReason::DeadlineExpired:
      return finish(J, JobState::Expired);
    default:
      // Process shutdown: deliberately no terminal record. The journal's
      // Accepted-without-terminal shape marks this job for replay, and
      // its final checkpoint is already on disk.
      J.State.store(JobState::Queued, std::memory_order_release);
      telemetry::counter("daemon.jobs.interrupted").add();
      return JobState::Queued;
    }
  }

  J.Checksum = S.stateChecksum();
  J.Degraded = S.report().CellsDegraded;
  J.Frozen = S.report().CellsFrozen;
  if (EnsSim) {
    // Partial-result delivery: the sweep finishes with every member
    // accounted for; quarantined members are reported, never fatal.
    J.MembersOk = EnsSim->membersOk();
    J.MembersQuarantined = EnsSim->membersQuarantined();
    compiler::writeFileAtomic(EnsSim->memberStatsNdjson(),
                              Dir + "/members.ndjson");
  }
  return finish(J, JobState::Finished);
}
