//===- Protocol.h - limpetd wire protocol and job model ---------*- C++-*-===//
//
// The daemon's control protocol is newline-delimited JSON over a Unix
// domain socket: one request object per line in, one response or event
// object per line out (docs/DAEMON.md has the full verb table). This
// header defines the parsed forms — the JobSpec a `submit` carries, the
// job lifecycle states — and the (de)serialization both the wire and the
// job journal share: a journaled job is exactly its submit spec, so a
// recovered daemon re-admits jobs through the same code path a live
// client uses.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_DAEMON_PROTOCOL_H
#define LIMPET_DAEMON_PROTOCOL_H

#include "daemon/Json.h"
#include "exec/CompiledModel.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace limpet {
namespace daemon {

/// Where a job sits in its lifecycle. Queued/Running are live;
/// everything after is terminal. Shutdown-interrupted jobs never reach a
/// terminal state in the journal — that absence is what marks them for
/// replay on restart.
enum class JobState : uint8_t {
  Queued = 0,
  Running,
  Finished,  ///< ran to its step target
  Failed,    ///< compile error, bad spec, unwritable state dir, ...
  Cancelled, ///< explicit cancel verb
  Expired,   ///< per-job wall-clock deadline passed
  Shed,      ///< evicted from a full queue by a higher-priority submit
};

std::string_view jobStateName(JobState S);
bool jobStateTerminal(JobState S);

/// Everything a `submit` request specifies about one simulation job.
/// Serialized verbatim into the journal's Accepted record, so a replayed
/// job re-runs under exactly the spec its client submitted.
struct JobSpec {
  uint64_t Id = 0; ///< assigned by the daemon at admission
  std::string Tenant = "default";
  /// Larger runs first among a tenant's queued jobs, and only a
  /// higher-priority submit may shed a queued lower-priority job.
  int Priority = 0;
  std::string Model; ///< registry model name

  // Simulation protocol (Simulator defaults when omitted on the wire).
  int64_t NumCells = 256;
  int64_t NumSteps = 1000;
  double Dt = 0.01;
  bool Guard = true;

  /// Wall-clock execution budget in seconds (0 = none). Measures run
  /// time, not queue wait: a job that waits out a burst is not punished
  /// for the daemon's backlog.
  double TimeoutSec = 0;
  /// Durable checkpoint cadence in steps: >0 is an explicit cadence,
  /// 0 opts out of periodic checkpoints (final checkpoint only), and -1
  /// (the omitted-on-the-wire default) takes the daemon's default
  /// cadence — jobs are resumable by default.
  int64_t CheckpointEveryN = -1;
  /// Progress event cadence in steps (0 = no progress streaming).
  int64_t ProgressEvery = 0;

  // Tissue protocol ("tissue_nx" > 0 engages the reaction-diffusion
  // driver; the grid's node count then replaces NumCells). Serialized
  // into the journal like every other field, so a replayed tissue job
  // resumes against a checkpoint carrying the identical geometry.
  int64_t TissueNX = 0; ///< 0 = plain uncoupled population
  int64_t TissueNY = 1;
  double TissueDx = 0.025;    ///< node spacing, cm
  double TissueSigma = 0.001; ///< effective diffusivity, cm^2/ms
  uint8_t TissueMethod = 0;   ///< sim::DiffusionMethod
  std::string TissueStim;     ///< --stim grammar; "" = default edge train

  // Ensemble protocol (a non-empty "ensemble_sweep" engages the
  // fault-isolated parameter-sweep runner; the sweep's member count then
  // replaces NumCells). Admission validates the grid grammar against
  // sim::EnsembleSpec::fromSweep, so a malformed sweep is rejected at
  // submit, and the journal carries the same string so a replayed sweep
  // resumes against a checkpoint with the identical spec hash.
  std::string EnsembleSweep;    ///< sim::EnsembleSpec::fromSweep grammar
  int64_t EnsembleCellsPer = 1; ///< cells each member simulates

  exec::EngineConfig Config; ///< engine configuration (baseline default)
  /// With "width": "auto" and no persisted tuning record: run the width
  /// autotuner (benchmark every registry point, persist the winner)
  /// instead of falling back to the capability heuristic.
  bool Autotune = false;
  /// Execution tier ("engine" on the wire: vm/native/auto, default vm).
  /// Native/auto jobs attach a specialized dlopen'd kernel when the box
  /// has a toolchain and fall back to the VM when it doesn't — a submit
  /// never fails because the daemon host lacks a compiler.
  exec::EngineTier Tier = exec::EngineTier::VM;
};

/// Parses the body of a `submit` request (also the journal payload).
/// Unknown fields are ignored; structurally invalid specs (missing
/// model, non-positive counts, bad layout name) are recoverable errors.
Expected<JobSpec> parseJobSpec(const JsonValue &Body);

/// The spec as a JSON object — the journal payload and the `status`
/// verb's job rendering both use it.
JsonValue jobSpecToJson(const JobSpec &Spec);

//===----------------------------------------------------------------------===//
// Event lines (daemon -> client)
//===----------------------------------------------------------------------===//

/// {"event":"accepted","id":N,"queue_depth":D}
std::string acceptedEvent(uint64_t Id, size_t QueueDepth);
/// {"event":"rejected","reason":R[,"detail":D]}
std::string rejectedEvent(std::string_view Reason, std::string_view Detail);
/// {"event":"progress","id":N,"steps":S,"target":T}
std::string progressEvent(uint64_t Id, int64_t Steps, int64_t Target);
/// Terminal event: {"event":<state>,"id":N,"steps":S,...}. Finished jobs
/// carry the state checksum (printf %.17g, round-trippable) and the
/// degraded/frozen cell counts; failed jobs carry the error text.
/// Finished ensemble jobs additionally carry "members_ok" and
/// "members_quarantined" (partial-result delivery: a sweep with
/// quarantined members still finishes); MembersOk < 0 marks a
/// non-ensemble job and omits both fields.
std::string terminalEvent(JobState S, uint64_t Id, int64_t Steps,
                          double Checksum, int64_t Degraded, int64_t Frozen,
                          std::string_view Error, bool Replayed,
                          int64_t MembersOk = -1,
                          int64_t MembersQuarantined = -1);
/// {"event":"ok"[,"detail":D]}
std::string okEvent(std::string_view Detail = {});
/// {"event":"error","error":E}
std::string errorEvent(std::string_view Error);

} // namespace daemon
} // namespace limpet

#endif // LIMPET_DAEMON_PROTOCOL_H
