//===- JobQueue.cpp -------------------------------------------------------===//

#include "daemon/JobQueue.h"

#include <algorithm>

using namespace limpet;
using namespace limpet::daemon;

JobQueue::Admission JobQueue::submit(JobPtr J) {
  Admission Out;
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Stopped) {
    Out.Reason = "shutting-down";
    return Out;
  }

  // Per-tenant in-flight cap: queued + running.
  int InFlight = 0;
  auto RIt = Running.find(J->Spec.Tenant);
  if (RIt != Running.end())
    InFlight += RIt->second;
  for (const JobPtr &Q : Queue)
    if (Q->Spec.Tenant == J->Spec.Tenant)
      ++InFlight;
  if (InFlight >= L.PerTenantInFlight) {
    Out.Reason = "tenant-cap";
    return Out;
  }

  if (Queue.size() >= L.MaxQueued) {
    // Shed the lowest-priority queued job — youngest among ties, so the
    // oldest work of a given priority survives — but only for a strictly
    // higher-priority submit. Equal priority waits its turn: reject.
    auto Victim = Queue.end();
    for (auto It = Queue.begin(); It != Queue.end(); ++It)
      if (Victim == Queue.end() ||
          (*It)->Spec.Priority < (*Victim)->Spec.Priority ||
          ((*It)->Spec.Priority == (*Victim)->Spec.Priority &&
           (*It)->Seq > (*Victim)->Seq))
        Victim = It;
    if (Victim == Queue.end() ||
        (*Victim)->Spec.Priority >= J->Spec.Priority) {
      Out.Reason = "queue-full";
      return Out;
    }
    Out.Shed = *Victim;
    Out.Shed->State.store(JobState::Shed, std::memory_order_release);
    Queue.erase(Victim);
    Sheds.fetch_add(1, std::memory_order_relaxed);
  }

  J->Seq = NextSeq++;
  Jobs[J->Spec.Id] = J;
  Queue.push_back(std::move(J));
  Out.Accepted = true;
  Ready.notify_one();
  return Out;
}

bool JobQueue::runnableLocked() const {
  for (const JobPtr &Q : Queue) {
    auto It = Running.find(Q->Spec.Tenant);
    if (It == Running.end() || It->second < L.PerTenantRunning)
      return true;
  }
  return false;
}

JobPtr JobQueue::pop() {
  std::unique_lock<std::mutex> Lock(Mutex);
  Ready.wait(Lock, [this] { return Stopped || runnableLocked(); });
  if (Stopped)
    return nullptr;

  // Fair share: among runnable queued jobs, prefer the tenant with the
  // fewest running jobs; within a tenant, higher priority first, then
  // admission order.
  auto Best = Queue.end();
  int BestRunning = 0;
  for (auto It = Queue.begin(); It != Queue.end(); ++It) {
    auto RIt = Running.find((*It)->Spec.Tenant);
    int TenantRunning = RIt == Running.end() ? 0 : RIt->second;
    if (TenantRunning >= L.PerTenantRunning)
      continue;
    if (Best == Queue.end() || TenantRunning < BestRunning ||
        (TenantRunning == BestRunning &&
         ((*It)->Spec.Priority > (*Best)->Spec.Priority ||
          ((*It)->Spec.Priority == (*Best)->Spec.Priority &&
           (*It)->Seq < (*Best)->Seq)))) {
      Best = It;
      BestRunning = TenantRunning;
    }
  }
  JobPtr J = *Best;
  Queue.erase(Best);
  ++Running[J->Spec.Tenant];
  ++NumRunning;
  J->State.store(JobState::Running, std::memory_order_release);
  return J;
}

void JobQueue::finished(const JobPtr &J) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Running.find(J->Spec.Tenant);
  if (It != Running.end() && It->second > 0 && --It->second == 0)
    Running.erase(It);
  if (NumRunning > 0)
    --NumRunning;
  // A freed tenant slot can make a previously blocked queued job
  // runnable; wake every waiter so no runner idles next to ready work.
  Ready.notify_all();
}

JobPtr JobQueue::removeQueued(uint64_t Id) {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto It = Queue.begin(); It != Queue.end(); ++It)
    if ((*It)->Spec.Id == Id) {
      JobPtr J = *It;
      Queue.erase(It);
      return J;
    }
  return nullptr;
}

JobPtr JobQueue::find(uint64_t Id) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Jobs.find(Id);
  return It == Jobs.end() ? nullptr : It->second;
}

std::vector<JobPtr> JobQueue::all() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<JobPtr> Out;
  Out.reserve(Jobs.size());
  for (const auto &[Id, J] : Jobs)
    Out.push_back(J);
  return Out;
}

size_t JobQueue::queuedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Queue.size();
}

size_t JobQueue::runningCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return NumRunning;
}

void JobQueue::shutdown() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Stopped = true;
  Ready.notify_all();
}
