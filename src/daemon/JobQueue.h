//===- JobQueue.h - Admission control and fair-share dispatch ---*- C++-*-===//
//
// The daemon's bounded, multi-tenant job queue. Three policies live here
// (docs/DAEMON.md spells out the contract):
//
//  * Admission control: the queue holds at most MaxQueued jobs and a
//    tenant at most PerTenantInFlight (queued + running). A submit that
//    would exceed either is rejected with a machine-readable reason —
//    backpressure is explicit, never an unbounded buffer.
//  * Load shedding: when the queue is full, a strictly-higher-priority
//    submit evicts the lowest-priority queued job (youngest among ties)
//    instead of being rejected. The shed job gets a terminal `shed`
//    event and journal record; the count is surfaced in stats.
//  * Fair-share dispatch: a runner picks the next job from the tenant
//    with the fewest running jobs (priority, then FIFO within a tenant),
//    and a tenant never holds more than PerTenantRunning runners — one
//    tenant's burst cannot starve another's single job.
//
// The queue also owns the job table (id -> job, live and terminal), so
// cancel/status lookups and the runner threads share one lock.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_DAEMON_JOBQUEUE_H
#define LIMPET_DAEMON_JOBQUEUE_H

#include "daemon/Protocol.h"
#include "daemon/SpscRing.h"
#include "sim/CancelToken.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace limpet {
namespace daemon {

/// NDJSON event lines, produced by the job's runner thread and consumed
/// by the submitting connection's writer thread.
using EventRing = SpscRing<std::string>;

/// One simulation job, from admission to terminal state. Shared between
/// the queue, the runner executing it, and the connection streaming its
/// events; the shared_ptr keeps it alive for status queries after it
/// finishes.
struct Job {
  JobSpec Spec;
  /// Lifecycle state; atomic so status reads never take the queue lock.
  std::atomic<JobState> State{JobState::Queued};
  /// Cooperative cancel/deadline token the Simulator polls.
  sim::CancelToken Token;
  /// Event stream to the submitting client; null for replayed jobs whose
  /// client died with the previous daemon process.
  std::shared_ptr<EventRing> Ring;
  /// Re-admitted from the journal after a crash; the runner resumes it
  /// from its newest valid checkpoint.
  bool Replayed = false;
  /// FIFO sequence within the queue (admission order).
  uint64_t Seq = 0;

  // Terminal outcome, written by the runner before the state flips.
  int64_t StepsDone = 0;
  double Checksum = 0;
  int64_t Degraded = 0;
  int64_t Frozen = 0;
  /// Ensemble jobs only (-1 otherwise): per-member partial-result tally.
  int64_t MembersOk = -1;
  int64_t MembersQuarantined = -1;
  std::string Error;
};

using JobPtr = std::shared_ptr<Job>;

class JobQueue {
public:
  struct Limits {
    size_t MaxQueued = 16;      ///< bounded queue depth
    int PerTenantRunning = 2;   ///< concurrent runners per tenant
    int PerTenantInFlight = 8;  ///< queued + running per tenant
  };

  /// Outcome of one admission decision.
  struct Admission {
    bool Accepted = false;
    std::string Reason; ///< "queue-full" / "tenant-cap" when rejected
    /// The queued job evicted to make room (journal + notify it).
    JobPtr Shed;
  };

  // Note: no `Limits L = {}` default argument — a nested aggregate's
  // default member initializers cannot be used in a default argument of
  // the enclosing class ([class.mem]); the member initializer covers the
  // default-constructed case instead.
  JobQueue() = default;
  explicit JobQueue(Limits Lim) : L(Lim) {}

  const Limits &limits() const { return L; }

  /// Admission control + shedding. On acceptance the job is queued and
  /// registered in the job table.
  Admission submit(JobPtr J);

  /// Blocks until a job is runnable under the fair-share policy (or the
  /// queue shuts down — nullptr). Marks the job Running.
  JobPtr pop();

  /// Runner notification that \p J reached a terminal state: releases its
  /// tenant's running slot and wakes waiting runners.
  void finished(const JobPtr &J);

  /// Removes a still-queued job (the cancel verb); null when \p Id is not
  /// queued (unknown, running, or already terminal).
  JobPtr removeQueued(uint64_t Id);

  /// Job-table lookup (any state); null for unknown ids.
  JobPtr find(uint64_t Id) const;

  /// Snapshot of every job in the table, by id ascending.
  std::vector<JobPtr> all() const;

  size_t queuedCount() const;
  size_t runningCount() const;
  uint64_t shedCount() const { return Sheds.load(); }

  /// Wakes every blocked pop() with nullptr. Irreversible.
  void shutdown();

private:
  /// Queued jobs runnable right now (tenant has a free running slot).
  bool runnableLocked() const;

  Limits L;
  mutable std::mutex Mutex;
  std::condition_variable Ready;
  std::deque<JobPtr> Queue;
  std::map<uint64_t, JobPtr> Jobs;
  std::map<std::string, int> Running; ///< running jobs per tenant
  size_t NumRunning = 0;
  uint64_t NextSeq = 0;
  std::atomic<uint64_t> Sheds{0};
  bool Stopped = false;
};

} // namespace daemon
} // namespace limpet

#endif // LIMPET_DAEMON_JOBQUEUE_H
