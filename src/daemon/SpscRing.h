//===- SpscRing.h - Lock-free single-producer event ring --------*- C++-*-===//
//
// The decoupling buffer between a job's runner thread (producer) and the
// connection writer thread that streams its NDJSON events (consumer).
// The hot stepping path must never take the socket lock — the Simulator's
// progress callback fires between steps, and a slow or stalled client
// must cost the simulation nothing. So:
//
//  * tryPush never blocks: a full ring drops the event and counts the
//    drop (progress events are samples; losing one is harmless and the
//    count is surfaced in job status).
//  * close() is the consumer's disconnect signal: a closed ring turns
//    every subsequent push into a counted drop, so a job whose client
//    went away keeps running at full speed and its terminal state still
//    lands in the journal and result file.
//
// Strictly single-producer/single-consumer: one runner thread owns the
// tail, one writer thread owns the head. The daemon guarantees this by
// construction (one ring per job, one runner per job, one writer per
// connection).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_DAEMON_SPSCRING_H
#define LIMPET_DAEMON_SPSCRING_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace limpet {
namespace daemon {

template <typename T> class SpscRing {
public:
  /// \p Capacity is rounded up to a power of two (masking beats modulo in
  /// the push/pop index math).
  explicit SpscRing(size_t Capacity = 256) {
    size_t N = 1;
    while (N < Capacity)
      N <<= 1;
    Slots.resize(N);
    Mask = N - 1;
  }

  SpscRing(const SpscRing &) = delete;
  SpscRing &operator=(const SpscRing &) = delete;

  /// Producer side. False (and a counted drop) when the ring is full or
  /// the consumer closed it.
  bool tryPush(T V) {
    if (Closed.load(std::memory_order_acquire)) {
      Dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    size_t T_ = Tail.load(std::memory_order_relaxed);
    size_t H = Head.load(std::memory_order_acquire);
    if (T_ - H > Mask) {
      Dropped.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    Slots[T_ & Mask] = std::move(V);
    Tail.store(T_ + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. False when the ring is empty.
  bool tryPop(T &Out) {
    size_t H = Head.load(std::memory_order_relaxed);
    size_t T_ = Tail.load(std::memory_order_acquire);
    if (H == T_)
      return false;
    Out = std::move(Slots[H & Mask]);
    Head.store(H + 1, std::memory_order_release);
    return true;
  }

  /// Consumer disconnect: future pushes become counted drops. Idempotent.
  void close() { Closed.store(true, std::memory_order_release); }
  bool closed() const { return Closed.load(std::memory_order_acquire); }

  /// Events lost to a full or closed ring.
  uint64_t dropped() const { return Dropped.load(std::memory_order_relaxed); }

  size_t capacity() const { return Mask + 1; }

private:
  std::vector<T> Slots;
  size_t Mask = 0;
  std::atomic<size_t> Head{0}; ///< consumer cursor
  std::atomic<size_t> Tail{0}; ///< producer cursor
  std::atomic<bool> Closed{false};
  std::atomic<uint64_t> Dropped{0};
};

} // namespace daemon
} // namespace limpet

#endif // LIMPET_DAEMON_SPSCRING_H
