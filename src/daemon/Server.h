//===- Server.h - limpetd socket server and job dispatch --------*- C++-*-===//
//
// The long-lived daemon: a Unix-domain-socket listener speaking
// newline-delimited JSON (daemon/Protocol), a bounded multi-tenant job
// queue (daemon/JobQueue), a pool of runner threads executing jobs
// through daemon/JobRunner, and the durable journal (daemon/Journal)
// that makes accepted work survive a SIGKILL.
//
// Threading model:
//  * one accept loop (serve(), the caller's thread), polling so shutdown
//    signals are honored within ~200 ms;
//  * one reader thread per connection, parsing requests and writing
//    immediate responses;
//  * one writer thread per connection, draining the SPSC event rings of
//    the jobs that connection submitted — the only place job events
//    touch a socket, so a runner thread never blocks on a client;
//  * N runner threads multiplexing jobs over the shared ThreadPool.
//
// Startup recovery: read the journal (truncated-tail tolerant), re-admit
// every accepted-but-unfinished job through the normal admission path
// with Replayed set — the runner resumes each from its newest valid
// checkpoint — and compact the journal down to the live set.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_DAEMON_SERVER_H
#define LIMPET_DAEMON_SERVER_H

#include "daemon/JobQueue.h"
#include "daemon/JobRunner.h"
#include "daemon/Journal.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace limpet {
namespace daemon {

class Server {
public:
  struct Options {
    std::string SocketPath;
    std::string StateDir;
    unsigned Runners = 2;    ///< concurrent job runner threads
    unsigned SimThreads = 2; ///< stepping threads per job
    JobQueue::Limits Limits;
    int64_t DefaultCheckpointEvery = 10000;
  };

  explicit Server(Options O);
  ~Server();

  /// Journal recovery + replay admission, socket bind/listen, runner
  /// thread start. Recoverable errors (socket in use, unwritable state
  /// dir) come back as Status; nothing throws.
  Status start();

  /// Accept loop. Returns (0) when a shutdown signal arrived or a client
  /// sent the shutdown verb; all runners and connections are joined and
  /// the socket is unlinked before it returns.
  int serve();

  /// Replayed-job count from the last start() (for logs and tests).
  size_t replayedJobs() const { return Replayed; }

  JobQueue &queue() { return Queue; }
  Journal &journal() { return Jrnl; }

private:
  struct Conn;

  void readerLoop(std::shared_ptr<Conn> C);
  void writerLoop(std::shared_ptr<Conn> C);
  void runnerLoop();
  void dispatch(Conn &C, const std::string &Line);
  void handleSubmit(Conn &C, const JsonValue &Body);
  void handleCancel(Conn &C, const JsonValue &Body);
  void handleStatus(Conn &C, const JsonValue &Body);
  void handleStats(Conn &C, const JsonValue &Body);
  Status recover();

  Options O;
  Journal Jrnl;
  JobQueue Queue;
  JobRunner Runner;
  std::atomic<uint64_t> NextId{1};
  std::atomic<bool> Stopping{false};
  int ListenFd = -1;
  size_t Replayed = 0;
  std::vector<std::thread> Runners;
  std::vector<std::thread> Readers;
  std::mutex ReadersMutex;
};

} // namespace daemon
} // namespace limpet

#endif // LIMPET_DAEMON_SERVER_H
