//===- Json.h - Minimal JSON value for the daemon protocol ------*- C++-*-===//
//
// The daemon speaks newline-delimited JSON over its control socket
// (docs/DAEMON.md), and the job journal stores each job's specification
// as a JSON payload so journals stay inspectable with standard tools.
// This is the small, dependency-free value type behind both: parse one
// line into a JsonValue, or build one and render it back to a single
// compact line (no embedded newlines, so NDJSON framing is trivial).
//
// Deliberately minimal: UTF-8 pass-through, doubles for every number
// (protocol integers fit in 53 bits — job ids, steps, cells), objects
// keep insertion order. Any malformed input parses to a recoverable
// Status, never UB — the daemon treats client bytes as hostile.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_DAEMON_JSON_H
#define LIMPET_DAEMON_JSON_H

#include "support/Status.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace limpet {
namespace daemon {

class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Object, Array };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool V) {
    JsonValue J;
    J.K = Kind::Bool;
    J.B = V;
    return J;
  }
  static JsonValue number(double V) {
    JsonValue J;
    J.K = Kind::Number;
    J.Num = V;
    return J;
  }
  static JsonValue number(int64_t V) { return number(double(V)); }
  static JsonValue number(uint64_t V) { return number(double(V)); }
  static JsonValue string(std::string_view V) {
    JsonValue J;
    J.K = Kind::String;
    J.Str = std::string(V);
    return J;
  }
  static JsonValue object() {
    JsonValue J;
    J.K = Kind::Object;
    return J;
  }
  static JsonValue array() {
    JsonValue J;
    J.K = Kind::Array;
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  const std::string &asString() const { return Str; }
  const std::vector<JsonValue> &items() const { return Items; }
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }

  /// Object member lookup; null for non-objects and absent keys.
  const JsonValue *find(std::string_view Key) const;

  // Typed member access with defaults — the shape every protocol field
  // read takes: absent key or wrong type yields the default.
  double numberOr(std::string_view Key, double Default) const;
  int64_t intOr(std::string_view Key, int64_t Default) const;
  bool boolOr(std::string_view Key, bool Default) const;
  std::string stringOr(std::string_view Key, std::string_view Default) const;

  /// Sets (or replaces) an object member. No-op on non-objects.
  JsonValue &set(std::string_view Key, JsonValue V);
  /// Appends to an array. No-op on non-arrays.
  JsonValue &push(JsonValue V);

  /// Compact single-line rendering (NDJSON-safe: strings escape control
  /// characters, so the output never contains a raw newline).
  std::string str() const;

  /// Parses one JSON document; trailing non-whitespace is an error.
  static Expected<JsonValue> parse(std::string_view Text);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<std::pair<std::string, JsonValue>> Members;
  std::vector<JsonValue> Items;
};

} // namespace daemon
} // namespace limpet

#endif // LIMPET_DAEMON_JSON_H
