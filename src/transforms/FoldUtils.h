//===- FoldUtils.h - Constant evaluation of pure scalar ops -----*- C++-*-===//
//
// Shared helpers for constant folding: recognizing constant ops, evaluating
// pure scalar operations on constant operands, and materializing constants.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_TRANSFORMS_FOLDUTILS_H
#define LIMPET_TRANSFORMS_FOLDUTILS_H

#include "ir/Builder.h"
#include "ir/IR.h"

#include <optional>

namespace limpet {
namespace transforms {

/// True if \p V is produced by an arith.constant / arith.constant_int op.
bool isConstantValue(const ir::Value *V);

/// The f64 payload of a float constant value.
std::optional<double> constantFloat(const ir::Value *V);

/// The i64 payload of an int constant value.
std::optional<int64_t> constantInt(const ir::Value *V);

/// The bool payload of an i1 constant value.
std::optional<bool> constantBool(const ir::Value *V);

/// Evaluates a pure scalar op whose operands are all constants. Returns the
/// folded constant as an attribute (Float / Int / Bool), or nullopt if the
/// op is not foldable.
std::optional<ir::Attribute> tryFoldScalarOp(const ir::Operation *Op);

/// Evaluates a scalar float computation by opcode: unary/binary math and
/// arith ops. Exposed for the EasyML preprocessor and the engines' scalar
/// reference path; asserts on non-float opcodes.
double evalFloatOp(ir::OpCode Code, double A, double B);

/// Evaluates a float comparison.
bool evalCmp(ir::CmpPredicate Pred, double A, double B);

/// Creates a constant op carrying \p Value with result type \p Ty at the
/// builder's insertion point.
ir::Value *materializeConstant(ir::OpBuilder &B, ir::Attribute Value,
                               ir::Type Ty);

} // namespace transforms
} // namespace limpet

#endif // LIMPET_TRANSFORMS_FOLDUTILS_H
