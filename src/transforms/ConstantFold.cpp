//===- ConstantFold.cpp - Constant folding / propagation pass -------------===//
//
// The IR-level half of the paper's "preprocessor": evaluates pure scalar
// operations whose operands are constants and propagates the results, to a
// fixpoint.
//
//===----------------------------------------------------------------------===//

#include "transforms/FoldUtils.h"
#include "transforms/Pass.h"

using namespace limpet;
using namespace limpet::ir;
using namespace limpet::transforms;

namespace {

class ConstantFoldPass : public Pass {
public:
  std::string_view name() const override { return "constant-fold"; }

  bool run(Operation *Func, Context &Ctx) override {
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      std::vector<Operation *> Candidates;
      Func->walk([&](Operation *Op) {
        if (Op != Func && Op->isPure() && Op->numResults() == 1)
          Candidates.push_back(Op);
      });
      for (Operation *Op : Candidates) {
        std::optional<Attribute> Folded = tryFoldScalarOp(Op);
        if (!Folded)
          continue;
        OpBuilder B(Ctx);
        B.setInsertionPoint(Op);
        Value *Const = materializeConstant(B, *Folded, Op->result()->type());
        Func->replaceUsesOfWith(Op->result(), Const);
        Op->parentBlock()->erase(Op);
        Changed = LocalChange = true;
      }
    }
    return Changed;
  }
};

} // namespace

std::unique_ptr<Pass> transforms::createConstantFoldPass() {
  return std::make_unique<ConstantFoldPass>();
}
