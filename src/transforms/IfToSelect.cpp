//===- IfToSelect.cpp - Flatten scf.if into arith.select -------------------===//
//
// Rewrites scf.if operations whose regions are side-effect free into
// straight-line code: both regions are inlined before the if and each
// result becomes an arith.select on the condition. This is the paper's
// vectorization strategy for control flow (Sec. 5): "the vectorization of
// an if/else condition requires both blocks to be executed and element-wise
// selected according to a mask".
//
//===----------------------------------------------------------------------===//

#include "dialects/Dialects.h"
#include "transforms/Pass.h"

using namespace limpet;
using namespace limpet::ir;
using namespace limpet::transforms;

namespace {

/// True if every op in the region (transitively) is pure or read-only.
static bool regionIsSpeculatable(Region &R) {
  if (R.empty())
    return true;
  bool Ok = true;
  for (Operation *Op : R.front().ops())
    Op->walk([&](Operation *Inner) {
      if (!Inner->isPure() && !Inner->isReadOnly() &&
          Inner->opcode() != OpCode::ScfYield &&
          Inner->opcode() != OpCode::ScfIf)
        Ok = false;
    });
  return Ok;
}

class IfToSelectPass : public Pass {
public:
  std::string_view name() const override { return "if-to-select"; }

  bool run(Operation *Func, Context &Ctx) override {
    bool Changed = false;
    // Collect in pre-order and process in reverse so that nested ifs are
    // flattened before their parents.
    std::vector<Operation *> Ifs;
    Func->walk([&](Operation *Op) {
      if (Op->opcode() == OpCode::ScfIf)
        Ifs.push_back(Op);
    });
    for (auto It = Ifs.rbegin(); It != Ifs.rend(); ++It)
      Changed |= rewrite(*It, Func, Ctx);
    return Changed;
  }

private:
  bool rewrite(Operation *IfOp, Operation *Func, Context &Ctx) {
    if (!regionIsSpeculatable(IfOp->region(0)) ||
        !regionIsSpeculatable(IfOp->region(1)))
      return false;

    Block *Parent = IfOp->parentBlock();
    std::vector<Value *> ThenYields, ElseYields;

    for (unsigned RI = 0; RI != 2; ++RI) {
      Block &Inner = IfOp->region(RI).front();
      Operation *Term = Inner.terminator();
      assert(Term && Term->opcode() == OpCode::ScfYield &&
             "if region must end with scf.yield");
      auto &Yields = RI == 0 ? ThenYields : ElseYields;
      Yields = Term->operands();
      // Move every non-terminator op in front of the if.
      std::vector<Operation *> ToMove;
      for (Operation *Op : Inner.ops())
        if (Op != Term)
          ToMove.push_back(Op);
      for (Operation *Op : ToMove) {
        Inner.remove(Op);
        Parent->insertBefore(IfOp, Op);
      }
    }

    // Replace each result with a select on the condition.
    OpBuilder B(Ctx);
    B.setInsertionPoint(IfOp);
    Value *Cond = IfOp->operand(0);
    for (unsigned I = 0, E = IfOp->numResults(); I != E; ++I) {
      Value *Sel = makeSelect(B, Cond, ThenYields[I], ElseYields[I]);
      Func->replaceUsesOfWith(IfOp->result(I), Sel);
    }
    Parent->erase(IfOp);
    return true;
  }
};

} // namespace

std::unique_ptr<Pass> transforms::createIfToSelectPass() {
  return std::make_unique<IfToSelectPass>();
}
