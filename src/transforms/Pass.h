//===- Pass.h - Pass interface and PassManager ------------------*- C++-*-===//
//
// A pass transforms a single func.func operation in place (the analogue of
// an MLIR function pass). The PassManager runs a pipeline, optionally
// verifying the IR between passes, and records simple statistics.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_TRANSFORMS_PASS_H
#define LIMPET_TRANSFORMS_PASS_H

#include "ir/Context.h"
#include "ir/IR.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace limpet {
namespace transforms {

/// Base class of all function passes.
class Pass {
public:
  virtual ~Pass() = default;

  /// Human-readable pass name, e.g. "cse".
  virtual std::string_view name() const = 0;

  /// Transforms \p Func in place. Returns true if anything changed.
  virtual bool run(ir::Operation *Func, ir::Context &Ctx) = 0;
};

/// Statistics of one PassManager run: per-pass wall time and IR op counts
/// before/after each transform, in pipeline order (the MLIR
/// -mlir-timing/-mlir-pass-statistics analogue). Collected unconditionally
/// (compile-time only); mirrored into the telemetry registry when the
/// instrumentation layer is built in.
struct PassStatistics {
  struct Entry {
    std::string PassName;
    bool Changed = false;
    uint64_t WallNs = 0;    ///< wall time of this pass run
    int64_t OpsBefore = 0;  ///< IR operations in the function before
    int64_t OpsAfter = 0;   ///< ... and after the pass ran
  };
  std::vector<Entry> Entries;

  /// Total wall time across all entries.
  uint64_t totalNs() const;

  /// Aligned human-readable pass-timing table (the `limpetc --stats`
  /// rendering).
  std::string str() const;
};

/// Runs a sequence of passes over a function.
class PassManager {
public:
  explicit PassManager(ir::Context &Ctx, bool VerifyEach = true)
      : Ctx(Ctx), VerifyEach(VerifyEach) {}

  /// Appends a pass to the pipeline.
  void addPass(std::unique_ptr<Pass> P) { Passes.push_back(std::move(P)); }

  /// Runs the pipeline. Returns false (with \p ErrorMessage set) if
  /// inter-pass verification fails.
  bool run(ir::Operation *Func);

  const PassStatistics &statistics() const { return Stats; }
  const std::string &errorMessage() const { return ErrorMessage; }

  /// Builds the standard optimization pipeline used for generated kernels
  /// (the analogue of the paper's in-tree MLIR optimizations):
  /// if-to-select, canonicalize, constant-fold, cse, licm, dce.
  static void addDefaultPipeline(PassManager &PM);

private:
  ir::Context &Ctx;
  bool VerifyEach;
  std::vector<std::unique_ptr<Pass>> Passes;
  PassStatistics Stats;
  std::string ErrorMessage;
};

// Factory functions for the individual passes.
std::unique_ptr<Pass> createIfToSelectPass();
std::unique_ptr<Pass> createCanonicalizePass();
std::unique_ptr<Pass> createConstantFoldPass();
std::unique_ptr<Pass> createCSEPass();
std::unique_ptr<Pass> createLICMPass();
std::unique_ptr<Pass> createDCEPass();

//===----------------------------------------------------------------------===//
// Pipeline strings
//===----------------------------------------------------------------------===//

/// The registered pass names accepted in pipeline strings, in no
/// particular order ("cse", "licm", ...).
std::vector<std::string_view> registeredPassNames();

/// Instantiates the pass registered as \p Name, or null when no pass of
/// that name exists.
std::unique_ptr<Pass> createPassByName(std::string_view Name);

/// The default kernel pipeline rendered as a pipeline string:
/// "if-to-select,canonicalize,constant-fold,cse,licm,dce".
std::string_view defaultPassPipelineSpec();

/// Parses an mlir-opt-style comma-separated pipeline string
/// ("if-to-select,canonicalize,cse") and appends the named passes to
/// \p PM in order. Whitespace around names is ignored; an empty spec is a
/// valid empty pipeline. Returns a recoverable error naming the offending
/// entry (and the registered names) on an unknown pass.
Status parsePassPipeline(std::string_view Spec, PassManager &PM);

/// Counts uses of every value inside \p Root (including nested regions).
/// Shared by DCE / canonicalize.
void countUses(ir::Operation *Root,
               std::function<void(ir::Value *, ir::Operation *)> Fn);

/// Number of operations inside \p Root (itself included, nested regions
/// walked). Used by the per-pass statistics.
int64_t countOps(ir::Operation *Root);

/// Finds the enclosing func.func of \p Op (or \p Op itself).
ir::Operation *enclosingFunction(ir::Operation *Op);

} // namespace transforms
} // namespace limpet

#endif // LIMPET_TRANSFORMS_PASS_H
