//===- Pass.cpp -----------------------------------------------------------===//

#include "transforms/Pass.h"

#include "ir/Verifier.h"

using namespace limpet;
using namespace limpet::transforms;

bool PassManager::run(ir::Operation *Func) {
  Stats.Entries.clear();
  ErrorMessage.clear();
  for (auto &P : Passes) {
    bool Changed = P->run(Func, Ctx);
    Stats.Entries.push_back({std::string(P->name()), Changed});
    if (!VerifyEach)
      continue;
    if (ir::VerifyResult R = ir::verifyFunction(Func); !R) {
      ErrorMessage =
          "verification failed after pass '" + std::string(P->name()) +
          "': " + R.Message;
      return false;
    }
  }
  return true;
}

void PassManager::addDefaultPipeline(PassManager &PM) {
  PM.addPass(createIfToSelectPass());
  PM.addPass(createCanonicalizePass());
  PM.addPass(createConstantFoldPass());
  PM.addPass(createCSEPass());
  PM.addPass(createLICMPass());
  PM.addPass(createDCEPass());
}

void transforms::countUses(
    ir::Operation *Root,
    std::function<void(ir::Value *, ir::Operation *)> Fn) {
  Root->walk([&](ir::Operation *Op) {
    for (unsigned I = 0, E = Op->numOperands(); I != E; ++I)
      Fn(Op->operand(I), Op);
  });
}

ir::Operation *transforms::enclosingFunction(ir::Operation *Op) {
  ir::Operation *Cur = Op;
  while (Cur && Cur->opcode() != ir::OpCode::FuncFunc)
    Cur = Cur->parentOp();
  return Cur;
}
