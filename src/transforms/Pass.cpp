//===- Pass.cpp -----------------------------------------------------------===//

#include "transforms/Pass.h"

#include "ir/Verifier.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <array>
#include <cassert>

using namespace limpet;
using namespace limpet::transforms;

uint64_t PassStatistics::totalNs() const {
  uint64_t Total = 0;
  for (const Entry &E : Entries)
    Total += E.WallNs;
  return Total;
}

std::string PassStatistics::str() const {
  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"pass", "changed", "time (us)", "ops before", "ops after",
                  "delta"});
  for (const Entry &E : Entries)
    Rows.push_back({E.PassName, E.Changed ? "yes" : "no",
                    formatFixed(double(E.WallNs) * 1e-3, 1),
                    std::to_string(E.OpsBefore), std::to_string(E.OpsAfter),
                    std::to_string(E.OpsAfter - E.OpsBefore)});
  Rows.push_back({"total", "", formatFixed(double(totalNs()) * 1e-3, 1), "",
                  "", ""});

  // Aligned rendering (first column left-, the rest right-justified).
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Widths.size() < Row.size())
      Widths.resize(Row.size(), 0);
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());
  }
  std::string Out;
  for (size_t R = 0; R != Rows.size(); ++R) {
    for (size_t C = 0; C != Rows[R].size(); ++C) {
      Out += C == 0 ? padRight(Rows[R][C], Widths[C])
                    : padLeft(Rows[R][C], Widths[C]);
      if (C + 1 != Rows[R].size())
        Out += "  ";
    }
    Out += '\n';
  }
  return Out;
}

bool PassManager::run(ir::Operation *Func) {
  Stats.Entries.clear();
  ErrorMessage.clear();
  telemetry::TraceSpan Pipeline("pass-pipeline", "compile");
  int64_t OpsBefore = countOps(Func);
  for (auto &P : Passes) {
    std::string PassName(P->name());
    telemetry::TraceSpan Span("pass:" + PassName, "compile");
    auto T0 = telemetry::Clock::now();
    bool Changed = P->run(Func, Ctx);
    uint64_t Ns = telemetry::nanosecondsSince(T0);
    int64_t OpsAfter = countOps(Func);
    Stats.Entries.push_back({PassName, Changed, Ns, OpsBefore, OpsAfter});
    telemetry::counter("compile.pass." + PassName + ".ns").add(Ns);
    telemetry::counter("compile.pass." + PassName + ".runs").add(1);
    if (OpsAfter < OpsBefore)
      telemetry::counter("compile.pass." + PassName + ".ops_removed")
          .add(uint64_t(OpsBefore - OpsAfter));
    OpsBefore = OpsAfter;
    if (!VerifyEach)
      continue;
    if (ir::VerifyResult R = ir::verifyFunction(Func); !R) {
      ErrorMessage =
          "verification failed after pass '" + std::string(P->name()) +
          "': " + R.Message;
      return false;
    }
  }
  return true;
}

void PassManager::addDefaultPipeline(PassManager &PM) {
  // Kept in sync with defaultPassPipelineSpec() below.
  Status S = parsePassPipeline(defaultPassPipelineSpec(), PM);
  (void)S;
  assert(S && "default pipeline spec must parse");
}

namespace {

struct PassRegistryEntry {
  std::string_view Name;
  std::unique_ptr<Pass> (*Factory)();
};

/// Every pass reachable from a pipeline string. Order here is the order
/// registeredPassNames() reports.
constexpr std::array<PassRegistryEntry, 6> kPassRegistry = {{
    {"if-to-select", createIfToSelectPass},
    {"canonicalize", createCanonicalizePass},
    {"constant-fold", createConstantFoldPass},
    {"cse", createCSEPass},
    {"licm", createLICMPass},
    {"dce", createDCEPass},
}};

} // namespace

std::vector<std::string_view> transforms::registeredPassNames() {
  std::vector<std::string_view> Names;
  for (const PassRegistryEntry &E : kPassRegistry)
    Names.push_back(E.Name);
  return Names;
}

std::unique_ptr<Pass> transforms::createPassByName(std::string_view Name) {
  for (const PassRegistryEntry &E : kPassRegistry)
    if (E.Name == Name)
      return E.Factory();
  return nullptr;
}

std::string_view transforms::defaultPassPipelineSpec() {
  return "if-to-select,canonicalize,constant-fold,cse,licm,dce";
}

Status transforms::parsePassPipeline(std::string_view Spec, PassManager &PM) {
  for (const std::string &RawName : splitString(Spec, ',')) {
    std::string Name = trim(RawName);
    if (Name.empty())
      continue; // tolerate "a,,b" and trailing commas
    std::unique_ptr<Pass> P = createPassByName(Name);
    if (!P) {
      std::string Known;
      for (std::string_view N : registeredPassNames()) {
        if (!Known.empty())
          Known += ", ";
        Known += N;
      }
      return Status::error("unknown pass '" + Name +
                           "' in pipeline string (registered passes: " +
                           Known + ")");
    }
    PM.addPass(std::move(P));
  }
  return Status::success();
}

void transforms::countUses(
    ir::Operation *Root,
    std::function<void(ir::Value *, ir::Operation *)> Fn) {
  Root->walk([&](ir::Operation *Op) {
    for (unsigned I = 0, E = Op->numOperands(); I != E; ++I)
      Fn(Op->operand(I), Op);
  });
}

int64_t transforms::countOps(ir::Operation *Root) {
  int64_t N = 0;
  Root->walk([&](ir::Operation *) { ++N; });
  return N;
}

ir::Operation *transforms::enclosingFunction(ir::Operation *Op) {
  ir::Operation *Cur = Op;
  while (Cur && Cur->opcode() != ir::OpCode::FuncFunc)
    Cur = Cur->parentOp();
  return Cur;
}
