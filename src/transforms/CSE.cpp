//===- CSE.cpp - Common subexpression elimination --------------------------===//
//
// Scoped value numbering over pure operations, one of the two in-tree MLIR
// optimizations the paper highlights (Sec. 3.4). Nested regions see the
// numbering of their enclosing scope (outer ops dominate inner ones).
//
//===----------------------------------------------------------------------===//

#include "transforms/Pass.h"

#include <unordered_map>

using namespace limpet;
using namespace limpet::ir;
using namespace limpet::transforms;

namespace {

/// Structural key of a pure operation.
struct OpKey {
  OpCode Code;
  std::vector<Value *> Operands;
  std::vector<NamedAttribute> Attrs;
  std::vector<const TypeStorage *> ResultTypes;

  bool operator==(const OpKey &O) const {
    if (Code != O.Code || Operands != O.Operands ||
        ResultTypes != O.ResultTypes || Attrs.size() != O.Attrs.size())
      return false;
    for (size_t I = 0; I != Attrs.size(); ++I)
      if (Attrs[I].Name != O.Attrs[I].Name ||
          Attrs[I].Value != O.Attrs[I].Value)
        return false;
    return true;
  }
};

struct OpKeyHash {
  size_t operator()(const OpKey &K) const {
    size_t H = std::hash<uint16_t>()(static_cast<uint16_t>(K.Code));
    for (Value *V : K.Operands)
      H = H * 31 + std::hash<const void *>()(V);
    for (const NamedAttribute &A : K.Attrs)
      H = H * 31 + std::hash<std::string>()(A.Name) * 7 + A.Value.hash();
    for (const TypeStorage *T : K.ResultTypes)
      H = H * 31 + std::hash<const void *>()(T);
    return H;
  }
};

using ValueNumbering = std::unordered_map<OpKey, Operation *, OpKeyHash>;

static OpKey keyOf(Operation *Op) {
  OpKey K;
  K.Code = Op->opcode();
  K.Operands = Op->operands();
  K.Attrs = Op->attrs();
  for (unsigned I = 0, E = Op->numResults(); I != E; ++I)
    K.ResultTypes.push_back(Op->result(I)->type().storage());
  return K;
}

class CSEPass : public Pass {
public:
  std::string_view name() const override { return "cse"; }

  bool run(Operation *Func, Context &Ctx) override {
    bool Changed = false;
    ValueNumbering Root;
    runOnBlock(funcBody(Func), Root, Func, Changed);
    return Changed;
  }

private:
  void runOnBlock(Block &B, ValueNumbering Known, Operation *Func,
                  bool &Changed) {
    std::vector<Operation *> ToErase;
    for (Operation *Op : B.ops()) {
      if (Op->isPure() && Op->numRegions() == 0) {
        OpKey K = keyOf(Op);
        auto [It, Inserted] = Known.try_emplace(std::move(K), Op);
        if (!Inserted) {
          Operation *Existing = It->second;
          for (unsigned I = 0, E = Op->numResults(); I != E; ++I)
            Func->replaceUsesOfWith(Op->result(I), Existing->result(I));
          ToErase.push_back(Op);
          Changed = true;
          continue;
        }
      }
      // Recurse into regions with the current (scoped) numbering.
      for (unsigned RI = 0, RE = Op->numRegions(); RI != RE; ++RI)
        if (!Op->region(RI).empty())
          runOnBlock(Op->region(RI).front(), Known, Func, Changed);
    }
    for (Operation *Op : ToErase)
      B.erase(Op);
  }
};

} // namespace

std::unique_ptr<Pass> transforms::createCSEPass() {
  return std::make_unique<CSEPass>();
}
