//===- LICM.cpp - Loop-invariant code motion --------------------------------===//
//
// Hoists loop-invariant pure operations out of scf.for bodies; read-only
// loads are hoisted when the buffer they read is never written inside the
// loop (e.g. parameter loads in the cell loop). This is the second of the
// two in-tree MLIR optimizations the paper highlights (Sec. 3.4).
//
//===----------------------------------------------------------------------===//

#include "transforms/Pass.h"

#include <set>

using namespace limpet;
using namespace limpet::ir;
using namespace limpet::transforms;

namespace {

/// Collects the memref values written anywhere inside \p Root.
static std::set<Value *> writtenMemRefs(Operation *Root) {
  std::set<Value *> Written;
  Root->walk([&](Operation *Op) {
    switch (Op->opcode()) {
    case OpCode::MemStore:
    case OpCode::VecStore:
    case OpCode::VecScatter:
      Written.insert(Op->operand(1));
      break;
    default:
      break;
    }
  });
  return Written;
}

class LICMPass : public Pass {
public:
  std::string_view name() const override { return "licm"; }

  bool run(Operation *Func, Context &Ctx) override {
    bool Changed = false;
    // Process loops innermost-first so invariants bubble outward across
    // nesting levels.
    std::vector<Operation *> Loops;
    Func->walk([&](Operation *Op) {
      if (Op->opcode() == OpCode::ScfFor)
        Loops.push_back(Op);
    });
    // walk() is pre-order, so reversing yields innermost-first.
    for (auto It = Loops.rbegin(); It != Loops.rend(); ++It)
      Changed |= runOnLoop(*It);
    return Changed;
  }

private:
  bool runOnLoop(Operation *ForOp) {
    Block &Body = forBody(ForOp);
    std::set<Value *> Written = writtenMemRefs(ForOp);

    // Values defined inside the loop (body args + results of body ops,
    // including nested ones).
    std::set<const Value *> DefinedInside;
    for (unsigned I = 0, E = Body.numArguments(); I != E; ++I)
      DefinedInside.insert(Body.argument(I));
    ForOp->walk([&](Operation *Op) {
      if (Op == ForOp)
        return;
      for (unsigned I = 0, E = Op->numResults(); I != E; ++I)
        DefinedInside.insert(Op->result(I));
    });
    // Also nested block args (e.g. inner loop induction vars).
    ForOp->walk([&](Operation *Op) {
      for (unsigned RI = 0, RE = Op->numRegions(); RI != RE; ++RI) {
        if (Op == ForOp && RI == 0)
          continue;
        const Block &Inner = Op->region(RI).front();
        for (unsigned AI = 0, AE = Inner.numArguments(); AI != AE; ++AI)
          DefinedInside.insert(Inner.argument(AI));
      }
    });

    bool Changed = false;
    std::vector<Operation *> ToHoist;
    // A single in-order sweep catches chains: once an op is marked for
    // hoisting its results are removed from DefinedInside.
    for (Operation *Op : Body.ops()) {
      if (Op->isTerminator() || Op->numRegions() != 0)
        continue;
      bool Movable =
          Op->isPure() ||
          (Op->isReadOnly() && !Written.count(Op->operand(0)));
      if (!Movable)
        continue;
      bool Invariant = true;
      for (unsigned I = 0, E = Op->numOperands(); I != E; ++I)
        if (DefinedInside.count(Op->operand(I))) {
          Invariant = false;
          break;
        }
      if (!Invariant)
        continue;
      ToHoist.push_back(Op);
      for (unsigned I = 0, E = Op->numResults(); I != E; ++I)
        DefinedInside.erase(Op->result(I));
    }

    Block *Parent = ForOp->parentBlock();
    for (Operation *Op : ToHoist) {
      Body.remove(Op);
      Parent->insertBefore(ForOp, Op);
      Changed = true;
    }
    return Changed;
  }
};

} // namespace

std::unique_ptr<Pass> transforms::createLICMPass() {
  return std::make_unique<LICMPass>();
}
