//===- DCE.cpp - Dead code elimination -------------------------------------===//
//
// Erases side-effect-free operations whose results are unused, to a
// fixpoint. Read-only loads are also dead when unused.
//
//===----------------------------------------------------------------------===//

#include "transforms/Pass.h"

#include <unordered_map>

using namespace limpet;
using namespace limpet::ir;
using namespace limpet::transforms;

namespace {

class DCEPass : public Pass {
public:
  std::string_view name() const override { return "dce"; }

  bool run(Operation *Func, Context &Ctx) override {
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;

      std::unordered_map<const Value *, unsigned> UseCount;
      countUses(Func, [&](Value *V, Operation *) { ++UseCount[V]; });

      // Collect dead ops innermost-last so erasing parents is never an
      // issue (ops with regions are never erased here).
      std::vector<Operation *> Dead;
      Func->walk([&](Operation *Op) {
        if (Op == Func || Op->numRegions() != 0)
          return;
        if (!Op->isPure() && !Op->isReadOnly())
          return;
        for (unsigned I = 0, E = Op->numResults(); I != E; ++I)
          if (UseCount.count(Op->result(I)))
            return;
        Dead.push_back(Op);
      });

      for (Operation *Op : Dead) {
        Op->parentBlock()->erase(Op);
        Changed = LocalChange = true;
      }
    }
    return Changed;
  }
};

} // namespace

std::unique_ptr<Pass> transforms::createDCEPass() {
  return std::make_unique<DCEPass>();
}
