//===- FoldUtils.cpp ------------------------------------------------------===//

#include "transforms/FoldUtils.h"

#include "dialects/Dialects.h"
#include "support/Casting.h"

#include <cmath>

using namespace limpet;
using namespace limpet::ir;
using namespace limpet::transforms;

static const Operation *definingOp(const Value *V) {
  if (const auto *Res = dyn_cast<OpResult>(V))
    return Res->owner();
  return nullptr;
}

bool transforms::isConstantValue(const Value *V) {
  const Operation *Def = definingOp(V);
  return Def && (Def->opcode() == OpCode::ArithConstantF ||
                 Def->opcode() == OpCode::ArithConstantI);
}

std::optional<double> transforms::constantFloat(const Value *V) {
  const Operation *Def = definingOp(V);
  if (!Def || Def->opcode() != OpCode::ArithConstantF || !V->type().isF64())
    return std::nullopt;
  return Def->attr("value").asFloat();
}

std::optional<int64_t> transforms::constantInt(const Value *V) {
  const Operation *Def = definingOp(V);
  if (!Def || Def->opcode() != OpCode::ArithConstantI || !V->type().isI64())
    return std::nullopt;
  return Def->attr("value").asInt();
}

std::optional<bool> transforms::constantBool(const Value *V) {
  const Operation *Def = definingOp(V);
  if (!Def || Def->opcode() != OpCode::ArithConstantI || !V->type().isI1())
    return std::nullopt;
  return Def->attr("value").asInt() != 0;
}

double transforms::evalFloatOp(OpCode Code, double A, double B) {
  switch (Code) {
  case OpCode::ArithAddF:
    return A + B;
  case OpCode::ArithSubF:
    return A - B;
  case OpCode::ArithMulF:
    return A * B;
  case OpCode::ArithDivF:
    return A / B;
  case OpCode::ArithRemF:
    return std::fmod(A, B);
  case OpCode::ArithNegF:
    return -A;
  case OpCode::ArithMinF:
    return std::fmin(A, B);
  case OpCode::ArithMaxF:
    return std::fmax(A, B);
  case OpCode::MathExp:
    return std::exp(A);
  case OpCode::MathExpm1:
    return std::expm1(A);
  case OpCode::MathLog:
    return std::log(A);
  case OpCode::MathLog10:
    return std::log10(A);
  case OpCode::MathPow:
    return std::pow(A, B);
  case OpCode::MathSqrt:
    return std::sqrt(A);
  case OpCode::MathSin:
    return std::sin(A);
  case OpCode::MathCos:
    return std::cos(A);
  case OpCode::MathTan:
    return std::tan(A);
  case OpCode::MathTanh:
    return std::tanh(A);
  case OpCode::MathSinh:
    return std::sinh(A);
  case OpCode::MathCosh:
    return std::cosh(A);
  case OpCode::MathAtan:
    return std::atan(A);
  case OpCode::MathAsin:
    return std::asin(A);
  case OpCode::MathAcos:
    return std::acos(A);
  case OpCode::MathAbs:
    return std::fabs(A);
  case OpCode::MathFloor:
    return std::floor(A);
  case OpCode::MathCeil:
    return std::ceil(A);
  default:
    limpet_unreachable("not a scalar float opcode");
  }
}

bool transforms::evalCmp(CmpPredicate Pred, double A, double B) {
  switch (Pred) {
  case CmpPredicate::LT:
    return A < B;
  case CmpPredicate::LE:
    return A <= B;
  case CmpPredicate::GT:
    return A > B;
  case CmpPredicate::GE:
    return A >= B;
  case CmpPredicate::EQ:
    return A == B;
  case CmpPredicate::NE:
    return A != B;
  }
  limpet_unreachable("invalid predicate");
}

std::optional<Attribute> transforms::tryFoldScalarOp(const Operation *Op) {
  if (!Op->isPure() || Op->numResults() != 1)
    return std::nullopt;

  OpCode Code = Op->opcode();
  Type ResTy = Op->result(0)->type();
  if (ResTy.isVector())
    return std::nullopt;

  // Gather constant operands.
  auto FloatOperand = [&](unsigned I) { return constantFloat(Op->operand(I)); };
  auto IntOperand = [&](unsigned I) { return constantInt(Op->operand(I)); };
  auto BoolOperand = [&](unsigned I) { return constantBool(Op->operand(I)); };

  switch (Code) {
  case OpCode::ArithAddF:
  case OpCode::ArithSubF:
  case OpCode::ArithMulF:
  case OpCode::ArithDivF:
  case OpCode::ArithRemF:
  case OpCode::ArithMinF:
  case OpCode::ArithMaxF:
  case OpCode::MathPow: {
    auto A = FloatOperand(0), B = FloatOperand(1);
    if (!A || !B)
      return std::nullopt;
    return Attribute::makeFloat(evalFloatOp(Code, *A, *B));
  }
  case OpCode::ArithNegF:
  case OpCode::MathExp:
  case OpCode::MathExpm1:
  case OpCode::MathLog:
  case OpCode::MathLog10:
  case OpCode::MathSqrt:
  case OpCode::MathSin:
  case OpCode::MathCos:
  case OpCode::MathTan:
  case OpCode::MathTanh:
  case OpCode::MathSinh:
  case OpCode::MathCosh:
  case OpCode::MathAtan:
  case OpCode::MathAsin:
  case OpCode::MathAcos:
  case OpCode::MathAbs:
  case OpCode::MathFloor:
  case OpCode::MathCeil: {
    auto A = FloatOperand(0);
    if (!A)
      return std::nullopt;
    return Attribute::makeFloat(evalFloatOp(Code, *A, 0));
  }
  case OpCode::ArithCmpF: {
    auto A = FloatOperand(0), B = FloatOperand(1);
    if (!A || !B)
      return std::nullopt;
    CmpPredicate Pred;
    if (!parseCmpPredicate(Op->attr("predicate").asString(), Pred))
      return std::nullopt;
    return Attribute::makeBool(evalCmp(Pred, *A, *B));
  }
  case OpCode::ArithCmpI: {
    auto A = IntOperand(0), B = IntOperand(1);
    if (!A || !B)
      return std::nullopt;
    CmpPredicate Pred;
    if (!parseCmpPredicate(Op->attr("predicate").asString(), Pred))
      return std::nullopt;
    return Attribute::makeBool(
        evalCmp(Pred, double(*A), double(*B)));
  }
  case OpCode::ArithAddI:
  case OpCode::ArithSubI:
  case OpCode::ArithMulI:
  case OpCode::ArithDivI:
  case OpCode::ArithRemI: {
    auto A = IntOperand(0), B = IntOperand(1);
    if (!A || !B)
      return std::nullopt;
    if ((Code == OpCode::ArithDivI || Code == OpCode::ArithRemI) && *B == 0)
      return std::nullopt;
    int64_t R;
    switch (Code) {
    case OpCode::ArithAddI:
      R = *A + *B;
      break;
    case OpCode::ArithSubI:
      R = *A - *B;
      break;
    case OpCode::ArithMulI:
      R = *A * *B;
      break;
    case OpCode::ArithDivI:
      R = *A / *B;
      break;
    default:
      R = *A % *B;
      break;
    }
    return Attribute::makeInt(R);
  }
  case OpCode::ArithAndI:
  case OpCode::ArithOrI:
  case OpCode::ArithXOrI: {
    if (!ResTy.isI1())
      return std::nullopt;
    auto A = BoolOperand(0), B = BoolOperand(1);
    if (!A || !B)
      return std::nullopt;
    bool R = Code == OpCode::ArithAndI ? (*A && *B)
             : Code == OpCode::ArithOrI ? (*A || *B)
                                        : (*A != *B);
    return Attribute::makeBool(R);
  }
  case OpCode::ArithSelect: {
    auto C = BoolOperand(0);
    if (!C)
      return std::nullopt;
    // Fold select only when the chosen arm is itself constant; otherwise
    // canonicalize handles the value-forwarding case.
    const Value *Arm = Op->operand(*C ? 1 : 2);
    if (auto F = constantFloat(Arm))
      return Attribute::makeFloat(*F);
    if (auto I = constantInt(Arm))
      return Attribute::makeInt(*I);
    return std::nullopt;
  }
  default:
    return std::nullopt;
  }
}

Value *transforms::materializeConstant(OpBuilder &B, Attribute Value,
                                       Type Ty) {
  switch (Value.kind()) {
  case Attribute::Kind::Float:
    return makeConstantF(B, Value.asFloat(), Ty);
  case Attribute::Kind::Int: {
    Operation *Op = B.create(OpCode::ArithConstantI, {}, {Ty});
    Op->setAttr("value", Value);
    return Op->result();
  }
  case Attribute::Kind::Bool: {
    Operation *Op = B.create(OpCode::ArithConstantI, {}, {Ty});
    Op->setAttr("value", Attribute::makeInt(Value.asBool() ? 1 : 0));
    return Op->result();
  }
  default:
    limpet_unreachable("cannot materialize this attribute kind");
  }
}
