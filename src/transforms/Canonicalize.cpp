//===- Canonicalize.cpp - Algebraic simplification patterns ---------------===//
//
// Value-forwarding and strength-reduction rewrites: x+0, x*1, x/1, --x,
// select on a constant condition, pow with small constant exponents. All
// rewrites are IEEE-safe for the inputs ionic models produce (we do not
// rewrite x*0 or x-x, which are unsound under NaN/Inf).
//
//===----------------------------------------------------------------------===//

#include "dialects/Dialects.h"
#include "support/Casting.h"
#include "transforms/FoldUtils.h"
#include "transforms/Pass.h"

using namespace limpet;
using namespace limpet::ir;
using namespace limpet::transforms;

namespace {

class CanonicalizePass : public Pass {
public:
  std::string_view name() const override { return "canonicalize"; }

  bool run(Operation *Func, Context &Ctx) override {
    bool Changed = false;
    bool LocalChange = true;
    // Fixpoint over a bounded number of sweeps (each sweep strictly
    // shrinks or simplifies the IR, so this terminates quickly).
    while (LocalChange) {
      LocalChange = false;
      std::vector<Operation *> Ops;
      Func->walk([&](Operation *Op) {
        if (Op != Func)
          Ops.push_back(Op);
      });
      for (Operation *Op : Ops) {
        Value *Repl = simplify(Op, Ctx);
        if (!Repl)
          continue;
        Func->replaceUsesOfWith(Op->result(0), Repl);
        Op->parentBlock()->erase(Op);
        Changed = LocalChange = true;
      }
    }
    return Changed;
  }

private:
  static bool isFloatConst(Value *V, double C) {
    auto F = constantFloat(V);
    return F && *F == C;
  }

  /// Returns the replacement value for \p Op, or null if no pattern fires.
  /// Patterns returning an existing value only; patterns that build new ops
  /// insert them before \p Op.
  Value *simplify(Operation *Op, Context &Ctx) {
    if (!Op->isPure() || Op->numResults() != 1)
      return nullptr;
    Value *L = Op->numOperands() > 0 ? Op->operand(0) : nullptr;
    Value *R = Op->numOperands() > 1 ? Op->operand(1) : nullptr;

    switch (Op->opcode()) {
    case OpCode::ArithAddF:
      if (isFloatConst(R, 0.0))
        return L;
      if (isFloatConst(L, 0.0))
        return R;
      return nullptr;
    case OpCode::ArithSubF:
      if (isFloatConst(R, 0.0))
        return L;
      return nullptr;
    case OpCode::ArithMulF:
      if (isFloatConst(R, 1.0))
        return L;
      if (isFloatConst(L, 1.0))
        return R;
      return nullptr;
    case OpCode::ArithDivF:
      if (isFloatConst(R, 1.0))
        return L;
      return nullptr;
    case OpCode::ArithNegF: {
      if (auto *Def = dyn_cast<OpResult>(L))
        if (Def->owner()->opcode() == OpCode::ArithNegF)
          return Def->owner()->operand(0);
      return nullptr;
    }
    case OpCode::ArithSelect: {
      auto C = constantBool(Op->operand(0));
      if (C)
        return Op->operand(*C ? 1 : 2);
      if (Op->operand(1) == Op->operand(2))
        return Op->operand(1);
      return nullptr;
    }
    case OpCode::MathPow: {
      auto E = constantFloat(R);
      if (!E)
        return nullptr;
      OpBuilder B(Ctx);
      B.setInsertionPoint(Op);
      if (*E == 1.0)
        return L;
      if (*E == 2.0)
        return makeMulF(B, L, L);
      if (*E == 3.0)
        return makeMulF(B, makeMulF(B, L, L), L);
      if (*E == 0.5)
        return makeMathUnary(B, OpCode::MathSqrt, L);
      if (*E == -1.0)
        return makeDivF(B, makeConstantF(B, 1.0, L->type()), L);
      return nullptr;
    }
    case OpCode::ArithAddI: {
      auto C = constantInt(R);
      if (C && *C == 0)
        return L;
      C = constantInt(L);
      if (C && *C == 0)
        return R;
      return nullptr;
    }
    case OpCode::ArithMulI: {
      auto C = constantInt(R);
      if (C && *C == 1)
        return L;
      C = constantInt(L);
      if (C && *C == 1)
        return R;
      return nullptr;
    }
    default:
      return nullptr;
    }
  }
};

} // namespace

std::unique_ptr<Pass> transforms::createCanonicalizePass() {
  return std::make_unique<CanonicalizePass>();
}
