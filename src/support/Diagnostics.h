//===- Diagnostics.h - Source locations and diagnostics ---------*- C++-*-===//
//
// Diagnostic machinery for the EasyML frontend: a lightweight source
// location, a severity-tagged diagnostic record, and an engine that collects
// diagnostics for later rendering. Library code never prints directly; tools
// render the collected diagnostics.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SUPPORT_DIAGNOSTICS_H
#define LIMPET_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace limpet {

/// A (line, column) position within an EasyML source buffer. Lines and
/// columns are 1-based; a zero line means "unknown location".
struct SourceLoc {
  int Line = 0;
  int Col = 0;

  bool isValid() const { return Line > 0; }
  std::string str() const;
};

/// Severity of a diagnostic. Errors make the enclosing compilation fail;
/// warnings and notes are advisory.
enum class DiagSeverity { Error, Warning, Note };

/// One diagnostic message attached to a source location.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders "line:col: error: message" (location omitted when unknown).
  std::string str() const;
};

/// Collects diagnostics emitted during a frontend run.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors > 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics, one per line.
  std::string str() const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace limpet

#endif // LIMPET_SUPPORT_DIAGNOSTICS_H
