//===- FailPoint.h - Deterministic fault-injection points -------*- C++-*-===//
//
// Named fail points let tests drive rare I/O failures (a full disk, a
// short write) through the exact production error paths instead of
// mocking them. A fail point is armed either from the environment
//
//   LIMPET_FAILPOINT=write-enospc:3     fire on the 3rd probe, then disarm
//   LIMPET_FAILPOINT=write-enospc:3*    fire on the 3rd and every later probe
//
// or programmatically (armFailPoint) from in-process harnesses like
// faultinject. Probing is cheap when nothing is armed (one relaxed
// atomic load), so production write paths can probe unconditionally.
//
// The one site-name in use today is "write-enospc": probed by
// compiler::writeFileAtomic (checkpoints, compile-cache artifacts,
// journal compaction, daemon result files) and daemon::Journal::append,
// which simulate ENOSPC and return a recoverable Status with no partial
// temp file left behind. See docs/ROBUSTNESS.md.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SUPPORT_FAILPOINT_H
#define LIMPET_SUPPORT_FAILPOINT_H

#include <cstdint>
#include <string_view>

namespace limpet {
namespace support {

/// True when the fail point \p Name should fire for this probe. Each call
/// with a matching armed name counts as one probe; the Nth probe fires
/// (and, for persistent arms, so does every later one).
bool failPoint(std::string_view Name);

/// Arms \p Name to fire on the \p Nth matching probe (1-based). With
/// \p Persistent every probe from the Nth on fires; otherwise the point
/// disarms after firing once. Overrides any environment arming.
void armFailPoint(std::string_view Name, int64_t Nth, bool Persistent = false);

/// Disarms everything (including the environment arming, until re-armed).
void disarmFailPoints();

/// Number of times any fail point has fired since process start (or the
/// last disarm); lets tests assert the injected failure actually ran
/// through the production path.
uint64_t failPointFireCount();

} // namespace support
} // namespace limpet

#endif // LIMPET_SUPPORT_FAILPOINT_H
