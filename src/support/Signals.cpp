//===- Signals.cpp --------------------------------------------------------===//

#include "support/Signals.h"

#include <csignal>

using namespace limpet;

namespace {

// The only state a handler touches. volatile sig_atomic_t is the one type
// the standard guarantees is safe to write from a signal handler.
volatile std::sig_atomic_t ShutdownFlag = 0;

extern "C" void limpetShutdownHandler(int) { ShutdownFlag = 1; }

#ifndef _WIN32
struct SavedAction {
  struct sigaction Action = {};
  bool Saved = false;
};
SavedAction SavedInt, SavedTerm, SavedPipe;
bool ShutdownInstalled = false;
bool PipeIgnored = false;

void installOne(int Sig, void (*Handler)(int), SavedAction &Saved) {
  struct sigaction New = {};
  New.sa_handler = Handler;
  sigemptyset(&New.sa_mask);
  // No SA_RESTART: blocking accept/read in the daemon must return with
  // EINTR so its loops notice the shutdown flag promptly.
  New.sa_flags = 0;
  Saved.Saved = sigaction(Sig, &New, &Saved.Action) == 0;
}

void restoreOne(int Sig, SavedAction &Saved) {
  if (Saved.Saved)
    sigaction(Sig, &Saved.Action, nullptr);
  Saved.Saved = false;
}
#else
bool ShutdownInstalled = false;
#endif

} // namespace

void support::installShutdownHandlers() {
  if (ShutdownInstalled)
    return;
  ShutdownInstalled = true;
#ifndef _WIN32
  installOne(SIGINT, limpetShutdownHandler, SavedInt);
  installOne(SIGTERM, limpetShutdownHandler, SavedTerm);
#else
  std::signal(SIGINT, limpetShutdownHandler);
  std::signal(SIGTERM, limpetShutdownHandler);
#endif
}

void support::restoreShutdownHandlers() {
  if (!ShutdownInstalled)
    return;
  ShutdownInstalled = false;
#ifndef _WIN32
  restoreOne(SIGINT, SavedInt);
  restoreOne(SIGTERM, SavedTerm);
#else
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
#endif
}

bool support::shutdownRequested() { return ShutdownFlag != 0; }

void support::requestShutdown() { ShutdownFlag = 1; }

void support::clearShutdownRequest() { ShutdownFlag = 0; }

void support::ignoreSigPipe() {
#ifndef _WIN32
  if (PipeIgnored)
    return;
  PipeIgnored = true;
  struct sigaction New = {};
  New.sa_handler = SIG_IGN;
  sigemptyset(&New.sa_mask);
  SavedPipe.Saved = sigaction(SIGPIPE, &New, &SavedPipe.Action) == 0;
#endif
}

void support::restoreSigPipe() {
#ifndef _WIN32
  if (!PipeIgnored)
    return;
  PipeIgnored = false;
  restoreOne(SIGPIPE, SavedPipe);
#endif
}
