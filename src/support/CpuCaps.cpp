//===- CpuCaps.cpp --------------------------------------------------------===//

#include "support/CpuCaps.h"

#include <cstdio>
#include <cstdlib>

using namespace limpet;
using namespace limpet::support;

std::optional<CpuCaps> support::cpuCapsFromName(std::string_view Name) {
  CpuCaps C;
  if (Name == "scalar") {
    C.Isa = "scalar";
    C.MaxLanesF64 = 1;
    C.PreferredAlignBytes = 8;
    return C;
  }
  if (Name == "sse2") {
    C.Isa = "sse2";
    C.MaxLanesF64 = 2;
    C.PreferredAlignBytes = 16;
    return C;
  }
  if (Name == "neon") {
    C.Isa = "neon";
    C.MaxLanesF64 = 2;
    C.PreferredAlignBytes = 16;
    return C;
  }
  if (Name == "avx2") {
    C.Isa = "avx2";
    C.MaxLanesF64 = 4;
    C.PreferredAlignBytes = 32;
    return C;
  }
  if (Name == "avx512") {
    C.Isa = "avx512";
    C.MaxLanesF64 = 8;
    C.PreferredAlignBytes = 64;
    return C;
  }
  if (Name == "generic") {
    return CpuCaps{};
  }
  return std::nullopt;
}

static CpuCaps probeHost() {
#if defined(__x86_64__) || defined(__i386__)
  // __builtin_cpu_supports is available on both gcc and clang for x86 and
  // does its own cpuid caching.
  if (__builtin_cpu_supports("avx512f"))
    return *cpuCapsFromName("avx512");
  if (__builtin_cpu_supports("avx2"))
    return *cpuCapsFromName("avx2");
  if (__builtin_cpu_supports("sse2"))
    return *cpuCapsFromName("sse2");
  return *cpuCapsFromName("scalar");
#elif defined(__aarch64__)
  // AArch64 mandates Advanced SIMD (2 x f64).
  return *cpuCapsFromName("neon");
#else
  return CpuCaps{};
#endif
}

const CpuCaps &support::hostCpuCaps() {
  static const CpuCaps Caps = [] {
    if (const char *Override = std::getenv("LIMPET_CPU_CAPS");
        Override && *Override) {
      if (std::optional<CpuCaps> C = cpuCapsFromName(Override))
        return *C;
      std::fprintf(stderr,
                   "warning: unknown LIMPET_CPU_CAPS='%s' ignored "
                   "(scalar, sse2, avx2, avx512, neon, generic)\n",
                   Override);
    }
    return probeHost();
  }();
  return Caps;
}
