//===- FailPoint.cpp ------------------------------------------------------===//

#include "support/FailPoint.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>

using namespace limpet;

namespace {

struct FailPointState {
  std::mutex Mu;
  std::string Name;        // empty = nothing armed
  int64_t Countdown = 0;   // probes left before the point fires
  bool Persistent = false; // keep firing after the first hit
  bool EnvParsed = false;
  std::atomic<bool> Armed{false}; // fast-path gate, mirrors !Name.empty()
  std::atomic<uint64_t> Fired{0};
};

FailPointState &state() {
  static FailPointState S;
  return S;
}

/// Parses "name:<n>" / "name:<n>*" into the (locked) state. Malformed
/// values are ignored — a fail point is a test feature; the production
/// process must never abort because of a bad arming string.
void parseEnvLocked(FailPointState &S) {
  S.EnvParsed = true;
  const char *V = std::getenv("LIMPET_FAILPOINT");
  if (!V || !*V)
    return;
  std::string Spec(V);
  size_t Colon = Spec.rfind(':');
  if (Colon == std::string::npos || Colon == 0 || Colon + 1 == Spec.size())
    return;
  std::string Num = Spec.substr(Colon + 1);
  bool Persistent = false;
  if (!Num.empty() && Num.back() == '*') {
    Persistent = true;
    Num.pop_back();
  }
  if (Num.empty())
    return;
  int64_t Nth = 0;
  for (char C : Num) {
    if (C < '0' || C > '9')
      return;
    Nth = Nth * 10 + (C - '0');
  }
  if (Nth <= 0)
    return;
  S.Name = Spec.substr(0, Colon);
  S.Countdown = Nth;
  S.Persistent = Persistent;
  S.Armed.store(true, std::memory_order_release);
}

} // namespace

bool support::failPoint(std::string_view Name) {
  FailPointState &S = state();
  // Fast path: nothing armed and the environment already parsed.
  if (!S.Armed.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    if (!S.EnvParsed)
      parseEnvLocked(S);
    if (S.Name.empty())
      return false;
  }
  std::lock_guard<std::mutex> Lock(S.Mu);
  if (S.Name != Name)
    return false;
  if (S.Countdown > 1) {
    --S.Countdown;
    return false;
  }
  if (S.Countdown <= 0) // already fired a one-shot arm
    return false;
  S.Fired.fetch_add(1, std::memory_order_relaxed);
  if (!S.Persistent) {
    S.Countdown = 0; // one-shot: stays armed-but-spent until disarmed
  }
  return true;
}

void support::armFailPoint(std::string_view Name, int64_t Nth,
                           bool Persistent) {
  FailPointState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.EnvParsed = true; // explicit arming overrides the environment
  if (Nth <= 0 || Name.empty()) {
    S.Name.clear();
    S.Countdown = 0;
    S.Armed.store(false, std::memory_order_release);
    return;
  }
  S.Name = std::string(Name);
  S.Countdown = Nth;
  S.Persistent = Persistent;
  S.Armed.store(true, std::memory_order_release);
}

void support::disarmFailPoints() {
  FailPointState &S = state();
  std::lock_guard<std::mutex> Lock(S.Mu);
  S.EnvParsed = true;
  S.Name.clear();
  S.Countdown = 0;
  S.Persistent = false;
  S.Armed.store(false, std::memory_order_release);
  S.Fired.store(0, std::memory_order_relaxed);
}

uint64_t support::failPointFireCount() {
  return state().Fired.load(std::memory_order_relaxed);
}
