//===- Casting.h - LLVM-style isa/cast/dyn_cast helpers ---------*- C++-*-===//
//
// Part of the limpetMLIR reproduction. Hand-rolled RTTI in the style of
// llvm/Support/Casting.h: classes opt in by providing a static
// `classof(const Base *)` predicate, and clients use isa<>, cast<> and
// dyn_cast<> instead of dynamic_cast<>.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SUPPORT_CASTING_H
#define LIMPET_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace limpet {

/// Returns true if \p Val is an instance of the class \p To (or any of the
/// listed classes, checked left to right).
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

template <typename To, typename To2, typename... Rest, typename From>
bool isa(const From *Val) {
  return isa<To>(Val) || isa<To2, Rest...>(Val);
}

/// Checked downcast: asserts that \p Val really is a \p To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type!");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type!");
  return static_cast<const To *>(Val);
}

/// Checking downcast: returns null when \p Val is not a \p To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// Like dyn_cast<>, but tolerates a null argument (propagating it).
template <typename To, typename From> To *dyn_cast_if_present(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

/// Marks a point in the program that is known to be unreachable. In debug
/// builds aborts with \p Msg; in release builds it is an optimizer hint.
[[noreturn]] inline void limpet_unreachable_impl(const char *Msg,
                                                 const char *File, int Line);

} // namespace limpet

#include <cstdio>
#include <cstdlib>

namespace limpet {

inline void limpet_unreachable_impl(const char *Msg, const char *File,
                                    int Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", File, Line,
               Msg ? Msg : "");
  std::abort();
}

} // namespace limpet

#define limpet_unreachable(MSG)                                               \
  ::limpet::limpet_unreachable_impl(MSG, __FILE__, __LINE__)

#endif // LIMPET_SUPPORT_CASTING_H
