//===- CpuCaps.h - Host ISA / vector capability probe -----------*- C++-*-===//
//
// A tiny, dependency-free probe of the host's SIMD capabilities, queried
// once at startup to populate the exec::BackendRegistry. The probe answers
// one question: how many f64 lanes does the widest native vector unit
// hold? Everything width-related downstream — which interpreter widths
// the registry registers, which point the capability heuristic picks when
// no tuning record exists, and the registry fingerprint that keys tuning
// records to a machine class — derives from this answer.
//
// The probe is overridable: LIMPET_CPU_CAPS=<isa> (scalar, sse2, avx2,
// avx512, neon) pins the answer for tests and for reproducing another
// machine's selection behaviour, exactly like cross-compiling against a
// -march target.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SUPPORT_CPUCAPS_H
#define LIMPET_SUPPORT_CPUCAPS_H

#include <optional>
#include <string>
#include <string_view>

namespace limpet {
namespace support {

/// What the host (or the LIMPET_CPU_CAPS override) can do.
struct CpuCaps {
  /// Canonical ISA name: "scalar", "sse2", "avx2", "avx512", "neon" or
  /// "generic" (unknown architecture; scalar-safe defaults).
  std::string Isa = "generic";
  /// f64 lanes of the widest native vector register (1 when scalar).
  unsigned MaxLanesF64 = 1;
  /// Alignment (bytes) that makes vector loads of the widest unit fast.
  unsigned PreferredAlignBytes = 8;
};

/// The named ISA profiles the probe (and its override) can produce.
std::optional<CpuCaps> cpuCapsFromName(std::string_view Name);

/// Probes the host once (memoized). Honors LIMPET_CPU_CAPS when set to a
/// name cpuCapsFromName accepts; an unknown override name is ignored with
/// a warning so a typo degrades to the real probe, never to a crash.
const CpuCaps &hostCpuCaps();

} // namespace support
} // namespace limpet

#endif // LIMPET_SUPPORT_CPUCAPS_H
