//===- Signals.h - Consolidated process signal handling ---------*- C++-*-===//
//
// The one place the repo touches process signal disposition. Anything
// else (tools, the daemon, the Simulator's shutdown poll) goes through
// this module instead of calling std::signal directly, so that:
//
//  * handlers only ever perform async-signal-safe work (set a
//    volatile sig_atomic_t flag — no allocation, no locks, no stdio);
//  * the handler installed before us is saved and restored on teardown,
//    so an embedding host (openCARP linking limpet as a library) gets its
//    own SIGINT/SIGTERM behavior back when the scoped guard dies;
//  * SIGPIPE can be ignored for the daemon's socket writes (a client
//    hanging up mid-stream must surface as an EPIPE write error on that
//    connection, never kill the whole process) with the same
//    save/restore discipline.
//
// SIGCHLD needs no wiring today — the daemon runs jobs on threads, not
// forked children — but if a subprocess-per-job isolation mode is added,
// its reaper belongs here too (see docs/DAEMON.md).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SUPPORT_SIGNALS_H
#define LIMPET_SUPPORT_SIGNALS_H

namespace limpet {
namespace support {

/// Installs SIGINT/SIGTERM handlers that set the process-wide shutdown
/// flag (idempotent; the second call is a no-op). The previous handlers
/// are saved for restoreShutdownHandlers.
void installShutdownHandlers();

/// Restores the SIGINT/SIGTERM dispositions saved by the matching
/// installShutdownHandlers call. No-op when nothing was installed.
void restoreShutdownHandlers();

/// True once a shutdown signal (or requestShutdown) arrived.
bool shutdownRequested();

/// Sets the shutdown flag from code — deterministic kill-at-step in tests
/// and the fault-injection harness.
void requestShutdown();

/// Clears the flag (between runs in one process).
void clearShutdownRequest();

/// Sets SIGPIPE to SIG_IGN (daemon socket writes), saving the previous
/// disposition; idempotent.
void ignoreSigPipe();

/// Restores the SIGPIPE disposition saved by ignoreSigPipe.
void restoreSigPipe();

/// RAII signal setup for a process that wants graceful shutdown (and,
/// optionally, socket-safe writes) for a bounded scope: tools install one
/// at the top of main, and an embedding host that creates/destroys
/// limpet components gets its own handlers back automatically.
class ScopedSignalHandlers {
public:
  explicit ScopedSignalHandlers(bool IgnorePipe = false)
      : Pipe(IgnorePipe) {
    installShutdownHandlers();
    if (Pipe)
      ignoreSigPipe();
  }
  ScopedSignalHandlers(const ScopedSignalHandlers &) = delete;
  ScopedSignalHandlers &operator=(const ScopedSignalHandlers &) = delete;
  ~ScopedSignalHandlers() {
    if (Pipe)
      restoreSigPipe();
    restoreShutdownHandlers();
  }

private:
  bool Pipe;
};

} // namespace support
} // namespace limpet

#endif // LIMPET_SUPPORT_SIGNALS_H
