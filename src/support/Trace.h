//===- Trace.h - Chrome trace-event recording -------------------*- C++-*-===//
//
// Records timestamped spans and instant events and exports them in the
// Chrome trace-event JSON format, so a whole compile+run (`limpetc
// --trace out.json`) can be opened in chrome://tracing / Perfetto.
//
// One TraceRecorder is installed process-wide (setActive); instrumented
// call sites construct TraceSpan objects that are no-ops while no recorder
// is active, so tracing costs nothing unless requested. The recorder caps
// its event buffer (MaxEvents) and counts drops instead of growing without
// bound on very long runs.
//
// Like Telemetry.h, the whole facility compiles to empty stubs when
// LIMPET_TELEMETRY_ENABLED is 0, in an ODR-safe inline namespace.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SUPPORT_TRACE_H
#define LIMPET_SUPPORT_TRACE_H

#include "support/Telemetry.h"

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace limpet {
namespace telemetry {

#if LIMPET_TELEMETRY_ENABLED
inline namespace on {

class TraceRecorder {
public:
  /// Timestamps are microseconds relative to construction.
  TraceRecorder();

  /// The recorder trace spans report into (nullptr = tracing off).
  static TraceRecorder *active();
  /// Installs \p R as the process-wide recorder (pass nullptr to stop).
  static void setActive(TraceRecorder *R);

  /// A completed span ("ph":"X").
  void complete(std::string_view Name, std::string_view Cat,
                Clock::time_point T0, Clock::time_point T1);
  /// A zero-duration marker ("ph":"i").
  void instant(std::string_view Name, std::string_view Cat);
  /// A counter sample ("ph":"C", series "value").
  void counterSample(std::string_view Name, double Value);

  size_t eventCount() const;
  size_t droppedCount() const;

  /// The full trace document: {"traceEvents":[...],...}.
  std::string json() const;

  /// Writes json() to \p Path. Returns false (with \p Error set) on I/O
  /// failure.
  bool writeFile(const std::string &Path, std::string *Error = nullptr) const;

  /// Event-buffer cap; events beyond it are counted as dropped.
  static constexpr size_t MaxEvents = size_t(1) << 20;

private:
  struct Event {
    std::string Name;
    std::string Cat;
    char Ph;
    double TsUs;
    double DurUs;
    uint32_t Tid;
    double Value;
  };

  void push(Event E);
  double toUs(Clock::time_point T) const;

  Clock::time_point Epoch;
  mutable std::mutex Mutex;
  std::vector<Event> Events;
  size_t Dropped = 0;
};

/// RAII span: records a complete event on destruction when a recorder was
/// active at construction. Cheap when tracing is off (one atomic load).
class TraceSpan {
public:
  TraceSpan(std::string_view Name, std::string_view Cat)
      : R(TraceRecorder::active()) {
    if (R) {
      this->Name = Name;
      this->Cat = Cat;
      T0 = Clock::now();
    }
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
  ~TraceSpan() {
    if (R)
      R->complete(Name, Cat, T0, Clock::now());
  }

private:
  TraceRecorder *R;
  Clock::time_point T0;
  std::string Name;
  std::string Cat;
};

} // namespace on
#else
inline namespace off {

class TraceRecorder {
public:
  static TraceRecorder *active() { return nullptr; }
  static void setActive(TraceRecorder *) {}
  void complete(std::string_view, std::string_view, Clock::time_point,
                Clock::time_point) {}
  void instant(std::string_view, std::string_view) {}
  void counterSample(std::string_view, double) {}
  size_t eventCount() const { return 0; }
  size_t droppedCount() const { return 0; }
  std::string json() const { return "{\"traceEvents\":[]}\n"; }
  bool writeFile(const std::string &, std::string * = nullptr) const {
    return false;
  }
};

class TraceSpan {
public:
  TraceSpan(std::string_view, std::string_view) {}
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;
};

} // namespace off
#endif // LIMPET_TELEMETRY_ENABLED

} // namespace telemetry
} // namespace limpet

#endif // LIMPET_SUPPORT_TRACE_H
