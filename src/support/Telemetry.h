//===- Telemetry.h - Counters, timers and runtime hot-path stats *- C++-*-===//
//
// Low-overhead instrumentation layer behind the repo's observability
// story (docs/OBSERVABILITY.md):
//
//  * A process-wide hierarchical registry of named monotonic counters
//    (dotted paths, e.g. "compile.pass.cse.ns"), used by the compile
//    pipeline for per-stage wall time, op counts and table statistics.
//  * Thread-local runtime shards for the simulation hot path: the engines
//    record per-chunk kernel time, cell-steps per vector width and derived
//    LUT/math-call counts without ever contending a shared cache line in
//    the inner loop. Shards are merged on demand, after the ThreadPool
//    barrier has quiesced the workers.
//
// The whole layer is compile-time optional: configuring with
// -DLIMPET_TELEMETRY=OFF (which defines LIMPET_TELEMETRY_ENABLED=0)
// replaces every entry point with an empty inline stub, so instrumented
// call sites compile away and the hot loop carries no counters at all.
// The enabled and disabled APIs live in differently named inline
// namespaces, so a binary may mix TUs built both ways (the zero-overhead
// test does exactly that) without ODR violations.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SUPPORT_TELEMETRY_H
#define LIMPET_SUPPORT_TELEMETRY_H

#ifndef LIMPET_TELEMETRY_ENABLED
#define LIMPET_TELEMETRY_ENABLED 1
#endif

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace limpet {
namespace telemetry {

/// Whether the instrumentation layer is compiled in. Deliberately not
/// `inline`: the value differs per TU when a binary mixes telemetry-on
/// and telemetry-off objects, so it must have internal linkage.
constexpr bool kEnabled = LIMPET_TELEMETRY_ENABLED != 0;

using Clock = std::chrono::steady_clock;

inline uint64_t nanosecondsSince(Clock::time_point T0) {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      Clock::now() - T0)
                      .count());
}

/// One merged view of the runtime hot-path counters (all shards summed).
/// Plain data so it exists identically in enabled and disabled builds.
struct RuntimeCounters {
  uint64_t KernelNs = 0;    ///< wall time inside runKernel
  uint64_t KernelCalls = 0; ///< chunk invocations
  uint64_t CellSteps = 0;   ///< cells x kernel steps processed
  /// CellSteps split by configured vector width (1 / 2 / 4 / 8).
  uint64_t CellStepsByWidth[4] = {0, 0, 0, 0};
  uint64_t LutInterps = 0;    ///< LUT interpolations (static count x cells)
  uint64_t FastMathCalls = 0; ///< VecMath transcendental calls
  uint64_t LibmCalls = 0;     ///< exact libm transcendental calls
  /// Modeled memory traffic (roofline numerator/denominator inputs):
  /// BcProgram's static per-cell byte counts x cells processed. Measured
  /// operational intensity can be cross-checked against
  /// InstrCounts::operationalIntensity().
  uint64_t BytesLoaded = 0;
  uint64_t BytesStored = 0;

  void merge(const RuntimeCounters &O);

  double nsPerCellStep() const {
    return CellSteps ? double(KernelNs) / double(CellSteps) : 0.0;
  }
  double cellStepsPerSecond() const {
    return KernelNs ? double(CellSteps) * 1e9 / double(KernelNs) : 0.0;
  }
  /// Slot of a supported width in CellStepsByWidth (1->0, 2->1, 4->2,
  /// 8->3); unsupported widths map to slot 0.
  static unsigned widthSlot(unsigned Width) {
    return Width == 2 ? 1 : Width == 4 ? 2 : Width == 8 ? 3 : 0;
  }

  /// Multi-line human rendering ("(no kernel activity recorded)" when
  /// empty).
  std::string str() const;
};

/// Small process-stable id for the calling thread (0 = first thread that
/// asked). Used as the "tid" of trace events. Available in both modes so
/// tests can rely on it.
uint32_t threadId();

#if LIMPET_TELEMETRY_ENABLED
inline namespace on {

/// A named monotonic counter. Addresses are stable for the process
/// lifetime; hot call sites should look the counter up once and keep the
/// reference.
class Counter {
public:
  explicit Counter(std::string Name) : Name(std::move(Name)) {}

  void add(uint64_t N = 1) { Value.fetch_add(N, std::memory_order_relaxed); }
  uint64_t get() const { return Value.load(std::memory_order_relaxed); }
  void reset() { Value.store(0, std::memory_order_relaxed); }
  const std::string &name() const { return Name; }

private:
  std::string Name;
  std::atomic<uint64_t> Value{0};
};

/// The process-wide counter registry. Counters are keyed by dotted paths
/// that form a hierarchy ("compile.pass.cse.ns"); summary() renders the
/// tree. Registration takes a mutex; updates are lock-free.
class Registry {
public:
  static Registry &instance();

  /// The counter registered under \p Path (created on first use).
  Counter &counter(std::string_view Path);

  /// Current value of \p Path, or 0 when it was never registered.
  uint64_t value(std::string_view Path) const;

  /// All (path, value) pairs, sorted by path.
  std::vector<std::pair<std::string, uint64_t>> snapshot() const;

  /// The (path, value) pairs whose path starts with \p Prefix, sorted by
  /// path. A prefix like "daemon.tenant.alice." scopes the view to one
  /// tenant's counters without copying the whole registry.
  std::vector<std::pair<std::string, uint64_t>>
  snapshot(std::string_view Prefix) const;

  /// Zeroes every registered counter (tests and repeated tool runs).
  void resetAll();

  /// Hierarchical human rendering of every non-zero counter. Paths ending
  /// in ".ns" are also shown as milliseconds.
  std::string summary() const;

private:
  Registry() = default;
  struct Impl;
  Impl &impl() const;
};

/// Shorthand for Registry::instance().counter(Path).
inline Counter &counter(std::string_view Path) {
  return Registry::instance().counter(Path);
}

/// RAII timer adding elapsed nanoseconds to a counter on destruction.
class ScopedTimerNs {
public:
  explicit ScopedTimerNs(Counter &C) : C(&C), T0(Clock::now()) {}
  explicit ScopedTimerNs(std::string_view Path)
      : C(&counter(Path)), T0(Clock::now()) {}
  ScopedTimerNs(const ScopedTimerNs &) = delete;
  ScopedTimerNs &operator=(const ScopedTimerNs &) = delete;
  ~ScopedTimerNs() { C->add(nanosecondsSince(T0)); }

private:
  Counter *C;
  Clock::time_point T0;
};

//===----------------------------------------------------------------------===//
// Runtime hot-path shards
//===----------------------------------------------------------------------===//

/// Records one kernel chunk execution into the calling thread's shard.
/// \p LutOpsPerCell / \p MathOpsPerCell are the program's static per-cell
/// op counts and \p LoadBytesPerCell / \p StoreBytesPerCell its static
/// per-cell traffic model (BcProgram), so the inner interpreter loop
/// needs no instrumentation at all.
void recordKernelChunk(uint64_t Ns, int64_t Cells, unsigned Width,
                       bool FastMath, uint32_t LutOpsPerCell,
                       uint32_t MathOpsPerCell, double LoadBytesPerCell = 0,
                       double StoreBytesPerCell = 0);

/// Sum of all thread shards. Callers must ensure the workers are at a
/// barrier (ThreadPool::parallelFor has returned), which is the natural
/// state between simulation runs.
RuntimeCounters runtimeCounters();

/// Zeroes every thread shard (same barrier caveat as runtimeCounters).
void resetRuntimeCounters();

/// Registry summary plus the merged runtime counters: the body of
/// `limpetc --stats` and SimOptions::Stats output.
std::string summaryReport();

} // namespace on
#else
inline namespace off {

// Disabled build: every entry point is an empty inline stub that the
// optimizer deletes. No counters, no clocks, no registry.

class Counter {
public:
  void add(uint64_t = 1) {}
  uint64_t get() const { return 0; }
  void reset() {}
};

inline Counter &counter(std::string_view) {
  static Counter C;
  return C;
}

class Registry {
public:
  static Registry &instance() {
    static Registry R;
    return R;
  }
  Counter &counter(std::string_view P) { return telemetry::counter(P); }
  uint64_t value(std::string_view) const { return 0; }
  std::vector<std::pair<std::string, uint64_t>> snapshot() const {
    return {};
  }
  std::vector<std::pair<std::string, uint64_t>>
  snapshot(std::string_view) const {
    return {};
  }
  void resetAll() {}
  std::string summary() const {
    return "(telemetry disabled at build time)\n";
  }
};

class ScopedTimerNs {
public:
  explicit ScopedTimerNs(Counter &) {}
  explicit ScopedTimerNs(std::string_view) {}
  ScopedTimerNs(const ScopedTimerNs &) = delete;
  ScopedTimerNs &operator=(const ScopedTimerNs &) = delete;
};

inline void recordKernelChunk(uint64_t, int64_t, unsigned, bool, uint32_t,
                              uint32_t, double = 0, double = 0) {}
inline RuntimeCounters runtimeCounters() { return {}; }
inline void resetRuntimeCounters() {}
inline std::string summaryReport() {
  return "(telemetry disabled at build time)\n";
}

} // namespace off
#endif // LIMPET_TELEMETRY_ENABLED

} // namespace telemetry
} // namespace limpet

#endif // LIMPET_SUPPORT_TELEMETRY_H
