//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include <utility>

using namespace limpet;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  return std::to_string(Line) + ":" + std::to_string(Col);
}

std::string Diagnostic::str() const {
  std::string Out;
  if (Loc.isValid())
    Out += Loc.str() + ": ";
  switch (Severity) {
  case DiagSeverity::Error:
    Out += "error: ";
    break;
  case DiagSeverity::Warning:
    Out += "warning: ";
    break;
  case DiagSeverity::Note:
    Out += "note: ";
    break;
  }
  Out += Message;
  return Out;
}

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
  ++NumErrors;
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

void DiagnosticEngine::clear() {
  Diags.clear();
  NumErrors = 0;
}
