//===- StringUtils.h - Small string formatting helpers ----------*- C++-*-===//
//
// Helpers shared by the IR printer, benchmark reporters and tests. Kept
// deliberately small; the standard library provides the heavy lifting.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SUPPORT_STRINGUTILS_H
#define LIMPET_SUPPORT_STRINGUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace limpet {

/// Formats a double with enough precision to round-trip (%.17g trimmed).
std::string formatDouble(double Value);

/// Formats with a fixed number of decimals, e.g. formatFixed(1.234, 2) ==
/// "1.23".
std::string formatFixed(double Value, int Decimals);

/// Left-pads \p S with spaces to \p Width characters.
std::string padLeft(std::string_view S, size_t Width);

/// Right-pads \p S with spaces to \p Width characters.
std::string padRight(std::string_view S, size_t Width);

/// Splits \p S on \p Sep, keeping empty fields.
std::vector<std::string> splitString(std::string_view S, char Sep);

/// Strips leading and trailing whitespace.
std::string trim(std::string_view S);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Returns true if \p S ends with \p Suffix.
bool endsWith(std::string_view S, std::string_view Suffix);

} // namespace limpet

#endif // LIMPET_SUPPORT_STRINGUTILS_H
