//===- StringUtils.cpp ----------------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdio>

using namespace limpet;

std::string limpet::formatDouble(double Value) {
  char Buf[64];
  // Moderate integral values read best in plain form ("200", not "2e+02").
  if (Value == (double)(long long)Value && Value > -1e15 && Value < 1e15) {
    std::snprintf(Buf, sizeof(Buf), "%lld", (long long)Value);
    return std::string(Buf);
  }
  std::snprintf(Buf, sizeof(Buf), "%.17g", Value);
  std::string S(Buf);
  // Try shorter representations that still round-trip exactly.
  for (int Prec = 1; Prec < 17; ++Prec) {
    char Short[64];
    std::snprintf(Short, sizeof(Short), "%.*g", Prec, Value);
    double Back = 0;
    std::sscanf(Short, "%lf", &Back);
    if (Back == Value)
      return std::string(Short);
  }
  return S;
}

std::string limpet::formatFixed(double Value, int Decimals) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Decimals, Value);
  return std::string(Buf);
}

std::string limpet::padLeft(std::string_view S, size_t Width) {
  if (S.size() >= Width)
    return std::string(S);
  return std::string(Width - S.size(), ' ') + std::string(S);
}

std::string limpet::padRight(std::string_view S, size_t Width) {
  if (S.size() >= Width)
    return std::string(S);
  return std::string(S) + std::string(Width - S.size(), ' ');
}

std::vector<std::string> limpet::splitString(std::string_view S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.emplace_back(S.substr(Start));
      return Parts;
    }
    Parts.emplace_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string limpet::trim(std::string_view S) {
  size_t B = S.find_first_not_of(" \t\r\n");
  if (B == std::string_view::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r\n");
  return std::string(S.substr(B, E - B + 1));
}

bool limpet::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

bool limpet::endsWith(std::string_view S, std::string_view Suffix) {
  return S.size() >= Suffix.size() &&
         S.substr(S.size() - Suffix.size()) == Suffix;
}
