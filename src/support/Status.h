//===- Status.h - Recoverable error propagation -----------------*- C++-*-===//
//
// A lightweight status/expected pair for runtime-reachable failure paths
// (unknown parameter names, missing couplings, out-of-range cells, ...).
// Library code returns these instead of asserting so that long-running
// simulations and tools can report and recover; the frontend keeps using
// DiagnosticEngine for source-located diagnostics.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SUPPORT_STATUS_H
#define LIMPET_SUPPORT_STATUS_H

#include <optional>
#include <string>
#include <utility>

namespace limpet {

/// Success or an error carrying a human-readable message.
class Status {
public:
  Status() = default;

  static Status success() { return Status(); }
  static Status error(std::string Message) {
    Status S;
    S.Ok = false;
    S.Msg = std::move(Message);
    return S;
  }

  bool isOk() const { return Ok; }
  explicit operator bool() const { return Ok; }
  /// Empty when the status is ok.
  const std::string &message() const { return Msg; }

private:
  bool Ok = true;
  std::string Msg;
};

/// A value of type T or an error Status, in the spirit of llvm::Expected.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Status Error) : Err(std::move(Error)) {
    // A success status carries no value; normalize to a generic error so
    // operator bool stays truthful.
    if (Err.isOk())
      Err = Status::error("internal: Expected constructed from ok status");
  }

  bool hasValue() const { return Value.has_value(); }
  explicit operator bool() const { return hasValue(); }

  const T &operator*() const { return *Value; }
  T &operator*() { return *Value; }
  const T *operator->() const { return &*Value; }

  /// The error status (ok when a value is present).
  const Status &status() const { return Err; }
  /// The value, or \p Default when this holds an error.
  T valueOr(T Default) const { return Value ? *Value : Default; }

private:
  std::optional<T> Value;
  Status Err;
};

} // namespace limpet

#endif // LIMPET_SUPPORT_STATUS_H
