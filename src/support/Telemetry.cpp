//===- Telemetry.cpp ------------------------------------------------------===//

#include "support/Telemetry.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>

using namespace limpet;
using namespace limpet::telemetry;

//===----------------------------------------------------------------------===//
// Mode-independent pieces
//===----------------------------------------------------------------------===//

void RuntimeCounters::merge(const RuntimeCounters &O) {
  KernelNs += O.KernelNs;
  KernelCalls += O.KernelCalls;
  CellSteps += O.CellSteps;
  for (unsigned I = 0; I != 4; ++I)
    CellStepsByWidth[I] += O.CellStepsByWidth[I];
  LutInterps += O.LutInterps;
  FastMathCalls += O.FastMathCalls;
  LibmCalls += O.LibmCalls;
  BytesLoaded += O.BytesLoaded;
  BytesStored += O.BytesStored;
}

std::string RuntimeCounters::str() const {
  if (KernelCalls == 0)
    return "(no kernel activity recorded)\n";
  char Buf[512];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf),
                "kernel: %llu chunk calls, %llu cell-steps, %.3f ms\n"
                "  ns/cell-step = %.2f   cell-steps/s = %.3g\n",
                (unsigned long long)KernelCalls,
                (unsigned long long)CellSteps, double(KernelNs) * 1e-6,
                nsPerCellStep(), cellStepsPerSecond());
  Out += Buf;
  static const unsigned Widths[4] = {1, 2, 4, 8};
  Out += "  cell-steps by vector width:";
  for (unsigned I = 0; I != 4; ++I)
    if (CellStepsByWidth[I]) {
      std::snprintf(Buf, sizeof(Buf), " w%u=%llu", Widths[I],
                    (unsigned long long)CellStepsByWidth[I]);
      Out += Buf;
    }
  Out += '\n';
  std::snprintf(Buf, sizeof(Buf),
                "  lut-interps = %llu   vecmath-calls = %llu   "
                "libm-calls = %llu\n",
                (unsigned long long)LutInterps,
                (unsigned long long)FastMathCalls,
                (unsigned long long)LibmCalls);
  Out += Buf;
  if (BytesLoaded || BytesStored) {
    std::snprintf(Buf, sizeof(Buf),
                  "  modeled bytes: loaded = %llu   stored = %llu\n",
                  (unsigned long long)BytesLoaded,
                  (unsigned long long)BytesStored);
    Out += Buf;
  }
  return Out;
}

uint32_t telemetry::threadId() {
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Id = Next.fetch_add(1, std::memory_order_relaxed);
  return Id;
}

#if LIMPET_TELEMETRY_ENABLED

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

struct Registry::Impl {
  mutable std::mutex Mutex;
  /// Deque keeps Counter addresses stable across registrations.
  std::deque<Counter> Counters;
  std::map<std::string, Counter *, std::less<>> Index;
};

Registry &Registry::instance() {
  static Registry R;
  return R;
}

Registry::Impl &Registry::impl() const {
  static Impl I;
  return I;
}

Counter &Registry::counter(std::string_view Path) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto It = I.Index.find(Path);
  if (It != I.Index.end())
    return *It->second;
  I.Counters.emplace_back(std::string(Path));
  Counter &C = I.Counters.back();
  I.Index.emplace(C.name(), &C);
  return C;
}

uint64_t Registry::value(std::string_view Path) const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  auto It = I.Index.find(Path);
  return It != I.Index.end() ? It->second->get() : 0;
}

std::vector<std::pair<std::string, uint64_t>> Registry::snapshot() const {
  Impl &I = impl();
  std::vector<std::pair<std::string, uint64_t>> Out;
  {
    std::lock_guard<std::mutex> Lock(I.Mutex);
    Out.reserve(I.Index.size());
    for (const auto &[Name, C] : I.Index)
      Out.emplace_back(Name, C->get());
  }
  return Out;
}

std::vector<std::pair<std::string, uint64_t>>
Registry::snapshot(std::string_view Prefix) const {
  Impl &I = impl();
  std::vector<std::pair<std::string, uint64_t>> Out;
  {
    std::lock_guard<std::mutex> Lock(I.Mutex);
    // The index is sorted, so the matching range is contiguous: walk from
    // lower_bound(Prefix) until the prefix stops matching.
    for (auto It = I.Index.lower_bound(Prefix); It != I.Index.end(); ++It) {
      if (It->first.compare(0, Prefix.size(), Prefix) != 0)
        break;
      Out.emplace_back(It->first, It->second->get());
    }
  }
  return Out;
}

void Registry::resetAll() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.Mutex);
  for (Counter &C : I.Counters)
    C.reset();
}

std::string Registry::summary() const {
  auto Snap = snapshot();
  std::string Out;
  // Render the dotted paths as an indented tree: one line per counter,
  // indented by the number of path segments shared with the previous
  // line, with intermediate headers for new branches.
  std::vector<std::string> PrevSegs;
  for (const auto &[Path, Value] : Snap) {
    if (Value == 0)
      continue;
    std::vector<std::string> Segs = splitString(Path, '.');
    size_t Common = 0;
    while (Common < Segs.size() - 1 && Common < PrevSegs.size() &&
           Segs[Common] == PrevSegs[Common])
      ++Common;
    // Print headers for the new intermediate segments.
    for (size_t S = Common; S + 1 < Segs.size(); ++S) {
      Out += std::string(S * 2, ' ');
      Out += Segs[S];
      Out += ":\n";
    }
    Out += std::string((Segs.size() - 1) * 2, ' ');
    Out += padRight(Segs.back(), std::max<size_t>(Segs.back().size(), 18));
    Out += " = ";
    Out += std::to_string(Value);
    if (endsWith(Path, ".ns")) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "  (%.3f ms)", double(Value) * 1e-6);
      Out += Buf;
    }
    Out += '\n';
    PrevSegs = std::move(Segs);
  }
  if (Out.empty())
    Out = "(no counters recorded)\n";
  return Out;
}

//===----------------------------------------------------------------------===//
// Runtime shards
//===----------------------------------------------------------------------===//

namespace {

/// One thread's private slice of the runtime counters. Only the owning
/// thread writes it; merges happen while the workers sit at the ThreadPool
/// barrier, whose mutex/condvar handoff orders the reads after the writes.
struct Shard {
  RuntimeCounters Data;
};

struct ShardRegistry {
  std::mutex Mutex;
  /// Owns every shard; the deque keeps addresses stable as threads
  /// register, and a shard outlives its thread (dead workers' counts
  /// still merge). Freed only when the registry static is destroyed.
  std::deque<Shard> Shards;

  static ShardRegistry &instance() {
    static ShardRegistry R;
    return R;
  }

  Shard &local() {
    thread_local Shard *S = [this] {
      std::lock_guard<std::mutex> Lock(Mutex);
      return &Shards.emplace_back();
    }();
    return *S;
  }
};

} // namespace

void telemetry::recordKernelChunk(uint64_t Ns, int64_t Cells, unsigned Width,
                                  bool FastMath, uint32_t LutOpsPerCell,
                                  uint32_t MathOpsPerCell,
                                  double LoadBytesPerCell,
                                  double StoreBytesPerCell) {
  if (Cells <= 0)
    return;
  RuntimeCounters &C = ShardRegistry::instance().local().Data;
  uint64_t N = uint64_t(Cells);
  C.KernelNs += Ns;
  C.KernelCalls += 1;
  C.CellSteps += N;
  C.CellStepsByWidth[RuntimeCounters::widthSlot(Width)] += N;
  C.LutInterps += uint64_t(LutOpsPerCell) * N;
  if (FastMath)
    C.FastMathCalls += uint64_t(MathOpsPerCell) * N;
  else
    C.LibmCalls += uint64_t(MathOpsPerCell) * N;
  if (LoadBytesPerCell > 0)
    C.BytesLoaded += uint64_t(LoadBytesPerCell * double(N) + 0.5);
  if (StoreBytesPerCell > 0)
    C.BytesStored += uint64_t(StoreBytesPerCell * double(N) + 0.5);
}

RuntimeCounters telemetry::runtimeCounters() {
  ShardRegistry &R = ShardRegistry::instance();
  RuntimeCounters Sum;
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (const Shard &S : R.Shards)
    Sum.merge(S.Data);
  return Sum;
}

void telemetry::resetRuntimeCounters() {
  ShardRegistry &R = ShardRegistry::instance();
  std::lock_guard<std::mutex> Lock(R.Mutex);
  for (Shard &S : R.Shards)
    S.Data = RuntimeCounters();
}

std::string telemetry::summaryReport() {
  std::string Out = "--- runtime counters ---\n";
  Out += runtimeCounters().str();
  Out += "--- counter registry ---\n";
  Out += Registry::instance().summary();
  return Out;
}

#endif // LIMPET_TELEMETRY_ENABLED
