//===- Trace.cpp ----------------------------------------------------------===//

#include "support/Trace.h"

#if LIMPET_TELEMETRY_ENABLED

#include <atomic>
#include <cstdio>
#include <fstream>

using namespace limpet;
using namespace limpet::telemetry;

namespace {
std::atomic<TraceRecorder *> ActiveRecorder{nullptr};

/// Escapes a string for a JSON string literal (control characters, quote,
/// backslash).
std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}
} // namespace

TraceRecorder::TraceRecorder() : Epoch(Clock::now()) {}

TraceRecorder *TraceRecorder::active() {
  return ActiveRecorder.load(std::memory_order_acquire);
}

void TraceRecorder::setActive(TraceRecorder *R) {
  ActiveRecorder.store(R, std::memory_order_release);
}

double TraceRecorder::toUs(Clock::time_point T) const {
  return std::chrono::duration<double, std::micro>(T - Epoch).count();
}

void TraceRecorder::push(Event E) {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Events.size() >= MaxEvents) {
    ++Dropped;
    return;
  }
  Events.push_back(std::move(E));
}

void TraceRecorder::complete(std::string_view Name, std::string_view Cat,
                             Clock::time_point T0, Clock::time_point T1) {
  push({std::string(Name), std::string(Cat), 'X', toUs(T0),
        std::chrono::duration<double, std::micro>(T1 - T0).count(),
        threadId(), 0.0});
}

void TraceRecorder::instant(std::string_view Name, std::string_view Cat) {
  push({std::string(Name), std::string(Cat), 'i', toUs(Clock::now()), 0.0,
        threadId(), 0.0});
}

void TraceRecorder::counterSample(std::string_view Name, double Value) {
  push({std::string(Name), "counter", 'C', toUs(Clock::now()), 0.0,
        threadId(), Value});
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Events.size();
}

size_t TraceRecorder::droppedCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Dropped;
}

std::string TraceRecorder::json() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out = "{\"traceEvents\":[\n";
  char Buf[160];
  // Process-name metadata event, so trace viewers show a friendly label.
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"limpet\"}}";
  for (const Event &E : Events) {
    Out += ",\n{\"name\":\"";
    Out += jsonEscape(E.Name);
    Out += "\",\"cat\":\"";
    Out += jsonEscape(E.Cat);
    Out += "\",\"ph\":\"";
    Out += E.Ph;
    Out += '"';
    std::snprintf(Buf, sizeof(Buf), ",\"ts\":%.3f,\"pid\":1,\"tid\":%u",
                  E.TsUs, E.Tid);
    Out += Buf;
    if (E.Ph == 'X') {
      std::snprintf(Buf, sizeof(Buf), ",\"dur\":%.3f", E.DurUs);
      Out += Buf;
    }
    if (E.Ph == 'C') {
      std::snprintf(Buf, sizeof(Buf), ",\"args\":{\"value\":%.6g}", E.Value);
      Out += Buf;
    }
    if (E.Ph == 'i')
      Out += ",\"s\":\"t\"";
    Out += '}';
  }
  Out += "\n],\"displayTimeUnit\":\"ms\"";
  if (Dropped) {
    std::snprintf(Buf, sizeof(Buf),
                  ",\"metadata\":{\"droppedEvents\":%zu}", Dropped);
    Out += Buf;
  }
  Out += "}\n";
  return Out;
}

bool TraceRecorder::writeFile(const std::string &Path,
                              std::string *Error) const {
  std::ofstream Out(Path);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << json();
  Out.close();
  if (!Out) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

#endif // LIMPET_TELEMETRY_ENABLED
