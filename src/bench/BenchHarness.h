//===- BenchHarness.h - Figure/table regeneration harness -------*- C++-*-===//
//
// Shared machinery for the per-figure benchmark binaries (bench/): model
// compilation for each engine configuration, the paper's timing protocol
// (several runs, extrema dropped, rest averaged — Sec. 4), environment
// scaling knobs, geometric means and aligned table rendering.
//
// Scale note: the paper's protocol is 100,000 steps x 8,192 cells per
// model (hours per figure). The benches default to a scaled protocol and
// honour LIMPET_BENCH_CELLS / LIMPET_BENCH_STEPS / LIMPET_BENCH_REPEATS /
// LIMPET_BENCH_MODELS to approach the paper's scale when desired.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_BENCH_BENCHHARNESS_H
#define LIMPET_BENCH_BENCHHARNESS_H

#include "exec/CompiledModel.h"
#include "models/Registry.h"
#include "sim/Simulator.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace limpet {
namespace bench {

/// Scaled benchmark protocol (paper: Cells=8192, Steps=100000, Repeats=5
/// with the two extrema dropped).
struct BenchProtocol {
  int64_t NumCells = 4096;
  int64_t NumSteps = 100;
  int Repeats = 3;
  /// Drop the fastest and slowest run when Repeats >= 3 (paper protocol).
  bool DropExtrema = true;
  /// Run with the Simulator guard rails (health scan + fault-tolerant
  /// stepping) enabled; LIMPET_BENCH_GUARD=1 turns it on to measure the
  /// production-mode overhead.
  bool GuardRails = false;

  /// Reads LIMPET_BENCH_* environment overrides.
  static BenchProtocol fromEnv(int64_t DefaultCells = 4096,
                               int64_t DefaultSteps = 100,
                               int DefaultRepeats = 3);
};

/// Returns the LIMPET_BENCH_MODELS filter (comma-separated names), or all
/// 43 models when unset.
std::vector<const models::ModelEntry *> selectedModels();

/// A compiled model cache keyed by (model, config) so sweeps do not
/// recompile.
class ModelCache {
public:
  const exec::CompiledModel &get(const models::ModelEntry &Entry,
                                 const exec::EngineConfig &Cfg);

private:
  std::map<std::string, std::unique_ptr<exec::CompiledModel>> Cache;
};

/// Times one simulation under the paper's protocol: returns seconds
/// (averaged after dropping extrema). When \p Report is non-null the
/// guard-rail run reports of every repeat are merged into it (faults,
/// retries, scan overhead).
double timeSimulation(const exec::CompiledModel &Model,
                      const BenchProtocol &Protocol, unsigned Threads,
                      sim::RunReport *Report = nullptr);

/// Geometric mean (ignores non-positive entries).
double geomean(const std::vector<double> &Values);

/// Renders an aligned table: first row is the header.
std::string renderTable(const std::vector<std::vector<std::string>> &Rows);

/// Prints a standard bench banner with the protocol in use.
void printBanner(const std::string &Title, const std::string &PaperRef,
                 const BenchProtocol &Protocol);

/// "S" -> "small", 'M' -> "medium", 'L' -> "large".
std::string className(char SizeClass);

} // namespace bench
} // namespace limpet

#endif // LIMPET_BENCH_BENCHHARNESS_H
