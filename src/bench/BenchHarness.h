//===- BenchHarness.h - Figure/table regeneration harness -------*- C++-*-===//
//
// Shared machinery for the per-figure benchmark binaries (bench/): model
// compilation for each engine configuration, the paper's timing protocol
// (several runs, extrema dropped, rest averaged — Sec. 4), environment
// scaling knobs, geometric means and aligned table rendering.
//
// Scale note: the paper's protocol is 100,000 steps x 8,192 cells per
// model (hours per figure). The benches default to a scaled protocol and
// honour LIMPET_BENCH_CELLS / LIMPET_BENCH_STEPS / LIMPET_BENCH_REPEATS /
// LIMPET_BENCH_MODELS to approach the paper's scale when desired.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_BENCH_BENCHHARNESS_H
#define LIMPET_BENCH_BENCHHARNESS_H

#include "exec/CompiledModel.h"
#include "models/Registry.h"
#include "sim/Simulator.h"

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace limpet {
namespace bench {

/// Scaled benchmark protocol (paper: Cells=8192, Steps=100000, Repeats=5
/// with the two extrema dropped).
struct BenchProtocol {
  int64_t NumCells = 4096;
  int64_t NumSteps = 100;
  int Repeats = 3;
  /// Drop the fastest and slowest run when Repeats >= 3 (paper protocol).
  bool DropExtrema = true;
  /// Run with the Simulator guard rails (health scan + fault-tolerant
  /// stepping) enabled; LIMPET_BENCH_GUARD=1 turns it on to measure the
  /// production-mode overhead.
  bool GuardRails = false;
  /// Durable-checkpoint protocol knobs: when CheckpointDir is non-empty
  /// every timed run writes rotated checkpoints (cadence CheckpointEvery
  /// steps) into a per-(model, config) subdirectory, so the NDJSON
  /// records quantify the durability overhead. LIMPET_BENCH_CHECKPOINT_DIR
  /// / LIMPET_BENCH_CHECKPOINT_EVERY set them.
  std::string CheckpointDir;
  int64_t CheckpointEvery = 0;

  /// Reads LIMPET_BENCH_* environment overrides.
  static BenchProtocol fromEnv(int64_t DefaultCells = 4096,
                               int64_t DefaultSteps = 100,
                               int DefaultRepeats = 3);
};

/// Returns the LIMPET_BENCH_MODELS filter (comma-separated names), or all
/// 43 models when unset.
std::vector<const models::ModelEntry *> selectedModels();

/// A compiled model cache keyed by (model, config) so sweeps do not
/// recompile. Compiles go through the CompilerDriver, so they also hit
/// the process-wide content-addressed compile cache (and its disk tier
/// when LIMPET_CACHE_DIR is set: warm bench runs skip codegen entirely).
class ModelCache {
public:
  /// Compiles (or returns the cached) model for (entry, config, tier).
  /// Asking for the Native tier uses EngineTier::Auto semantics under the
  /// hood — the model silently runs on the VM when the box lacks a
  /// toolchain; callers that must distinguish check usingNativeTier().
  const exec::CompiledModel &
  get(const models::ModelEntry &Entry, const exec::EngineConfig &Cfg,
      exec::EngineTier Tier = exec::EngineTier::VM);

  /// Compiles every (entry, config) pair up front, each configuration's
  /// suite fanned out concurrently over the global thread pool; later
  /// get() calls are pure lookups. Aborts on a compile failure, like
  /// get().
  void prewarm(const std::vector<const models::ModelEntry *> &Entries,
               const std::vector<exec::EngineConfig> &Configs,
               exec::EngineTier Tier = exec::EngineTier::VM);

  /// With \p On, auto-width compiles (EngineConfig::autoTuned()) with no
  /// persisted tuning record run the autotuner instead of the capability
  /// heuristic; concrete-width compiles are unaffected.
  void setAutotune(bool On) { Autotune = On; }

  size_t size() const { return Cache.size(); }

private:
  std::map<std::string, std::unique_ptr<exec::CompiledModel>> Cache;
  bool Autotune = false;
};

/// Times one simulation under the paper's protocol: returns seconds
/// (averaged after dropping extrema). When \p Report is non-null the
/// guard-rail run reports of every repeat are merged into it (faults,
/// retries, scan overhead). Every call also appends one NDJSON record to
/// $LIMPET_BENCH_STATS (see recordBenchStat); \p ConfigLabel overrides
/// the record's config field — benches timing an auto-tuned model pass
/// "auto" so the row key stays stable across machines whose tuners
/// resolve different concrete points.
double timeSimulation(const exec::CompiledModel &Model,
                      const BenchProtocol &Protocol, unsigned Threads,
                      sim::RunReport *Report = nullptr,
                      const std::string &ConfigLabel = "");

/// Replaces the bench name stamped into NDJSON records (normally set by
/// printBanner) and returns the previous one, so nested measurement
/// phases — the width autotuner runs inside compiles — label their rows
/// "autotune" without clobbering the enclosing bench's name.
std::string setBenchName(std::string Name);

/// One machine-readable benchmark timing, exported as a line of NDJSON.
struct BenchStat {
  std::string Bench;  ///< benchmark/figure name (printBanner title)
  std::string Model;  ///< model name
  std::string Config; ///< engine configuration or variant label
  unsigned Threads = 1;
  int64_t Cells = 0;
  int64_t Steps = 0;
  int Repeats = 1;
  double Seconds = 0; ///< averaged wall time of one run
  // Derived from the telemetry runtime-counter deltas around the timed
  // region; zero in telemetry-off builds.
  double NsPerCellStep = 0;
  double CellStepsPerSec = 0;
  uint64_t LutInterps = 0;
  uint64_t FastMathCalls = 0;
  uint64_t LibmCalls = 0;
  /// Modeled memory traffic of the timed region (roofline numerator),
  /// from the per-chunk static byte counts of each kernel's bytecode.
  uint64_t BytesLoaded = 0;
  uint64_t BytesStored = 0;
  /// Durable-checkpoint overhead of the timed region (deltas of the
  /// sim.checkpoint.* counters); all zero unless the protocol enables
  /// checkpointing via LIMPET_BENCH_CHECKPOINT_DIR.
  uint64_t CheckpointCount = 0;
  uint64_t CheckpointBytes = 0;
  uint64_t CheckpointNs = 0;

  /// The record as one line of JSON (no trailing newline).
  std::string json() const;
};

/// Appends \p S to the NDJSON file named by $LIMPET_BENCH_STATS. Returns
/// false when the variable is unset or the file cannot be appended to.
bool recordBenchStat(const BenchStat &S);

/// Geometric mean (ignores non-positive entries).
double geomean(const std::vector<double> &Values);

/// Renders an aligned table: first row is the header.
std::string renderTable(const std::vector<std::vector<std::string>> &Rows);

/// Prints a standard bench banner with the protocol in use.
void printBanner(const std::string &Title, const std::string &PaperRef,
                 const BenchProtocol &Protocol);

/// "S" -> "small", 'M' -> "medium", 'L' -> "large".
std::string className(char SizeClass);

} // namespace bench
} // namespace limpet

#endif // LIMPET_BENCH_BENCHHARNESS_H
