//===- BenchHarness.cpp ---------------------------------------------------===//

#include "bench/BenchHarness.h"

#include "compiler/CompilerDriver.h"
#include "easyml/Sema.h"
#include "support/Casting.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::exec;

/// The banner title of the currently running bench; stamps the "bench"
/// field of NDJSON records so one stats file can hold several figures.
static std::string CurrentBenchName = "bench";

static int64_t envInt(const char *Name, int64_t Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  return std::atoll(V);
}

BenchProtocol BenchProtocol::fromEnv(int64_t DefaultCells,
                                     int64_t DefaultSteps,
                                     int DefaultRepeats) {
  BenchProtocol P;
  P.NumCells = envInt("LIMPET_BENCH_CELLS", DefaultCells);
  P.NumSteps = envInt("LIMPET_BENCH_STEPS", DefaultSteps);
  P.Repeats = int(envInt("LIMPET_BENCH_REPEATS", DefaultRepeats));
  P.GuardRails = envInt("LIMPET_BENCH_GUARD", 0) != 0;
  if (const char *Dir = std::getenv("LIMPET_BENCH_CHECKPOINT_DIR");
      Dir && *Dir)
    P.CheckpointDir = Dir;
  P.CheckpointEvery = envInt("LIMPET_BENCH_CHECKPOINT_EVERY", 0);
  return P;
}

std::vector<const models::ModelEntry *> bench::selectedModels() {
  std::vector<const models::ModelEntry *> Selected;
  const char *Filter = std::getenv("LIMPET_BENCH_MODELS");
  if (!Filter || !*Filter) {
    for (const models::ModelEntry &M : models::modelRegistry())
      Selected.push_back(&M);
    return Selected;
  }
  for (const std::string &Name : splitString(Filter, ',')) {
    const models::ModelEntry *M = models::findModel(Name);
    if (M)
      Selected.push_back(M);
    else
      std::fprintf(stderr, "warning: unknown model '%s' in filter\n",
                   Name.c_str());
  }
  return Selected;
}

/// The benches always ask for native with Auto fallback semantics: the
/// figure still runs on a compiler-less box, and timeSimulation labels
/// the NDJSON rows by the tier the model actually dispatches to.
static EngineTier effectiveTier(EngineTier Tier) {
  return Tier == EngineTier::VM ? EngineTier::VM : EngineTier::Auto;
}

const CompiledModel &ModelCache::get(const models::ModelEntry &Entry,
                                     const EngineConfig &Cfg,
                                     EngineTier Tier) {
  std::string Key = Entry.Name + "|" + engineConfigName(Cfg) + "|" +
                    std::string(engineTierName(effectiveTier(Tier)));
  auto It = Cache.find(Key);
  if (It != Cache.end())
    return *It->second;

  compiler::DriverOptions Opts;
  Opts.Config = Cfg;
  Opts.Tier = effectiveTier(Tier);
  Opts.Autotune = Autotune;
  compiler::CompilerDriver Driver(std::move(Opts));
  compiler::CompileResult R = Driver.compileEntry(Entry);
  if (!R) {
    std::fprintf(stderr, "compile failed for %s: %s\n", Entry.Name.c_str(),
                 R.Err.message().c_str());
    std::abort();
  }
  auto Owned = std::make_unique<CompiledModel>(std::move(*R.Model));
  const CompiledModel &Ref = *Owned;
  Cache.emplace(std::move(Key), std::move(Owned));
  return Ref;
}

void ModelCache::prewarm(
    const std::vector<const models::ModelEntry *> &Entries,
    const std::vector<EngineConfig> &Configs, EngineTier Tier) {
  for (const EngineConfig &Cfg : Configs) {
    compiler::DriverOptions Opts;
    Opts.Config = Cfg;
    Opts.Tier = effectiveTier(Tier);
    Opts.Autotune = Autotune;
    compiler::CompilerDriver Driver(std::move(Opts));
    std::vector<compiler::CompileResult> Results =
        Driver.compileSuite(Entries);
    for (size_t I = 0; I != Results.size(); ++I) {
      compiler::CompileResult &R = Results[I];
      if (!R) {
        std::fprintf(stderr, "compile failed for %s: %s\n",
                     R.ModelName.c_str(), R.Err.message().c_str());
        std::abort();
      }
      std::string Key = Entries[I]->Name + "|" + engineConfigName(Cfg) +
                        "|" +
                        std::string(engineTierName(effectiveTier(Tier)));
      Cache.emplace(std::move(Key),
                    std::make_unique<CompiledModel>(std::move(*R.Model)));
    }
  }
}

std::string bench::setBenchName(std::string Name) {
  std::string Prev = std::move(CurrentBenchName);
  CurrentBenchName = std::move(Name);
  return Prev;
}

double bench::timeSimulation(const CompiledModel &Model,
                             const BenchProtocol &Protocol, unsigned Threads,
                             sim::RunReport *Report,
                             const std::string &ConfigLabel) {
  telemetry::RuntimeCounters Before = telemetry::runtimeCounters();
  telemetry::Registry &Reg = telemetry::Registry::instance();
  uint64_t CkptCount0 = Reg.value("sim.checkpoint.count");
  uint64_t CkptBytes0 = Reg.value("sim.checkpoint.bytes");
  uint64_t CkptNs0 = Reg.value("sim.checkpoint.ns");
  std::vector<double> Times;
  for (int Run = 0; Run != std::max(Protocol.Repeats, 1); ++Run) {
    sim::SimOptions Opts;
    Opts.NumCells = Protocol.NumCells;
    Opts.NumSteps = Protocol.NumSteps;
    Opts.NumThreads = Threads;
    Opts.StimPeriod = 100.0;
    Opts.Guard.Enabled = Protocol.GuardRails;
    if (!Protocol.CheckpointDir.empty()) {
      // Per-(model, config) subdirectory: concurrent figures and sweep
      // points must not rotate each other's checkpoint files away.
      // Config names use '/' as a separator; flatten to one level.
      std::string Sub = Model.info().Name + "-" +
                        engineConfigName(Model.config());
      std::replace(Sub.begin(), Sub.end(), '/', '-');
      Opts.Checkpoint.Dir = Protocol.CheckpointDir + "/" + Sub;
      Opts.Checkpoint.EveryN = Protocol.CheckpointEvery;
    }
    sim::Simulator S(Model, Opts);
    auto T0 = std::chrono::steady_clock::now();
    S.run();
    auto T1 = std::chrono::steady_clock::now();
    Times.push_back(std::chrono::duration<double>(T1 - T0).count());
    if (Report)
      Report->merge(S.report());
  }
  std::sort(Times.begin(), Times.end());
  // Paper protocol: eliminate the two extrema, average the rest.
  if (Protocol.DropExtrema && Times.size() >= 3) {
    Times.erase(Times.begin());
    Times.pop_back();
  }
  double Sum = 0;
  for (double T : Times)
    Sum += T;
  double Seconds = Sum / double(Times.size());

  BenchStat S;
  S.Bench = CurrentBenchName;
  S.Model = Model.info().Name;
  // Label rows by the tier that actually ran: a native-tier request that
  // fell back to the VM must not produce a fake "+native" row.
  S.Config = !ConfigLabel.empty()
                 ? ConfigLabel
                 : engineConfigName(Model.config()) +
                       (Model.usingNativeTier() ? "+native" : "");
  S.Threads = Threads;
  S.Cells = Protocol.NumCells;
  S.Steps = Protocol.NumSteps;
  S.Repeats = std::max(Protocol.Repeats, 1);
  S.Seconds = Seconds;
  telemetry::RuntimeCounters After = telemetry::runtimeCounters();
  uint64_t DNs = After.KernelNs - Before.KernelNs;
  uint64_t DCells = After.CellSteps - Before.CellSteps;
  S.NsPerCellStep = DCells ? double(DNs) / double(DCells) : 0.0;
  S.CellStepsPerSec = DNs ? double(DCells) * 1e9 / double(DNs) : 0.0;
  S.LutInterps = After.LutInterps - Before.LutInterps;
  S.FastMathCalls = After.FastMathCalls - Before.FastMathCalls;
  S.LibmCalls = After.LibmCalls - Before.LibmCalls;
  S.BytesLoaded = After.BytesLoaded - Before.BytesLoaded;
  S.BytesStored = After.BytesStored - Before.BytesStored;
  S.CheckpointCount = Reg.value("sim.checkpoint.count") - CkptCount0;
  S.CheckpointBytes = Reg.value("sim.checkpoint.bytes") - CkptBytes0;
  S.CheckpointNs = Reg.value("sim.checkpoint.ns") - CkptNs0;
  recordBenchStat(S);
  return Seconds;
}

/// Minimal JSON string escaping for model/config names.
static std::string jsonQuoted(const std::string &S) {
  std::string Out = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\') {
      Out += '\\';
      Out += C;
    } else if ((unsigned char)C < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof Buf, "\\u%04x", C);
      Out += Buf;
    } else {
      Out += C;
    }
  }
  Out += '"';
  return Out;
}

std::string BenchStat::json() const {
  char Buf[256];
  std::string Out = "{\"bench\":" + jsonQuoted(Bench);
  Out += ",\"model\":" + jsonQuoted(Model);
  Out += ",\"config\":" + jsonQuoted(Config);
  std::snprintf(Buf, sizeof Buf,
                ",\"threads\":%u,\"cells\":%lld,\"steps\":%lld,"
                "\"repeats\":%d,\"seconds\":%.9g",
                Threads, (long long)Cells, (long long)Steps, Repeats,
                Seconds);
  Out += Buf;
  std::snprintf(Buf, sizeof Buf,
                ",\"ns_per_cell_step\":%.6g,\"cell_steps_per_sec\":%.6g,"
                "\"lut_interps\":%llu,\"fastmath_calls\":%llu,"
                "\"libm_calls\":%llu,\"bytes_loaded\":%llu,"
                "\"bytes_stored\":%llu",
                NsPerCellStep, CellStepsPerSec,
                (unsigned long long)LutInterps,
                (unsigned long long)FastMathCalls,
                (unsigned long long)LibmCalls,
                (unsigned long long)BytesLoaded,
                (unsigned long long)BytesStored);
  Out += Buf;
  std::snprintf(Buf, sizeof Buf,
                ",\"checkpoint_count\":%llu,\"checkpoint_bytes\":%llu,"
                "\"checkpoint_ns\":%llu}",
                (unsigned long long)CheckpointCount,
                (unsigned long long)CheckpointBytes,
                (unsigned long long)CheckpointNs);
  Out += Buf;
  return Out;
}

bool bench::recordBenchStat(const BenchStat &S) {
  const char *Path = std::getenv("LIMPET_BENCH_STATS");
  if (!Path || !*Path)
    return false;
  std::FILE *F = std::fopen(Path, "a");
  if (!F) {
    std::fprintf(stderr, "warning: cannot append to LIMPET_BENCH_STATS=%s\n",
                 Path);
    return false;
  }
  std::string Line = S.json();
  Line += '\n';
  std::fputs(Line.c_str(), F);
  std::fclose(F);
  return true;
}

double bench::geomean(const std::vector<double> &Values) {
  double LogSum = 0;
  size_t N = 0;
  for (double V : Values) {
    if (V <= 0)
      continue;
    LogSum += std::log(V);
    ++N;
  }
  return N ? std::exp(LogSum / double(N)) : 0.0;
}

std::string bench::renderTable(
    const std::vector<std::vector<std::string>> &Rows) {
  if (Rows.empty())
    return "";
  std::vector<size_t> Widths;
  for (const auto &Row : Rows) {
    if (Widths.size() < Row.size())
      Widths.resize(Row.size(), 0);
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());
  }
  std::string Out;
  for (size_t R = 0; R != Rows.size(); ++R) {
    for (size_t C = 0; C != Rows[R].size(); ++C) {
      Out += C == 0 ? padRight(Rows[R][C], Widths[C])
                    : padLeft(Rows[R][C], Widths[C]);
      if (C + 1 != Rows[R].size())
        Out += "  ";
    }
    Out += '\n';
    if (R == 0) {
      size_t Total = 0;
      for (size_t C = 0; C != Widths.size(); ++C)
        Total += Widths[C] + (C + 1 != Widths.size() ? 2 : 0);
      Out += std::string(Total, '-');
      Out += '\n';
    }
  }
  return Out;
}

void bench::printBanner(const std::string &Title,
                        const std::string &PaperRef,
                        const BenchProtocol &Protocol) {
  CurrentBenchName = Title;
  std::printf("==================================================================\n");
  std::printf("%s\n", Title.c_str());
  std::printf("Reproduces: %s\n", PaperRef.c_str());
  std::printf("Protocol: %lld cells, %lld steps, %d repeats "
              "(paper: 8192 cells, 100000 steps, 5 repeats)\n",
              (long long)Protocol.NumCells, (long long)Protocol.NumSteps,
              Protocol.Repeats);
  std::printf("Scale with LIMPET_BENCH_CELLS / LIMPET_BENCH_STEPS / "
              "LIMPET_BENCH_REPEATS / LIMPET_BENCH_MODELS.\n");
  if (Protocol.GuardRails)
    std::printf("Guard rails: ON (health scan + fault-tolerant stepping, "
                "LIMPET_BENCH_GUARD=1)\n");
  if (!Protocol.CheckpointDir.empty())
    std::printf("Durable checkpoints: ON (dir %s, every %lld steps; "
                "overhead exported as checkpoint_* NDJSON fields)\n",
                Protocol.CheckpointDir.c_str(),
                (long long)Protocol.CheckpointEvery);
  std::printf("==================================================================\n");
}

std::string bench::className(char SizeClass) {
  switch (SizeClass) {
  case 'S':
    return "small";
  case 'M':
    return "medium";
  case 'L':
    return "large";
  default:
    return "?";
  }
}
