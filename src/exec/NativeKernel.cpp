//===- NativeKernel.cpp ---------------------------------------------------===//

#include "exec/NativeKernel.h"

#include "support/Telemetry.h"
#include "support/Trace.h"

#include <dlfcn.h>

#include <vector>

using namespace limpet;
using namespace limpet::exec;

// Under AddressSanitizer the handle is deliberately leaked: unloading the
// object would strip the symbol information ASan needs to symbolize any
// report that points into kernel code, and LSan treats still-reachable
// dlopen handles as live anyway. Everywhere else the object is unloaded
// when the last CompiledModel sharing it goes away.
#if defined(__SANITIZE_ADDRESS__)
#define LIMPET_NATIVE_SKIP_DLCLOSE 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LIMPET_NATIVE_SKIP_DLCLOSE 1
#endif
#endif
#ifndef LIMPET_NATIVE_SKIP_DLCLOSE
#define LIMPET_NATIVE_SKIP_DLCLOSE 0
#endif

std::string_view limpet::exec::engineTierName(EngineTier T) {
  switch (T) {
  case EngineTier::VM:
    return "vm";
  case EngineTier::Native:
    return "native";
  case EngineTier::Auto:
    return "auto";
  }
  return "vm";
}

std::optional<EngineTier>
limpet::exec::engineTierFromName(std::string_view Name) {
  if (Name == "vm")
    return EngineTier::VM;
  if (Name == "native")
    return EngineTier::Native;
  if (Name == "auto")
    return EngineTier::Auto;
  return std::nullopt;
}

Expected<std::shared_ptr<NativeKernel>>
NativeKernel::load(const std::string &SoPath, unsigned Width, bool FastMath,
                   std::string Name) {
  // RTLD_LOCAL keeps kernel-internal symbols (embedded VecMath copies,
  // helpers) from ever shadowing the host's.
  void *Handle = ::dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *E = ::dlerror();
    return Status::error("native: dlopen failed: " +
                         std::string(E ? E : "unknown error"));
  }
  auto Fail = [&](std::string Msg) -> Expected<std::shared_ptr<NativeKernel>> {
    if (!LIMPET_NATIVE_SKIP_DLCLOSE)
      ::dlclose(Handle);
    return Status::error(std::move(Msg));
  };
  using AbiFn = int32_t (*)();
  auto Abi =
      reinterpret_cast<AbiFn>(::dlsym(Handle, "limpet_kernel_abi_version"));
  if (!Abi)
    return Fail("native: missing limpet_kernel_abi_version in " + SoPath);
  if (int32_t Got = Abi(); Got != kNativeKernelAbiVersion)
    return Fail("native: kernel ABI v" + std::to_string(Got) +
                " does not match host ABI v" +
                std::to_string(kNativeKernelAbiVersion));
  auto Fn = reinterpret_cast<StepFn>(::dlsym(Handle, "limpet_kernel_step"));
  if (!Fn)
    return Fail("native: missing limpet_kernel_step in " + SoPath);
  return std::shared_ptr<NativeKernel>(
      new NativeKernel(Handle, Fn, Width, FastMath, std::move(Name)));
}

bool NativeKernel::unloadsOnRelease() { return !LIMPET_NATIVE_SKIP_DLCLOSE; }

NativeKernel::~NativeKernel() {
  if (Handle && !LIMPET_NATIVE_SKIP_DLCLOSE)
    ::dlclose(Handle);
}

void NativeKernel::step(const BcProgram &P, const KernelArgs &Args) const {
  if (Args.End <= Args.Start)
    return;

  NativeKernelArgs A;
  A.State = Args.State;
  A.Exts = Args.Exts.empty() ? nullptr : Args.Exts.data();
  A.Params = Args.Params;
  A.Start = Args.Start;
  A.End = Args.End;
  A.NumCells = Args.NumCells;
  A.Dt = Args.Dt;
  A.T = Args.T;

  // Flatten the lut set into the C-ABI descriptor array. Table counts are
  // small (a handful per model); the common case fits on the stack.
  NativeLutDesc Small[8];
  std::vector<NativeLutDesc> Big;
  size_t NumLuts = Args.Luts ? Args.Luts->Tables.size() : 0;
  NativeLutDesc *Descs = Small;
  if (NumLuts > 8) {
    Big.resize(NumLuts);
    Descs = Big.data();
  }
  for (size_t I = 0; I != NumLuts; ++I) {
    const runtime::LutTable &T = Args.Luts->Tables[I];
    Descs[I] = {T.data(),          int64_t(T.rows()), int64_t(T.cols()),
                T.coordLo(),       T.coordInvStep(),  T.coordMaxPos(),
                T.coordMaxIdx()};
  }
  A.Luts = NumLuts ? Descs : nullptr;

#if LIMPET_TELEMETRY_ENABLED
  // Same chunk accounting as Backend::step, so native runs land in the
  // roofline counters and traces under the width/flavour they replace.
  auto T0 = telemetry::Clock::now();
  Fn(&A);
  uint64_t Ns = telemetry::nanosecondsSince(T0);
  telemetry::recordKernelChunk(Ns, Args.End - Args.Start, Width, Fast,
                               P.LutOpsPerCell, P.MathOpsPerCell,
                               P.Counts.LoadBytesPerCell,
                               P.Counts.StoreBytesPerCell);
  if (telemetry::TraceRecorder *R = telemetry::TraceRecorder::active())
    R->complete("kernel-chunk", "native", T0,
                T0 + std::chrono::nanoseconds(Ns));
#else
  Fn(&A);
#endif
}
