//===- Bytecode.h - Register bytecode for compute kernels -------*- C++-*-===//
//
// The execution format of compiled kernels. IR kernels are linearized into
// a register program: a prologue executed once per kernel invocation
// (constants, parameter loads, hoisted invariants) and a straight-line
// body executed per cell (scalar engine) or per W-cell block (vector
// engine). Registers hold doubles; boolean masks are 0.0/1.0 and LUT row
// indices are stored as exact small doubles.
//
// This substitutes for the paper's clang/LLVM native code generation: the
// relative cost structure (per-op dispatch amortized over W lanes,
// layout-dependent memory access, vectorized math) mirrors the native
// story while remaining portable.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EXEC_BYTECODE_H
#define LIMPET_EXEC_BYTECODE_H

#include "codegen/KernelSpec.h"

#include <cstdint>
#include <string>
#include <vector>

namespace limpet {
namespace exec {

enum class BcOp : uint8_t {
  // Data movement.
  ConstF,     ///< dst = Imm
  Copy,       ///< dst = A
  LoadState,  ///< dst = state[cell, sv=Aux] (layout-aware)
  StoreState, ///< state[cell, sv=Aux] = A
  LoadExt,    ///< dst = ext[Aux][cell]
  StoreExt,   ///< ext[Aux][cell] = A
  LoadParam,  ///< dst = params[Aux]
  // Arithmetic.
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Neg,
  Min,
  Max,
  // Comparisons (produce 0.0 / 1.0).
  CmpLT,
  CmpLE,
  CmpGT,
  CmpGE,
  CmpEQ,
  CmpNE,
  // Mask logic over 0/1 doubles.
  And,
  Or,
  Xor,
  Select, ///< dst = A != 0 ? B : C
  // Math calls.
  Exp,
  Expm1,
  Log,
  Log10,
  Sqrt,
  Sin,
  Cos,
  Tan,
  Tanh,
  Sinh,
  Cosh,
  Atan,
  Asin,
  Acos,
  Abs,
  Floor,
  Ceil,
  Pow, ///< dst = A ** B
  // Lookup tables.
  LutCoord,  ///< dst = rowIndex(table=Aux, x=A), C = fraction register
  LutInterp, ///< dst = interp(table=Aux, col=Aux2, idx=A, frac=B)
  /// dst = Catmull-Rom cubic interp(table=Aux, col=Aux2, idx=A, frac=B)
  LutInterpCubic,
};

/// Human-readable opcode name ("add", "lut.coord", ...).
std::string_view bcOpName(BcOp Op);

/// One instruction. Dst/A/B/C are register numbers; Aux/Aux2 carry
/// table/column/variable indices; Imm carries the ConstF payload.
struct BcInstr {
  BcOp Op;
  uint16_t Dst = 0;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int32_t Aux = 0;
  int32_t Aux2 = 0;
  double Imm = 0;
};

/// Static cost/traffic model of one program, used by the roofline bench
/// (paper Fig. 6) in place of hardware performance counters.
struct InstrCounts {
  double FlopsPerCell = 0;
  double LoadBytesPerCell = 0;
  double StoreBytesPerCell = 0;

  double operationalIntensity() const {
    double Bytes = LoadBytesPerCell + StoreBytesPerCell;
    return Bytes > 0 ? FlopsPerCell / Bytes : 0;
  }
};

/// A compiled kernel program.
struct BcProgram {
  std::vector<BcInstr> Prologue;
  std::vector<BcInstr> Body;
  unsigned NumRegs = 0;

  /// Registers preloaded with the dt / t kernel arguments (when used).
  bool HasDt = false, HasT = false;
  uint16_t DtReg = 0, TReg = 0;

  // Layout metadata for state addressing.
  codegen::StateLayout Layout = codegen::StateLayout::AoS;
  unsigned NumSv = 0;
  unsigned AoSoAW = 1; ///< AoSoA block width (1 for other layouts)
  unsigned NumExternals = 0;
  unsigned NumParams = 0;

  InstrCounts Counts;

  // Static per-cell op counts of the Body, used by the telemetry layer to
  // derive runtime totals (interpolations, math calls) from cells
  // processed without instrumenting the interpreter's inner loop.
  unsigned LutOpsPerCell = 0;  ///< LutInterp / LutInterpCubic instructions
  unsigned MathOpsPerCell = 0; ///< transcendental call instructions

  /// Disassembles the program for tests and debugging.
  std::string str() const;
};

} // namespace exec
} // namespace limpet

#endif // LIMPET_EXEC_BYTECODE_H
