//===- Engine.cpp ---------------------------------------------------------===//

#include "exec/Engine.h"

#include "exec/Backend.h"
#include "runtime/VecMath.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <string>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::codegen;

namespace {

/// Math selection: Fast = VecMath kernels (vectorizable), !Fast = libm.
template <bool Fast> struct MathOps {
  static double mExp(double X) {
    return Fast ? vecmath::fastExp(X) : std::exp(X);
  }
  static double mExpm1(double X) {
    return Fast ? vecmath::fastExpm1(X) : std::expm1(X);
  }
  static double mLog(double X) {
    return Fast ? vecmath::fastLog(X) : std::log(X);
  }
  static double mLog10(double X) {
    return Fast ? vecmath::fastLog10(X) : std::log10(X);
  }
  static double mPow(double X, double Y) {
    return Fast ? vecmath::fastPow(X, Y) : std::pow(X, Y);
  }
  static double mSin(double X) {
    return Fast ? vecmath::fastSin(X) : std::sin(X);
  }
  static double mCos(double X) {
    return Fast ? vecmath::fastCos(X) : std::cos(X);
  }
  static double mTan(double X) {
    return Fast ? vecmath::fastTan(X) : std::tan(X);
  }
  static double mTanh(double X) {
    return Fast ? vecmath::fastTanh(X) : std::tanh(X);
  }
  static double mSinh(double X) {
    return Fast ? vecmath::fastSinh(X) : std::sinh(X);
  }
  static double mCosh(double X) {
    return Fast ? vecmath::fastCosh(X) : std::cosh(X);
  }
  static double mAtan(double X) {
    return Fast ? vecmath::fastAtan(X) : std::atan(X);
  }
  static double mAsin(double X) {
    return Fast ? vecmath::fastAsin(X) : std::asin(X);
  }
  static double mAcos(double X) {
    return Fast ? vecmath::fastAcos(X) : std::acos(X);
  }
};

//===----------------------------------------------------------------------===//
// Scalar engine
//===----------------------------------------------------------------------===//

/// Executes one instruction for one cell. \p Cell is unused by prologue
/// instructions.
template <bool Fast>
[[gnu::always_inline]] inline void execScalarInstr(const BcInstr &I, double *R,
                            const KernelArgs &A, const BcProgram &P,
                            int64_t Cell) {
  using M = MathOps<Fast>;
  switch (I.Op) {
  case BcOp::ConstF:
    R[I.Dst] = I.Imm;
    break;
  case BcOp::Copy:
    R[I.Dst] = R[I.A];
    break;
  case BcOp::LoadState:
    R[I.Dst] = A.State[stateIndex(P.Layout, Cell, I.Aux, P.NumSv,
                                  A.NumCells, P.AoSoAW)];
    break;
  case BcOp::StoreState:
    A.State[stateIndex(P.Layout, Cell, I.Aux, P.NumSv, A.NumCells,
                       P.AoSoAW)] = R[I.A];
    break;
  case BcOp::LoadExt:
    R[I.Dst] = A.Exts[size_t(I.Aux)][Cell];
    break;
  case BcOp::StoreExt:
    A.Exts[size_t(I.Aux)][Cell] = R[I.A];
    break;
  case BcOp::LoadParam:
    R[I.Dst] = A.Params[I.Aux];
    break;
  case BcOp::Add:
    R[I.Dst] = R[I.A] + R[I.B];
    break;
  case BcOp::Sub:
    R[I.Dst] = R[I.A] - R[I.B];
    break;
  case BcOp::Mul:
    R[I.Dst] = R[I.A] * R[I.B];
    break;
  case BcOp::Div:
    R[I.Dst] = R[I.A] / R[I.B];
    break;
  case BcOp::Rem:
    R[I.Dst] = std::fmod(R[I.A], R[I.B]);
    break;
  case BcOp::Neg:
    R[I.Dst] = -R[I.A];
    break;
  case BcOp::Min:
    R[I.Dst] = std::fmin(R[I.A], R[I.B]);
    break;
  case BcOp::Max:
    R[I.Dst] = std::fmax(R[I.A], R[I.B]);
    break;
  case BcOp::CmpLT:
    R[I.Dst] = R[I.A] < R[I.B] ? 1.0 : 0.0;
    break;
  case BcOp::CmpLE:
    R[I.Dst] = R[I.A] <= R[I.B] ? 1.0 : 0.0;
    break;
  case BcOp::CmpGT:
    R[I.Dst] = R[I.A] > R[I.B] ? 1.0 : 0.0;
    break;
  case BcOp::CmpGE:
    R[I.Dst] = R[I.A] >= R[I.B] ? 1.0 : 0.0;
    break;
  case BcOp::CmpEQ:
    R[I.Dst] = R[I.A] == R[I.B] ? 1.0 : 0.0;
    break;
  case BcOp::CmpNE:
    R[I.Dst] = R[I.A] != R[I.B] ? 1.0 : 0.0;
    break;
  case BcOp::And:
    R[I.Dst] = (R[I.A] != 0.0) && (R[I.B] != 0.0) ? 1.0 : 0.0;
    break;
  case BcOp::Or:
    R[I.Dst] = (R[I.A] != 0.0) || (R[I.B] != 0.0) ? 1.0 : 0.0;
    break;
  case BcOp::Xor:
    R[I.Dst] = (R[I.A] != 0.0) != (R[I.B] != 0.0) ? 1.0 : 0.0;
    break;
  case BcOp::Select:
    R[I.Dst] = R[I.A] != 0.0 ? R[I.B] : R[I.C];
    break;
  case BcOp::Exp:
    R[I.Dst] = M::mExp(R[I.A]);
    break;
  case BcOp::Expm1:
    R[I.Dst] = M::mExpm1(R[I.A]);
    break;
  case BcOp::Log:
    R[I.Dst] = M::mLog(R[I.A]);
    break;
  case BcOp::Log10:
    R[I.Dst] = M::mLog10(R[I.A]);
    break;
  case BcOp::Sqrt:
    R[I.Dst] = std::sqrt(R[I.A]);
    break;
  case BcOp::Sin:
    R[I.Dst] = M::mSin(R[I.A]);
    break;
  case BcOp::Cos:
    R[I.Dst] = M::mCos(R[I.A]);
    break;
  case BcOp::Tan:
    R[I.Dst] = M::mTan(R[I.A]);
    break;
  case BcOp::Tanh:
    R[I.Dst] = M::mTanh(R[I.A]);
    break;
  case BcOp::Sinh:
    R[I.Dst] = M::mSinh(R[I.A]);
    break;
  case BcOp::Cosh:
    R[I.Dst] = M::mCosh(R[I.A]);
    break;
  case BcOp::Atan:
    R[I.Dst] = M::mAtan(R[I.A]);
    break;
  case BcOp::Asin:
    R[I.Dst] = M::mAsin(R[I.A]);
    break;
  case BcOp::Acos:
    R[I.Dst] = M::mAcos(R[I.A]);
    break;
  case BcOp::Abs:
    R[I.Dst] = std::fabs(R[I.A]);
    break;
  case BcOp::Floor:
    R[I.Dst] = std::floor(R[I.A]);
    break;
  case BcOp::Ceil:
    R[I.Dst] = std::ceil(R[I.A]);
    break;
  case BcOp::Pow:
    R[I.Dst] = M::mPow(R[I.A], R[I.B]);
    break;
  case BcOp::LutCoord: {
    const runtime::LutTable &T = A.Luts->Tables[size_t(I.Aux)];
    double X = R[I.A];
    int64_t Idx;
    double Frac;
    T.coord(X, Idx, Frac);
    R[I.Dst] = double(Idx);
    R[I.C] = Frac;
    break;
  }
  case BcOp::LutInterp: {
    const runtime::LutTable &T = A.Luts->Tables[size_t(I.Aux)];
    R[I.Dst] = T.interp(int64_t(R[I.A]), R[I.B], I.Aux2);
    break;
  }
  case BcOp::LutInterpCubic: {
    const runtime::LutTable &T = A.Luts->Tables[size_t(I.Aux)];
    R[I.Dst] = T.interpCubic(int64_t(R[I.A]), R[I.B], I.Aux2);
    break;
  }
  }
}

template <bool Fast>
void runScalarRange(const BcProgram &P, const KernelArgs &A, int64_t Begin,
                    int64_t End) {
  std::vector<double> Regs(P.NumRegs, 0.0);
  double *R = Regs.data();
  if (P.HasDt)
    R[P.DtReg] = A.Dt;
  if (P.HasT)
    R[P.TReg] = A.T;
  for (const BcInstr &I : P.Prologue)
    execScalarInstr<Fast>(I, R, A, P, /*Cell=*/0);
  for (int64_t Cell = Begin; Cell != End; ++Cell)
    for (const BcInstr &I : P.Body)
      execScalarInstr<Fast>(I, R, A, P, Cell);
}

//===----------------------------------------------------------------------===//
// Vector engine
//===----------------------------------------------------------------------===//

/// Executes one instruction over W lanes starting at cell \p C. With a
/// non-zero compile-time lane count WC the lane loops have compile-time
/// trip counts and branch-free bodies so the host compiler emits SIMD
/// (the specialized fast path); with WC == 0 the lane count is the
/// runtime parameter \p RtW — the vector-length-agnostic mode, one
/// interpreter body serving any width the registry advertises.
template <unsigned WC, bool Fast>
[[gnu::always_inline]] inline void execVectorInstr(const BcInstr &I, double *Regs,
                            const KernelArgs &A, const BcProgram &P,
                            int64_t C, unsigned RtW) {
  const unsigned W = WC ? WC : RtW;
  using M = MathOps<Fast>;
  auto Reg = [&](uint16_t RegNo) { return Regs + size_t(RegNo) * W; };
  // The bytecode compiler guarantees a destination register never aliases
  // a source register of the same instruction, so the lane loops below
  // are safely vectorizable.
  double *__restrict D = Reg(I.Dst);
  const double *__restrict Ra = Reg(I.A);
  const double *__restrict Rb = Reg(I.B);
  const double *__restrict Rc = Reg(I.C);

  switch (I.Op) {
  case BcOp::ConstF:
    for (unsigned L = 0; L != W; ++L)
      D[L] = I.Imm;
    break;
  case BcOp::Copy:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L];
    break;
  case BcOp::LoadState: {
    const double *Src;
    switch (P.Layout) {
    case StateLayout::AoSoA:
      // Blocked layout: the W lanes of one sv are contiguous.
      Src = A.State + size_t(C) * P.NumSv + size_t(I.Aux) * W;
      for (unsigned L = 0; L != W; ++L)
        D[L] = Src[L];
      break;
    case StateLayout::SoA:
      Src = A.State + size_t(I.Aux) * A.NumCells + C;
      for (unsigned L = 0; L != W; ++L)
        D[L] = Src[L];
      break;
    case StateLayout::AoS:
      // Strided gather: one cell's struct per lane.
      for (unsigned L = 0; L != W; ++L)
        D[L] = A.State[size_t(C + L) * P.NumSv + size_t(I.Aux)];
      break;
    }
    break;
  }
  case BcOp::StoreState: {
    double *Dst;
    switch (P.Layout) {
    case StateLayout::AoSoA:
      Dst = A.State + size_t(C) * P.NumSv + size_t(I.Aux) * W;
      for (unsigned L = 0; L != W; ++L)
        Dst[L] = Ra[L];
      break;
    case StateLayout::SoA:
      Dst = A.State + size_t(I.Aux) * A.NumCells + C;
      for (unsigned L = 0; L != W; ++L)
        Dst[L] = Ra[L];
      break;
    case StateLayout::AoS:
      for (unsigned L = 0; L != W; ++L)
        A.State[size_t(C + L) * P.NumSv + size_t(I.Aux)] = Ra[L];
      break;
    }
    break;
  }
  case BcOp::LoadExt: {
    const double *Src = A.Exts[size_t(I.Aux)] + C;
    for (unsigned L = 0; L != W; ++L)
      D[L] = Src[L];
    break;
  }
  case BcOp::StoreExt: {
    double *Dst = A.Exts[size_t(I.Aux)] + C;
    for (unsigned L = 0; L != W; ++L)
      Dst[L] = Ra[L];
    break;
  }
  case BcOp::LoadParam:
    for (unsigned L = 0; L != W; ++L)
      D[L] = A.Params[I.Aux];
    break;
  case BcOp::Add:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] + Rb[L];
    break;
  case BcOp::Sub:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] - Rb[L];
    break;
  case BcOp::Mul:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] * Rb[L];
    break;
  case BcOp::Div:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] / Rb[L];
    break;
  case BcOp::Rem:
    for (unsigned L = 0; L != W; ++L)
      D[L] = std::fmod(Ra[L], Rb[L]);
    break;
  case BcOp::Neg:
    for (unsigned L = 0; L != W; ++L)
      D[L] = -Ra[L];
    break;
  case BcOp::Min:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] < Rb[L] ? Ra[L] : Rb[L];
    break;
  case BcOp::Max:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] > Rb[L] ? Ra[L] : Rb[L];
    break;
  case BcOp::CmpLT:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] < Rb[L] ? 1.0 : 0.0;
    break;
  case BcOp::CmpLE:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] <= Rb[L] ? 1.0 : 0.0;
    break;
  case BcOp::CmpGT:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] > Rb[L] ? 1.0 : 0.0;
    break;
  case BcOp::CmpGE:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] >= Rb[L] ? 1.0 : 0.0;
    break;
  case BcOp::CmpEQ:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] == Rb[L] ? 1.0 : 0.0;
    break;
  case BcOp::CmpNE:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] != Rb[L] ? 1.0 : 0.0;
    break;
  case BcOp::And:
    for (unsigned L = 0; L != W; ++L)
      D[L] = (Ra[L] != 0.0) & (Rb[L] != 0.0) ? 1.0 : 0.0;
    break;
  case BcOp::Or:
    for (unsigned L = 0; L != W; ++L)
      D[L] = (Ra[L] != 0.0) | (Rb[L] != 0.0) ? 1.0 : 0.0;
    break;
  case BcOp::Xor:
    for (unsigned L = 0; L != W; ++L)
      D[L] = (Ra[L] != 0.0) != (Rb[L] != 0.0) ? 1.0 : 0.0;
    break;
  case BcOp::Select:
    for (unsigned L = 0; L != W; ++L)
      D[L] = Ra[L] != 0.0 ? Rb[L] : Rc[L];
    break;
  case BcOp::Exp:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mExp(Ra[L]);
    break;
  case BcOp::Expm1:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mExpm1(Ra[L]);
    break;
  case BcOp::Log:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mLog(Ra[L]);
    break;
  case BcOp::Log10:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mLog10(Ra[L]);
    break;
  case BcOp::Sqrt:
    for (unsigned L = 0; L != W; ++L)
      D[L] = std::sqrt(Ra[L]);
    break;
  case BcOp::Sin:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mSin(Ra[L]);
    break;
  case BcOp::Cos:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mCos(Ra[L]);
    break;
  case BcOp::Tan:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mTan(Ra[L]);
    break;
  case BcOp::Tanh:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mTanh(Ra[L]);
    break;
  case BcOp::Sinh:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mSinh(Ra[L]);
    break;
  case BcOp::Cosh:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mCosh(Ra[L]);
    break;
  case BcOp::Atan:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mAtan(Ra[L]);
    break;
  case BcOp::Asin:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mAsin(Ra[L]);
    break;
  case BcOp::Acos:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mAcos(Ra[L]);
    break;
  case BcOp::Abs:
    for (unsigned L = 0; L != W; ++L)
      D[L] = std::fabs(Ra[L]);
    break;
  case BcOp::Floor:
    for (unsigned L = 0; L != W; ++L)
      D[L] = std::floor(Ra[L]);
    break;
  case BcOp::Ceil:
    for (unsigned L = 0; L != W; ++L)
      D[L] = std::ceil(Ra[L]);
    break;
  case BcOp::Pow:
    for (unsigned L = 0; L != W; ++L)
      D[L] = M::mPow(Ra[L], Rb[L]);
    break;
  case BcOp::LutCoord: {
    // The vectorized LUT_interpRow coordinate computation (paper Sec.
    // 3.4.2): branch-free clamp, truncate and fraction per lane, written
    // over local scalars so the compiler if-converts and vectorizes.
    const runtime::LutTable &T = A.Luts->Tables[size_t(I.Aux)];
    double *__restrict Fr = Reg(I.C);
    double Lo = T.coordLo(), InvStep = T.coordInvStep();
    double MaxPos = T.coordMaxPos(), MaxIdx = T.coordMaxIdx();
    for (unsigned L = 0; L != W; ++L) {
      double Pos = (Ra[L] - Lo) * InvStep;
      // Ordered so a NaN lane clamps to 0.0 before the int64_t cast
      // (casting NaN is UB); mirrors LutTable::coord.
      Pos = Pos > 0.0 ? (Pos < MaxPos ? Pos : MaxPos) : 0.0;
      double Floor = double(int64_t(Pos));
      Floor = Floor > MaxIdx ? MaxIdx : Floor;
      D[L] = Floor;
      Fr[L] = Pos - Floor;
    }
    break;
  }
  case BcOp::LutInterp: {
    // Gather-style interpolation the vectorizer can turn into SIMD: both
    // row entries of the column are fetched per lane and blended.
    const runtime::LutTable &T = A.Luts->Tables[size_t(I.Aux)];
    const double *__restrict Tab = T.data();
    int64_t Cols = T.cols();
    int64_t Col = I.Aux2;
    for (unsigned L = 0; L != W; ++L) {
      int64_t Idx = int64_t(Ra[L]);
      double Lo = Tab[Idx * Cols + Col];
      double Hi = Tab[Idx * Cols + Cols + Col];
      D[L] = Lo + Rb[L] * (Hi - Lo);
    }
    break;
  }
  case BcOp::LutInterpCubic: {
    // Four-point Lagrange over adjacent rows; the edge clamps are
    // branchless selects so the lane loop stays vectorizable.
    const runtime::LutTable &T = A.Luts->Tables[size_t(I.Aux)];
    const double *__restrict Tab = T.data();
    int64_t Cols = T.cols();
    int64_t Col = I.Aux2;
    int64_t LastRow = T.rows() - 1;
    for (unsigned L = 0; L != W; ++L) {
      int64_t Idx = int64_t(Ra[L]);
      int64_t I0 = Idx > 0 ? Idx - 1 : 0;
      int64_t I3 = Idx + 2 < LastRow + 1 ? Idx + 2 : LastRow;
      double P0 = Tab[I0 * Cols + Col];
      double P1 = Tab[Idx * Cols + Col];
      double P2 = Tab[(Idx + 1) * Cols + Col];
      double P3 = Tab[I3 * Cols + Col];
      double Tf = Rb[L];
      double W0 = -Tf * (Tf - 1.0) * (Tf - 2.0) * (1.0 / 6.0);
      double W1 = (Tf + 1.0) * (Tf - 1.0) * (Tf - 2.0) * 0.5;
      double W2 = -(Tf + 1.0) * Tf * (Tf - 2.0) * 0.5;
      double W3 = (Tf + 1.0) * Tf * (Tf - 1.0) * (1.0 / 6.0);
      D[L] = W0 * P0 + W1 * P1 + W2 * P2 + W3 * P3;
    }
    break;
  }
  }
}

/// Runs full W-blocks only; Backend::step routes any ragged tail through
/// the scalar backend before calling this. WC/RtW as in execVectorInstr:
/// WC > 0 is the specialized template burn, WC == 0 reads the width from
/// \p RtW at runtime.
template <unsigned WC, bool Fast>
void runVectorRange(const BcProgram &P, const KernelArgs &A, unsigned RtW) {
  const unsigned W = WC ? WC : RtW;
  assert(W > 1 && "vector ranges need a vector width");
  assert((A.End - A.Start) % int64_t(W) == 0 &&
         "vector ranges must be whole W-blocks (tails are the scalar "
         "backend's job)");
  std::vector<double> Regs(size_t(P.NumRegs) * W, 0.0);
  double *R = Regs.data();
  if (P.HasDt)
    for (unsigned L = 0; L != W; ++L)
      R[size_t(P.DtReg) * W + L] = A.Dt;
  if (P.HasT)
    for (unsigned L = 0; L != W; ++L)
      R[size_t(P.TReg) * W + L] = A.T;
  // The prologue is lane-uniform, so the vector interpreter runs it too.
  for (const BcInstr &I : P.Prologue)
    execVectorInstr<WC, Fast>(I, R, A, P, A.Start, W);

  for (int64_t C = A.Start; C + int64_t(W) <= A.End; C += int64_t(W))
    for (const BcInstr &I : P.Body)
      execVectorInstr<WC, Fast>(I, R, A, P, C, W);
}

//===----------------------------------------------------------------------===//
// Backend implementations
//===----------------------------------------------------------------------===//

template <bool Fast> class ScalarBackend final : public Backend {
public:
  std::string_view name() const override {
    return Fast ? "scalar/vecmath" : "scalar/libm";
  }
  unsigned width() const override { return 1; }
  bool fastMath() const override { return Fast; }

protected:
  void runRange(const BcProgram &P, const KernelArgs &A) const override {
    runScalarRange<Fast>(P, A, A.Start, A.End);
  }
};

template <unsigned W, bool Fast> class VectorBackend final : public Backend {
public:
  VectorBackend()
      : Name("vec" + std::to_string(W) + (Fast ? "/vecmath" : "/libm")) {}
  std::string_view name() const override { return Name; }
  unsigned width() const override { return W; }
  bool fastMath() const override { return Fast; }

protected:
  void runRange(const BcProgram &P, const KernelArgs &A) const override {
    runVectorRange<W, Fast>(P, A, W);
  }

private:
  std::string Name;
};

/// The vector-length-agnostic interpreter: one body (runVectorRange<0>)
/// whose lane count is a member read at runtime. Bit-identical to the
/// specialized backend of the same width and math flavour — the lane
/// loops execute the same operations in the same order — just without
/// compile-time trip counts for the host vectorizer to lean on.
template <bool Fast> class VlaBackend final : public Backend {
public:
  explicit VlaBackend(unsigned W)
      : W(W), Name("vla" + std::to_string(W) + (Fast ? "/vecmath" : "/libm")) {}
  std::string_view name() const override { return Name; }
  unsigned width() const override { return W; }
  bool fastMath() const override { return Fast; }
  bool specialized() const override { return false; }

protected:
  void runRange(const BcProgram &P, const KernelArgs &A) const override {
    runVectorRange<0, Fast>(P, A, W);
  }

private:
  unsigned W;
  std::string Name;
};

/// Process-lifetime backend singletons. The registry holds pointers into
/// this pool; forCaps() registries built for other machines share the
/// same instances (the interpreters themselves run anywhere — narrower
/// hosts just execute the lane loops with less SIMD).
struct BackendPool {
  ScalarBackend<false> S1Exact;
  ScalarBackend<true> S1Fast;
  VectorBackend<2, false> V2Exact;
  VectorBackend<2, true> V2Fast;
  VectorBackend<4, false> V4Exact;
  VectorBackend<4, true> V4Fast;
  VectorBackend<8, false> V8Exact;
  VectorBackend<8, true> V8Fast;
  VlaBackend<false> Vla2Exact{2}, Vla4Exact{4}, Vla8Exact{8}, Vla16Exact{16};
  VlaBackend<true> Vla2Fast{2}, Vla4Fast{4}, Vla8Fast{8}, Vla16Fast{16};

  static const BackendPool &get() {
    static const BackendPool Pool;
    return Pool;
  }
};

/// Local FNV-1a (the exec layer does not depend on compiler/Serialize).
uint64_t fnv1a64(uint64_t H, const void *Data, size_t Len) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ULL;
  }
  return H;
}

} // namespace

BackendRegistry BackendRegistry::forCaps(const support::CpuCaps &Caps,
                                         bool PreferVla) {
  const BackendPool &Pool = BackendPool::get();
  BackendRegistry R;
  R.Isa = Caps.Isa;
  R.MaxLanes = Caps.MaxLanesF64;
  R.PreferVla = PreferVla;

  auto add = [&](const Backend &B) {
    R.Entries.push_back({&B, B.width(), B.fastMath(), B.alignmentBytes(),
                         B.specialized()});
  };

  // The scalar interpreter and the specialized template burns register on
  // every host: they are portable C++ whose lane loops the host compiler
  // lowers to whatever SIMD exists (or unrolled scalar code). The probe
  // widens the *menu*, it never narrows the portable floor — width
  // support stays deterministic across machines, and the autotuner is
  // what decides whether an over-wide interpreter pays off here.
  add(Pool.S1Exact);
  add(Pool.S1Fast);
  add(Pool.V2Exact);
  add(Pool.V2Fast);
  add(Pool.V4Exact);
  add(Pool.V4Fast);
  add(Pool.V8Exact);
  add(Pool.V8Fast);

  // VLA twins of every specialized vector width (selectable via
  // LIMPET_VLA=1 or a forced tune point), plus the extended width
  // 2*MaxLanesF64 where the host's vector unit out-runs the template
  // burn (two full vectors in flight per block on AVX-512).
  add(Pool.Vla2Exact);
  add(Pool.Vla2Fast);
  add(Pool.Vla4Exact);
  add(Pool.Vla4Fast);
  add(Pool.Vla8Exact);
  add(Pool.Vla8Fast);
  if (Caps.MaxLanesF64 * 2 > 8) {
    add(Pool.Vla16Exact);
    add(Pool.Vla16Fast);
  }

  for (const BackendInfo &E : R.Entries)
    if (std::find(R.Widths.begin(), R.Widths.end(), E.Width) ==
        R.Widths.end())
      R.Widths.push_back(E.Width);
  std::sort(R.Widths.begin(), R.Widths.end());

  uint64_t H = 1469598103934665603ULL; // FNV offset basis
  H = fnv1a64(H, R.Isa.data(), R.Isa.size());
  for (const BackendInfo &E : R.Entries) {
    uint32_t Tuple[3] = {E.Width, uint32_t(E.FastMath), uint32_t(E.Specialized)};
    H = fnv1a64(H, Tuple, sizeof(Tuple));
  }
  R.Fingerprint = H;
  return R;
}

const BackendRegistry &BackendRegistry::global() {
  static const BackendRegistry R = [] {
    const char *V = std::getenv("LIMPET_VLA");
    return forCaps(support::hostCpuCaps(), V && V[0] == '1' && !V[1]);
  }();
  return R;
}

const Backend *BackendRegistry::find(unsigned Width, bool FastMath) const {
  const Backend *Fallback = nullptr;
  for (const BackendInfo &E : Entries) {
    if (E.Width != Width || E.FastMath != FastMath)
      continue;
    // Prefer the specialized template burn (or, under LIMPET_VLA=1, the
    // VLA interpreter); fall back to whichever kind exists — scalar has
    // no VLA twin, width 16 has no specialized burn.
    if (E.Specialized != PreferVla)
      return E.Impl;
    Fallback = E.Impl;
  }
  return Fallback;
}

bool BackendRegistry::supportsWidth(unsigned W) const {
  return std::find(Widths.begin(), Widths.end(), W) != Widths.end();
}

bool exec::isSupportedWidth(unsigned W) {
  return BackendRegistry::global().supportsWidth(W);
}

const Backend *exec::tryResolveBackend(unsigned Width, bool FastMath) {
  return BackendRegistry::global().find(Width, FastMath);
}

Status exec::runKernel(const BcProgram &P, const KernelArgs &Args,
                       unsigned Width, bool FastMath) {
  const Backend *B = tryResolveBackend(Width, FastMath);
  if (!B)
    return Status::error("no backend registered for vector width " +
                         std::to_string(Width));
  KernelArgs A = Args;
  B->step(P, A);
  return Status::success();
}
