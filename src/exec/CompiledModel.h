//===- CompiledModel.h - End-to-end compiled ionic model --------*- C++-*-===//
//
// The main user-facing entry point of the library: compiles an analyzed
// EasyML model through the full pipeline (preprocessor, integrator
// expansion, LUT extraction, IR emission, optimization passes, optional
// vectorization, bytecode) for a chosen engine configuration, builds the
// runtime LUT tables, and executes time steps over cell populations.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EXEC_COMPILEDMODEL_H
#define LIMPET_EXEC_COMPILEDMODEL_H

#include "codegen/MLIRCodeGen.h"
#include "exec/Backend.h"
#include "exec/Bytecode.h"
#include "exec/Engine.h"
#include "exec/NativeKernel.h"
#include "runtime/Lut.h"
#include "support/Status.h"

#include <memory>
#include <optional>
#include <string>

namespace limpet {
namespace exec {

/// Selects which of the paper's configurations a model is compiled for.
struct EngineConfig {
  /// Width sentinel: let the CompilerDriver pick the (layout × width ×
  /// engine) point from a persisted TuningRecord or the capability
  /// heuristic. Never reaches codegen or execution — the driver resolves
  /// it to a concrete configuration first.
  static constexpr unsigned kWidthAuto = 0;

  /// SIMD width: 1 (scalar), 2 (SSE), 4 (AVX2), 8 (AVX-512), or any
  /// other width the BackendRegistry advertises on this host; kWidthAuto
  /// defers the choice to the driver's autotuner.
  unsigned Width = 1;
  codegen::StateLayout Layout = codegen::StateLayout::AoS;
  /// VecMath (SVML analogue) vs libm.
  bool FastMath = false;
  bool EnableLuts = true;
  /// Cubic (Catmull-Rom) LUT interpolation instead of linear.
  bool CubicLut = false;
  bool RunPasses = true;
  /// Optimization pass pipeline, mlir-opt style ("cse,licm,dce"). Empty
  /// means the default pipeline. Part of the compile-cache key.
  std::string PassPipeline;

  /// openCARP's original code generation: scalar, AoS, libm, scalar LUTs.
  static EngineConfig baseline();
  /// Full limpetMLIR: W lanes, AoSoA layout, vector math, vector LUTs.
  static EngineConfig limpetMLIR(unsigned Width);
  /// The Sec. 5 "auto-vectorizer" comparison point: vector arithmetic but
  /// no data-layout transformation (AoS gathers).
  static EngineConfig autoVecLike(unsigned Width);
  /// The guard-rail degradation target: exact scalar kernel (no LUTs,
  /// libm, AoS). Cells whose fast-path integration keeps faulting fall
  /// back to a model compiled with this configuration.
  static EngineConfig recovery();
  /// Auto-selected point: Width = kWidthAuto with limpetMLIR-style
  /// defaults. The CompilerDriver replaces layout/width (and possibly
  /// fast-math, in fast-math mode) with the tuned or heuristic choice.
  static EngineConfig autoTuned();

  /// True when the driver must resolve the width (and layout) before
  /// compiling.
  bool isAutoWidth() const { return Width == kWidthAuto; }

  /// Checks that this configuration names an executable engine
  /// (supported width, layout/width compatibility, LUT flag coherence).
  /// CompiledModel::compile rejects invalid configurations with this
  /// recoverable Status instead of asserting deep in codegen. An
  /// auto-width configuration validates (the driver resolves it), but
  /// compile()/fromParts() reject it — they need a concrete point.
  Status validate() const;

  /// Field-wise equality. Checkpoint resume requires the resuming model
  /// to be compiled under exactly the configuration the checkpoint was
  /// captured with (bit-identical continuation needs the same engine).
  bool operator==(const EngineConfig &) const = default;
};

std::string engineConfigName(const EngineConfig &Cfg);

/// A fully compiled model ready to run.
class CompiledModel {
public:
  /// Compiles \p Info under \p Cfg. Returns nullopt with \p Error set on
  /// failure (e.g. pipeline verification errors).
  static std::optional<CompiledModel>
  compile(const easyml::ModelInfo &Info, const EngineConfig &Cfg,
          std::string *Error = nullptr);

  /// Assembles a runnable model from already-produced parts: a kernel
  /// (whose IR handles may be null on artifact loads), a bytecode program
  /// and optionally pre-built LUT tables (rebuilt at default parameters
  /// when absent). Validates cross-part consistency — layout, widths,
  /// state/external/parameter counts — so a corrupt or mismatched
  /// artifact is rejected with a recoverable error rather than executed.
  static std::optional<CompiledModel>
  fromParts(codegen::GeneratedKernel Kernel, BcProgram Program,
            std::optional<runtime::LutTableSet> Luts, const EngineConfig &Cfg,
            std::string *Error = nullptr);

  const easyml::ModelInfo &info() const { return Kernel.Program.Info; }
  const EngineConfig &config() const { return Cfg; }
  /// The execution backend this configuration resolved to at compile
  /// time (never null for a successfully compiled model).
  const Backend *backend() const { return Engine; }
  const BcProgram &program() const { return Program; }
  const runtime::LutTableSet &luts() const { return Luts; }
  const codegen::GeneratedKernel &kernel() const { return Kernel; }

  /// Number of doubles the state array needs for \p NumCells (AoSoA pads
  /// to full blocks).
  size_t stateArraySize(int64_t NumCells) const;

  /// Number of cells the kernel addressing covers given padding.
  int64_t paddedCells(int64_t NumCells) const;

  /// Writes every state variable's initial value for cells [0, NumCells).
  void initializeState(double *State, int64_t NumCells) const;

  /// Initial values for every external variable.
  std::vector<double> externalInits() const;

  /// The default parameter vector.
  std::vector<double> defaultParams() const;

  /// Rebuilds the internal LUT tables for a modified parameter vector
  /// (tables bake parameter values in, as openCARP does at
  /// initialization).
  void rebuildLuts(const double *Params);

  /// Builds a standalone LUT table set for \p Params (used by simulators
  /// that adjust parameters without mutating the compiled model).
  runtime::LutTableSet buildLuts(const double *Params) const;

  /// Runs one compute step over [Args.Start, Args.End). When Args.Luts is
  /// null the model's internal tables are used. Dispatches to the native
  /// kernel when one is attached, else through the VM backend.
  void computeStep(KernelArgs Args) const;

  /// Attaches (or, with null, detaches) a dlopen'd native kernel; the
  /// KernelEmitter guarantees it was specialized for this model's exact
  /// (program, config, toolchain) point. Shared: several models compiled
  /// from the same content hash reuse one loaded object.
  void attachNative(std::shared_ptr<NativeKernel> K) { Native = std::move(K); }

  /// The attached native kernel, or null when running on the VM tier.
  const NativeKernel *nativeKernel() const { return Native.get(); }

  /// True when computeStep dispatches to native code.
  bool usingNativeTier() const { return Native != nullptr; }

  /// Reads sv \p Sv of cell \p Cell from a state array of this layout.
  double readState(const double *State, int64_t Cell, int64_t Sv,
                   int64_t NumCells) const;

  /// Writes sv \p Sv of cell \p Cell into a state array of this layout
  /// (used by checkpoint restore, fault injection and the scalar-exact
  /// fallback scatter).
  void writeState(double *State, int64_t Cell, int64_t Sv, int64_t NumCells,
                  double Value) const;

private:
  CompiledModel() = default;

  codegen::GeneratedKernel Kernel;
  BcProgram Program;
  runtime::LutTableSet Luts;
  EngineConfig Cfg;
  /// Resolved once at compile time; computeStep dispatches through it.
  const Backend *Engine = nullptr;
  /// Optional specialized-kernel tier; takes dispatch priority when set.
  std::shared_ptr<NativeKernel> Native;
};

} // namespace exec
} // namespace limpet

#endif // LIMPET_EXEC_COMPILEDMODEL_H
