//===- Backend.h - Pluggable kernel execution backends ----------*- C++-*-===//
//
// One dispatch point for every way a compiled kernel program can be
// executed: the scalar interpreter (openCARP's baseline scalar C code),
// the W-lane vector interpreter (limpetMLIR's vector<Wxf64> native code),
// and — through the same interface — the guard-rail recovery path, which
// is just the scalar/libm backend driven cell-by-cell by the Simulator.
//
// A Backend is stateless and immutable; resolveBackend() returns shared
// singletons, so EngineConfig can resolve to a backend instance once at
// model-compile time and every step dispatches through a single virtual
// call. Backend::step() owns the two concerns that used to be ad-hoc
// special cases inside the engines:
//
//  * the ragged tail: cells left over after the last full W-block run
//    through the scalar backend of the same math flavour (the
//    vectorizer's epilogue loop), selected per chunk here rather than
//    inside the vector interpreter;
//  * chunk-granular telemetry (time, cell-steps, derived LUT/math/byte
//    totals from the program's static per-cell counts).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EXEC_BACKEND_H
#define LIMPET_EXEC_BACKEND_H

#include "exec/Engine.h"

#include <string_view>

namespace limpet {
namespace exec {

/// A kernel execution strategy. Implementations are stateless singletons
/// owned by resolveBackend().
class Backend {
public:
  virtual ~Backend() = default;

  /// Stable identifier, e.g. "scalar/libm" or "vec8/vecmath".
  virtual std::string_view name() const = 0;

  /// SIMD lane count of the main loop (1 for the scalar backend).
  virtual unsigned width() const = 0;

  /// Whether transcendental calls use the VecMath kernels (the SVML
  /// analogue) instead of libm.
  virtual bool fastMath() const = 0;

  /// Capability flags.
  bool vectorized() const { return width() > 1; }
  bool supportsLayout(codegen::StateLayout L) const {
    // AoSoA blocks only make sense with a vector main loop.
    return L != codegen::StateLayout::AoSoA || vectorized();
  }

  /// Runs \p P over [Args.Start, Args.End): full W-blocks through this
  /// backend's main loop, any ragged tail through the scalar backend of
  /// the same math flavour. Records one telemetry chunk for the whole
  /// range under this backend's width.
  void step(const BcProgram &P, KernelArgs &Args) const;

protected:
  /// The raw interpreter loop over [Args.Start, Args.End). The vector
  /// backends require the range to be a whole number of W-blocks; step()
  /// guarantees that.
  virtual void runRange(const BcProgram &P, const KernelArgs &Args) const = 0;

private:
  void dispatch(const BcProgram &P, const KernelArgs &Args) const;
};

/// The shared backend instance for a supported (Width, FastMath) pair.
/// Asserts on unsupported widths; see tryResolveBackend for the checked
/// form.
const Backend &resolveBackend(unsigned Width, bool FastMath);

/// Like resolveBackend, but returns nullptr for unsupported widths.
const Backend *tryResolveBackend(unsigned Width, bool FastMath);

} // namespace exec
} // namespace limpet

#endif // LIMPET_EXEC_BACKEND_H
