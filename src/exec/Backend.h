//===- Backend.h - Pluggable kernel execution backends ----------*- C++-*-===//
//
// One dispatch point for every way a compiled kernel program can be
// executed: the scalar interpreter (openCARP's baseline scalar C code),
// the W-lane vector interpreter (limpetMLIR's vector<Wxf64> native code),
// and — through the same interface — the guard-rail recovery path, which
// is just the scalar/libm backend driven cell-by-cell by the Simulator.
//
// Backends are stateless, immutable singletons published through the
// BackendRegistry: a data-driven table populated once at startup from the
// host's probed vector capabilities (support/CpuCaps). Each entry
// advertises its width, preferred alignment and math flavour, so the
// selection layers above (EngineConfig::validate, the width autotuner,
// the capability heuristic) enumerate what this machine can run instead
// of hard-coding the SSE/AVX2/AVX-512 axis. Two kinds of entries exist:
//
//  * specialized: the templated interpreters with compile-time lane
//    counts (the fast path the registry prefers when both exist);
//  * vector-length-agnostic (VLA): one interpreter body whose lane count
//    is a runtime parameter, registered for widths beyond the template
//    burn (and, under LIMPET_VLA=1, preferred everywhere for testing).
//
// Backend::step() owns the two concerns that used to be ad-hoc special
// cases inside the engines:
//
//  * the ragged tail: cells left over after the last full W-block run
//    through the scalar backend of the same math flavour (the
//    vectorizer's epilogue loop), selected per chunk here rather than
//    inside the vector interpreter;
//  * chunk-granular telemetry (time, cell-steps, derived LUT/math/byte
//    totals from the program's static per-cell counts).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EXEC_BACKEND_H
#define LIMPET_EXEC_BACKEND_H

#include "exec/Engine.h"
#include "support/CpuCaps.h"

#include <string_view>
#include <vector>

namespace limpet {
namespace exec {

/// A kernel execution strategy. Implementations are stateless singletons
/// owned by the BackendRegistry.
class Backend {
public:
  virtual ~Backend() = default;

  /// Stable identifier, e.g. "scalar/libm", "vec8/vecmath" or
  /// "vla16/vecmath".
  virtual std::string_view name() const = 0;

  /// SIMD lane count of the main loop (1 for the scalar backend).
  virtual unsigned width() const = 0;

  /// Whether transcendental calls use the VecMath kernels (the SVML
  /// analogue) instead of libm.
  virtual bool fastMath() const = 0;

  /// Whether the lane count is a compile-time template parameter (the
  /// specialized fast path) or a runtime value (the VLA interpreter).
  virtual bool specialized() const { return true; }

  /// State alignment (bytes) this backend's main loop prefers: one full
  /// vector of f64 lanes.
  unsigned alignmentBytes() const { return width() * sizeof(double); }

  /// Capability flags.
  bool vectorized() const { return width() > 1; }
  bool supportsLayout(codegen::StateLayout L) const {
    // AoSoA blocks only make sense with a vector main loop.
    return L != codegen::StateLayout::AoSoA || vectorized();
  }

  /// Runs \p P over [Args.Start, Args.End): full W-blocks through this
  /// backend's main loop, any ragged tail through the scalar backend of
  /// the same math flavour. Records one telemetry chunk for the whole
  /// range under this backend's width.
  void step(const BcProgram &P, KernelArgs &Args) const;

protected:
  /// The raw interpreter loop over [Args.Start, Args.End). The vector
  /// backends require the range to be a whole number of W-blocks; step()
  /// guarantees that.
  virtual void runRange(const BcProgram &P, const KernelArgs &Args) const = 0;

private:
  void dispatch(const BcProgram &P, const KernelArgs &Args) const;
};

/// One registered execution point: the backend singleton plus the
/// capabilities it advertises (duplicated here so selection code can
/// enumerate without virtual calls).
struct BackendInfo {
  const Backend *Impl = nullptr;
  unsigned Width = 1;
  bool FastMath = false;
  unsigned AlignBytes = 8;
  bool Specialized = true;
};

/// The data-driven table of every execution point this process can
/// dispatch to. Populated once from the host capability probe; the
/// global() instance is what tryResolveBackend, EngineConfig::validate
/// and the autotuner consult.
class BackendRegistry {
public:
  /// The process-wide registry, built from hostCpuCaps() (and the
  /// LIMPET_VLA preference) on first use.
  static const BackendRegistry &global();

  /// Builds the registry a machine with \p Caps would have. Used by tests
  /// and by staleness checks against tuning records from other machines;
  /// \p PreferVla mirrors LIMPET_VLA=1.
  static BackendRegistry forCaps(const support::CpuCaps &Caps,
                                 bool PreferVla = false);

  /// The backend for (Width, FastMath), preferring the specialized
  /// templated entry unless VLA dispatch is forced. Null when no entry
  /// covers the width.
  const Backend *find(unsigned Width, bool FastMath) const;

  bool supportsWidth(unsigned W) const;

  /// Sorted unique widths with at least one entry (always starts at 1).
  const std::vector<unsigned> &widths() const { return Widths; }

  /// Every registered point.
  const std::vector<BackendInfo> &entries() const { return Entries; }

  /// A stable hash of the ISA name and every (width, fastMath,
  /// specialized) entry. Tuning records are keyed by this: a record tuned
  /// on a machine with different capabilities is stale by construction.
  uint64_t fingerprint() const { return Fingerprint; }

  /// The probed ISA this registry was built for ("avx512", "neon", ...).
  const std::string &isa() const { return Isa; }

  /// f64 lanes of the widest native vector unit (heuristic input).
  unsigned maxLanes() const { return MaxLanes; }

  /// Whether find() prefers VLA entries over specialized ones.
  bool prefersVla() const { return PreferVla; }

private:
  std::vector<BackendInfo> Entries;
  std::vector<unsigned> Widths;
  std::string Isa;
  unsigned MaxLanes = 1;
  uint64_t Fingerprint = 0;
  bool PreferVla = false;
};

/// The shared backend instance for a supported (Width, FastMath) pair, or
/// nullptr for widths the registry does not cover. The asserting
/// resolveBackend() variant is gone: every caller checks, and
/// EngineConfig::validate turns an unsupported width into a recoverable
/// Status before any model is compiled.
const Backend *tryResolveBackend(unsigned Width, bool FastMath);

} // namespace exec
} // namespace limpet

#endif // LIMPET_EXEC_BACKEND_H
