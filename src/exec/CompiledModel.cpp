//===- CompiledModel.cpp --------------------------------------------------===//

#include "exec/CompiledModel.h"

#include "codegen/Vectorize.h"
#include "easyml/ConstEval.h"
#include "exec/BytecodeCompiler.h"
#include "support/Casting.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::codegen;

EngineConfig EngineConfig::baseline() {
  EngineConfig Cfg;
  Cfg.Width = 1;
  Cfg.Layout = StateLayout::AoS;
  Cfg.FastMath = false;
  Cfg.EnableLuts = true;
  return Cfg;
}

EngineConfig EngineConfig::limpetMLIR(unsigned Width) {
  EngineConfig Cfg;
  Cfg.Width = Width;
  Cfg.Layout = StateLayout::AoSoA;
  Cfg.FastMath = true;
  Cfg.EnableLuts = true;
  return Cfg;
}

EngineConfig EngineConfig::autoVecLike(unsigned Width) {
  EngineConfig Cfg;
  Cfg.Width = Width;
  Cfg.Layout = StateLayout::AoS;
  Cfg.FastMath = true;
  Cfg.EnableLuts = true;
  return Cfg;
}

EngineConfig EngineConfig::recovery() {
  EngineConfig Cfg;
  Cfg.Width = 1;
  Cfg.Layout = StateLayout::AoS;
  Cfg.FastMath = false;
  Cfg.EnableLuts = false;
  return Cfg;
}

EngineConfig EngineConfig::autoTuned() {
  EngineConfig Cfg;
  Cfg.Width = kWidthAuto;
  Cfg.Layout = StateLayout::AoSoA;
  Cfg.FastMath = true;
  Cfg.EnableLuts = true;
  return Cfg;
}

std::string exec::engineConfigName(const EngineConfig &Cfg) {
  std::string Name = Cfg.isAutoWidth() ? "auto"
                     : Cfg.Width == 1  ? "scalar"
                                       : "vec" + std::to_string(Cfg.Width);
  Name += "/";
  Name += stateLayoutName(Cfg.Layout);
  Name += Cfg.FastMath ? "/fastmath" : "/libm";
  Name += Cfg.EnableLuts ? (Cfg.CubicLut ? "/cubiclut" : "/lut") : "/nolut";
  return Name;
}

Status EngineConfig::validate() const {
  if (CubicLut && !EnableLuts)
    return Status::error("cubic LUT interpolation requires LUTs "
                         "(EnableLuts) to be on");
  // Auto width: the driver resolves layout/width against the registry
  // before anything executable is built, so only the width-independent
  // checks apply here.
  if (isAutoWidth())
    return Status::success();
  const Backend *B = tryResolveBackend(Width, FastMath);
  if (!B)
    return Status::error("no backend registered for vector width " +
                         std::to_string(Width));
  if (!B->supportsLayout(Layout))
    return Status::error("AoSoA layout requires a vector engine");
  return Status::success();
}

std::optional<CompiledModel>
CompiledModel::compile(const easyml::ModelInfo &Info, const EngineConfig &Cfg,
                       std::string *Error) {
  // Reject unsupported configurations up front with a recoverable error
  // instead of asserting deep in codegen.
  if (Status S = Cfg.validate(); !S) {
    if (Error)
      *Error = S.message();
    return std::nullopt;
  }
  if (Cfg.isAutoWidth()) {
    if (Error)
      *Error = "auto width must be resolved by the CompilerDriver before "
               "compiling (use compiler::selectAutoConfig)";
    return std::nullopt;
  }

  telemetry::TraceSpan Span(
      "compile:" + Info.Name + " (" + engineConfigName(Cfg) + ")", "compile");
  telemetry::ScopedTimerNs Timer("compile.model.ns");
  telemetry::counter("compile.model.count").add(1);

  CodeGenOptions Options;
  Options.Layout = Cfg.Layout;
  Options.AoSoABlockWidth = Cfg.Width;
  Options.EnableLuts = Cfg.EnableLuts;
  Options.CubicLut = Cfg.CubicLut;
  Options.RunPasses = Cfg.RunPasses;
  Options.PassPipeline = Cfg.PassPipeline;
  GeneratedKernel Kernel = generateKernel(Info, Options);
  if (!Kernel.PipelineStatus) {
    if (Error)
      *Error = Kernel.PipelineStatus.message();
    return std::nullopt;
  }

  ir::Operation *Func = Kernel.ScalarFunc;
  if (Cfg.Width > 1) {
    Func = vectorizeKernel(Kernel, Cfg.Width);
    if (!Kernel.PipelineStatus) {
      if (Error)
        *Error = Kernel.PipelineStatus.message();
      return std::nullopt;
    }
  }
  BcProgram Program = compileToBytecode(Kernel, Func);
  return fromParts(std::move(Kernel), std::move(Program), std::nullopt, Cfg,
                   Error);
}

std::optional<CompiledModel>
CompiledModel::fromParts(GeneratedKernel Kernel, BcProgram Program,
                         std::optional<runtime::LutTableSet> Luts,
                         const EngineConfig &Cfg, std::string *Error) {
  auto Fail = [&](std::string Msg) -> std::optional<CompiledModel> {
    if (Error)
      *Error = std::move(Msg);
    return std::nullopt;
  };
  if (Status S = Cfg.validate(); !S)
    return Fail(S.message());
  if (Cfg.isAutoWidth())
    return Fail("auto width must be resolved before assembling a model");

  const easyml::ModelInfo &Info = Kernel.Program.Info;
  if (Program.Layout != Cfg.Layout)
    return Fail("program layout does not match the engine configuration");
  unsigned WantAoSoAW = Cfg.Layout == StateLayout::AoSoA ? Cfg.Width : 1;
  if (Program.AoSoAW != WantAoSoAW)
    return Fail("program AoSoA block width does not match the configuration");
  if (Program.NumSv != Info.StateVars.size())
    return Fail("program state-variable count does not match the model");
  if (Program.NumExternals != Info.Externals.size())
    return Fail("program external count does not match the model");
  if (Program.NumParams != Info.Params.size())
    return Fail("program parameter count does not match the model");
  if (Program.Body.empty() || Program.NumRegs == 0)
    return Fail("program has no compute body");
  if (Luts && Luts->Tables.size() != Kernel.Program.Luts.Tables.size())
    return Fail("LUT table count does not match the model's LUT plan");

  CompiledModel M;
  M.Cfg = Cfg;
  M.Engine = tryResolveBackend(Cfg.Width, Cfg.FastMath);
  if (!M.Engine)
    return Fail("no backend registered for vector width " +
                std::to_string(Cfg.Width));
  M.Kernel = std::move(Kernel);
  M.Program = std::move(Program);
  if (Luts) {
    M.Luts = std::move(*Luts);
  } else {
    std::vector<double> Params = M.defaultParams();
    M.rebuildLuts(Params.data());
  }
  return M;
}

size_t CompiledModel::stateArraySize(int64_t NumCells) const {
  return size_t(paddedCells(NumCells)) * Program.NumSv;
}

int64_t CompiledModel::paddedCells(int64_t NumCells) const {
  if (Cfg.Layout != StateLayout::AoSoA)
    return NumCells;
  int64_t W = int64_t(Program.AoSoAW);
  return (NumCells + W - 1) / W * W;
}

void CompiledModel::initializeState(double *State, int64_t NumCells) const {
  const easyml::ModelInfo &Info = Kernel.Program.Info;
  int64_t Padded = paddedCells(NumCells);
  for (int64_t Cell = 0; Cell != Padded; ++Cell)
    for (size_t Sv = 0; Sv != Info.StateVars.size(); ++Sv)
      State[stateIndex(Cfg.Layout, Cell, int64_t(Sv), Program.NumSv,
                       NumCells, Program.AoSoAW)] = Info.StateVars[Sv].Init;
}

std::vector<double> CompiledModel::externalInits() const {
  std::vector<double> Inits;
  for (const easyml::ExternalInfo &Ext : Kernel.Program.Info.Externals)
    Inits.push_back(Ext.Init);
  return Inits;
}

std::vector<double> CompiledModel::defaultParams() const {
  std::vector<double> Params;
  for (const easyml::ParamInfo &P : Kernel.Program.Info.Params)
    Params.push_back(P.DefaultValue);
  return Params;
}

void CompiledModel::rebuildLuts(const double *Params) {
  Luts = buildLuts(Params);
}

runtime::LutTableSet CompiledModel::buildLuts(const double *Params) const {
  telemetry::TraceSpan Span("lut-build", "compile");
  telemetry::ScopedTimerNs Timer("compile.lut.build.ns");
  const easyml::ModelInfo &Info = Kernel.Program.Info;
  runtime::LutTableSet Set;
  for (const LutTablePlan &Plan : Kernel.Program.Luts.Tables) {
    runtime::LutTable Table(Plan.Spec.Lo, Plan.Spec.Hi, Plan.Spec.Step,
                            int(Plan.Columns.size()));
    for (int Row = 0; Row != Table.rows(); ++Row) {
      double X = Table.rowX(Row);
      easyml::EvalEnv Env =
          [&](std::string_view Name) -> std::optional<double> {
        if (Name == Plan.Spec.VarName)
          return X;
        int Idx = Info.paramIndex(Name);
        if (Idx >= 0)
          return Params[Idx];
        return std::nullopt;
      };
      for (size_t Col = 0; Col != Plan.Columns.size(); ++Col) {
        auto V = easyml::evalExpr(*Plan.Columns[Col], Env);
        assert(V && "LUT column expression references a non-table variable");
        Table.at(Row, int(Col)) = *V;
      }
    }
    Set.Tables.push_back(std::move(Table));
  }
  return Set;
}

void CompiledModel::computeStep(KernelArgs Args) const {
  if (!Args.Luts)
    Args.Luts = &Luts;
  if (Native) {
    Native->step(Program, Args);
    return;
  }
  Engine->step(Program, Args);
}

double CompiledModel::readState(const double *State, int64_t Cell,
                                int64_t Sv, int64_t NumCells) const {
  return State[stateIndex(Cfg.Layout, Cell, Sv, Program.NumSv, NumCells,
                          Program.AoSoAW)];
}

void CompiledModel::writeState(double *State, int64_t Cell, int64_t Sv,
                               int64_t NumCells, double Value) const {
  State[stateIndex(Cfg.Layout, Cell, Sv, Program.NumSv, NumCells,
                   Program.AoSoAW)] = Value;
}
