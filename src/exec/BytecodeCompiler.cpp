//===- BytecodeCompiler.cpp -----------------------------------------------===//

#include "exec/BytecodeCompiler.h"

#include "runtime/VecMath.h"
#include "support/Casting.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <map>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::ir;
using namespace limpet::codegen;

namespace {

/// True for ops that exist only to compute scalar addresses; the engines
/// re-derive addressing, so these are not compiled.
static bool isAddressArith(const Operation *Op) {
  if (Op->opcode() == OpCode::LutCoord)
    return false;
  if (Op->numResults() == 0)
    return false;
  for (unsigned I = 0, E = Op->numResults(); I != E; ++I)
    if (!Op->result(I)->type().isI64())
      return false;
  return true;
}

class CompilerImpl {
public:
  CompilerImpl(const GeneratedKernel &K, Operation *Func) : K(K), Func(Func) {}

  BcProgram run() {
    P.Layout = K.Options.Layout;
    P.NumSv = K.Abi.NumStateVars;
    P.AoSoAW =
        K.Options.Layout == StateLayout::AoSoA ? K.Options.AoSoABlockWidth : 1;
    P.NumExternals = K.Abi.NumExternals;
    P.NumParams = K.Abi.NumParams;

    Block &Entry = funcBody(Func);

    // dt / t live in fixed persistent registers the engines preload.
    P.HasDt = P.HasT = true;
    P.DtReg = allocReg();
    P.TReg = allocReg();
    RegOf[Entry.argument(K.Abi.dtArg())] = P.DtReg;
    RegOf[Entry.argument(K.Abi.tArg())] = P.TReg;

    // Locate the cell loop.
    Operation *CellLoop = nullptr;
    for (Operation *Op : Entry.ops())
      if (Op->opcode() == OpCode::ScfFor && Op->hasAttr(attrs::CellLoop))
        CellLoop = Op;
    assert(CellLoop && "kernel has no cell loop");

    // Compile the prologue (everything before/after the loop except
    // return). Prologue results live in persistent registers.
    InPrologue = true;
    for (Operation *Op : Entry.ops()) {
      if (Op == CellLoop || Op->opcode() == OpCode::FuncReturn)
        continue;
      compileOp(Op, P.Prologue);
    }

    // Liveness pre-pass over the body: count compiled uses per value.
    InPrologue = false;
    Block &Body = forBody(CellLoop);
    for (Operation *Op : Body.ops()) {
      if (Op->opcode() == OpCode::ScfYield || isAddressArith(Op))
        continue;
      for (Value *V : Op->operands())
        if (!V->type().isI64() || definedByLutCoord(V))
          ++BodyUseCount[V];
    }

    for (Operation *Op : Body.ops()) {
      if (Op->opcode() == OpCode::ScfYield || isAddressArith(Op))
        continue;
      compileOp(Op, P.Body);
    }

    P.NumRegs = NextReg;
    computeCounts();
    return std::move(P);
  }

private:
  const GeneratedKernel &K;
  Operation *Func;
  BcProgram P;
  bool InPrologue = true;

  std::map<Value *, uint16_t> RegOf;
  std::map<Value *, unsigned> BodyUseCount;
  std::vector<uint16_t> FreeRegs;
  /// Registers whose last use is the current instruction. They become
  /// reusable only after the destination is allocated, so a destination
  /// never aliases a source (the engines rely on this for __restrict lane
  /// loops).
  std::vector<uint16_t> PendingFrees;
  unsigned NextReg = 0;
  /// Registers allocated during the prologue are persistent.
  unsigned PersistentRegs = 0;

  static bool definedByLutCoord(Value *V) {
    auto *Res = dyn_cast<OpResult>(V);
    return Res && Res->owner()->opcode() == OpCode::LutCoord;
  }

  uint16_t allocReg() {
    if (!InPrologue && !FreeRegs.empty()) {
      uint16_t R = FreeRegs.back();
      FreeRegs.pop_back();
      return R;
    }
    assert(NextReg < 0xFFFF && "register file overflow");
    uint16_t R = uint16_t(NextReg++);
    if (InPrologue)
      PersistentRegs = NextReg;
    return R;
  }

  /// Returns the register of \p V.
  uint16_t regOf(Value *V) {
    auto It = RegOf.find(V);
    if (It != RegOf.end())
      return It->second;
    limpet_unreachable("operand has no register (unexpected kernel shape)");
  }

  /// Consumes one use of \p V in the body; its register becomes reusable
  /// after this instruction's destination is allocated.
  uint16_t useOperand(Value *V) {
    uint16_t R = regOf(V);
    if (InPrologue)
      return R;
    auto It = BodyUseCount.find(V);
    if (It != BodyUseCount.end() && --It->second == 0 &&
        R >= PersistentRegs)
      PendingFrees.push_back(R);
    return R;
  }

  /// Makes the registers released by the current instruction available.
  void flushFrees() {
    FreeRegs.insert(FreeRegs.end(), PendingFrees.begin(),
                    PendingFrees.end());
    PendingFrees.clear();
  }

  void define(Value *V, uint16_t R) { RegOf[V] = R; }

  void emit(std::vector<BcInstr> &Out, BcInstr I) {
    Out.push_back(I);
    // Destinations are allocated before emit() in every case, so operand
    // registers released by this instruction become reusable only now.
    flushFrees();
  }

  void compileOp(Operation *Op, std::vector<BcInstr> &Out) {
    if (isAddressArith(Op))
      return;
    switch (Op->opcode()) {
    case OpCode::ArithConstantF: {
      BcInstr I{BcOp::ConstF};
      I.Imm = Op->attr("value").asFloat();
      I.Dst = allocReg();
      define(Op->result(0), I.Dst);
      emit(Out, I);
      return;
    }
    case OpCode::ArithConstantI: {
      // Only i1 constants reach here (i64 ones are address arithmetic).
      BcInstr I{BcOp::ConstF};
      I.Imm = double(Op->attr("value").asInt());
      I.Dst = allocReg();
      define(Op->result(0), I.Dst);
      emit(Out, I);
      return;
    }
    case OpCode::VecBroadcast: {
      BcInstr I{BcOp::Copy};
      I.A = useOperand(Op->operand(0));
      I.Dst = allocReg();
      define(Op->result(0), I.Dst);
      emit(Out, I);
      return;
    }
    case OpCode::MemLoad:
    case OpCode::VecLoad:
    case OpCode::VecGather: {
      std::string Role = Op->attr(attrs::Role).asString();
      int32_t Index = int32_t(Op->attr(attrs::Index).asInt());
      BcInstr I{Role == "state"  ? BcOp::LoadState
                : Role == "ext"  ? BcOp::LoadExt
                                 : BcOp::LoadParam};
      I.Aux = Index;
      I.Dst = allocReg();
      define(Op->result(0), I.Dst);
      emit(Out, I);
      return;
    }
    case OpCode::MemStore:
    case OpCode::VecStore:
    case OpCode::VecScatter: {
      std::string Role = Op->attr(attrs::Role).asString();
      BcInstr I{Role == "state" ? BcOp::StoreState : BcOp::StoreExt};
      I.Aux = int32_t(Op->attr(attrs::Index).asInt());
      I.A = useOperand(Op->operand(0));
      emit(Out, I);
      return;
    }
    case OpCode::LutCoord: {
      BcInstr I{BcOp::LutCoord};
      I.Aux = int32_t(Op->attr("table").asInt());
      I.A = useOperand(Op->operand(0));
      I.Dst = allocReg();
      I.C = allocReg();
      define(Op->result(0), I.Dst);
      define(Op->result(1), I.C);
      emit(Out, I);
      return;
    }
    case OpCode::LutInterp: {
      Attribute Mode = Op->attr("interp");
      BcInstr I{Mode && Mode.asString() == "cubic" ? BcOp::LutInterpCubic
                                                   : BcOp::LutInterp};
      I.Aux = int32_t(Op->attr("table").asInt());
      I.Aux2 = int32_t(Op->attr("col").asInt());
      I.A = useOperand(Op->operand(0));
      I.B = useOperand(Op->operand(1));
      I.Dst = allocReg();
      define(Op->result(0), I.Dst);
      emit(Out, I);
      return;
    }
    case OpCode::ArithCmpF:
    case OpCode::ArithCmpI: {
      CmpPredicate Pred;
      bool Ok = parseCmpPredicate(Op->attr("predicate").asString(), Pred);
      assert(Ok && "invalid predicate");
      (void)Ok;
      BcOp Code = BcOp::CmpLT;
      switch (Pred) {
      case CmpPredicate::LT:
        Code = BcOp::CmpLT;
        break;
      case CmpPredicate::LE:
        Code = BcOp::CmpLE;
        break;
      case CmpPredicate::GT:
        Code = BcOp::CmpGT;
        break;
      case CmpPredicate::GE:
        Code = BcOp::CmpGE;
        break;
      case CmpPredicate::EQ:
        Code = BcOp::CmpEQ;
        break;
      case CmpPredicate::NE:
        Code = BcOp::CmpNE;
        break;
      }
      emitSimple(Op, Code, Out);
      return;
    }
    default:
      emitSimple(Op, mapSimpleOp(Op->opcode()), Out);
      return;
    }
  }

  /// Maps 1:1 pure ops.
  static BcOp mapSimpleOp(OpCode Code) {
    switch (Code) {
    case OpCode::ArithAddF:
      return BcOp::Add;
    case OpCode::ArithSubF:
      return BcOp::Sub;
    case OpCode::ArithMulF:
      return BcOp::Mul;
    case OpCode::ArithDivF:
      return BcOp::Div;
    case OpCode::ArithRemF:
      return BcOp::Rem;
    case OpCode::ArithNegF:
      return BcOp::Neg;
    case OpCode::ArithMinF:
      return BcOp::Min;
    case OpCode::ArithMaxF:
      return BcOp::Max;
    case OpCode::ArithSelect:
      return BcOp::Select;
    case OpCode::ArithAndI:
      return BcOp::And;
    case OpCode::ArithOrI:
      return BcOp::Or;
    case OpCode::ArithXOrI:
      return BcOp::Xor;
    case OpCode::MathExp:
      return BcOp::Exp;
    case OpCode::MathExpm1:
      return BcOp::Expm1;
    case OpCode::MathLog:
      return BcOp::Log;
    case OpCode::MathLog10:
      return BcOp::Log10;
    case OpCode::MathPow:
      return BcOp::Pow;
    case OpCode::MathSqrt:
      return BcOp::Sqrt;
    case OpCode::MathSin:
      return BcOp::Sin;
    case OpCode::MathCos:
      return BcOp::Cos;
    case OpCode::MathTan:
      return BcOp::Tan;
    case OpCode::MathTanh:
      return BcOp::Tanh;
    case OpCode::MathSinh:
      return BcOp::Sinh;
    case OpCode::MathCosh:
      return BcOp::Cosh;
    case OpCode::MathAtan:
      return BcOp::Atan;
    case OpCode::MathAsin:
      return BcOp::Asin;
    case OpCode::MathAcos:
      return BcOp::Acos;
    case OpCode::MathAbs:
      return BcOp::Abs;
    case OpCode::MathFloor:
      return BcOp::Floor;
    case OpCode::MathCeil:
      return BcOp::Ceil;
    default:
      limpet_unreachable("op not supported by the bytecode compiler");
    }
  }

  void emitSimple(Operation *Op, BcOp Code, std::vector<BcInstr> &Out) {
    BcInstr I{Code};
    assert(Op->numOperands() >= 1 && Op->numOperands() <= 3 &&
           "unexpected operand count");
    I.A = useOperand(Op->operand(0));
    if (Op->numOperands() > 1)
      I.B = useOperand(Op->operand(1));
    if (Op->numOperands() > 2)
      I.C = useOperand(Op->operand(2));
    I.Dst = allocReg();
    define(Op->result(0), I.Dst);
    emit(Out, I);
  }

  void computeCounts() {
    InstrCounts &C = P.Counts;
    using FC = vecmath::FlopCost;
    for (const BcInstr &I : P.Body) {
      switch (I.Op) {
      case BcOp::Exp:
      case BcOp::Expm1:
      case BcOp::Log:
      case BcOp::Log10:
      case BcOp::Pow:
      case BcOp::Sin:
      case BcOp::Cos:
      case BcOp::Tan:
      case BcOp::Tanh:
      case BcOp::Sinh:
      case BcOp::Cosh:
      case BcOp::Atan:
      case BcOp::Asin:
      case BcOp::Acos:
        ++P.MathOpsPerCell;
        break;
      case BcOp::LutInterp:
      case BcOp::LutInterpCubic:
        ++P.LutOpsPerCell;
        break;
      default:
        break;
      }
      switch (I.Op) {
      case BcOp::ConstF:
      case BcOp::Copy:
        break;
      case BcOp::LoadState:
      case BcOp::LoadExt:
      case BcOp::LoadParam:
        C.LoadBytesPerCell += 8;
        break;
      case BcOp::StoreState:
      case BcOp::StoreExt:
        C.StoreBytesPerCell += 8;
        break;
      case BcOp::Add:
      case BcOp::Sub:
      case BcOp::Mul:
      case BcOp::Neg:
      case BcOp::Min:
      case BcOp::Max:
      case BcOp::CmpLT:
      case BcOp::CmpLE:
      case BcOp::CmpGT:
      case BcOp::CmpGE:
      case BcOp::CmpEQ:
      case BcOp::CmpNE:
      case BcOp::And:
      case BcOp::Or:
      case BcOp::Xor:
      case BcOp::Select:
      case BcOp::Abs:
      case BcOp::Floor:
      case BcOp::Ceil:
      case BcOp::Sqrt:
        C.FlopsPerCell += 1;
        break;
      case BcOp::Div:
        C.FlopsPerCell += 4;
        break;
      case BcOp::Rem:
        C.FlopsPerCell += 8;
        break;
      case BcOp::Exp:
        C.FlopsPerCell += FC::Exp;
        break;
      case BcOp::Expm1:
        C.FlopsPerCell += FC::Expm1;
        break;
      case BcOp::Log:
        C.FlopsPerCell += FC::Log;
        break;
      case BcOp::Log10:
        C.FlopsPerCell += FC::Log10;
        break;
      case BcOp::Pow:
        C.FlopsPerCell += FC::Pow;
        break;
      case BcOp::Sin:
      case BcOp::Cos:
      case BcOp::Tan:
        C.FlopsPerCell += FC::Trig;
        break;
      case BcOp::Tanh:
        C.FlopsPerCell += FC::Tanh;
        break;
      case BcOp::Sinh:
      case BcOp::Cosh:
        C.FlopsPerCell += FC::SinhCosh;
        break;
      case BcOp::Atan:
        C.FlopsPerCell += FC::ATan;
        break;
      case BcOp::Asin:
      case BcOp::Acos:
        C.FlopsPerCell += FC::ASinCos;
        break;
      case BcOp::LutCoord:
        C.FlopsPerCell += 4;
        break;
      case BcOp::LutInterp:
        C.FlopsPerCell += 3;
        C.LoadBytesPerCell += 16;
        break;
      case BcOp::LutInterpCubic:
        C.FlopsPerCell += 12;
        C.LoadBytesPerCell += 32;
        break;
      }
    }
  }
};

} // namespace

BcProgram exec::compileToBytecode(const GeneratedKernel &K,
                                  Operation *Func) {
  telemetry::TraceSpan Span("bytecode", "compile");
  telemetry::ScopedTimerNs Timer("compile.bytecode.ns");
  BcProgram P = CompilerImpl(K, Func).run();
  telemetry::counter("compile.bytecode.programs").add(1);
  telemetry::counter("compile.bytecode.instrs")
      .add(P.Prologue.size() + P.Body.size());
  telemetry::counter("compile.bytecode.bytes")
      .add((P.Prologue.size() + P.Body.size()) * sizeof(BcInstr));
  return P;
}
