//===- NativeKernel.h - dlopen'd specialized kernel tier --------*- C++-*-===//
//
// The native kernel tier: a per-cell program compiled ahead of execution
// into a shared object (by compiler::KernelEmitter) and loaded here with
// dlopen. A NativeKernel wraps the loaded step entry point and presents
// the same step() contract as the Backend dispatch path, so CompiledModel
// can route computeStep through it transparently.
//
// Everything about this tier is best-effort: load() returns a recoverable
// Status on any dlopen/symbol/ABI mismatch, and callers fall back to the
// bytecode VM. A box without a working toolchain must behave exactly like
// one that never asked for the native tier.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EXEC_NATIVEKERNEL_H
#define LIMPET_EXEC_NATIVEKERNEL_H

#include "exec/Engine.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

namespace limpet {
namespace exec {

/// Which execution tier the compiler driver targets.
///  * VM: interpreted bytecode engines only (the default; no toolchain
///    dependency, bit-identical to every release so far).
///  * Native: emit + load a specialized kernel; warn-and-fall-back to the
///    VM when the toolchain is unavailable.
///  * Auto: try the native tier, fall back silently.
enum class EngineTier : uint8_t { VM, Native, Auto };

std::string_view engineTierName(EngineTier T);
std::optional<EngineTier> engineTierFromName(std::string_view Name);

/// C ABI shared with emitted kernels. KernelEmitter mirrors these structs
/// textually in every generated translation unit; any layout change here
/// must bump kNativeKernelAbiVersion (and with it kKernelEmitterVersion,
/// which keys the native cache).
struct NativeLutDesc {
  const double *Data;
  int64_t Rows;
  int64_t Cols;
  double Lo;
  double InvStep;
  double MaxPos;
  double MaxIdx;
};

struct NativeKernelArgs {
  double *State;
  double *const *Exts;
  const double *Params;
  int64_t Start;
  int64_t End;
  int64_t NumCells;
  double Dt;
  double T;
  const NativeLutDesc *Luts;
};

inline constexpr int32_t kNativeKernelAbiVersion = 1;

/// A loaded native kernel shared object. Holds the dlopen handle for the
/// object's lifetime; instances are shared between every CompiledModel
/// built from the same (source, config, toolchain) point via the
/// KernelEmitter registry.
class NativeKernel {
public:
  /// Loads \p SoPath and resolves + ABI-checks the kernel entry points.
  /// All failures (missing file, unresolved symbols, ABI skew) are
  /// recoverable.
  static Expected<std::shared_ptr<NativeKernel>>
  load(const std::string &SoPath, unsigned Width, bool FastMath,
       std::string Name);

  ~NativeKernel();
  NativeKernel(const NativeKernel &) = delete;
  NativeKernel &operator=(const NativeKernel &) = delete;

  const std::string &name() const { return Name; }
  unsigned width() const { return Width; }
  bool fastMath() const { return Fast; }

  /// False in sanitized builds, where dlclose is deliberately skipped (so
  /// ASan can still symbolize kernel frames). When handles are leaked,
  /// re-dlopening a path the process already loaded returns the original
  /// mapping even if the file on disk changed.
  static bool unloadsOnRelease();

  /// Runs the kernel over [Args.Start, Args.End), including the scalar
  /// tail — the emitted entry point reproduces Backend::dispatch's
  /// main-block/tail split internally. Mirrors Backend::step's chunk
  /// telemetry so native runs show up in the same roofline counters.
  void step(const BcProgram &P, const KernelArgs &Args) const;

private:
  using StepFn = void (*)(const NativeKernelArgs *);

  NativeKernel(void *Handle, StepFn Fn, unsigned Width, bool Fast,
               std::string Name)
      : Handle(Handle), Fn(Fn), Width(Width), Fast(Fast),
        Name(std::move(Name)) {}

  void *Handle = nullptr;
  StepFn Fn = nullptr;
  unsigned Width = 1;
  bool Fast = false;
  std::string Name;
};

} // namespace exec
} // namespace limpet

#endif // LIMPET_EXEC_NATIVEKERNEL_H
