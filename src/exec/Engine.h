//===- Engine.h - Scalar and vector bytecode engines ------------*- C++-*-===//
//
// Executes compiled kernel programs over a cell range.
//
//  * The scalar engine processes one cell per body execution and calls
//    libm — the stand-in for openCARP's baseline scalar C code.
//  * The vector engine processes W cells per body execution: every
//    register holds W lanes and every instruction's lane loop has a
//    compile-time trip count, which the host compiler turns into SIMD —
//    the stand-in for limpetMLIR's vector<Wxf64> native code. Math uses
//    the VecMath kernels (the SVML analogue).
//
// Both engines share the bytecode semantics, so vector-vs-scalar
// equivalence is testable on every model. They are exposed through the
// Backend interface (exec/Backend.h), which owns per-chunk dispatch —
// including routing cells left over after the last full block through the
// scalar backend (the vectorizer's epilogue loop) — and the chunk-level
// telemetry. runKernel below is a thin one-shot shim over
// tryResolveBackend.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EXEC_ENGINE_H
#define LIMPET_EXEC_ENGINE_H

#include "exec/Bytecode.h"
#include "runtime/Lut.h"
#include "support/Status.h"

#include <cstdint>
#include <vector>

namespace limpet {
namespace exec {

/// Everything a kernel invocation needs. The same struct serves scalar and
/// vector engines; Start/End select the cell chunk (thread-parallel runs
/// pass disjoint chunks).
struct KernelArgs {
  double *State = nullptr;
  std::vector<double *> Exts;
  const double *Params = nullptr;
  int64_t Start = 0;
  int64_t End = 0;
  int64_t NumCells = 0;
  double Dt = 0;
  double T = 0;
  const runtime::LutTableSet *Luts = nullptr;
};

/// The specialized template burns (SSE = 2, AVX2 = 4, AVX-512 = 8 lanes
/// of f64). These widths are registered on every host; the
/// BackendRegistry (exec/Backend.h) may advertise more — the
/// vector-length-agnostic interpreter covers widths beyond the burn on
/// hosts whose probe allows it.
inline constexpr unsigned SupportedWidths[] = {1, 2, 4, 8};

/// Whether the process-wide BackendRegistry has a backend for \p W.
bool isSupportedWidth(unsigned W);

/// Runs \p P over [Args.Start, Args.End). Width 1 selects the scalar
/// engine; wider widths the vector engine with that lane count.
/// \p FastMath selects the VecMath kernels over libm (the baseline
/// configuration uses libm; the limpetMLIR configuration uses VecMath).
/// Thin shim over tryResolveBackend(Width, FastMath)->step(...); an
/// unregistered width is a recoverable error. Callers that dispatch
/// repeatedly should resolve the backend once instead (CompiledModel
/// does).
Status runKernel(const BcProgram &P, const KernelArgs &Args, unsigned Width,
                 bool FastMath);

} // namespace exec
} // namespace limpet

#endif // LIMPET_EXEC_ENGINE_H
