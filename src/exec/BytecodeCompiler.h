//===- BytecodeCompiler.h - IR kernel to bytecode ----------------*- C++-*-===//
//
// Linearizes a generated kernel function (scalar or vectorized form) into
// a BcProgram. State/external accesses are recognized by their limpet.role
// attributes; leftover scalar address arithmetic is dropped (the engines
// re-derive addressing from the layout metadata). Registers are allocated
// with last-use reuse so the hot register file stays small.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EXEC_BYTECODECOMPILER_H
#define LIMPET_EXEC_BYTECODECOMPILER_H

#include "codegen/MLIRCodeGen.h"
#include "exec/Bytecode.h"

namespace limpet {
namespace exec {

/// Compiles \p Func (the scalar kernel or a vectorized clone from the same
/// GeneratedKernel) into a bytecode program.
BcProgram compileToBytecode(const codegen::GeneratedKernel &K,
                            ir::Operation *Func);

} // namespace exec
} // namespace limpet

#endif // LIMPET_EXEC_BYTECODECOMPILER_H
