//===- Backend.cpp --------------------------------------------------------===//

#include "exec/Backend.h"

#include "support/Telemetry.h"
#include "support/Trace.h"

#include <cassert>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::codegen;

void Backend::dispatch(const BcProgram &P, const KernelArgs &Args) const {
  int64_t W = int64_t(width());
  int64_t Main = Args.Start + (Args.End - Args.Start) / W * W;
  if (Main == Args.End) {
    runRange(P, Args);
    return;
  }
  // Ragged tail: per-chunk backend selection replaces the epilogue that
  // used to live inside the vector interpreter. The tail runs through the
  // scalar backend with the same math flavour, so scalar-vs-vector
  // equivalence holds cell-for-cell.
  KernelArgs Sub = Args;
  if (Main > Args.Start) {
    Sub.End = Main;
    runRange(P, Sub);
  }
  Sub.Start = Main;
  Sub.End = Args.End;
  // The scalar interpreter registers unconditionally on every host, in
  // both math flavours, so the tail backend always exists.
  const Backend *Tail = tryResolveBackend(1, fastMath());
  assert(Tail && "scalar backend missing from registry");
  Tail->runRange(P, Sub);
}

void Backend::step(const BcProgram &P, KernelArgs &Args) const {
  assert((P.Layout != StateLayout::AoSoA || P.AoSoAW >= 1) &&
         "AoSoA layout requires a block width");
  assert((width() == 1 || P.Layout != StateLayout::AoSoA ||
          Args.Start % int64_t(P.AoSoAW) == 0) &&
         "AoSoA vector chunks must start on a block boundary");
  if (Args.End <= Args.Start)
    return;
#if LIMPET_TELEMETRY_ENABLED
  // Chunk-granular accounting: one clock pair and a handful of
  // thread-local adds per invocation, amortized over the whole cell
  // range. The interpreter's inner loop is untouched; LUT/math/byte
  // totals are derived from the program's static per-cell counts. The
  // whole chunk (tail included) is accounted under this backend's width,
  // matching the configuration the caller selected.
  auto T0 = telemetry::Clock::now();
  dispatch(P, Args);
  uint64_t Ns = telemetry::nanosecondsSince(T0);
  telemetry::recordKernelChunk(Ns, Args.End - Args.Start, width(), fastMath(),
                               P.LutOpsPerCell, P.MathOpsPerCell,
                               P.Counts.LoadBytesPerCell,
                               P.Counts.StoreBytesPerCell);
  if (telemetry::TraceRecorder *R = telemetry::TraceRecorder::active())
    R->complete("kernel-chunk", "run", T0, T0 + std::chrono::nanoseconds(Ns));
#else
  dispatch(P, Args);
#endif
}
