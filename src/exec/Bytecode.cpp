//===- Bytecode.cpp -------------------------------------------------------===//

#include "exec/Bytecode.h"

#include "support/Casting.h"
#include "support/StringUtils.h"

using namespace limpet;
using namespace limpet::exec;

std::string_view exec::bcOpName(BcOp Op) {
  switch (Op) {
  case BcOp::ConstF:
    return "const";
  case BcOp::Copy:
    return "copy";
  case BcOp::LoadState:
    return "load.state";
  case BcOp::StoreState:
    return "store.state";
  case BcOp::LoadExt:
    return "load.ext";
  case BcOp::StoreExt:
    return "store.ext";
  case BcOp::LoadParam:
    return "load.param";
  case BcOp::Add:
    return "add";
  case BcOp::Sub:
    return "sub";
  case BcOp::Mul:
    return "mul";
  case BcOp::Div:
    return "div";
  case BcOp::Rem:
    return "rem";
  case BcOp::Neg:
    return "neg";
  case BcOp::Min:
    return "min";
  case BcOp::Max:
    return "max";
  case BcOp::CmpLT:
    return "cmp.lt";
  case BcOp::CmpLE:
    return "cmp.le";
  case BcOp::CmpGT:
    return "cmp.gt";
  case BcOp::CmpGE:
    return "cmp.ge";
  case BcOp::CmpEQ:
    return "cmp.eq";
  case BcOp::CmpNE:
    return "cmp.ne";
  case BcOp::And:
    return "and";
  case BcOp::Or:
    return "or";
  case BcOp::Xor:
    return "xor";
  case BcOp::Select:
    return "select";
  case BcOp::Exp:
    return "exp";
  case BcOp::Expm1:
    return "expm1";
  case BcOp::Log:
    return "log";
  case BcOp::Log10:
    return "log10";
  case BcOp::Sqrt:
    return "sqrt";
  case BcOp::Sin:
    return "sin";
  case BcOp::Cos:
    return "cos";
  case BcOp::Tan:
    return "tan";
  case BcOp::Tanh:
    return "tanh";
  case BcOp::Sinh:
    return "sinh";
  case BcOp::Cosh:
    return "cosh";
  case BcOp::Atan:
    return "atan";
  case BcOp::Asin:
    return "asin";
  case BcOp::Acos:
    return "acos";
  case BcOp::Abs:
    return "abs";
  case BcOp::Floor:
    return "floor";
  case BcOp::Ceil:
    return "ceil";
  case BcOp::Pow:
    return "pow";
  case BcOp::LutCoord:
    return "lut.coord";
  case BcOp::LutInterp:
    return "lut.interp";
  case BcOp::LutInterpCubic:
    return "lut.interp_cubic";
  }
  limpet_unreachable("invalid bytecode op");
}

static void printInstr(std::string &Out, const BcInstr &I) {
  Out += "  r" + std::to_string(I.Dst) + " = " + std::string(bcOpName(I.Op));
  switch (I.Op) {
  case BcOp::ConstF:
    Out += " " + formatDouble(I.Imm);
    break;
  case BcOp::LoadState:
  case BcOp::LoadExt:
  case BcOp::LoadParam:
    Out += " [" + std::to_string(I.Aux) + "]";
    break;
  case BcOp::StoreState:
  case BcOp::StoreExt:
    Out += " [" + std::to_string(I.Aux) + "], r" + std::to_string(I.A);
    break;
  case BcOp::LutCoord:
    Out += " table " + std::to_string(I.Aux) + ", r" + std::to_string(I.A) +
           " -> frac r" + std::to_string(I.C);
    break;
  case BcOp::LutInterp:
  case BcOp::LutInterpCubic:
    Out += " table " + std::to_string(I.Aux) + " col " +
           std::to_string(I.Aux2) + ", r" + std::to_string(I.A) + ", r" +
           std::to_string(I.B);
    break;
  case BcOp::Select:
    Out += " r" + std::to_string(I.A) + ", r" + std::to_string(I.B) + ", r" +
           std::to_string(I.C);
    break;
  case BcOp::Copy:
  case BcOp::Neg:
  case BcOp::Exp:
  case BcOp::Expm1:
  case BcOp::Log:
  case BcOp::Log10:
  case BcOp::Sqrt:
  case BcOp::Sin:
  case BcOp::Cos:
  case BcOp::Tan:
  case BcOp::Tanh:
  case BcOp::Sinh:
  case BcOp::Cosh:
  case BcOp::Atan:
  case BcOp::Asin:
  case BcOp::Acos:
  case BcOp::Abs:
  case BcOp::Floor:
  case BcOp::Ceil:
    Out += " r" + std::to_string(I.A);
    break;
  default:
    Out += " r" + std::to_string(I.A) + ", r" + std::to_string(I.B);
    break;
  }
  Out += "\n";
}

std::string BcProgram::str() const {
  std::string Out;
  Out += "program regs=" + std::to_string(NumRegs) +
         " layout=" + std::string(stateLayoutName(Layout)) +
         " numsv=" + std::to_string(NumSv) + "\n";
  Out += "prologue:\n";
  for (const BcInstr &I : Prologue)
    printInstr(Out, I);
  Out += "body:\n";
  for (const BcInstr &I : Body)
    printInstr(Out, I);
  return Out;
}
