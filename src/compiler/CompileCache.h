//===- CompileCache.h - Content-addressed compiled-model cache --*- C++-*-===//
//
// Caches compiled artifacts under a content hash of everything that can
// change the compile output: the EasyML source text, the full engine
// configuration, the pass pipeline string and the artifact format version.
// Any edit to any of those produces a different key, so invalidation is
// automatic — there is no staleness to manage.
//
// Two tiers:
//  * an in-process memory tier (serialized bytes, mutex-protected), which
//    makes repeated compiles of the same (model, config) in one run free;
//  * an optional on-disk tier under $LIMPET_CACHE_DIR, which makes *warm
//    process starts* skip codegen entirely (the paper's "compile once"
//    amortization, NMODL-style). Disk entries are ordinary artifact files,
//    written atomically; a corrupt or truncated file is counted, ignored
//    and overwritten by the next store.
//
// The disk tier is bounded: when $LIMPET_CACHE_MAX_BYTES (or the explicit
// override) is set, every disk store evicts least-recently-used entries —
// oldest mtime first — until the tier fits the budget. Concurrent writers
// are safe by construction: each store writes a uniquely named temp file
// and renames (writeFileAtomic), so the last rename wins with a complete
// file and a concurrent GC at worst deletes an entry the next compile
// recreates.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_COMPILER_COMPILECACHE_H
#define LIMPET_COMPILER_COMPILECACHE_H

#include "compiler/Artifact.h"

#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace limpet {
namespace compiler {

/// The cache key for compiling \p Source under \p Cfg: FNV-1a 64 chained
/// over the source text, every EngineConfig field (including the pipeline
/// string) and kArtifactFormatVersion.
uint64_t compileCacheKey(std::string_view Source,
                         const exec::EngineConfig &Cfg);

class CompileCache {
public:
  /// The process-wide cache (thread-safe).
  static CompileCache &global();

  /// Looks \p Key up in the memory tier, then (when a disk directory is
  /// configured) the disk tier; a disk hit is promoted into memory and
  /// reported through \p FromDisk when non-null.
  /// Telemetry: compile.cache.hit / compile.cache.disk_hit /
  /// compile.cache.miss / compile.cache.bad (unreadable disk entry).
  std::optional<Artifact> lookup(uint64_t Key, bool *FromDisk = nullptr);

  /// Stores \p A under \p Key in the memory tier and (when configured)
  /// the disk tier. Telemetry: compile.cache.store.
  void store(uint64_t Key, const Artifact &A);

  /// Drops every memory-tier entry (tests; disk entries are untouched).
  void clearMemory();

  /// Number of memory-tier entries.
  size_t memorySize();

  /// The disk tier directory: the LIMPET_CACHE_DIR environment variable,
  /// or the explicit override set by setDiskDir. Empty = disk tier off.
  std::string diskDir();

  /// Overrides (or, with "", disables) the disk directory for this
  /// process, taking precedence over the environment. Used by tests and
  /// by tools that take a --cache-dir flag.
  void setDiskDir(std::string Dir);

  /// The disk file path an entry for \p Key would use ("" when the disk
  /// tier is off).
  std::string diskPath(uint64_t Key);

  /// The disk-tier byte budget: the explicit override when set, else the
  /// LIMPET_CACHE_MAX_BYTES environment variable, else 0 (= unbounded).
  uint64_t diskBudget();

  /// Overrides the byte budget for this process (tests, --cache-gc);
  /// nullopt returns control to the environment variable.
  void setDiskBudget(std::optional<uint64_t> Budget);

  /// What one garbage-collection pass over the disk tier did.
  struct GcStats {
    uint64_t BytesBefore = 0; ///< .lmpa bytes found in the directory
    uint64_t BytesAfter = 0;  ///< bytes remaining after eviction
    size_t FilesRemoved = 0;
  };

  /// Evicts least-recently-used disk entries (oldest mtime first) until
  /// the tier fits \p MaxBytes (0 = no limit, a no-op scan). Runs
  /// automatically after each disk store when a budget is configured.
  /// Telemetry: compile.cache.evict per removed file.
  GcStats gcDiskTier(uint64_t MaxBytes);

private:
  std::mutex Mu;
  std::unordered_map<uint64_t, std::string> Memory; ///< serialized bytes
  std::optional<std::string> DiskOverride;
  std::optional<uint64_t> BudgetOverride;
};

} // namespace compiler
} // namespace limpet

#endif // LIMPET_COMPILER_COMPILECACHE_H
