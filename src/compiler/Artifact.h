//===- Artifact.h - Compiled-model artifact serialization -------*- C++-*-===//
//
// A compiled artifact is everything the runtime needs to execute a model
// without running any codegen stage: the register bytecode program plus
// the baked (default-parameter) LUT tables, tagged with the engine
// configuration, pass pipeline and a content hash of the model source.
//
// The format is versioned and byte-exact: doubles are stored as their
// IEEE-754 bit patterns, so serialize -> deserialize -> simulate is
// bit-identical to the in-memory compile. A FNV-1a checksum over the
// payload detects truncated or corrupted cache files; deserialization
// failures are recoverable Status errors, and the compile cache falls back
// to a clean recompile.
//
// NMODL and similar production DSL compilers persist generated kernels the
// same way; this is the half of the paper's "compile once, simulate many"
// story that makes warm runs skip codegen entirely.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_COMPILER_ARTIFACT_H
#define LIMPET_COMPILER_ARTIFACT_H

#include "exec/Bytecode.h"
#include "exec/CompiledModel.h"
#include "runtime/Lut.h"
#include "support/Status.h"

#include <cstdint>
#include <string>

namespace limpet {
namespace compiler {

/// Bumped whenever the serialized layout changes; a mismatch is a cache
/// miss, never a misparse.
inline constexpr uint32_t kArtifactFormatVersion = 1;

/// A deserialized (or to-be-serialized) compiled artifact.
struct Artifact {
  uint32_t FormatVersion = kArtifactFormatVersion;
  std::string ModelName;
  /// FNV-1a 64 of the EasyML source the artifact was compiled from; used
  /// to reject loading an artifact against a different model text.
  uint64_t SourceHash = 0;
  /// The configuration the program was compiled under (the pipeline
  /// string rides in Config.PassPipeline).
  exec::EngineConfig Config;
  exec::BcProgram Program;
  /// LUT tables baked at default parameters. Loading installs these
  /// directly; parameter changes rebuild from the (re-analyzed) plan.
  runtime::LutTableSet Luts;
};

/// FNV-1a 64-bit over \p Bytes (the repo's content hash; no crypto deps).
uint64_t fnv1a64(std::string_view Bytes, uint64_t Seed = 0xcbf29ce484222325ull);

/// Serializes \p A into a self-contained byte string (header, checksum,
/// payload).
std::string serializeArtifact(const Artifact &A);

/// Parses \p Bytes. Any structural problem — bad magic, version mismatch,
/// checksum failure, truncation — is a recoverable error.
Expected<Artifact> deserializeArtifact(std::string_view Bytes);

/// Writes \p A to \p Path atomically (temp file + rename), so a crashed
/// writer never leaves a half-written cache entry behind.
Status writeArtifactFile(const Artifact &A, const std::string &Path);

/// Reads and parses an artifact file.
Expected<Artifact> readArtifactFile(const std::string &Path);

/// Field-by-field equality of two programs (used by the round-trip tests;
/// BcInstr may contain padding, so memcmp is not reliable).
bool programsIdentical(const exec::BcProgram &A, const exec::BcProgram &B);

/// Bit-exact equality of two LUT table sets.
bool lutsIdentical(const runtime::LutTableSet &A,
                   const runtime::LutTableSet &B);

} // namespace compiler
} // namespace limpet

#endif // LIMPET_COMPILER_ARTIFACT_H
