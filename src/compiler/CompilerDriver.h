//===- CompilerDriver.h - Staged model compilation driver -------*- C++-*-===//
//
// Reifies the compile pipeline as an explicit sequence of named stages
//
//   frontend -> preprocess -> integrator -> lut-analysis ->
//   emit-ir -> opt -> [vectorize -> opt] -> emit-bytecode
//
// mirroring how MLIR-based compilers (and the paper's limpetMLIR) expose
// their lowering as inspectable, re-orderable passes. Each stage returns a
// recoverable Status instead of asserting, is wrapped in a telemetry span
// and a per-stage wall-time counter (compile.stage.<name>.{ns,count}), and
// can snapshot its output IR (--print-ir-after=<stage> in limpetc).
//
// The driver is also the cache integration point: compiles are keyed by
// content (source x config x pipeline x format version) and cache hits
// re-run only the cheap AST stages — the four codegen stages (emit-ir,
// opt, vectorize, emit-bytecode) are skipped entirely, which is what makes
// warm suite runs compile-free.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_COMPILER_COMPILERDRIVER_H
#define LIMPET_COMPILER_COMPILERDRIVER_H

#include "compiler/Artifact.h"
#include "compiler/Autotuner.h"
#include "compiler/CompileCache.h"
#include "exec/CompiledModel.h"
#include "exec/NativeKernel.h"
#include "models/Registry.h"
#include "support/Status.h"

#include <optional>
#include <string>
#include <vector>

namespace limpet {
namespace compiler {

/// The ordered stages of one compile. Opt appears once in the enum but may
/// run twice (scalar function, then the vectorized clone).
enum class Stage : unsigned {
  Frontend,
  Preprocess,
  Integrator,
  LutAnalysis,
  EmitIR,
  Opt,
  Vectorize,
  EmitBytecode,
};

inline constexpr unsigned kNumStages = 8;

/// "frontend", "preprocess", "integrator", "lut-analysis", "emit-ir",
/// "opt", "vectorize", "emit-bytecode".
std::string_view stageName(Stage S);

/// Inverse of stageName; nullopt for unknown names.
std::optional<Stage> stageFromName(std::string_view Name);

/// Comma-separated list of all stage names (for error messages / --help).
std::string stageNameList();

/// True for the stages a cache hit skips (everything from emit-ir on).
bool isCodegenStage(Stage S);

struct DriverOptions {
  exec::EngineConfig Config;
  /// Which execution tier to attach (exec/NativeKernel.h). VM keeps the
  /// interpreted engines; Native emits + loads a specialized kernel and
  /// reports (but survives) toolchain failures; Auto falls back silently.
  exec::EngineTier Tier = exec::EngineTier::VM;
  /// Consult/populate the content-addressed compile cache.
  bool UseCache = true;
  /// For auto-width configs with no persisted TuningRecord: benchmark
  /// every registry point (compiler/Autotuner.h) and persist the result
  /// instead of falling back to the capability heuristic.
  bool Autotune = false;
  /// Capture an output snapshot after every stage (--print-ir-after-all).
  bool SnapshotAll = false;
  /// Capture snapshots after just these stages (--print-ir-after=...).
  std::vector<Stage> SnapshotStages;
};

/// One executed stage: which, how long, and (when requested) the textual
/// form of its output — AST expressions for the front half, IR for
/// emit-ir/opt/vectorize, disassembled bytecode for emit-bytecode.
struct StageRecord {
  Stage S = Stage::Frontend;
  uint64_t Ns = 0;
  std::string Snapshot; ///< empty unless requested
};

/// Outcome of one driver compile.
struct CompileResult {
  std::string ModelName;
  std::optional<exec::CompiledModel> Model;
  /// Why Model is absent; ok when it is present.
  Status Err;
  /// The content-address of this compile.
  uint64_t CacheKey = 0;
  uint64_t SourceHash = 0;
  bool CacheHit = false; ///< served from cache (either tier)
  bool DiskHit = false;  ///< specifically the on-disk tier
  uint64_t TotalNs = 0;
  std::vector<StageRecord> Stages;

  // Native-tier outcome (all false/ok when DriverOptions::Tier is VM).
  bool NativeAttached = false; ///< Model dispatches to a native kernel
  bool NativeCacheHit = false; ///< kernel came from a cache tier (no cc)
  bool NativeDiskHit = false;  ///< specifically the on-disk .so tier
  uint64_t NativeKey = 0;      ///< native cache key (0 before keying)
  /// Why the native tier is absent when it was requested; ok otherwise.
  /// Always recoverable — the model still runs on the VM.
  Status NativeErr;

  // Auto-width outcome (meaningful only when the driver's config had
  // Width = kWidthAuto; AutoSelected stays false otherwise).
  bool AutoSelected = false;
  TuneSource AutoSource = TuneSource::Heuristic;
  std::string AutoPointName; ///< e.g. "aosoa/w8/vm"
  double AutoRate = 0;       ///< measured cell-steps/s (0 for heuristic)
  uint64_t TuneKey = 0;      ///< the tuning-record key consulted

  explicit operator bool() const { return Model.has_value(); }
};

class CompilerDriver {
public:
  explicit CompilerDriver(DriverOptions Opts = {}) : Opts(std::move(Opts)) {}

  const DriverOptions &options() const { return Opts; }

  /// Compiles \p Source (model \p Name) under the driver's configuration,
  /// consulting the cache first. Never throws or aborts on bad input: all
  /// failures land in CompileResult::Err.
  CompileResult compileSource(std::string_view Name, std::string_view Source);

  /// compileSource over a registry entry.
  CompileResult compileEntry(const models::ModelEntry &Entry);

  /// Compiles \p Entries concurrently over the global thread pool
  /// (\p Threads = 0 means the pool's full width). Results are positional.
  std::vector<CompileResult>
  compileSuite(const std::vector<const models::ModelEntry *> &Entries,
               unsigned Threads = 0);

  /// Assembles a runnable model from a deserialized artifact plus the
  /// model source it claims to come from. Verifies the source hash,
  /// re-runs the AST stages (the runtime needs ModelInfo and the LUT plan
  /// for parameter rebuilds) and skips all codegen stages. The artifact's
  /// embedded config wins over the driver's.
  CompileResult loadArtifact(const Artifact &A, std::string_view Name,
                             std::string_view Source);

  /// Packages a successful compile for serialization / caching.
  static Artifact makeArtifact(const exec::CompiledModel &M,
                               std::string_view Name, uint64_t SourceHash);

private:
  /// The auto-width path: resolve the configuration (forced / record /
  /// tuned / heuristic), then compile under it with a sub-driver.
  CompileResult compileAuto(std::string_view Name, std::string_view Source);
  CompileResult compileCold(std::string_view Name, std::string_view Source);
  /// Warm path shared by cache hits and explicit artifact loads.
  CompileResult assembleFromArtifact(const Artifact &A, std::string_view Name,
                                     std::string_view Source);
  /// Attaches the native kernel tier to a successful compile when the
  /// driver targets it; failures are recorded, never fatal.
  void attachNativeTier(CompileResult &R);
  bool wantSnapshot(Stage S) const;

  DriverOptions Opts;
};

} // namespace compiler
} // namespace limpet

#endif // LIMPET_COMPILER_COMPILERDRIVER_H
