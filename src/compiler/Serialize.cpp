//===- Serialize.cpp ------------------------------------------------------===//

#include "compiler/Serialize.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

using namespace limpet;
using namespace limpet::compiler;

static std::string errnoText() {
  int E = errno;
  return E ? std::string(": ") + std::strerror(E) : std::string();
}

Status compiler::writeFileAtomic(std::string_view Bytes,
                                 const std::string &Path) {
  // One temp name per (process, call): two processes — or two threads —
  // racing to publish the same path each write their own temp file, and
  // whichever renames last wins with a complete file either way.
  static std::atomic<uint64_t> Serial{0};
#ifdef _WIN32
  long Pid = _getpid();
#else
  long Pid = long(getpid());
#endif
  std::string Tmp = Path + ".tmp." + std::to_string(Pid) + "." +
                    std::to_string(Serial.fetch_add(1));
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return Status::error("cannot open '" + Tmp + "' for writing" +
                           errnoText());
    Out.write(Bytes.data(), std::streamsize(Bytes.size()));
    Out.flush();
    if (!Out) {
      Status S = Status::error("short write to '" + Tmp + "'" + errnoText());
      Out.close();
      std::remove(Tmp.c_str());
      return S;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Status S = Status::error("cannot rename '" + Tmp + "' to '" + Path +
                             "'" + errnoText());
    std::remove(Tmp.c_str());
    return S;
  }
  return Status::success();
}

Status compiler::readFileBytes(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Status::error("cannot read '" + Path + "'" + errnoText());
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return Status::success();
}
