//===- Serialize.cpp ------------------------------------------------------===//

#include "compiler/Serialize.h"

#include "support/FailPoint.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#ifdef _WIN32
#include <process.h>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

using namespace limpet;
using namespace limpet::compiler;

static std::string errnoText() {
  int E = errno;
  return E ? std::string(": ") + std::strerror(E) : std::string();
}

/// LIMPET_NO_FSYNC=1 skips the fsync of both the temp file and its
/// containing directory (and the daemon journal's per-append fsync).
/// This is an explicit durability/speed trade for throwaway runs (CI
/// sandboxes, tmpfs scratch dirs, benchmark loops that checkpoint
/// thousands of times): without it every checkpoint, journal append and
/// cache write pays two storage barriers. With it, a power loss can
/// leave the published file empty or the rename unrecorded — never a
/// torn file, since the rename itself stays atomic.
bool compiler::durableFsyncEnabled() {
  static const bool Enabled = [] {
    const char *V = std::getenv("LIMPET_NO_FSYNC");
    return !(V && V[0] == '1' && V[1] == '\0');
  }();
  return Enabled;
}

#ifndef _WIN32
static bool fsyncDisabled() { return !durableFsyncEnabled(); }

/// Best-effort fsync of the directory containing \p Path, so the rename
/// that published a file is itself durable. Failures are ignored: some
/// filesystems refuse directory fsync, and the file data is already safe.
static void fsyncParentDir(const std::string &Path) {
  if (fsyncDisabled())
    return;
  size_t Slash = Path.find_last_of('/');
  std::string Dir = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (Dir.empty())
    Dir = "/";
  int Fd = ::open(Dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (Fd < 0)
    return;
  ::fsync(Fd);
  ::close(Fd);
}
#endif

Status compiler::writeFileAtomic(std::string_view Bytes,
                                 const std::string &Path) {
  // One temp name per (process, call): two processes — or two threads —
  // racing to publish the same path each write their own temp file, and
  // whichever renames last wins with a complete file either way.
  static std::atomic<uint64_t> Serial{0};
#ifdef _WIN32
  long Pid = _getpid();
#else
  long Pid = long(getpid());
#endif
  std::string Tmp = Path + ".tmp." + std::to_string(Pid) + "." +
                    std::to_string(Serial.fetch_add(1));
#ifdef _WIN32
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return Status::error("cannot open '" + Tmp + "' for writing" +
                           errnoText());
    if (support::failPoint("write-enospc")) {
      Out.close();
      std::remove(Tmp.c_str());
      return Status::error("short write to '" + Tmp +
                           "': no space left on device (failpoint)");
    }
    Out.write(Bytes.data(), std::streamsize(Bytes.size()));
    Out.flush();
    if (!Out) {
      Status S = Status::error("short write to '" + Tmp + "'" + errnoText());
      Out.close();
      std::remove(Tmp.c_str());
      return S;
    }
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Status S = Status::error("cannot rename '" + Tmp + "' to '" + Path +
                             "'" + errnoText());
    std::remove(Tmp.c_str());
    return S;
  }
  return Status::success();
#else
  // POSIX path: write, fsync the file *before* the rename (so the rename
  // never publishes a name whose data is still only in the page cache),
  // rename, then fsync the containing directory (so the rename itself
  // survives a power cut). LIMPET_NO_FSYNC=1 skips both barriers — see
  // fsyncDisabled() above for when that trade is acceptable.
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (Fd < 0)
    return Status::error("cannot open '" + Tmp + "' for writing" +
                         errnoText());
  // The fail point sits where a real ENOSPC lands: inside the write loop,
  // after the temp file exists — so it proves the cleanup path removes
  // the partial temp and the caller sees a recoverable Status.
  if (support::failPoint("write-enospc")) {
    errno = ENOSPC;
    Status S = Status::error("short write to '" + Tmp + "'" + errnoText());
    ::close(Fd);
    std::remove(Tmp.c_str());
    return S;
  }
  const char *P = Bytes.data();
  size_t Left = Bytes.size();
  while (Left > 0) {
    ssize_t N = ::write(Fd, P, Left);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Status S = Status::error("short write to '" + Tmp + "'" + errnoText());
      ::close(Fd);
      std::remove(Tmp.c_str());
      return S;
    }
    P += N;
    Left -= size_t(N);
  }
  if (!fsyncDisabled() && ::fsync(Fd) != 0) {
    Status S = Status::error("cannot fsync '" + Tmp + "'" + errnoText());
    ::close(Fd);
    std::remove(Tmp.c_str());
    return S;
  }
  if (::close(Fd) != 0) {
    Status S = Status::error("cannot close '" + Tmp + "'" + errnoText());
    std::remove(Tmp.c_str());
    return S;
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Status S = Status::error("cannot rename '" + Tmp + "' to '" + Path +
                             "'" + errnoText());
    std::remove(Tmp.c_str());
    return S;
  }
  fsyncParentDir(Path);
  return Status::success();
#endif
}

Status compiler::readFileBytes(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return Status::error("cannot read '" + Path + "'" + errnoText());
  std::ostringstream Ss;
  Ss << In.rdbuf();
  Out = Ss.str();
  return Status::success();
}
