//===- Autotuner.h - Per-model execution-point autotuning -------*- C++-*-===//
//
// Turns the paper's Fig 5 static width table into a measured choice: for
// one model, benchmark every selectable (layout × width × engine) point
// the BackendRegistry advertises, remember the winner in a versioned,
// checksummed TuningRecord persisted next to the compile cache
// ($LIMPET_CACHE_DIR/<key>.tune), and let later runs select it with zero
// benchmarks and zero codegen (the candidate compiles also populate the
// artifact cache).
//
// The math flavour is deliberately NOT a tuned axis: swapping VecMath for
// libm changes results, and an autotuner must never silently change
// numerics. Every candidate point inherits the base configuration's
// FastMath flag, so in exact mode all selectable points are bit-identical
// — which is also what makes the selection safe to change between runs.
//
// Selection precedence for an auto-width compile (CompilerDriver):
//
//   LIMPET_TUNE_FORCE=<point>   deterministic override (tests, bisection)
//   persisted TuningRecord       key = source × base config × registry
//                                fingerprint × tuner/artifact versions
//   Autotuner (when requested)   measure, persist, select
//   capability heuristic         widest profitable width from CpuCaps
//
// Corrupt, truncated or stale records (different machine class, older
// tuner) are counted, ignored and overwritten by the next tune — the same
// recoverability contract as the compile cache.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_COMPILER_AUTOTUNER_H
#define LIMPET_COMPILER_AUTOTUNER_H

#include "exec/CompiledModel.h"
#include "support/Status.h"

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace limpet {
namespace compiler {

/// Bumped whenever the record format, the candidate enumeration or the
/// timing protocol changes; old records become stale by key.
inline constexpr uint32_t kTunerVersion = 1;

/// One selectable execution point: the axes the tuner may choose freely
/// without changing results.
struct TunePoint {
  codegen::StateLayout Layout = codegen::StateLayout::AoS;
  unsigned Width = 1;
  exec::EngineTier Tier = exec::EngineTier::VM; ///< VM or Native only

  /// Canonical spelling, e.g. "aosoa/w8/vm" or "aos/w1/native". The
  /// accepted LIMPET_TUNE_FORCE syntax.
  std::string name() const;
  static std::optional<TunePoint> fromName(std::string_view Name);

  bool operator==(const TunePoint &) const = default;
};

/// Where an auto-width selection came from.
enum class TuneSource : uint8_t { Forced, Record, Tuned, Heuristic };

std::string_view tuneSourceName(TuneSource S);

/// One measured candidate (point name → cell-steps/s).
struct TuneMeasurement {
  std::string Point;
  double CellStepsPerSec = 0;
};

/// The persisted result of tuning one model on one machine class.
struct TuningRecord {
  uint64_t TuneKey = 0;             ///< the key it is stored under
  uint64_t RegistryFingerprint = 0; ///< exec::BackendRegistry fingerprint
  std::string ModelName;
  TunePoint Best;
  double BestRate = 0; ///< cell-steps/s of the winning point
  std::vector<TuneMeasurement> Measurements;

  /// "LMPT"-framed, FNV-1a-checksummed little-endian bytes.
  std::string serialize() const;
  /// Rejects bad magic, version skew, truncation and checksum mismatches
  /// with a recoverable error.
  static std::optional<TuningRecord> deserialize(std::string_view Bytes,
                                                 std::string *Error = nullptr);
};

/// The tuning-record key: FNV-1a chained over the model source, every
/// non-tuned EngineConfig field (math flavour, LUT flags, pass pipeline),
/// whether the native tier may be selected, the registry fingerprint and
/// the tuner + artifact format versions. Tuned axes (width, layout) are
/// deliberately absent — they are the record's *output*.
uint64_t tuneKey(std::string_view Source, const exec::EngineConfig &BaseCfg,
                 bool AllowNative, uint64_t RegistryFingerprint);

/// $LIMPET_CACHE_DIR/<key>.tune, or "" when the cache disk tier is off
/// (records are then process-lifetime only).
std::string tuneRecordPath(uint64_t Key);

/// Loads and validates the record for \p Key: checksum, version, key
/// match and registry-fingerprint match. Corrupt records count
/// tune.record.corrupt; mismatched ones tune.record.stale; both read as
/// nullopt (callers fall back to tuning or the heuristic).
std::optional<TuningRecord> readTuningRecord(uint64_t Key);

/// Atomically persists \p R at tuneRecordPath(R.TuneKey); a disabled disk
/// tier is a successful no-op (false only on a real write error).
bool writeTuningRecord(const TuningRecord &R);

/// A resolved auto-width selection.
struct AutoSelection {
  exec::EngineConfig Config; ///< concrete (never auto-width) configuration
  exec::EngineTier Tier = exec::EngineTier::VM;
  TunePoint Point;
  TuneSource Source = TuneSource::Heuristic;
  double Rate = 0;      ///< measured cell-steps/s (0 for heuristic picks)
  uint64_t TuneKey = 0; ///< the record key consulted
  Status Err;           ///< set when selection failed (bad forced point)

  explicit operator bool() const { return Err.isOk(); }
};

/// Benchmarks one model at every selectable registry point.
class Autotuner {
public:
  /// Timing protocol: short calibrated windows. Cells / window / repeats
  /// come from LIMPET_TUNE_CELLS (default 256), LIMPET_TUNE_WINDOW_MS
  /// (default 25) and LIMPET_TUNE_REPEATS (default 3). Measurement runs
  /// are serialized process-wide so concurrent suite compiles do not
  /// perturb each other's timings.
  struct Options {
    int64_t Cells = 0;   ///< 0 = environment / default
    double WindowMs = 0; ///< 0 = environment / default
    int Repeats = 0;     ///< 0 = environment / default
  };

  Autotuner() = default;
  explicit Autotuner(Options O) : Opts(O) {}

  /// Measures every candidate (layout × registry width × engine) point
  /// for \p Source under \p BaseCfg's math/LUT/pipeline flags, native
  /// candidates only when \p AllowNative (and only where the native
  /// kernel actually attaches). Returns the populated record or an error
  /// when no candidate point could be compiled and measured.
  Expected<TuningRecord> tune(std::string_view Name, std::string_view Source,
                              const exec::EngineConfig &BaseCfg,
                              bool AllowNative);

private:
  Options Opts;
};

/// Resolves an auto-width configuration for (Name, Source): forced point,
/// else persisted record, else (when \p RunTuner) a fresh tune persisted
/// for next time, else the capability heuristic. \p Tier is the driver's
/// engine tier: VM restricts selection to VM points; Native/Auto allows
/// tuned native points and is folded into the record key.
AutoSelection selectAutoConfig(std::string_view Name, std::string_view Source,
                               const exec::EngineConfig &BaseCfg,
                               exec::EngineTier Tier, bool RunTuner);

/// The capability-based fallback: the widest profitable width for the
/// probed host (two full native vectors in flight, clamped to the
/// specialized burns), AoSoA when vectorized. Exposed for tests.
TunePoint heuristicPoint(exec::EngineTier Tier);

} // namespace compiler
} // namespace limpet

#endif // LIMPET_COMPILER_AUTOTUNER_H
