//===- Serialize.h - Shared byte-level serialization helpers ----*- C++-*-===//
//
// The little-endian byte writer/reader pair behind every durable format in
// the repo: compiled-model artifacts (compiler/Artifact) and simulation
// checkpoints (sim/Checkpoint). Doubles are stored as IEEE-754 bit
// patterns so round trips are bit-exact (NaN payloads, -0.0 and all), and
// the reader saturates into a failed state on any out-of-bounds access so
// truncated or corrupted inputs parse to a recoverable error, never UB.
//
// writeFileAtomic is the one durable-write primitive: serialize to a
// uniquely named temp file in the target directory, fsync it, rename over
// the destination, then fsync the containing directory so the rename
// itself is durable. A crashed writer never leaves a half-written file
// behind, and concurrent writers of the same path are safe — each uses
// its own temp name and the last rename wins with a complete file either
// way. LIMPET_NO_FSYNC=1 skips both barriers for throwaway runs (see
// Serialize.cpp).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_COMPILER_SERIALIZE_H
#define LIMPET_COMPILER_SERIALIZE_H

#include "support/Status.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace limpet {
namespace compiler {

/// Append-only little-endian byte sink.
class ByteWriter {
public:
  std::string Out;

  void u8(uint8_t V) { Out.push_back(char(V)); }
  void u16(uint16_t V) { raw(&V, sizeof V); }
  void u32(uint32_t V) { raw(&V, sizeof V); }
  void u64(uint64_t V) { raw(&V, sizeof V); }
  void i32(int32_t V) { raw(&V, sizeof V); }
  void i64(int64_t V) { raw(&V, sizeof V); }
  void f64(double V) {
    // Bit pattern, not text: round-trips NaNs, -0.0 and every payload bit.
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof Bits);
    u64(Bits);
  }
  void str(std::string_view S) {
    u32(uint32_t(S.size()));
    Out.append(S.data(), S.size());
  }

private:
  void raw(const void *P, size_t N) {
    Out.append(reinterpret_cast<const char *>(P), N);
  }
};

/// Bounds-checked reader over a byte string. Any read past the end sets
/// the failed flag and returns zeros; callers check failed() once at the
/// end (or before trusting a length they are about to allocate from).
class ByteReader {
public:
  ByteReader(std::string_view Bytes) : Bytes(Bytes) {}

  bool failed() const { return Failed; }
  size_t remaining() const { return Bytes.size() - Pos; }

  uint8_t u8() {
    uint8_t V = 0;
    raw(&V, sizeof V);
    return V;
  }
  uint16_t u16() {
    uint16_t V = 0;
    raw(&V, sizeof V);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    raw(&V, sizeof V);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    raw(&V, sizeof V);
    return V;
  }
  int32_t i32() {
    int32_t V = 0;
    raw(&V, sizeof V);
    return V;
  }
  int64_t i64() {
    int64_t V = 0;
    raw(&V, sizeof V);
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof V);
    return V;
  }
  std::string str() {
    uint32_t N = u32();
    if (Failed || N > remaining()) {
      Failed = true;
      return "";
    }
    std::string S(Bytes.substr(Pos, N));
    Pos += N;
    return S;
  }

private:
  void raw(void *P, size_t N) {
    if (Failed || N > remaining()) {
      Failed = true;
      return;
    }
    std::memcpy(P, Bytes.data() + Pos, N);
    Pos += N;
  }

  std::string_view Bytes;
  size_t Pos = 0;
  bool Failed = false;
};

/// Whether durable writes fsync their data and directory entries. True
/// unless LIMPET_NO_FSYNC=1 is set in the environment (checked once, at
/// first use) — the escape hatch for throwaway runs where the two storage
/// barriers per write are pure overhead. Shared by writeFileAtomic and
/// the daemon's job journal so one knob governs every durability point.
bool durableFsyncEnabled();

/// Writes \p Bytes to \p Path atomically: a uniquely named temp file
/// (per process and call, so concurrent writers never clobber each
/// other's partial output), fsync, rename, then an fsync of the
/// containing directory. Errors carry errno text.
Status writeFileAtomic(std::string_view Bytes, const std::string &Path);

/// Reads a whole file into \p Out; errors carry errno text.
Status readFileBytes(const std::string &Path, std::string &Out);

} // namespace compiler
} // namespace limpet

#endif // LIMPET_COMPILER_SERIALIZE_H
