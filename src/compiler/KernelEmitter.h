//===- KernelEmitter.h - Bytecode -> native shared object -------*- C++-*-===//
//
// The compile side of the native kernel tier (NMODL-style source-to-source
// specialization): lowers a compiled model's bytecode to a self-contained
// C++ translation unit specialized for its (layout x width x fastMath)
// point — constant register indices, constant lane counts, inlined state
// addressing and LUT interpolation — shells out to the system compiler,
// and dlopens the result as an exec::NativeKernel.
//
// Results are content-addressed: the native key extends the model's
// compile-cache key with the emitter version and the toolchain identity
// (resolved compiler path + version banner + flag string), so a warm run
// never invokes cc, and upgrading the compiler or the emitter invalidates
// exactly the kernels it must. Shared objects are cached next to the
// artifact cache in LIMPET_CACHE_DIR and shared in-process through a
// loaded-kernel registry.
//
// Fallback ladder (every rung recoverable, none fatal):
//   in-process registry -> disk .so cache -> emit + cc + dlopen -> VM.
//
// Env knobs:
//   LIMPET_NATIVE_CC       override the compiler binary
//   LIMPET_NATIVE_CXXFLAGS override the flag string (defaults to the
//                          flags this binary was built with)
//   LIMPET_NATIVE_KEEP_TU  =1 keeps the temp dir (TU + cc stderr) for
//                          debugging and symbolized sanitizer reports
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_COMPILER_KERNELEMITTER_H
#define LIMPET_COMPILER_KERNELEMITTER_H

#include "exec/CompiledModel.h"
#include "exec/NativeKernel.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

namespace limpet {
namespace compiler {

/// Bump on any change to the emitted source shape or the kernel C ABI:
/// stale cached .so files must miss, not load.
inline constexpr uint32_t kKernelEmitterVersion = 1;

/// The toolchain a native kernel is compiled with; part of its cache key.
struct NativeToolchain {
  /// Compiler binary ($LIMPET_NATIVE_CC, else the compiler this binary
  /// was built with).
  std::string Compiler;
  /// First line of `Compiler --version` — distinguishes upgrades behind a
  /// stable path.
  std::string Identity;
  /// Flag string the TU is compiled with (host build flags minus
  /// sanitizers, plus -fPIC -shared).
  std::string Flags;
};

/// Probes the toolchain (memoized per compiler path for the process).
/// Recoverable error when no compiler is runnable.
Expected<NativeToolchain> nativeToolchain();

/// Content-address of a native kernel: the model's compile-cache key
/// extended with the emitter version and toolchain identity.
uint64_t nativeKernelKey(uint64_t CompileKey, uint32_t EmitterVersion,
                         const NativeToolchain &TC);

/// Renders the specialized translation unit for \p M. Pure; exposed for
/// tests and --emit-native-tu style debugging.
std::string emitKernelSource(const exec::CompiledModel &M,
                             std::string_view ModelName, uint64_t Key);

/// Outcome of a native-tier attach attempt.
struct NativeAttachResult {
  std::shared_ptr<exec::NativeKernel> Kernel;
  uint64_t Key = 0;
  /// Served from the in-process loaded-kernel registry.
  bool MemoryHit = false;
  /// Loaded from the on-disk .so cache (no cc invocation).
  bool DiskHit = false;
  /// Why Kernel is null; always recoverable.
  Status Err = Status::success();

  explicit operator bool() const { return Kernel != nullptr; }
};

/// Returns the loaded native kernel for \p M (whose compile-cache key is
/// \p CompileKey), emitting and compiling it if no tier of the native
/// cache has it. Thread-safe; never throws, never exits — every failure
/// comes back as a recoverable Err.
NativeAttachResult getOrEmitNativeKernel(const exec::CompiledModel &M,
                                         uint64_t CompileKey,
                                         std::string_view ModelName);

/// Drops the in-process loaded-kernel registry (tests only; in-flight
/// shared_ptrs keep their kernels alive).
void clearNativeKernelRegistry();

} // namespace compiler
} // namespace limpet

#endif // LIMPET_COMPILER_KERNELEMITTER_H
