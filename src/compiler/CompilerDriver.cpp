//===- CompilerDriver.cpp -------------------------------------------------===//

#include "compiler/CompilerDriver.h"

#include "codegen/Vectorize.h"
#include "compiler/KernelEmitter.h"
#include "easyml/Sema.h"
#include "exec/BytecodeCompiler.h"
#include "ir/Printer.h"
#include "runtime/ThreadPool.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <array>

using namespace limpet;
using namespace limpet::compiler;
using namespace limpet::codegen;

//===----------------------------------------------------------------------===//
// Stage names
//===----------------------------------------------------------------------===//

static constexpr std::array<std::string_view, kNumStages> kStageNames = {
    "frontend",  "preprocess", "integrator", "lut-analysis",
    "emit-ir",   "opt",        "vectorize",  "emit-bytecode",
};

std::string_view compiler::stageName(Stage S) {
  return kStageNames[unsigned(S)];
}

std::optional<Stage> compiler::stageFromName(std::string_view Name) {
  for (unsigned I = 0; I != kNumStages; ++I)
    if (kStageNames[I] == Name)
      return Stage(I);
  return std::nullopt;
}

std::string compiler::stageNameList() {
  std::string Out;
  for (std::string_view N : kStageNames) {
    if (!Out.empty())
      Out += ", ";
    Out += N;
  }
  return Out;
}

bool compiler::isCodegenStage(Stage S) { return S >= Stage::EmitIR; }

//===----------------------------------------------------------------------===//
// Stage execution plumbing
//===----------------------------------------------------------------------===//

namespace {

/// Runs \p Fn as stage \p S of \p R: telemetry span, per-stage counters,
/// and a StageRecord appended to the result.
template <typename Fn>
StageRecord &runStage(CompileResult &R, Stage S, Fn &&Body) {
  std::string Name(stageName(S));
  telemetry::TraceSpan Span("stage:" + Name, "compile");
  telemetry::counter("compile.stage." + Name + ".count").add(1);
  telemetry::Clock::time_point T0 = telemetry::Clock::now();
  Body();
  uint64_t Ns = telemetry::nanosecondsSince(T0);
  telemetry::counter("compile.stage." + Name + ".ns").add(Ns);
  R.Stages.push_back(StageRecord{S, Ns, ""});
  return R.Stages.back();
}

std::string snapshotExprStage(const ModelProgram &P, Stage S) {
  std::string Out = "// after " + std::string(stageName(S)) + ": model " +
                    P.Info.Name + "\n";
  if (S == Stage::Preprocess) {
    for (const easyml::StateVarInfo &Sv : P.Info.StateVars)
      Out += "diff_" + Sv.Name + " = " +
             (Sv.Diff ? easyml::printExpr(*Sv.Diff) : "<null>") + "\n";
    return Out;
  }
  for (size_t I = 0; I != P.StateUpdates.size(); ++I)
    Out += P.Info.StateVars[I].Name + "' = " +
           (P.StateUpdates[I] ? easyml::printExpr(*P.StateUpdates[I])
                              : "<null>") +
           "\n";
  if (S == Stage::LutAnalysis) {
    for (const LutTablePlan &T : P.Luts.Tables) {
      Out += "lut " + T.Spec.VarName + " [" + std::to_string(T.Spec.Lo) +
             ", " + std::to_string(T.Spec.Hi) + "] step " +
             std::to_string(T.Spec.Step) + ", " +
             std::to_string(T.Columns.size()) + " columns\n";
      for (const easyml::ExprPtr &Col : T.Columns)
        Out += "  col = " + easyml::printExpr(*Col) + "\n";
    }
  }
  return Out;
}

std::string snapshotFrontend(const easyml::ModelInfo &Info) {
  return "// after frontend: model " + Info.Name + ": " +
         std::to_string(Info.StateVars.size()) + " state vars, " +
         std::to_string(Info.Params.size()) + " params, " +
         std::to_string(Info.Externals.size()) + " externals, " +
         std::to_string(Info.Luts.size()) + " lut specs\n";
}

CodeGenOptions codegenOptions(const exec::EngineConfig &Cfg) {
  CodeGenOptions Options;
  Options.Layout = Cfg.Layout;
  Options.AoSoABlockWidth = Cfg.Width;
  Options.EnableLuts = Cfg.EnableLuts;
  Options.CubicLut = Cfg.CubicLut;
  Options.RunPasses = Cfg.RunPasses;
  Options.PassPipeline = Cfg.PassPipeline;
  return Options;
}

/// Stage "frontend": lex + parse + sema. Returns false with R.Err set on
/// failure (diagnostics folded into the message).
bool runFrontendStage(CompileResult &R, std::string_view Name,
                      std::string_view Source, easyml::ModelInfo &Info) {
  bool Ok = true;
  runStage(R, Stage::Frontend, [&] {
    DiagnosticEngine Diags;
    std::optional<easyml::ModelInfo> I =
        easyml::compileModelInfo(Name, Source, Diags);
    if (!I) {
      R.Err = Status::error("frontend: " + Diags.str());
      Ok = false;
      return;
    }
    Info = std::move(*I);
  });
  return Ok;
}

} // namespace

bool CompilerDriver::wantSnapshot(Stage S) const {
  if (Opts.SnapshotAll)
    return true;
  return std::find(Opts.SnapshotStages.begin(), Opts.SnapshotStages.end(),
                   S) != Opts.SnapshotStages.end();
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

Artifact CompilerDriver::makeArtifact(const exec::CompiledModel &M,
                                      std::string_view Name,
                                      uint64_t SourceHash) {
  Artifact A;
  A.ModelName = std::string(Name);
  A.SourceHash = SourceHash;
  A.Config = M.config();
  A.Program = M.program();
  A.Luts = M.luts();
  return A;
}

CompileResult CompilerDriver::compileAuto(std::string_view Name,
                                          std::string_view Source) {
  AutoSelection Sel =
      selectAutoConfig(Name, Source, Opts.Config, Opts.Tier, Opts.Autotune);
  if (!Sel) {
    CompileResult R;
    R.ModelName = std::string(Name);
    R.SourceHash = fnv1a64(Source);
    R.TuneKey = Sel.TuneKey;
    R.Err = Sel.Err;
    return R;
  }
  DriverOptions Sub = Opts;
  Sub.Config = Sel.Config;
  Sub.Tier = Sel.Tier;
  CompilerDriver SubDriver(std::move(Sub));
  CompileResult R = SubDriver.compileSource(Name, Source);
  R.AutoSelected = true;
  R.AutoSource = Sel.Source;
  R.AutoPointName = Sel.Point.name();
  R.AutoRate = Sel.Rate;
  R.TuneKey = Sel.TuneKey;
  return R;
}

CompileResult CompilerDriver::compileSource(std::string_view Name,
                                            std::string_view Source) {
  if (Status S = Opts.Config.validate(); !S) {
    CompileResult R;
    R.ModelName = std::string(Name);
    R.SourceHash = fnv1a64(Source);
    R.Err = S;
    return R;
  }
  if (Opts.Config.isAutoWidth())
    return compileAuto(Name, Source);

  CompileResult R;
  R.ModelName = std::string(Name);
  R.SourceHash = fnv1a64(Source);
  R.CacheKey = compileCacheKey(Source, Opts.Config);

  if (Opts.UseCache) {
    bool FromDisk = false;
    if (std::optional<Artifact> A =
            CompileCache::global().lookup(R.CacheKey, &FromDisk)) {
      CompileResult Warm = assembleFromArtifact(*A, Name, Source);
      if (Warm) {
        Warm.DiskHit = FromDisk;
        attachNativeTier(Warm);
        return Warm;
      }
      // A cached artifact that no longer assembles (e.g. scribbled memory,
      // hand-edited cache file that still checksums) degrades to a clean
      // recompile rather than an error.
      telemetry::counter("compile.cache.bad").add(1);
    }
  }

  CompileResult Cold = compileCold(Name, Source);
  if (Cold && Opts.UseCache)
    CompileCache::global().store(
        R.CacheKey, makeArtifact(*Cold.Model, Name, R.SourceHash));
  attachNativeTier(Cold);
  return Cold;
}

void CompilerDriver::attachNativeTier(CompileResult &R) {
  if (Opts.Tier == exec::EngineTier::VM || !R)
    return;
  NativeAttachResult N =
      getOrEmitNativeKernel(*R.Model, R.CacheKey, R.ModelName);
  R.NativeKey = N.Key;
  if (N) {
    R.Model->attachNative(std::move(N.Kernel));
    R.NativeAttached = true;
    R.NativeCacheHit = N.MemoryHit || N.DiskHit;
    R.NativeDiskHit = N.DiskHit;
    return;
  }
  // The fallback ladder's last rung: the model keeps its VM engine and
  // the reason is reported (Native) or available on request (Auto).
  R.NativeErr = N.Err;
}

CompileResult CompilerDriver::compileCold(std::string_view Name,
                                          std::string_view Source) {
  CompileResult R;
  R.ModelName = std::string(Name);
  R.SourceHash = fnv1a64(Source);
  R.CacheKey = compileCacheKey(Source, Opts.Config);
  const exec::EngineConfig &Cfg = Opts.Config;

  telemetry::TraceSpan Span("compile:" + R.ModelName + " (" +
                                exec::engineConfigName(Cfg) + ")",
                            "compile");
  telemetry::ScopedTimerNs ColdTimer("compile.cold.ns");
  telemetry::counter("compile.cold.count").add(1);
  telemetry::Clock::time_point T0 = telemetry::Clock::now();

  easyml::ModelInfo Info;
  ModelProgram P;
  if (!runFrontendStage(R, Name, Source, Info))
    return R;
  if (wantSnapshot(Stage::Frontend))
    R.Stages.back().Snapshot = snapshotFrontend(Info);

  runStage(R, Stage::Preprocess, [&] { preprocessProgram(P, Info); });
  if (wantSnapshot(Stage::Preprocess))
    R.Stages.back().Snapshot = snapshotExprStage(P, Stage::Preprocess);

  runStage(R, Stage::Integrator, [&] { expandIntegrators(P); });
  if (wantSnapshot(Stage::Integrator))
    R.Stages.back().Snapshot = snapshotExprStage(P, Stage::Integrator);

  runStage(R, Stage::LutAnalysis,
           [&] { analyzeLutTables(P, Cfg.EnableLuts); });
  if (wantSnapshot(Stage::LutAnalysis))
    R.Stages.back().Snapshot = snapshotExprStage(P, Stage::LutAnalysis);

  GeneratedKernel K;
  runStage(R, Stage::EmitIR,
           [&] { K = emitKernelIR(std::move(P), codegenOptions(Cfg)); });
  if (wantSnapshot(Stage::EmitIR))
    R.Stages.back().Snapshot = ir::printOp(K.ScalarFunc);

  if (Cfg.RunPasses) {
    runStage(R, Stage::Opt, [&] { (void)optimizeKernelFunc(K, K.ScalarFunc); });
    if (!K.PipelineStatus) {
      R.Err = Status::error("opt: " + K.PipelineStatus.message());
      return R;
    }
    if (wantSnapshot(Stage::Opt))
      R.Stages.back().Snapshot = ir::printOp(K.ScalarFunc);
  }

  ir::Operation *Func = K.ScalarFunc;
  if (Cfg.Width > 1) {
    runStage(R, Stage::Vectorize,
             [&] { Func = cloneVectorKernel(K, Cfg.Width); });
    if (wantSnapshot(Stage::Vectorize))
      R.Stages.back().Snapshot = ir::printOp(Func);
    if (Cfg.RunPasses) {
      runStage(R, Stage::Opt, [&] { (void)optimizeKernelFunc(K, Func); });
      if (!K.PipelineStatus) {
        R.Err = Status::error("opt (vector): " + K.PipelineStatus.message());
        return R;
      }
      if (wantSnapshot(Stage::Opt))
        R.Stages.back().Snapshot = ir::printOp(Func);
    }
  }

  exec::BcProgram Program;
  runStage(R, Stage::EmitBytecode,
           [&] { Program = exec::compileToBytecode(K, Func); });
  if (wantSnapshot(Stage::EmitBytecode))
    R.Stages.back().Snapshot = Program.str();

  std::string Error;
  std::optional<exec::CompiledModel> M = exec::CompiledModel::fromParts(
      std::move(K), std::move(Program), std::nullopt, Cfg, &Error);
  if (!M) {
    R.Err = Status::error(Error);
    return R;
  }
  R.Model = std::move(M);
  R.TotalNs = telemetry::nanosecondsSince(T0);
  return R;
}

CompileResult CompilerDriver::assembleFromArtifact(const Artifact &A,
                                                   std::string_view Name,
                                                   std::string_view Source) {
  CompileResult R;
  R.ModelName = std::string(Name);
  R.SourceHash = fnv1a64(Source);
  R.CacheKey = compileCacheKey(Source, A.Config);
  const exec::EngineConfig &Cfg = A.Config;

  if (A.SourceHash != R.SourceHash) {
    R.Err = Status::error("artifact was compiled from different model "
                          "source (hash mismatch)");
    return R;
  }
  if (Status S = Cfg.validate(); !S) {
    R.Err = S;
    return R;
  }

  telemetry::TraceSpan Span("load:" + R.ModelName + " (" +
                                exec::engineConfigName(Cfg) + ")",
                            "compile");
  telemetry::ScopedTimerNs WarmTimer("compile.warm.ns");
  telemetry::counter("compile.warm.count").add(1);
  telemetry::Clock::time_point T0 = telemetry::Clock::now();

  // The AST stages still run on warm loads: the runtime needs ModelInfo
  // (initial state, parameter defaults) and the LUT plan expressions
  // (rebuildLuts re-bakes tables on parameter changes). All codegen
  // stages — emit-ir, opt, vectorize, emit-bytecode — are skipped; the
  // kernel's IR handles stay null.
  easyml::ModelInfo Info;
  ModelProgram P;
  if (!runFrontendStage(R, Name, Source, Info))
    return R;
  if (wantSnapshot(Stage::Frontend))
    R.Stages.back().Snapshot = snapshotFrontend(Info);
  runStage(R, Stage::Preprocess, [&] { preprocessProgram(P, Info); });
  runStage(R, Stage::Integrator, [&] { expandIntegrators(P); });
  runStage(R, Stage::LutAnalysis,
           [&] { analyzeLutTables(P, Cfg.EnableLuts); });

  GeneratedKernel K;
  K.Program = std::move(P);
  K.Options = codegenOptions(Cfg);

  std::string Error;
  std::optional<exec::CompiledModel> M = exec::CompiledModel::fromParts(
      std::move(K), A.Program, A.Luts, Cfg, &Error);
  if (!M) {
    R.Err = Status::error("artifact rejected: " + Error);
    return R;
  }
  R.Model = std::move(M);
  R.CacheHit = true;
  R.TotalNs = telemetry::nanosecondsSince(T0);
  return R;
}

CompileResult CompilerDriver::loadArtifact(const Artifact &A,
                                           std::string_view Name,
                                           std::string_view Source) {
  if (!A.ModelName.empty() && Name != A.ModelName) {
    CompileResult R;
    R.ModelName = std::string(Name);
    R.Err = Status::error("artifact is for model '" + A.ModelName +
                          "', not '" + std::string(Name) + "'");
    return R;
  }
  CompileResult R = assembleFromArtifact(A, Name, Source);
  attachNativeTier(R);
  return R;
}

CompileResult CompilerDriver::compileEntry(const models::ModelEntry &Entry) {
  return compileSource(Entry.Name, Entry.Source);
}

std::vector<CompileResult> CompilerDriver::compileSuite(
    const std::vector<const models::ModelEntry *> &Entries, unsigned Threads) {
  std::vector<CompileResult> Results(Entries.size());
  runtime::ThreadPool &Pool = runtime::globalThreadPool();
  if (Threads == 0)
    Threads = Pool.maxThreads();
  telemetry::TraceSpan Span("compile-suite", "compile");
  telemetry::ScopedTimerNs Timer("compile.suite.ns");
  Pool.parallelFor(0, int64_t(Entries.size()), Threads,
                   [&](int64_t Begin, int64_t End) {
                     for (int64_t I = Begin; I != End; ++I)
                       Results[size_t(I)] = compileEntry(*Entries[size_t(I)]);
                   });
  return Results;
}
