//===- Autotuner.cpp ------------------------------------------------------===//

#include "compiler/Autotuner.h"

#include "bench/BenchHarness.h"
#include "compiler/Artifact.h"
#include "compiler/CompileCache.h"
#include "compiler/CompilerDriver.h"
#include "compiler/Serialize.h"
#include "exec/Backend.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace limpet;
using namespace limpet::compiler;
using namespace limpet::codegen;

//===----------------------------------------------------------------------===//
// Points and sources
//===----------------------------------------------------------------------===//

std::string TunePoint::name() const {
  std::string Out(stateLayoutName(Layout));
  Out += "/w" + std::to_string(Width);
  Out += Tier == exec::EngineTier::Native ? "/native" : "/vm";
  return Out;
}

std::optional<TunePoint> TunePoint::fromName(std::string_view Name) {
  // "<layout>/w<width>/<vm|native>"
  size_t S1 = Name.find('/');
  if (S1 == std::string_view::npos)
    return std::nullopt;
  size_t S2 = Name.find('/', S1 + 1);
  if (S2 == std::string_view::npos)
    return std::nullopt;
  std::string_view LayoutS = Name.substr(0, S1);
  std::string_view WidthS = Name.substr(S1 + 1, S2 - S1 - 1);
  std::string_view TierS = Name.substr(S2 + 1);

  TunePoint P;
  if (LayoutS == "aos")
    P.Layout = StateLayout::AoS;
  else if (LayoutS == "soa")
    P.Layout = StateLayout::SoA;
  else if (LayoutS == "aosoa")
    P.Layout = StateLayout::AoSoA;
  else
    return std::nullopt;

  if (WidthS.size() < 2 || WidthS[0] != 'w')
    return std::nullopt;
  unsigned W = 0;
  for (char C : WidthS.substr(1)) {
    if (C < '0' || C > '9')
      return std::nullopt;
    W = W * 10 + unsigned(C - '0');
    if (W > 4096)
      return std::nullopt;
  }
  if (W == 0)
    return std::nullopt;
  P.Width = W;

  if (TierS == "vm")
    P.Tier = exec::EngineTier::VM;
  else if (TierS == "native")
    P.Tier = exec::EngineTier::Native;
  else
    return std::nullopt;
  return P;
}

std::string_view compiler::tuneSourceName(TuneSource S) {
  switch (S) {
  case TuneSource::Forced:
    return "forced";
  case TuneSource::Record:
    return "record";
  case TuneSource::Tuned:
    return "tuned";
  case TuneSource::Heuristic:
    return "heuristic";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Record serialization
//===----------------------------------------------------------------------===//

static constexpr uint32_t kTuneMagic = 0x54504D4CU; // "LMPT" little-endian

std::string TuningRecord::serialize() const {
  ByteWriter W;
  W.u32(kTuneMagic);
  W.u32(kTunerVersion);
  W.u64(TuneKey);
  W.u64(RegistryFingerprint);
  W.str(ModelName);
  W.u8(uint8_t(Best.Layout));
  W.u32(Best.Width);
  W.u8(uint8_t(Best.Tier));
  W.f64(BestRate);
  W.u32(uint32_t(Measurements.size()));
  for (const TuneMeasurement &M : Measurements) {
    W.str(M.Point);
    W.f64(M.CellStepsPerSec);
  }
  W.u64(fnv1a64(W.Out));
  return std::move(W.Out);
}

std::optional<TuningRecord>
TuningRecord::deserialize(std::string_view Bytes, std::string *Error) {
  auto Fail = [&](std::string Msg) -> std::optional<TuningRecord> {
    if (Error)
      *Error = std::move(Msg);
    return std::nullopt;
  };
  if (Bytes.size() < 8)
    return Fail("tuning record truncated");
  uint64_t Stored;
  std::memcpy(&Stored, Bytes.data() + Bytes.size() - 8, 8);
  if (fnv1a64(Bytes.substr(0, Bytes.size() - 8)) != Stored)
    return Fail("tuning record checksum mismatch");

  ByteReader R(Bytes.substr(0, Bytes.size() - 8));
  TuningRecord Rec;
  uint32_t Magic = R.u32();
  uint32_t Version = R.u32();
  if (R.failed() || Magic != kTuneMagic)
    return Fail("not a tuning record (bad magic)");
  if (Version != kTunerVersion)
    return Fail("tuning record version " + std::to_string(Version) +
                " (this tuner writes " + std::to_string(kTunerVersion) + ")");
  Rec.TuneKey = R.u64();
  Rec.RegistryFingerprint = R.u64();
  Rec.ModelName = R.str();
  uint8_t Layout = R.u8();
  Rec.Best.Width = R.u32();
  uint8_t Tier = R.u8();
  Rec.BestRate = R.f64();
  uint32_t N = R.u32();
  if (R.failed() || Layout > uint8_t(StateLayout::AoSoA) ||
      Tier > uint8_t(exec::EngineTier::Native) || Rec.Best.Width == 0)
    return Fail("tuning record truncated or malformed");
  Rec.Best.Layout = StateLayout(Layout);
  Rec.Best.Tier = exec::EngineTier(Tier);
  // Each measurement needs at least 4 (name length) + 8 (rate) bytes.
  if (uint64_t(N) * 12 > R.remaining())
    return Fail("tuning record measurement count out of range");
  for (uint32_t I = 0; I != N; ++I) {
    TuneMeasurement M;
    M.Point = R.str();
    M.CellStepsPerSec = R.f64();
    Rec.Measurements.push_back(std::move(M));
  }
  if (R.failed() || R.remaining() != 0)
    return Fail("tuning record truncated or malformed");
  return Rec;
}

//===----------------------------------------------------------------------===//
// Keying and persistence
//===----------------------------------------------------------------------===//

uint64_t compiler::tuneKey(std::string_view Source,
                           const exec::EngineConfig &BaseCfg,
                           bool AllowNative, uint64_t RegistryFingerprint) {
  uint64_t H = fnv1a64(Source);
  // Only the non-tuned configuration fields: width and layout are the
  // tuner's output, never its key.
  char Flags[4] = {char(BaseCfg.FastMath), char(BaseCfg.EnableLuts),
                   char(BaseCfg.CubicLut), char(BaseCfg.RunPasses)};
  H = fnv1a64({Flags, sizeof Flags}, H);
  H = fnv1a64(BaseCfg.PassPipeline, H);
  char Native[1] = {char(AllowNative)};
  H = fnv1a64({Native, 1}, H);
  uint64_t Tail[3] = {RegistryFingerprint, kTunerVersion,
                      kArtifactFormatVersion};
  H = fnv1a64({reinterpret_cast<const char *>(Tail), sizeof Tail}, H);
  return H;
}

std::string compiler::tuneRecordPath(uint64_t Key) {
  std::string Dir = CompileCache::global().diskDir();
  if (Dir.empty())
    return "";
  char Name[32];
  std::snprintf(Name, sizeof Name, "%016llx.tune", (unsigned long long)Key);
  return Dir + "/" + Name;
}

std::optional<TuningRecord> compiler::readTuningRecord(uint64_t Key) {
  std::string Path = tuneRecordPath(Key);
  if (Path.empty())
    return std::nullopt;
  std::string Bytes;
  if (!readFileBytes(Path, Bytes))
    return std::nullopt; // no record yet — not an error
  std::string Error;
  std::optional<TuningRecord> Rec = TuningRecord::deserialize(Bytes, &Error);
  if (!Rec) {
    telemetry::counter("tune.record.corrupt").add(1);
    return std::nullopt;
  }
  if (Rec->TuneKey != Key ||
      Rec->RegistryFingerprint != exec::BackendRegistry::global().fingerprint()) {
    // Tuned under a different key or on a machine class with different
    // capabilities: stale by construction, ignore it.
    telemetry::counter("tune.record.stale").add(1);
    return std::nullopt;
  }
  telemetry::counter("tune.record.load").add(1);
  return Rec;
}

bool compiler::writeTuningRecord(const TuningRecord &R) {
  std::string Path = tuneRecordPath(R.TuneKey);
  if (Path.empty())
    return true; // disk tier off: nothing to persist
  Status S = writeFileAtomic(R.serialize(), Path);
  if (!S) {
    std::fprintf(stderr, "warning: cannot persist tuning record %s: %s\n",
                 Path.c_str(), S.message().c_str());
    return false;
  }
  telemetry::counter("tune.record.write").add(1);
  return true;
}

//===----------------------------------------------------------------------===//
// Tuning
//===----------------------------------------------------------------------===//

static int64_t envInt(const char *Name, int64_t Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  return std::atoll(V);
}

TunePoint compiler::heuristicPoint(exec::EngineTier Tier) {
  const exec::BackendRegistry &Reg = exec::BackendRegistry::global();
  // Two full native vectors in flight per block, clamped to the
  // specialized template burns: scalar hosts stay scalar, SSE-class picks
  // 4, AVX2-class and up pick 8. Wider VLA points must earn their keep
  // through a measurement, never a guess.
  unsigned Target = Reg.maxLanes() > 1 ? std::min(Reg.maxLanes() * 2, 8u) : 1;
  unsigned W = 1;
  for (unsigned Cand : Reg.widths())
    if (Cand <= Target && Cand > W)
      W = Cand;
  TunePoint P;
  P.Width = W;
  P.Layout = W > 1 ? StateLayout::AoSoA : StateLayout::AoS;
  P.Tier = Tier == exec::EngineTier::VM ? exec::EngineTier::VM
                                        : exec::EngineTier::Native;
  return P;
}

Expected<TuningRecord> Autotuner::tune(std::string_view Name,
                                       std::string_view Source,
                                       const exec::EngineConfig &BaseCfg,
                                       bool AllowNative) {
  // One model tunes at a time, process-wide: compileSuite fans compiles
  // out over the thread pool, and concurrently timed candidates would
  // perturb each other's short windows.
  static std::mutex TuneMu;
  std::lock_guard<std::mutex> Lock(TuneMu);

  telemetry::TraceSpan Span("autotune:" + std::string(Name), "compile");
  telemetry::ScopedTimerNs Timer("tune.ns");

  const exec::BackendRegistry &Reg = exec::BackendRegistry::global();
  int64_t Cells = Opts.Cells ? Opts.Cells : envInt("LIMPET_TUNE_CELLS", 256);
  double WindowMs =
      Opts.WindowMs > 0
          ? Opts.WindowMs
          : double(envInt("LIMPET_TUNE_WINDOW_MS", 25));
  int Repeats =
      Opts.Repeats ? Opts.Repeats : int(envInt("LIMPET_TUNE_REPEATS", 3));

  // Candidate sweep: every registry width × every coherent layout, VM
  // always, native where allowed. The math flavour is pinned to the base
  // configuration (see the header) so every candidate computes identical
  // results in exact mode.
  struct Candidate {
    TunePoint P;
    std::optional<exec::CompiledModel> M;
  };
  std::vector<Candidate> Candidates;
  for (unsigned W : Reg.widths()) {
    for (StateLayout L :
         {StateLayout::AoS, StateLayout::SoA, StateLayout::AoSoA}) {
      if (L == StateLayout::AoSoA && W == 1)
        continue;
      Candidates.push_back({TunePoint{L, W, exec::EngineTier::VM}, {}});
      if (AllowNative)
        Candidates.push_back({TunePoint{L, W, exec::EngineTier::Native}, {}});
    }
  }

  // Compile every candidate through the driver so each one also lands in
  // the artifact cache: the warm auto path re-selects the winner with
  // zero codegen because its compile already happened here.
  std::string LastErr;
  for (Candidate &C : Candidates) {
    DriverOptions DO;
    DO.Config = BaseCfg;
    DO.Config.Width = C.P.Width;
    DO.Config.Layout = C.P.Layout;
    // Auto semantics for native candidates: a toolchain failure is not a
    // tuning failure, the candidate just drops out (its VM twin stays).
    DO.Tier = C.P.Tier == exec::EngineTier::Native ? exec::EngineTier::Auto
                                                   : exec::EngineTier::VM;
    CompilerDriver Driver(std::move(DO));
    CompileResult R = Driver.compileSource(Name, Source);
    if (!R) {
      LastErr = R.Err.message();
      continue;
    }
    if (C.P.Tier == exec::EngineTier::Native && !R.NativeAttached)
      continue; // would duplicate the VM measurement
    C.M = std::move(R.Model);
  }
  Candidates.erase(std::remove_if(Candidates.begin(), Candidates.end(),
                                  [](const Candidate &C) { return !C.M; }),
                   Candidates.end());
  if (Candidates.empty())
    return Status::error("autotune: no candidate point compiled for '" +
                         std::string(Name) + "'" +
                         (LastErr.empty() ? "" : ": " + LastErr));

  std::string PrevBench = bench::setBenchName("autotune");

  // Calibrate the step count once against the heuristic point (falling
  // back to the first candidate) so every point gets the same work and a
  // window of roughly WindowMs.
  const Candidate *Cal = &Candidates.front();
  TunePoint H = heuristicPoint(exec::EngineTier::VM);
  for (const Candidate &C : Candidates)
    if (C.P == H)
      Cal = &C;
  bench::BenchProtocol CalProto;
  CalProto.NumCells = Cells;
  CalProto.NumSteps = 4;
  CalProto.Repeats = 1;
  CalProto.DropExtrema = false;
  double CalSecs =
      std::max(bench::timeSimulation(*Cal->M, CalProto, 1), 1e-9);
  double CalRate = double(Cells) * double(CalProto.NumSteps) / CalSecs;
  int64_t Steps = int64_t(CalRate * (WindowMs / 1000.0) / double(Cells));
  Steps = std::clamp<int64_t>(Steps, 4, 100000);

  TuningRecord Rec;
  Rec.ModelName = std::string(Name);
  double BestRate = -1.0;
  for (const Candidate &C : Candidates) {
    bench::BenchProtocol Proto;
    Proto.NumCells = Cells;
    Proto.NumSteps = Steps;
    Proto.Repeats = Repeats;
    Proto.DropExtrema = Repeats >= 3;
    double Secs = std::max(bench::timeSimulation(*C.M, Proto, 1), 1e-9);
    double Rate = double(Cells) * double(Steps) / Secs;
    telemetry::counter("tune.point.count").add(1);
    Rec.Measurements.push_back({C.P.name(), Rate});
    std::fprintf(stderr, "autotune: %s %s = %.4g cell-steps/s\n",
                 Rec.ModelName.c_str(), C.P.name().c_str(), Rate);
    // Strictly-greater keeps ties deterministic (first enumerated wins).
    if (Rate > BestRate) {
      BestRate = Rate;
      Rec.Best = C.P;
    }
  }
  bench::setBenchName(std::move(PrevBench));
  Rec.BestRate = BestRate;
  return Rec;
}

//===----------------------------------------------------------------------===//
// Selection
//===----------------------------------------------------------------------===//

AutoSelection compiler::selectAutoConfig(std::string_view Name,
                                         std::string_view Source,
                                         const exec::EngineConfig &BaseCfg,
                                         exec::EngineTier Tier,
                                         bool RunTuner) {
  AutoSelection Sel;
  const exec::BackendRegistry &Reg = exec::BackendRegistry::global();
  bool AllowNative = Tier != exec::EngineTier::VM;
  Sel.TuneKey = tuneKey(Source, BaseCfg, AllowNative, Reg.fingerprint());

  auto apply = [&](const TunePoint &P, TuneSource Src, double Rate) {
    Sel.Point = P;
    Sel.Source = Src;
    Sel.Rate = Rate;
    Sel.Config = BaseCfg;
    Sel.Config.Width = P.Width;
    Sel.Config.Layout = P.Layout;
    // A native point under an Auto driver keeps Auto's silent-fallback
    // semantics; an explicit Native driver keeps its loud ones.
    Sel.Tier = P.Tier == exec::EngineTier::VM ? exec::EngineTier::VM
               : Tier == exec::EngineTier::Native
                   ? exec::EngineTier::Native
                   : exec::EngineTier::Auto;
    telemetry::counter("tune.select." + std::string(tuneSourceName(Src)))
        .add(1);
  };

  if (const char *Force = std::getenv("LIMPET_TUNE_FORCE"); Force && *Force) {
    std::optional<TunePoint> P = TunePoint::fromName(Force);
    if (!P) {
      Sel.Err = Status::error(
          "LIMPET_TUNE_FORCE='" + std::string(Force) +
          "' is not a tune point (expected <aos|soa|aosoa>/w<N>/<vm|native>)");
      return Sel;
    }
    if (!Reg.supportsWidth(P->Width)) {
      Sel.Err = Status::error("LIMPET_TUNE_FORCE width " +
                              std::to_string(P->Width) +
                              " is not registered on this host");
      return Sel;
    }
    if (P->Layout == StateLayout::AoSoA && P->Width == 1) {
      Sel.Err =
          Status::error("LIMPET_TUNE_FORCE: AoSoA needs a vector width");
      return Sel;
    }
    if (P->Tier == exec::EngineTier::Native && !AllowNative) {
      Sel.Err = Status::error("LIMPET_TUNE_FORCE names a native point but "
                              "the engine tier is vm");
      return Sel;
    }
    apply(*P, TuneSource::Forced, 0);
    return Sel;
  }

  if (std::optional<TuningRecord> Rec = readTuningRecord(Sel.TuneKey)) {
    apply(Rec->Best, TuneSource::Record, Rec->BestRate);
    return Sel;
  }

  if (RunTuner) {
    Autotuner T;
    Expected<TuningRecord> R = T.tune(Name, Source, BaseCfg, AllowNative);
    if (R) {
      (*R).TuneKey = Sel.TuneKey;
      (*R).RegistryFingerprint = Reg.fingerprint();
      writeTuningRecord(*R);
      apply(R->Best, TuneSource::Tuned, R->BestRate);
      return Sel;
    }
    // A tuner failure degrades to the heuristic, like a missing record.
    std::fprintf(stderr, "warning: %s\n", R.status().message().c_str());
  }

  apply(heuristicPoint(Tier), TuneSource::Heuristic, 0);
  return Sel;
}
