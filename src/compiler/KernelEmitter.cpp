//===- KernelEmitter.cpp --------------------------------------------------===//
//
// Bit-identity with the VM is the whole contract here, so two details are
// load-bearing:
//
//  1. The emitted statements textually mirror the interpreter's per-op
//     expressions (exec/Engine.cpp) flavour-for-flavour — including the
//     scalar engine's fmin/fmax vs the vector engine's ternary min/max,
//     the prologue cell conventions (scalar: cell 0, vector: range
//     start), and the fresh register file the scalar tail gets — and the
//     TU is compiled with the same compiler and flag set as the host
//     binary, so within-statement FP contraction decisions match.
//
//  2. The interpreter stores every result to memory through a *runtime*
//     register index, which makes cross-instruction FMA contraction
//     impossible there. Specialized code with constant indices would be
//     SSA to the host compiler, which happily fuses `t = a*b; d = t+c;`
//     across statements into an FMA under -O3 -march=native, diverging
//     from the VM in the last ulp. The emitter therefore places an
//     `asm("" : "+m"(dst))` value barrier after every instruction whose
//     result could be an exposed multiply (Mul, and the inlined fast-math
//     kernels) — forcing the same "rounds through memory" semantics the
//     interpreter has, while leaving lane loops fully vectorizable.
//
//===----------------------------------------------------------------------===//

#include "compiler/KernelEmitter.h"

#include "compiler/Artifact.h"
#include "compiler/CompileCache.h"
#include "compiler/Serialize.h"
#include "support/Telemetry.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

using namespace limpet;
using namespace limpet::compiler;
using exec::BcInstr;
using exec::BcOp;
using exec::BcProgram;

// The compiler and flags this binary was built with, baked in by
// src/CMakeLists.txt. Matching them in the emitted TU is what makes the
// host's FP contraction choices (and -march) reproduce exactly.
#ifndef LIMPET_HOST_CXX
#define LIMPET_HOST_CXX "c++"
#endif
#ifndef LIMPET_HOST_CXXFLAGS
#define LIMPET_HOST_CXXFLAGS "-O2"
#endif

// The VecMath header source, embedded so emitted fast-math TUs are
// self-contained (generated into the build tree by src/CMakeLists.txt).
#include "compiler/VecMathEmbed.inc"

//===----------------------------------------------------------------------===//
// Small helpers
//===----------------------------------------------------------------------===//

namespace {

std::string hex16(uint64_t Key) {
  char Buf[17];
  std::snprintf(Buf, sizeof Buf, "%016llx", (unsigned long long)Key);
  return Buf;
}

std::vector<std::string> splitFlags(std::string_view S) {
  std::vector<std::string> Out;
  std::string Cur;
  for (char C : S) {
    if (C == ' ' || C == '\t' || C == '\n') {
      if (!Cur.empty())
        Out.push_back(std::move(Cur));
      Cur.clear();
    } else {
      Cur.push_back(C);
    }
  }
  if (!Cur.empty())
    Out.push_back(std::move(Cur));
  return Out;
}

bool isSanitizerFlag(std::string_view Tok) {
  return Tok.rfind("-fsanitize", 0) == 0 || Tok.rfind("-fno-sanitize", 0) == 0;
}

/// Runs Argv[0] with stdout/stderr redirected to files ("" = /dev/null).
/// Returns the exit code, or -1 when the process could not be spawned.
int runProcess(const std::vector<std::string> &Argv,
               const std::string &OutPath, const std::string &ErrPath) {
  std::vector<char *> Cargv;
  Cargv.reserve(Argv.size() + 1);
  for (const std::string &S : Argv)
    Cargv.push_back(const_cast<char *>(S.c_str()));
  Cargv.push_back(nullptr);

  pid_t Pid = ::fork();
  if (Pid < 0)
    return -1;
  if (Pid == 0) {
    auto Redirect = [](const std::string &Path, int TargetFd) {
      const char *P = Path.empty() ? "/dev/null" : Path.c_str();
      int Fd = ::open(P, O_WRONLY | O_CREAT | O_TRUNC, 0644);
      if (Fd >= 0) {
        ::dup2(Fd, TargetFd);
        ::close(Fd);
      }
    };
    Redirect(OutPath, STDOUT_FILENO);
    Redirect(ErrPath, STDERR_FILENO);
    ::execvp(Cargv[0], Cargv.data());
    _exit(127);
  }
  int WStatus = 0;
  while (::waitpid(Pid, &WStatus, 0) < 0 && errno == EINTR)
    ;
  if (WIFEXITED(WStatus))
    return WEXITSTATUS(WStatus);
  return -1;
}

std::string readFilePrefix(const std::string &Path, size_t MaxBytes) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return "";
  std::string Out(MaxBytes, '\0');
  In.read(Out.data(), std::streamsize(MaxBytes));
  Out.resize(size_t(In.gcount()));
  return Out;
}

/// mkdtemp-backed scratch directory, removed on scope exit unless kept
/// (LIMPET_NATIVE_KEEP_TU=1). Removal walks the directory so stray
/// compiler droppings never leak into /tmp.
struct TempDir {
  std::string Path;
  bool Keep = false;

  Status create() {
    const char *Base = ::getenv("TMPDIR");
    std::string Tmpl = std::string(Base && *Base ? Base : "/tmp");
    Tmpl += "/limpet-native-XXXXXX";
    std::vector<char> Buf(Tmpl.begin(), Tmpl.end());
    Buf.push_back('\0');
    if (!::mkdtemp(Buf.data()))
      return Status::error("native: mkdtemp(" + Tmpl +
                           ") failed: " + std::strerror(errno));
    Path = Buf.data();
    return Status::success();
  }

  ~TempDir() {
    if (Path.empty() || Keep)
      return;
    if (DIR *D = ::opendir(Path.c_str())) {
      while (dirent *E = ::readdir(D)) {
        std::string_view Name = E->d_name;
        if (Name == "." || Name == "..")
          continue;
        ::unlink((Path + "/" + std::string(Name)).c_str());
      }
      ::closedir(D);
    }
    ::rmdir(Path.c_str());
  }
};

bool keepTuRequested() {
  const char *Env = ::getenv("LIMPET_NATIVE_KEEP_TU");
  return Env && Env[0] == '1';
}

/// Moves Src to Dst, falling back to a copy when they live on different
/// filesystems (/tmp is often a separate tmpfs from the cache dir).
Status moveFile(const std::string &Src, const std::string &Dst) {
  if (::rename(Src.c_str(), Dst.c_str()) == 0)
    return Status::success();
  if (errno != EXDEV)
    return Status::error("native: rename to " + Dst +
                         " failed: " + std::strerror(errno));
  std::ifstream In(Src, std::ios::binary);
  std::ostringstream Bytes;
  Bytes << In.rdbuf();
  if (!In)
    return Status::error("native: reading " + Src + " failed");
  if (Status St = writeFileAtomic(Bytes.str(), Dst); !St)
    return St;
  ::unlink(Src.c_str());
  return Status::success();
}

std::mutex &registryMutex() {
  static std::mutex Mu;
  return Mu;
}

std::unordered_map<uint64_t, std::shared_ptr<exec::NativeKernel>> &registry() {
  static auto *Map =
      new std::unordered_map<uint64_t, std::shared_ptr<exec::NativeKernel>>();
  return *Map;
}

} // namespace

//===----------------------------------------------------------------------===//
// Toolchain probe + cache key
//===----------------------------------------------------------------------===//

Expected<NativeToolchain> compiler::nativeToolchain() {
  NativeToolchain TC;
  const char *EnvCc = ::getenv("LIMPET_NATIVE_CC");
  TC.Compiler = EnvCc && *EnvCc ? EnvCc : LIMPET_HOST_CXX;

  const char *EnvFlags = ::getenv("LIMPET_NATIVE_CXXFLAGS");
  std::string Base = EnvFlags ? EnvFlags : LIMPET_HOST_CXXFLAGS;
  std::string Flags;
  // Sanitizer instrumentation must never leak into kernels: the host
  // flags are reused for FP fidelity, not for instrumentation, and a
  // -fsanitize'd .so would need the runtime preloaded to even dlopen.
  for (const std::string &Tok : splitFlags(Base)) {
    if (isSanitizerFlag(Tok))
      continue;
    Flags += Tok;
    Flags += ' ';
  }
  Flags += "-std=c++20 -fPIC -shared -w";
  TC.Flags = std::move(Flags);

  // `cc --version` both proves the compiler is runnable and names the
  // exact version for the cache key, so a toolchain upgrade behind a
  // stable path (e.g. /usr/bin/c++) invalidates every cached kernel.
  struct ProbeResult {
    bool Ok = false;
    std::string IdentityOrError;
  };
  static std::mutex ProbeMu;
  static std::unordered_map<std::string, ProbeResult> Probes;
  {
    std::lock_guard<std::mutex> Lock(ProbeMu);
    auto It = Probes.find(TC.Compiler);
    if (It != Probes.end()) {
      if (!It->second.Ok)
        return Status::error(It->second.IdentityOrError);
      TC.Identity = It->second.IdentityOrError;
      return TC;
    }
  }

  ProbeResult Probe;
  TempDir Dir;
  if (Status St = Dir.create(); !St) {
    // Can't even make a scratch file: report without memoizing, the
    // condition (full /tmp) is transient in a way a missing cc is not.
    return Status::error(St.message());
  }
  std::string OutPath = Dir.Path + "/cc.version";
  int RC = runProcess({TC.Compiler, "--version"}, OutPath, "");
  std::string FirstLine = readFilePrefix(OutPath, 256);
  if (size_t NL = FirstLine.find('\n'); NL != std::string::npos)
    FirstLine.resize(NL);
  if (RC != 0 || FirstLine.empty()) {
    Probe.Ok = false;
    Probe.IdentityOrError = "native: compiler '" + TC.Compiler +
                            "' is not runnable (exit " + std::to_string(RC) +
                            "); set LIMPET_NATIVE_CC or use --engine=vm";
  } else {
    Probe.Ok = true;
    Probe.IdentityOrError = FirstLine;
  }
  {
    std::lock_guard<std::mutex> Lock(ProbeMu);
    Probes.emplace(TC.Compiler, Probe);
  }
  if (!Probe.Ok)
    return Status::error(Probe.IdentityOrError);
  TC.Identity = Probe.IdentityOrError;
  return TC;
}

uint64_t compiler::nativeKernelKey(uint64_t CompileKey, uint32_t EmitterVersion,
                                   const NativeToolchain &TC) {
  char Head[12];
  std::memcpy(Head, &CompileKey, 8);
  std::memcpy(Head + 8, &EmitterVersion, 4);
  uint64_t H = fnv1a64(std::string_view(Head, sizeof Head));
  H = fnv1a64(TC.Compiler, H);
  H = fnv1a64(TC.Identity, H);
  H = fnv1a64(TC.Flags, H);
  return H;
}

//===----------------------------------------------------------------------===//
// Source emission
//===----------------------------------------------------------------------===//

namespace {

/// Exact double literal: the bit pattern survives the round trip through
/// source text by construction (decimal literals would not).
std::string bitsLiteral(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, 8);
  char Buf[64];
  std::snprintf(Buf, sizeof Buf, "lbits(0x%016llxull) /* %.17g */",
                (unsigned long long)Bits, V);
  return Buf;
}

/// Math call spelling per flavour; mirrors MathOps<Fast> in Engine.cpp.
/// Returns nullptr for ops that are not unary/binary math calls.
const char *mathFnName(BcOp Op, bool Fast) {
  switch (Op) {
  case BcOp::Exp:
    return Fast ? "limpet::vecmath::fastExp" : "std::exp";
  case BcOp::Expm1:
    return Fast ? "limpet::vecmath::fastExpm1" : "std::expm1";
  case BcOp::Log:
    return Fast ? "limpet::vecmath::fastLog" : "std::log";
  case BcOp::Log10:
    return Fast ? "limpet::vecmath::fastLog10" : "std::log10";
  case BcOp::Pow:
    return Fast ? "limpet::vecmath::fastPow" : "std::pow";
  case BcOp::Sin:
    return Fast ? "limpet::vecmath::fastSin" : "std::sin";
  case BcOp::Cos:
    return Fast ? "limpet::vecmath::fastCos" : "std::cos";
  case BcOp::Tan:
    return Fast ? "limpet::vecmath::fastTan" : "std::tan";
  case BcOp::Tanh:
    return Fast ? "limpet::vecmath::fastTanh" : "std::tanh";
  case BcOp::Sinh:
    return Fast ? "limpet::vecmath::fastSinh" : "std::sinh";
  case BcOp::Cosh:
    return Fast ? "limpet::vecmath::fastCosh" : "std::cosh";
  case BcOp::Atan:
    return Fast ? "limpet::vecmath::fastAtan" : "std::atan";
  case BcOp::Asin:
    return Fast ? "limpet::vecmath::fastAsin" : "std::asin";
  case BcOp::Acos:
    return Fast ? "limpet::vecmath::fastAcos" : "std::acos";
  case BcOp::Sqrt:
    return "std::sqrt";
  case BcOp::Abs:
    return "std::fabs";
  case BcOp::Floor:
    return "std::floor";
  case BcOp::Ceil:
    return "std::ceil";
  default:
    return nullptr;
  }
}

const char *binOpSpelling(BcOp Op) {
  switch (Op) {
  case BcOp::Add:
    return "+";
  case BcOp::Sub:
    return "-";
  case BcOp::Mul:
    return "*";
  case BcOp::Div:
    return "/";
  case BcOp::CmpLT:
    return "<";
  case BcOp::CmpLE:
    return "<=";
  case BcOp::CmpGT:
    return ">";
  case BcOp::CmpGE:
    return ">=";
  case BcOp::CmpEQ:
    return "==";
  case BcOp::CmpNE:
    return "!=";
  default:
    return nullptr;
  }
}

bool isCmp(BcOp Op) {
  switch (Op) {
  case BcOp::CmpLT:
  case BcOp::CmpLE:
  case BcOp::CmpGT:
  case BcOp::CmpGE:
  case BcOp::CmpEQ:
  case BcOp::CmpNE:
    return true;
  default:
    return false;
  }
}

/// True when the instruction's destination may hold an exposed multiply
/// result in SSA form — the cross-statement FMA contraction hazard the
/// value barriers exist to close. The libm calls are opaque to the
/// optimizer, so only the inlined fast-math kernels join Mul here.
bool needsBarrier(BcOp Op, bool Fast) {
  if (Op == BcOp::Mul)
    return true;
  if (!Fast)
    return false;
  switch (Op) {
  case BcOp::Exp:
  case BcOp::Expm1:
  case BcOp::Log:
  case BcOp::Log10:
  case BcOp::Pow:
  case BcOp::Sin:
  case BcOp::Cos:
  case BcOp::Tan:
  case BcOp::Tanh:
  case BcOp::Sinh:
  case BcOp::Cosh:
  case BcOp::Atan:
  case BcOp::Asin:
  case BcOp::Acos:
    return true;
  default:
    return false;
  }
}

struct EmitCtx {
  const BcProgram &P;
  bool Fast;
  /// Lanes of the flavour being emitted; 1 selects the scalar mirror.
  unsigned W;
};

std::string stateIndexExpr(const EmitCtx &C, const std::string &Cell,
                           int64_t Sv) {
  // Literal-folded stateIndex (codegen/KernelSpec.h) for this program's
  // layout; all arithmetic stays int64 exactly as in the inline original.
  std::ostringstream S;
  switch (C.P.Layout) {
  case codegen::StateLayout::AoS:
    S << "(" << Cell << ") * " << int64_t(C.P.NumSv) << "ll + " << Sv << "ll";
    break;
  case codegen::StateLayout::SoA:
    S << Sv << "ll * A.NumCells + (" << Cell << ")";
    break;
  case codegen::StateLayout::AoSoA: {
    int64_t W = C.P.AoSoAW;
    S << "((" << Cell << ") / " << W << "ll) * "
      << int64_t(C.P.NumSv) * W << "ll + " << Sv * W << "ll + (" << Cell
      << ") % " << W << "ll";
    break;
  }
  }
  return S.str();
}

/// One instruction of the scalar flavour: a single statement mirroring
/// execScalarInstr<Fast>, registers specialized to constant indices.
void emitScalarInstr(std::string &Out, const BcInstr &I, const EmitCtx &C,
                     const std::string &Cell) {
  auto R = [](unsigned Reg) { return "R[" + std::to_string(Reg) + "]"; };
  std::string D = R(I.Dst), Ra = R(I.A), Rb = R(I.B), Rc = R(I.C);
  std::ostringstream S;
  S << "    ";
  switch (I.Op) {
  case BcOp::ConstF:
    S << D << " = " << bitsLiteral(I.Imm) << ";";
    break;
  case BcOp::Copy:
    S << D << " = " << Ra << ";";
    break;
  case BcOp::LoadState:
    S << D << " = A.State[" << stateIndexExpr(C, Cell, I.Aux) << "];";
    break;
  case BcOp::StoreState:
    S << "A.State[" << stateIndexExpr(C, Cell, I.Aux) << "] = " << Ra << ";";
    break;
  case BcOp::LoadExt:
    S << D << " = A.Exts[" << I.Aux << "][" << Cell << "];";
    break;
  case BcOp::StoreExt:
    S << "A.Exts[" << I.Aux << "][" << Cell << "] = " << Ra << ";";
    break;
  case BcOp::LoadParam:
    S << D << " = A.Params[" << I.Aux << "];";
    break;
  case BcOp::Rem:
    S << D << " = std::fmod(" << Ra << ", " << Rb << ");";
    break;
  case BcOp::Neg:
    S << D << " = -" << Ra << ";";
    break;
  case BcOp::Min:
    S << D << " = std::fmin(" << Ra << ", " << Rb << ");";
    break;
  case BcOp::Max:
    S << D << " = std::fmax(" << Ra << ", " << Rb << ");";
    break;
  case BcOp::And:
    S << D << " = (" << Ra << " != 0.0) && (" << Rb
      << " != 0.0) ? 1.0 : 0.0;";
    break;
  case BcOp::Or:
    S << D << " = (" << Ra << " != 0.0) || (" << Rb
      << " != 0.0) ? 1.0 : 0.0;";
    break;
  case BcOp::Xor:
    S << D << " = (" << Ra << " != 0.0) != (" << Rb
      << " != 0.0) ? 1.0 : 0.0;";
    break;
  case BcOp::Select:
    S << D << " = " << Ra << " != 0.0 ? " << Rb << " : " << Rc << ";";
    break;
  case BcOp::LutCoord:
    // Mirrors LutTable::coord: NaN clamps to 0 before the int64_t cast.
    S << "{\n      const NativeLutDesc &Lt = A.Luts[" << I.Aux << "];\n"
      << "      double Pos = (" << Ra << " - Lt.Lo) * Lt.InvStep;\n"
      << "      Pos = Pos > 0.0 ? (Pos < Lt.MaxPos ? Pos : Lt.MaxPos) : "
         "0.0;\n"
      << "      double Floor = double(int64_t(Pos));\n"
      << "      Floor = Floor > Lt.MaxIdx ? Lt.MaxIdx : Floor;\n"
      << "      " << D << " = Floor;\n"
      << "      " << Rc << " = Pos - Floor;\n"
      << "    }";
    break;
  case BcOp::LutInterp:
    // Mirrors LutTable::interp.
    S << "{\n      const NativeLutDesc &Lt = A.Luts[" << I.Aux << "];\n"
      << "      const double *Row = Lt.Data + size_t(int64_t(" << Ra
      << ")) * Lt.Cols + " << I.Aux2 << ";\n"
      << "      double Va = Row[0];\n"
      << "      double Vb = Row[size_t(Lt.Cols)];\n"
      << "      " << D << " = Va + " << Rb << " * (Vb - Va);\n"
      << "    }";
    break;
  case BcOp::LutInterpCubic:
    // Mirrors LutTable::interpCubic (four-point Lagrange).
    S << "{\n      const NativeLutDesc &Lt = A.Luts[" << I.Aux << "];\n"
      << "      int64_t Idx = int64_t(" << Ra << ");\n"
      << "      int64_t I0 = Idx > 0 ? Idx - 1 : 0;\n"
      << "      int64_t I3 = Idx + 2 < Lt.Rows ? Idx + 2 : Lt.Rows - 1;\n"
      << "      double P0 = Lt.Data[size_t(I0) * Lt.Cols + " << I.Aux2
      << "];\n"
      << "      double P1 = Lt.Data[size_t(Idx) * Lt.Cols + " << I.Aux2
      << "];\n"
      << "      double P2 = Lt.Data[size_t(Idx + 1) * Lt.Cols + " << I.Aux2
      << "];\n"
      << "      double P3 = Lt.Data[size_t(I3) * Lt.Cols + " << I.Aux2
      << "];\n"
      << "      double Tf = " << Rb << ";\n"
      << "      double W0 = -Tf * (Tf - 1.0) * (Tf - 2.0) * (1.0 / 6.0);\n"
      << "      double W1 = (Tf + 1.0) * (Tf - 1.0) * (Tf - 2.0) * 0.5;\n"
      << "      double W2 = -(Tf + 1.0) * Tf * (Tf - 2.0) * 0.5;\n"
      << "      double W3 = (Tf + 1.0) * Tf * (Tf - 1.0) * (1.0 / 6.0);\n"
      << "      " << D << " = W0 * P0 + W1 * P1 + W2 * P2 + W3 * P3;\n"
      << "    }";
    break;
  default:
    if (const char *Fn = mathFnName(I.Op, C.Fast)) {
      if (I.Op == BcOp::Pow || I.Op == BcOp::Rem)
        S << D << " = " << Fn << "(" << Ra << ", " << Rb << ");";
      else
        S << D << " = " << Fn << "(" << Ra << ");";
    } else if (const char *Sp = binOpSpelling(I.Op)) {
      if (isCmp(I.Op))
        S << D << " = " << Ra << " " << Sp << " " << Rb << " ? 1.0 : 0.0;";
      else
        S << D << " = " << Ra << " " << Sp << " " << Rb << ";";
    }
    break;
  }
  Out += S.str();
  if (needsBarrier(I.Op, C.Fast))
    Out += "\n    asm(\"\" : \"+m\"(" + D + "));";
  Out += "\n";
}

/// One instruction of the vector flavour: a braced block with restrict
/// lane-base pointers and a constant-trip lane loop, mirroring
/// execVectorInstr<W, Fast>.
void emitVectorInstr(std::string &Out, const BcInstr &I, const EmitCtx &C,
                     const std::string &Cell) {
  const unsigned W = C.W;
  auto Base = [&](unsigned Reg) { return std::to_string(size_t(Reg) * W); };
  std::string Lane = "for (int L = 0; L != " + std::to_string(W) + "; ++L)";
  std::ostringstream S;
  S << "    { // " << bcOpName(I.Op) << "\n";
  auto DeclD = [&] {
    S << "      double *LIMPET_RESTRICT D = R + " << Base(I.Dst) << ";\n";
  };
  auto DeclA = [&] {
    S << "      const double *LIMPET_RESTRICT Ra = R + " << Base(I.A)
      << ";\n";
  };
  auto DeclB = [&] {
    S << "      const double *LIMPET_RESTRICT Rb = R + " << Base(I.B)
      << ";\n";
  };
  auto DeclC = [&] {
    S << "      const double *LIMPET_RESTRICT Rc = R + " << Base(I.C)
      << ";\n";
  };

  switch (I.Op) {
  case BcOp::ConstF:
    DeclD();
    S << "      " << Lane << "\n        D[L] = " << bitsLiteral(I.Imm)
      << ";\n";
    break;
  case BcOp::Copy:
    DeclD();
    DeclA();
    S << "      " << Lane << "\n        D[L] = Ra[L];\n";
    break;
  case BcOp::LoadState:
    DeclD();
    switch (C.P.Layout) {
    case codegen::StateLayout::AoSoA:
      S << "      const double *Src = A.State + size_t(" << Cell << ") * "
        << C.P.NumSv << " + " << size_t(I.Aux) * W << ";\n"
        << "      " << Lane << "\n        D[L] = Src[L];\n";
      break;
    case codegen::StateLayout::SoA:
      S << "      const double *Src = A.State + size_t(" << I.Aux
        << ") * A.NumCells + " << Cell << ";\n"
        << "      " << Lane << "\n        D[L] = Src[L];\n";
      break;
    case codegen::StateLayout::AoS:
      S << "      " << Lane << "\n        D[L] = A.State[size_t(" << Cell
        << " + L) * " << C.P.NumSv << " + " << size_t(I.Aux) << "];\n";
      break;
    }
    break;
  case BcOp::StoreState:
    DeclA();
    switch (C.P.Layout) {
    case codegen::StateLayout::AoSoA:
      S << "      double *Dst = A.State + size_t(" << Cell << ") * "
        << C.P.NumSv << " + " << size_t(I.Aux) * W << ";\n"
        << "      " << Lane << "\n        Dst[L] = Ra[L];\n";
      break;
    case codegen::StateLayout::SoA:
      S << "      double *Dst = A.State + size_t(" << I.Aux
        << ") * A.NumCells + " << Cell << ";\n"
        << "      " << Lane << "\n        Dst[L] = Ra[L];\n";
      break;
    case codegen::StateLayout::AoS:
      S << "      " << Lane << "\n        A.State[size_t(" << Cell
        << " + L) * " << C.P.NumSv << " + " << size_t(I.Aux)
        << "] = Ra[L];\n";
      break;
    }
    break;
  case BcOp::LoadExt:
    DeclD();
    S << "      const double *Src = A.Exts[" << I.Aux << "] + " << Cell
      << ";\n"
      << "      " << Lane << "\n        D[L] = Src[L];\n";
    break;
  case BcOp::StoreExt:
    DeclA();
    S << "      double *Dst = A.Exts[" << I.Aux << "] + " << Cell << ";\n"
      << "      " << Lane << "\n        Dst[L] = Ra[L];\n";
    break;
  case BcOp::LoadParam:
    DeclD();
    S << "      " << Lane << "\n        D[L] = A.Params[" << I.Aux
      << "];\n";
    break;
  case BcOp::Rem:
    DeclD();
    DeclA();
    DeclB();
    S << "      " << Lane << "\n        D[L] = std::fmod(Ra[L], Rb[L]);\n";
    break;
  case BcOp::Neg:
    DeclD();
    DeclA();
    S << "      " << Lane << "\n        D[L] = -Ra[L];\n";
    break;
  case BcOp::Min:
    // The vector engine uses the ternary (not fmin): mirror it exactly,
    // NaN behaviour included.
    DeclD();
    DeclA();
    DeclB();
    S << "      " << Lane
      << "\n        D[L] = Ra[L] < Rb[L] ? Ra[L] : Rb[L];\n";
    break;
  case BcOp::Max:
    DeclD();
    DeclA();
    DeclB();
    S << "      " << Lane
      << "\n        D[L] = Ra[L] > Rb[L] ? Ra[L] : Rb[L];\n";
    break;
  case BcOp::And:
    DeclD();
    DeclA();
    DeclB();
    S << "      " << Lane
      << "\n        D[L] = (Ra[L] != 0.0) & (Rb[L] != 0.0) ? 1.0 : 0.0;\n";
    break;
  case BcOp::Or:
    DeclD();
    DeclA();
    DeclB();
    S << "      " << Lane
      << "\n        D[L] = (Ra[L] != 0.0) | (Rb[L] != 0.0) ? 1.0 : 0.0;\n";
    break;
  case BcOp::Xor:
    DeclD();
    DeclA();
    DeclB();
    S << "      " << Lane
      << "\n        D[L] = (Ra[L] != 0.0) != (Rb[L] != 0.0) ? 1.0 : "
         "0.0;\n";
    break;
  case BcOp::Select:
    DeclD();
    DeclA();
    DeclB();
    DeclC();
    S << "      " << Lane
      << "\n        D[L] = Ra[L] != 0.0 ? Rb[L] : Rc[L];\n";
    break;
  case BcOp::LutCoord:
    DeclD();
    DeclA();
    S << "      double *LIMPET_RESTRICT Fr = R + " << Base(I.C) << ";\n"
      << "      const NativeLutDesc &Lt = A.Luts[" << I.Aux << "];\n"
      << "      double Lo = Lt.Lo, InvStep = Lt.InvStep;\n"
      << "      double MaxPos = Lt.MaxPos, MaxIdx = Lt.MaxIdx;\n"
      << "      " << Lane << " {\n"
      << "        double Pos = (Ra[L] - Lo) * InvStep;\n"
      << "        Pos = Pos > 0.0 ? (Pos < MaxPos ? Pos : MaxPos) : 0.0;\n"
      << "        double Floor = double(int64_t(Pos));\n"
      << "        Floor = Floor > MaxIdx ? MaxIdx : Floor;\n"
      << "        D[L] = Floor;\n"
      << "        Fr[L] = Pos - Floor;\n"
      << "      }\n";
    break;
  case BcOp::LutInterp:
    DeclD();
    DeclA();
    DeclB();
    S << "      const NativeLutDesc &Lt = A.Luts[" << I.Aux << "];\n"
      << "      const double *LIMPET_RESTRICT Tab = Lt.Data;\n"
      << "      int64_t Cols = Lt.Cols;\n"
      << "      " << Lane << " {\n"
      << "        int64_t Idx = int64_t(Ra[L]);\n"
      << "        double Lo = Tab[Idx * Cols + " << I.Aux2 << "];\n"
      << "        double Hi = Tab[Idx * Cols + Cols + " << I.Aux2 << "];\n"
      << "        D[L] = Lo + Rb[L] * (Hi - Lo);\n"
      << "      }\n";
    break;
  case BcOp::LutInterpCubic:
    DeclD();
    DeclA();
    DeclB();
    S << "      const NativeLutDesc &Lt = A.Luts[" << I.Aux << "];\n"
      << "      const double *LIMPET_RESTRICT Tab = Lt.Data;\n"
      << "      int64_t Cols = Lt.Cols;\n"
      << "      int64_t LastRow = Lt.Rows - 1;\n"
      << "      " << Lane << " {\n"
      << "        int64_t Idx = int64_t(Ra[L]);\n"
      << "        int64_t I0 = Idx > 0 ? Idx - 1 : 0;\n"
      << "        int64_t I3 = Idx + 2 < LastRow + 1 ? Idx + 2 : LastRow;\n"
      << "        double P0 = Tab[I0 * Cols + " << I.Aux2 << "];\n"
      << "        double P1 = Tab[Idx * Cols + " << I.Aux2 << "];\n"
      << "        double P2 = Tab[(Idx + 1) * Cols + " << I.Aux2 << "];\n"
      << "        double P3 = Tab[I3 * Cols + " << I.Aux2 << "];\n"
      << "        double Tf = Rb[L];\n"
      << "        double W0 = -Tf * (Tf - 1.0) * (Tf - 2.0) * (1.0 / "
         "6.0);\n"
      << "        double W1 = (Tf + 1.0) * (Tf - 1.0) * (Tf - 2.0) * "
         "0.5;\n"
      << "        double W2 = -(Tf + 1.0) * Tf * (Tf - 2.0) * 0.5;\n"
      << "        double W3 = (Tf + 1.0) * Tf * (Tf - 1.0) * (1.0 / "
         "6.0);\n"
      << "        D[L] = W0 * P0 + W1 * P1 + W2 * P2 + W3 * P3;\n"
      << "      }\n";
    break;
  default:
    if (const char *Fn = mathFnName(I.Op, C.Fast)) {
      DeclD();
      DeclA();
      if (I.Op == BcOp::Pow) {
        DeclB();
        S << "      " << Lane << "\n        D[L] = " << Fn
          << "(Ra[L], Rb[L]);\n";
      } else {
        S << "      " << Lane << "\n        D[L] = " << Fn << "(Ra[L]);\n";
      }
    } else if (const char *Sp = binOpSpelling(I.Op)) {
      DeclD();
      DeclA();
      DeclB();
      if (isCmp(I.Op))
        S << "      " << Lane << "\n        D[L] = Ra[L] " << Sp
          << " Rb[L] ? 1.0 : 0.0;\n";
      else
        S << "      " << Lane << "\n        D[L] = Ra[L] " << Sp
          << " Rb[L];\n";
    }
    break;
  }
  if (needsBarrier(I.Op, C.Fast))
    S << "      asm(\"\" : \"+m\"(*(double(*)[" << W << "])(R + "
      << Base(I.Dst) << ")));\n";
  S << "    }\n";
  Out += S.str();
}

/// Emits one run function over [Begin, End): the scalar mirror when
/// C.W == 1, the W-block vector mirror otherwise.
void emitRunFunction(std::string &Out, const EmitCtx &C,
                     const std::string &FnName) {
  const BcProgram &P = C.P;
  const unsigned W = C.W;
  size_t NumSlots = size_t(P.NumRegs) * W;
  Out += "static void " + FnName +
         "(const NativeKernelArgs &A, int64_t Begin, int64_t End) {\n";
  Out += "  double R[" + std::to_string(NumSlots == 0 ? 1 : NumSlots) +
         "];\n";
  Out += "  for (size_t I = 0; I != " + std::to_string(NumSlots) +
         "; ++I)\n    R[I] = 0.0;\n";
  if (P.HasDt) {
    if (W == 1)
      Out += "  R[" + std::to_string(P.DtReg) + "] = A.Dt;\n";
    else
      Out += "  for (int L = 0; L != " + std::to_string(W) +
             "; ++L)\n    R[" + std::to_string(size_t(P.DtReg) * W) +
             " + L] = A.Dt;\n";
  }
  if (P.HasT) {
    if (W == 1)
      Out += "  R[" + std::to_string(P.TReg) + "] = A.T;\n";
    else
      Out += "  for (int L = 0; L != " + std::to_string(W) +
             "; ++L)\n    R[" + std::to_string(size_t(P.TReg) * W) +
             " + L] = A.T;\n";
  }
  // Prologue cell convention mirrors the engines: the scalar flavour runs
  // it at cell 0, the vector flavour at the range start (lane-uniform
  // either way — it never touches per-cell storage).
  Out += "  {\n";
  Out += W == 1 ? "    const int64_t Cell = 0; (void)Cell;\n"
                : "    const int64_t Cell = Begin; (void)Cell;\n";
  for (const BcInstr &I : P.Prologue) {
    if (W == 1)
      emitScalarInstr(Out, I, C, "Cell");
    else
      emitVectorInstr(Out, I, C, "Cell");
  }
  Out += "  }\n";
  if (W == 1)
    Out += "  for (int64_t Cell = Begin; Cell != End; ++Cell) {\n";
  else
    Out += "  for (int64_t Cell = Begin; Cell + " + std::to_string(W) +
           " <= End; Cell += " + std::to_string(W) + ") {\n";
  for (const BcInstr &I : P.Body) {
    if (W == 1)
      emitScalarInstr(Out, I, C, "Cell");
    else
      emitVectorInstr(Out, I, C, "Cell");
  }
  Out += "  }\n";
  Out += "}\n\n";
}

} // namespace

std::string compiler::emitKernelSource(const exec::CompiledModel &M,
                                       std::string_view ModelName,
                                       uint64_t Key) {
  const BcProgram &P = M.program();
  const exec::EngineConfig &Cfg = M.config();
  const unsigned W = Cfg.Width;
  const bool Fast = Cfg.FastMath;

  std::string S;
  S.reserve(64 * 1024);
  S += "// Generated by limpet KernelEmitter v" +
       std::to_string(kKernelEmitterVersion) + " — do not edit.\n";
  S += "// model: " + std::string(ModelName) + "\n";
  S += "// config: " + exec::engineConfigName(Cfg) + "\n";
  S += "// key: " + hex16(Key) + "\n";
  S += "#include <cmath>\n#include <cstdint>\n#include <cstring>\n\n";
  if (Fast) {
    // Self-contained copy of the VecMath kernels: the exact header the
    // host was built with, so inlining and contraction match.
    S += kVecMathSource;
    S += "\n";
  }
  S += "#define LIMPET_RESTRICT __restrict\n\n";
  S += "namespace {\n\n";
  // C ABI mirror of exec::NativeKernel.h — bump the ABI version there if
  // these ever change.
  S += "struct NativeLutDesc {\n"
       "  const double *Data;\n"
       "  int64_t Rows;\n"
       "  int64_t Cols;\n"
       "  double Lo;\n"
       "  double InvStep;\n"
       "  double MaxPos;\n"
       "  double MaxIdx;\n"
       "};\n\n"
       "struct NativeKernelArgs {\n"
       "  double *State;\n"
       "  double *const *Exts;\n"
       "  const double *Params;\n"
       "  int64_t Start;\n"
       "  int64_t End;\n"
       "  int64_t NumCells;\n"
       "  double Dt;\n"
       "  double T;\n"
       "  const NativeLutDesc *Luts;\n"
       "};\n\n";
  S += "inline double lbits(unsigned long long B) {\n"
       "  double D;\n"
       "  std::memcpy(&D, &B, 8);\n"
       "  return D;\n"
       "}\n\n";

  if (W > 1) {
    EmitCtx Main{P, Fast, W};
    emitRunFunction(S, Main, "limpet_run_main");
  }
  EmitCtx Tail{P, Fast, 1};
  emitRunFunction(S, Tail, "limpet_run_tail");
  S += "} // namespace\n\n";

  S += "extern \"C\" int32_t limpet_kernel_abi_version() { return " +
       std::to_string(exec::kNativeKernelAbiVersion) + "; }\n\n";
  S += "extern \"C\" const char *limpet_kernel_meta() {\n  return \"" +
       std::string(ModelName) + " " + exec::engineConfigName(Cfg) + " key=" +
       hex16(Key) + " emitter=v" + std::to_string(kKernelEmitterVersion) +
       "\";\n}\n\n";
  S += "extern \"C\" void limpet_kernel_step(const NativeKernelArgs "
       "*Args) {\n";
  S += "  const NativeKernelArgs &A = *Args;\n";
  if (W > 1) {
    // Mirrors Backend::dispatch: whole W-blocks through the vector
    // flavour, the ragged tail through the scalar flavour with its own
    // fresh register file and prologue run.
    S += "  int64_t Main = A.Start + (A.End - A.Start) / " +
         std::to_string(W) + " * " + std::to_string(W) + ";\n";
    S += "  if (Main > A.Start)\n    limpet_run_main(A, A.Start, Main);\n";
    S += "  if (Main < A.End)\n    limpet_run_tail(A, Main, A.End);\n";
  } else {
    S += "  limpet_run_tail(A, A.Start, A.End);\n";
  }
  S += "}\n";
  return S;
}

//===----------------------------------------------------------------------===//
// Cache + compile orchestration
//===----------------------------------------------------------------------===//

namespace {

std::string nativeDiskPath(uint64_t Key) {
  std::string Dir = CompileCache::global().diskDir();
  if (Dir.empty())
    return "";
  return Dir + "/" + hex16(Key) + ".native.so";
}

Status runCompiler(const NativeToolchain &TC, const std::string &TuPath,
                   const std::string &SoPath, const std::string &ErrPath) {
  std::vector<std::string> Argv;
  Argv.push_back(TC.Compiler);
  for (std::string &Tok : splitFlags(TC.Flags))
    Argv.push_back(std::move(Tok));
  Argv.push_back("-o");
  Argv.push_back(SoPath);
  Argv.push_back(TuPath);

  telemetry::counter("native.cc.count").add(1);
#if LIMPET_TELEMETRY_ENABLED
  auto T0 = telemetry::Clock::now();
#endif
  int RC = runProcess(Argv, "", ErrPath);
#if LIMPET_TELEMETRY_ENABLED
  telemetry::counter("native.cc.ns").add(telemetry::nanosecondsSince(T0));
#endif
  if (RC == 0)
    return Status::success();
  std::string Err = readFilePrefix(ErrPath, 2000);
  return Status::error("native: " + TC.Compiler + " exited " +
                       std::to_string(RC) +
                       (Err.empty() ? std::string() : ":\n" + Err));
}

} // namespace

NativeAttachResult compiler::getOrEmitNativeKernel(const exec::CompiledModel &M,
                                                   uint64_t CompileKey,
                                                   std::string_view ModelName) {
  NativeAttachResult Res;
  auto FailWith = [&Res](Status St) -> NativeAttachResult & {
    telemetry::counter("native.attach.fail").add(1);
    Res.Err = std::move(St);
    return Res;
  };

  Expected<NativeToolchain> TC = nativeToolchain();
  if (!TC)
    return FailWith(TC.status());

  const exec::EngineConfig &Cfg = M.config();
  uint64_t Key = nativeKernelKey(CompileKey, kKernelEmitterVersion, *TC);
  Res.Key = Key;
  std::string KernelName = "native/" + exec::engineConfigName(Cfg);

  // Tier 1: the in-process loaded-kernel registry.
  {
    std::lock_guard<std::mutex> Lock(registryMutex());
    auto It = registry().find(Key);
    if (It != registry().end()) {
      telemetry::counter("native.cache.hit").add(1);
      Res.Kernel = It->second;
      Res.MemoryHit = true;
      return Res;
    }
  }

  auto Publish = [&](std::shared_ptr<exec::NativeKernel> K) {
    std::lock_guard<std::mutex> Lock(registryMutex());
    // Two threads can race the same miss; the first insert wins and both
    // share its kernel.
    auto [It, Inserted] = registry().emplace(Key, std::move(K));
    Res.Kernel = It->second;
  };

  // Tier 2: the on-disk .so cache next to the artifact cache.
  std::string DiskPath = nativeDiskPath(Key);
  if (!DiskPath.empty() && ::access(DiskPath.c_str(), R_OK) == 0) {
    Expected<std::shared_ptr<exec::NativeKernel>> K =
        exec::NativeKernel::load(DiskPath, Cfg.Width, Cfg.FastMath,
                                 KernelName);
    if (K) {
      telemetry::counter("native.cache.disk_hit").add(1);
      Res.DiskHit = true;
      Publish(*K);
      return Res;
    }
    // Corrupt or truncated entry: count it, delete it, re-emit below —
    // the same discipline the artifact disk tier uses.
    telemetry::counter("native.cache.bad").add(1);
    ::unlink(DiskPath.c_str());
  }
  telemetry::counter("native.cache.miss").add(1);

  // Tier 3: emit the TU and shell out to the toolchain.
  TempDir Dir;
  Dir.Keep = keepTuRequested();
  if (Status St = Dir.create(); !St)
    return FailWith(St);
  std::string TuPath = Dir.Path + "/kernel.cpp";
  std::string SoPath = Dir.Path + "/kernel.so";
  std::string ErrPath = Dir.Path + "/cc.err";

  std::string Source = emitKernelSource(M, ModelName, Key);
  if (Status St = writeFileAtomic(Source, TuPath); !St)
    return FailWith(St);
  if (Status St = runCompiler(*TC, TuPath, SoPath, ErrPath); !St) {
    if (Dir.Keep)
      std::fprintf(stderr, "limpet: native TU kept at %s\n",
                   Dir.Path.c_str());
    return FailWith(St);
  }

  // Promote into the disk tier so the next process skips cc entirely;
  // when that fails (read-only dir, cross-device copy error) the kernel
  // still loads from the scratch dir — dlopen's mapping outlives the
  // file's unlink.
  std::string LoadPath = SoPath;
  if (!DiskPath.empty()) {
    if (moveFile(SoPath, DiskPath))
      LoadPath = DiskPath;
  }
  Expected<std::shared_ptr<exec::NativeKernel>> K =
      exec::NativeKernel::load(LoadPath, Cfg.Width, Cfg.FastMath, KernelName);
  if (!K)
    return FailWith(K.status());
  if (Dir.Keep)
    std::fprintf(stderr, "limpet: native TU kept at %s\n", Dir.Path.c_str());
  Publish(*K);
  return Res;
}

void compiler::clearNativeKernelRegistry() {
  std::lock_guard<std::mutex> Lock(registryMutex());
  registry().clear();
}
