//===- CompileCache.cpp ---------------------------------------------------===//

#include "compiler/CompileCache.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <vector>

using namespace limpet;
using namespace limpet::compiler;

uint64_t compiler::compileCacheKey(std::string_view Source,
                                   const exec::EngineConfig &Cfg) {
  // Chain every compile-relevant input through one running hash. The
  // config is folded field-by-field (not via engineConfigName) so adding
  // a field to EngineConfig only needs one line here to invalidate.
  uint64_t H = fnv1a64(Source);
  char CfgBytes[] = {char(Cfg.Width),    char(Cfg.Layout),
                     char(Cfg.FastMath), char(Cfg.EnableLuts),
                     char(Cfg.CubicLut), char(Cfg.RunPasses)};
  H = fnv1a64(std::string_view(CfgBytes, sizeof CfgBytes), H);
  H = fnv1a64(Cfg.PassPipeline, H);
  char Version[] = {char(kArtifactFormatVersion),
                    char(kArtifactFormatVersion >> 8),
                    char(kArtifactFormatVersion >> 16),
                    char(kArtifactFormatVersion >> 24)};
  H = fnv1a64(std::string_view(Version, sizeof Version), H);
  return H;
}

CompileCache &CompileCache::global() {
  static CompileCache C;
  return C;
}

std::string CompileCache::diskDir() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (DiskOverride)
      return *DiskOverride;
  }
  const char *Env = std::getenv("LIMPET_CACHE_DIR");
  return Env ? Env : "";
}

void CompileCache::setDiskDir(std::string Dir) {
  std::lock_guard<std::mutex> Lock(Mu);
  DiskOverride = std::move(Dir);
}

std::string CompileCache::diskPath(uint64_t Key) {
  std::string Dir = diskDir();
  if (Dir.empty())
    return "";
  char Hex[17];
  std::snprintf(Hex, sizeof Hex, "%016llx", (unsigned long long)Key);
  return Dir + "/" + Hex + ".lmpa";
}

std::optional<Artifact> CompileCache::lookup(uint64_t Key, bool *FromDisk) {
  if (FromDisk)
    *FromDisk = false;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    auto It = Memory.find(Key);
    if (It != Memory.end()) {
      if (Expected<Artifact> A = deserializeArtifact(It->second)) {
        telemetry::counter("compile.cache.hit").add(1);
        return *A;
      }
      // A memory entry can only be bad if something scribbled on it;
      // drop it and fall through to the slower tiers.
      Memory.erase(It);
    }
  }

  std::string Path = diskPath(Key);
  if (!Path.empty()) {
    if (Expected<Artifact> A = readArtifactFile(Path)) {
      telemetry::counter("compile.cache.disk_hit").add(1);
      if (FromDisk)
        *FromDisk = true;
      std::lock_guard<std::mutex> Lock(Mu);
      Memory.emplace(Key, serializeArtifact(*A));
      return *A;
    } else if (std::FILE *F = std::fopen(Path.c_str(), "rb")) {
      // The file exists but did not parse: corrupt or truncated. Count
      // it and let the caller recompile (the store will overwrite it).
      std::fclose(F);
      telemetry::counter("compile.cache.bad").add(1);
    }
  }

  telemetry::counter("compile.cache.miss").add(1);
  return std::nullopt;
}

void CompileCache::store(uint64_t Key, const Artifact &A) {
  std::string Bytes = serializeArtifact(A);
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Memory[Key] = Bytes;
  }
  std::string Path = diskPath(Key);
  if (!Path.empty()) {
    // Best effort: a read-only or missing directory must not fail the
    // compile, it just loses the warm-start benefit.
    if (writeArtifactFile(A, Path))
      telemetry::counter("compile.cache.store").add(1);
    if (uint64_t Budget = diskBudget())
      gcDiskTier(Budget);
  } else {
    telemetry::counter("compile.cache.store").add(1);
  }
}

uint64_t CompileCache::diskBudget() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    if (BudgetOverride)
      return *BudgetOverride;
  }
  const char *Env = std::getenv("LIMPET_CACHE_MAX_BYTES");
  return Env ? std::strtoull(Env, nullptr, 10) : 0;
}

void CompileCache::setDiskBudget(std::optional<uint64_t> Budget) {
  std::lock_guard<std::mutex> Lock(Mu);
  BudgetOverride = Budget;
}

CompileCache::GcStats CompileCache::gcDiskTier(uint64_t MaxBytes) {
  namespace fs = std::filesystem;
  GcStats Stats;
  std::string Dir = diskDir();
  if (Dir.empty())
    return Stats;

  struct Entry {
    fs::file_time_type MTime;
    uint64_t Size;
    std::string Path;
  };
  std::vector<Entry> Entries;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec)) {
    if (E.path().extension() != ".lmpa")
      continue;
    std::error_code SEc, TEc;
    uint64_t Size = E.file_size(SEc);
    fs::file_time_type MTime = E.last_write_time(TEc);
    if (SEc || TEc)
      continue; // raced with a concurrent GC/writer; skip
    Stats.BytesBefore += Size;
    Entries.push_back({MTime, Size, E.path().string()});
  }
  Stats.BytesAfter = Stats.BytesBefore;
  if (MaxBytes == 0 || Stats.BytesBefore <= MaxBytes)
    return Stats;

  // LRU by mtime: oldest entries go first. A removal that fails (another
  // process evicted the same file) just moves on.
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.MTime < B.MTime; });
  for (const Entry &E : Entries) {
    if (Stats.BytesAfter <= MaxBytes)
      break;
    if (std::remove(E.Path.c_str()) == 0) {
      Stats.BytesAfter -= E.Size;
      ++Stats.FilesRemoved;
      telemetry::counter("compile.cache.evict").add(1);
    }
  }
  return Stats;
}

void CompileCache::clearMemory() {
  std::lock_guard<std::mutex> Lock(Mu);
  Memory.clear();
}

size_t CompileCache::memorySize() {
  std::lock_guard<std::mutex> Lock(Mu);
  return Memory.size();
}
