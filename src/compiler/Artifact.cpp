//===- Artifact.cpp -------------------------------------------------------===//

#include "compiler/Artifact.h"

#include "compiler/Serialize.h"

#include <cstring>

using namespace limpet;
using namespace limpet::compiler;
using namespace limpet::exec;

uint64_t compiler::fnv1a64(std::string_view Bytes, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Bytes) {
    H ^= C;
    H *= 0x100000001b3ull;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// Byte-level writer / reader (shared with sim/Checkpoint via Serialize.h)
//===----------------------------------------------------------------------===//

namespace {

/// "LMPA" little-endian.
constexpr uint32_t kMagic = 0x41504d4cu;

using Writer = ByteWriter;
using Reader = ByteReader;

void writeInstrs(Writer &W, const std::vector<BcInstr> &Instrs) {
  W.u32(uint32_t(Instrs.size()));
  for (const BcInstr &I : Instrs) {
    W.u8(uint8_t(I.Op));
    W.u16(I.Dst);
    W.u16(I.A);
    W.u16(I.B);
    W.u16(I.C);
    W.i32(I.Aux);
    W.i32(I.Aux2);
    W.f64(I.Imm);
  }
}

bool readInstrs(Reader &R, std::vector<BcInstr> &Instrs) {
  uint32_t N = R.u32();
  // Each serialized instruction is 25 bytes; reject counts the remaining
  // payload cannot hold instead of allocating from a corrupted length.
  if (R.failed() || size_t(N) * 25 > R.remaining())
    return false;
  Instrs.resize(N);
  for (BcInstr &I : Instrs) {
    I.Op = BcOp(R.u8());
    I.Dst = R.u16();
    I.A = R.u16();
    I.B = R.u16();
    I.C = R.u16();
    I.Aux = R.i32();
    I.Aux2 = R.i32();
    I.Imm = R.f64();
  }
  return !R.failed();
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string compiler::serializeArtifact(const Artifact &A) {
  Writer P; // payload
  P.str(A.ModelName);
  P.u64(A.SourceHash);

  const EngineConfig &C = A.Config;
  P.u32(C.Width);
  P.u8(uint8_t(C.Layout));
  P.u8(C.FastMath);
  P.u8(C.EnableLuts);
  P.u8(C.CubicLut);
  P.u8(C.RunPasses);
  P.str(C.PassPipeline);

  const BcProgram &B = A.Program;
  writeInstrs(P, B.Prologue);
  writeInstrs(P, B.Body);
  P.u32(B.NumRegs);
  P.u8(B.HasDt);
  P.u8(B.HasT);
  P.u16(B.DtReg);
  P.u16(B.TReg);
  P.u8(uint8_t(B.Layout));
  P.u32(B.NumSv);
  P.u32(B.AoSoAW);
  P.u32(B.NumExternals);
  P.u32(B.NumParams);
  P.f64(B.Counts.FlopsPerCell);
  P.f64(B.Counts.LoadBytesPerCell);
  P.f64(B.Counts.StoreBytesPerCell);
  P.u32(B.LutOpsPerCell);
  P.u32(B.MathOpsPerCell);

  P.u32(uint32_t(A.Luts.Tables.size()));
  for (const runtime::LutTable &T : A.Luts.Tables) {
    P.f64(T.lo());
    P.f64(T.hi());
    P.f64(T.step());
    P.u32(uint32_t(T.cols()));
    P.u32(uint32_t(T.rows()));
    for (int Row = 0; Row != T.rows(); ++Row)
      for (int Col = 0; Col != T.cols(); ++Col)
        P.f64(T.data()[size_t(Row) * T.cols() + Col]);
  }

  Writer W;
  W.u32(kMagic);
  W.u32(A.FormatVersion);
  W.u64(fnv1a64(P.Out));
  W.Out += P.Out;
  return W.Out;
}

Expected<Artifact> compiler::deserializeArtifact(std::string_view Bytes) {
  auto Err = [](const char *Msg) {
    return Expected<Artifact>(
        Status::error(std::string("artifact: ") + Msg));
  };
  Reader H(Bytes);
  if (Bytes.size() < 16)
    return Err("truncated header");
  if (H.u32() != kMagic)
    return Err("bad magic (not a limpet artifact)");
  uint32_t Version = H.u32();
  if (Version != kArtifactFormatVersion)
    return Err("format version mismatch");
  uint64_t Checksum = H.u64();
  std::string_view Payload = Bytes.substr(16);
  if (fnv1a64(Payload) != Checksum)
    return Err("checksum mismatch (corrupted or truncated)");

  Reader R(Payload);
  Artifact A;
  A.FormatVersion = Version;
  A.ModelName = R.str();
  A.SourceHash = R.u64();

  EngineConfig &C = A.Config;
  C.Width = R.u32();
  C.Layout = codegen::StateLayout(R.u8());
  C.FastMath = R.u8() != 0;
  C.EnableLuts = R.u8() != 0;
  C.CubicLut = R.u8() != 0;
  C.RunPasses = R.u8() != 0;
  C.PassPipeline = R.str();

  BcProgram &B = A.Program;
  if (!readInstrs(R, B.Prologue) || !readInstrs(R, B.Body))
    return Err("truncated instruction stream");
  B.NumRegs = R.u32();
  B.HasDt = R.u8() != 0;
  B.HasT = R.u8() != 0;
  B.DtReg = R.u16();
  B.TReg = R.u16();
  B.Layout = codegen::StateLayout(R.u8());
  B.NumSv = R.u32();
  B.AoSoAW = R.u32();
  B.NumExternals = R.u32();
  B.NumParams = R.u32();
  B.Counts.FlopsPerCell = R.f64();
  B.Counts.LoadBytesPerCell = R.f64();
  B.Counts.StoreBytesPerCell = R.f64();
  B.LutOpsPerCell = R.u32();
  B.MathOpsPerCell = R.u32();

  uint32_t NumTables = R.u32();
  if (R.failed() || size_t(NumTables) > R.remaining())
    return Err("truncated LUT section");
  for (uint32_t I = 0; I != NumTables; ++I) {
    double Lo = R.f64(), Hi = R.f64(), Step = R.f64();
    // Cols may legitimately be 0: a model whose LUT range ends up with no
    // approximable columns still carries the (empty) table so bytecode
    // table indices stay stable.
    uint32_t Cols = R.u32(), Rows = R.u32();
    if (R.failed() || !(Step > 0) || !(Hi > Lo) ||
        size_t(Rows) * Cols * 8 > R.remaining())
      return Err("malformed LUT table header");
    runtime::LutTable T(Lo, Hi, Step, int(Cols));
    if (uint32_t(T.rows()) != Rows)
      return Err("LUT row count does not match its range");
    for (uint32_t Row = 0; Row != Rows; ++Row)
      for (uint32_t Col = 0; Col != Cols; ++Col)
        T.at(int(Row), int(Col)) = R.f64();
    A.Luts.Tables.push_back(std::move(T));
  }
  if (R.failed())
    return Err("truncated payload");
  if (R.remaining() != 0)
    return Err("trailing bytes after payload");
  return A;
}

//===----------------------------------------------------------------------===//
// Files
//===----------------------------------------------------------------------===//

Status compiler::writeArtifactFile(const Artifact &A,
                                   const std::string &Path) {
  return writeFileAtomic(serializeArtifact(A), Path);
}

Expected<Artifact> compiler::readArtifactFile(const std::string &Path) {
  std::string Bytes;
  if (Status S = readFileBytes(Path, Bytes); !S)
    return Expected<Artifact>(
        Status::error("artifact: " + S.message()));
  return deserializeArtifact(Bytes);
}

//===----------------------------------------------------------------------===//
// Comparison helpers
//===----------------------------------------------------------------------===//

static bool instrsIdentical(const std::vector<BcInstr> &A,
                            const std::vector<BcInstr> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I) {
    const BcInstr &X = A[I], &Y = B[I];
    uint64_t XBits, YBits;
    std::memcpy(&XBits, &X.Imm, sizeof XBits);
    std::memcpy(&YBits, &Y.Imm, sizeof YBits);
    if (X.Op != Y.Op || X.Dst != Y.Dst || X.A != Y.A || X.B != Y.B ||
        X.C != Y.C || X.Aux != Y.Aux || X.Aux2 != Y.Aux2 || XBits != YBits)
      return false;
  }
  return true;
}

bool compiler::programsIdentical(const BcProgram &A, const BcProgram &B) {
  return instrsIdentical(A.Prologue, B.Prologue) &&
         instrsIdentical(A.Body, B.Body) && A.NumRegs == B.NumRegs &&
         A.HasDt == B.HasDt && A.HasT == B.HasT && A.DtReg == B.DtReg &&
         A.TReg == B.TReg && A.Layout == B.Layout && A.NumSv == B.NumSv &&
         A.AoSoAW == B.AoSoAW && A.NumExternals == B.NumExternals &&
         A.NumParams == B.NumParams &&
         A.Counts.FlopsPerCell == B.Counts.FlopsPerCell &&
         A.Counts.LoadBytesPerCell == B.Counts.LoadBytesPerCell &&
         A.Counts.StoreBytesPerCell == B.Counts.StoreBytesPerCell &&
         A.LutOpsPerCell == B.LutOpsPerCell &&
         A.MathOpsPerCell == B.MathOpsPerCell;
}

bool compiler::lutsIdentical(const runtime::LutTableSet &A,
                             const runtime::LutTableSet &B) {
  if (A.Tables.size() != B.Tables.size())
    return false;
  for (size_t I = 0; I != A.Tables.size(); ++I) {
    const runtime::LutTable &X = A.Tables[I], &Y = B.Tables[I];
    if (X.lo() != Y.lo() || X.hi() != Y.hi() || X.step() != Y.step() ||
        X.rows() != Y.rows() || X.cols() != Y.cols())
      return false;
    size_t N = size_t(X.rows()) * X.cols();
    if (std::memcmp(X.data(), Y.data(), N * sizeof(double)) != 0)
      return false;
  }
  return true;
}
