//===- Preprocessor.h - AST compile-time constant folding -------*- C++-*-===//
//
// The analogue of limpetMLIR's preprocessor (paper Sec. 3.2): analyzes AST
// nodes to determine which values can be calculated at compile time —
// arithmetic, mathematical calls and conditionals over constants — and
// propagates them before code generation. Runs over the inlined
// expressions of a ModelInfo.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EASYML_PREPROCESSOR_H
#define LIMPET_EASYML_PREPROCESSOR_H

#include "easyml/ModelInfo.h"

namespace limpet {
namespace easyml {

/// Statistics of a preprocessor run.
struct PreprocessorStats {
  size_t FoldedNodes = 0;
};

/// Folds every compile-time-constant subtree of \p E into a Number node.
/// Shares unchanged subtrees; counts folds into \p Stats when non-null.
ExprPtr foldConstants(const ExprPtr &E, PreprocessorStats *Stats = nullptr);

/// Runs constant folding over all inlined expressions of \p Info in place.
PreprocessorStats preprocessModel(ModelInfo &Info);

} // namespace easyml
} // namespace limpet

#endif // LIMPET_EASYML_PREPROCESSOR_H
