//===- Parser.cpp ---------------------------------------------------------===//

#include "easyml/Parser.h"

#include "easyml/Lexer.h"
#include "support/Casting.h"

using namespace limpet;
using namespace limpet::easyml;

namespace {

class ParserImpl {
public:
  ParserImpl(std::string_view ModelName, std::string_view Source,
             DiagnosticEngine &Diags)
      : Diags(Diags) {
    Model.Name = std::string(ModelName);
    Tokens = tokenize(Source, Diags);
  }

  ParsedModel run() {
    while (!at(TokenKind::Eof)) {
      if (!parseTopLevelStatement())
        recover();
    }
    return std::move(Model);
  }

private:
  DiagnosticEngine &Diags;
  ParsedModel Model;
  std::vector<Token> Tokens;
  size_t Pos = 0;
  /// Names the next markup statement applies to.
  std::vector<std::string> MarkupTargets;

  // --- token helpers ------------------------------------------------------

  const Token &peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Tokens.size() ? Tokens[I] : Tokens.back();
  }
  bool at(TokenKind Kind) const { return peek().Kind == Kind; }
  const Token &advance() { return Tokens[Pos < Tokens.size() - 1 ? Pos++ : Pos]; }

  bool expect(TokenKind Kind, std::string_view What) {
    if (at(Kind)) {
      advance();
      return true;
    }
    Diags.error(peek().Loc, "expected " + std::string(tokenKindName(Kind)) +
                                " " + std::string(What) + ", got " +
                                std::string(tokenKindName(peek().Kind)));
    return false;
  }

  /// Skips to just past the next ';' (or a '}') for error recovery.
  void recover() {
    while (!at(TokenKind::Eof)) {
      TokenKind K = advance().Kind;
      if (K == TokenKind::Semicolon || K == TokenKind::RBrace)
        return;
    }
  }

  void declare(const std::string &Name) {
    for (const std::string &N : Model.DeclOrder)
      if (N == Name)
        return;
    Model.DeclOrder.push_back(Name);
  }

  // --- statements ---------------------------------------------------------

  bool parseTopLevelStatement() {
    if (at(TokenKind::Dot))
      return parseMarkupStatement();
    if (at(TokenKind::KwIf)) {
      StmtPtr S = parseIfStatement();
      if (!S)
        return false;
      Model.Statements.push_back(std::move(S));
      return true;
    }
    if (at(TokenKind::Identifier) && peek().Text == "group" &&
        peek(1).Kind == TokenKind::LBrace)
      return parseGroupStatement();
    if (at(TokenKind::Identifier))
      return parseDeclOrAssign();
    Diags.error(peek().Loc, "expected a statement, got " +
                                std::string(tokenKindName(peek().Kind)));
    return false;
  }

  /// IDENT ';' (declaration) or IDENT '=' expr ';' (assignment).
  bool parseDeclOrAssign() {
    Token Name = advance();
    declare(Name.Text);
    MarkupTargets = {Name.Text};

    if (at(TokenKind::Semicolon)) {
      advance();
      // Markup applications may follow on the same or subsequent lines.
      return true;
    }
    if (!expect(TokenKind::Assign, "in assignment"))
      return false;
    ExprPtr Value = parseExpr();
    if (!Value)
      return false;
    if (!expect(TokenKind::Semicolon, "after assignment"))
      return false;
    Model.Statements.push_back(
        Stmt::makeAssign(Name.Text, std::move(Value), Name.Loc));
    return true;
  }

  /// '.' IDENT '(' args ')' ';' applied to the current markup targets.
  bool parseMarkupStatement() {
    SourceLoc Loc = peek().Loc;
    advance(); // '.'
    if (!at(TokenKind::Identifier)) {
      Diags.error(peek().Loc, "expected markup name after '.'");
      return false;
    }
    std::string Name = advance().Text;
    if (!applyMarkup(Name, Loc))
      return false;
    // Allow chained markups: .nodal().units("mV");
    while (at(TokenKind::Dot)) {
      advance();
      if (!at(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected markup name after '.'");
        return false;
      }
      std::string Next = advance().Text;
      if (!applyMarkup(Next, Loc))
        return false;
    }
    return expect(TokenKind::Semicolon, "after markup");
  }

  /// Parses '(' args ')' and applies the markup named \p Name to the
  /// current targets.
  bool applyMarkup(const std::string &Name, SourceLoc Loc) {
    if (!expect(TokenKind::LParen, "after markup name"))
      return false;

    // Collect raw arguments (numbers with optional sign, identifiers,
    // strings).
    std::vector<Token> Args;
    std::vector<double> NumArgs;
    if (!at(TokenKind::RParen)) {
      while (true) {
        double Sign = 1;
        if (at(TokenKind::Minus)) {
          advance();
          Sign = -1;
        }
        Token Arg = peek();
        if (Arg.Kind != TokenKind::Number &&
            Arg.Kind != TokenKind::Identifier &&
            Arg.Kind != TokenKind::String) {
          Diags.error(Arg.Loc, "invalid markup argument");
          return false;
        }
        advance();
        Arg.NumberValue *= Sign;
        Args.push_back(Arg);
        if (Arg.Kind == TokenKind::Number)
          NumArgs.push_back(Arg.NumberValue);
        if (!at(TokenKind::Comma))
          break;
        advance();
      }
    }
    if (!expect(TokenKind::RParen, "after markup arguments"))
      return false;

    if (MarkupTargets.empty()) {
      Diags.error(Loc, "markup '." + Name + "()' has no target variable");
      return false;
    }

    for (const std::string &Target : MarkupTargets) {
      VarMarkups &M = Model.markupsFor(Target);
      if (Name == "external") {
        M.External = true;
      } else if (Name == "nodal") {
        M.Nodal = true;
      } else if (Name == "param") {
        M.Param = true;
      } else if (Name == "regional") {
        M.Regional = true;
      } else if (Name == "lookup") {
        if (NumArgs.size() != 3) {
          Diags.error(Loc, "'.lookup()' expects (lo, hi, step)");
          return false;
        }
        M.HasLookup = true;
        M.LookupLo = NumArgs[0];
        M.LookupHi = NumArgs[1];
        M.LookupStep = NumArgs[2];
      } else if (Name == "method") {
        if (Args.size() != 1 || Args[0].Kind != TokenKind::Identifier) {
          Diags.error(Loc, "'.method()' expects an integration method name");
          return false;
        }
        M.Method = Args[0].Text;
      } else if (Name == "units") {
        if (!Args.empty())
          M.Units = Args[0].Text;
      } else {
        Diags.warning(Loc, "ignoring unknown markup '." + Name + "()'");
      }
    }
    return true;
  }

  /// group '{' member* '}' ('.' markup)* ';'
  bool parseGroupStatement() {
    advance(); // 'group'
    advance(); // '{'
    std::vector<std::string> Members;
    while (!at(TokenKind::RBrace)) {
      if (at(TokenKind::Eof)) {
        Diags.error(peek().Loc, "unterminated group");
        return false;
      }
      if (!at(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected group member name");
        return false;
      }
      Token Name = advance();
      declare(Name.Text);
      Members.push_back(Name.Text);
      if (at(TokenKind::Assign)) {
        advance();
        ExprPtr Value = parseExpr();
        if (!Value)
          return false;
        Model.Statements.push_back(
            Stmt::makeAssign(Name.Text, std::move(Value), Name.Loc));
      }
      if (!expect(TokenKind::Semicolon, "after group member"))
        return false;
    }
    advance(); // '}'

    MarkupTargets = Members;
    while (at(TokenKind::Dot)) {
      SourceLoc Loc = peek().Loc;
      advance();
      if (!at(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected markup name after '.'");
        return false;
      }
      std::string Name = advance().Text;
      if (!applyMarkup(Name, Loc))
        return false;
    }
    return expect(TokenKind::Semicolon, "after group");
  }

  /// if '(' expr ')' '{' stmts '}' [else '{' stmts '}'].
  StmtPtr parseIfStatement() {
    SourceLoc Loc = peek().Loc;
    advance(); // 'if'
    if (!expect(TokenKind::LParen, "after 'if'"))
      return nullptr;
    ExprPtr Cond = parseExpr();
    if (!Cond)
      return nullptr;
    if (!expect(TokenKind::RParen, "after if condition"))
      return nullptr;
    std::vector<StmtPtr> Then, Else;
    if (!parseBlock(Then))
      return nullptr;
    if (at(TokenKind::KwElse)) {
      advance();
      if (at(TokenKind::KwIf)) {
        StmtPtr Nested = parseIfStatement();
        if (!Nested)
          return nullptr;
        Else.push_back(std::move(Nested));
      } else if (!parseBlock(Else)) {
        return nullptr;
      }
    }
    return Stmt::makeIf(std::move(Cond), std::move(Then), std::move(Else),
                        Loc);
  }

  /// '{' (assign | if)* '}'.
  bool parseBlock(std::vector<StmtPtr> &Out) {
    if (!expect(TokenKind::LBrace, "to open a block"))
      return false;
    while (!at(TokenKind::RBrace)) {
      if (at(TokenKind::Eof)) {
        Diags.error(peek().Loc, "unterminated block");
        return false;
      }
      if (at(TokenKind::KwIf)) {
        StmtPtr S = parseIfStatement();
        if (!S)
          return false;
        Out.push_back(std::move(S));
        continue;
      }
      if (!at(TokenKind::Identifier)) {
        Diags.error(peek().Loc, "expected assignment inside block");
        return false;
      }
      Token Name = advance();
      declare(Name.Text);
      if (!expect(TokenKind::Assign, "in assignment"))
        return false;
      ExprPtr Value = parseExpr();
      if (!Value)
        return false;
      if (!expect(TokenKind::Semicolon, "after assignment"))
        return false;
      Out.push_back(Stmt::makeAssign(Name.Text, std::move(Value), Name.Loc));
    }
    advance(); // '}'
    return true;
  }

  // --- expressions (precedence climbing) ----------------------------------

  ExprPtr parseExpr() { return parseTernary(); }

  ExprPtr parseTernary() {
    ExprPtr Cond = parseOr();
    if (!Cond || !at(TokenKind::Question))
      return Cond;
    SourceLoc Loc = advance().Loc;
    ExprPtr A = parseTernary();
    if (!A || !expect(TokenKind::Colon, "in conditional expression"))
      return nullptr;
    ExprPtr B = parseTernary();
    if (!B)
      return nullptr;
    return Expr::makeTernary(std::move(Cond), std::move(A), std::move(B),
                             Loc);
  }

  ExprPtr parseOr() {
    ExprPtr L = parseAnd();
    while (L && at(TokenKind::OrOr)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseAnd();
      if (!R)
        return nullptr;
      L = Expr::makeBinary(BinaryOp::Or, std::move(L), std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseAnd() {
    ExprPtr L = parseComparison();
    while (L && at(TokenKind::AndAnd)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseComparison();
      if (!R)
        return nullptr;
      L = Expr::makeBinary(BinaryOp::And, std::move(L), std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseComparison() {
    ExprPtr L = parseAdditive();
    while (L) {
      BinaryOp Op;
      switch (peek().Kind) {
      case TokenKind::Lt:
        Op = BinaryOp::Lt;
        break;
      case TokenKind::Le:
        Op = BinaryOp::Le;
        break;
      case TokenKind::Gt:
        Op = BinaryOp::Gt;
        break;
      case TokenKind::Ge:
        Op = BinaryOp::Ge;
        break;
      case TokenKind::EqEq:
        Op = BinaryOp::Eq;
        break;
      case TokenKind::NotEq:
        Op = BinaryOp::Ne;
        break;
      default:
        return L;
      }
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseAdditive();
      if (!R)
        return nullptr;
      L = Expr::makeBinary(Op, std::move(L), std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseAdditive() {
    ExprPtr L = parseMultiplicative();
    while (L && (at(TokenKind::Plus) || at(TokenKind::Minus))) {
      BinaryOp Op = at(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseMultiplicative();
      if (!R)
        return nullptr;
      L = Expr::makeBinary(Op, std::move(L), std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr L = parseUnary();
    while (L && (at(TokenKind::Star) || at(TokenKind::Slash))) {
      BinaryOp Op = at(TokenKind::Star) ? BinaryOp::Mul : BinaryOp::Div;
      SourceLoc Loc = advance().Loc;
      ExprPtr R = parseUnary();
      if (!R)
        return nullptr;
      L = Expr::makeBinary(Op, std::move(L), std::move(R), Loc);
    }
    return L;
  }

  ExprPtr parseUnary() {
    if (at(TokenKind::Minus)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr A = parseUnary();
      if (!A)
        return nullptr;
      return Expr::makeUnary(UnaryOp::Neg, std::move(A), Loc);
    }
    if (at(TokenKind::Not)) {
      SourceLoc Loc = advance().Loc;
      ExprPtr A = parseUnary();
      if (!A)
        return nullptr;
      return Expr::makeUnary(UnaryOp::Not, std::move(A), Loc);
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const Token &T = peek();
    switch (T.Kind) {
    case TokenKind::Number: {
      advance();
      return Expr::makeNumber(T.NumberValue, T.Loc);
    }
    case TokenKind::LParen: {
      advance();
      ExprPtr Inner = parseExpr();
      if (!Inner || !expect(TokenKind::RParen, "to close expression"))
        return nullptr;
      return Inner;
    }
    case TokenKind::Identifier: {
      Token Name = advance();
      if (!at(TokenKind::LParen))
        return Expr::makeVarRef(Name.Text, Name.Loc);
      // Function call.
      BuiltinFn Fn;
      if (!lookupBuiltin(Name.Text, Fn)) {
        Diags.error(Name.Loc, "unknown function '" + Name.Text + "'");
        return nullptr;
      }
      advance(); // '('
      std::vector<ExprPtr> Args;
      if (!at(TokenKind::RParen)) {
        while (true) {
          ExprPtr Arg = parseExpr();
          if (!Arg)
            return nullptr;
          Args.push_back(std::move(Arg));
          if (!at(TokenKind::Comma))
            break;
          advance();
        }
      }
      if (!expect(TokenKind::RParen, "after call arguments"))
        return nullptr;
      if (Args.size() != builtinArity(Fn)) {
        Diags.error(Name.Loc,
                    "'" + Name.Text + "' expects " +
                        std::to_string(builtinArity(Fn)) + " argument(s)");
        return nullptr;
      }
      return Expr::makeCall(Fn, std::move(Args), Name.Loc);
    }
    default:
      Diags.error(T.Loc, "expected an expression, got " +
                             std::string(tokenKindName(T.Kind)));
      return nullptr;
    }
  }
};

} // namespace

ParsedModel easyml::parseModel(std::string_view ModelName,
                               std::string_view Source,
                               DiagnosticEngine &Diags) {
  return ParserImpl(ModelName, Source, Diags).run();
}
