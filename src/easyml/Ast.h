//===- Ast.h - EasyML abstract syntax trees ---------------------*- C++-*-===//
//
// Expression and statement trees produced by the EasyML parser. EasyML is
// the declarative, SSA-style markup language openCARP uses to describe
// ionic models (Sec. 2.2 of the paper): single-assignment equations,
// `diff_x` derivatives, `x_init` initial values, and markup statements
// (.external(), .param(), .lookup(), .method(), ...).
//
// Expressions use shared_ptr nodes so the symbolic differentiator and the
// preprocessor can share subtrees without deep copies.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EASYML_AST_H
#define LIMPET_EASYML_AST_H

#include "support/Diagnostics.h"

#include <memory>
#include <string>
#include <vector>

namespace limpet {
namespace easyml {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct Expr;
using ExprPtr = std::shared_ptr<Expr>;

enum class ExprKind : uint8_t {
  Number,
  VarRef,
  Unary,
  Binary,
  Ternary,
  Call,
  LutRef, ///< reference to a precomputed LUT column (inserted by LutAnalysis)
};

enum class UnaryOp : uint8_t { Neg, Not };

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
};

/// Builtin functions callable from EasyML (the openCARP helper set).
enum class BuiltinFn : uint8_t {
  Exp,
  Expm1,
  Log,
  Log10,
  Pow,
  Sqrt,
  Sin,
  Cos,
  Tan,
  Tanh,
  Sinh,
  Cosh,
  Atan,
  Asin,
  Acos,
  Fabs,
  Floor,
  Ceil,
  Square, ///< openCARP helper: square(x) == x*x
  Cube,   ///< openCARP helper: cube(x) == x*x*x
};

/// Number of arguments the builtin takes (1 or 2).
unsigned builtinArity(BuiltinFn Fn);

/// Textual name as written in EasyML ("exp", "square", ...).
std::string_view builtinName(BuiltinFn Fn);

/// Maps a function name to a builtin; returns false for unknown names.
bool lookupBuiltin(std::string_view Name, BuiltinFn &Out);

/// An expression tree node.
struct Expr {
  ExprKind Kind;
  SourceLoc Loc;

  // Number
  double NumberValue = 0;
  // VarRef
  std::string VarName;
  // Unary / Binary / Ternary operands; Call arguments.
  UnaryOp UnOp = UnaryOp::Neg;
  BinaryOp BinOp = BinaryOp::Add;
  BuiltinFn Fn = BuiltinFn::Exp;
  // LutRef payload.
  int LutTable = -1;
  int LutCol = -1;
  std::vector<ExprPtr> Operands;

  static ExprPtr makeNumber(double V, SourceLoc Loc = SourceLoc());
  static ExprPtr makeVarRef(std::string Name, SourceLoc Loc = SourceLoc());
  static ExprPtr makeUnary(UnaryOp Op, ExprPtr A,
                           SourceLoc Loc = SourceLoc());
  static ExprPtr makeBinary(BinaryOp Op, ExprPtr L, ExprPtr R,
                            SourceLoc Loc = SourceLoc());
  static ExprPtr makeTernary(ExprPtr Cond, ExprPtr A, ExprPtr B,
                             SourceLoc Loc = SourceLoc());
  static ExprPtr makeCall(BuiltinFn Fn, std::vector<ExprPtr> Args,
                          SourceLoc Loc = SourceLoc());
  static ExprPtr makeLutRef(int Table, int Col, SourceLoc Loc = SourceLoc());

  bool isNumber(double V) const {
    return Kind == ExprKind::Number && NumberValue == V;
  }
};

/// Renders an expression with minimal parentheses, for tests and debugging.
std::string printExpr(const Expr &E);

/// Structural equality of two expression trees.
bool exprEquals(const Expr &A, const Expr &B);

/// Returns true if \p Name occurs as a VarRef anywhere in \p E.
bool exprReferences(const Expr &E, std::string_view Name);

/// Collects the distinct variable names referenced by \p E (in first-use
/// order).
std::vector<std::string> exprFreeVars(const Expr &E);

/// Returns a tree where every reference to \p Name is replaced by \p
/// Replacement (subtrees are shared, not copied).
ExprPtr substitute(const ExprPtr &E, std::string_view Name,
                   const ExprPtr &Replacement);

//===----------------------------------------------------------------------===//
// Statements and parsed model
//===----------------------------------------------------------------------===//

/// Markup kinds attachable to a variable.
enum class MarkupKind : uint8_t {
  External, ///< .external(): value flows in/out of the cell (Vm, Iion).
  Nodal,    ///< .nodal(): per-node value (informational).
  Param,    ///< .param(): runtime-adjustable constant.
  Lookup,   ///< .lookup(lo, hi, step): LUT-accelerate expressions of this.
  Method,   ///< .method(name): integration method for the state variable.
  Units,    ///< .units("..."): documentation only.
  Regional, ///< .regional(): informational.
};

/// One parsed markup application.
struct Markup {
  MarkupKind Kind;
  SourceLoc Loc;
  // Lookup parameters.
  double Lo = 0, Hi = 0, Step = 0;
  // Method / units payload.
  std::string Text;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind : uint8_t { Assign, If };

/// An assignment `name = expr;` or a (possibly nested) if statement over
/// assignments.
struct Stmt {
  StmtKind Kind;
  SourceLoc Loc;

  // Assign
  std::string Target;
  ExprPtr Value;

  // If
  ExprPtr Cond;
  std::vector<StmtPtr> Then;
  std::vector<StmtPtr> Else;

  static StmtPtr makeAssign(std::string Target, ExprPtr Value,
                            SourceLoc Loc = SourceLoc());
  static StmtPtr makeIf(ExprPtr Cond, std::vector<StmtPtr> Then,
                        std::vector<StmtPtr> Else,
                        SourceLoc Loc = SourceLoc());
};

/// A variable's accumulated markups.
struct VarMarkups {
  bool External = false;
  bool Nodal = false;
  bool Param = false;
  bool Regional = false;
  bool HasLookup = false;
  double LookupLo = 0, LookupHi = 0, LookupStep = 0;
  std::string Method; ///< empty = default integration method.
  std::string Units;
};

/// The direct output of the parser: declared names with their markups and
/// the ordered statement list, before semantic analysis.
struct ParsedModel {
  std::string Name;
  /// Declaration order of every name that appeared as a declaration or
  /// assignment target.
  std::vector<std::string> DeclOrder;
  /// Markups per variable name.
  std::vector<std::pair<std::string, VarMarkups>> Markups;
  /// Top-level assignments / if statements, in source order.
  std::vector<StmtPtr> Statements;

  VarMarkups &markupsFor(const std::string &Name);
  const VarMarkups *findMarkups(std::string_view Name) const;
};

} // namespace easyml
} // namespace limpet

#endif // LIMPET_EASYML_AST_H
