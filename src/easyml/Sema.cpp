//===- Sema.cpp -----------------------------------------------------------===//

#include "easyml/Sema.h"

#include "easyml/ConstEval.h"
#include "easyml/Parser.h"
#include "support/Casting.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <map>
#include <set>

using namespace limpet;
using namespace limpet::easyml;

namespace {

struct FlatAssign {
  std::string Target;
  ExprPtr Value;
  SourceLoc Loc;
};

class SemaImpl {
public:
  SemaImpl(const ParsedModel &PM, DiagnosticEngine &Diags)
      : PM(PM), Diags(Diags) {}

  std::optional<ModelInfo> run() {
    Info.Name = PM.Name;
    if (!flattenStatements())
      return std::nullopt;
    if (!collectAssignments())
      return std::nullopt;
    classifyNames();
    if (!evaluateParams())
      return std::nullopt;
    if (!buildExternals())
      return std::nullopt;
    if (!buildStateVars())
      return std::nullopt;
    if (!checkReferences())
      return std::nullopt;
    if (!orderIntermediates())
      return std::nullopt;
    inlineAll();
    buildLuts();
    if (Diags.hasErrors())
      return std::nullopt;
    return std::move(Info);
  }

private:
  const ParsedModel &PM;
  DiagnosticEngine &Diags;
  ModelInfo Info;

  std::vector<FlatAssign> Assigns;
  std::map<std::string, size_t> AssignIndex; // target -> index in Assigns
  std::set<std::string> ParamNames, ExternalNames, StateNames,
      IntermediateNames;
  std::vector<std::string> IntermediateOrder; // topologically sorted
  std::map<std::string, ExprPtr> InlinedIntermediate;

  static bool isInitName(std::string_view Name) {
    return endsWith(Name, "_init");
  }
  static bool isDiffName(std::string_view Name) {
    return startsWith(Name, "diff_");
  }
  static std::string baseOfInit(std::string_view Name) {
    return std::string(Name.substr(0, Name.size() - 5));
  }
  static std::string baseOfDiff(std::string_view Name) {
    return std::string(Name.substr(5));
  }

  // --- step 1: desugar if statements into ternaries ----------------------

  bool flattenStatements() {
    for (const StmtPtr &S : PM.Statements)
      if (!flattenStmt(*S))
        return false;
    return true;
  }

  bool flattenStmt(const Stmt &S) {
    if (S.Kind == StmtKind::Assign) {
      Assigns.push_back({S.Target, S.Value, S.Loc});
      return true;
    }
    // If statement: recursively flatten both branches into local lists,
    // then merge per assigned variable with a ternary on the condition.
    std::vector<FlatAssign> Then, Else;
    if (!flattenInto(S.Then, Then) || !flattenInto(S.Else, Else))
      return false;
    // Both branches must assign exactly the same set of variables: EasyML
    // is single-assignment, so a variable assigned in only one branch
    // would be undefined on the other path.
    auto FindIn = [](std::vector<FlatAssign> &List, const std::string &Name)
        -> FlatAssign * {
      for (FlatAssign &A : List)
        if (A.Target == Name)
          return &A;
      return nullptr;
    };
    for (FlatAssign &T : Then) {
      FlatAssign *E = FindIn(Else, T.Target);
      if (!E) {
        Diags.error(T.Loc, "'" + T.Target +
                               "' is assigned in the 'if' branch but not "
                               "in the 'else' branch");
        return false;
      }
      Assigns.push_back(
          {T.Target, Expr::makeTernary(S.Cond, T.Value, E->Value, S.Loc),
           T.Loc});
    }
    for (FlatAssign &E : Else)
      if (!FindIn(Then, E.Target)) {
        Diags.error(E.Loc, "'" + E.Target +
                               "' is assigned in the 'else' branch but not "
                               "in the 'if' branch");
        return false;
      }
    return true;
  }

  bool flattenInto(const std::vector<StmtPtr> &Stmts,
                   std::vector<FlatAssign> &Out) {
    // Temporarily flatten into Out using a scratch SemaImpl-free recursion.
    for (const StmtPtr &S : Stmts) {
      if (S->Kind == StmtKind::Assign) {
        Out.push_back({S->Target, S->Value, S->Loc});
        continue;
      }
      std::vector<FlatAssign> Then, Else;
      if (!flattenInto(S->Then, Then) || !flattenInto(S->Else, Else))
        return false;
      for (FlatAssign &T : Then) {
        FlatAssign *Match = nullptr;
        for (FlatAssign &E : Else)
          if (E.Target == T.Target)
            Match = &E;
        if (!Match) {
          Diags.error(T.Loc,
                      "'" + T.Target +
                          "' is assigned in only one branch of a nested if");
          return false;
        }
        Out.push_back({T.Target,
                       Expr::makeTernary(S->Cond, T.Value, Match->Value,
                                         S->Loc),
                       T.Loc});
      }
      for (FlatAssign &E : Else) {
        bool Found = false;
        for (FlatAssign &T : Then)
          Found |= T.Target == E.Target;
        if (!Found) {
          Diags.error(E.Loc,
                      "'" + E.Target +
                          "' is assigned in only one branch of a nested if");
          return false;
        }
      }
    }
    return true;
  }

  // --- step 2: single-assignment check ------------------------------------

  bool collectAssignments() {
    for (size_t I = 0; I != Assigns.size(); ++I) {
      auto [It, Inserted] = AssignIndex.try_emplace(Assigns[I].Target, I);
      if (!Inserted) {
        Diags.error(Assigns[I].Loc,
                    "'" + Assigns[I].Target +
                        "' is assigned more than once (EasyML follows "
                        "single static assignment)");
        return false;
      }
    }
    return true;
  }

  const FlatAssign *findAssign(const std::string &Name) const {
    auto It = AssignIndex.find(Name);
    return It == AssignIndex.end() ? nullptr : &Assigns[It->second];
  }

  // --- step 3: name classification -----------------------------------------

  void classifyNames() {
    for (const auto &[Name, M] : PM.Markups) {
      if (M.Param)
        ParamNames.insert(Name);
      if (M.External)
        ExternalNames.insert(Name);
    }
    for (const FlatAssign &A : Assigns)
      if (isDiffName(A.Target))
        StateNames.insert(baseOfDiff(A.Target));
    for (const FlatAssign &A : Assigns) {
      const std::string &T = A.Target;
      if (isDiffName(T) || isInitName(T) || ParamNames.count(T) ||
          ExternalNames.count(T) || StateNames.count(T))
        continue;
      IntermediateNames.insert(T);
    }
  }

  // --- step 4: parameters ---------------------------------------------------

  bool evaluateParams() {
    // Parameters may reference other parameters; iterate to a fixpoint.
    std::map<std::string, double> Values;
    EvalEnv Env = [&](std::string_view Name) -> std::optional<double> {
      auto It = Values.find(std::string(Name));
      if (It == Values.end())
        return std::nullopt;
      return It->second;
    };
    // Keep declaration order for the parameter table.
    std::vector<std::string> Order;
    for (const std::string &Name : PM.DeclOrder)
      if (ParamNames.count(Name))
        Order.push_back(Name);

    bool Progress = true;
    while (Progress) {
      Progress = false;
      for (const std::string &Name : Order) {
        if (Values.count(Name))
          continue;
        const FlatAssign *A = findAssign(Name);
        if (!A) {
          Diags.error(SourceLoc(), "parameter '" + Name +
                                       "' has no initializer");
          return false;
        }
        if (auto V = evalExpr(*A->Value, Env)) {
          Values[Name] = *V;
          Progress = true;
        }
      }
    }
    for (const std::string &Name : Order) {
      if (!Values.count(Name)) {
        const FlatAssign *A = findAssign(Name);
        Diags.error(A->Loc, "parameter '" + Name +
                                "' initializer is not a constant expression");
        return false;
      }
      Info.Params.push_back({Name, Values[Name]});
    }
    return true;
  }

  /// Evaluates a constant expression allowing references to parameters.
  std::optional<double> evalWithParams(const Expr &E) {
    return evalExpr(E, [&](std::string_view Name) -> std::optional<double> {
      int Idx = Info.paramIndex(Name);
      if (Idx < 0)
        return std::nullopt;
      return Info.Params[Idx].DefaultValue;
    });
  }

  double initValueFor(const std::string &Name, bool &Found) {
    const FlatAssign *A = findAssign(Name + "_init");
    Found = A != nullptr;
    if (!A)
      return 0;
    auto V = evalWithParams(*A->Value);
    if (!V) {
      Diags.error(A->Loc, "'" + Name +
                              "_init' is not a constant expression");
      return 0;
    }
    return *V;
  }

  // --- step 5: externals ------------------------------------------------------

  bool buildExternals() {
    for (const std::string &Name : PM.DeclOrder) {
      if (!ExternalNames.count(Name))
        continue;
      ExternalInfo Ext;
      Ext.Name = Name;
      bool HasInit = false;
      Ext.Init = initValueFor(Name, HasInit);
      const FlatAssign *A = findAssign(Name);
      if (A) {
        Ext.IsComputed = true;
        Ext.Value = A->Value;
      }
      if (const FlatAssign *D = findAssign("diff_" + Name)) {
        Diags.error(D->Loc, "external variable '" + Name +
                                "' cannot have a differential equation");
        return false;
      }
      Info.Externals.push_back(std::move(Ext));
    }
    // Mark reads.
    auto MarkReads = [&](const Expr &E) {
      for (const std::string &V : exprFreeVars(E)) {
        int Idx = Info.externalIndex(V);
        if (Idx >= 0)
          Info.Externals[Idx].IsRead = true;
      }
    };
    for (const FlatAssign &A : Assigns)
      if (!isInitName(A.Target) && !ParamNames.count(A.Target))
        MarkReads(*A.Value);
    return true;
  }

  // --- step 6: state variables -------------------------------------------------

  /// State variables in first-mention order: a state variable may only
  /// ever appear as "diff_X" / "X_init" targets, so derive the order from
  /// any of its spellings in the declaration order.
  std::vector<std::string> stateVarOrder() const {
    std::vector<std::string> Order;
    auto Push = [&](const std::string &Name) {
      if (!StateNames.count(Name))
        return;
      for (const std::string &Existing : Order)
        if (Existing == Name)
          return;
      Order.push_back(Name);
    };
    for (const std::string &Name : PM.DeclOrder) {
      Push(Name);
      if (isDiffName(Name))
        Push(baseOfDiff(Name));
      if (isInitName(Name))
        Push(baseOfInit(Name));
    }
    return Order;
  }

  bool buildStateVars() {
    for (const std::string &Name : stateVarOrder()) {
      if (!StateNames.count(Name))
        continue;
      if (ParamNames.count(Name)) {
        Diags.error(SourceLoc(), "parameter '" + Name +
                                     "' cannot have a differential equation");
        return false;
      }
      StateVarInfo SV;
      SV.Name = Name;
      bool HasInit = false;
      SV.Init = initValueFor(Name, HasInit);
      if (!HasInit)
        Diags.warning(SourceLoc(), "state variable '" + Name +
                                       "' has no '_init'; defaulting to 0");
      SV.DiffRaw = findAssign("diff_" + Name)->Value;
      if (const VarMarkups *M = PM.findMarkups(Name); M && !M->Method.empty()) {
        if (!parseIntegMethod(M->Method, SV.Method)) {
          Diags.error(SourceLoc(),
                      "unknown integration method '" + M->Method + "' on '" +
                          Name + "'");
          return false;
        }
      }
      if (const FlatAssign *Direct = findAssign(Name)) {
        Diags.error(Direct->Loc,
                    "state variable '" + Name +
                        "' cannot be assigned directly (it is integrated "
                        "from diff_" +
                        Name + ")");
        return false;
      }
      Info.StateVars.push_back(std::move(SV));
    }
    // A model without state variables cannot be integrated.
    if (Info.StateVars.empty())
      Diags.warning(SourceLoc(),
                    "model has no state variables (no diff_ equations)");
    return true;
  }

  // --- step 7: reference checking -----------------------------------------------

  bool isKnownName(const std::string &Name) const {
    return ParamNames.count(Name) || ExternalNames.count(Name) ||
           StateNames.count(Name) || IntermediateNames.count(Name);
  }

  bool checkReferences() {
    bool Ok = true;
    for (const FlatAssign &A : Assigns) {
      if (isInitName(A.Target) || ParamNames.count(A.Target))
        continue; // already constant-evaluated
      for (const std::string &Ref : exprFreeVars(*A.Value)) {
        if (isKnownName(Ref))
          continue;
        Diags.error(A.Loc, "use of undefined variable '" + Ref + "' in '" +
                               A.Target + "'");
        Ok = false;
      }
    }
    // Unknown init/diff targets.
    for (const FlatAssign &A : Assigns) {
      if (isInitName(A.Target)) {
        std::string Base = baseOfInit(A.Target);
        if (!isKnownName(Base))
          Diags.warning(A.Loc, "'" + A.Target +
                                   "' initializes unknown variable '" + Base +
                                   "'");
      }
    }
    return Ok;
  }

  // --- step 8: topological ordering of intermediates ------------------------------

  bool orderIntermediates() {
    std::set<std::string> Visiting, Done;
    bool Ok = true;
    std::function<void(const std::string &)> Visit =
        [&](const std::string &Name) {
          if (Done.count(Name) || !Ok)
            return;
          if (Visiting.count(Name)) {
            Diags.error(findAssign(Name)->Loc,
                        "cyclic dependency through intermediate '" + Name +
                            "'");
            Ok = false;
            return;
          }
          Visiting.insert(Name);
          for (const std::string &Ref :
               exprFreeVars(*findAssign(Name)->Value))
            if (IntermediateNames.count(Ref))
              Visit(Ref);
          Visiting.erase(Name);
          Done.insert(Name);
          IntermediateOrder.push_back(Name);
        };
    for (const std::string &Name : PM.DeclOrder)
      if (IntermediateNames.count(Name))
        Visit(Name);
    if (!Ok)
      return false;
    for (const std::string &Name : IntermediateOrder)
      Info.Intermediates.push_back({Name, findAssign(Name)->Value});
    return true;
  }

  // --- step 9: inlining ---------------------------------------------------------

  /// Rewrites \p E replacing references to already-inlined definitions
  /// (intermediates and computed externals). Shares unchanged subtrees.
  /// A reference to a name that is inlinable but not yet in the map (a
  /// computed external's self-reference, e.g. `Iion = Iion + ...`) stays a
  /// plain load of the incoming value.
  ExprPtr inlineExpr(const ExprPtr &E) {
    if (E->Kind == ExprKind::VarRef) {
      auto It = InlinedIntermediate.find(E->VarName);
      return It == InlinedIntermediate.end() ? E : It->second;
    }
    bool AnyRef = false;
    for (const std::string &Ref : exprFreeVars(*E))
      AnyRef |= InlinedIntermediate.count(Ref) != 0;
    if (!AnyRef)
      return E;
    auto Copy = std::make_shared<Expr>(*E);
    for (ExprPtr &Op : Copy->Operands)
      Op = inlineExpr(Op);
    return Copy;
  }

  void inlineAll() {
    for (const std::string &Name : IntermediateOrder)
      InlinedIntermediate[Name] = inlineExpr(findAssign(Name)->Value);
    // Computed externals participate in inlining: EasyML is SSA, so a
    // reference to e.g. Iion elsewhere means its equation's value.
    for (ExternalInfo &Ext : Info.Externals)
      if (Ext.IsComputed) {
        Ext.Value = inlineExpr(Ext.Value);
        InlinedIntermediate[Ext.Name] = Ext.Value;
      }
    for (StateVarInfo &SV : Info.StateVars)
      SV.Diff = inlineExpr(SV.DiffRaw);
  }

  // --- step 10: LUT specs ----------------------------------------------------------

  void buildLuts() {
    for (const auto &[Name, M] : PM.Markups) {
      if (!M.HasLookup)
        continue;
      if (Info.externalIndex(Name) < 0 && Info.stateVarIndex(Name) < 0) {
        Diags.error(SourceLoc(),
                    "'.lookup()' target '" + Name +
                        "' must be an external or a state variable");
        continue;
      }
      if (M.LookupStep <= 0 || M.LookupHi <= M.LookupLo) {
        Diags.error(SourceLoc(), "invalid '.lookup()' range on '" + Name +
                                     "'");
        continue;
      }
      Info.Luts.push_back({Name, M.LookupLo, M.LookupHi, M.LookupStep});
    }
  }
};

} // namespace

std::optional<ModelInfo> easyml::analyzeModel(const ParsedModel &PM,
                                              DiagnosticEngine &Diags) {
  return SemaImpl(PM, Diags).run();
}

std::optional<ModelInfo> easyml::compileModelInfo(std::string_view Name,
                                                  std::string_view Source,
                                                  DiagnosticEngine &Diags) {
  telemetry::TraceSpan Frontend("frontend:" + std::string(Name), "compile");
  ParsedModel PM = [&] {
    telemetry::TraceSpan Span("parse", "compile");
    telemetry::ScopedTimerNs Timer("compile.parse.ns");
    return parseModel(Name, Source, Diags);
  }();
  if (Diags.hasErrors())
    return std::nullopt;
  telemetry::TraceSpan Span("sema", "compile");
  telemetry::ScopedTimerNs Timer("compile.sema.ns");
  return analyzeModel(PM, Diags);
}
