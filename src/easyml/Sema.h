//===- Sema.h - EasyML semantic analysis ------------------------*- C++-*-===//
//
// Turns a ParsedModel into a ModelInfo: classifies names into parameters /
// externals / state variables / intermediates, desugars if statements into
// conditional expressions, checks the single-assignment property, orders
// intermediates topologically, and produces fully inlined right-hand sides
// for every state derivative and computed external.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EASYML_SEMA_H
#define LIMPET_EASYML_SEMA_H

#include "easyml/ModelInfo.h"
#include "support/Diagnostics.h"

#include <optional>

namespace limpet {
namespace easyml {

struct ParsedModel;

/// Analyzes \p PM. Returns nullopt (with errors in \p Diags) on failure.
std::optional<ModelInfo> analyzeModel(const ParsedModel &PM,
                                      DiagnosticEngine &Diags);

/// Convenience: parse + analyze in one step.
std::optional<ModelInfo> compileModelInfo(std::string_view Name,
                                          std::string_view Source,
                                          DiagnosticEngine &Diags);

} // namespace easyml
} // namespace limpet

#endif // LIMPET_EASYML_SEMA_H
