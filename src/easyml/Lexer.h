//===- Lexer.h - EasyML tokenizer -------------------------------*- C++-*-===//
//
// Tokenizes EasyML source. Comments start with '#' or '//' (to end of
// line) or use C-style '/* ... */'.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EASYML_LEXER_H
#define LIMPET_EASYML_LEXER_H

#include "support/Diagnostics.h"

#include <string>
#include <string_view>
#include <vector>

namespace limpet {
namespace easyml {

enum class TokenKind : uint8_t {
  Identifier,
  Number,
  String,    // "..." inside markup arguments
  LParen,    // (
  RParen,    // )
  LBrace,    // {
  RBrace,    // }
  Comma,     // ,
  Semicolon, // ;
  Dot,       // .
  Assign,    // =
  Plus,      // +
  Minus,     // -
  Star,      // *
  Slash,     // /
  Lt,        // <
  Le,        // <=
  Gt,        // >
  Ge,        // >=
  EqEq,      // ==
  NotEq,     // !=
  AndAnd,    // &&
  OrOr,      // ||
  Not,       // !
  Question,  // ?
  Colon,     // :
  KwIf,      // if
  KwElse,    // else
  Eof,
  Error,
};

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  double NumberValue = 0;
  SourceLoc Loc;
};

/// Tokenizes a whole buffer. Lexing errors are reported through \p Diags
/// and produce an Error token (lexing continues).
std::vector<Token> tokenize(std::string_view Source,
                            DiagnosticEngine &Diags);

/// Human-readable description for diagnostics ("';'", "identifier", ...).
std::string_view tokenKindName(TokenKind Kind);

} // namespace easyml
} // namespace limpet

#endif // LIMPET_EASYML_LEXER_H
