//===- Ast.cpp ------------------------------------------------------------===//

#include "easyml/Ast.h"

#include "support/Casting.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace limpet;
using namespace limpet::easyml;

//===----------------------------------------------------------------------===//
// Builtins
//===----------------------------------------------------------------------===//

unsigned easyml::builtinArity(BuiltinFn Fn) {
  return Fn == BuiltinFn::Pow ? 2 : 1;
}

std::string_view easyml::builtinName(BuiltinFn Fn) {
  switch (Fn) {
  case BuiltinFn::Exp:
    return "exp";
  case BuiltinFn::Expm1:
    return "expm1";
  case BuiltinFn::Log:
    return "log";
  case BuiltinFn::Log10:
    return "log10";
  case BuiltinFn::Pow:
    return "pow";
  case BuiltinFn::Sqrt:
    return "sqrt";
  case BuiltinFn::Sin:
    return "sin";
  case BuiltinFn::Cos:
    return "cos";
  case BuiltinFn::Tan:
    return "tan";
  case BuiltinFn::Tanh:
    return "tanh";
  case BuiltinFn::Sinh:
    return "sinh";
  case BuiltinFn::Cosh:
    return "cosh";
  case BuiltinFn::Atan:
    return "atan";
  case BuiltinFn::Asin:
    return "asin";
  case BuiltinFn::Acos:
    return "acos";
  case BuiltinFn::Fabs:
    return "fabs";
  case BuiltinFn::Floor:
    return "floor";
  case BuiltinFn::Ceil:
    return "ceil";
  case BuiltinFn::Square:
    return "square";
  case BuiltinFn::Cube:
    return "cube";
  }
  limpet_unreachable("invalid builtin");
}

bool easyml::lookupBuiltin(std::string_view Name, BuiltinFn &Out) {
  static constexpr BuiltinFn All[] = {
      BuiltinFn::Exp,   BuiltinFn::Expm1, BuiltinFn::Log,
      BuiltinFn::Log10, BuiltinFn::Pow,   BuiltinFn::Sqrt,
      BuiltinFn::Sin,   BuiltinFn::Cos,   BuiltinFn::Tan,
      BuiltinFn::Tanh,  BuiltinFn::Sinh,  BuiltinFn::Cosh,
      BuiltinFn::Atan,  BuiltinFn::Asin,  BuiltinFn::Acos,
      BuiltinFn::Fabs,  BuiltinFn::Floor, BuiltinFn::Ceil,
      BuiltinFn::Square, BuiltinFn::Cube};
  for (BuiltinFn Fn : All)
    if (builtinName(Fn) == Name) {
      Out = Fn;
      return true;
    }
  // "abs" is accepted as an alias for fabs.
  if (Name == "abs") {
    Out = BuiltinFn::Fabs;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Expr factories
//===----------------------------------------------------------------------===//

ExprPtr Expr::makeNumber(double V, SourceLoc Loc) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::Number;
  E->NumberValue = V;
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeVarRef(std::string Name, SourceLoc Loc) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::VarRef;
  E->VarName = std::move(Name);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeUnary(UnaryOp Op, ExprPtr A, SourceLoc Loc) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::Unary;
  E->UnOp = Op;
  E->Operands = {std::move(A)};
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeBinary(BinaryOp Op, ExprPtr L, ExprPtr R, SourceLoc Loc) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::Binary;
  E->BinOp = Op;
  E->Operands = {std::move(L), std::move(R)};
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeTernary(ExprPtr Cond, ExprPtr A, ExprPtr B, SourceLoc Loc) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::Ternary;
  E->Operands = {std::move(Cond), std::move(A), std::move(B)};
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeCall(BuiltinFn Fn, std::vector<ExprPtr> Args,
                       SourceLoc Loc) {
  assert(Args.size() == builtinArity(Fn) && "wrong builtin arity");
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::Call;
  E->Fn = Fn;
  E->Operands = std::move(Args);
  E->Loc = Loc;
  return E;
}

ExprPtr Expr::makeLutRef(int Table, int Col, SourceLoc Loc) {
  auto E = std::make_shared<Expr>();
  E->Kind = ExprKind::LutRef;
  E->LutTable = Table;
  E->LutCol = Col;
  E->Loc = Loc;
  return E;
}

//===----------------------------------------------------------------------===//
// Expr utilities
//===----------------------------------------------------------------------===//

static std::string_view binaryOpName(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  limpet_unreachable("invalid binary op");
}

std::string easyml::printExpr(const Expr &E) {
  switch (E.Kind) {
  case ExprKind::Number:
    return formatDouble(E.NumberValue);
  case ExprKind::VarRef:
    return E.VarName;
  case ExprKind::Unary:
    return (E.UnOp == UnaryOp::Neg ? std::string("-") : std::string("!")) +
           "(" + printExpr(*E.Operands[0]) + ")";
  case ExprKind::Binary:
    return "(" + printExpr(*E.Operands[0]) + " " +
           std::string(binaryOpName(E.BinOp)) + " " +
           printExpr(*E.Operands[1]) + ")";
  case ExprKind::Ternary:
    return "(" + printExpr(*E.Operands[0]) + " ? " +
           printExpr(*E.Operands[1]) + " : " + printExpr(*E.Operands[2]) +
           ")";
  case ExprKind::Call: {
    std::string Out = std::string(builtinName(E.Fn)) + "(";
    for (size_t I = 0; I != E.Operands.size(); ++I) {
      if (I)
        Out += ", ";
      Out += printExpr(*E.Operands[I]);
    }
    return Out + ")";
  }
  case ExprKind::LutRef:
    return "lut[" + std::to_string(E.LutTable) + "][" +
           std::to_string(E.LutCol) + "]";
  }
  limpet_unreachable("invalid expr kind");
}

bool easyml::exprEquals(const Expr &A, const Expr &B) {
  if (A.Kind != B.Kind)
    return false;
  switch (A.Kind) {
  case ExprKind::Number:
    return A.NumberValue == B.NumberValue;
  case ExprKind::VarRef:
    return A.VarName == B.VarName;
  case ExprKind::Unary:
    if (A.UnOp != B.UnOp)
      return false;
    break;
  case ExprKind::Binary:
    if (A.BinOp != B.BinOp)
      return false;
    break;
  case ExprKind::Ternary:
    break;
  case ExprKind::Call:
    if (A.Fn != B.Fn)
      return false;
    break;
  case ExprKind::LutRef:
    return A.LutTable == B.LutTable && A.LutCol == B.LutCol;
  }
  if (A.Operands.size() != B.Operands.size())
    return false;
  for (size_t I = 0; I != A.Operands.size(); ++I)
    if (!exprEquals(*A.Operands[I], *B.Operands[I]))
      return false;
  return true;
}

bool easyml::exprReferences(const Expr &E, std::string_view Name) {
  if (E.Kind == ExprKind::VarRef)
    return E.VarName == Name;
  for (const ExprPtr &Op : E.Operands)
    if (exprReferences(*Op, Name))
      return true;
  return false;
}

static void collectFreeVars(const Expr &E, std::vector<std::string> &Out) {
  if (E.Kind == ExprKind::VarRef) {
    if (std::find(Out.begin(), Out.end(), E.VarName) == Out.end())
      Out.push_back(E.VarName);
    return;
  }
  for (const ExprPtr &Op : E.Operands)
    collectFreeVars(*Op, Out);
}

std::vector<std::string> easyml::exprFreeVars(const Expr &E) {
  std::vector<std::string> Out;
  collectFreeVars(E, Out);
  return Out;
}

ExprPtr easyml::substitute(const ExprPtr &E, std::string_view Name,
                           const ExprPtr &Replacement) {
  if (E->Kind == ExprKind::VarRef)
    return E->VarName == Name ? Replacement : E;
  if (!exprReferences(*E, Name))
    return E;
  auto Copy = std::make_shared<Expr>(*E);
  for (ExprPtr &Op : Copy->Operands)
    Op = substitute(Op, Name, Replacement);
  return Copy;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtPtr Stmt::makeAssign(std::string Target, ExprPtr Value, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::Assign;
  S->Target = std::move(Target);
  S->Value = std::move(Value);
  S->Loc = Loc;
  return S;
}

StmtPtr Stmt::makeIf(ExprPtr Cond, std::vector<StmtPtr> Then,
                     std::vector<StmtPtr> Else, SourceLoc Loc) {
  auto S = std::make_unique<Stmt>();
  S->Kind = StmtKind::If;
  S->Cond = std::move(Cond);
  S->Then = std::move(Then);
  S->Else = std::move(Else);
  S->Loc = Loc;
  return S;
}

//===----------------------------------------------------------------------===//
// ParsedModel
//===----------------------------------------------------------------------===//

VarMarkups &ParsedModel::markupsFor(const std::string &Name) {
  for (auto &[N, M] : Markups)
    if (N == Name)
      return M;
  Markups.push_back({Name, VarMarkups()});
  return Markups.back().second;
}

const VarMarkups *ParsedModel::findMarkups(std::string_view Name) const {
  for (const auto &[N, M] : Markups)
    if (N == Name)
      return &M;
  return nullptr;
}
