//===- ConstEval.cpp ------------------------------------------------------===//

#include "easyml/ConstEval.h"

#include "support/Casting.h"

#include <cmath>

using namespace limpet;
using namespace limpet::easyml;

double easyml::applyBuiltin(BuiltinFn Fn, double A, double B) {
  switch (Fn) {
  case BuiltinFn::Exp:
    return std::exp(A);
  case BuiltinFn::Expm1:
    return std::expm1(A);
  case BuiltinFn::Log:
    return std::log(A);
  case BuiltinFn::Log10:
    return std::log10(A);
  case BuiltinFn::Pow:
    return std::pow(A, B);
  case BuiltinFn::Sqrt:
    return std::sqrt(A);
  case BuiltinFn::Sin:
    return std::sin(A);
  case BuiltinFn::Cos:
    return std::cos(A);
  case BuiltinFn::Tan:
    return std::tan(A);
  case BuiltinFn::Tanh:
    return std::tanh(A);
  case BuiltinFn::Sinh:
    return std::sinh(A);
  case BuiltinFn::Cosh:
    return std::cosh(A);
  case BuiltinFn::Atan:
    return std::atan(A);
  case BuiltinFn::Asin:
    return std::asin(A);
  case BuiltinFn::Acos:
    return std::acos(A);
  case BuiltinFn::Fabs:
    return std::fabs(A);
  case BuiltinFn::Floor:
    return std::floor(A);
  case BuiltinFn::Ceil:
    return std::ceil(A);
  case BuiltinFn::Square:
    return A * A;
  case BuiltinFn::Cube:
    return A * A * A;
  }
  limpet_unreachable("invalid builtin");
}

std::optional<double> easyml::evalExpr(const Expr &E, const EvalEnv &Env) {
  switch (E.Kind) {
  case ExprKind::Number:
    return E.NumberValue;
  case ExprKind::VarRef:
    return Env(E.VarName);
  case ExprKind::LutRef:
    return std::nullopt;
  case ExprKind::Unary: {
    auto A = evalExpr(*E.Operands[0], Env);
    if (!A)
      return std::nullopt;
    return E.UnOp == UnaryOp::Neg ? -*A : double(*A == 0.0);
  }
  case ExprKind::Binary: {
    auto A = evalExpr(*E.Operands[0], Env);
    if (!A)
      return std::nullopt;
    // Short-circuit semantics are not required (no side effects), but we
    // still avoid evaluating the RHS when the LHS decides && / ||.
    if (E.BinOp == BinaryOp::And && *A == 0.0)
      return 0.0;
    if (E.BinOp == BinaryOp::Or && *A != 0.0)
      return 1.0;
    auto B = evalExpr(*E.Operands[1], Env);
    if (!B)
      return std::nullopt;
    switch (E.BinOp) {
    case BinaryOp::Add:
      return *A + *B;
    case BinaryOp::Sub:
      return *A - *B;
    case BinaryOp::Mul:
      return *A * *B;
    case BinaryOp::Div:
      return *A / *B;
    case BinaryOp::Lt:
      return double(*A < *B);
    case BinaryOp::Le:
      return double(*A <= *B);
    case BinaryOp::Gt:
      return double(*A > *B);
    case BinaryOp::Ge:
      return double(*A >= *B);
    case BinaryOp::Eq:
      return double(*A == *B);
    case BinaryOp::Ne:
      return double(*A != *B);
    case BinaryOp::And:
      return double(*B != 0.0);
    case BinaryOp::Or:
      return double(*B != 0.0);
    }
    limpet_unreachable("invalid binary op");
  }
  case ExprKind::Ternary: {
    auto C = evalExpr(*E.Operands[0], Env);
    if (!C)
      return std::nullopt;
    return evalExpr(*E.Operands[*C != 0.0 ? 1 : 2], Env);
  }
  case ExprKind::Call: {
    auto A = evalExpr(*E.Operands[0], Env);
    if (!A)
      return std::nullopt;
    double B = 0;
    if (E.Operands.size() > 1) {
      auto BOpt = evalExpr(*E.Operands[1], Env);
      if (!BOpt)
        return std::nullopt;
      B = *BOpt;
    }
    return applyBuiltin(E.Fn, *A, B);
  }
  }
  limpet_unreachable("invalid expr kind");
}

std::optional<double> easyml::evalConstExpr(const Expr &E) {
  return evalExpr(
      E, [](std::string_view) -> std::optional<double> { return std::nullopt; });
}
