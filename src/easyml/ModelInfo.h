//===- ModelInfo.h - Semantic model description -----------------*- C++-*-===//
//
// The output of semantic analysis: a fully resolved description of an ionic
// model ready for code generation — externals, parameters, state variables
// with their integration methods and fully inlined right-hand sides, and
// LUT specifications.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EASYML_MODELINFO_H
#define LIMPET_EASYML_MODELINFO_H

#include "easyml/Ast.h"

#include <string>
#include <vector>

namespace limpet {
namespace easyml {

/// The six temporal discretization methods the paper implements in MLIR
/// (Sec. 3.3.2, "Integration methods").
enum class IntegMethod : uint8_t {
  ForwardEuler, ///< fe: y += dt * f(y) (openCARP default)
  RK2,          ///< explicit midpoint Runge-Kutta
  RK4,          ///< classic fourth-order Runge-Kutta
  RushLarsen,   ///< exponential integrator on the local linearization
  Sundnes,      ///< second-order Rush-Larsen (Sundnes et al.)
  MarkovBE,     ///< backward Euler via Newton iterations, clamped to [0,1]
};

std::string_view integMethodName(IntegMethod M);
bool parseIntegMethod(std::string_view Name, IntegMethod &Out);

/// A model parameter (.param()): runtime-adjustable, with a compile-time
/// default baked from its initializer.
struct ParamInfo {
  std::string Name;
  double DefaultValue = 0;
};

/// An external variable (.external()): shared with the simulation driver
/// through per-cell arrays (e.g. Vm in, Iion out).
struct ExternalInfo {
  std::string Name;
  double Init = 0;
  bool IsRead = false;    ///< the model reads it (e.g. Vm)
  bool IsComputed = false; ///< the model assigns it (e.g. Iion)
  /// Fully inlined value expression when IsComputed.
  ExprPtr Value;
};

/// A state variable: has a diff_X equation integrated each step.
struct StateVarInfo {
  std::string Name;
  double Init = 0;
  IntegMethod Method = IntegMethod::ForwardEuler;
  /// The right-hand side as written (referencing intermediates).
  ExprPtr DiffRaw;
  /// The right-hand side fully inlined: references only state variables,
  /// externals and parameters. Shared subtrees are physically shared, so
  /// emission must be memoized.
  ExprPtr Diff;
};

/// A lookup-table specification (.lookup(lo,hi,step) markup).
struct LutSpec {
  std::string VarName; ///< the interpolation input (e.g. Vm)
  double Lo = 0, Hi = 0, Step = 0;
  /// Number of rows: floor((Hi-Lo)/Step) + 1.
  int numRows() const { return int((Hi - Lo) / Step) + 1; }
};

/// One retained intermediate assignment (pre-inlining), for tests and
/// debugging.
struct IntermediateInfo {
  std::string Name;
  ExprPtr Value;
};

/// Complete semantic description of an ionic model.
struct ModelInfo {
  std::string Name;

  std::vector<ExternalInfo> Externals;
  std::vector<ParamInfo> Params;
  std::vector<StateVarInfo> StateVars;
  std::vector<LutSpec> Luts;
  /// Topologically ordered intermediates (informational; the codegen
  /// consumes the inlined expressions instead).
  std::vector<IntermediateInfo> Intermediates;

  int externalIndex(std::string_view Name) const;
  int paramIndex(std::string_view Name) const;
  int stateVarIndex(std::string_view Name) const;
  int lutIndex(std::string_view VarName) const;

  /// Rough operation count over all inlined expressions (distinct nodes),
  /// used to classify models into the paper's small/medium/large classes.
  size_t countDistinctOps() const;
};

} // namespace easyml
} // namespace limpet

#endif // LIMPET_EASYML_MODELINFO_H
