//===- Parser.h - EasyML parser ---------------------------------*- C++-*-===//
//
// Recursive-descent parser producing a ParsedModel. Syntax follows the
// openCARP EasyML conventions used in the paper's Listing 1:
//
//   Vm; .external(); .nodal(); .lookup(-100,100,0.05);
//   group{ u1; u2; u3; }.nodal();
//   group{ Cm = 200; beta = 1; }.param();
//   u1_init = 0;  diff_u1 = ...;  u1;.method(rk2);
//   Iion = ...;
//   if (cond) { a = ...; } else { a = ...; }
//
// Markup statements apply to the most recently declared/assigned names.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EASYML_PARSER_H
#define LIMPET_EASYML_PARSER_H

#include "easyml/Ast.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace limpet {
namespace easyml {

/// Parses \p Source into a ParsedModel named \p ModelName. Errors are
/// reported via \p Diags; the returned model is meaningful only when
/// !Diags.hasErrors().
ParsedModel parseModel(std::string_view ModelName, std::string_view Source,
                       DiagnosticEngine &Diags);

} // namespace easyml
} // namespace limpet

#endif // LIMPET_EASYML_PARSER_H
