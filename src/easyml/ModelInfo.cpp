//===- ModelInfo.cpp ------------------------------------------------------===//

#include "easyml/ModelInfo.h"

#include "support/Casting.h"

#include <set>

using namespace limpet;
using namespace limpet::easyml;

std::string_view easyml::integMethodName(IntegMethod M) {
  switch (M) {
  case IntegMethod::ForwardEuler:
    return "fe";
  case IntegMethod::RK2:
    return "rk2";
  case IntegMethod::RK4:
    return "rk4";
  case IntegMethod::RushLarsen:
    return "rush_larsen";
  case IntegMethod::Sundnes:
    return "sundnes";
  case IntegMethod::MarkovBE:
    return "markov_be";
  }
  limpet_unreachable("invalid integration method");
}

bool easyml::parseIntegMethod(std::string_view Name, IntegMethod &Out) {
  if (Name == "fe")
    Out = IntegMethod::ForwardEuler;
  else if (Name == "rk2")
    Out = IntegMethod::RK2;
  else if (Name == "rk4")
    Out = IntegMethod::RK4;
  else if (Name == "rush_larsen")
    Out = IntegMethod::RushLarsen;
  else if (Name == "sundnes")
    Out = IntegMethod::Sundnes;
  else if (Name == "markov_be")
    Out = IntegMethod::MarkovBE;
  else
    return false;
  return true;
}

int ModelInfo::externalIndex(std::string_view Name) const {
  for (size_t I = 0; I != Externals.size(); ++I)
    if (Externals[I].Name == Name)
      return int(I);
  return -1;
}

int ModelInfo::paramIndex(std::string_view Name) const {
  for (size_t I = 0; I != Params.size(); ++I)
    if (Params[I].Name == Name)
      return int(I);
  return -1;
}

int ModelInfo::stateVarIndex(std::string_view Name) const {
  for (size_t I = 0; I != StateVars.size(); ++I)
    if (StateVars[I].Name == Name)
      return int(I);
  return -1;
}

int ModelInfo::lutIndex(std::string_view VarName) const {
  for (size_t I = 0; I != Luts.size(); ++I)
    if (Luts[I].VarName == VarName)
      return int(I);
  return -1;
}

static void countNodes(const Expr *E, std::set<const Expr *> &Seen) {
  if (!E || !Seen.insert(E).second)
    return;
  for (const ExprPtr &Op : E->Operands)
    countNodes(Op.get(), Seen);
}

size_t ModelInfo::countDistinctOps() const {
  std::set<const Expr *> Seen;
  for (const StateVarInfo &SV : StateVars)
    countNodes(SV.Diff.get(), Seen);
  for (const ExternalInfo &Ext : Externals)
    if (Ext.IsComputed)
      countNodes(Ext.Value.get(), Seen);
  return Seen.size();
}
