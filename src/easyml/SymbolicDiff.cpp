//===- SymbolicDiff.cpp ---------------------------------------------------===//

#include "easyml/SymbolicDiff.h"

#include "support/Casting.h"

using namespace limpet;
using namespace limpet::easyml;

namespace {

ExprPtr num(double V) { return Expr::makeNumber(V); }

bool isZero(const ExprPtr &E) { return E->isNumber(0.0); }
bool isOne(const ExprPtr &E) { return E->isNumber(1.0); }

/// a + b with zero-propagation.
ExprPtr add(ExprPtr A, ExprPtr B) {
  if (isZero(A))
    return B;
  if (isZero(B))
    return A;
  return Expr::makeBinary(BinaryOp::Add, std::move(A), std::move(B));
}

/// a - b with zero-propagation.
ExprPtr sub(ExprPtr A, ExprPtr B) {
  if (isZero(B))
    return A;
  if (isZero(A))
    return Expr::makeUnary(UnaryOp::Neg, std::move(B));
  return Expr::makeBinary(BinaryOp::Sub, std::move(A), std::move(B));
}

/// a * b with zero/one-propagation.
ExprPtr mul(ExprPtr A, ExprPtr B) {
  if (isZero(A) || isZero(B))
    return num(0);
  if (isOne(A))
    return B;
  if (isOne(B))
    return A;
  return Expr::makeBinary(BinaryOp::Mul, std::move(A), std::move(B));
}

/// a / b with zero-propagation on the numerator.
ExprPtr div(ExprPtr A, ExprPtr B) {
  if (isZero(A))
    return num(0);
  if (isOne(B))
    return A;
  return Expr::makeBinary(BinaryOp::Div, std::move(A), std::move(B));
}

ExprPtr call1(BuiltinFn Fn, ExprPtr A) {
  return Expr::makeCall(Fn, {std::move(A)});
}

ExprPtr neg(ExprPtr A) {
  if (isZero(A))
    return A;
  return Expr::makeUnary(UnaryOp::Neg, std::move(A));
}

class Differ {
public:
  explicit Differ(std::string_view Var) : Var(Var) {}

  ExprPtr diff(const ExprPtr &E) {
    // Entire subtrees not mentioning Var have derivative zero; this keeps
    // the results small without a full simplifier.
    if (!exprReferences(*E, Var))
      return num(0);

    switch (E->Kind) {
    case ExprKind::Number:
    case ExprKind::LutRef:
      return num(0);
    case ExprKind::VarRef:
      return E->VarName == Var ? num(1) : num(0);
    case ExprKind::Unary:
      if (E->UnOp == UnaryOp::Neg)
        return neg(diff(E->Operands[0]));
      // d(!x)/dx is zero almost everywhere.
      return num(0);
    case ExprKind::Binary:
      return diffBinary(*E);
    case ExprKind::Ternary:
      // Differentiate both arms; keep the original condition.
      return Expr::makeTernary(E->Operands[0], diff(E->Operands[1]),
                               diff(E->Operands[2]));
    case ExprKind::Call:
      return diffCall(*E);
    }
    limpet_unreachable("invalid expr kind");
  }

private:
  std::string_view Var;

  ExprPtr diffBinary(const Expr &E) {
    const ExprPtr &A = E.Operands[0];
    const ExprPtr &B = E.Operands[1];
    switch (E.BinOp) {
    case BinaryOp::Add:
      return add(diff(A), diff(B));
    case BinaryOp::Sub:
      return sub(diff(A), diff(B));
    case BinaryOp::Mul:
      return add(mul(diff(A), B), mul(A, diff(B)));
    case BinaryOp::Div: {
      // (a/b)' = a'/b - a b' / b^2
      ExprPtr Da = diff(A), Db = diff(B);
      if (isZero(Db))
        return div(std::move(Da), B);
      return sub(div(Da, B),
                 div(mul(A, Db), mul(B, B)));
    }
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::And:
    case BinaryOp::Or:
      // Piecewise-constant almost everywhere.
      return num(0);
    }
    limpet_unreachable("invalid binary op");
  }

  ExprPtr diffCall(const Expr &E) {
    const ExprPtr &A = E.Operands[0];
    ExprPtr Da = diff(A);
    auto Shared = std::make_shared<Expr>(E); // the original call f(a)

    switch (E.Fn) {
    case BuiltinFn::Exp:
      return mul(std::move(Da), Shared);
    case BuiltinFn::Expm1:
      return mul(std::move(Da), call1(BuiltinFn::Exp, A));
    case BuiltinFn::Log:
      return div(std::move(Da), A);
    case BuiltinFn::Log10:
      return div(std::move(Da), mul(A, num(2.302585092994046)));
    case BuiltinFn::Sqrt:
      return div(std::move(Da), mul(num(2), Shared));
    case BuiltinFn::Sin:
      return mul(std::move(Da), call1(BuiltinFn::Cos, A));
    case BuiltinFn::Cos:
      return neg(mul(std::move(Da), call1(BuiltinFn::Sin, A)));
    case BuiltinFn::Tan: {
      // 1 + tan^2
      ExprPtr T = call1(BuiltinFn::Tan, A);
      return mul(std::move(Da), add(num(1), mul(T, T)));
    }
    case BuiltinFn::Tanh: {
      ExprPtr T = call1(BuiltinFn::Tanh, A);
      return mul(std::move(Da), sub(num(1), mul(T, T)));
    }
    case BuiltinFn::Sinh:
      return mul(std::move(Da), call1(BuiltinFn::Cosh, A));
    case BuiltinFn::Cosh:
      return mul(std::move(Da), call1(BuiltinFn::Sinh, A));
    case BuiltinFn::Atan:
      return div(std::move(Da), add(num(1), mul(A, A)));
    case BuiltinFn::Asin:
      return div(std::move(Da),
                 call1(BuiltinFn::Sqrt, sub(num(1), mul(A, A))));
    case BuiltinFn::Acos:
      return neg(div(std::move(Da),
                     call1(BuiltinFn::Sqrt, sub(num(1), mul(A, A)))));
    case BuiltinFn::Fabs: {
      // sign(a) * a' expressed as a >= 0 ? a' : -a'.
      ExprPtr Cond = Expr::makeBinary(BinaryOp::Ge, A, num(0));
      return Expr::makeTernary(std::move(Cond), Da, neg(Da));
    }
    case BuiltinFn::Floor:
    case BuiltinFn::Ceil:
      return num(0);
    case BuiltinFn::Square:
      return mul(mul(num(2), A), std::move(Da));
    case BuiltinFn::Cube:
      return mul(mul(num(3), mul(A, A)), std::move(Da));
    case BuiltinFn::Pow: {
      const ExprPtr &B = E.Operands[1];
      ExprPtr Db = diff(B);
      if (isZero(Db)) {
        // d(a^c) = c * a^(c-1) * a'
        ExprPtr Exponent = sub(B, num(1));
        return mul(mul(B, Expr::makeCall(BuiltinFn::Pow, {A, Exponent})),
                   std::move(Da));
      }
      // General case: a^b * (b' ln a + b a'/a).
      ExprPtr Term = add(mul(Db, call1(BuiltinFn::Log, A)),
                         div(mul(B, Da), A));
      return mul(Shared, std::move(Term));
    }
    }
    limpet_unreachable("invalid builtin");
  }
};

} // namespace

ExprPtr easyml::differentiate(const ExprPtr &E, std::string_view Var) {
  return Differ(Var).diff(E);
}
