//===- ConstEval.h - AST constant evaluation --------------------*- C++-*-===//
//
// Evaluates EasyML expressions over a name->double environment. Booleans
// are represented as 0.0 / 1.0 (the semantics the engines implement).
// Shared by the preprocessor, semantic analysis (param/init evaluation)
// and the LUT table builder.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EASYML_CONSTEVAL_H
#define LIMPET_EASYML_CONSTEVAL_H

#include "easyml/Ast.h"

#include <functional>
#include <optional>

namespace limpet {
namespace easyml {

/// Resolves a variable name to a value; return nullopt for unknown names.
using EvalEnv = std::function<std::optional<double>(std::string_view)>;

/// Evaluates \p E. Returns nullopt when a referenced name is not resolved
/// by \p Env or the tree contains a LutRef.
std::optional<double> evalExpr(const Expr &E, const EvalEnv &Env);

/// Evaluates an expression with no free variables.
std::optional<double> evalConstExpr(const Expr &E);

/// Applies a builtin function to already-evaluated arguments.
double applyBuiltin(BuiltinFn Fn, double A, double B = 0);

} // namespace easyml
} // namespace limpet

#endif // LIMPET_EASYML_CONSTEVAL_H
