//===- Lexer.cpp ----------------------------------------------------------===//

#include "easyml/Lexer.h"

#include "support/Casting.h"

#include <cctype>
#include <cstdlib>

using namespace limpet;
using namespace limpet::easyml;

namespace {

class LexerImpl {
public:
  LexerImpl(std::string_view Source, DiagnosticEngine &Diags)
      : Source(Source), Diags(Diags) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    while (true) {
      skipWhitespaceAndComments();
      Token T = next();
      Tokens.push_back(T);
      if (T.Kind == TokenKind::Eof)
        return Tokens;
    }
  }

private:
  std::string_view Source;
  DiagnosticEngine &Diags;
  size_t Pos = 0;
  int Line = 1;
  int Col = 1;

  SourceLoc loc() const { return {Line, Col}; }

  bool atEnd() const { return Pos >= Source.size(); }
  char peek(size_t Ahead = 0) const {
    return Pos + Ahead < Source.size() ? Source[Pos + Ahead] : '\0';
  }

  char advance() {
    char C = Source[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  bool match(char C) {
    if (atEnd() || peek() != C)
      return false;
    advance();
    return true;
  }

  void skipWhitespaceAndComments() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '#' || (C == '/' && peek(1) == '/')) {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      if (C == '/' && peek(1) == '*') {
        SourceLoc Start = loc();
        advance();
        advance();
        while (!atEnd() && !(peek() == '*' && peek(1) == '/'))
          advance();
        if (atEnd()) {
          Diags.error(Start, "unterminated block comment");
          return;
        }
        advance();
        advance();
        continue;
      }
      return;
    }
  }

  Token make(TokenKind Kind, SourceLoc Loc, std::string Text = "") {
    Token T;
    T.Kind = Kind;
    T.Loc = Loc;
    T.Text = std::move(Text);
    return T;
  }

  Token next() {
    SourceLoc Start = loc();
    if (atEnd())
      return make(TokenKind::Eof, Start);

    char C = advance();

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Text(1, C);
      while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_'))
        Text += advance();
      if (Text == "if")
        return make(TokenKind::KwIf, Start, Text);
      if (Text == "else")
        return make(TokenKind::KwElse, Start, Text);
      return make(TokenKind::Identifier, Start, std::move(Text));
    }

    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '.' && std::isdigit(static_cast<unsigned char>(peek())))) {
      std::string Text(1, C);
      bool SeenExp = false;
      while (!atEnd()) {
        char N = peek();
        if (std::isdigit(static_cast<unsigned char>(N)) || N == '.') {
          Text += advance();
          continue;
        }
        if ((N == 'e' || N == 'E') && !SeenExp) {
          SeenExp = true;
          Text += advance();
          if (peek() == '+' || peek() == '-')
            Text += advance();
          continue;
        }
        break;
      }
      Token T = make(TokenKind::Number, Start, Text);
      char *End = nullptr;
      T.NumberValue = std::strtod(Text.c_str(), &End);
      if (End != Text.c_str() + Text.size()) {
        Diags.error(Start, "malformed number '" + Text + "'");
        T.Kind = TokenKind::Error;
      }
      return T;
    }

    switch (C) {
    case '(':
      return make(TokenKind::LParen, Start);
    case ')':
      return make(TokenKind::RParen, Start);
    case '{':
      return make(TokenKind::LBrace, Start);
    case '}':
      return make(TokenKind::RBrace, Start);
    case ',':
      return make(TokenKind::Comma, Start);
    case ';':
      return make(TokenKind::Semicolon, Start);
    case '.':
      return make(TokenKind::Dot, Start);
    case '+':
      return make(TokenKind::Plus, Start);
    case '-':
      return make(TokenKind::Minus, Start);
    case '*':
      return make(TokenKind::Star, Start);
    case '/':
      return make(TokenKind::Slash, Start);
    case '?':
      return make(TokenKind::Question, Start);
    case ':':
      return make(TokenKind::Colon, Start);
    case '=':
      return make(match('=') ? TokenKind::EqEq : TokenKind::Assign, Start);
    case '<':
      return make(match('=') ? TokenKind::Le : TokenKind::Lt, Start);
    case '>':
      return make(match('=') ? TokenKind::Ge : TokenKind::Gt, Start);
    case '!':
      return make(match('=') ? TokenKind::NotEq : TokenKind::Not, Start);
    case '&':
      if (match('&'))
        return make(TokenKind::AndAnd, Start);
      Diags.error(Start, "expected '&&'");
      return make(TokenKind::Error, Start);
    case '|':
      if (match('|'))
        return make(TokenKind::OrOr, Start);
      Diags.error(Start, "expected '||'");
      return make(TokenKind::Error, Start);
    case '"': {
      std::string Text;
      while (!atEnd() && peek() != '"')
        Text += advance();
      if (atEnd()) {
        Diags.error(Start, "unterminated string literal");
        return make(TokenKind::Error, Start);
      }
      advance();
      return make(TokenKind::String, Start, std::move(Text));
    }
    default:
      Diags.error(Start, std::string("unexpected character '") + C + "'");
      return make(TokenKind::Error, Start);
    }
  }
};

} // namespace

std::vector<Token> easyml::tokenize(std::string_view Source,
                                    DiagnosticEngine &Diags) {
  return LexerImpl(Source, Diags).run();
}

std::string_view easyml::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::Number:
    return "number";
  case TokenKind::String:
    return "string";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semicolon:
    return "';'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::AndAnd:
    return "'&&'";
  case TokenKind::OrOr:
    return "'||'";
  case TokenKind::Not:
    return "'!'";
  case TokenKind::Question:
    return "'?'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  }
  limpet_unreachable("invalid token kind");
}
