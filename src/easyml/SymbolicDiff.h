//===- SymbolicDiff.h - Symbolic differentiation ----------------*- C++-*-===//
//
// Computes d(expr)/d(var) symbolically. Used by the Rush-Larsen and Sundnes
// integrators (which need the local linearization df/dy) and by markov_be
// (which needs f' for Newton iterations). Ternaries differentiate each arm
// under the original condition; comparisons/conditions are treated as
// locally constant (their derivative contribution is zero almost
// everywhere).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_EASYML_SYMBOLICDIFF_H
#define LIMPET_EASYML_SYMBOLICDIFF_H

#include "easyml/Ast.h"

namespace limpet {
namespace easyml {

/// Returns d\p E / d\p Var as a new expression tree (lightly simplified:
/// zero/one propagation is applied on the fly).
ExprPtr differentiate(const ExprPtr &E, std::string_view Var);

} // namespace easyml
} // namespace limpet

#endif // LIMPET_EASYML_SYMBOLICDIFF_H
