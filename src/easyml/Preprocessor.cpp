//===- Preprocessor.cpp ---------------------------------------------------===//

#include "easyml/Preprocessor.h"

#include "easyml/ConstEval.h"

#include <map>

using namespace limpet;
using namespace limpet::easyml;

namespace {

/// Folding with memoization on node identity: inlined model expressions
/// share subtrees heavily, and each distinct node must be visited once.
class Folder {
public:
  explicit Folder(PreprocessorStats *Stats) : Stats(Stats) {}

  ExprPtr fold(const ExprPtr &E) {
    auto It = Memo.find(E.get());
    if (It != Memo.end())
      return It->second;
    ExprPtr Result = foldImpl(E);
    Memo.emplace(E.get(), Result);
    return Result;
  }

private:
  PreprocessorStats *Stats;
  std::map<const Expr *, ExprPtr> Memo;

  ExprPtr foldImpl(const ExprPtr &E) {
    if (E->Kind == ExprKind::Number || E->Kind == ExprKind::VarRef ||
        E->Kind == ExprKind::LutRef)
      return E;

    // Fold children first.
    bool Changed = false;
    std::vector<ExprPtr> Folded;
    Folded.reserve(E->Operands.size());
    for (const ExprPtr &Op : E->Operands) {
      ExprPtr F = fold(Op);
      Changed |= F != Op;
      Folded.push_back(std::move(F));
    }

    // If every child is a number, evaluate the node.
    bool AllConst = true;
    for (const ExprPtr &Op : Folded)
      AllConst &= Op->Kind == ExprKind::Number;
    if (AllConst) {
      ExprPtr Candidate = E;
      if (Changed) {
        Candidate = std::make_shared<Expr>(*E);
        Candidate->Operands = Folded;
      }
      if (auto V = evalConstExpr(*Candidate)) {
        if (Stats)
          ++Stats->FoldedNodes;
        return Expr::makeNumber(*V, E->Loc);
      }
    }

    // Constant-condition ternaries select an arm even when the arms are
    // not constant.
    if (E->Kind == ExprKind::Ternary &&
        Folded[0]->Kind == ExprKind::Number) {
      if (Stats)
        ++Stats->FoldedNodes;
      return Folded[0]->NumberValue != 0.0 ? Folded[1] : Folded[2];
    }

    if (!Changed)
      return E;
    auto Copy = std::make_shared<Expr>(*E);
    Copy->Operands = std::move(Folded);
    return Copy;
  }
};

} // namespace

ExprPtr easyml::foldConstants(const ExprPtr &E, PreprocessorStats *Stats) {
  return Folder(Stats).fold(E);
}

PreprocessorStats easyml::preprocessModel(ModelInfo &Info) {
  PreprocessorStats Stats;
  Folder F(&Stats);
  for (StateVarInfo &SV : Info.StateVars)
    if (SV.Diff)
      SV.Diff = F.fold(SV.Diff);
  for (ExternalInfo &Ext : Info.Externals)
    if (Ext.IsComputed && Ext.Value)
      Ext.Value = F.fold(Ext.Value);
  return Stats;
}
