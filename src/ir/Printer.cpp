//===- Printer.cpp --------------------------------------------------------===//

#include "ir/Printer.h"

#include "ir/IR.h"
#include "support/Casting.h"

#include <map>

using namespace limpet;
using namespace limpet::ir;

namespace {

/// Stateful printer assigning %N / %argN names to values.
class PrinterImpl {
public:
  std::string print(const Operation *Op) {
    printOpRec(Op, 0);
    return Out;
  }

private:
  std::string Out;
  std::map<const Value *, std::string> Names;
  unsigned NextValue = 0;
  unsigned NextArg = 0;

  const std::string &nameOf(const Value *V) {
    auto It = Names.find(V);
    if (It != Names.end())
      return It->second;
    // A use before the def was printed (verifier would reject); name it
    // anyway so the printer is total.
    return Names[V] = "%u" + std::to_string(NextValue++);
  }

  void defineResult(const Value *V) {
    Names[V] = "%" + std::to_string(NextValue++);
  }

  void defineArg(const Value *V) {
    Names[V] = "%arg" + std::to_string(NextArg++);
  }

  void indent(int Depth) { Out.append(2 * Depth, ' '); }

  void printBlock(const Block &B, int Depth) {
    for (const Operation *Op : B.ops())
      printOpRec(Op, Depth);
  }

  void printOpRec(const Operation *Op, int Depth) {
    // func.func gets dedicated syntax.
    if (Op->opcode() == OpCode::FuncFunc) {
      indent(Depth);
      Out += "func.func @";
      Attribute SymName = Op->attr("sym_name");
      Out += SymName ? SymName.asString() : "<unnamed>";
      Out += "(";
      const Block &Body = Op->region(0).front();
      for (unsigned I = 0, E = Body.numArguments(); I != E; ++I) {
        if (I)
          Out += ", ";
        defineArg(Body.argument(I));
        Out += nameOf(Body.argument(I)) + ": " +
               Body.argument(I)->type().str();
      }
      Out += ") {\n";
      printBlock(Body, Depth + 1);
      indent(Depth);
      Out += "}\n";
      return;
    }

    // scf.for gets loop syntax with a named induction variable.
    if (Op->opcode() == OpCode::ScfFor) {
      indent(Depth);
      const Block &Body = Op->region(0).front();
      defineArg(Body.argument(0));
      Out += "scf.for " + nameOf(Body.argument(0)) + " = " +
             nameOf(Op->operand(0)) + " to " + nameOf(Op->operand(1)) +
             " step " + nameOf(Op->operand(2)) + " {\n";
      printBlock(Body, Depth + 1);
      indent(Depth);
      Out += "}\n";
      return;
    }

    indent(Depth);

    // Results.
    for (unsigned I = 0, E = Op->numResults(); I != E; ++I) {
      defineResult(Op->result(I));
      if (I)
        Out += ", ";
      Out += nameOf(Op->result(I));
    }
    if (Op->numResults())
      Out += " = ";

    Out += std::string(Op->name());

    // Operands.
    if (Op->numOperands()) {
      Out += " ";
      for (unsigned I = 0, E = Op->numOperands(); I != E; ++I) {
        if (I)
          Out += ", ";
        Out += nameOf(Op->operand(I));
      }
    }

    // Attributes.
    if (!Op->attrs().empty()) {
      Out += " {";
      bool First = true;
      for (const NamedAttribute &A : Op->attrs()) {
        if (!First)
          Out += ", ";
        First = false;
        Out += A.Name + " = " + A.Value.str();
      }
      Out += "}";
    }

    // Result types.
    if (Op->numResults()) {
      Out += " : ";
      for (unsigned I = 0, E = Op->numResults(); I != E; ++I) {
        if (I)
          Out += ", ";
        Out += Op->result(I)->type().str();
      }
    }

    // Regions (scf.if).
    if (Op->numRegions()) {
      for (unsigned I = 0, E = Op->numRegions(); I != E; ++I) {
        Out += I == 0 ? " {\n" : " else {\n";
        printBlock(Op->region(I).front(), Depth + 1);
        indent(Depth);
        Out += "}";
      }
    }
    Out += "\n";
  }
};

} // namespace

std::string ir::printOp(const Operation *Op) {
  PrinterImpl P;
  return P.print(Op);
}

std::string ir::printModule(const Module &M) {
  std::string Out;
  for (const auto &F : M.functions())
    Out += printOp(F.get());
  return Out;
}
