//===- Context.cpp --------------------------------------------------------===//

#include "ir/Context.h"

#include "support/Casting.h"

using namespace limpet;
using namespace limpet::ir;

Context::Context() {
  F64Ty = makeType(TypeKind::F64);
  I1Ty = makeType(TypeKind::I1);
  I64Ty = makeType(TypeKind::I64);
  MemRefTy = makeType(TypeKind::MemRef);
}

Type Context::makeType(TypeKind Kind, TypeKind Elem, unsigned Width) {
  auto Storage = std::make_unique<TypeStorage>();
  Storage->Kind = Kind;
  Storage->ElemKind = Elem;
  Storage->Width = Width;
  TypeStorages.push_back(std::move(Storage));
  return Type(TypeStorages.back().get());
}

Type Context::vector(TypeKind Elem, unsigned Width) {
  assert(Width > 0 && "vector width must be positive");
  assert((Elem == TypeKind::F64 || Elem == TypeKind::I1 ||
          Elem == TypeKind::I64) &&
         "vector element must be a scalar kind");
  for (const auto &S : TypeStorages)
    if (S->Kind == TypeKind::Vector && S->ElemKind == Elem &&
        S->Width == Width)
      return Type(S.get());
  return makeType(TypeKind::Vector, Elem, Width);
}

Type Context::scalarTypeOf(Type Ty) {
  if (!Ty.isVector())
    return Ty;
  switch (Ty.vectorElemKind()) {
  case TypeKind::F64:
    return f64();
  case TypeKind::I1:
    return i1();
  case TypeKind::I64:
    return i64();
  default:
    limpet_unreachable("invalid vector element kind");
  }
}

Type Context::vectorTypeOf(Type Ty, unsigned Width) {
  assert(!Ty.isVector() && !Ty.isMemRef() && "expected a scalar type");
  return vector(Ty.kind(), Width);
}
