//===- Verifier.cpp -------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IR.h"
#include "support/Casting.h"

#include <set>

using namespace limpet;
using namespace limpet::ir;

namespace {

class VerifierImpl {
public:
  VerifyResult run(const Operation *Func) {
    if (Func->opcode() != OpCode::FuncFunc)
      return fail(Func, "top-level op must be func.func");
    if (Func->numRegions() != 1 || Func->region(0).empty())
      return fail(Func, "func.func must have a single-block region");
    const Block &Body = Func->region(0).front();
    for (unsigned I = 0, E = Body.numArguments(); I != E; ++I)
      Visible.insert(Body.argument(I));
    if (VerifyResult R = verifyBlock(Body, /*RequireTerminator=*/true);
        !R)
      return R;
    return VerifyResult::success();
  }

private:
  std::set<const Value *> Visible;

  static VerifyResult fail(const Operation *Op, const std::string &Msg) {
    return VerifyResult::failure("'" + std::string(Op->name()) +
                                 "': " + Msg);
  }

  VerifyResult verifyBlock(const Block &B, bool RequireTerminator) {
    unsigned Index = 0;
    for (const Operation *Op : B.ops()) {
      bool IsLast = ++Index == B.ops().size();
      if (Op->isTerminator() && !IsLast)
        return fail(Op, "terminator must be the last op of its block");
      if (IsLast && RequireTerminator && !Op->isTerminator())
        return fail(Op, "block must end with a terminator");
      if (VerifyResult R = verifyOp(Op); !R)
        return R;
    }
    if (B.empty() && RequireTerminator)
      return VerifyResult::failure("empty block requires a terminator");
    return VerifyResult::success();
  }

  VerifyResult verifyOp(const Operation *Op) {
    // Arity vs. the registry.
    int ExpectedOperands = opcodeNumOperands(Op->opcode());
    if (ExpectedOperands >= 0 &&
        Op->numOperands() != unsigned(ExpectedOperands))
      return fail(Op, "expected " + std::to_string(ExpectedOperands) +
                          " operands, got " +
                          std::to_string(Op->numOperands()));
    int ExpectedResults = opcodeNumResults(Op->opcode());
    if (ExpectedResults >= 0 && Op->numResults() != unsigned(ExpectedResults))
      return fail(Op, "expected " + std::to_string(ExpectedResults) +
                          " results, got " +
                          std::to_string(Op->numResults()));
    if (Op->numRegions() != unsigned(opcodeNumRegions(Op->opcode())))
      return fail(Op, "wrong region count");

    // Dominance: all operands must be visible here.
    for (unsigned I = 0, E = Op->numOperands(); I != E; ++I) {
      if (!Op->operand(I))
        return fail(Op, "null operand #" + std::to_string(I));
      if (!Visible.count(Op->operand(I)))
        return fail(Op, "operand #" + std::to_string(I) +
                            " does not dominate this use");
    }

    if (VerifyResult R = verifyTyping(Op); !R)
      return R;

    // Nested regions see the outer scope plus their block arguments.
    for (unsigned RI = 0, RE = Op->numRegions(); RI != RE; ++RI) {
      if (Op->region(RI).empty())
        return fail(Op, "region #" + std::to_string(RI) + " has no block");
      const Block &Inner = Op->region(RI).front();
      std::vector<const Value *> Added;
      for (unsigned AI = 0, AE = Inner.numArguments(); AI != AE; ++AI)
        if (Visible.insert(Inner.argument(AI)).second)
          Added.push_back(Inner.argument(AI));
      bool RequireTerm = Op->opcode() == OpCode::ScfFor ||
                         Op->opcode() == OpCode::ScfIf;
      if (VerifyResult R = verifyBlock(Inner, RequireTerm); !R)
        return R;
      for (const Value *V : Added)
        Visible.erase(V);
      // The inner block's op results go out of scope as well; they were
      // added during verifyBlock.
      for (const Operation *InnerOp : Inner.ops())
        for (unsigned ResI = 0, ResE = InnerOp->numResults(); ResI != ResE;
             ++ResI)
          Visible.erase(InnerOp->result(ResI));
    }

    // Results become visible after the op.
    for (unsigned I = 0, E = Op->numResults(); I != E; ++I)
      Visible.insert(Op->result(I));
    return VerifyResult::success();
  }

  VerifyResult verifyTyping(const Operation *Op) {
    auto Operand = [&](unsigned I) { return Op->operand(I)->type(); };
    auto Result = [&](unsigned I) { return Op->result(I)->type(); };

    switch (Op->opcode()) {
    case OpCode::ArithConstantF:
      if (!Op->hasAttr("value"))
        return fail(Op, "missing 'value' attribute");
      if (!Result(0).isFloatLike())
        return fail(Op, "result must be float-like");
      return VerifyResult::success();
    case OpCode::ArithConstantI:
      if (!Op->hasAttr("value"))
        return fail(Op, "missing 'value' attribute");
      return VerifyResult::success();
    case OpCode::ArithAddF:
    case OpCode::ArithSubF:
    case OpCode::ArithMulF:
    case OpCode::ArithDivF:
    case OpCode::ArithRemF:
    case OpCode::ArithMinF:
    case OpCode::ArithMaxF:
    case OpCode::MathPow:
      if (Operand(0) != Operand(1) || Operand(0) != Result(0) ||
          !Operand(0).isFloatLike())
        return fail(Op, "operands/result must share a float-like type");
      return VerifyResult::success();
    case OpCode::ArithNegF:
    case OpCode::MathExp:
    case OpCode::MathExpm1:
    case OpCode::MathLog:
    case OpCode::MathLog10:
    case OpCode::MathSqrt:
    case OpCode::MathSin:
    case OpCode::MathCos:
    case OpCode::MathTan:
    case OpCode::MathTanh:
    case OpCode::MathSinh:
    case OpCode::MathCosh:
    case OpCode::MathAtan:
    case OpCode::MathAsin:
    case OpCode::MathAcos:
    case OpCode::MathAbs:
    case OpCode::MathFloor:
    case OpCode::MathCeil:
      if (Operand(0) != Result(0) || !Operand(0).isFloatLike())
        return fail(Op, "operand/result must share a float-like type");
      return VerifyResult::success();
    case OpCode::ArithCmpF: {
      CmpPredicate Pred;
      Attribute PredAttr = Op->attr("predicate");
      if (!PredAttr || !parseCmpPredicate(PredAttr.asString(), Pred))
        return fail(Op, "missing or invalid 'predicate' attribute");
      if (Operand(0) != Operand(1) || !Operand(0).isFloatLike())
        return fail(Op, "operands must share a float-like type");
      if (!Result(0).isBoolLike())
        return fail(Op, "result must be bool-like");
      return VerifyResult::success();
    }
    case OpCode::ArithCmpI: {
      CmpPredicate Pred;
      Attribute PredAttr = Op->attr("predicate");
      if (!PredAttr || !parseCmpPredicate(PredAttr.asString(), Pred))
        return fail(Op, "missing or invalid 'predicate' attribute");
      if (Operand(0) != Operand(1) || !Operand(0).isIntLike())
        return fail(Op, "operands must share an int-like type");
      if (!Result(0).isBoolLike())
        return fail(Op, "result must be bool-like");
      return VerifyResult::success();
    }
    case OpCode::ArithSelect:
      if (!Operand(0).isBoolLike())
        return fail(Op, "condition must be bool-like");
      if (Operand(1) != Operand(2) || Operand(1) != Result(0))
        return fail(Op, "select arms/result types must match");
      return VerifyResult::success();
    case OpCode::ArithAddI:
    case OpCode::ArithSubI:
    case OpCode::ArithMulI:
    case OpCode::ArithDivI:
    case OpCode::ArithRemI:
      if (Operand(0) != Operand(1) || Operand(0) != Result(0) ||
          !Operand(0).isIntLike())
        return fail(Op, "operands/result must share an int-like type");
      return VerifyResult::success();
    case OpCode::ArithAndI:
    case OpCode::ArithOrI:
    case OpCode::ArithXOrI:
      if (Operand(0) != Operand(1) || Operand(0) != Result(0))
        return fail(Op, "operands/result types must match");
      return VerifyResult::success();
    case OpCode::MemLoad:
      if (!Operand(0).isMemRef() || !Operand(1).isI64())
        return fail(Op, "expected (memref, i64) operands");
      if (!Result(0).isF64())
        return fail(Op, "result must be f64");
      return VerifyResult::success();
    case OpCode::MemStore:
      if (!Operand(0).isF64() || !Operand(1).isMemRef() ||
          !Operand(2).isI64())
        return fail(Op, "expected (f64, memref, i64) operands");
      return VerifyResult::success();
    case OpCode::VecBroadcast:
      if (!Result(0).isVector())
        return fail(Op, "result must be a vector");
      if (Operand(0).isVector())
        return fail(Op, "operand must be scalar");
      return VerifyResult::success();
    case OpCode::VecLoad:
      if (!Operand(0).isMemRef() || !Operand(1).isI64())
        return fail(Op, "expected (memref, i64) operands");
      if (!Result(0).isVector())
        return fail(Op, "result must be a vector");
      return VerifyResult::success();
    case OpCode::VecStore:
      if (!Operand(0).isVector() || !Operand(1).isMemRef() ||
          !Operand(2).isI64())
        return fail(Op, "expected (vector, memref, i64) operands");
      return VerifyResult::success();
    case OpCode::VecGather:
      if (!Operand(0).isMemRef() || !Operand(1).isI64())
        return fail(Op, "expected (memref, i64) operands");
      if (!Op->hasAttr("stride"))
        return fail(Op, "missing 'stride' attribute");
      if (!Result(0).isVector())
        return fail(Op, "result must be a vector");
      return VerifyResult::success();
    case OpCode::VecScatter:
      if (!Operand(0).isVector() || !Operand(1).isMemRef() ||
          !Operand(2).isI64())
        return fail(Op, "expected (vector, memref, i64) operands");
      if (!Op->hasAttr("stride"))
        return fail(Op, "missing 'stride' attribute");
      return VerifyResult::success();
    case OpCode::VecStepVector:
      if (!Result(0).isVector() ||
          Result(0).vectorElemKind() != TypeKind::I64)
        return fail(Op, "result must be a vector of i64");
      return VerifyResult::success();
    case OpCode::ScfFor:
      if (!Operand(0).isI64() || !Operand(1).isI64() || !Operand(2).isI64())
        return fail(Op, "bounds must be i64");
      if (Op->region(0).front().numArguments() != 1 ||
          !Op->region(0).front().argument(0)->type().isI64())
        return fail(Op, "body must have a single i64 induction argument");
      return VerifyResult::success();
    case OpCode::ScfIf: {
      if (!Operand(0).isI1())
        return fail(Op, "condition must be i1");
      // Both region terminators must yield the result types.
      for (unsigned RI = 0; RI != 2; ++RI) {
        const Operation *Term = Op->region(RI).front().terminator();
        if (!Term || Term->opcode() != OpCode::ScfYield)
          return fail(Op, "region must end with scf.yield");
        if (Term->numOperands() != Op->numResults())
          return fail(Op, "yield arity must match if results");
        for (unsigned I = 0, E = Term->numOperands(); I != E; ++I)
          if (Term->operand(I)->type() != Op->result(I)->type())
            return fail(Op, "yield operand type mismatch");
      }
      return VerifyResult::success();
    }
    case OpCode::ScfYield:
    case OpCode::FuncReturn:
      return VerifyResult::success();
    case OpCode::LutCoord:
      if (!Op->hasAttr("table"))
        return fail(Op, "missing 'table' attribute");
      if (!Operand(0).isFloatLike())
        return fail(Op, "input must be float-like");
      if (!Result(0).isIntLike() || !Result(1).isFloatLike())
        return fail(Op, "results must be (int-like, float-like)");
      return VerifyResult::success();
    case OpCode::LutInterp:
      if (!Op->hasAttr("table") || !Op->hasAttr("col"))
        return fail(Op, "missing 'table'/'col' attribute");
      if (!Operand(0).isIntLike() || !Operand(1).isFloatLike())
        return fail(Op, "operands must be (int-like, float-like)");
      return VerifyResult::success();
    case OpCode::FuncFunc:
      return fail(Op, "nested func.func is not allowed");
    case OpCode::NumOpCodes:
      break;
    }
    limpet_unreachable("unhandled opcode in verifier");
  }
};

} // namespace

VerifyResult ir::verifyFunction(const Operation *Func) {
  VerifierImpl V;
  return V.run(Func);
}

VerifyResult ir::verifyModule(const Module &M) {
  for (const auto &F : M.functions())
    if (VerifyResult R = verifyFunction(F.get()); !R)
      return R;
  return VerifyResult::success();
}
