//===- IR.cpp -------------------------------------------------------------===//

#include "ir/IR.h"

#include "support/Casting.h"

#include <algorithm>

using namespace limpet;
using namespace limpet::ir;

//===----------------------------------------------------------------------===//
// Operation
//===----------------------------------------------------------------------===//

Operation::Operation(OpCode Code, SourceLoc Loc) : Code(Code), Loc(Loc) {}

Operation::~Operation() = default;

OpResult *Operation::addResult(Type Ty) {
  Results.push_back(
      std::make_unique<OpResult>(this, Results.size(), Ty));
  return Results.back().get();
}

Attribute Operation::attr(std::string_view Name) const {
  for (const NamedAttribute &A : Attrs)
    if (A.Name == Name)
      return A.Value;
  return Attribute();
}

void Operation::setAttr(std::string_view Name, Attribute Value) {
  for (NamedAttribute &A : Attrs) {
    if (A.Name == Name) {
      A.Value = std::move(Value);
      return;
    }
  }
  Attrs.push_back({std::string(Name), std::move(Value)});
}

Region &Operation::addRegion() {
  Regions.push_back(std::make_unique<Region>(this));
  return *Regions.back();
}

Operation *Operation::parentOp() const {
  if (!Parent)
    return nullptr;
  return Parent->parentOp();
}

void Operation::walk(const std::function<void(Operation *)> &Fn) {
  Fn(this);
  for (auto &R : Regions)
    for (unsigned I = 0, E = R->numBlocks(); I != E; ++I)
      for (Operation *Op : R->front().ops())
        Op->walk(Fn);
}

void Operation::replaceUsesOfWith(Value *From, Value *To) {
  walk([&](Operation *Op) {
    for (unsigned I = 0, E = Op->numOperands(); I != E; ++I)
      if (Op->operand(I) == From)
        Op->setOperand(I, To);
  });
}

//===----------------------------------------------------------------------===//
// Block
//===----------------------------------------------------------------------===//

Block::~Block() {
  for (Operation *Op : Ops)
    delete Op;
}

Operation *Block::parentOp() const {
  return Parent ? Parent->parentOp() : nullptr;
}

BlockArgument *Block::addArgument(Type Ty) {
  Arguments.push_back(
      std::make_unique<BlockArgument>(this, Arguments.size(), Ty));
  return Arguments.back().get();
}

void Block::push_back(Operation *Op) {
  assert(!Op->parentBlock() && "op already placed in a block");
  Ops.push_back(Op);
  Op->setParentBlock(this);
}

void Block::insertBefore(Operation *Anchor, Operation *Op) {
  assert(Anchor->parentBlock() == this && "anchor not in this block");
  assert(!Op->parentBlock() && "op already placed in a block");
  auto It = std::find(Ops.begin(), Ops.end(), Anchor);
  assert(It != Ops.end() && "anchor not found");
  Ops.insert(It, Op);
  Op->setParentBlock(this);
}

void Block::remove(Operation *Op) {
  assert(Op->parentBlock() == this && "op not in this block");
  auto It = std::find(Ops.begin(), Ops.end(), Op);
  assert(It != Ops.end() && "op not found");
  Ops.erase(It);
  Op->setParentBlock(nullptr);
}

void Block::erase(Operation *Op) {
  remove(Op);
  delete Op;
}

Operation *Block::terminator() const {
  if (Ops.empty())
    return nullptr;
  Operation *Last = Ops.back();
  return Last->isTerminator() ? Last : nullptr;
}

//===----------------------------------------------------------------------===//
// Region
//===----------------------------------------------------------------------===//

Block &Region::emplaceBlock() {
  Blocks.push_back(std::make_unique<Block>());
  Blocks.back()->setParentRegion(this);
  return *Blocks.back();
}

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

Operation *Module::addFunction(std::unique_ptr<Operation> Func) {
  assert(Func->opcode() == OpCode::FuncFunc && "expected a func.func op");
  Functions.push_back(std::move(Func));
  return Functions.back().get();
}

Operation *Module::lookupFunction(std::string_view Name) const {
  for (const auto &F : Functions) {
    Attribute SymName = F->attr("sym_name");
    if (SymName && SymName.asString() == Name)
      return F.get();
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Free helpers
//===----------------------------------------------------------------------===//

Block &ir::funcBody(Operation *Func) {
  assert(Func->opcode() == OpCode::FuncFunc && "expected func.func");
  assert(Func->numRegions() == 1 && !Func->region(0).empty() &&
         "func has no body");
  return Func->region(0).front();
}

Block &ir::forBody(Operation *ForOp) {
  assert(ForOp->opcode() == OpCode::ScfFor && "expected scf.for");
  assert(ForOp->numRegions() == 1 && !ForOp->region(0).empty() &&
         "for has no body");
  return ForOp->region(0).front();
}
