//===- Builder.h - Operation builder ----------------------------*- C++-*-===//
//
// OpBuilder creates operations at an insertion point, in the style of
// mlir::OpBuilder. Typed per-op helpers live in dialects/Dialects.h.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_IR_BUILDER_H
#define LIMPET_IR_BUILDER_H

#include "ir/Context.h"
#include "ir/IR.h"

#include <initializer_list>

namespace limpet {
namespace ir {

/// Creates operations at a (block, position) insertion point.
class OpBuilder {
public:
  explicit OpBuilder(Context &Ctx) : Ctx(Ctx) {}

  Context &context() { return Ctx; }

  /// Subsequent ops are appended at the end of \p B.
  void setInsertionPointToEnd(Block *B) {
    InsertBlock = B;
    InsertBefore = nullptr;
  }

  /// Subsequent ops are inserted immediately before \p Op.
  void setInsertionPoint(Operation *Op) {
    InsertBlock = Op->parentBlock();
    InsertBefore = Op;
  }

  Block *insertionBlock() const { return InsertBlock; }

  /// Creates an operation and inserts it at the insertion point (if one is
  /// set). Result values are created from \p ResultTypes.
  Operation *create(OpCode Code, std::initializer_list<Value *> Operands,
                    std::initializer_list<Type> ResultTypes,
                    SourceLoc Loc = SourceLoc());

  Operation *create(OpCode Code, const std::vector<Value *> &Operands,
                    const std::vector<Type> &ResultTypes,
                    SourceLoc Loc = SourceLoc());

  /// Creates an op without inserting it; the caller must place it.
  static Operation *createDetached(OpCode Code,
                                   const std::vector<Value *> &Operands,
                                   const std::vector<Type> &ResultTypes,
                                   SourceLoc Loc = SourceLoc());

private:
  Context &Ctx;
  Block *InsertBlock = nullptr;
  Operation *InsertBefore = nullptr;
};

} // namespace ir
} // namespace limpet

#endif // LIMPET_IR_BUILDER_H
