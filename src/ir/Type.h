//===- Type.h - IR type system ----------------------------------*- C++-*-===//
//
// Types for the limpetMLIR IR. Mirrors the slice of MLIR's type system the
// paper's code generation uses: f64, i1, i64, fixed-width vectors thereof,
// and a 1-D dynamically-sized memref of f64. Types are uniqued in the
// Context and passed around as small value handles.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_IR_TYPE_H
#define LIMPET_IR_TYPE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace limpet {
namespace ir {

class Context;

/// Discriminator for TypeStorage.
enum class TypeKind : uint8_t {
  F64,    ///< 64-bit IEEE float.
  I1,     ///< boolean / comparison result.
  I64,    ///< 64-bit integer, also used as index type.
  Vector, ///< fixed-width vector of a scalar type.
  MemRef, ///< 1-D dynamically sized buffer of f64.
};

/// Uniqued immutable payload of a Type; owned by the Context.
struct TypeStorage {
  TypeKind Kind;
  /// For Vector: element kind. Unused otherwise.
  TypeKind ElemKind = TypeKind::F64;
  /// For Vector: number of lanes. Unused otherwise.
  unsigned Width = 0;
};

/// A small value handle onto a uniqued TypeStorage. A default-constructed
/// Type is null; every Type vended by a Context is non-null.
class Type {
public:
  Type() = default;
  explicit Type(const TypeStorage *Storage) : Storage(Storage) {}

  explicit operator bool() const { return Storage != nullptr; }
  bool operator==(const Type &Other) const { return Storage == Other.Storage; }
  bool operator!=(const Type &Other) const { return Storage != Other.Storage; }

  TypeKind kind() const {
    assert(Storage && "querying a null Type");
    return Storage->Kind;
  }

  bool isF64() const { return Storage && Storage->Kind == TypeKind::F64; }
  bool isI1() const { return Storage && Storage->Kind == TypeKind::I1; }
  bool isI64() const { return Storage && Storage->Kind == TypeKind::I64; }
  bool isVector() const {
    return Storage && Storage->Kind == TypeKind::Vector;
  }
  bool isMemRef() const {
    return Storage && Storage->Kind == TypeKind::MemRef;
  }

  /// True for f64 or vector-of-f64.
  bool isFloatLike() const {
    return isF64() || (isVector() && Storage->ElemKind == TypeKind::F64);
  }
  /// True for i1 or vector-of-i1.
  bool isBoolLike() const {
    return isI1() || (isVector() && Storage->ElemKind == TypeKind::I1);
  }
  /// True for i64 or vector-of-i64.
  bool isIntLike() const {
    return isI64() || (isVector() && Storage->ElemKind == TypeKind::I64);
  }

  /// Vector element kind; only valid on vector types.
  TypeKind vectorElemKind() const {
    assert(isVector() && "not a vector type");
    return Storage->ElemKind;
  }

  /// Vector lane count; only valid on vector types.
  unsigned vectorWidth() const {
    assert(isVector() && "not a vector type");
    return Storage->Width;
  }

  /// Renders e.g. "f64", "vector<8xf64>", "memref<?xf64>".
  std::string str() const;

  const TypeStorage *storage() const { return Storage; }

private:
  const TypeStorage *Storage = nullptr;
};

} // namespace ir
} // namespace limpet

#endif // LIMPET_IR_TYPE_H
