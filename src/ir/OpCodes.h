//===- OpCodes.h - Opcode enum and metadata ---------------------*- C++-*-===//
//
// The opcode enum for all operations (see Ops.def) plus per-opcode metadata
// queries used by the builder, verifier, printer and passes.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_IR_OPCODES_H
#define LIMPET_IR_OPCODES_H

#include <cstdint>
#include <string_view>

namespace limpet {
namespace ir {

/// Operation traits, usable as a bitmask.
struct OpTraits {
  enum : uint8_t {
    None = 0,
    /// No side effects, freely speculatable, CSE-able, hoistable.
    Pure = 1,
    /// Must be the last operation of its block.
    Terminator = 2,
    /// Reads memory but does not write it; hoistable when the read buffer
    /// is not written inside the loop.
    ReadOnly = 4,
  };
};

enum class OpCode : uint16_t {
#define OP(Enum, Name, NumOperands, NumResults, NumRegions, Traits) Enum,
#include "ir/Ops.def"
  NumOpCodes
};

/// Textual name, e.g. "arith.addf".
std::string_view opcodeName(OpCode Op);

/// Expected operand count; -1 for variadic.
int opcodeNumOperands(OpCode Op);

/// Expected result count; -1 for variadic.
int opcodeNumResults(OpCode Op);

/// Number of attached regions.
int opcodeNumRegions(OpCode Op);

/// Trait bitmask (see OpTraits).
uint8_t opcodeTraits(OpCode Op);

inline bool opcodeIsPure(OpCode Op) {
  return opcodeTraits(Op) & OpTraits::Pure;
}
inline bool opcodeIsTerminator(OpCode Op) {
  return opcodeTraits(Op) & OpTraits::Terminator;
}
inline bool opcodeIsReadOnly(OpCode Op) {
  return opcodeTraits(Op) & OpTraits::ReadOnly;
}

/// Comparison predicates shared by arith.cmpf / arith.cmpi, stored as the
/// "predicate" string attribute.
enum class CmpPredicate : uint8_t { LT, LE, GT, GE, EQ, NE };

std::string_view cmpPredicateName(CmpPredicate Pred);
bool parseCmpPredicate(std::string_view Name, CmpPredicate &Out);

} // namespace ir
} // namespace limpet

#endif // LIMPET_IR_OPCODES_H
