//===- IRParser.cpp -------------------------------------------------------===//

#include "ir/IRParser.h"

#include "dialects/Dialects.h"
#include "support/Casting.h"
#include "support/StringUtils.h"

#include <cctype>
#include <cstdlib>
#include <map>

using namespace limpet;
using namespace limpet::ir;

namespace {

/// Character-level cursor with line tracking for error messages.
class Cursor {
public:
  explicit Cursor(std::string_view Text) : Text(Text) {}

  int line() const { return Line; }
  bool atEnd() {
    skipSpace();
    return Pos >= Text.size();
  }

  void skipSpace() {
    while (Pos < Text.size() &&
           std::isspace(static_cast<unsigned char>(Text[Pos]))) {
      if (Text[Pos] == '\n')
        ++Line;
      ++Pos;
    }
  }

  char peek() {
    skipSpace();
    return Pos < Text.size() ? Text[Pos] : '\0';
  }

  /// Consumes \p Literal if it is next (after whitespace).
  bool consume(std::string_view Literal) {
    skipSpace();
    if (Text.substr(Pos, Literal.size()) != Literal)
      return false;
    for (char C : Literal)
      if (C == '\n')
        ++Line;
    Pos += Literal.size();
    return true;
  }

  /// Reads an identifier-like word: [A-Za-z0-9_.%@?<>]+ style tokens are
  /// split by the callers; this reads [A-Za-z0-9_.]+ .
  std::string word() {
    skipSpace();
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '_' || Text[Pos] == '.'))
      ++Pos;
    return std::string(Text.substr(Start, Pos - Start));
  }

  /// Reads a value name: %N or %argN.
  std::string valueName() {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != '%')
      return "";
    size_t Start = Pos++;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos]))))
      ++Pos;
    return std::string(Text.substr(Start, Pos - Start));
  }

  /// Reads a signed numeric literal as text.
  std::string number() {
    skipSpace();
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    while (Pos < Text.size() &&
           (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == '+' || Text[Pos] == '-')) {
      // Allow exponents like 1e-06 but stop at structure characters.
      if ((Text[Pos] == '+' || Text[Pos] == '-') &&
          !(Text[Pos - 1] == 'e' || Text[Pos - 1] == 'E'))
        break;
      ++Pos;
    }
    return std::string(Text.substr(Start, Pos - Start));
  }

private:
  std::string_view Text;
  size_t Pos = 0;
  int Line = 1;
};

class ParserImpl {
public:
  ParserImpl(std::string_view Text, Context &Ctx) : Cur(Text), Ctx(Ctx) {}

  ParseIRResult run() {
    auto Mod = std::make_unique<Module>();
    while (!Cur.atEnd()) {
      auto Func = parseFunc();
      if (!Func)
        return {nullptr, ErrorMsg};
      Mod->addFunction(std::move(Func));
    }
    if (Mod->functions().empty())
      return {nullptr, "no functions found"};
    return {std::move(Mod), ""};
  }

private:
  Cursor Cur;
  Context &Ctx;
  std::string ErrorMsg;
  std::map<std::string, Value *> Values;

  std::nullptr_t fail(const std::string &Msg) {
    if (ErrorMsg.empty())
      ErrorMsg = "line " + std::to_string(Cur.line()) + ": " + Msg;
    return nullptr;
  }

  bool expect(std::string_view Literal) {
    if (Cur.consume(Literal))
      return true;
    fail("expected '" + std::string(Literal) + "'");
    return false;
  }

  /// f64 | i1 | i64 | vector<WxK> | memref<?xf64>
  bool parseType(Type &Out) {
    std::string Name = Cur.word();
    if (Name == "f64") {
      Out = Ctx.f64();
      return true;
    }
    if (Name == "i1") {
      Out = Ctx.i1();
      return true;
    }
    if (Name == "i64") {
      Out = Ctx.i64();
      return true;
    }
    if (Name == "memref") {
      if (!expect("<?xf64>"))
        return false;
      Out = Ctx.memref();
      return true;
    }
    if (Name == "vector") {
      if (!expect("<"))
        return false;
      std::string Dim = Cur.word(); // e.g. "8xf64"
      if (!expect(">"))
        return false;
      size_t X = Dim.find('x');
      if (X == std::string::npos)
        return fail("malformed vector type '" + Dim + "'"), false;
      unsigned W = unsigned(std::atoi(Dim.substr(0, X).c_str()));
      std::string Elem = Dim.substr(X + 1);
      TypeKind Kind;
      if (Elem == "f64")
        Kind = TypeKind::F64;
      else if (Elem == "i1")
        Kind = TypeKind::I1;
      else if (Elem == "i64")
        Kind = TypeKind::I64;
      else
        return fail("unknown vector element '" + Elem + "'"), false;
      Out = Ctx.vector(Kind, W);
      return true;
    }
    fail("unknown type '" + Name + "'");
    return false;
  }

  /// Looks an opcode up by its printed name.
  bool parseOpcode(const std::string &Name, OpCode &Out) {
    for (unsigned I = 0; I != unsigned(OpCode::NumOpCodes); ++I)
      if (opcodeName(OpCode(I)) == Name) {
        Out = OpCode(I);
        return true;
      }
    fail("unknown operation '" + Name + "'");
    return false;
  }

  Value *lookup(const std::string &Name) {
    auto It = Values.find(Name);
    if (It == Values.end()) {
      fail("use of undefined value '" + Name + "'");
      return nullptr;
    }
    return It->second;
  }

  /// func.func @name(%arg0: type, ...) { body }
  std::unique_ptr<Operation> parseFunc() {
    if (!expect("func.func") || !expect("@"))
      return nullptr;
    std::string Name = Cur.word();
    if (!expect("("))
      return nullptr;
    std::vector<std::string> ArgNames;
    std::vector<Type> ArgTypes;
    if (!Cur.consume(")")) {
      while (true) {
        std::string Arg = Cur.valueName();
        if (Arg.empty())
          return fail("expected argument name");
        if (!expect(":"))
          return nullptr;
        Type Ty;
        if (!parseType(Ty))
          return nullptr;
        ArgNames.push_back(Arg);
        ArgTypes.push_back(Ty);
        if (Cur.consume(")"))
          break;
        if (!expect(","))
          return nullptr;
      }
    }
    auto Func = makeFunction(Ctx, Name, ArgTypes);
    Block &Body = funcBody(Func.get());
    for (size_t I = 0; I != ArgNames.size(); ++I)
      Values[ArgNames[I]] = Body.argument(unsigned(I));
    if (!expect("{"))
      return nullptr;
    if (!parseBlockBody(Body))
      return nullptr;
    return Func;
  }

  /// Parses operations until the closing '}' (consumed).
  bool parseBlockBody(Block &B) {
    while (!Cur.consume("}")) {
      if (Cur.atEnd()) {
        fail("unterminated block");
        return false;
      }
      if (!parseOp(B))
        return false;
    }
    return true;
  }

  bool parseOp(Block &B) {
    // Results (if any): %N, %M = ...
    std::vector<std::string> ResultNames;
    if (Cur.peek() == '%') {
      while (true) {
        std::string R = Cur.valueName();
        if (R.empty()) {
          fail("expected result name");
          return false;
        }
        ResultNames.push_back(R);
        if (!Cur.consume(","))
          break;
      }
      if (!expect("="))
        return false;
    }

    std::string Name = Cur.word();

    // scf.for has dedicated loop syntax; its "result" slot above is
    // never taken (prints no results), so Name is the op name here.
    if (Name == "scf.for")
      return parseFor(B);

    OpCode Code;
    if (!parseOpcode(Name, Code))
      return false;

    // Operands.
    std::vector<Value *> Operands;
    if (Cur.peek() == '%') {
      while (true) {
        std::string V = Cur.valueName();
        Value *Val = lookup(V);
        if (!Val)
          return false;
        Operands.push_back(Val);
        if (!Cur.consume(","))
          break;
      }
    }

    auto *Op = new Operation(Code);
    for (Value *V : Operands)
      Op->addOperand(V);
    B.push_back(Op);

    // Attributes.
    if (Cur.consume("{")) {
      while (true) {
        std::string AttrName = Cur.word();
        if (!expect("="))
          return false;
        Attribute A;
        if (!parseAttrValue(A))
          return false;
        // Float constants print integral values without a decimal point;
        // restore the attribute kind arith.constant requires.
        if (Code == OpCode::ArithConstantF && AttrName == "value" &&
            A.kind() == Attribute::Kind::Int)
          A = Attribute::makeFloat(double(A.asInt()));
        Op->setAttr(AttrName, A);
        if (Cur.consume("}"))
          break;
        if (!expect(","))
          return false;
      }
    }

    // Result types.
    if (!ResultNames.empty()) {
      if (!expect(":"))
        return false;
      for (size_t I = 0; I != ResultNames.size(); ++I) {
        Type Ty;
        if (!parseType(Ty))
          return false;
        Values[ResultNames[I]] = Op->addResult(Ty);
        if (I + 1 != ResultNames.size() && !expect(","))
          return false;
      }
    }

    // Regions (scf.if prints "{...} else {...}" after the types).
    int Regions = opcodeNumRegions(Code);
    for (int R = 0; R != Regions; ++R) {
      if (R == 1 && !expect("else"))
        return false;
      if (!expect("{"))
        return false;
      Block &Inner = Op->addRegion().emplaceBlock();
      if (!parseBlockBody(Inner))
        return false;
    }
    return true;
  }

  /// scf.for %iv = %lb to %ub step %step { body }
  bool parseFor(Block &B) {
    std::string Iv = Cur.valueName();
    if (Iv.empty() || !expect("="))
      return false;
    Value *Lb = lookup(Cur.valueName());
    if (!Lb || !expect("to"))
      return false;
    Value *Ub = lookup(Cur.valueName());
    if (!Ub || !expect("step"))
      return false;
    Value *Step = lookup(Cur.valueName());
    if (!Step || !expect("{"))
      return false;

    auto *Op = new Operation(OpCode::ScfFor);
    Op->addOperand(Lb);
    Op->addOperand(Ub);
    Op->addOperand(Step);
    Block &Body = Op->addRegion().emplaceBlock();
    Values[Iv] = Body.addArgument(Ctx.i64());
    B.push_back(Op);
    return parseBlockBody(Body);
  }

  /// number | true | false | "string"
  bool parseAttrValue(Attribute &Out) {
    if (Cur.consume("true")) {
      Out = Attribute::makeBool(true);
      return true;
    }
    if (Cur.consume("false")) {
      Out = Attribute::makeBool(false);
      return true;
    }
    if (Cur.consume("\"")) {
      std::string S;
      while (Cur.peek() != '"' && Cur.peek() != '\0')
        S += [&] {
          std::string W = Cur.word();
          if (!W.empty())
            return W;
          // Punctuation inside strings (rare): consume one char.
          std::string One(1, Cur.peek());
          Cur.consume(One);
          return One;
        }();
      if (!expect("\""))
        return false;
      Out = Attribute::makeString(S);
      return true;
    }
    std::string Num = Cur.number();
    if (Num.empty()) {
      fail("expected an attribute value");
      return false;
    }
    // Integer when it round-trips as one (no '.', 'e', 'inf', 'nan').
    bool IsInt = Num.find('.') == std::string::npos &&
                 Num.find('e') == std::string::npos &&
                 Num.find('E') == std::string::npos &&
                 Num.find("inf") == std::string::npos &&
                 Num.find("nan") == std::string::npos;
    if (IsInt)
      Out = Attribute::makeInt(std::atoll(Num.c_str()));
    else
      Out = Attribute::makeFloat(std::strtod(Num.c_str(), nullptr));
    return true;
  }
};

} // namespace

ParseIRResult ir::parseIR(std::string_view Text, Context &Ctx) {
  return ParserImpl(Text, Ctx).run();
}
