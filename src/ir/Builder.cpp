//===- Builder.cpp --------------------------------------------------------===//

#include "ir/Builder.h"

using namespace limpet;
using namespace limpet::ir;

Operation *OpBuilder::createDetached(OpCode Code,
                                     const std::vector<Value *> &Operands,
                                     const std::vector<Type> &ResultTypes,
                                     SourceLoc Loc) {
  auto *Op = new Operation(Code, Loc);
  for (Value *V : Operands)
    Op->addOperand(V);
  for (Type Ty : ResultTypes)
    Op->addResult(Ty);
  return Op;
}

Operation *OpBuilder::create(OpCode Code,
                             const std::vector<Value *> &Operands,
                             const std::vector<Type> &ResultTypes,
                             SourceLoc Loc) {
  Operation *Op = createDetached(Code, Operands, ResultTypes, Loc);
  if (InsertBlock) {
    if (InsertBefore)
      InsertBlock->insertBefore(InsertBefore, Op);
    else
      InsertBlock->push_back(Op);
  }
  return Op;
}

Operation *OpBuilder::create(OpCode Code,
                             std::initializer_list<Value *> Operands,
                             std::initializer_list<Type> ResultTypes,
                             SourceLoc Loc) {
  return create(Code, std::vector<Value *>(Operands),
                std::vector<Type>(ResultTypes), Loc);
}
