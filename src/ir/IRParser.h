//===- IRParser.h - Textual IR parser ---------------------------*- C++-*-===//
//
// Parses the textual form produced by ir/Printer.h back into IR, giving
// the usual mlir-opt-style round trip:  parse(print(F)) prints
// identically to F. Used by tests to write pass inputs as text and by
// tooling.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_IR_IRPARSER_H
#define LIMPET_IR_IRPARSER_H

#include "ir/Context.h"
#include "ir/IR.h"

#include <memory>
#include <string>
#include <string_view>

namespace limpet {
namespace ir {

/// Result of a parse: the module, or an error message with a line number.
struct ParseIRResult {
  std::unique_ptr<Module> Mod;
  std::string Error;

  explicit operator bool() const { return Mod != nullptr; }
};

/// Parses one or more func.func definitions. Types are uniqued in \p Ctx,
/// which must outlive the module.
ParseIRResult parseIR(std::string_view Text, Context &Ctx);

} // namespace ir
} // namespace limpet

#endif // LIMPET_IR_IRPARSER_H
