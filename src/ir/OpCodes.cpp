//===- OpCodes.cpp --------------------------------------------------------===//

#include "ir/OpCodes.h"

#include "support/Casting.h"

using namespace limpet;
using namespace limpet::ir;

namespace {
struct OpInfo {
  std::string_view Name;
  int NumOperands;
  int NumResults;
  int NumRegions;
  uint8_t Traits;
};

constexpr OpInfo OpInfos[] = {
#define OP(Enum, Name, NumOperands, NumResults, NumRegions, Traits)           \
  {Name, NumOperands, NumResults, NumRegions, Traits},
#include "ir/Ops.def"
};
} // namespace

static const OpInfo &infoOf(OpCode Op) {
  auto Index = static_cast<size_t>(Op);
  assert(Index < static_cast<size_t>(OpCode::NumOpCodes) && "invalid opcode");
  return OpInfos[Index];
}

std::string_view ir::opcodeName(OpCode Op) { return infoOf(Op).Name; }
int ir::opcodeNumOperands(OpCode Op) { return infoOf(Op).NumOperands; }
int ir::opcodeNumResults(OpCode Op) { return infoOf(Op).NumResults; }
int ir::opcodeNumRegions(OpCode Op) { return infoOf(Op).NumRegions; }
uint8_t ir::opcodeTraits(OpCode Op) { return infoOf(Op).Traits; }

std::string_view ir::cmpPredicateName(CmpPredicate Pred) {
  switch (Pred) {
  case CmpPredicate::LT:
    return "lt";
  case CmpPredicate::LE:
    return "le";
  case CmpPredicate::GT:
    return "gt";
  case CmpPredicate::GE:
    return "ge";
  case CmpPredicate::EQ:
    return "eq";
  case CmpPredicate::NE:
    return "ne";
  }
  limpet_unreachable("invalid predicate");
}

bool ir::parseCmpPredicate(std::string_view Name, CmpPredicate &Out) {
  if (Name == "lt")
    Out = CmpPredicate::LT;
  else if (Name == "le")
    Out = CmpPredicate::LE;
  else if (Name == "gt")
    Out = CmpPredicate::GT;
  else if (Name == "ge")
    Out = CmpPredicate::GE;
  else if (Name == "eq")
    Out = CmpPredicate::EQ;
  else if (Name == "ne")
    Out = CmpPredicate::NE;
  else
    return false;
  return true;
}
