//===- Attribute.h - Constant op metadata -----------------------*- C++-*-===//
//
// Attributes are small immutable constants attached to operations by name
// (e.g. the value of arith.constant, a cmpf predicate, a gather stride).
// Unlike MLIR they are stored by value; the payload is a tagged union.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_IR_ATTRIBUTE_H
#define LIMPET_IR_ATTRIBUTE_H

#include <cassert>
#include <cstdint>
#include <string>

namespace limpet {
namespace ir {

/// A tagged constant value: none, float, int, bool or string.
class Attribute {
public:
  enum class Kind : uint8_t { None, Float, Int, Bool, String };

  Attribute() = default;
  static Attribute makeFloat(double V) {
    Attribute A;
    A.TheKind = Kind::Float;
    A.FloatVal = V;
    return A;
  }
  static Attribute makeInt(int64_t V) {
    Attribute A;
    A.TheKind = Kind::Int;
    A.IntVal = V;
    return A;
  }
  static Attribute makeBool(bool V) {
    Attribute A;
    A.TheKind = Kind::Bool;
    A.BoolVal = V;
    return A;
  }
  static Attribute makeString(std::string V) {
    Attribute A;
    A.TheKind = Kind::String;
    A.StringVal = std::move(V);
    return A;
  }

  Kind kind() const { return TheKind; }
  bool isNone() const { return TheKind == Kind::None; }
  explicit operator bool() const { return TheKind != Kind::None; }

  double asFloat() const {
    assert(TheKind == Kind::Float && "not a float attribute");
    return FloatVal;
  }
  int64_t asInt() const {
    assert(TheKind == Kind::Int && "not an int attribute");
    return IntVal;
  }
  bool asBool() const {
    assert(TheKind == Kind::Bool && "not a bool attribute");
    return BoolVal;
  }
  const std::string &asString() const {
    assert(TheKind == Kind::String && "not a string attribute");
    return StringVal;
  }

  bool operator==(const Attribute &O) const {
    if (TheKind != O.TheKind)
      return false;
    switch (TheKind) {
    case Kind::None:
      return true;
    case Kind::Float:
      // Bitwise comparison so that -0.0 != 0.0 and NaN == NaN for uniquing.
      return bitsOf(FloatVal) == bitsOf(O.FloatVal);
    case Kind::Int:
      return IntVal == O.IntVal;
    case Kind::Bool:
      return BoolVal == O.BoolVal;
    case Kind::String:
      return StringVal == O.StringVal;
    }
    return false;
  }
  bool operator!=(const Attribute &O) const { return !(*this == O); }

  /// Renders the attribute for the IR printer.
  std::string str() const;

  /// Stable hash suitable for CSE keys.
  size_t hash() const;

private:
  static uint64_t bitsOf(double V);

  Kind TheKind = Kind::None;
  double FloatVal = 0;
  int64_t IntVal = 0;
  bool BoolVal = false;
  std::string StringVal;
};

/// A named attribute entry as stored on an Operation.
struct NamedAttribute {
  std::string Name;
  Attribute Value;
};

} // namespace ir
} // namespace limpet

#endif // LIMPET_IR_ATTRIBUTE_H
