//===- Verifier.h - IR structural and type verification ---------*- C++-*-===//
//
// Verifies module / function invariants: operand and result arities per
// opcode, per-op typing rules, required attributes, terminator placement and
// SSA dominance (defs precede uses, respecting region nesting).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_IR_VERIFIER_H
#define LIMPET_IR_VERIFIER_H

#include <string>

namespace limpet {
namespace ir {

class Module;
class Operation;

/// Result of a verification run. Empty message means success.
struct VerifyResult {
  bool Ok = true;
  std::string Message;

  explicit operator bool() const { return Ok; }
  static VerifyResult success() { return {}; }
  static VerifyResult failure(std::string Msg) {
    return {false, std::move(Msg)};
  }
};

/// Verifies a func.func operation.
VerifyResult verifyFunction(const Operation *Func);

/// Verifies every function in a module.
VerifyResult verifyModule(const Module &M);

} // namespace ir
} // namespace limpet

#endif // LIMPET_IR_VERIFIER_H
