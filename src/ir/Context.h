//===- Context.h - IR context and type uniquer ------------------*- C++-*-===//
//
// The Context owns all uniqued TypeStorage instances, so Type handles stay
// valid for the lifetime of the Context (the analogue of MLIRContext).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_IR_CONTEXT_H
#define LIMPET_IR_CONTEXT_H

#include "ir/Type.h"

#include <memory>
#include <vector>

namespace limpet {
namespace ir {

/// Owns uniqued types. One Context typically lives for a whole compilation.
class Context {
public:
  Context();
  Context(const Context &) = delete;
  Context &operator=(const Context &) = delete;

  Type f64() const { return F64Ty; }
  Type i1() const { return I1Ty; }
  Type i64() const { return I64Ty; }
  Type memref() const { return MemRefTy; }

  /// Returns the uniqued vector type of \p Width lanes of \p Elem (a scalar
  /// kind: F64, I1 or I64).
  Type vector(TypeKind Elem, unsigned Width);

  /// Shorthand for vector(F64, Width).
  Type vecF64(unsigned Width) { return vector(TypeKind::F64, Width); }
  /// Shorthand for vector(I1, Width).
  Type vecI1(unsigned Width) { return vector(TypeKind::I1, Width); }
  /// Shorthand for vector(I64, Width).
  Type vecI64(unsigned Width) { return vector(TypeKind::I64, Width); }

  /// For a vector type returns its scalar element type; scalars are returned
  /// unchanged.
  Type scalarTypeOf(Type Ty);

  /// Returns the vector type with the same element kind as the scalar \p Ty.
  Type vectorTypeOf(Type Ty, unsigned Width);

private:
  std::vector<std::unique_ptr<TypeStorage>> TypeStorages;
  Type F64Ty, I1Ty, I64Ty, MemRefTy;

  Type makeType(TypeKind Kind, TypeKind Elem = TypeKind::F64,
                unsigned Width = 0);
};

} // namespace ir
} // namespace limpet

#endif // LIMPET_IR_CONTEXT_H
