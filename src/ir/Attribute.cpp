//===- Attribute.cpp ------------------------------------------------------===//

#include "ir/Attribute.h"

#include "support/StringUtils.h"

#include <cstring>
#include <functional>

using namespace limpet;
using namespace limpet::ir;

uint64_t Attribute::bitsOf(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  return Bits;
}

std::string Attribute::str() const {
  switch (TheKind) {
  case Kind::None:
    return "<none>";
  case Kind::Float:
    return formatDouble(FloatVal);
  case Kind::Int:
    return std::to_string(IntVal);
  case Kind::Bool:
    return BoolVal ? "true" : "false";
  case Kind::String:
    return "\"" + StringVal + "\"";
  }
  return "<invalid>";
}

size_t Attribute::hash() const {
  switch (TheKind) {
  case Kind::None:
    return 0;
  case Kind::Float:
    return std::hash<uint64_t>()(bitsOf(FloatVal)) * 31 + 1;
  case Kind::Int:
    return std::hash<int64_t>()(IntVal) * 31 + 2;
  case Kind::Bool:
    return BoolVal ? 0x9e3779b9u : 0x85ebca6bu;
  case Kind::String:
    return std::hash<std::string>()(StringVal) * 31 + 4;
  }
  return 0;
}
