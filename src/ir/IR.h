//===- IR.h - Values, Operations, Blocks, Regions, Module -------*- C++-*-===//
//
// The structural core of the limpetMLIR IR, mirroring the slice of MLIR the
// paper relies on: SSA values produced by operations or block arguments,
// generic operations carrying operands / results / attributes / regions,
// single-block regions for scf.for / scf.if bodies, and a Module holding
// func.func operations.
//
// Ownership: a Module owns its functions; an Operation owns its results and
// regions; a Region owns its blocks; a Block owns its operations and
// arguments. Values are therefore stable for the lifetime of their owner.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_IR_IR_H
#define LIMPET_IR_IR_H

#include "ir/Attribute.h"
#include "ir/OpCodes.h"
#include "ir/Type.h"
#include "support/Diagnostics.h"

#include <functional>
#include <list>
#include <memory>
#include <string>
#include <vector>

namespace limpet {
namespace ir {

class Block;
class Operation;
class Region;

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

/// An SSA value: either the result of an operation or a block argument.
class Value {
public:
  enum class Kind : uint8_t { OpResult, BlockArgument };

  Kind kind() const { return TheKind; }
  Type type() const { return Ty; }
  void setType(Type T) { Ty = T; }

  virtual ~Value() = default;

protected:
  Value(Kind K, Type Ty) : TheKind(K), Ty(Ty) {}

private:
  Kind TheKind;
  Type Ty;
};

/// A result of an Operation.
class OpResult : public Value {
public:
  OpResult(Operation *Owner, unsigned Index, Type Ty)
      : Value(Kind::OpResult, Ty), Owner(Owner), Index(Index) {}

  static bool classof(const Value *V) {
    return V->kind() == Kind::OpResult;
  }

  Operation *owner() const { return Owner; }
  unsigned index() const { return Index; }

private:
  Operation *Owner;
  unsigned Index;
};

/// An argument of a Block (e.g. the induction variable of scf.for, or a
/// kernel function parameter).
class BlockArgument : public Value {
public:
  BlockArgument(Block *Owner, unsigned Index, Type Ty)
      : Value(Kind::BlockArgument, Ty), Owner(Owner), Index(Index) {}

  static bool classof(const Value *V) {
    return V->kind() == Kind::BlockArgument;
  }

  Block *owner() const { return Owner; }
  unsigned index() const { return Index; }

private:
  Block *Owner;
  unsigned Index;
};

//===----------------------------------------------------------------------===//
// Operation
//===----------------------------------------------------------------------===//

/// A generic operation: opcode + operands + owned results + attributes +
/// owned regions. All ops (including func.func) share this representation.
class Operation {
public:
  Operation(OpCode Code, SourceLoc Loc = SourceLoc());
  ~Operation();
  Operation(const Operation &) = delete;
  Operation &operator=(const Operation &) = delete;

  OpCode opcode() const { return Code; }
  SourceLoc loc() const { return Loc; }
  std::string_view name() const { return opcodeName(Code); }

  // Operands -------------------------------------------------------------
  unsigned numOperands() const { return Operands.size(); }
  Value *operand(unsigned I) const {
    assert(I < Operands.size() && "operand index out of range");
    return Operands[I];
  }
  void setOperand(unsigned I, Value *V) {
    assert(I < Operands.size() && "operand index out of range");
    Operands[I] = V;
  }
  void addOperand(Value *V) { Operands.push_back(V); }
  const std::vector<Value *> &operands() const { return Operands; }

  // Results --------------------------------------------------------------
  unsigned numResults() const { return Results.size(); }
  OpResult *result(unsigned I = 0) const {
    assert(I < Results.size() && "result index out of range");
    return Results[I].get();
  }
  /// Appends a new result of type \p Ty (builder use only).
  OpResult *addResult(Type Ty);

  // Attributes -----------------------------------------------------------
  /// Returns the attribute named \p Name, or a None attribute if absent.
  Attribute attr(std::string_view Name) const;
  bool hasAttr(std::string_view Name) const { return bool(attr(Name)); }
  void setAttr(std::string_view Name, Attribute Value);
  const std::vector<NamedAttribute> &attrs() const { return Attrs; }

  // Regions --------------------------------------------------------------
  unsigned numRegions() const { return Regions.size(); }
  Region &region(unsigned I) const {
    assert(I < Regions.size() && "region index out of range");
    return *Regions[I];
  }
  Region &addRegion();

  // Placement ------------------------------------------------------------
  Block *parentBlock() const { return Parent; }
  void setParentBlock(Block *B) { Parent = B; }
  /// The operation owning the block this op lives in, or null at top level.
  Operation *parentOp() const;

  // Traits ---------------------------------------------------------------
  bool isPure() const { return opcodeIsPure(Code); }
  bool isTerminator() const { return opcodeIsTerminator(Code); }
  bool isReadOnly() const { return opcodeIsReadOnly(Code); }

  /// Walks this op and all nested ops pre-order. The callback may not
  /// mutate the structure.
  void walk(const std::function<void(Operation *)> &Fn);

  /// Replaces every use of \p From with \p To in this op and nested regions.
  void replaceUsesOfWith(Value *From, Value *To);

private:
  OpCode Code;
  SourceLoc Loc;
  std::vector<Value *> Operands;
  std::vector<std::unique_ptr<OpResult>> Results;
  std::vector<NamedAttribute> Attrs;
  std::vector<std::unique_ptr<Region>> Regions;
  Block *Parent = nullptr;
};

//===----------------------------------------------------------------------===//
// Block
//===----------------------------------------------------------------------===//

/// A straight-line list of operations with typed arguments. Blocks own
/// their operations.
class Block {
public:
  Block() = default;
  ~Block();
  Block(const Block &) = delete;
  Block &operator=(const Block &) = delete;

  using OpListT = std::list<Operation *>;

  Region *parentRegion() const { return Parent; }
  void setParentRegion(Region *R) { Parent = R; }
  /// The operation owning this block's region, or null.
  Operation *parentOp() const;

  // Arguments ------------------------------------------------------------
  BlockArgument *addArgument(Type Ty);
  unsigned numArguments() const { return Arguments.size(); }
  BlockArgument *argument(unsigned I) const {
    assert(I < Arguments.size() && "argument index out of range");
    return Arguments[I].get();
  }

  // Operations -----------------------------------------------------------
  OpListT &ops() { return Ops; }
  const OpListT &ops() const { return Ops; }
  bool empty() const { return Ops.empty(); }

  /// Appends \p Op, taking ownership.
  void push_back(Operation *Op);
  /// Inserts \p Op before \p Anchor (which must be in this block), taking
  /// ownership.
  void insertBefore(Operation *Anchor, Operation *Op);
  /// Removes \p Op from the list without deleting it; the caller takes
  /// ownership.
  void remove(Operation *Op);
  /// Removes and deletes \p Op. The op must have no remaining uses.
  void erase(Operation *Op);

  /// The trailing terminator, or null if the block is empty or unterminated.
  Operation *terminator() const;

private:
  Region *Parent = nullptr;
  std::vector<std::unique_ptr<BlockArgument>> Arguments;
  OpListT Ops;
};

//===----------------------------------------------------------------------===//
// Region
//===----------------------------------------------------------------------===//

/// A list of blocks owned by an operation. All regions in this IR hold
/// exactly one block, but the structure mirrors MLIR.
class Region {
public:
  explicit Region(Operation *Parent) : Parent(Parent) {}
  Region(const Region &) = delete;
  Region &operator=(const Region &) = delete;

  Operation *parentOp() const { return Parent; }

  Block &emplaceBlock();
  bool empty() const { return Blocks.empty(); }
  unsigned numBlocks() const { return Blocks.size(); }
  Block &front() {
    assert(!Blocks.empty() && "region has no blocks");
    return *Blocks.front();
  }
  const Block &front() const {
    assert(!Blocks.empty() && "region has no blocks");
    return *Blocks.front();
  }

private:
  Operation *Parent;
  std::vector<std::unique_ptr<Block>> Blocks;
};

//===----------------------------------------------------------------------===//
// Module
//===----------------------------------------------------------------------===//

/// Top-level container of func.func operations.
class Module {
public:
  Module() = default;

  /// Adds \p Func (must be a func.func op), taking ownership.
  Operation *addFunction(std::unique_ptr<Operation> Func);

  /// Finds a function by its "sym_name" attribute, or null.
  Operation *lookupFunction(std::string_view Name) const;

  const std::vector<std::unique_ptr<Operation>> &functions() const {
    return Functions;
  }

private:
  std::vector<std::unique_ptr<Operation>> Functions;
};

//===----------------------------------------------------------------------===//
// Free helpers
//===----------------------------------------------------------------------===//

/// The entry block of a func.func operation.
Block &funcBody(Operation *Func);

/// The body block of an scf.for operation.
Block &forBody(Operation *ForOp);

} // namespace ir
} // namespace limpet

#endif // LIMPET_IR_IR_H
