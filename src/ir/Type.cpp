//===- Type.cpp -----------------------------------------------------------===//

#include "ir/Type.h"

#include "support/Casting.h"

using namespace limpet;
using namespace limpet::ir;

static std::string scalarKindName(TypeKind Kind) {
  switch (Kind) {
  case TypeKind::F64:
    return "f64";
  case TypeKind::I1:
    return "i1";
  case TypeKind::I64:
    return "i64";
  case TypeKind::Vector:
  case TypeKind::MemRef:
    break;
  }
  limpet_unreachable("not a scalar kind");
}

std::string Type::str() const {
  if (!Storage)
    return "<null-type>";
  switch (Storage->Kind) {
  case TypeKind::F64:
  case TypeKind::I1:
  case TypeKind::I64:
    return scalarKindName(Storage->Kind);
  case TypeKind::Vector:
    return "vector<" + std::to_string(Storage->Width) + "x" +
           scalarKindName(Storage->ElemKind) + ">";
  case TypeKind::MemRef:
    return "memref<?xf64>";
  }
  limpet_unreachable("invalid type kind");
}
