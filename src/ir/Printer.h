//===- Printer.h - Textual IR output ----------------------------*- C++-*-===//
//
// Prints modules / functions / operations in a generic MLIR-like textual
// form, used by tests (golden outputs) and for debugging generated kernels.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_IR_PRINTER_H
#define LIMPET_IR_PRINTER_H

#include <string>

namespace limpet {
namespace ir {

class Module;
class Operation;

/// Prints a whole module.
std::string printModule(const Module &M);

/// Prints a single operation (recursively, including regions).
std::string printOp(const Operation *Op);

} // namespace ir
} // namespace limpet

#endif // LIMPET_IR_PRINTER_H
