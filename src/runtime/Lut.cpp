//===- Lut.cpp ------------------------------------------------------------===//

#include "runtime/Lut.h"

#include <cmath>
#include <limits>

using namespace limpet;
using namespace limpet::runtime;

LutTable::LutTable(double Lo, double Hi, double Step, int Cols)
    : Lo(Lo), Hi(Hi), Step(Step), InvStep(1.0 / Step), Cols(Cols) {
  assert(Step > 0 && Hi > Lo && "invalid table range");
  Rows = int(std::floor((Hi - Lo) / Step)) + 1;
  // interp() reads row Idx+1, so keep at least two rows.
  if (Rows < 2)
    Rows = 2;
  Data.assign(size_t(Rows) * Cols, 0.0);
}

bool LutTable::allFinite() const {
  size_t Bad = 0;
  for (double V : Data)
    Bad += !(std::fabs(V) <= std::numeric_limits<double>::max());
  return Bad == 0;
}
