//===- ThreadPool.cpp -----------------------------------------------------===//

#include "runtime/ThreadPool.h"

#include "support/Telemetry.h"

#include <cassert>
#include <cstdlib>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

using namespace limpet;
using namespace limpet::runtime;

namespace {

/// Whether LIMPET_PIN_THREADS=1 asked for worker pinning. openCARP runs
/// pin OpenMP workers so the NUMA first-touch placement of the AoSoA
/// state stays local; the analogue here is a round-robin CPU affinity for
/// the pool's workers. Off by default: pinning an oversubscribed pool
/// (32 workers on a small container) would serialize it.
bool pinningRequested() {
  const char *V = std::getenv("LIMPET_PIN_THREADS");
  return V && V[0] == '1' && V[1] == '\0';
}

/// Pins the calling thread to one CPU (round-robin by worker index).
/// Linux-only, best effort — no new dependencies, no failure path beyond
/// skipping the pin.
void pinWorkerThread(unsigned WorkerIndex) {
#if defined(__linux__)
  unsigned NumCpus = std::thread::hardware_concurrency();
  if (NumCpus == 0)
    return;
  cpu_set_t Set;
  CPU_ZERO(&Set);
  CPU_SET(WorkerIndex % NumCpus, &Set);
  if (pthread_setaffinity_np(pthread_self(), sizeof Set, &Set) == 0)
    telemetry::counter("pool.pinned_threads").add(1);
#else
  (void)WorkerIndex;
#endif
}

} // namespace

ThreadPool::ThreadPool(unsigned MaxThreads) {
  assert(MaxThreads >= 1 && "pool needs at least the calling thread");
  bool Pin = pinningRequested();
  for (unsigned I = 1; I < MaxThreads; ++I)
    Workers.emplace_back([this, I, Pin] {
      if (Pin)
        pinWorkerThread(I);
      workerMain(I);
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ShuttingDown = true;
  }
  WakeWorkers.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::staticChunk(int64_t Begin, int64_t End, unsigned Index,
                             unsigned NumThreads, int64_t &ChunkBegin,
                             int64_t &ChunkEnd) {
  int64_t Total = End - Begin;
  int64_t Base = Total / NumThreads;
  int64_t Extra = Total % NumThreads;
  // The first Extra chunks get one extra element (OpenMP static schedule).
  int64_t Lo = Begin + int64_t(Index) * Base +
               int64_t(Index < Extra ? Index : Extra);
  int64_t Hi = Lo + Base + (Index < Extra ? 1 : 0);
  ChunkBegin = Lo;
  ChunkEnd = Hi;
}

void ThreadPool::parallelFor(int64_t Begin, int64_t End, unsigned NumThreads,
                             const RangeFn &Fn) {
  if (End <= Begin)
    return;
  if (NumThreads > maxThreads())
    NumThreads = maxThreads();
  if (NumThreads <= 1) {
    Fn(Begin, End);
    return;
  }

  // One registry add per fork-join, looked up once; the workers
  // themselves only touch their thread-local telemetry shards.
  static telemetry::Counter &Dispatches =
      telemetry::counter("pool.parallel_for.calls");
  static telemetry::Counter &Chunks =
      telemetry::counter("pool.parallel_for.chunks");
  Dispatches.add(1);
  Chunks.add(NumThreads);

  // One fork-join at a time: the task slot is not reentrant, and limpetd
  // runs many Simulators against this pool concurrently. Held across the
  // barrier so a second caller never observes a half-finished dispatch.
  std::lock_guard<std::mutex> Submit(SubmitMutex);

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Current.Fn = &Fn;
    Current.Begin = Begin;
    Current.End = End;
    Current.NumThreads = NumThreads;
    Current.Generation = ++Generation;
    // Workers 1..NumThreads-1 participate; the caller runs chunk 0.
    Remaining = NumThreads - 1;
  }
  WakeWorkers.notify_all();

  int64_t ChunkBegin, ChunkEnd;
  staticChunk(Begin, End, 0, NumThreads, ChunkBegin, ChunkEnd);
  if (ChunkEnd > ChunkBegin)
    Fn(ChunkBegin, ChunkEnd);

  std::unique_lock<std::mutex> Lock(Mutex);
  Done.wait(Lock, [this] { return Remaining == 0; });
}

void ThreadPool::workerMain(unsigned WorkerIndex) {
  uint64_t SeenGeneration = 0;
  while (true) {
    Task Local;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      WakeWorkers.wait(Lock, [&] {
        return ShuttingDown ||
               (Current.Generation != SeenGeneration &&
                WorkerIndex < Current.NumThreads);
      });
      if (ShuttingDown)
        return;
      Local = Current;
      SeenGeneration = Local.Generation;
    }
    int64_t ChunkBegin, ChunkEnd;
    staticChunk(Local.Begin, Local.End, WorkerIndex, Local.NumThreads,
                ChunkBegin, ChunkEnd);
    if (ChunkEnd > ChunkBegin)
      (*Local.Fn)(ChunkBegin, ChunkEnd);
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      --Remaining;
    }
    Done.notify_one();
  }
}

ThreadPool &runtime::globalThreadPool() {
  static ThreadPool Pool(32);
  return Pool;
}
