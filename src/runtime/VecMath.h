//===- VecMath.h - Branch-free vectorizable math kernels --------*- C++-*-===//
//
// The reproduction's analogue of Intel's SVML (which the paper links for
// vectorized math): branch-free double-precision implementations of the
// transcendental functions ionic models call. Because they contain no
// data-dependent branches, the host compiler auto-vectorizes loops over
// them with -O3 -march=native, giving the vector engine SIMD math.
//
// Accuracy targets (validated by tests): relative error < 5e-13 for
// exp/log over the ranges ionic models exercise, < 1e-11 for the rest.
// The scalar baseline engine deliberately uses libm instead, matching
// openCARP's scalar code.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_RUNTIME_VECMATH_H
#define LIMPET_RUNTIME_VECMATH_H

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>

namespace limpet {
namespace vecmath {

namespace detail {

inline double bitsToDouble(uint64_t Bits) {
  double D;
  std::memcpy(&D, &Bits, sizeof(D));
  return D;
}

inline uint64_t doubleToBits(double D) {
  uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof(Bits));
  return Bits;
}

} // namespace detail

/// Branch-free exp(x). Clamps to [-708, 709] (the IEEE double range);
/// inputs outside produce 0 / +inf like libm up to rounding.
inline double fastExp(double X) {
  // Clamp just past the representable range so overflow yields +inf and
  // underflow yields 0, matching libm.
  const double Hi = 710.5;
  const double Lo = -746.5;
  double Xc = X < Lo ? Lo : (X > Hi ? Hi : X);

  // Range reduction: x = n*ln2 + r with |r| <= ln2/2.
  const double Log2E = 1.4426950408889634073599;
  const double Ln2Hi = 6.93147180369123816490e-01;
  const double Ln2Lo = 1.90821492927058770002e-10;
  double Nf = std::nearbyint(Xc * Log2E);
  double R = Xc - Nf * Ln2Hi;
  R -= Nf * Ln2Lo;

  // exp(r) via a degree-6 rational approximation (Cephes style):
  // exp(r) = 1 + 2r P(r^2) / (Q(r^2) - r P(r^2)).
  const double P0 = 9.99999999999999999910e-01;
  const double P1 = 3.02994407707441961300e-02;
  const double P2 = 1.26177193074810590878e-04;
  const double Q0 = 2.00000000000000000005e+00;
  const double Q1 = 2.27265548208155028766e-01;
  const double Q2 = 2.52448340349684104192e-03;
  const double Q3 = 3.00198505138664455042e-06;
  double R2 = R * R;
  double P = R * (P0 + R2 * (P1 + R2 * P2));
  double Q = Q0 + R2 * (Q1 + R2 * (Q2 + R2 * Q3));
  double ExpR = 1.0 + 2.0 * P / (Q - P);

  // Scale by 2^n through exponent arithmetic. n is within [-1075, 1025];
  // split into two halves so each factor stays normal.
  int64_t N = int64_t(Nf);
  int64_t N1 = N / 2;
  int64_t N2 = N - N1;
  double S1 = detail::bitsToDouble(uint64_t(N1 + 1023) << 52);
  double S2 = detail::bitsToDouble(uint64_t(N2 + 1023) << 52);
  return ExpR * S1 * S2;
}

/// Branch-free natural logarithm for X > 0. Returns -inf at 0 and NaN for
/// negative inputs (matching libm).
inline double fastLog(double X) {
  // Decompose X = 2^e * m with m in [sqrt(1/2), sqrt(2)). Subnormals are
  // pre-scaled by 2^54 (exact); huge inputs skip the pre-scaling so it
  // cannot overflow. Both choices are branchless selects.
  bool Huge = X > 1e280;
  double Xs = X * (Huge ? 1.0 : 1.8014398509481984e16); // 2^54
  uint64_t Bits = detail::doubleToBits(Xs);
  int64_t RawExp = int64_t(Bits >> 52) & 0x7FF;
  // With the mantissa re-biased into [0.5, 1): x = 2^(RawExp-1022[-54])*M.
  double Ef = double(RawExp) - (Huge ? 1022.0 : 1076.0);
  uint64_t MantBits = (Bits & 0x000FFFFFFFFFFFFFull) | (uint64_t(1022) << 52);
  double M = detail::bitsToDouble(MantBits); // in [0.5, 1)
  double MLow = M < 7.07106781186547524401e-01 ? 1.0 : 0.0; // sqrt(0.5)
  M = M * (1.0 + MLow);
  double E = Ef - MLow;

  // log(m) with m in [sqrt(1/2), sqrt(2)): z = m - 1, Cephes rational
  // approximation log(1+z) = z - z^2/2 + z^3 * P(z)/Q(z).
  double Z = M - 1.0;
  // Coefficients in ascending degree (P5 is the leading coefficient).
  const double P0 = 7.70838733755885391666e+00;
  const double P1 = 1.79368678507819816313e+01;
  const double P2 = 1.44989225341610930846e+01;
  const double P3 = 4.70579119878881725854e+00;
  const double P4 = 4.97494994976747001425e-01;
  const double P5 = 1.01875663804580931796e-04;
  const double Q0 = 2.31251620126765340583e+01;
  const double Q1 = 7.11544750618563894466e+01;
  const double Q2 = 8.29875266912776603211e+01;
  const double Q3 = 4.52279145837532221105e+01;
  const double Q4 = 1.12873587189167450590e+01;
  double Z2 = Z * Z;
  double Pz = P0 + Z * (P1 + Z * (P2 + Z * (P3 + Z * (P4 + Z * P5))));
  double Qz = Q0 + Z * (Q1 + Z * (Q2 + Z * (Q3 + Z * (Q4 + Z))));
  double Y = Z2 * Z * (Pz / Qz);
  Y -= 0.5 * Z2;

  const double Ln2Hi = 6.93147180369123816490e-01;
  const double Ln2Lo = 1.90821492927058770002e-10;
  double Result = E * Ln2Lo + Y + Z + E * Ln2Hi;

  // Domain handling: X <= 0 or NaN.
  Result = X > 0.0 ? Result
                   : (X == 0.0 ? -HUGE_VAL
                               : std::numeric_limits<double>::quiet_NaN());
  return Result;
}

inline double fastExpm1(double X) {
  // For tiny |x| use the series to avoid cancellation; blend branchlessly.
  double Series = X * (1.0 + X * (0.5 + X * (1.0 / 6.0 + X / 24.0)));
  double Full = fastExp(X) - 1.0;
  return (X > -1e-4 && X < 1e-4) ? Series : Full;
}

inline double fastLog10(double X) {
  return fastLog(X) * 4.34294481903251827651e-01; // 1/ln(10)
}

/// pow for positive bases (exp(y*log(x))); matches libm on the special
/// cases pow(x,0)=1 and pow(0,y>0)=0. Negative bases yield NaN (ionic
/// models only exponentiate positive quantities; tests enforce this).
inline double fastPow(double X, double Y) {
  double R = fastExp(Y * fastLog(X));
  R = Y == 0.0 ? 1.0 : R;
  R = (X == 0.0 && Y > 0.0) ? 0.0 : R;
  return R;
}

inline double fastTanh(double X) {
  // tanh(x) = 1 - 2/(exp(2x)+1); saturates beyond |x| > 20. Tiny inputs
  // use the odd series to avoid cancellation (branchless select).
  double X2 = X * X;
  double Series = X * (1.0 - X2 * (1.0 / 3.0 - X2 * (2.0 / 15.0)));
  double Xc = X > 20.0 ? 20.0 : (X < -20.0 ? -20.0 : X);
  double E = fastExp(2.0 * Xc);
  double Full = 1.0 - 2.0 / (E + 1.0);
  return (X > -1e-3 && X < 1e-3) ? Series : Full;
}

inline double fastSinh(double X) {
  double X2 = X * X;
  double Series = X * (1.0 + X2 * (1.0 / 6.0 + X2 / 120.0));
  double E = fastExp(X);
  double Full = 0.5 * (E - 1.0 / E);
  return (X > -1e-3 && X < 1e-3) ? Series : Full;
}

inline double fastCosh(double X) {
  double E = fastExp(X);
  return 0.5 * (E + 1.0 / E);
}

namespace detail {

/// sin(r) for |r| <= pi/4 (Cephes polynomial).
inline double sinPoly(double R) {
  const double S1 = -1.66666666666666307295e-01;
  const double S2 = 8.33333333332211858878e-03;
  const double S3 = -1.98412698295895385996e-04;
  const double S4 = 2.75573136213857245213e-06;
  const double S5 = -2.50507477628578072866e-08;
  const double S6 = 1.58962301576546568060e-10;
  double R2 = R * R;
  return R + R * R2 *
                 (S1 + R2 * (S2 + R2 * (S3 + R2 * (S4 + R2 * (S5 + R2 * S6)))));
}

/// cos(r) for |r| <= pi/4.
inline double cosPoly(double R) {
  const double C1 = 4.16666666666665929218e-02;
  const double C2 = -1.38888888888730564116e-03;
  const double C3 = 2.48015872894767294178e-05;
  const double C4 = -2.75573143513906633035e-07;
  const double C5 = 2.08757232129817482790e-09;
  const double C6 = -1.13596475577881948265e-11;
  double R2 = R * R;
  return 1.0 - 0.5 * R2 +
         R2 * R2 *
             (C1 + R2 * (C2 + R2 * (C3 + R2 * (C4 + R2 * (C5 + R2 * C6)))));
}

/// Shared range reduction: returns quadrant and remainder r in [-pi/4,
/// pi/4] for x (accurate for |x| < ~1e8, ample for model inputs).
inline void trigReduce(double X, int64_t &Quadrant, double &R) {
  const double TwoOverPi = 6.36619772367581343076e-01;
  const double PiOver2Hi = 1.57079632679489655800e+00;
  const double PiOver2Mid = 6.12323399573676603587e-17;
  const double PiOver2Lo = -1.4973849048591698329435e-33;
  double Nf = std::nearbyint(X * TwoOverPi);
  Quadrant = int64_t(Nf) & 3;
  R = X - Nf * PiOver2Hi;
  R -= Nf * PiOver2Mid;
  R -= Nf * PiOver2Lo;
}

} // namespace detail

inline double fastSin(double X) {
  int64_t Q;
  double R;
  detail::trigReduce(X, Q, R);
  double S = detail::sinPoly(R);
  double C = detail::cosPoly(R);
  // Quadrant selection, branch-free over small integer compares.
  double Out = Q == 0 ? S : (Q == 1 ? C : (Q == 2 ? -S : -C));
  return Out;
}

inline double fastCos(double X) {
  int64_t Q;
  double R;
  detail::trigReduce(X, Q, R);
  double S = detail::sinPoly(R);
  double C = detail::cosPoly(R);
  double Out = Q == 0 ? C : (Q == 1 ? -S : (Q == 2 ? -C : S));
  return Out;
}

inline double fastTan(double X) { return fastSin(X) / fastCos(X); }

inline double fastAtan(double X) {
  // Cephes-style three-way reduction onto |z| <= 0.66, written with
  // selects so the compiler can if-convert:
  //   |x| > tan(3pi/8): atan = pi/2 - atan(1/|x|)
  //   |x| > 0.66      : atan = pi/4 + atan((|x|-1)/(|x|+1))
  const double Tan3PiOver8 = 2.41421356237309504880;
  const double PiOver2 = 1.57079632679489661923;
  const double PiOver4 = 0.78539816339744830962;
  double Ax = std::fabs(X);
  bool Big = Ax > Tan3PiOver8;
  bool Mid = Ax > 0.66;
  double Z = Big ? -1.0 / Ax : (Mid ? (Ax - 1.0) / (Ax + 1.0) : Ax);
  double Offset = Big ? PiOver2 : (Mid ? PiOver4 : 0.0);

  // Rational minimax for atan(z), |z| <= 0.66 (coefficients ascending;
  // P0/Q0 are the constant terms).
  const double P0 = -6.485021904942025371773e+01;
  const double P1 = -1.228866684490136173410e+02;
  const double P2 = -7.500855792314704667340e+01;
  const double P3 = -1.615753718733365076637e+01;
  const double P4 = -8.750608600031904122785e-01;
  const double Q0 = 1.945506571482613964425e+02;
  const double Q1 = 4.853903996359136964868e+02;
  const double Q2 = 4.328810604912902668951e+02;
  const double Q3 = 1.650270098316988542046e+02;
  const double Q4 = 2.485846490142306297962e+01;
  double Z2 = Z * Z;
  double Num = P0 + Z2 * (P1 + Z2 * (P2 + Z2 * (P3 + Z2 * P4)));
  double Den = Q0 + Z2 * (Q1 + Z2 * (Q2 + Z2 * (Q3 + Z2 * (Q4 + Z2))));
  double At = Z + Z * Z2 * (Num / Den);
  double Out = Offset + At;
  return X < 0 ? -Out : Out;
}

inline double fastAsin(double X) {
  // asin(x) = atan(x / sqrt(1 - x^2)); endpoints saturate to +-pi/2.
  double D = 1.0 - X * X;
  D = D < 0.0 ? 0.0 : D;
  double S = std::sqrt(D);
  const double PiOver2 = 1.57079632679489661923;
  double R = S > 0.0 ? fastAtan(X / S) : (X > 0 ? PiOver2 : -PiOver2);
  return R;
}

inline double fastAcos(double X) {
  const double PiOver2 = 1.57079632679489661923;
  return PiOver2 - fastAsin(X);
}

/// One row of the explicit 3-point diffusion stencil, branch-free so the
/// host compiler vectorizes it: Out[i] = In[i] + K*(In[i-1] - 2 In[i] +
/// In[i+1]) for i in [Begin, End). Callers handle the boundary nodes;
/// In and Out must not alias (the tissue layer reads the barrier-published
/// snapshot and writes Vm in place).
inline void stencil3(double *__restrict__ Out, const double *__restrict__ In,
                     double K, int64_t Begin, int64_t End) {
  for (int64_t I = Begin; I < End; ++I)
    Out[I] = In[I] + K * (In[I - 1] - 2.0 * In[I] + In[I + 1]);
}

/// One interior row of the 5-point stencil: Row/Up/Dn are the snapshot
/// rows at y, y-1 and y+1 (already boundary-clamped by the caller), and
/// Out[x] = Row[x] + KX*(Row[x-1] - 2 Row[x] + Row[x+1])
///               + KY*(Up[x] - 2 Row[x] + Dn[x]) for x in [Begin, End).
inline void stencil5Row(double *__restrict__ Out,
                        const double *__restrict__ Row,
                        const double *__restrict__ Up,
                        const double *__restrict__ Dn, double KX, double KY,
                        int64_t Begin, int64_t End) {
  for (int64_t X = Begin; X < End; ++X)
    Out[X] = Row[X] + KX * (Row[X - 1] - 2.0 * Row[X] + Row[X + 1]) +
             KY * (Up[X] - 2.0 * Row[X] + Dn[X]);
}

/// Approximate per-call floating point operation counts used by the
/// roofline instrumentation (Sec. 4.5): polynomial kernel cost in flops.
struct FlopCost {
  static constexpr double Exp = 22;
  static constexpr double Expm1 = 24;
  static constexpr double Log = 30;
  static constexpr double Log10 = 31;
  static constexpr double Pow = 55;
  static constexpr double Sqrt = 1; // hardware instruction
  static constexpr double Trig = 28;
  static constexpr double Tanh = 27;
  static constexpr double SinhCosh = 26;
  static constexpr double ATan = 26;
  static constexpr double ASinCos = 30;
  /// Per-node cost of the diffusion stencils (roofline second regime).
  static constexpr double Stencil3 = 5;
  static constexpr double Stencil5 = 10;
};

} // namespace vecmath
} // namespace limpet

#endif // LIMPET_RUNTIME_VECMATH_H
