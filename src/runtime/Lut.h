//===- Lut.h - Lookup tables with linear interpolation ----------*- C++-*-===//
//
// The runtime half of openCARP's LUT acceleration (paper Sec. 3.4.2): a
// table holds one row per sample of the lookup variable and one column per
// extracted expression; at runtime a row coordinate (index + fraction) is
// computed once per cell and every column is linearly interpolated.
// Out-of-range inputs clamp to the table ends (openCARP behaviour).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_RUNTIME_LUT_H
#define LIMPET_RUNTIME_LUT_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace limpet {
namespace runtime {

/// One lookup table: Rows samples of [Lo, Hi] at spacing Step, Cols
/// precomputed expression columns, row-major storage.
class LutTable {
public:
  LutTable(double Lo, double Hi, double Step, int Cols);

  double lo() const { return Lo; }
  double hi() const { return Hi; }
  double step() const { return Step; }
  int rows() const { return Rows; }
  int cols() const { return Cols; }

  /// Mutable cell access for the table builder.
  double &at(int Row, int Col) {
    assert(Row >= 0 && Row < Rows && Col >= 0 && Col < Cols);
    return Data[size_t(Row) * Cols + Col];
  }

  /// Sample position of a row.
  double rowX(int Row) const { return Lo + Row * Step; }

  /// Computes the interpolation coordinate for \p X: a row index in
  /// [0, Rows-2] and a fraction in [0, 1]. Clamps outside the range.
  /// Branch-free: safe for SIMD lanes. A NaN input deterministically
  /// clamps to row 0 / frac 0: the select chain is ordered so NaN fails
  /// the first comparison and lands on 0.0 before the int64_t cast
  /// (casting NaN would be undefined behavior).
  void coord(double X, int64_t &Idx, double &Frac) const {
    double Pos = (X - Lo) * InvStep;
    double MaxPos = double(Rows - 1);
    Pos = Pos > 0.0 ? (Pos < MaxPos ? Pos : MaxPos) : 0.0;
    double Floor = double(int64_t(Pos)); // Pos >= 0, truncation == floor
    // The last sample interpolates within the final interval (frac -> 1).
    double MaxIdx = double(Rows - 2);
    Floor = Floor > MaxIdx ? MaxIdx : Floor;
    Idx = int64_t(Floor);
    Frac = Pos - Floor;
  }

  /// Linear interpolation of one column at a precomputed coordinate.
  double interp(int64_t Idx, double Frac, int Col) const {
    const double *Row = &Data[size_t(Idx) * Cols + Col];
    double A = Row[0];
    double B = Row[size_t(Cols)];
    return A + Frac * (B - A);
  }

  /// Four-point cubic (Lagrange) interpolation of one column: the spline
  /// variant the paper lists as future work. Uses rows Idx-1..Idx+2
  /// (clamped at the table ends); exact on cubic polynomials, O(step^4)
  /// error on smooth columns versus O(step^2) for linear interpolation.
  double interpCubic(int64_t Idx, double Frac, int Col) const {
    int64_t I0 = Idx > 0 ? Idx - 1 : 0;
    int64_t I3 = Idx + 2 < Rows ? Idx + 2 : Rows - 1;
    double P0 = Data[size_t(I0) * Cols + Col];
    double P1 = Data[size_t(Idx) * Cols + Col];
    double P2 = Data[size_t(Idx + 1) * Cols + Col];
    double P3 = Data[size_t(I3) * Cols + Col];
    double T = Frac;
    // Lagrange basis over sample positions -1, 0, 1, 2.
    double W0 = -T * (T - 1.0) * (T - 2.0) * (1.0 / 6.0);
    double W1 = (T + 1.0) * (T - 1.0) * (T - 2.0) * 0.5;
    double W2 = -(T + 1.0) * T * (T - 2.0) * 0.5;
    double W3 = (T + 1.0) * T * (T - 1.0) * (1.0 / 6.0);
    return W0 * P0 + W1 * P1 + W2 * P2 + W3 * P3;
  }

  /// Convenience: coordinate + single-column interpolation.
  double lookup(double X, int Col) const {
    int64_t Idx;
    double Frac;
    coord(X, Idx, Frac);
    return interp(Idx, Frac, Col);
  }

  /// Raw row-major storage (rows x cols); used by the vector engine's
  /// gather-vectorized interpolation loops.
  const double *data() const { return Data.data(); }

  /// True when every table entry is finite. A corrupted table (fault
  /// injection, bad parameter baking) fails this; re-integration cannot
  /// heal it, so the guard rails skip straight to the scalar-exact
  /// fallback when it fails.
  bool allFinite() const;

  // Branch-free coordinate parameters, exposed so the vector engine can
  // inline the computation into its lane loops.
  double coordLo() const { return Lo; }
  double coordInvStep() const { return InvStep; }
  double coordMaxPos() const { return double(Rows - 1); }
  double coordMaxIdx() const { return double(Rows - 2); }

private:
  double Lo, Hi, Step, InvStep;
  int Rows, Cols;
  std::vector<double> Data;
};

/// All tables of one compiled model.
struct LutTableSet {
  std::vector<LutTable> Tables;

  bool empty() const { return Tables.empty(); }

  /// True when every entry of every table is finite.
  bool allFinite() const {
    for (const LutTable &T : Tables)
      if (!T.allFinite())
        return false;
    return true;
  }
};

} // namespace runtime
} // namespace limpet

#endif // LIMPET_RUNTIME_LUT_H
