//===- ThreadPool.h - Static-schedule parallel for --------------*- C++-*-===//
//
// The reproduction's analogue of `#pragma omp parallel for
// schedule(static)` over the cell range (paper Listing 2): a persistent
// pool of workers executing contiguous chunks of [begin, end), with the
// calling thread participating. The per-invocation synchronization cost is
// intentionally real — the paper's small models are dominated by exactly
// this overhead at high thread counts (Sec. 4.2).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_RUNTIME_THREADPOOL_H
#define LIMPET_RUNTIME_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace limpet {
namespace runtime {

/// A chunk worker: processes cells [Begin, End).
using RangeFn = std::function<void(int64_t Begin, int64_t End)>;

/// Persistent worker pool with a fork-join parallelFor.
///
/// parallelFor may be called from any thread, including concurrently:
/// the pool holds a single task slot, so concurrent fork-joins serialize
/// on a submission mutex (each completes its barrier before the next
/// dispatches). Within one invocation the static chunk-to-worker mapping
/// is unchanged, so the Scheduler's persistent shard-to-thread assignment
/// still holds per caller. This is what lets limpetd multiplex many
/// concurrent Simulators over the one shared pool.
class ThreadPool {
public:
  /// Creates a pool able to run up to \p MaxThreads-way parallel loops
  /// (including the calling thread); spawns MaxThreads-1 workers.
  explicit ThreadPool(unsigned MaxThreads);
  ~ThreadPool();
  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned maxThreads() const { return unsigned(Workers.size()) + 1; }

  /// Splits [Begin, End) into \p NumThreads contiguous chunks (static
  /// schedule) and runs \p Fn on them in parallel. Blocks until all chunks
  /// complete. NumThreads is clamped to maxThreads(); NumThreads <= 1 runs
  /// inline with no synchronization.
  void parallelFor(int64_t Begin, int64_t End, unsigned NumThreads,
                   const RangeFn &Fn);

  /// The static chunk [ChunkBegin, ChunkEnd) of thread \p Index out of
  /// \p NumThreads over [Begin, End). Exposed for tests.
  static void staticChunk(int64_t Begin, int64_t End, unsigned Index,
                          unsigned NumThreads, int64_t &ChunkBegin,
                          int64_t &ChunkEnd);

private:
  struct Task {
    const RangeFn *Fn = nullptr;
    int64_t Begin = 0, End = 0;
    unsigned NumThreads = 0;
    uint64_t Generation = 0;
  };

  void workerMain(unsigned WorkerIndex);

  std::vector<std::thread> Workers;
  /// Serializes whole fork-joins from concurrent callers; the inner Mutex
  /// only guards the task slot within one dispatch.
  std::mutex SubmitMutex;
  std::mutex Mutex;
  std::condition_variable WakeWorkers;
  std::condition_variable Done;
  Task Current;
  uint64_t Generation = 0;
  unsigned Remaining = 0;
  bool ShuttingDown = false;
};

/// Process-wide pool sized for the bench sweeps (32 threads, matching the
/// paper's largest configuration). Created on first use.
ThreadPool &globalThreadPool();

} // namespace runtime
} // namespace limpet

#endif // LIMPET_RUNTIME_THREADPOOL_H
