//===- Simulator.cpp ------------------------------------------------------===//

#include "sim/Simulator.h"

#include "compiler/Serialize.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>

using namespace limpet;
using namespace limpet::sim;
using namespace limpet::exec;

namespace {
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

double quietNaN() { return std::numeric_limits<double>::quiet_NaN(); }

// Sanitize user-reachable knobs instead of corrupting memory or dividing
// by zero downstream. Runs before the scheduler/state-buffer members are
// constructed, so they see the sanitized values.
SimOptions sanitizeOptions(SimOptions Opts) {
  if (Opts.NumCells < 1)
    Opts.NumCells = 1;
  if (Opts.NumSteps < 0)
    Opts.NumSteps = 0;
  if (!std::isfinite(Opts.Dt) || Opts.Dt <= 0)
    Opts.Dt = 0.01;
  if (Opts.TraceCell < 0 || Opts.TraceCell >= Opts.NumCells)
    Opts.TraceCell = 0;
  if (Opts.Guard.ScanInterval < 1)
    Opts.Guard.ScanInterval = 1;
  if (Opts.Guard.MaxRetries < 0)
    Opts.Guard.MaxRetries = 0;
  if (Opts.Checkpoint.EveryN < 0)
    Opts.Checkpoint.EveryN = 0;
  if (Opts.Checkpoint.Retain < 1)
    Opts.Checkpoint.Retain = 1;
  if (Opts.ProgressEvery < 0)
    Opts.ProgressEvery = 0;
  return Opts;
}
} // namespace

Simulator::Simulator(const CompiledModel &ModelIn, const SimOptions &OptsIn)
    : Model(ModelIn), Opts(sanitizeOptions(OptsIn)),
      Sched(Opts.NumCells, Opts.NumThreads,
            std::max(Model.config().Width, 1u)),
      Buf(Model, Opts.NumCells, &Sched) {
  Params = Model.defaultParams();
  SimLuts = Model.buildLuts(Params.data());
  const easyml::ModelInfo &Info = Model.info();
  VmIdx = Info.externalIndex("Vm");
  IionIdx = Info.externalIndex("Iion");
  if (Opts.RecordTrace)
    Trace.reserve(size_t(Opts.NumSteps));

  // The one compute stage of a single-population run. All pointers are
  // stable for the simulator's lifetime (Buf restores snapshots in place,
  // setParam writes Params in place).
  KernelStage Stage;
  Stage.Model = &Model;
  Stage.State = Buf.state();
  Stage.Exts = Buf.extPointers();
  Stage.Params = Params.data();
  Stage.Luts = &SimLuts;
  Stages.push_back(std::move(Stage));
}

void Simulator::computeStage(double Dt) { Sched.step(Stages, Dt, T); }

void Simulator::voltageStage(double Dt) {
  if (!hasVoltageCoupling())
    return;
  // Stimulus window (repeating when StimPeriod > 0).
  double Phase = T;
  if (Opts.StimPeriod > 0)
    Phase = std::fmod(T, Opts.StimPeriod);
  double Stim = (Phase >= Opts.StimStart &&
                 Phase < Opts.StimStart + Opts.StimDuration)
                    ? Opts.StimStrength
                    : 0.0;
  Sched.voltageStep(Buf.ext(size_t(VmIdx)), Buf.ext(size_t(IionIdx)), Stim,
                    Dt);
}

void Simulator::advance(double Dt) {
  bool HasFallback = Report.CellsDegraded > 0;
  if (HasFallback)
    runScalarFallback(Dt, /*Gather=*/true);
  computeStage(Dt);
  if (HasFallback)
    runScalarFallback(Dt, /*Gather=*/false);
  voltageStage(Dt);
  T += Dt;
}

void Simulator::finishStep() {
  ++StepCount;
  if (Injector)
    Injector(*this);
  if (!Frozen.empty())
    restoreFrozenCells();
  if (Opts.RecordTrace)
    Trace.push_back(VmIdx >= 0
                        ? Buf.readExt(size_t(VmIdx), Opts.TraceCell)
                        : stateOf(Opts.TraceCell, 0));
}

void Simulator::step() {
  advance(Opts.Dt);
  finishStep();
}

void Simulator::runWindow(int64_t Steps, int Substeps) {
  double SubDt = Opts.Dt / Substeps;
  for (int64_t I = 0; I != Steps; ++I) {
    for (int S = 0; S != Substeps; ++S)
      advance(SubDt);
    if (Substeps > 1)
      Report.Substeps += Substeps - 1;
    finishStep();
  }
}

void Simulator::run() {
  telemetry::TraceSpan Span("sim.run:" + Model.info().Name, "sim");
  RunReport Before = Report;
  telemetry::RuntimeCounters RtBefore = telemetry::runtimeCounters();
  auto T0 = Clock::now();
  Interrupted = false;
  LastStop = StopReason::None;
  if (!Durable && !Opts.Checkpoint.Dir.empty()) {
    Durable = std::make_unique<CheckpointStore>(Opts.Checkpoint.Dir,
                                                Opts.Checkpoint.Retain);
    // Callers wanting the unwritable-directory error *before* stepping
    // (limpetc does) call prepare() themselves; here a failure just means
    // every later write counts a sim.checkpoint.errors tick.
    if (Status S = Durable->prepare(); !S)
      telemetry::counter("sim.checkpoint.errors").add(1);
  }
  LastDurableStep = StepCount;
  RunStartStep = StepCount;
  // A resumed run chases the same total step target the interrupted run
  // had, so it ends on the same step — the precondition for the resumed
  // final state being bit-identical to the uninterrupted one.
  int64_t Target = Resumed ? Opts.NumSteps : StepCount + Opts.NumSteps;
  RunTarget = Target;
  LastProgressStep = StepCount;
  if (!Opts.Guard.Enabled) {
    while (StepCount < Target) {
      step();
      if (durableTick())
        break;
    }
  } else {
    runGuarded(Target);
  }
  Report.StepsTaken += StepCount - RunStartStep;
  RunStartStep = StepCount;
  Report.RunSeconds += secondsSince(T0);
  foldReportIntoTelemetry(Before);
  // Modeled memory traffic of this run (roofline numerator): the delta of
  // the per-chunk byte counters the backends accumulated.
  telemetry::RuntimeCounters RtAfter = telemetry::runtimeCounters();
  if (RtAfter.BytesLoaded > RtBefore.BytesLoaded)
    telemetry::counter("sim.bytes.loaded")
        .add(RtAfter.BytesLoaded - RtBefore.BytesLoaded);
  if (RtAfter.BytesStored > RtBefore.BytesStored)
    telemetry::counter("sim.bytes.stored")
        .add(RtAfter.BytesStored - RtBefore.BytesStored);
  if (Opts.Stats)
    std::fputs(telemetry::summaryReport().c_str(), stdout);
}

/// Mirrors what this run() added to the RunReport into the global counter
/// registry, so guard-rail activity shows up next to the compile and
/// kernel counters in --stats output and bench NDJSON records.
void Simulator::foldReportIntoTelemetry(const RunReport &Before) {
  auto Add = [](const char *Path, int64_t Delta) {
    if (Delta > 0)
      telemetry::counter(Path).add(uint64_t(Delta));
  };
  Add("sim.steps", Report.StepsTaken - Before.StepsTaken);
  Add("sim.health.scans", Report.HealthScans - Before.HealthScans);
  Add("sim.health.fault_events", Report.FaultEvents - Before.FaultEvents);
  Add("sim.health.faulty_cells", Report.FaultyCells - Before.FaultyCells);
  Add("sim.recovery.retries", Report.Retries - Before.Retries);
  Add("sim.recovery.substeps", Report.Substeps - Before.Substeps);
  Add("sim.recovery.cells_degraded",
      Report.CellsDegraded - Before.CellsDegraded);
  Add("sim.recovery.cells_frozen", Report.CellsFrozen - Before.CellsFrozen);
  Add("sim.health.scan.ns",
      int64_t((Report.ScanSeconds - Before.ScanSeconds) * 1e9));
  Add("sim.recovery.ns",
      int64_t((Report.RecoverySeconds - Before.RecoverySeconds) * 1e9));
  Add("sim.run.ns", int64_t((Report.RunSeconds - Before.RunSeconds) * 1e9));
}

void Simulator::runGuarded(int64_t Target) {
  int64_t Interval = Opts.Guard.ScanInterval;
  takeCheckpoint();
  while (StepCount < Target) {
    int64_t Window = std::min(Interval, Target - StepCount);
    runWindow(Window, 1);
    if (timedScan())
      takeCheckpoint();
    else
      recoverWindow(Window);
    // Durable checkpoints land only on healthy scan boundaries (the
    // in-memory checkpoint was just refreshed either way), so a resumed
    // guarded run rebuilds the identical rollback point.
    if (durableTick())
      break;
  }
}

bool Simulator::durableTick() {
  // Stop sources in precedence order: the process-wide shutdown flag
  // (SIGINT/SIGTERM — the whole process is going away), then this run's
  // cancel token (explicit cancel or wall-clock deadline). All of them
  // stop at this boundary — after the scheduler's shard barrier — with
  // one final durable checkpoint, so every early stop is resumable.
  StopReason Stop = StopReason::None;
  if (shutdownRequested())
    Stop = StopReason::Shutdown;
  else if (Opts.Cancel)
    Stop = Opts.Cancel->stopRequested();
  if (Stop != StopReason::None) {
    if (Durable && StepCount > LastDurableStep)
      writeDurableCheckpoint();
    Interrupted = true;
    LastStop = Stop;
    return true;
  }
  if (Durable && Opts.Checkpoint.EveryN > 0 &&
      StepCount - LastDurableStep >= Opts.Checkpoint.EveryN)
    writeDurableCheckpoint();
  if (Opts.ProgressEvery > 0 && Opts.Progress &&
      StepCount - LastProgressStep >= Opts.ProgressEvery) {
    LastProgressStep = StepCount;
    Opts.Progress(StepCount, RunTarget);
  }
  return false;
}

void Simulator::writeDurableCheckpoint() {
  auto T0 = Clock::now();
  CheckpointData C = captureCheckpoint();
  std::string Bytes = serializeCheckpoint(C);
  Status S =
      compiler::writeFileAtomic(Bytes, Durable->pathForStep(C.StepCount));
  if (S) {
    Durable->prune();
    LastDurableStep = StepCount;
    telemetry::counter("sim.checkpoint.count").add(1);
    telemetry::counter("sim.checkpoint.bytes").add(Bytes.size());
  } else {
    // A full disk mid-run degrades durability, not the simulation: keep
    // stepping, count the failure, and let older checkpoints stand.
    telemetry::counter("sim.checkpoint.errors").add(1);
  }
  telemetry::counter("sim.checkpoint.ns")
      .add(uint64_t(secondsSince(T0) * 1e9));
}

bool Simulator::timedScan() {
  telemetry::TraceSpan Span("health-scan", "sim");
  auto T0 = Clock::now();
  bool Healthy = scanIsHealthy();
  ++Report.HealthScans;
  Report.ScanSeconds += secondsSince(T0);
  return Healthy;
}

void Simulator::recoverWindow(int64_t Window) {
  telemetry::TraceSpan Span("recovery", "sim");
  if (telemetry::TraceRecorder *R = telemetry::TraceRecorder::active())
    R->instant("fault-detected", "sim");
  auto T0 = Clock::now();
  double ScanSecondsAtEntry = Report.ScanSeconds;
  const GuardRailOptions &G = Opts.Guard;
  ++Report.FaultEvents;
  std::vector<int64_t> Bad = faultyCells();
  Report.FaultyCells += int64_t(Bad.size());

  // A corrupted lookup table cannot be healed by re-integration — every
  // retry would read the same poisoned rows — so skip the dt ladder and
  // go straight to the scalar-exact fallback.
  bool TablesBroken = !SimLuts.allFinite();

  // Rung 1: roll back and re-integrate the window with halved dt
  // (exponential backoff: retry k runs at dt / 2^k).
  bool Healed = false;
  for (int Retry = 1; !TablesBroken && !Healed && Retry <= G.MaxRetries;
       ++Retry) {
    rollback();
    ++Report.Retries;
    runWindow(Window, 1 << Retry);
    Healed = timedScan();
  }

  // Rung 2: degrade the faulty cells to the exact scalar kernel (no LUTs,
  // libm) and re-run the window at nominal dt, so healthy cells stay
  // bit-identical to an undisturbed run.
  if (!Healed && G.AllowScalarFallback && ensureRecoveryModel()) {
    rollback();
    for (int64_t C : Bad)
      degradeToScalar(C);
    runWindow(Window, 1);
    Healed = timedScan();
  }

  // Rung 3: freeze whatever still faults to its last healthy checkpoint
  // value. A couple of rounds cover injectors that shift targets between
  // re-runs.
  for (int Round = 0; !Healed && G.AllowFreeze && Round != 4; ++Round) {
    std::vector<int64_t> Still = faultyCells();
    rollback();
    for (int64_t C : Still)
      freezeCell(C);
    runWindow(Window, 1);
    Healed = timedScan();
  }

  if (!Healed) {
    // Last resort (freeze disabled or a nondeterministic fault): pin every
    // faulty cell to its checkpoint snapshot in place, which cleans the
    // population by construction.
    for (int64_t C : faultyCells())
      freezeCell(C);
    restoreFrozenCells();
  }
  takeCheckpoint();
  double ScanPortion = Report.ScanSeconds - ScanSecondsAtEntry;
  Report.RecoverySeconds += secondsSince(T0) - ScanPortion;
}

bool Simulator::scanIsHealthy() const {
  const HealthPolicy &P = Opts.Guard.Policy;
  if (!allWithinMagnitude(Buf.state(), Buf.stateSize(), P.StateMagLimit))
    return false;
  for (size_t J = 0; J != Buf.numExternals(); ++J) {
    const double *E = Buf.ext(J);
    bool Ok = int(J) == VmIdx
                  ? allWithinRange(E, size_t(Opts.NumCells), P.VmLo, P.VmHi)
                  : allWithinMagnitude(E, size_t(Opts.NumCells),
                                       P.StateMagLimit);
    if (!Ok)
      return false;
  }
  return true;
}

std::vector<int64_t> Simulator::faultyCells() const {
  const HealthPolicy &P = Opts.Guard.Policy;
  std::vector<int64_t> Bad;
  unsigned NumSv = Model.program().NumSv;
  for (int64_t C = 0; C != Opts.NumCells; ++C) {
    bool CellBad = false;
    for (unsigned Sv = 0; Sv != NumSv && !CellBad; ++Sv)
      CellBad = !(std::fabs(stateOf(C, Sv)) <= P.StateMagLimit);
    for (size_t J = 0; J != Buf.numExternals() && !CellBad; ++J) {
      double V = Buf.readExt(J, C);
      CellBad = int(J) == VmIdx ? !(V >= P.VmLo && V <= P.VmHi)
                                : !(std::fabs(V) <= P.StateMagLimit);
    }
    if (CellBad)
      Bad.push_back(C);
  }
  return Bad;
}

void Simulator::takeCheckpoint() {
  Buf.save(Ck.Snap);
  Ck.T = T;
  Ck.StepCount = StepCount;
  Ck.TraceLen = Trace.size();
  Ck.Valid = true;
}

void Simulator::rollback() {
  Buf.restore(Ck.Snap);
  T = Ck.T;
  StepCount = Ck.StepCount;
  Trace.resize(Ck.TraceLen);
}

bool Simulator::ensureRecoveryModel() {
  if (RecoveryModel)
    return true;
  if (RecoveryCompileFailed)
    return false;
  std::string Error;
  auto M = CompiledModel::compile(Model.info(), EngineConfig::recovery(),
                                  &Error);
  if (!M) {
    RecoveryCompileFailed = true;
    return false;
  }
  RecoveryModel = std::make_unique<CompiledModel>(std::move(*M));
  return true;
}

void Simulator::runScalarFallback(double Dt, bool Gather) {
  unsigned NumSv = Model.program().NumSv;
  size_t PerCell = NumSv + Buf.numExternals();
  if (Gather) {
    // Integrate each degraded cell with the exact scalar kernel from its
    // pre-step state; the results are scattered over whatever the fast
    // path produced for those lanes once it has run.
    FallbackCells.clear();
    for (int64_t C = 0; C != Opts.NumCells; ++C)
      if (cellMode(C) == CellMode::ScalarExact)
        FallbackCells.push_back(C);
    FallbackBuf.resize(FallbackCells.size() * PerCell);
    KernelArgs Args;
    Args.Params = Params.data();
    Args.Start = 0;
    Args.End = 1;
    Args.NumCells = 1;
    Args.Dt = Dt;
    Args.Exts.resize(Buf.numExternals());
    for (size_t I = 0; I != FallbackCells.size(); ++I) {
      int64_t C = FallbackCells[I];
      double *Sv = &FallbackBuf[I * PerCell];
      double *Ext = Sv + NumSv;
      Buf.gatherCell(C, Sv, Ext);
      for (size_t J = 0; J != Buf.numExternals(); ++J)
        Args.Exts[J] = &Ext[J];
      Args.State = Sv;
      Args.T = T;
      RecoveryModel->computeStep(Args);
    }
    return;
  }
  for (size_t I = 0; I != FallbackCells.size(); ++I) {
    const double *Sv = &FallbackBuf[I * PerCell];
    Buf.scatterCell(FallbackCells[I], Sv, Sv + NumSv);
  }
}

void Simulator::degradeToScalar(int64_t Cell) {
  if (Cell < 0 || Cell >= Opts.NumCells)
    return;
  if (Modes.empty())
    Modes.assign(size_t(Opts.NumCells), CellMode::Normal);
  if (Modes[size_t(Cell)] != CellMode::Normal)
    return;
  Modes[size_t(Cell)] = CellMode::ScalarExact;
  ++Report.CellsDegraded;
}

void Simulator::freezeCell(int64_t Cell) {
  if (Cell < 0 || Cell >= Opts.NumCells)
    return;
  if (Modes.empty())
    Modes.assign(size_t(Opts.NumCells), CellMode::Normal);
  CellMode &M = Modes[size_t(Cell)];
  if (M == CellMode::Frozen)
    return;
  if (M == CellMode::ScalarExact)
    --Report.CellsDegraded;
  M = CellMode::Frozen;
  ++Report.CellsFrozen;

  // Snapshot from the last healthy checkpoint when one exists; the
  // current values otherwise.
  FrozenSnapshot Snap;
  unsigned NumSv = Model.program().NumSv;
  Snap.Sv.resize(NumSv);
  for (unsigned S = 0; S != NumSv; ++S)
    Snap.Sv[S] = Ck.Valid ? Buf.snapshotState(Ck.Snap, Cell, S)
                          : Buf.readState(Cell, S);
  Snap.Ext.resize(Buf.numExternals());
  for (size_t J = 0; J != Buf.numExternals(); ++J)
    Snap.Ext[J] =
        Ck.Valid ? Ck.Snap.Exts[J][size_t(Cell)] : Buf.readExt(J, Cell);
  Frozen[Cell] = std::move(Snap);
}

void Simulator::restoreFrozenCells() {
  unsigned NumSv = Model.program().NumSv;
  for (const auto &[Cell, Snap] : Frozen) {
    for (unsigned S = 0; S != NumSv; ++S)
      Buf.writeState(Cell, S, Snap.Sv[S]);
    for (size_t J = 0; J != Buf.numExternals(); ++J)
      Buf.writeExt(J, Cell, Snap.Ext[J]);
  }
}

CellMode Simulator::cellMode(int64_t Cell) const {
  if (Modes.empty() || Cell < 0 || Cell >= Opts.NumCells)
    return CellMode::Normal;
  return Modes[size_t(Cell)];
}

double Simulator::stateOf(int64_t Cell, int64_t Sv) const {
  if (Cell < 0 || Cell >= Opts.NumCells || Sv < 0 ||
      Sv >= int64_t(Buf.numSv()))
    return quietNaN();
  return Buf.readState(Cell, Sv);
}

double Simulator::externalOf(int64_t Cell, size_t ExtIdx) const {
  if (Cell < 0 || Cell >= Opts.NumCells || ExtIdx >= Buf.numExternals())
    return quietNaN();
  return Buf.readExt(ExtIdx, Cell);
}

double Simulator::vm(int64_t Cell) const {
  return tryVm(Cell).valueOr(quietNaN());
}

Expected<double> Simulator::tryVm(int64_t Cell) const {
  if (VmIdx < 0)
    return Status::error("model '" + Model.info().Name +
                         "' has no Vm external");
  if (Cell < 0 || Cell >= Opts.NumCells)
    return Status::error("cell index " + std::to_string(Cell) +
                         " out of range [0, " +
                         std::to_string(Opts.NumCells) + ")");
  return Buf.readExt(size_t(VmIdx), Cell);
}

void Simulator::pokeState(int64_t Cell, int64_t Sv, double Value) {
  if (Cell < 0 || Cell >= Opts.NumCells || Sv < 0 ||
      Sv >= int64_t(Buf.numSv()))
    return;
  Buf.writeState(Cell, Sv, Value);
}

void Simulator::pokeExternal(size_t ExtIdx, int64_t Cell, double Value) {
  if (Cell < 0 || Cell >= Opts.NumCells || ExtIdx >= Buf.numExternals())
    return;
  Buf.writeExt(ExtIdx, Cell, Value);
}

void Simulator::setFaultInjector(std::function<void(Simulator &)> F) {
  Injector = std::move(F);
}

Status Simulator::setParam(std::string_view Name, double Value) {
  int Idx = Model.info().paramIndex(Name);
  if (Idx < 0)
    return Status::error("unknown parameter '" + std::string(Name) +
                         "' for model '" + Model.info().Name + "'");
  if (!std::isfinite(Value))
    return Status::error("non-finite value for parameter '" +
                         std::string(Name) + "'");
  Params[size_t(Idx)] = Value;
  SimLuts = Model.buildLuts(Params.data());
  return Status::success();
}

double Simulator::param(std::string_view Name) const {
  return tryParam(Name).valueOr(quietNaN());
}

Expected<double> Simulator::tryParam(std::string_view Name) const {
  int Idx = Model.info().paramIndex(Name);
  if (Idx < 0)
    return Status::error("unknown parameter '" + std::string(Name) +
                         "' for model '" + Model.info().Name + "'");
  return Params[size_t(Idx)];
}

double Simulator::stateChecksum() const { return Buf.checksum(); }

//===----------------------------------------------------------------------===//
// Durable checkpoint / resume
//===----------------------------------------------------------------------===//

CheckpointData Simulator::captureCheckpoint() const {
  CheckpointData C;
  C.ModelName = Model.info().Name;
  C.SourceHash = Opts.Checkpoint.SourceHash;
  C.Config = Model.config();

  C.NumCells = Opts.NumCells;
  C.NumSv = Buf.numSv();
  C.NumExts = uint32_t(Buf.numExternals());
  C.Layout = uint8_t(Buf.layout());
  C.BlockW = Buf.blockWidth();

  C.StepCount = StepCount;
  C.T = T;
  C.Dt = Opts.Dt;

  // Pad lanes included: a restore is a straight memcpy and bit-exact.
  C.State.assign(Buf.state(), Buf.state() + Buf.stateSize());
  C.Exts.resize(Buf.numExternals());
  for (size_t J = 0; J != Buf.numExternals(); ++J)
    C.Exts[J].assign(Buf.ext(J), Buf.ext(J) + Opts.NumCells);

  C.Params = Params;
  C.Trace = Trace;
  C.Report = Report;
  // The steps of the run in flight are only folded into the report when
  // run() returns; a checkpoint captured mid-run counts them itself.
  C.Report.StepsTaken += StepCount - RunStartStep;

  if (!Modes.empty()) {
    C.Modes.resize(Modes.size());
    for (size_t I = 0; I != Modes.size(); ++I)
      C.Modes[I] = uint8_t(Modes[I]);
  }
  // Sorted by cell so the serialized form is deterministic (the map is
  // unordered).
  std::vector<int64_t> FrozenCells;
  FrozenCells.reserve(Frozen.size());
  for (const auto &[Cell, Snap] : Frozen)
    FrozenCells.push_back(Cell);
  std::sort(FrozenCells.begin(), FrozenCells.end());
  for (int64_t Cell : FrozenCells) {
    const FrozenSnapshot &Snap = Frozen.at(Cell);
    CheckpointData::FrozenCell F;
    F.Cell = Cell;
    F.Sv = Snap.Sv;
    F.Ext = Snap.Ext;
    C.Frozen.push_back(std::move(F));
  }
  annotateCheckpoint(C);
  return C;
}

Status Simulator::resumeFrom(const CheckpointData &C) {
  if (C.ModelName != Model.info().Name)
    return Status::error("cannot resume: checkpoint is of model '" +
                         C.ModelName + "', this simulator runs '" +
                         Model.info().Name + "'");
  if (C.SourceHash != 0 && Opts.Checkpoint.SourceHash != 0 &&
      C.SourceHash != Opts.Checkpoint.SourceHash)
    return Status::error(
        "cannot resume: model source changed since the checkpoint of '" +
        C.ModelName + "' was written (source hash mismatch)");
  if (!(C.Config == Model.config()))
    return Status::error(
        "cannot resume: checkpoint was captured under engine '" +
        engineConfigName(C.Config) + "', this simulator runs '" +
        engineConfigName(Model.config()) + "'");
  if (C.NumCells != Opts.NumCells || C.NumSv != Buf.numSv() ||
      C.NumExts != Buf.numExternals() ||
      C.Layout != uint8_t(Buf.layout()) || C.BlockW != Buf.blockWidth())
    return Status::error("cannot resume: population shape mismatch "
                         "(cells/state-variables/layout differ)");
  if (C.State.size() != Buf.stateSize() ||
      C.Params.size() != Params.size())
    return Status::error("cannot resume: array sizes do not match the "
                         "compiled model");
  if (!C.Modes.empty() && int64_t(C.Modes.size()) != Opts.NumCells)
    return Status::error("cannot resume: degradation-mode array does not "
                         "match the population");
  if (Status S = validateResume(C); !S)
    return S;

  std::memcpy(Buf.state(), C.State.data(),
              C.State.size() * sizeof(double));
  for (size_t J = 0; J != Buf.numExternals(); ++J)
    std::memcpy(Buf.ext(J), C.Exts[J].data(),
                size_t(Opts.NumCells) * sizeof(double));

  Params = C.Params;
  SimLuts = Model.buildLuts(Params.data());
  T = C.T;
  StepCount = C.StepCount;
  RunStartStep = StepCount;
  Trace = C.Trace;
  Report = C.Report;

  Modes.clear();
  if (!C.Modes.empty()) {
    Modes.resize(C.Modes.size());
    for (size_t I = 0; I != C.Modes.size(); ++I)
      Modes[I] = CellMode(C.Modes[I]);
  }
  Frozen.clear();
  for (const CheckpointData::FrozenCell &F : C.Frozen)
    Frozen[F.Cell] = FrozenSnapshot{F.Sv, F.Ext};

  // The in-memory guard-rail checkpoint does not survive the process;
  // runGuarded retakes it from the restored population immediately.
  Ck.Valid = false;
  Resumed = true;
  Interrupted = false;
  applyResume(C);
  return Status::success();
}
