//===- Simulator.cpp ------------------------------------------------------===//

#include "sim/Simulator.h"

#include "runtime/ThreadPool.h"
#include "support/Casting.h"

#include <cmath>

using namespace limpet;
using namespace limpet::sim;
using namespace limpet::exec;

Simulator::Simulator(const CompiledModel &ModelIn, const SimOptions &Opts)
    : Model(ModelIn), Opts(Opts) {
  State.assign(Model.stateArraySize(Opts.NumCells), 0.0);
  Model.initializeState(State.data(), Opts.NumCells);

  const easyml::ModelInfo &Info = Model.info();
  std::vector<double> ExtInits = Model.externalInits();
  Exts.resize(Info.Externals.size());
  for (size_t J = 0; J != Info.Externals.size(); ++J)
    Exts[J].assign(size_t(Opts.NumCells), ExtInits[J]);

  Params = Model.defaultParams();
  SimLuts = Model.buildLuts(Params.data());
  VmIdx = Info.externalIndex("Vm");
  IionIdx = Info.externalIndex("Iion");
  if (Opts.RecordTrace)
    Trace.reserve(size_t(Opts.NumSteps));
}

void Simulator::computeStage() {
  // Chunk on vector-block boundaries so AoSoA chunks stay aligned.
  int64_t BlockW = std::max<unsigned>(Model.config().Width, 1);
  int64_t NumBlocks = (Opts.NumCells + BlockW - 1) / BlockW;

  auto RunChunk = [&](int64_t BlockBegin, int64_t BlockEnd) {
    KernelArgs Args;
    Args.State = State.data();
    for (std::vector<double> &Ext : Exts)
      Args.Exts.push_back(Ext.data());
    Args.Params = Params.data();
    Args.Start = BlockBegin * BlockW;
    Args.End = std::min(BlockEnd * BlockW, Opts.NumCells);
    Args.NumCells = Opts.NumCells;
    Args.Dt = Opts.Dt;
    Args.T = T;
    Args.Luts = &SimLuts;
    Model.computeStep(Args);
  };

  if (Opts.NumThreads <= 1) {
    RunChunk(0, NumBlocks);
    return;
  }
  runtime::globalThreadPool().parallelFor(0, NumBlocks, Opts.NumThreads,
                                          RunChunk);
}

void Simulator::voltageStage() {
  if (!hasVoltageCoupling())
    return;
  // Stimulus window (repeating when StimPeriod > 0).
  double Phase = T;
  if (Opts.StimPeriod > 0)
    Phase = std::fmod(T, Opts.StimPeriod);
  double Stim = (Phase >= Opts.StimStart &&
                 Phase < Opts.StimStart + Opts.StimDuration)
                    ? Opts.StimStrength
                    : 0.0;

  double *Vm = Exts[size_t(VmIdx)].data();
  const double *Iion = Exts[size_t(IionIdx)].data();
  for (int64_t Cell = 0; Cell != Opts.NumCells; ++Cell)
    Vm[Cell] += Opts.Dt * (Stim - Iion[Cell]);
}

void Simulator::step() {
  computeStage();
  voltageStage();
  T += Opts.Dt;
  ++StepCount;
  if (Opts.RecordTrace)
    Trace.push_back(VmIdx >= 0 ? Exts[size_t(VmIdx)][Opts.TraceCell]
                               : stateOf(Opts.TraceCell, 0));
}

void Simulator::run() {
  for (int64_t I = 0; I != Opts.NumSteps; ++I)
    step();
}

double Simulator::stateOf(int64_t Cell, int64_t Sv) const {
  return Model.readState(State.data(), Cell, Sv, Opts.NumCells);
}

double Simulator::externalOf(int64_t Cell, size_t ExtIdx) const {
  return Exts[ExtIdx][Cell];
}

double Simulator::vm(int64_t Cell) const {
  assert(VmIdx >= 0 && "model has no Vm external");
  return Exts[size_t(VmIdx)][Cell];
}

void Simulator::setParam(std::string_view Name, double Value) {
  int Idx = Model.info().paramIndex(Name);
  assert(Idx >= 0 && "unknown parameter");
  Params[size_t(Idx)] = Value;
  SimLuts = Model.buildLuts(Params.data());
}

double Simulator::param(std::string_view Name) const {
  int Idx = Model.info().paramIndex(Name);
  assert(Idx >= 0 && "unknown parameter");
  return Params[size_t(Idx)];
}

double Simulator::stateChecksum() const {
  double Sum = 0;
  for (int64_t Cell = 0; Cell != Opts.NumCells; ++Cell)
    for (unsigned Sv = 0; Sv != Model.program().NumSv; ++Sv)
      Sum += stateOf(Cell, Sv) * (1.0 + 1e-6 * double(Sv));
  for (const std::vector<double> &Ext : Exts)
    for (double V : Ext)
      Sum += V;
  return Sum;
}
