//===- Multimodel.cpp -----------------------------------------------------===//

#include "sim/Multimodel.h"

#include "support/Casting.h"

#include <cmath>

using namespace limpet;
using namespace limpet::sim;
using namespace limpet::exec;

MultimodelSimulator::MultimodelSimulator(const CompiledModel &Parent,
                                         const SimOptions &Opts)
    : Parent(Parent), Opts(Opts) {
  ParentState.assign(Parent.stateArraySize(Opts.NumCells), 0.0);
  Parent.initializeState(ParentState.data(), Opts.NumCells);
  std::vector<double> Inits = Parent.externalInits();
  SharedExt.resize(Inits.size());
  for (size_t J = 0; J != Inits.size(); ++J)
    SharedExt[J].assign(size_t(Opts.NumCells), Inits[J]);
  ParentParams = Parent.defaultParams();
  ParentLuts = Parent.buildLuts(ParentParams.data());
  VmIdx = Parent.info().externalIndex("Vm");
  IionIdx = Parent.info().externalIndex("Iion");
}

size_t MultimodelSimulator::addPlugin(const CompiledModel &Plugin,
                                      std::vector<ParentBinding> Bindings) {
  PluginInstance Inst;
  Inst.Model = &Plugin;
  Inst.State.assign(Plugin.stateArraySize(Opts.NumCells), 0.0);
  Plugin.initializeState(Inst.State.data(), Opts.NumCells);

  const easyml::ModelInfo &Info = Plugin.info();
  std::vector<double> Inits = Plugin.externalInits();
  Inst.SharedIndex.assign(Info.Externals.size(), -1);
  Inst.LocalExt.resize(Info.Externals.size());
  Inst.BoundParentSv.assign(Info.Externals.size(), -1);
  Inst.BoundWritable.assign(Info.Externals.size(), false);

  for (size_t J = 0; J != Info.Externals.size(); ++J) {
    const std::string &Name = Info.Externals[J].Name;
    // Parent-state binding takes precedence.
    const ParentBinding *Binding = nullptr;
    for (const ParentBinding &B : Bindings)
      if (B.PluginExternal == Name)
        Binding = &B;
    if (Binding) {
      int Sv = Parent.info().stateVarIndex(Binding->ParentStateVar);
      assert(Sv >= 0 && "binding references an unknown parent state var");
      Inst.BoundParentSv[J] = Sv;
      Inst.BoundWritable[J] = Binding->Writable;
      Inst.LocalExt[J].assign(size_t(Opts.NumCells), 0.0);
      continue;
    }
    // Same-named parent external: share the array.
    int Shared = Parent.info().externalIndex(Name);
    if (Shared >= 0) {
      Inst.SharedIndex[J] = Shared;
      continue;
    }
    // Fall through to the plugin's local storage.
    Inst.LocalExt[J].assign(size_t(Opts.NumCells), Inits[J]);
  }

  PluginParams.push_back(Plugin.defaultParams());
  PluginLuts.push_back(Plugin.buildLuts(PluginParams.back().data()));
  Plugins.push_back(std::move(Inst));
  return Plugins.size() - 1;
}

void MultimodelSimulator::step() {
  // 1. Parent compute stage.
  {
    KernelArgs Args;
    Args.State = ParentState.data();
    for (std::vector<double> &Ext : SharedExt)
      Args.Exts.push_back(Ext.data());
    Args.Params = ParentParams.data();
    Args.Start = 0;
    Args.End = Opts.NumCells;
    Args.NumCells = Opts.NumCells;
    Args.Dt = Opts.Dt;
    Args.T = T;
    Args.Luts = &ParentLuts;
    Parent.computeStep(Args);
  }

  // 2. Plugins: gather bound parent state, compute, scatter back.
  for (size_t P = 0; P != Plugins.size(); ++P) {
    PluginInstance &Inst = Plugins[P];
    const easyml::ModelInfo &Info = Inst.Model->info();

    for (size_t J = 0; J != Info.Externals.size(); ++J)
      if (Inst.BoundParentSv[J] >= 0)
        for (int64_t Cell = 0; Cell != Opts.NumCells; ++Cell)
          Inst.LocalExt[J][size_t(Cell)] = Parent.readState(
              ParentState.data(), Cell, Inst.BoundParentSv[J],
              Opts.NumCells);

    KernelArgs Args;
    Args.State = Inst.State.data();
    for (size_t J = 0; J != Info.Externals.size(); ++J)
      Args.Exts.push_back(Inst.SharedIndex[J] >= 0
                              ? SharedExt[size_t(Inst.SharedIndex[J])].data()
                              : Inst.LocalExt[J].data());
    Args.Params = PluginParams[P].data();
    Args.Start = 0;
    Args.End = Opts.NumCells;
    Args.NumCells = Opts.NumCells;
    Args.Dt = Opts.Dt;
    Args.T = T;
    Args.Luts = &PluginLuts[P];
    Inst.Model->computeStep(Args);

    // Offspring may modify the parent: scatter writable bindings back
    // into the parent's (layout-transformed) state.
    for (size_t J = 0; J != Info.Externals.size(); ++J)
      if (Inst.BoundParentSv[J] >= 0 && Inst.BoundWritable[J])
        for (int64_t Cell = 0; Cell != Opts.NumCells; ++Cell)
          ParentState[size_t(codegen::stateIndex(
              Parent.config().Layout, Cell, Inst.BoundParentSv[J],
              Parent.program().NumSv, Opts.NumCells,
              Parent.program().AoSoAW))] = Inst.LocalExt[J][size_t(Cell)];
  }

  // 3. Voltage update over the shared arrays.
  if (VmIdx >= 0 && IionIdx >= 0) {
    double Phase = Opts.StimPeriod > 0 ? std::fmod(T, Opts.StimPeriod) : T;
    double Stim = (Phase >= Opts.StimStart &&
                   Phase < Opts.StimStart + Opts.StimDuration)
                      ? Opts.StimStrength
                      : 0.0;
    double *Vm = SharedExt[size_t(VmIdx)].data();
    const double *Iion = SharedExt[size_t(IionIdx)].data();
    for (int64_t Cell = 0; Cell != Opts.NumCells; ++Cell)
      Vm[Cell] += Opts.Dt * (Stim - Iion[Cell]);
  }
  T += Opts.Dt;
}

void MultimodelSimulator::run() {
  for (int64_t I = 0; I != Opts.NumSteps; ++I)
    step();
}

double MultimodelSimulator::vm(int64_t Cell) const {
  assert(VmIdx >= 0 && "parent has no Vm external");
  return SharedExt[size_t(VmIdx)][size_t(Cell)];
}

double MultimodelSimulator::parentState(int64_t Cell, int64_t Sv) const {
  return Parent.readState(ParentState.data(), Cell, Sv, Opts.NumCells);
}

double MultimodelSimulator::pluginState(size_t PluginIdx, int64_t Cell,
                                        int64_t Sv) const {
  const PluginInstance &Inst = Plugins[PluginIdx];
  return Inst.Model->readState(Inst.State.data(), Cell, Sv, Opts.NumCells);
}

double MultimodelSimulator::sharedExternal(std::string_view Name,
                                           int64_t Cell) const {
  int Idx = Parent.info().externalIndex(Name);
  assert(Idx >= 0 && "unknown shared external");
  return SharedExt[size_t(Idx)][size_t(Cell)];
}
