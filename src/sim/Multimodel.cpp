//===- Multimodel.cpp -----------------------------------------------------===//

#include "sim/Multimodel.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace limpet;
using namespace limpet::sim;
using namespace limpet::exec;

MultimodelSimulator::MultimodelSimulator(const CompiledModel &Parent,
                                         const SimOptions &Opts)
    : Parent(Parent), Opts(Opts),
      Sched(Opts.NumCells, Opts.NumThreads,
            std::max(Parent.config().Width, 1u)),
      ParentBuf(Parent, Opts.NumCells, &Sched) {
  ParentParams = Parent.defaultParams();
  ParentLuts = Parent.buildLuts(ParentParams.data());
  VmIdx = Parent.info().externalIndex("Vm");
  IionIdx = Parent.info().externalIndex("Iion");
  rebuildStages();
}

size_t MultimodelSimulator::addPlugin(const CompiledModel &Plugin,
                                      std::vector<ParentBinding> Bindings) {
  // Shard boundaries must stay aligned for every model in the
  // composition; widths are powers of two, so the maximum covers all.
  unsigned MaxW = std::max(Parent.config().Width, 1u);
  for (const PluginInstance &P : Plugins)
    MaxW = std::max(MaxW, std::max(P.Model->config().Width, 1u));
  MaxW = std::max(MaxW, std::max(Plugin.config().Width, 1u));
  if (MaxW != Sched.plan().BlockWidth)
    Sched.rebuild(MaxW);

  PluginInstance Inst;
  Inst.Model = &Plugin;
  Inst.Buf = std::make_unique<StateBuffer>(Plugin, Opts.NumCells, &Sched);

  const easyml::ModelInfo &Info = Plugin.info();
  Inst.SharedIndex.assign(Info.Externals.size(), -1);
  Inst.BoundParentSv.assign(Info.Externals.size(), -1);
  Inst.BoundWritable.assign(Info.Externals.size(), false);

  for (size_t J = 0; J != Info.Externals.size(); ++J) {
    const std::string &Name = Info.Externals[J].Name;
    // Parent-state binding takes precedence.
    const ParentBinding *Binding = nullptr;
    for (const ParentBinding &B : Bindings)
      if (B.PluginExternal == Name)
        Binding = &B;
    if (Binding) {
      int Sv = Parent.info().stateVarIndex(Binding->ParentStateVar);
      assert(Sv >= 0 && "binding references an unknown parent state var");
      Inst.BoundParentSv[J] = Sv;
      Inst.BoundWritable[J] = Binding->Writable;
      continue;
    }
    // Same-named parent external: share the array.
    Inst.SharedIndex[J] = Parent.info().externalIndex(Name);
    // Else fall through to the plugin's local storage (Inst.Buf's own
    // external array, already initialized to the plugin's inits).
  }

  PluginParams.push_back(Plugin.defaultParams());
  PluginLuts.push_back(Plugin.buildLuts(PluginParams.back().data()));
  Plugins.push_back(std::move(Inst));
  rebuildStages();
  return Plugins.size() - 1;
}

void MultimodelSimulator::rebuildStages() {
  Stages.clear();

  KernelStage ParentStage;
  ParentStage.Model = &Parent;
  ParentStage.State = ParentBuf.state();
  ParentStage.Exts = ParentBuf.extPointers();
  ParentStage.Params = ParentParams.data();
  ParentStage.Luts = &ParentLuts;
  Stages.push_back(std::move(ParentStage));

  for (size_t P = 0; P != Plugins.size(); ++P) {
    PluginInstance &Inst = Plugins[P];
    KernelStage Stage;
    Stage.Model = Inst.Model;
    Stage.State = Inst.Buf->state();
    bool AnyBound = false, AnyWritable = false;
    for (size_t J = 0; J != Inst.SharedIndex.size(); ++J) {
      Stage.Exts.push_back(Inst.SharedIndex[J] >= 0
                               ? ParentBuf.ext(size_t(Inst.SharedIndex[J]))
                               : Inst.Buf->ext(J));
      AnyBound |= Inst.BoundParentSv[J] >= 0;
      AnyWritable |= Inst.BoundParentSv[J] >= 0 && Inst.BoundWritable[J];
    }
    Stage.Params = PluginParams[P].data();
    Stage.Luts = &PluginLuts[P];
    // The hooks capture the plugin index, not the instance: Plugins may
    // reallocate on a later addPlugin. Each hook only touches its shard's
    // cell range, so shards stay independent under threading.
    if (AnyBound)
      Stage.Before = [this, P](int64_t Begin, int64_t End) {
        PluginInstance &I = Plugins[P];
        for (size_t J = 0; J != I.BoundParentSv.size(); ++J) {
          if (I.BoundParentSv[J] < 0)
            continue;
          double *Dst = I.Buf->ext(J);
          for (int64_t Cell = Begin; Cell != End; ++Cell)
            Dst[Cell] = ParentBuf.readState(Cell, I.BoundParentSv[J]);
        }
      };
    // Offspring may modify the parent: scatter writable bindings back
    // into the parent's (layout-transformed) state.
    if (AnyWritable)
      Stage.After = [this, P](int64_t Begin, int64_t End) {
        PluginInstance &I = Plugins[P];
        for (size_t J = 0; J != I.BoundParentSv.size(); ++J) {
          if (I.BoundParentSv[J] < 0 || !I.BoundWritable[J])
            continue;
          const double *Src = I.Buf->ext(J);
          for (int64_t Cell = Begin; Cell != End; ++Cell)
            ParentBuf.writeState(Cell, I.BoundParentSv[J], Src[Cell]);
        }
      };
    Stages.push_back(std::move(Stage));
  }
}

void MultimodelSimulator::step() {
  // Parent compute, then every plugin (gather hook, kernel, scatter
  // hook), per shard through the one stepping loop.
  Sched.step(Stages, Opts.Dt, T);

  // Voltage update over the shared arrays.
  if (VmIdx >= 0 && IionIdx >= 0) {
    double Phase = Opts.StimPeriod > 0 ? std::fmod(T, Opts.StimPeriod) : T;
    double Stim = (Phase >= Opts.StimStart &&
                   Phase < Opts.StimStart + Opts.StimDuration)
                      ? Opts.StimStrength
                      : 0.0;
    Sched.voltageStep(ParentBuf.ext(size_t(VmIdx)),
                      ParentBuf.ext(size_t(IionIdx)), Stim, Opts.Dt);
  }
  T += Opts.Dt;
}

void MultimodelSimulator::run() {
  for (int64_t I = 0; I != Opts.NumSteps; ++I)
    step();
}

double MultimodelSimulator::vm(int64_t Cell) const {
  assert(VmIdx >= 0 && "parent has no Vm external");
  return ParentBuf.readExt(size_t(VmIdx), Cell);
}

double MultimodelSimulator::parentState(int64_t Cell, int64_t Sv) const {
  return ParentBuf.readState(Cell, Sv);
}

double MultimodelSimulator::pluginState(size_t PluginIdx, int64_t Cell,
                                        int64_t Sv) const {
  return Plugins[PluginIdx].Buf->readState(Cell, Sv);
}

double MultimodelSimulator::sharedExternal(std::string_view Name,
                                           int64_t Cell) const {
  int Idx = Parent.info().externalIndex(Name);
  assert(Idx >= 0 && "unknown shared external");
  return ParentBuf.readExt(size_t(Idx), Cell);
}
