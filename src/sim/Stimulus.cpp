//===- Stimulus.cpp -------------------------------------------------------===//

#include "sim/Stimulus.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

using namespace limpet;
using namespace limpet::sim;

bool StimulusProtocol::activeAt(const StimEvent &E, double T) {
  if (!(T >= E.Start) || !(E.Duration > 0))
    return false;
  double Off = T - E.Start;
  if (E.Period > 0) {
    double K = std::floor(Off / E.Period);
    if (E.Count > 0 && K >= double(E.Count))
      return false;
    Off -= K * E.Period;
  }
  return Off < E.Duration;
}

namespace {

/// Resolves an inclusive region bound (-1 = grid edge) and clips it.
void resolveRegion(const StimRegion &R, const TissueGrid &G, int64_t &X0,
                   int64_t &X1, int64_t &Y0, int64_t &Y1) {
  X0 = std::clamp<int64_t>(R.X0 < 0 ? 0 : R.X0, 0, G.NX - 1);
  X1 = std::clamp<int64_t>(R.X1 < 0 ? G.NX - 1 : R.X1, 0, G.NX - 1);
  Y0 = std::clamp<int64_t>(R.Y0 < 0 ? 0 : R.Y0, 0, G.NY - 1);
  Y1 = std::clamp<int64_t>(R.Y1 < 0 ? G.NY - 1 : R.Y1, 0, G.NY - 1);
}

} // namespace

double StimulusProtocol::currentAt(double T, int64_t X, int64_t Y,
                                   const TissueGrid &G) const {
  double Sum = 0;
  for (const StimEvent &E : Events) {
    if (!activeAt(E, T))
      continue;
    int64_t X0, X1, Y0, Y1;
    resolveRegion(E.Region, G, X0, X1, Y0, Y1);
    if (X >= X0 && X <= X1 && Y >= Y0 && Y <= Y1)
      Sum += E.Strength;
  }
  return Sum;
}

void StimulusProtocol::collectActive(double T, const TissueGrid &G,
                                     std::vector<ActiveStim> &Out) const {
  Out.clear();
  for (const StimEvent &E : Events) {
    if (!activeAt(E, T))
      continue;
    ActiveStim A;
    resolveRegion(E.Region, G, A.X0, A.X1, A.Y0, A.Y1);
    A.Strength = E.Strength;
    Out.push_back(A);
  }
}

StimulusProtocol StimulusProtocol::s1s2(double S1Period, int64_t S1Count,
                                        double S2Interval, double Strength,
                                        double Duration,
                                        int64_t EdgeWidth) {
  StimulusProtocol P;
  StimEvent S1;
  S1.Region = {0, std::max<int64_t>(EdgeWidth, 1) - 1, 0, -1};
  S1.Start = 1.0;
  S1.Duration = Duration;
  S1.Strength = Strength;
  S1.Period = S1Period;
  S1.Count = std::max<int64_t>(S1Count, 1);
  P.Events.push_back(S1);

  StimEvent S2 = S1;
  S2.Start = S1.Start + double(S1.Count - 1) * S1Period + S2Interval;
  S2.Period = 0;
  S2.Count = 1;
  P.Events.push_back(S2);
  return P;
}

StimulusProtocol StimulusProtocol::crossField(const TissueGrid &G,
                                              double S1Strength,
                                              double S1Duration,
                                              double S2Start,
                                              double S2Strength,
                                              double S2Duration) {
  StimulusProtocol P;
  StimEvent S1;
  S1.Region = {0, std::max<int64_t>(G.NX / 16, 2), 0, -1};
  S1.Start = 1.0;
  S1.Duration = S1Duration;
  S1.Strength = S1Strength;
  P.Events.push_back(S1);

  // The crossed field: the lower half of the sheet, fired while the S1
  // wavefront's tail crosses mid-tissue.
  StimEvent S2;
  S2.Region = {0, -1, 0, std::max<int64_t>(G.NY / 2 - 1, 0)};
  S2.Start = S2Start;
  S2.Duration = S2Duration;
  S2.Strength = S2Strength;
  P.Events.push_back(S2);
  return P;
}

namespace {

/// Parses "key=val,key=val" into \p KV; keys must already be present in
/// \p KV (the defaults table), so typos are recoverable errors.
Status parseKeyVals(const std::string &Clause, const std::string &Body,
                    std::map<std::string, double> &KV) {
  size_t Pos = 0;
  while (Pos < Body.size()) {
    size_t Comma = Body.find(',', Pos);
    std::string Item = Body.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Body.size() : Comma + 1;
    if (Item.empty())
      continue;
    size_t Eq = Item.find('=');
    if (Eq == std::string::npos)
      return Status::error("stimulus clause '" + Clause +
                           "': expected key=value, got '" + Item + "'");
    std::string Key = Item.substr(0, Eq);
    auto It = KV.find(Key);
    if (It == KV.end())
      return Status::error("stimulus clause '" + Clause +
                           "': unknown key '" + Key + "'");
    char *End = nullptr;
    std::string Val = Item.substr(Eq + 1);
    double V = std::strtod(Val.c_str(), &End);
    if (Val.empty() || !End || *End != '\0' || !std::isfinite(V))
      return Status::error("stimulus clause '" + Clause + "': key '" + Key +
                           "' has non-numeric value '" + Val + "'");
    It->second = V;
  }
  return Status::success();
}

std::string formatDouble(double V) {
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

} // namespace

Expected<StimulusProtocol> StimulusProtocol::parse(const std::string &Spec,
                                                   const TissueGrid &G) {
  StimulusProtocol P;
  size_t Pos = 0;
  while (Pos <= Spec.size()) {
    size_t Semi = Spec.find(';', Pos);
    std::string Clause = Spec.substr(
        Pos, Semi == std::string::npos ? std::string::npos : Semi - Pos);
    Pos = Semi == std::string::npos ? Spec.size() + 1 : Semi + 1;
    if (Clause.empty())
      continue;
    size_t Colon = Clause.find(':');
    std::string Name = Clause.substr(0, Colon);
    std::string Body =
        Colon == std::string::npos ? "" : Clause.substr(Colon + 1);

    if (Name == "none")
      continue;
    if (Name == "s1s2") {
      std::map<std::string, double> KV = {
          {"period", 300}, {"count", 8}, {"s2", 260},   {"amp", 40},
          {"dur", 2},      {"width", 5}, {"start", 1},
      };
      if (Status S = parseKeyVals(Clause, Body, KV); !S)
        return S;
      StimulusProtocol Q =
          s1s2(KV["period"], int64_t(KV["count"]), KV["s2"], KV["amp"],
               KV["dur"], int64_t(KV["width"]));
      // The factory anchors the train at t=1; shift it to `start`.
      for (StimEvent &E : Q.Events) {
        E.Start += KV["start"] - 1.0;
        P.Events.push_back(E);
      }
    } else if (Name == "cross") {
      std::map<std::string, double> KV = {
          {"s1amp", 40}, {"s1dur", 2},  {"s1start", 1},
          {"s2amp", 40}, {"s2dur", 3},  {"s2start", 165},
      };
      if (Status S = parseKeyVals(Clause, Body, KV); !S)
        return S;
      StimulusProtocol Q = crossField(G, KV["s1amp"], KV["s1dur"],
                                      KV["s2start"], KV["s2amp"],
                                      KV["s2dur"]);
      Q.Events[0].Start = KV["s1start"];
      P.Events.insert(P.Events.end(), Q.Events.begin(), Q.Events.end());
    } else if (Name == "region") {
      std::map<std::string, double> KV = {
          {"x0", 0},    {"x1", -1},  {"y0", 0},      {"y1", -1},
          {"start", 1}, {"dur", 2},  {"amp", 30},    {"period", 0},
          {"count", 1},
      };
      if (Status S = parseKeyVals(Clause, Body, KV); !S)
        return S;
      StimEvent E;
      E.Region = {int64_t(KV["x0"]), int64_t(KV["x1"]), int64_t(KV["y0"]),
                  int64_t(KV["y1"])};
      E.Start = KV["start"];
      E.Duration = KV["dur"];
      E.Strength = KV["amp"];
      E.Period = KV["period"];
      E.Count = int64_t(KV["count"]);
      P.Events.push_back(E);
    } else {
      return Status::error("unknown stimulus protocol '" + Name +
                           "' (expected s1s2, cross, region or none)");
    }
  }
  return P;
}

std::string StimulusProtocol::str() const {
  if (Events.empty())
    return "none";
  std::string Out;
  for (const StimEvent &E : Events) {
    if (!Out.empty())
      Out += ';';
    Out += "region:x0=" + std::to_string(E.Region.X0) +
           ",x1=" + std::to_string(E.Region.X1) +
           ",y0=" + std::to_string(E.Region.Y0) +
           ",y1=" + std::to_string(E.Region.Y1) +
           ",start=" + formatDouble(E.Start) +
           ",dur=" + formatDouble(E.Duration) +
           ",amp=" + formatDouble(E.Strength) +
           ",period=" + formatDouble(E.Period) +
           ",count=" + std::to_string(E.Count);
  }
  return Out;
}
