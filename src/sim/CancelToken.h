//===- CancelToken.h - Cooperative per-run cancellation ---------*- C++-*-===//
//
// A cancel token is the per-job analogue of the process-wide shutdown
// flag: the owner (limpetd's job table, or limpetc's --timeout guard)
// arms it, and the Simulator polls it at the same step/window boundaries
// where it polls shutdownRequested() — after the scheduler's shard
// barrier, so a stop never lands mid-step and the final durable
// checkpoint is always resumable bit-identically.
//
// Two trigger sources, both cooperative:
//  * cancel(): an explicit request (the daemon's `cancel` verb);
//  * a wall-clock deadline: armed once, checked against the steady clock
//    on each poll (one clock read per step boundary, nanoseconds).
//
// The token is write-once-ish and lock-free: atomics only, safe to arm
// from any thread while the simulation thread polls it.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_CANCELTOKEN_H
#define LIMPET_SIM_CANCELTOKEN_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string_view>

namespace limpet {
namespace sim {

/// Why a run() returned before reaching its step target. Completed means
/// it was never interrupted at all.
enum class StopReason : uint8_t {
  None = 0,        ///< ran to the step target
  Shutdown,        ///< process-wide shutdown flag (SIGINT/SIGTERM)
  Cancelled,       ///< explicit CancelToken::cancel()
  DeadlineExpired, ///< CancelToken wall-clock deadline passed
};

std::string_view stopReasonName(StopReason R);

class CancelToken {
public:
  using Clock = std::chrono::steady_clock;

  /// Requests a cooperative stop; the simulation halts at its next
  /// step/window boundary with a final durable checkpoint.
  void cancel() { Cancelled.store(true, std::memory_order_release); }

  /// Arms a wall-clock deadline \p Seconds from now. Non-positive values
  /// expire immediately; call disarmDeadline to remove a deadline.
  void setDeadlineAfter(double Seconds) {
    auto Ns = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(Seconds));
    DeadlineNs.store((Clock::now() + Ns).time_since_epoch().count(),
                     std::memory_order_release);
  }

  void disarmDeadline() { DeadlineNs.store(0, std::memory_order_release); }

  bool cancelled() const {
    return Cancelled.load(std::memory_order_acquire);
  }

  /// The poll the Simulator runs at step boundaries: explicit cancel
  /// wins over deadline expiry, None when neither fired.
  StopReason stopRequested() const {
    if (cancelled())
      return StopReason::Cancelled;
    int64_t D = DeadlineNs.load(std::memory_order_acquire);
    if (D != 0 && Clock::now().time_since_epoch().count() >= D)
      return StopReason::DeadlineExpired;
    return StopReason::None;
  }

private:
  std::atomic<bool> Cancelled{false};
  /// Steady-clock deadline in time_since_epoch ticks; 0 = no deadline.
  std::atomic<int64_t> DeadlineNs{0};
};

inline std::string_view stopReasonName(StopReason R) {
  switch (R) {
  case StopReason::None:
    return "none";
  case StopReason::Shutdown:
    return "shutdown";
  case StopReason::Cancelled:
    return "cancelled";
  case StopReason::DeadlineExpired:
    return "deadline-expired";
  }
  return "unknown";
}

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_CANCELTOKEN_H
