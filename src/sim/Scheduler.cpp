//===- Scheduler.cpp ------------------------------------------------------===//

#include "sim/Scheduler.h"

#include "runtime/ThreadPool.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace limpet;
using namespace limpet::sim;

ShardPlan ShardPlan::build(int64_t NumCells, unsigned NumThreads,
                           unsigned BlockWidth) {
  ShardPlan P;
  P.BlockWidth = std::max(BlockWidth, 1u);
  NumThreads = std::max(NumThreads, 1u);
  if (NumCells <= 0)
    return P;
  int64_t BW = int64_t(P.BlockWidth);
  int64_t NumBlocks = (NumCells + BW - 1) / BW;
  for (unsigned I = 0; I != NumThreads; ++I) {
    int64_t BlockBegin, BlockEnd;
    runtime::ThreadPool::staticChunk(0, NumBlocks, I, NumThreads, BlockBegin,
                                     BlockEnd);
    if (BlockBegin >= BlockEnd)
      continue;
    P.Shards.push_back(
        {BlockBegin * BW, std::min(BlockEnd * BW, NumCells)});
  }
  return P;
}

Scheduler::Scheduler(int64_t NumCells, unsigned NumThreads,
                     unsigned BlockWidth)
    : NumCells(std::max<int64_t>(NumCells, 0)),
      NumThreads(std::max(NumThreads, 1u)),
      Plan(ShardPlan::build(this->NumCells, this->NumThreads, BlockWidth)) {}

void Scheduler::rebuild(unsigned BlockWidth) {
  Plan = ShardPlan::build(NumCells, NumThreads, BlockWidth);
}

void Scheduler::forEachShard(
    const std::function<void(unsigned, int64_t, int64_t)> &Fn) const {
  unsigned N = numShards();
  if (N == 0)
    return;
  if (N == 1 || NumThreads <= 1) {
    for (unsigned S = 0; S != N; ++S)
      Fn(S, Plan.Shards[S].Begin, Plan.Shards[S].End);
    return;
  }
  // One loop iteration per shard, as many threads as shards: the pool's
  // static schedule then hands shard i to pool slot i every invocation,
  // which is what keeps the shard-to-thread (and so page-to-node)
  // mapping stable across steps.
  runtime::globalThreadPool().parallelFor(
      0, int64_t(N), N, [&](int64_t Begin, int64_t End) {
        for (int64_t S = Begin; S != End; ++S)
          Fn(unsigned(S), Plan.Shards[size_t(S)].Begin,
             Plan.Shards[size_t(S)].End);
      });
}

void Scheduler::step(const std::vector<KernelStage> &Stages, double Dt,
                     double T) const {
  // Counter addresses are process-stable; look it up once.
  static telemetry::Counter &StepCounter =
      telemetry::counter("sim.sched.steps");
  StepCounter.add(1);
  // A classic single-population step is a one-stage plan; route it
  // through the same stage executor the operator-split pipeline uses.
  PipelineStage Stage;
  Stage.Kernels = &Stages;
  runStage(Stage, Dt, T);
}

void Scheduler::runStage(const PipelineStage &Stage, double Dt,
                         double T) const {
  static telemetry::Counter &StageCounter =
      telemetry::counter("sim.sched.stages");
  StageCounter.add(1);
  forEachShard([&](unsigned Shard, int64_t Begin, int64_t End) {
    if (Stage.Kernels)
      for (const KernelStage &K : *Stage.Kernels) {
        assert(K.Model && "kernel stage without a model");
        if (K.Before)
          K.Before(Begin, End);
        exec::KernelArgs Args;
        Args.State = K.State;
        Args.Exts = K.Exts;
        Args.Params = K.Params;
        Args.Start = Begin;
        Args.End = End;
        Args.NumCells = NumCells;
        Args.Dt = Dt;
        Args.T = T;
        Args.Luts = K.Luts;
        K.Model->computeStep(Args);
        if (K.After)
          K.After(Begin, End);
      }
    if (Stage.Run)
      Stage.Run(Shard, Begin, End);
  });
}

void Scheduler::runPlan(const StagePlan &Plan, double Dt, double T) const {
  static telemetry::Counter &StepCounter =
      telemetry::counter("sim.sched.steps");
  StepCounter.add(1);
  for (const PipelineStage &Stage : Plan.Stages)
    runStage(Stage, Dt, T);
}

void Scheduler::voltageStep(double *Vm, const double *Iion, double Stim,
                            double Dt) const {
  forEachShard([&](unsigned, int64_t Begin, int64_t End) {
    for (int64_t Cell = Begin; Cell != End; ++Cell)
      Vm[Cell] += Dt * (Stim - Iion[Cell]);
  });
}
