//===- StateBuffer.h - Layout-aware population state container --*- C++-*-===//
//
// Owns the per-population arrays a compiled model steps over: the state
// array in the model's compiled layout (AoS / SoA / AoSoA, the paper's
// Sec. 3.4.1 data-layout transformation) and one dense per-cell array per
// external variable. This is the single runtime owner of layout
// addressing — every per-cell access (health scans, checkpoints,
// multimodel bindings, fault injection, the scalar-exact fallback
// gather/scatter) goes through the accessors here, which funnel into the
// one canonical index formula, codegen::stateIndex.
//
// NUMA story: the constructor allocates without touching the pages; when
// given a Scheduler, initialize() writes each shard's cells from the
// worker thread that will later step them (first-touch, shard-aligned),
// so pages land on the stepping thread's node and the Scheduler's stable
// shard assignment keeps them there.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_STATEBUFFER_H
#define LIMPET_SIM_STATEBUFFER_H

#include "codegen/KernelSpec.h"
#include "exec/CompiledModel.h"
#include "sim/Grid.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace limpet {
namespace sim {

class Scheduler;

/// A layout-aware strided view of one state-variable column: cell-indexed
/// access to a single Sv across the population for any AoS/SoA/AoSoA x
/// width point, without repacking. contiguous() is true for SoA, where
/// data() exposes the dense column directly (the zero-copy fast path);
/// the operator[] form funnels through the same canonical index formula
/// as StateBuffer.
class ColumnView {
public:
  ColumnView(double *State, codegen::StateLayout Layout, unsigned Sv,
             unsigned NumSv, int64_t NumCells, unsigned BlockW)
      : State(State), Layout(Layout), Sv(Sv), NumSv(NumSv),
        NumCells(NumCells), BlockW(BlockW) {}

  double &operator[](int64_t Cell) const {
    return State[size_t(codegen::stateIndex(Layout, Cell, Sv, NumSv,
                                            NumCells, BlockW))];
  }

  /// True when the column occupies consecutive elements (SoA, or the
  /// degenerate single-variable AoS), so data() is a dense array.
  bool contiguous() const {
    return Layout == codegen::StateLayout::SoA || NumSv == 1;
  }
  /// First element of the column; only dense when contiguous().
  double *data() const { return &(*this)[0]; }

  /// Copies [Begin, End) of the column into dense scratch / back from it
  /// (the stencil path for non-SoA layouts).
  void copyOut(double *Dst, int64_t Begin, int64_t End) const {
    for (int64_t C = Begin; C < End; ++C)
      Dst[C - Begin] = (*this)[C];
  }
  void copyIn(const double *Src, int64_t Begin, int64_t End) const {
    for (int64_t C = Begin; C < End; ++C)
      (*this)[C] = Src[C - Begin];
  }

private:
  double *State;
  codegen::StateLayout Layout;
  unsigned Sv;
  unsigned NumSv;
  int64_t NumCells;
  unsigned BlockW;
};

/// A cell population's state and external arrays in one compiled layout.
class StateBuffer {
public:
  /// Shapes the buffer for \p Model over \p NumCells cells (AoSoA pads to
  /// whole blocks) and initializes every variable to the model's inits —
  /// serially, or per shard from the worker threads when \p Sched is
  /// given (first-touch allocation).
  StateBuffer(const exec::CompiledModel &Model, int64_t NumCells,
              const Scheduler *Sched = nullptr);

  /// Rewrites every state/external variable to its initial value. The
  /// padded AoSoA tail is initialized too, so health scans over the full
  /// array stay meaningful.
  void initialize(const Scheduler *Sched = nullptr);

  int64_t numCells() const { return NumCells; }
  /// Cells the state array covers including AoSoA block padding.
  int64_t paddedCells() const { return Padded; }
  unsigned numSv() const { return NumSv; }
  size_t numExternals() const { return Exts.size(); }
  codegen::StateLayout layout() const { return Layout; }
  /// AoSoA block width (1 for AoS/SoA).
  unsigned blockWidth() const { return BlockW; }

  /// Flat element index of (cell, sv) under the current layout — the one
  /// canonical indexing implementation (codegen::stateIndex).
  int64_t index(int64_t Cell, int64_t Sv) const {
    return codegen::stateIndex(Layout, Cell, Sv, NumSv, NumCells, BlockW);
  }

  double *state() { return State.get(); }
  const double *state() const { return State.get(); }
  size_t stateSize() const { return size_t(Padded) * NumSv; }

  double *ext(size_t J) { return Exts[J].get(); }
  const double *ext(size_t J) const { return Exts[J].get(); }
  /// The external array pointers in model order (KernelArgs::Exts).
  std::vector<double *> extPointers();

  // Per-cell accessors (bounds are the caller's responsibility; the
  // drivers' public APIs add the checks).
  double readState(int64_t Cell, int64_t Sv) const {
    return State[size_t(index(Cell, Sv))];
  }
  void writeState(int64_t Cell, int64_t Sv, double Value) {
    State[size_t(index(Cell, Sv))] = Value;
  }
  double readExt(size_t J, int64_t Cell) const {
    return Exts[J][size_t(Cell)];
  }
  void writeExt(size_t J, int64_t Cell, double Value) {
    Exts[J][size_t(Cell)] = Value;
  }

  /// Copies one cell out into dense scratch: NumSv state values into
  /// \p Sv, one value per external into \p Ext. The layout the
  /// scalar-exact fallback and multimodel bindings work in.
  void gatherCell(int64_t Cell, double *Sv, double *Ext) const;
  /// Inverse of gatherCell.
  void scatterCell(int64_t Cell, const double *Sv, const double *Ext);

  /// Converts the population to another layout in place (contents
  /// preserved per (cell, sv); AoSoA pad lanes reset to the initial
  /// values, matching a freshly initialized buffer). \p NewWidth is the
  /// AoSoA block width and ignored for AoS/SoA.
  void repack(codegen::StateLayout NewLayout, unsigned NewWidth);

  /// A checkpoint of the full population (guard-rail rollback).
  struct Snapshot {
    std::vector<double> State;
    std::vector<std::vector<double>> Exts;
  };
  void save(Snapshot &S) const;
  /// Restores in place; the state()/ext() pointers stay valid.
  void restore(const Snapshot &S);
  /// Layout-aware read out of a snapshot taken from this buffer.
  double snapshotState(const Snapshot &S, int64_t Cell, int64_t Sv) const {
    return S.State[size_t(index(Cell, Sv))];
  }

  /// Order-independent digest of the population (engine-equivalence and
  /// scheduler-determinism tests). Excludes AoSoA padding.
  double checksum() const;

  //===--------------------------------------------------------------------===//
  // Tissue geometry (optional)
  //===--------------------------------------------------------------------===//

  /// Attaches a tissue grid to the population (cell c <-> node c,
  /// row-major). Refused (recoverable) when the node count does not
  /// match the population.
  Status attachGrid(const TissueGrid &G);
  bool hasGrid() const { return Grid.valid(); }
  const TissueGrid &grid() const { return Grid; }

  /// Halo of a shard's cell range under the attached grid (empty when no
  /// grid is attached).
  HaloRegion haloFor(int64_t Begin, int64_t End) const {
    return hasGrid() ? limpet::sim::haloFor(Grid, Begin, End)
                     : HaloRegion{};
  }

  /// Layout-aware view of one state-variable column (bounds are the
  /// caller's responsibility, like the per-cell accessors).
  ColumnView column(unsigned Sv) {
    return ColumnView(State.get(), Layout, Sv, NumSv, NumCells, BlockW);
  }

private:
  codegen::StateLayout Layout;
  unsigned NumSv;
  unsigned BlockW;
  int64_t NumCells;
  int64_t Padded;
  /// The model's initial values, captured so initialize()/repack() do not
  /// need the model again.
  std::vector<double> SvInits;
  std::vector<double> ExtInits;
  /// new double[] without value-initialization: pages stay untouched
  /// until initialize() writes them (first-touch).
  std::unique_ptr<double[]> State;
  std::vector<std::unique_ptr<double[]>> Exts;
  /// Tissue geometry; invalid (NX == 0) for plain populations.
  TissueGrid Grid{0, 1, 0.025};
};

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_STATEBUFFER_H
