//===- Simulator.h - Single-cell-population simulation driver ---*- C++-*-===//
//
// The analogue of openCARP's `bench` program, as a client of the layered
// runtime: the population lives in a StateBuffer (layout-aware state +
// external arrays), every compute step runs through the Scheduler's
// sharded stepping loop (static schedule, persistent shard-to-thread
// assignment), and the driver adds the minimal "solver stage" surrogate:
// a transmembrane-voltage update Vm += dt*(Istim - Iion) plus a periodic
// stimulus, enough to drive action potentials through the kernels.
//
// Guard rails (optional, SimOptions::Guard): run() periodically scans the
// population for NaN/Inf/out-of-range values. On a fault it rolls the
// population back to the last healthy checkpoint and walks a degradation
// ladder — re-integrate the window with halved dt (bounded retries,
// exponential backoff), fall faulty cells back to the exact scalar kernel,
// and as a last resort freeze-and-flag them so they cannot poison the rest
// of the population. The outcome is summarized in a RunReport. See
// docs/ROBUSTNESS.md.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_SIMULATOR_H
#define LIMPET_SIM_SIMULATOR_H

#include "exec/CompiledModel.h"
#include "sim/CancelToken.h"
#include "sim/Checkpoint.h"
#include "sim/Health.h"
#include "sim/Scheduler.h"
#include "sim/StateBuffer.h"
#include "support/Status.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

namespace limpet {
namespace sim {

/// Fault-tolerance knobs for Simulator::run().
struct GuardRailOptions {
  /// Master switch; off preserves the raw stepping loop bit-for-bit.
  bool Enabled = false;
  /// Health-scan (and checkpoint) cadence in steps. Each scan is one
  /// vectorized pass over the state and external arrays.
  int64_t ScanInterval = 8;
  /// Rollback + dt-halving retries per faulty window (retry k re-runs the
  /// window at dt / 2^k).
  int MaxRetries = 3;
  /// Numerical bounds a healthy population must satisfy.
  HealthPolicy Policy;
  /// Allow degrading persistently faulty cells to the exact scalar
  /// (no-LUT, libm) kernel.
  bool AllowScalarFallback = true;
  /// Allow freezing cells that fault even on the scalar-exact path.
  bool AllowFreeze = true;
};

/// Durable checkpoint/resume knobs for Simulator::run().
struct CheckpointOptions {
  /// Directory the rotated ckpt-<step>.lmpc files live in; empty disables
  /// durable checkpointing entirely.
  std::string Dir;
  /// Checkpoint cadence in steps (0 = only the final shutdown
  /// checkpoint). In guarded runs checkpoints land on the next healthy
  /// scan boundary at or after the cadence.
  int64_t EveryN = 0;
  /// How many rotated checkpoint files to keep.
  int Retain = 3;
  /// FNV-1a 64 of the model source, stamped into every checkpoint so a
  /// resume against a different model is refused (0 = unknown).
  uint64_t SourceHash = 0;
};

/// Simulation protocol options. The paper's protocol is 100,000 steps of
/// 0.01 ms (1 s) over 8,192 cells; benches scale this down.
struct SimOptions {
  int64_t NumCells = 4096;
  int64_t NumSteps = 1000;
  double Dt = 0.01; ///< ms
  unsigned NumThreads = 1;

  // Stimulus: a current pulse of StimStrength applied during
  // [StimStart, StimStart+StimDuration), repeating every StimPeriod ms
  // (0 = single pulse).
  double StimStart = 1.0;
  double StimDuration = 2.0;
  double StimStrength = 30.0;
  double StimPeriod = 0.0;

  /// Record Vm of TraceCell each step (for AP plots and golden tests).
  bool RecordTrace = false;
  int64_t TraceCell = 0;

  /// Print the telemetry summary (runtime counters + registry) to stdout
  /// when run() finishes. A no-op note in telemetry-off builds.
  bool Stats = false;

  /// Numerical guard rails (health scan, checkpoint/retry, degradation).
  GuardRailOptions Guard;

  /// Durable checkpoint/resume (periodic on-disk snapshots, graceful
  /// shutdown). Independent of Guard: the in-memory guard-rail
  /// checkpoint is for rollback, this one survives the process.
  CheckpointOptions Checkpoint;

  /// Optional cooperative cancel token (explicit cancel / wall-clock
  /// deadline), polled at the same step/window boundaries as the
  /// shutdown flag. Not owned; must outlive run(). A stop through the
  /// token writes the same final durable checkpoint as a shutdown, so
  /// the run stays resumable.
  const CancelToken *Cancel = nullptr;

  /// Progress streaming: when ProgressEvery > 0, Progress(stepsDone,
  /// stepTarget) is invoked at step/window boundaries every
  /// ProgressEvery steps (after the scheduler's shard barrier — never
  /// from inside the stepping hot path). Used by limpetd to stream
  /// NDJSON progress events.
  int64_t ProgressEvery = 0;
  std::function<void(int64_t StepsDone, int64_t StepTarget)> Progress;
};

/// Drives one compiled model over a population of cells.
///
/// The stepping core is an extension point: advance() — one integration
/// substep — is virtual, and everything around it (the guarded run loop,
/// rollback/retry ladder, durable checkpoints, cancellation, resume) is
/// inherited machinery. TissueSimulator overrides advance() with the
/// operator-split diffusion pipeline and hooks captureCheckpoint /
/// resumeFrom through annotateCheckpoint / validateResume.
class Simulator {
public:
  Simulator(const exec::CompiledModel &Model, const SimOptions &Opts);
  virtual ~Simulator() = default;
  Simulator(const Simulator &) = delete;
  Simulator &operator=(const Simulator &) = delete;

  /// Advances one time step (compute stage + voltage update). Guard-rail
  /// scanning only happens inside run(); manual stepping is unguarded.
  void step();

  /// Runs Opts.NumSteps steps, with fault-tolerant stepping when
  /// Opts.Guard.Enabled is set. After resumeFrom, Opts.NumSteps is the
  /// *total* step target, so an interrupted run resumed mid-flight lands
  /// on the same final step as an uninterrupted one. Writes durable
  /// checkpoints on the Opts.Checkpoint cadence and stops cleanly (one
  /// final checkpoint, interrupted() set) when a shutdown was requested.
  void run();

  //===--------------------------------------------------------------------===//
  // Durable checkpoint / resume
  //===--------------------------------------------------------------------===//

  /// Snapshots the full simulation state — population, progress,
  /// parameters, trace, guard-rail accumulators and degradation modes —
  /// into a serializable CheckpointData.
  CheckpointData captureCheckpoint() const;

  /// Restores this simulator from \p C. Refuses (recoverable error,
  /// state untouched) a checkpoint whose model name, source hash, engine
  /// configuration or population shape does not match this simulator.
  /// On success the next run() continues bit-identically to the run that
  /// captured \p C.
  Status resumeFrom(const CheckpointData &C);

  /// True when the last run() stopped early on a shutdown request,
  /// cancellation or deadline expiry (after writing its final
  /// checkpoint).
  bool interrupted() const { return Interrupted; }

  /// Why the last run() stopped early (None when it ran to the target).
  StopReason stopReason() const { return LastStop; }

  double time() const { return T; }
  int64_t stepsDone() const { return StepCount; }

  const exec::CompiledModel &model() const { return Model; }
  const SimOptions &options() const { return Opts; }
  /// The population container and the sharded stepping loop this driver
  /// runs through.
  const StateBuffer &stateBuffer() const { return Buf; }
  const Scheduler &scheduler() const { return Sched; }

  /// State variable value of one cell (layout-aware). Out-of-range
  /// cell/sv indices return NaN instead of reading out of bounds.
  double stateOf(int64_t Cell, int64_t Sv) const;
  /// External variable value of one cell (NaN when out of range).
  double externalOf(int64_t Cell, size_t ExtIdx) const;
  /// Membrane voltage of a cell; NaN when the model has no Vm external
  /// or the cell index is out of range. See tryVm for the checked form.
  double vm(int64_t Cell) const;
  /// Checked membrane-voltage access.
  Expected<double> tryVm(int64_t Cell) const;

  /// The recorded Vm trace (one entry per step when RecordTrace is set).
  const std::vector<double> &trace() const { return Trace; }

  /// Sets a parameter and rebuilds the LUT tables. Unknown names and
  /// non-finite values are recoverable errors (the simulation state is
  /// left untouched).
  Status setParam(std::string_view Name, double Value);
  /// Parameter value; NaN for unknown names (see tryParam).
  double param(std::string_view Name) const;
  /// Checked parameter access.
  Expected<double> tryParam(std::string_view Name) const;

  /// Order-independent digest of the full simulation state, used by
  /// engine-equivalence tests.
  double stateChecksum() const;

  /// Whether the model exposes the Vm/Iion convention the voltage update
  /// needs.
  bool hasVoltageCoupling() const { return VmIdx >= 0 && IionIdx >= 0; }

  //===--------------------------------------------------------------------===//
  // Guard-rail introspection and fault injection
  //===--------------------------------------------------------------------===//

  /// What the last (or ongoing) run() did: faults, retries, substeps,
  /// degraded cells, scan overhead.
  const RunReport &report() const { return Report; }

  /// Where a cell sits on the degradation ladder.
  CellMode cellMode(int64_t Cell) const;

  /// One bulk health scan of the current population (also used by the
  /// fault-injection harness to verify detection). Virtual: the ensemble
  /// runner scans member slices so quarantined members stop counting
  /// against population health.
  virtual bool scanIsHealthy() const;

  /// Cells currently violating the health policy.
  std::vector<int64_t> faultyCells() const;

  /// Layout-aware direct write into the population (fault injection and
  /// scenario setup). Out-of-range indices are ignored.
  void pokeState(int64_t Cell, int64_t Sv, double Value);
  void pokeExternal(size_t ExtIdx, int64_t Cell, double Value);

  /// Mutable access to this simulation's LUT tables (fault injection:
  /// corrupt rows to exercise the scalar-exact fallback).
  runtime::LutTableSet &mutableLuts() { return SimLuts; }

  /// Callback invoked after every completed nominal step (including steps
  /// re-run during recovery): a persistent-fault injector for tests and
  /// the faultinject tool.
  void setFaultInjector(std::function<void(Simulator &)> Injector);

protected:
  struct Checkpoint {
    StateBuffer::Snapshot Snap;
    double T = 0;
    int64_t StepCount = 0;
    size_t TraceLen = 0;
    bool Valid = false;
  };
  struct FrozenSnapshot {
    std::vector<double> Sv;
    std::vector<double> Ext;
  };

  void computeStage(double Dt);
  void voltageStage(double Dt);
  /// One integration substep of size Dt (scalar-fallback cells
  /// included). The virtual stepping core: the guarded run loop, the
  /// dt-halving recovery ladder and the durable-checkpoint machinery all
  /// drive whatever pipeline an override installs here.
  virtual void advance(double Dt);
  /// Hook for subclasses to stamp extra sections (tissue geometry) into
  /// a captured checkpoint.
  virtual void annotateCheckpoint(CheckpointData &C) const { (void)C; }
  /// Extra resume validation a subclass needs (e.g. tissue geometry
  /// cross-checks); runs after the base shape checks, before any state
  /// is touched. The base refuses tissue checkpoints — a diffusion-coupled
  /// field must not silently continue as an uncoupled population — and
  /// ensemble checkpoints, whose per-member status only an EnsembleRunner
  /// can restore.
  virtual Status validateResume(const CheckpointData &C) const {
    if (C.TissueNX > 0)
      return Status::error(
          "cannot resume: checkpoint is a tissue run (" +
          std::to_string(C.TissueNX) + "x" + std::to_string(C.TissueNY) +
          " grid); resume it with a tissue simulator");
    if (C.EnsembleMembers > 0)
      return Status::error(
          "cannot resume: checkpoint is an ensemble run (" +
          std::to_string(C.EnsembleMembers) +
          " members); resume it with an ensemble runner");
    return Status::success();
  }
  /// Hook invoked at the very end of a successful resumeFrom, after all
  /// base state is restored: subclasses re-derive whatever they keep
  /// outside the base arrays (per-member ensemble status, ...).
  virtual void applyResume(const CheckpointData &C) { (void)C; }
  /// Bookkeeping after the physics of one nominal step: injector hook,
  /// frozen-cell restore, step count, trace.
  void finishStep();
  /// Runs \p Steps nominal steps, each split into \p Substeps kernel
  /// steps of Dt/Substeps.
  void runWindow(int64_t Steps, int Substeps);
  void runGuarded(int64_t Target);
  /// Durable-checkpoint cadence + shutdown poll, called at step/window
  /// boundaries (after the scheduler's shard barrier). Returns true when
  /// the run should stop (shutdown requested; final checkpoint written).
  bool durableTick();
  /// Writes one durable checkpoint (timed, counted in telemetry).
  void writeDurableCheckpoint();
  /// Walks the degradation ladder for the window that just failed its
  /// health scan. Virtual: the ensemble runner replaces the
  /// population-wide ladder with a member-local one.
  virtual void recoverWindow(int64_t Window);
  /// scanIsHealthy plus scan-count/scan-time accounting.
  bool timedScan();
  /// Mirrors this run()'s RunReport deltas into the telemetry registry.
  void foldReportIntoTelemetry(const RunReport &Before);

  void takeCheckpoint();
  void rollback();
  bool ensureRecoveryModel();
  void runScalarFallback(double Dt, bool Gather);
  void degradeToScalar(int64_t Cell);
  /// Freezes \p Cell to its value in the last healthy checkpoint.
  void freezeCell(int64_t Cell);
  void restoreFrozenCells();

  const exec::CompiledModel &Model;
  /// Per-simulation LUT tables (rebuilt when parameters change).
  runtime::LutTableSet SimLuts;
  SimOptions Opts;
  /// The one stepping loop (persistent shard plan); constructed before
  /// Buf so the population can be first-touch initialized per shard.
  Scheduler Sched;
  /// The population: state array in the compiled layout + externals.
  StateBuffer Buf;
  std::vector<double> Params;
  /// The single compute stage this driver runs each step (pointers into
  /// Buf/Params/SimLuts, all stable for the simulator's lifetime).
  std::vector<KernelStage> Stages;
  int VmIdx = -1, IionIdx = -1;
  double T = 0;
  int64_t StepCount = 0;
  std::vector<double> Trace;

  // Guard-rail state.
  RunReport Report;
  Checkpoint Ck;
  /// Per-cell degradation mode; empty until a cell first degrades.
  std::vector<CellMode> Modes;
  std::unordered_map<int64_t, FrozenSnapshot> Frozen;
  /// Lazily compiled exact scalar model for the fallback path.
  std::unique_ptr<exec::CompiledModel> RecoveryModel;
  bool RecoveryCompileFailed = false;
  /// Scratch for the per-cell scalar fallback (cell-major: NumSv svs then
  /// one slot per external, per degraded cell).
  std::vector<double> FallbackBuf;
  std::vector<int64_t> FallbackCells;
  std::function<void(Simulator &)> Injector;

  // Durable checkpoint state.
  std::unique_ptr<CheckpointStore> Durable;
  int64_t LastDurableStep = 0;
  /// StepCount when the current run() started. Report.StepsTaken is only
  /// folded in when run() returns; captureCheckpoint adds the in-flight
  /// delta so mid-run checkpoints carry an accurate count.
  int64_t RunStartStep = 0;
  bool Resumed = false;
  bool Interrupted = false;
  StopReason LastStop = StopReason::None;
  /// Step target of the run() in flight (for progress callbacks).
  int64_t RunTarget = 0;
  int64_t LastProgressStep = 0;
};

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_SIMULATOR_H
