//===- Simulator.h - Single-cell-population simulation driver ---*- C++-*-===//
//
// The analogue of openCARP's `bench` program: owns the cell population
// (state array in the compiled layout, external arrays, parameters), runs
// the compute stage each time step — optionally across threads with a
// static schedule — and performs the minimal "solver stage" surrogate: a
// transmembrane-voltage update Vm += dt*(Istim - Iion) plus a periodic
// stimulus, enough to drive action potentials through the kernels.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_SIMULATOR_H
#define LIMPET_SIM_SIMULATOR_H

#include "exec/CompiledModel.h"

#include <cstdint>
#include <vector>

namespace limpet {
namespace sim {

/// Simulation protocol options. The paper's protocol is 100,000 steps of
/// 0.01 ms (1 s) over 8,192 cells; benches scale this down.
struct SimOptions {
  int64_t NumCells = 4096;
  int64_t NumSteps = 1000;
  double Dt = 0.01; ///< ms
  unsigned NumThreads = 1;

  // Stimulus: a current pulse of StimStrength applied during
  // [StimStart, StimStart+StimDuration), repeating every StimPeriod ms
  // (0 = single pulse).
  double StimStart = 1.0;
  double StimDuration = 2.0;
  double StimStrength = 30.0;
  double StimPeriod = 0.0;

  /// Record Vm of TraceCell each step (for AP plots and golden tests).
  bool RecordTrace = false;
  int64_t TraceCell = 0;
};

/// Drives one compiled model over a population of cells.
class Simulator {
public:
  Simulator(const exec::CompiledModel &Model, const SimOptions &Opts);

  /// Advances one time step (compute stage + voltage update).
  void step();

  /// Runs Opts.NumSteps steps.
  void run();

  double time() const { return T; }
  int64_t stepsDone() const { return StepCount; }

  const exec::CompiledModel &model() const { return Model; }
  const SimOptions &options() const { return Opts; }

  /// State variable value of one cell (layout-aware).
  double stateOf(int64_t Cell, int64_t Sv) const;
  /// External variable value of one cell.
  double externalOf(int64_t Cell, size_t ExtIdx) const;
  /// Membrane voltage of a cell (requires a Vm external).
  double vm(int64_t Cell) const;

  /// The recorded Vm trace (one entry per step when RecordTrace is set).
  const std::vector<double> &trace() const { return Trace; }

  /// Parameter access (rebuilds LUT tables on modification).
  void setParam(std::string_view Name, double Value);
  double param(std::string_view Name) const;

  /// Order-independent digest of the full simulation state, used by
  /// engine-equivalence tests.
  double stateChecksum() const;

  /// Whether the model exposes the Vm/Iion convention the voltage update
  /// needs.
  bool hasVoltageCoupling() const { return VmIdx >= 0 && IionIdx >= 0; }

private:
  void computeStage();
  void voltageStage();

  const exec::CompiledModel &Model;
  /// Per-simulation LUT tables (rebuilt when parameters change).
  runtime::LutTableSet SimLuts;
  SimOptions Opts;
  std::vector<double> State;
  std::vector<std::vector<double>> Exts;
  std::vector<double> Params;
  int VmIdx = -1, IionIdx = -1;
  double T = 0;
  int64_t StepCount = 0;
  std::vector<double> Trace;
};

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_SIMULATOR_H
