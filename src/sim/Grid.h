//===- Grid.h - Tissue grid geometry ----------------------------*- C++-*-===//
//
// The cell-to-node map of the tissue layer: a regular 1D cable or 2D
// sheet of nodes with spacing Dx, one ionic cell per node, row-major
// (node = y*NX + x). The map is the identity on cell indices, so the
// ShardPlan's contiguous cell ranges are contiguous node ranges and the
// diffusion stencil of a shard only reads a bounded halo around its
// range: one node per side in 1D, one NX-row per side in 2D. haloFor
// computes that halo for a shard so the stencil stages know exactly
// which remote cells the preceding publish barrier must have made
// visible.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_GRID_H
#define LIMPET_SIM_GRID_H

#include <algorithm>
#include <cstdint>

namespace limpet {
namespace sim {

/// A regular 1D (NY == 1) or 2D tissue grid, row-major, spacing Dx (cm).
struct TissueGrid {
  int64_t NX = 0;
  int64_t NY = 1;
  double Dx = 0.025; ///< node spacing in cm (openCARP's default ballpark)

  bool valid() const { return NX > 0 && NY > 0 && Dx > 0; }
  bool is2D() const { return NY > 1; }
  int64_t numNodes() const { return NX * NY; }

  /// Row-major cell <-> node map (the identity on indices).
  int64_t nodeAt(int64_t X, int64_t Y) const { return Y * NX + X; }
  int64_t xOf(int64_t Node) const { return NX > 0 ? Node % NX : 0; }
  int64_t yOf(int64_t Node) const { return NX > 0 ? Node / NX : 0; }
};

/// The halo of a shard's contiguous node range [Begin, End): the node
/// ranges outside it that the diffusion stencil reads. Both sub-ranges
/// are clipped to the grid, so boundary shards simply get empty or
/// shorter halos.
struct HaloRegion {
  int64_t LoBegin = 0, LoEnd = 0; ///< halo below Begin: [LoBegin, LoEnd)
  int64_t HiBegin = 0, HiEnd = 0; ///< halo above End: [HiBegin, HiEnd)

  int64_t size() const { return (LoEnd - LoBegin) + (HiEnd - HiBegin); }
};

/// Halo of [Begin, End) on \p G: one node per side for a 1D cable, one
/// full stencil row (NX nodes) per side for a 2D sheet.
inline HaloRegion haloFor(const TissueGrid &G, int64_t Begin, int64_t End) {
  HaloRegion H;
  if (!G.valid() || Begin >= End)
    return H;
  int64_t Reach = G.is2D() ? G.NX : 1;
  H.LoBegin = std::max<int64_t>(0, Begin - Reach);
  H.LoEnd = Begin;
  H.HiBegin = End;
  H.HiEnd = std::min(G.numNodes(), End + Reach);
  return H;
}

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_GRID_H
