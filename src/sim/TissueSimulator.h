//===- TissueSimulator.h - Reaction-diffusion tissue driver -----*- C++-*-===//
//
// The tissue-scale driver: ionic cells on a 1D/2D grid coupled by a
// diffusion term on the transmembrane voltage (the monodomain equation),
// integrated by Strang operator splitting:
//
//   D(dt/2) -> ionic kernel(dt) + Vm update + stimulus -> D(dt/2)
//
// Each operator is one or two stages of the Scheduler's StagePlan, so
// every stage runs sharded over the persistent shard-to-thread
// assignment with a full barrier between stages. The FTCS diffusion
// half-step is a publish/apply pair — the publish stage copies each
// shard's Vm range into a snapshot (the shared-memory halo exchange) and
// the apply stage reads only that snapshot — so tissue runs are
// bit-identical for any shard count. The Crank-Nicolson path solves the
// tridiagonal system serially on shard 0 behind the same barrier.
//
// Everything else is inherited from Simulator: guard rails (health scan,
// rollback, dt-halving retries, freeze-and-flag; the dt ladder re-runs
// diffusion too, since advance() is the virtual substep), cooperative
// cancellation, durable checkpoint/resume (tissue geometry rides in the
// v2 checkpoint section and is cross-checked on resume; the Vm field is
// an external like any other).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_TISSUESIMULATOR_H
#define LIMPET_SIM_TISSUESIMULATOR_H

#include "sim/Diffusion.h"
#include "sim/Simulator.h"
#include "sim/Stimulus.h"

namespace limpet {
namespace sim {

/// Protocol options of a tissue run. The embedded SimOptions supplies the
/// step count, dt, threads, guard rails, checkpointing, cancellation and
/// progress knobs; its NumCells is overridden by the grid's node count
/// and its scalar Stim* fields seed the default protocol when \p Stim is
/// empty (a pulse train on the x=0 edge).
struct TissueOptions {
  TissueGrid Grid{64, 1, 0.025};
  /// Effective diffusivity sigma/(beta*Cm), cm^2/ms.
  double Sigma = 0.001;
  DiffusionMethod Method = DiffusionMethod::FTCS;
  StimulusProtocol Stim;
  SimOptions Sim;
};

/// Operator-split reaction-diffusion driver over one tissue grid.
class TissueSimulator : public Simulator {
public:
  TissueSimulator(const exec::CompiledModel &Model,
                  const TissueOptions &Opts);

  const TissueGrid &grid() const { return TOpts.Grid; }
  const DiffusionOperator &diffusion() const { return Diff; }
  const StimulusProtocol &stimulus() const { return TOpts.Stim; }
  const TissueOptions &tissueOptions() const { return TOpts; }

  /// Pre-run validation as one recoverable error: the model must expose
  /// the Vm/Iion coupling, and an FTCS half-step of Dt/2 must respect
  /// the CFL stability limit (docs/TISSUE.md). Call before run().
  Status preflight() const;

  //===--------------------------------------------------------------------===//
  // Activation map / conduction velocity (diagnostic, not checkpointed)
  //===--------------------------------------------------------------------===//

  /// Starts recording each cell's first upward crossing of \p Threshold.
  void enableActivationMap(double Threshold = -20.0);
  /// First activation time of a cell (ms); NaN when not (yet) activated
  /// or out of range.
  double activationTime(int64_t Cell) const;
  /// Conduction velocity between two activated nodes in cm/ms (distance
  /// over activation-time difference); NaN when either is silent.
  double conductionVelocity(int64_t CellA, int64_t CellB) const;

protected:
  void advance(double Dt) override;
  void annotateCheckpoint(CheckpointData &C) const override;
  Status validateResume(const CheckpointData &C) const override;

private:
  TissueOptions TOpts;
  DiffusionOperator Diff;
  /// The diffusion half-step pipeline: FTCS publish + apply (two sharded
  /// stages with the halo-exchange barrier between them), or the serial
  /// Crank-Nicolson stage.
  StagePlan DiffPlan;
  /// Voltage update + regional stimulus, as one sharded stage.
  PipelineStage VoltStage;
  /// Dt of the stage currently in flight (stage lambdas read these; set
  /// before each runPlan/runStage).
  double HalfDt = 0;
  double StageDt = 0;
  /// Stimulus events active this step (collected once per step, applied
  /// per shard).
  std::vector<StimulusProtocol::ActiveStim> Active;

  bool TrackActivation = false;
  double ActThreshold = -20.0;
  std::vector<double> ActTime;
  std::vector<double> PrevVm;

  void buildPipeline();
  void diffusionHalf(double Dt);
  void voltageStimStage(double Dt);
  void updateActivation();
};

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_TISSUESIMULATOR_H
