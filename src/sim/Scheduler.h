//===- Scheduler.h - Sharded population stepping loop -----------*- C++-*-===//
//
// The one stepping loop of the runtime: the reproduction of the paper's
// `#pragma omp parallel for schedule(static)` over the cell range
// (Listing 2, Sec. 4.2), factored out of the drivers. A Scheduler owns a
// ShardPlan — contiguous, vector-block-aligned cell ranges with a
// persistent shard-to-thread assignment over the existing ThreadPool —
// and drives an ordered list of kernel stages (parent model, then
// plugins) through every shard each step.
//
// The shard assignment is stable across steps: ThreadPool::parallelFor's
// static schedule hands shard i to pool slot i every time, so pages
// first-touched by a worker during StateBuffer initialization are stepped
// by the same worker for the rest of the run (the ROADMAP's NUMA story).
// Stage kernels are cell-local, so results are bit-identical for any
// shard count; telemetry written to thread-local shards during a step is
// merged after the parallelFor barrier by telemetry::runtimeCounters().
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_SCHEDULER_H
#define LIMPET_SIM_SCHEDULER_H

#include "exec/CompiledModel.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace limpet {
namespace sim {

/// The static partition of a cell range into contiguous, block-aligned
/// shards (one prospective shard per thread; empty shards are dropped).
struct ShardPlan {
  struct Shard {
    int64_t Begin = 0;
    int64_t End = 0;
  };
  std::vector<Shard> Shards;
  unsigned BlockWidth = 1;

  /// Splits [0, NumCells) into up to \p NumThreads shards whose
  /// boundaries fall on \p BlockWidth multiples (so AoSoA chunks stay
  /// aligned), mirroring ThreadPool::staticChunk over whole blocks.
  static ShardPlan build(int64_t NumCells, unsigned NumThreads,
                         unsigned BlockWidth);
};

/// One kernel invocation target within a step: which compiled model steps
/// which arrays. The optional Before/After hooks run per shard around the
/// kernel (multimodel parent-state gather/scatter).
struct KernelStage {
  const exec::CompiledModel *Model = nullptr;
  double *State = nullptr;
  std::vector<double *> Exts;
  const double *Params = nullptr;
  const runtime::LutTableSet *Luts = nullptr;
  std::function<void(int64_t Begin, int64_t End)> Before;
  std::function<void(int64_t Begin, int64_t End)> After;
};

/// One stage of a multi-stage step pipeline. A stage is one sharded pass
/// over the population — a barrier separates it from the next stage, so a
/// stage may read what the previous stage wrote for *any* cell (the
/// shared-memory form of halo exchange: publish under one barrier, read
/// neighbours under the next). A stage runs its kernel list (when
/// \c Kernels is set), its \c Run hook (when set), or both, per shard.
struct PipelineStage {
  /// Stage label for telemetry/debugging ("diffuse-pre", "ionic", ...).
  std::string Name;
  /// Kernel stages to run over each shard (not owned; may be null).
  const std::vector<KernelStage> *Kernels = nullptr;
  /// Arbitrary per-shard work (stencils, voltage updates, halo
  /// publishes). Runs after the kernels when both are set.
  std::function<void(unsigned Shard, int64_t Begin, int64_t End)> Run;
};

/// An ordered multi-stage step: the operator-split pipeline (e.g.
/// diffusion half-step, ionic step, diffusion half-step) with a full
/// barrier between consecutive stages.
struct StagePlan {
  std::vector<PipelineStage> Stages;
};

/// Persistent sharded executor over one cell population.
class Scheduler {
public:
  Scheduler(int64_t NumCells, unsigned NumThreads, unsigned BlockWidth);

  int64_t numCells() const { return NumCells; }
  unsigned numThreads() const { return NumThreads; }
  unsigned numShards() const { return unsigned(Plan.Shards.size()); }
  const ShardPlan &plan() const { return Plan; }

  /// Rebuilds the plan for a new block width (a plugin with a wider
  /// vector block joined the population).
  void rebuild(unsigned BlockWidth);

  /// Runs \p Fn over every shard — on the persistent per-thread
  /// assignment when this scheduler is threaded, inline otherwise —
  /// and blocks at the barrier.
  void
  forEachShard(const std::function<void(unsigned Shard, int64_t Begin,
                                        int64_t End)> &Fn) const;

  /// The compute-stage stepping loop: for every shard, each stage in
  /// order (Before hook, kernel over the shard's cell range, After hook).
  /// Equivalent to runPlan over a single-stage plan holding \p Stages.
  void step(const std::vector<KernelStage> &Stages, double Dt,
            double T) const;

  /// Runs one pipeline stage as a single sharded pass: per shard, the
  /// stage's kernels (if any) then its Run hook (if any), blocking at the
  /// barrier before returning.
  void runStage(const PipelineStage &Stage, double Dt, double T) const;

  /// Runs an ordered multi-stage step: each stage of \p Plan in order,
  /// with the shard barrier of runStage between consecutive stages.
  void runPlan(const StagePlan &Plan, double Dt, double T) const;

  /// The solver-stage surrogate over the shards:
  /// Vm[c] += Dt * (Stim - Iion[c]).
  void voltageStep(double *Vm, const double *Iion, double Stim,
                   double Dt) const;

private:
  int64_t NumCells;
  unsigned NumThreads;
  ShardPlan Plan;
};

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_SCHEDULER_H
