//===- StateBuffer.cpp ----------------------------------------------------===//

#include "sim/StateBuffer.h"

#include "sim/Scheduler.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>

using namespace limpet;
using namespace limpet::sim;
using namespace limpet::codegen;

static int64_t paddedFor(StateLayout Layout, int64_t NumCells, unsigned W) {
  if (Layout != StateLayout::AoSoA)
    return NumCells;
  int64_t BW = int64_t(std::max(W, 1u));
  return (NumCells + BW - 1) / BW * BW;
}

StateBuffer::StateBuffer(const exec::CompiledModel &Model, int64_t NumCells,
                         const Scheduler *Sched)
    : Layout(Model.config().Layout), NumSv(Model.program().NumSv),
      BlockW(std::max(Model.program().AoSoAW, 1u)),
      NumCells(std::max<int64_t>(NumCells, 0)),
      Padded(paddedFor(Layout, this->NumCells, BlockW)) {
  const easyml::ModelInfo &Info = Model.info();
  SvInits.reserve(Info.StateVars.size());
  for (const auto &Sv : Info.StateVars)
    SvInits.push_back(Sv.Init);
  assert(SvInits.size() == NumSv && "state-var count mismatch");
  ExtInits = Model.externalInits();

  State.reset(new double[stateSize()]);
  Exts.resize(ExtInits.size());
  for (auto &E : Exts)
    E.reset(new double[size_t(this->NumCells)]);
  initialize(Sched);
}

void StateBuffer::initialize(const Scheduler *Sched) {
  auto InitRange = [&](int64_t Begin, int64_t End) {
    // The shard holding the last real cell also owns the AoSoA pad lanes
    // of its final block.
    int64_t CellEnd = End == NumCells ? Padded : End;
    for (int64_t Cell = Begin; Cell != CellEnd; ++Cell)
      for (unsigned Sv = 0; Sv != NumSv; ++Sv)
        State[size_t(index(Cell, Sv))] = SvInits[Sv];
    for (size_t J = 0; J != Exts.size(); ++J)
      for (int64_t Cell = Begin; Cell != End; ++Cell)
        Exts[J][size_t(Cell)] = ExtInits[J];
  };
  if (Sched && Sched->numShards() > 1) {
    // First-touch: each worker writes the cells it will later step.
    Sched->forEachShard(
        [&](unsigned, int64_t Begin, int64_t End) { InitRange(Begin, End); });
    return;
  }
  InitRange(0, NumCells);
}

std::vector<double *> StateBuffer::extPointers() {
  std::vector<double *> Ptrs;
  Ptrs.reserve(Exts.size());
  for (auto &E : Exts)
    Ptrs.push_back(E.get());
  return Ptrs;
}

void StateBuffer::gatherCell(int64_t Cell, double *Sv, double *Ext) const {
  for (unsigned S = 0; S != NumSv; ++S)
    Sv[S] = readState(Cell, S);
  for (size_t J = 0; J != Exts.size(); ++J)
    Ext[J] = Exts[J][size_t(Cell)];
}

void StateBuffer::scatterCell(int64_t Cell, const double *Sv,
                              const double *Ext) {
  for (unsigned S = 0; S != NumSv; ++S)
    writeState(Cell, S, Sv[S]);
  for (size_t J = 0; J != Exts.size(); ++J)
    Exts[J][size_t(Cell)] = Ext[J];
}

void StateBuffer::repack(StateLayout NewLayout, unsigned NewWidth) {
  unsigned NewW = NewLayout == StateLayout::AoSoA ? std::max(NewWidth, 1u) : 1;
  // The no-op fast path is what lets a tuned layout be applied
  // unconditionally without churn; the counters make any residual churn
  // visible (sim.repack.count should stay 0 on a stable selection).
  if (NewLayout == Layout && NewW == BlockW) {
    telemetry::counter("sim.repack.noop").add();
    return;
  }
  telemetry::counter("sim.repack.count").add();
  int64_t NewPadded = paddedFor(NewLayout, NumCells, NewW);
  std::unique_ptr<double[]> NewState(
      new double[size_t(NewPadded) * NumSv]);
  for (int64_t Cell = 0; Cell != NewPadded; ++Cell)
    for (unsigned Sv = 0; Sv != NumSv; ++Sv)
      NewState[size_t(stateIndex(NewLayout, Cell, Sv, NumSv, NumCells,
                                 NewW))] =
          Cell < NumCells ? readState(Cell, Sv) : SvInits[Sv];
  State = std::move(NewState);
  Layout = NewLayout;
  BlockW = NewW;
  Padded = NewPadded;
}

void StateBuffer::save(Snapshot &S) const {
  S.State.assign(State.get(), State.get() + stateSize());
  S.Exts.resize(Exts.size());
  for (size_t J = 0; J != Exts.size(); ++J)
    S.Exts[J].assign(Exts[J].get(), Exts[J].get() + size_t(NumCells));
}

void StateBuffer::restore(const Snapshot &S) {
  assert(S.State.size() == stateSize() && "snapshot from another shape");
  std::copy(S.State.begin(), S.State.end(), State.get());
  for (size_t J = 0; J != Exts.size(); ++J)
    std::copy(S.Exts[J].begin(), S.Exts[J].end(), Exts[J].get());
}

Status StateBuffer::attachGrid(const TissueGrid &G) {
  if (!G.valid())
    return Status::error("invalid tissue grid (" + std::to_string(G.NX) +
                         "x" + std::to_string(G.NY) + ", dx=" +
                         std::to_string(G.Dx) + ")");
  if (G.numNodes() != NumCells)
    return Status::error(
        "tissue grid has " + std::to_string(G.numNodes()) +
        " nodes but the population has " + std::to_string(NumCells) +
        " cells");
  Grid = G;
  return Status::success();
}

double StateBuffer::checksum() const {
  double Sum = 0;
  for (int64_t Cell = 0; Cell != NumCells; ++Cell)
    for (unsigned Sv = 0; Sv != NumSv; ++Sv)
      Sum += readState(Cell, Sv) * (1.0 + 1e-6 * double(Sv));
  for (size_t J = 0; J != Exts.size(); ++J)
    for (int64_t Cell = 0; Cell != NumCells; ++Cell)
      Sum += Exts[J][size_t(Cell)];
  return Sum;
}
