//===- Diffusion.h - Tissue diffusion operator ------------------*- C++-*-===//
//
// The spatial-coupling half of the operator-split monodomain step: a
// diffusion operator over the tissue grid's Vm field, applied as two
// half-steps around the ionic step (Strang splitting, see docs/TISSUE.md).
//
// Methods:
//  - FTCS: explicit forward-time centered-space stencil (3-point in 1D,
//    5-point in 2D), written in flux form so no-flux boundaries conserve
//    total Vm; stable for Dt <= maxStableDt(). The inner loops run through
//    the branch-free runtime/VecMath stencil kernels, so the host compiler
//    vectorizes them — this is the memory-bandwidth-bound regime of the
//    roofline (compare the compute-bound ionic kernels).
//  - Crank-Nicolson: implicit trapezoidal step solved by the Thomas
//    tridiagonal algorithm (1D cables only), unconditionally stable. The
//    solve is inherently serial; the tissue pipeline runs it on shard 0
//    behind the stage barrier, so results are shard-count independent.
//
// Halo exchange in shared memory is a publish/read pair: stage A copies
// each shard's Vm range into the operator's snapshot (publish), the stage
// barrier makes every shard's writes visible, and stage B applies the
// stencil from the snapshot — reading up to one node (1D) or one row (2D)
// past the shard boundary — writing Vm in place. Because every shard
// reads the same immutable snapshot, the result is bit-identical for any
// shard count.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_DIFFUSION_H
#define LIMPET_SIM_DIFFUSION_H

#include "sim/Grid.h"
#include "support/Status.h"

#include <cstdint>
#include <string_view>
#include <vector>

namespace limpet {
namespace sim {

enum class DiffusionMethod : uint8_t {
  FTCS = 0,
  CrankNicolson = 1,
};

const char *diffusionMethodName(DiffusionMethod M);
/// "ftcs" / "cn" / "crank-nicolson" (recoverable error otherwise).
Expected<DiffusionMethod> parseDiffusionMethod(std::string_view Name);

/// Applies one diffusion (sub)step to the Vm field of a tissue grid.
class DiffusionOperator {
public:
  /// \p Sigma is the effective diffusivity sigma/(beta*Cm) in cm^2/ms.
  DiffusionOperator(const TissueGrid &G, double Sigma, DiffusionMethod M);

  const TissueGrid &grid() const { return G; }
  double sigma() const { return Sigma; }
  DiffusionMethod method() const { return M; }

  /// Largest stable per-application Dt: dx^2/(2*sigma*dims) for FTCS,
  /// +inf for the unconditionally stable Crank-Nicolson step.
  double maxStableDt() const;

  /// Stage A (halo publish): copies Vm[Begin, End) into the snapshot.
  /// Sharded; the caller's stage barrier orders it before apply.
  void publish(const double *Vm, int64_t Begin, int64_t End);

  /// Stage B: applies one FTCS step of size Dt from the snapshot into
  /// Vm[Begin, End) (reads the snapshot only, so any shard partition
  /// yields bit-identical results).
  void applyFromSnapshot(double *Vm, double Dt, int64_t Begin, int64_t End);

  /// Whole-field Crank-Nicolson step (1D grids only; 2D is a recoverable
  /// construction-time downgrade to FTCS in the tissue driver). Serial —
  /// the pipeline runs it on a single shard behind the stage barrier.
  void applyCrankNicolson(double *Vm, double Dt);

  /// Serial whole-field step (publish + apply / CN solve): the simple
  /// entry point for tests and analytic comparisons.
  void step(double *Vm, double Dt);

  /// Modeled memory traffic of one applied step over the whole grid
  /// (snapshot publish + stencil pass), for the sim.bytes.stencil.*
  /// roofline counters.
  uint64_t bytesLoadedPerStep() const;
  uint64_t bytesStoredPerStep() const;

private:
  TissueGrid G;
  double Sigma;
  DiffusionMethod M;
  /// The barrier-published Vm snapshot stencil reads come from.
  std::vector<double> Snap;
  /// Thomas-algorithm scratch (CN only).
  std::vector<double> CnRhs, CnC;

  void applyFTCS1D(double *Vm, double K, int64_t Begin, int64_t End);
  void applyFTCS2D(double *Vm, double KX, double KY, int64_t Begin,
                   int64_t End);
};

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_DIFFUSION_H
