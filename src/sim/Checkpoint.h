//===- Checkpoint.h - Durable simulation checkpoint/resume ------*- C++-*-===//
//
// The on-disk story for long-running simulations: periodic, versioned,
// FNV-1a-checksummed snapshots of the *full* simulation state — the
// StateBuffer contents (any layout x width, AoSoA padding included so a
// restore is bit-exact), step index, time, dt, parameter values, guard-rail
// RunReport accumulators, per-cell degradation modes and frozen-cell
// snapshots, the Vm trace, and the engine configuration plus a model
// source hash so a resumed run refuses a mismatched model.
//
// Files are written atomically (unique temp name + rename, reusing the
// compiler::Artifact serialization helpers), rotated to a retained count,
// and discovered newest-first with fallback: a truncated or corrupted
// checkpoint is skipped, never misparsed, and resume lands on the newest
// file that still checksums. A kill -9 at step 99,000 therefore costs at
// most one checkpoint interval, not the run (docs/ROBUSTNESS.md).
//
// Graceful shutdown rides on the same machinery: installShutdownHandlers
// converts SIGINT/SIGTERM into a flag the Simulator polls at step
// boundaries (after the scheduler's shard barrier), writes one final
// checkpoint, and returns cleanly.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_CHECKPOINT_H
#define LIMPET_SIM_CHECKPOINT_H

#include "exec/CompiledModel.h"
#include "sim/Health.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace limpet {
namespace sim {

/// Bumped whenever the serialized checkpoint layout changes; a mismatch is
/// a recoverable "cannot resume" error, never a misparse.
/// v2: tissue section (grid geometry, diffusion, stimulus spec).
/// v3: ensemble section (per-member status/reason for fault-isolated
///     parameter sweeps).
inline constexpr uint32_t kCheckpointFormatVersion = 3;

/// Everything needed to continue a simulation bit-identically from the
/// step it was captured at.
struct CheckpointData {
  uint32_t FormatVersion = kCheckpointFormatVersion;
  std::string ModelName;
  /// FNV-1a 64 of the EasyML source of the model being simulated (0 when
  /// the driver does not know it); a resumed run refuses a mismatch.
  uint64_t SourceHash = 0;
  /// The engine configuration of the compiled model; resume requires the
  /// resuming model to be compiled identically (layout, width, LUTs, ...).
  exec::EngineConfig Config;

  // Population shape (cross-checked against the resuming StateBuffer).
  int64_t NumCells = 0;
  uint32_t NumSv = 0;
  uint32_t NumExts = 0;
  uint8_t Layout = 0; ///< codegen::StateLayout
  uint32_t BlockW = 1;

  // Progress.
  int64_t StepCount = 0;
  double T = 0;
  double Dt = 0;

  // The population, bit-exact: the state array including AoSoA pad lanes,
  // and one dense per-cell array per external.
  std::vector<double> State;
  std::vector<std::vector<double>> Exts;

  /// Parameter values at capture time (setParam may have changed them;
  /// LUT tables are rebuilt from these on resume).
  std::vector<double> Params;

  /// Recorded Vm trace up to the checkpoint (empty when tracing is off).
  std::vector<double> Trace;

  // Guard-rail state: the accumulated run report, the per-cell position on
  // the degradation ladder (empty = every cell Normal), and the pinned
  // values of frozen cells.
  RunReport Report;
  std::vector<uint8_t> Modes;
  struct FrozenCell {
    int64_t Cell = 0;
    std::vector<double> Sv;
    std::vector<double> Ext;
  };
  std::vector<FrozenCell> Frozen;

  // Tissue section (v2): grid geometry, diffusion operator and the
  // canonical stimulus spec of a tissue run. TissueNX == 0 marks a plain
  // single-population checkpoint; a tissue resume cross-checks geometry
  // and diffusion settings so a checkpoint cannot silently continue on a
  // different sheet. The Vm field itself travels in Exts like any other
  // external.
  int64_t TissueNX = 0;
  int64_t TissueNY = 1;
  double TissueDx = 0.025;
  double TissueSigma = 0;
  uint8_t TissueMethod = 0; ///< sim::DiffusionMethod
  std::string TissueStim;   ///< StimulusProtocol::str(); "" = none

  // Ensemble section (v3): per-member status of a fault-isolated
  // parameter sweep. EnsembleMembers == 0 marks a non-ensemble
  // checkpoint; an ensemble resume cross-checks member count, slice
  // width and the spec hash so partial results cannot silently continue
  // under a different sweep. Member state/parameter values travel in
  // State/Exts like any other cells.
  int64_t EnsembleMembers = 0;
  int64_t EnsembleCellsPerMember = 0;
  uint64_t EnsembleSpecHash = 0;
  struct EnsembleMember {
    uint8_t Status = 0; ///< sim::MemberStatus
    uint8_t Reason = 0; ///< sim::QuarantineReason
    int64_t DtRetries = 0;
    int64_t FaultSteps = 0;
    int64_t QuarantineStep = -1;
  };
  std::vector<EnsembleMember> EnsembleStatus;
};

/// Serializes \p C into a self-contained byte string (magic, version,
/// FNV-1a checksum, payload).
std::string serializeCheckpoint(const CheckpointData &C);

/// Parses \p Bytes. Any structural problem — bad magic, version mismatch,
/// checksum failure, truncation, inconsistent lengths — is a recoverable
/// error.
Expected<CheckpointData> deserializeCheckpoint(std::string_view Bytes);

/// Writes \p C to \p Path atomically (unique temp file + rename).
Status writeCheckpointFile(const CheckpointData &C, const std::string &Path);

/// Reads and parses one checkpoint file.
Expected<CheckpointData> readCheckpointFile(const std::string &Path);

/// A directory of rotated checkpoints: ckpt-<step>.lmpc files, newest
/// \p Retain kept, newest-valid discovery with corrupt-file fallback.
class CheckpointStore {
public:
  explicit CheckpointStore(std::string Dir, int Retain = 3);

  const std::string &dir() const { return Dir; }
  int retain() const { return Retain; }

  /// Creates the directory (mkdir -p) and probes it for writability, so
  /// an unwritable --checkpoint-dir is one clear recoverable error before
  /// the run starts rather than a failure at step 99,000.
  Status prepare() const;

  /// The file path a checkpoint of \p Step uses.
  std::string pathForStep(int64_t Step) const;

  /// Serializes, writes atomically, and prunes old files down to the
  /// retained count. The newly written file is never pruned.
  Status write(const CheckpointData &C) const;

  /// Checkpoint files in this directory, sorted by step ascending.
  /// Unparseable names are ignored.
  std::vector<std::string> list() const;

  /// Deletes the oldest checkpoints until at most retain() remain.
  void prune() const;

  /// Loads the newest checkpoint that parses and checksums, skipping (and
  /// counting) corrupt or truncated ones. \p PathOut / \p SkippedOut are
  /// optional. Fails when the directory holds no valid checkpoint.
  Expected<CheckpointData> loadNewestValid(std::string *PathOut = nullptr,
                                           int *SkippedOut = nullptr) const;

private:
  std::string Dir;
  int Retain;
};

//===----------------------------------------------------------------------===//
// Graceful shutdown
//===----------------------------------------------------------------------===//

/// Installs SIGINT/SIGTERM handlers that set the process-wide shutdown
/// flag (idempotent). The Simulator polls the flag at step boundaries.
/// Forwards to support/Signals (the one place signal disposition is
/// touched); embedding hosts can restore their own handlers with
/// support::restoreShutdownHandlers or support::ScopedSignalHandlers.
void installShutdownHandlers();

/// True once a shutdown signal (or requestShutdown) arrived.
bool shutdownRequested();

/// Sets the shutdown flag from code — deterministic kill-at-step in tests
/// and the fault-injection harness.
void requestShutdown();

/// Clears the flag (between runs in one process).
void clearShutdownRequest();

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_CHECKPOINT_H
