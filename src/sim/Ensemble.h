//===- Ensemble.h - Fault-isolated batched parameter sweeps -----*- C++-*-===//
//
// One compiled kernel, N parameter points: an EnsembleSpec describes a
// population of sweep members (per-member parameter overrides from a
// grid expression or a JSON member list), the builder lowers every swept
// parameter to a per-cell external and compiles the model ONCE, and the
// EnsembleRunner packs all members into a single StateBuffer so the
// whole sweep steps through the existing Scheduler at full vector speed.
//
// The payoff over N independent Simulators is twofold:
//   - amortization: one compile (plus one recovery-model compile at
//     most), one LUT build, one shard plan, contiguous vector stepping
//     across member boundaries (bench/EnsembleBench.cpp measures it);
//   - fault isolation: a pathological parameter point that blows up its
//     integration walks a *member-local* degradation ladder (dt-retry
//     from the member's slice of the last healthy checkpoint, then an
//     exact-scalar re-run of just that slice, then quarantine) while
//     every healthy member keeps stepping untouched. The run finishes
//     with partial results — "997/1000 ok, 3 quarantined" — instead of
//     dying on the worst member (docs/ENSEMBLE.md).
//
// Checkpoints carry a v3 ensemble section (member count, slice width,
// spec hash, per-member status), so a SIGKILL'd sweep resumes
// bit-identically, already-quarantined members included.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_ENSEMBLE_H
#define LIMPET_SIM_ENSEMBLE_H

#include "easyml/ModelInfo.h"
#include "sim/Simulator.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace limpet {
namespace sim {

/// Where a sweep member stands after (or during) a run.
enum class MemberStatus : uint8_t {
  Ok = 0,      ///< full-speed path, never faulted
  Recovered,   ///< healed by a member-local dt-retry
  ScalarExact, ///< permanently degraded to the exact scalar kernel
  Quarantined, ///< pinned to its last healthy state and excluded
};

/// Why a member was quarantined.
enum class QuarantineReason : uint8_t {
  None = 0,
  DtFloor,     ///< dt-halving ladder exhausted, no scalar fallback left
  ScalarFault, ///< faulted even on the exact scalar re-run
};

std::string_view memberStatusName(MemberStatus S);
std::string_view quarantineReasonName(QuarantineReason R);

/// One parameter override of one member.
struct ParamOverride {
  std::string Name;
  double Value = 0;
};

/// One sweep member: the parameter point it runs at.
struct MemberSpec {
  std::vector<ParamOverride> Overrides;
};

/// A parameter sweep: member list plus the number of cells each member
/// simulates. Model-independent — names are validated against a model by
/// buildEnsembleModel (and by the daemon at admission via fromSweep).
struct EnsembleSpec {
  int64_t CellsPerMember = 1;
  std::vector<MemberSpec> Members;

  int64_t numMembers() const { return int64_t(Members.size()); }
  int64_t numCells() const { return numMembers() * CellsPerMember; }

  /// Sorted union of every overridden parameter name (the set that gets
  /// lowered to per-cell externals).
  std::vector<std::string> sweptParams() const;

  /// Canonical text rendering (member order preserved, overrides sorted
  /// by name, values printed round-trippably); hash() digests it so a
  /// checkpoint can refuse to continue under a different sweep.
  std::string str() const;
  uint64_t hash() const;

  /// Parses a grid expression and expands its cross product:
  ///   "gK=0.1:0.5:5"            5 values linearly spaced over [0.1,0.5]
  ///   "gK=0.1:0.5:5;gNa=7,11"   5 x 2 = 10 members
  /// Each clause is name=lo:hi:n (n >= 1; n == 1 pins lo) or an explicit
  /// name=v1,v2,... list. Malformed grammar and non-finite values are
  /// recoverable errors.
  static Expected<EnsembleSpec> fromSweep(std::string_view Sweep,
                                          int64_t CellsPerMember = 1);

  /// Parses a JSON member list: either an array of {"name": value}
  /// objects, or {"cells_per_member": n, "members": [...]} (the wrapper
  /// form overrides \p CellsPerMember).
  static Expected<EnsembleSpec> fromJson(std::string_view Json,
                                         int64_t CellsPerMember = 1);
  static Expected<EnsembleSpec> fromJsonFile(const std::string &Path,
                                             int64_t CellsPerMember = 1);
};

/// Per-member outcome of an ensemble run, streamed as one NDJSON line
/// per member by limpetc --member-stats and the daemon's job runner.
struct MemberReport {
  int64_t Member = 0;
  MemberStatus Status = MemberStatus::Ok;
  QuarantineReason Reason = QuarantineReason::None;
  int64_t DtRetries = 0;      ///< member-local dt-halving re-runs
  int64_t FaultSteps = 0;     ///< nominal steps re-integrated for it
  int64_t QuarantineStep = -1; ///< step its state is pinned at (-1: none)
  double Checksum = 0;        ///< order-independent slice digest

  /// One compact NDJSON line ({"member":..,"status":..,...}).
  std::string json() const;
};

/// Returns \p Info with every name in \p Swept moved from the parameter
/// list to a read-only per-cell external (appended at the end, so the
/// indices of the model's own externals — Vm, Iion — are unchanged).
/// Codegen then emits a per-cell load for each reference, which is what
/// lets one compiled kernel run every member's parameter point. LUT
/// stages whose expressions depend on a swept parameter are implicitly
/// disabled by the same move (LUT eligibility requires parameters).
Expected<easyml::ModelInfo>
lowerSweptParams(const easyml::ModelInfo &Info,
                 const std::vector<std::string> &Swept);

/// A model compiled once for a whole sweep: the lowered kernel plus the
/// spec and the external-index mapping of each swept parameter. Owns the
/// CompiledModel; must outlive any EnsembleRunner built on it.
struct EnsembleModel {
  std::unique_ptr<exec::CompiledModel> Model;
  EnsembleSpec Spec;
  /// Swept parameter names (sorted; lowering append order).
  std::vector<std::string> Swept;
  /// External index of each swept parameter in the compiled model.
  std::vector<int> SweptExt;
  /// Default value of each swept parameter (members without an override
  /// for a name run at its default).
  std::vector<double> SweptDefault;

  const exec::CompiledModel &model() const { return *Model; }
};

/// Validates \p Spec against \p Info (unknown parameter names and
/// non-finite override values are recoverable errors), lowers the swept
/// parameters, and compiles once under \p Cfg. \p Cfg must be concrete
/// (auto width already resolved by the caller, e.g. through
/// compiler::selectAutoConfig).
Expected<EnsembleModel> buildEnsembleModel(const easyml::ModelInfo &Info,
                                           EnsembleSpec Spec,
                                           const exec::EngineConfig &Cfg);

/// Steps a whole parameter sweep as one population. Member M owns the
/// contiguous cell slice [M*CellsPerMember, (M+1)*CellsPerMember); the
/// inherited guarded run loop detects faults, and the overridden
/// recovery ladder handles them member-locally so healthy members never
/// roll back. Construct with Opts.NumCells ignored (the spec dictates
/// the population size).
class EnsembleRunner : public Simulator {
public:
  EnsembleRunner(const EnsembleModel &EM, const SimOptions &Opts);

  int64_t numMembers() const { return int64_t(Members.size()); }
  int64_t cellsPerMember() const { return CellsPer; }
  const EnsembleSpec &spec() const { return EM.Spec; }
  uint64_t specHash() const { return SpecHash; }

  MemberStatus memberStatus(int64_t M) const;
  int64_t membersQuarantined() const { return QuarantinedCount; }
  int64_t membersOk() const { return numMembers() - QuarantinedCount; }

  /// Order-independent digest of one member's slice (state + externals,
  /// member-local traversal, so the value is invariant to where the
  /// member sits in the packed population).
  double memberChecksum(int64_t M) const;

  /// Per-member outcomes with checksums filled in.
  std::vector<MemberReport> memberReports() const;

  /// All member reports as NDJSON (one line per member), the form the
  /// telemetry sink and limpetc --member-stats emit.
  std::string memberStatsNdjson() const;

  /// Member-partitioned health scan: with no quarantined member this is
  /// the base vectorized scan; once members are quarantined their pinned
  /// slices stop counting against population health.
  bool scanIsHealthy() const override;

protected:
  /// The member-local degradation ladder (replaces the population-wide
  /// rollback): for each faulting member — dt-retry its slice from the
  /// member's view of the last healthy checkpoint, then an exact-scalar
  /// re-run of just that slice, then quarantine. Healthy members keep
  /// the full-speed window they already stepped.
  void recoverWindow(int64_t Window) override;
  void annotateCheckpoint(CheckpointData &C) const override;
  Status validateResume(const CheckpointData &C) const override;
  void applyResume(const CheckpointData &C) override;

private:
  struct Member {
    MemberStatus Status = MemberStatus::Ok;
    QuarantineReason Reason = QuarantineReason::None;
    int64_t DtRetries = 0;
    int64_t FaultSteps = 0;
    int64_t QuarantineStep = -1;
  };

  /// Writes each member's parameter point into the lowered externals.
  void applyOverrides();
  bool memberSliceHealthy(int64_t M) const;
  /// Restores one member's cells from the in-memory checkpoint.
  void restoreMemberSlice(int64_t M);
  /// Re-integrates one member's slice over the failed window with the
  /// compiled kernel at dt/Substeps (block-aligned range; neighbor cells
  /// inside the widened range are saved and restored around the re-run).
  void rerunMemberWindow(int64_t M, int64_t Window, int Substeps);
  /// Re-integrates one member's slice with the exact scalar recovery
  /// kernel at nominal dt.
  void rerunMemberScalar(int64_t M, int64_t Window);
  void quarantineMember(int64_t M, QuarantineReason R);

  const EnsembleModel &EM;
  int64_t CellsPer = 1;
  uint64_t SpecHash = 0;
  std::vector<Member> Members;
  int64_t QuarantinedCount = 0;
  /// Scratch for saving neighbor cells around a block-aligned re-run.
  std::vector<double> NeighborBuf;
  std::vector<int64_t> NeighborCells;
};

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_ENSEMBLE_H
