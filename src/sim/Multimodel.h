//===- Multimodel.h - Parent/offspring model composition --------*- C++-*-===//
//
// The paper's multimodel support (Sec. 3.3.2): "Electrophysiology
// simulations also allow multiple models to interact, accessing the same
// data. This leads to a hierarchy of cells relying on a parent-offspring
// relation. Offspring cells are allowed to access and modify the content
// (or state) of their parent... If the parent information cannot be
// found, it falls through the common local variable storage."
//
// Composition model: a parent ionic model plus plugin (offspring) models
// over the same cell population. All models share the external arrays
// (Vm, Iion, ...), so a plugin written as `Iion = Iion + I_plugin;`
// accumulates onto the parent's current. A plugin external may further be
// *bound* to a parent state variable: before each plugin compute, the
// bound values are gathered out of the parent's (layout-transformed)
// state into the plugin's external array — and written back for bindings
// declared writable. Unbound plugin externals fall back to the plugin's
// local storage, reproducing the conditional-access semantics.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_MULTIMODEL_H
#define LIMPET_SIM_MULTIMODEL_H

#include "exec/CompiledModel.h"
#include "sim/Scheduler.h"
#include "sim/Simulator.h"
#include "sim/StateBuffer.h"

#include <memory>
#include <string>
#include <vector>

namespace limpet {
namespace sim {

/// Connects one plugin external to a parent state variable.
struct ParentBinding {
  std::string PluginExternal; ///< name of the external in the plugin model
  std::string ParentStateVar; ///< name of the state variable in the parent
  /// Writable bindings scatter the plugin's result back into the parent
  /// state ("offspring are allowed to modify the content of their
  /// parent").
  bool Writable = false;
};

/// Runs a parent model and any number of plugin models over one shared
/// cell population.
class MultimodelSimulator {
public:
  MultimodelSimulator(const exec::CompiledModel &Parent,
                      const SimOptions &Opts);

  /// Registers \p Plugin with the given parent-state bindings. Plugin
  /// externals with the same name as a parent external (e.g. Vm, Iion)
  /// share the parent's array automatically. Returns the plugin index.
  size_t addPlugin(const exec::CompiledModel &Plugin,
                   std::vector<ParentBinding> Bindings);

  /// Advances one step: parent compute, then every plugin compute (with
  /// bound parent state gathered in and scattered back), then the voltage
  /// update.
  void step();
  void run();

  double time() const { return T; }
  double vm(int64_t Cell) const;
  double parentState(int64_t Cell, int64_t Sv) const;
  double pluginState(size_t PluginIdx, int64_t Cell, int64_t Sv) const;
  /// The shared external array value seen by every model.
  double sharedExternal(std::string_view Name, int64_t Cell) const;

  /// The stepping loop this composition runs through (one shard plan for
  /// parent and plugins alike).
  const Scheduler &scheduler() const { return Sched; }

private:
  struct PluginInstance {
    const exec::CompiledModel *Model = nullptr;
    /// Plugin state + external storage in the plugin's compiled layout.
    /// Externals shared with the parent still get (unused) local arrays;
    /// the stage wiring points the kernel at the parent's array instead.
    std::unique_ptr<StateBuffer> Buf;
    /// Parent external backing each plugin external; -1 = local.
    std::vector<int> SharedIndex;
    /// Bound parent state (by plugin external index); -1 = unbound.
    std::vector<int> BoundParentSv;
    std::vector<bool> BoundWritable;
  };

  /// Rewires Stages (parent + one stage per plugin, with gather/scatter
  /// hooks for parent-state bindings). Called after every addPlugin, so
  /// pointers into PluginLuts/PluginParams are always current.
  void rebuildStages();

  const exec::CompiledModel &Parent;
  SimOptions Opts;
  Scheduler Sched;
  /// Parent state plus the shared external arrays (Vm, Iion, ...) every
  /// model steps against, keyed by the parent's external order.
  StateBuffer ParentBuf;
  std::vector<double> ParentParams;
  runtime::LutTableSet ParentLuts;
  std::vector<PluginInstance> Plugins;
  std::vector<std::vector<double>> PluginParams;
  std::vector<runtime::LutTableSet> PluginLuts;
  std::vector<KernelStage> Stages;
  int VmIdx = -1, IionIdx = -1;
  double T = 0;
};

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_MULTIMODEL_H
