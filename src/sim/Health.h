//===- Health.h - Numerical health scanning and run reporting ---*- C++-*-===//
//
// Guard-rail primitives for the simulation drivers: cheap, vectorizable
// bulk checks that detect NaN/Inf/out-of-physiological-range values in the
// state and voltage arrays, the per-cell degradation ladder, and the
// structured RunReport the fault-tolerant stepping loop produces.
//
// Production cardiac codes treat solver blow-up as an expected runtime
// event rather than a crash; these primitives let the Simulator detect a
// blow-up shortly after it happens, roll back, and re-integrate or degrade
// the affected cells (see docs/ROBUSTNESS.md).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_HEALTH_H
#define LIMPET_SIM_HEALTH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace limpet {
namespace sim {

/// Numerical bounds a healthy population must satisfy. The defaults are
/// deliberately generous: they only reject values no ionic model produces
/// when its integration is stable (NaN, Inf, |Vm| beyond a quarter volt,
/// state magnitudes beyond 1e12).
struct HealthPolicy {
  double VmLo = -250.0; ///< mV, lower physiological bound for Vm
  double VmHi = 250.0;  ///< mV, upper physiological bound for Vm
  /// Magnitude bound for state variables and non-Vm externals; NaN and
  /// Inf always fail it.
  double StateMagLimit = 1e12;
};

/// True when every value satisfies |v| <= Limit. NaN and +/-Inf fail the
/// comparison, so one branch-free pass catches all three fault classes.
/// The loop autovectorizes (abs + compare + accumulate per lane).
bool allWithinMagnitude(const double *Data, size_t N, double Limit);

/// True when every value lies in [Lo, Hi] (NaN fails).
bool allWithinRange(const double *Data, size_t N, double Lo, double Hi);

/// Per-cell position on the degradation ladder.
enum class CellMode : uint8_t {
  Normal = 0,   ///< full-speed engine path
  ScalarExact,  ///< degraded to the exact scalar (no-LUT, libm) kernel
  Frozen,       ///< pinned to its last healthy snapshot and flagged
};

std::string_view cellModeName(CellMode M);

/// What the fault-tolerant run loop did, surfaced through Simulator,
/// limpetc --run, faultinject and the bench harness.
struct RunReport {
  int64_t StepsTaken = 0;   ///< nominal steps completed
  int64_t HealthScans = 0;  ///< bulk scans performed
  int64_t FaultEvents = 0;  ///< scan windows that detected a fault
  int64_t FaultyCells = 0;  ///< cumulative faulty-cell observations
  int64_t Retries = 0;      ///< rollback + re-integration attempts
  int64_t Substeps = 0;     ///< extra kernel steps taken by dt halving
  int64_t CellsDegraded = 0; ///< cells currently on the scalar-exact path
  int64_t CellsFrozen = 0;   ///< cells pinned to their last healthy state
  double ScanSeconds = 0;     ///< wall time spent in health scans
  double RecoverySeconds = 0; ///< wall time spent rolling back/retrying
  double RunSeconds = 0;      ///< wall time of the whole guarded run

  /// True when no fault was ever detected.
  bool clean() const { return FaultEvents == 0; }

  /// Accumulates another report (used by bench repeats).
  void merge(const RunReport &Other);

  /// Multi-line human-readable rendering.
  std::string str() const;
};

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_HEALTH_H
