//===- Health.cpp ---------------------------------------------------------===//

#include "sim/Health.h"

#include <cmath>
#include <cstdio>

using namespace limpet;
using namespace limpet::sim;

bool sim::allWithinMagnitude(const double *Data, size_t N, double Limit) {
  // !(|v| <= Limit) is true for NaN, +/-Inf and overflowing magnitudes
  // alike; summing the predicate keeps the loop branch-free so the host
  // compiler vectorizes it.
  size_t Bad = 0;
  for (size_t I = 0; I != N; ++I)
    Bad += !(std::fabs(Data[I]) <= Limit);
  return Bad == 0;
}

bool sim::allWithinRange(const double *Data, size_t N, double Lo, double Hi) {
  size_t Bad = 0;
  for (size_t I = 0; I != N; ++I)
    Bad += !(Data[I] >= Lo && Data[I] <= Hi);
  return Bad == 0;
}

std::string_view sim::cellModeName(CellMode M) {
  switch (M) {
  case CellMode::Normal:
    return "normal";
  case CellMode::ScalarExact:
    return "scalar-exact";
  case CellMode::Frozen:
    return "frozen";
  }
  return "?";
}

void RunReport::merge(const RunReport &Other) {
  StepsTaken += Other.StepsTaken;
  HealthScans += Other.HealthScans;
  FaultEvents += Other.FaultEvents;
  FaultyCells += Other.FaultyCells;
  Retries += Other.Retries;
  Substeps += Other.Substeps;
  CellsDegraded += Other.CellsDegraded;
  CellsFrozen += Other.CellsFrozen;
  ScanSeconds += Other.ScanSeconds;
  RecoverySeconds += Other.RecoverySeconds;
  RunSeconds += Other.RunSeconds;
}

std::string RunReport::str() const {
  char Buf[512];
  std::snprintf(Buf, sizeof(Buf),
                "run report: steps=%lld scans=%lld faults=%lld "
                "faulty-cells=%lld retries=%lld substeps=%lld\n"
                "            degraded-cells=%lld frozen-cells=%lld\n",
                (long long)StepsTaken, (long long)HealthScans,
                (long long)FaultEvents, (long long)FaultyCells,
                (long long)Retries, (long long)Substeps,
                (long long)CellsDegraded, (long long)CellsFrozen);
  std::string Out = Buf;
  if (RunSeconds > 0) {
    double GuardSeconds = ScanSeconds + RecoverySeconds;
    std::snprintf(Buf, sizeof(Buf),
                  "            scan=%.3fms recovery=%.3fms "
                  "(%.2f%% of %.3fs run)\n",
                  ScanSeconds * 1e3, RecoverySeconds * 1e3,
                  100.0 * GuardSeconds / RunSeconds, RunSeconds);
    Out += Buf;
  }
  return Out;
}
