//===- Ensemble.cpp -------------------------------------------------------===//

#include "sim/Ensemble.h"

#include "compiler/Artifact.h"
#include "compiler/Serialize.h"
#include "daemon/Json.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace limpet;
using namespace limpet::sim;
using namespace limpet::exec;

namespace {
using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point T0) {
  return std::chrono::duration<double>(Clock::now() - T0).count();
}

/// Round-trippable double rendering (the canonical spec text is hashed,
/// so it must be byte-stable for a given value).
std::string fmtDouble(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}
} // namespace

std::string_view sim::memberStatusName(MemberStatus S) {
  switch (S) {
  case MemberStatus::Ok:
    return "ok";
  case MemberStatus::Recovered:
    return "recovered";
  case MemberStatus::ScalarExact:
    return "scalar-exact";
  case MemberStatus::Quarantined:
    return "quarantined";
  }
  return "unknown";
}

std::string_view sim::quarantineReasonName(QuarantineReason R) {
  switch (R) {
  case QuarantineReason::None:
    return "none";
  case QuarantineReason::DtFloor:
    return "dt-floor";
  case QuarantineReason::ScalarFault:
    return "scalar-fault";
  }
  return "unknown";
}

//===----------------------------------------------------------------------===//
// EnsembleSpec
//===----------------------------------------------------------------------===//

std::vector<std::string> EnsembleSpec::sweptParams() const {
  std::vector<std::string> Names;
  for (const MemberSpec &M : Members)
    for (const ParamOverride &O : M.Overrides)
      Names.push_back(O.Name);
  std::sort(Names.begin(), Names.end());
  Names.erase(std::unique(Names.begin(), Names.end()), Names.end());
  return Names;
}

std::string EnsembleSpec::str() const {
  std::string Out = "cells_per=" + std::to_string(CellsPerMember) + "\n";
  for (const MemberSpec &M : Members) {
    std::vector<ParamOverride> Sorted = M.Overrides;
    std::sort(Sorted.begin(), Sorted.end(),
              [](const ParamOverride &A, const ParamOverride &B) {
                return A.Name < B.Name;
              });
    bool First = true;
    for (const ParamOverride &O : Sorted) {
      if (!First)
        Out += ";";
      First = false;
      Out += O.Name + "=" + fmtDouble(O.Value);
    }
    Out += "\n";
  }
  return Out;
}

uint64_t EnsembleSpec::hash() const { return compiler::fnv1a64(str()); }

Expected<EnsembleSpec> EnsembleSpec::fromSweep(std::string_view Sweep,
                                               int64_t CellsPerMember) {
  if (CellsPerMember < 1)
    return Status::error("ensemble: cells-per-member must be >= 1");
  // Parse each ';'-separated clause into (name, values).
  struct Axis {
    std::string Name;
    std::vector<double> Values;
  };
  std::vector<Axis> Axes;
  size_t Pos = 0;
  while (Pos <= Sweep.size()) {
    size_t Semi = Sweep.find(';', Pos);
    std::string_view Clause = Sweep.substr(
        Pos, Semi == std::string_view::npos ? std::string_view::npos
                                            : Semi - Pos);
    Pos = Semi == std::string_view::npos ? Sweep.size() + 1 : Semi + 1;
    if (Clause.empty())
      continue;
    size_t Eq = Clause.find('=');
    if (Eq == std::string_view::npos || Eq == 0)
      return Status::error("ensemble sweep: clause '" + std::string(Clause) +
                           "' is not name=lo:hi:n or name=v1,v2,...");
    Axis A;
    A.Name = std::string(Clause.substr(0, Eq));
    std::string_view Vals = Clause.substr(Eq + 1);
    auto ParseNum = [](std::string_view S, double &Out) {
      if (S.empty())
        return false;
      char *EndP = nullptr;
      std::string Tmp(S);
      Out = std::strtod(Tmp.c_str(), &EndP);
      return EndP == Tmp.c_str() + Tmp.size() && std::isfinite(Out);
    };
    if (Vals.find(':') != std::string_view::npos) {
      // lo:hi:n linear grid.
      size_t C1 = Vals.find(':');
      size_t C2 = Vals.find(':', C1 + 1);
      double Lo = 0, Hi = 0, NRaw = 0;
      if (C2 == std::string_view::npos ||
          !ParseNum(Vals.substr(0, C1), Lo) ||
          !ParseNum(Vals.substr(C1 + 1, C2 - C1 - 1), Hi) ||
          !ParseNum(Vals.substr(C2 + 1), NRaw) || NRaw < 1 ||
          NRaw != std::floor(NRaw) || NRaw > 1e7)
        return Status::error("ensemble sweep: '" + std::string(Clause) +
                             "' is not name=lo:hi:n with integer n >= 1");
      int64_t N = int64_t(NRaw);
      for (int64_t I = 0; I != N; ++I)
        A.Values.push_back(
            N == 1 ? Lo : Lo + (Hi - Lo) * double(I) / double(N - 1));
    } else {
      size_t VPos = 0;
      while (VPos <= Vals.size()) {
        size_t Comma = Vals.find(',', VPos);
        std::string_view Tok = Vals.substr(
            VPos, Comma == std::string_view::npos ? std::string_view::npos
                                                  : Comma - VPos);
        VPos = Comma == std::string_view::npos ? Vals.size() + 1 : Comma + 1;
        double V = 0;
        if (!ParseNum(Tok, V))
          return Status::error("ensemble sweep: '" + std::string(Tok) +
                               "' in clause '" + std::string(Clause) +
                               "' is not a finite number");
        A.Values.push_back(V);
      }
    }
    if (A.Values.empty())
      return Status::error("ensemble sweep: clause '" + std::string(Clause) +
                           "' has no values");
    for (const Axis &Prev : Axes)
      if (Prev.Name == A.Name)
        return Status::error("ensemble sweep: parameter '" + A.Name +
                             "' appears in two clauses");
    Axes.push_back(std::move(A));
  }
  if (Axes.empty())
    return Status::error("ensemble sweep: empty sweep expression");

  // Cross product, first axis slowest (row-major over the grid).
  int64_t Total = 1;
  for (const Axis &A : Axes) {
    Total *= int64_t(A.Values.size());
    if (Total > 1000000)
      return Status::error(
          "ensemble sweep: cross product exceeds 1,000,000 members");
  }
  EnsembleSpec Spec;
  Spec.CellsPerMember = CellsPerMember;
  Spec.Members.resize(size_t(Total));
  int64_t Repeat = Total;
  for (const Axis &A : Axes) {
    int64_t N = int64_t(A.Values.size());
    Repeat /= N;
    for (int64_t M = 0; M != Total; ++M)
      Spec.Members[size_t(M)].Overrides.push_back(
          {A.Name, A.Values[size_t((M / Repeat) % N)]});
  }
  return Spec;
}

Expected<EnsembleSpec> EnsembleSpec::fromJson(std::string_view Json,
                                              int64_t CellsPerMember) {
  auto Doc = daemon::JsonValue::parse(Json);
  if (!Doc)
    return Status::error("ensemble spec: " + Doc.status().message());
  const daemon::JsonValue *List = &*Doc;
  if (Doc->isObject()) {
    CellsPerMember = Doc->intOr("cells_per_member", CellsPerMember);
    List = Doc->find("members");
    if (!List)
      return Status::error(
          "ensemble spec: object form needs a 'members' array");
  }
  if (!List->isArray())
    return Status::error("ensemble spec: member list must be a JSON array");
  if (CellsPerMember < 1)
    return Status::error("ensemble: cells-per-member must be >= 1");
  EnsembleSpec Spec;
  Spec.CellsPerMember = CellsPerMember;
  for (const daemon::JsonValue &M : List->items()) {
    if (!M.isObject())
      return Status::error(
          "ensemble spec: each member must be a {\"name\": value} object");
    MemberSpec MS;
    for (const auto &[Name, V] : M.members()) {
      if (!V.isNumber() || !std::isfinite(V.asNumber()))
        return Status::error("ensemble spec: override '" + Name +
                             "' must be a finite number");
      MS.Overrides.push_back({Name, V.asNumber()});
    }
    Spec.Members.push_back(std::move(MS));
  }
  if (Spec.Members.empty())
    return Status::error("ensemble spec: member list is empty");
  return Spec;
}

Expected<EnsembleSpec> EnsembleSpec::fromJsonFile(const std::string &Path,
                                                  int64_t CellsPerMember) {
  std::string Bytes;
  if (Status S = compiler::readFileBytes(Path, Bytes); !S)
    return S;
  return fromJson(Bytes, CellsPerMember);
}

//===----------------------------------------------------------------------===//
// MemberReport
//===----------------------------------------------------------------------===//

std::string MemberReport::json() const {
  daemon::JsonValue J = daemon::JsonValue::object();
  J.set("member", daemon::JsonValue::number(Member));
  J.set("status", daemon::JsonValue::string(memberStatusName(Status)));
  if (Status == MemberStatus::Quarantined) {
    J.set("reason", daemon::JsonValue::string(quarantineReasonName(Reason)));
    J.set("quarantine_step", daemon::JsonValue::number(QuarantineStep));
  }
  J.set("dt_retries", daemon::JsonValue::number(DtRetries));
  J.set("fault_steps", daemon::JsonValue::number(FaultSteps));
  J.set("checksum", daemon::JsonValue::string(fmtDouble(Checksum)));
  return J.str();
}

//===----------------------------------------------------------------------===//
// Lowering + one-shot compile
//===----------------------------------------------------------------------===//

Expected<easyml::ModelInfo>
sim::lowerSweptParams(const easyml::ModelInfo &Info,
                      const std::vector<std::string> &Swept) {
  easyml::ModelInfo Out = Info;
  for (const std::string &Name : Swept) {
    int Idx = Out.paramIndex(Name);
    if (Idx < 0)
      return Status::error("ensemble: unknown parameter '" + Name +
                           "' for model '" + Info.Name + "'");
    if (Out.externalIndex(Name) >= 0)
      return Status::error("ensemble: parameter '" + Name +
                           "' shadows an external of model '" + Info.Name +
                           "'");
    // Appended at the end so the model's own external indices (Vm,
    // Iion) are unchanged; codegen resolves names external-before-
    // parameter, so every reference becomes a per-cell load.
    easyml::ExternalInfo E;
    E.Name = Name;
    E.Init = Out.Params[size_t(Idx)].DefaultValue;
    E.IsRead = true;
    E.IsComputed = false;
    Out.Externals.push_back(std::move(E));
    Out.Params.erase(Out.Params.begin() + Idx);
  }
  return Out;
}

Expected<EnsembleModel>
sim::buildEnsembleModel(const easyml::ModelInfo &Info, EnsembleSpec Spec,
                        const exec::EngineConfig &Cfg) {
  if (Spec.CellsPerMember < 1)
    return Status::error("ensemble: cells-per-member must be >= 1");
  if (Spec.Members.empty())
    return Status::error("ensemble: spec has no members");
  for (size_t M = 0; M != Spec.Members.size(); ++M)
    for (const ParamOverride &O : Spec.Members[M].Overrides) {
      if (Info.paramIndex(O.Name) < 0)
        return Status::error("ensemble: member " + std::to_string(M) +
                             " overrides unknown parameter '" + O.Name +
                             "' of model '" + Info.Name + "'");
      if (!std::isfinite(O.Value))
        return Status::error("ensemble: member " + std::to_string(M) +
                             " has a non-finite value for '" + O.Name + "'");
    }

  EnsembleModel EM;
  EM.Swept = Spec.sweptParams();
  auto Lowered = lowerSweptParams(Info, EM.Swept);
  if (!Lowered)
    return Lowered.status();
  std::string Error;
  auto M = CompiledModel::compile(*Lowered, Cfg, &Error);
  if (!M)
    return Status::error("ensemble: model compile failed: " + Error);
  EM.Model = std::make_unique<CompiledModel>(std::move(*M));
  telemetry::counter("sim.ensemble.compiles").add(1);

  // Map each swept name through the *compiled* model's info (the
  // pipeline preserves external order, but resolve defensively).
  for (const std::string &Name : EM.Swept) {
    int J = EM.Model->info().externalIndex(Name);
    if (J < 0)
      return Status::error("ensemble: internal error: lowered parameter '" +
                           Name + "' lost its external slot");
    EM.SweptExt.push_back(J);
    EM.SweptDefault.push_back(
        EM.Model->info().Externals[size_t(J)].Init);
  }
  EM.Spec = std::move(Spec);
  return EM;
}

//===----------------------------------------------------------------------===//
// EnsembleRunner
//===----------------------------------------------------------------------===//

namespace {
/// The spec dictates the population size; everything else in SimOptions
/// passes through.
SimOptions ensembleOpts(const EnsembleModel &EM, SimOptions Opts) {
  Opts.NumCells = EM.Spec.numCells();
  return Opts;
}
} // namespace

EnsembleRunner::EnsembleRunner(const EnsembleModel &EMIn,
                               const SimOptions &OptsIn)
    : Simulator(EMIn.model(), ensembleOpts(EMIn, OptsIn)), EM(EMIn),
      CellsPer(EMIn.Spec.CellsPerMember), SpecHash(EMIn.Spec.hash()),
      Members(EMIn.Spec.Members.size()) {
  applyOverrides();
  telemetry::counter("sim.ensemble.members").add(uint64_t(Members.size()));
}

void EnsembleRunner::applyOverrides() {
  // Every member starts at the defaults (StateBuffer initialized the
  // lowered externals from their Init values); write each member's
  // parameter point over its slice.
  for (size_t M = 0; M != EM.Spec.Members.size(); ++M) {
    int64_t Begin = int64_t(M) * CellsPer;
    for (const ParamOverride &O : EM.Spec.Members[M].Overrides) {
      auto It = std::find(EM.Swept.begin(), EM.Swept.end(), O.Name);
      size_t SweptIdx = size_t(It - EM.Swept.begin());
      size_t Ext = size_t(EM.SweptExt[SweptIdx]);
      for (int64_t C = Begin; C != Begin + CellsPer; ++C)
        Buf.writeExt(Ext, C, O.Value);
    }
  }
}

MemberStatus EnsembleRunner::memberStatus(int64_t M) const {
  if (M < 0 || M >= numMembers())
    return MemberStatus::Ok;
  return Members[size_t(M)].Status;
}

double EnsembleRunner::memberChecksum(int64_t M) const {
  if (M < 0 || M >= numMembers())
    return 0;
  double Sum = 0;
  unsigned NumSv = Model.program().NumSv;
  int64_t Begin = M * CellsPer, End = Begin + CellsPer;
  for (int64_t C = Begin; C != End; ++C) {
    for (unsigned S = 0; S != NumSv; ++S)
      Sum += Buf.readState(C, S);
    for (size_t J = 0; J != Buf.numExternals(); ++J)
      Sum += Buf.readExt(J, C);
  }
  return Sum;
}

std::vector<MemberReport> EnsembleRunner::memberReports() const {
  std::vector<MemberReport> Out;
  Out.reserve(Members.size());
  for (size_t M = 0; M != Members.size(); ++M) {
    const Member &S = Members[M];
    MemberReport R;
    R.Member = int64_t(M);
    R.Status = S.Status;
    R.Reason = S.Reason;
    R.DtRetries = S.DtRetries;
    R.FaultSteps = S.FaultSteps;
    R.QuarantineStep = S.QuarantineStep;
    R.Checksum = memberChecksum(int64_t(M));
    Out.push_back(R);
  }
  return Out;
}

std::string EnsembleRunner::memberStatsNdjson() const {
  std::string Out;
  for (const MemberReport &R : memberReports()) {
    Out += R.json();
    Out += "\n";
  }
  return Out;
}

bool EnsembleRunner::memberSliceHealthy(int64_t M) const {
  const HealthPolicy &P = Opts.Guard.Policy;
  unsigned NumSv = Model.program().NumSv;
  int64_t Begin = M * CellsPer, End = Begin + CellsPer;
  for (int64_t C = Begin; C != End; ++C) {
    for (unsigned S = 0; S != NumSv; ++S)
      if (!(std::fabs(Buf.readState(C, S)) <= P.StateMagLimit))
        return false;
    for (size_t J = 0; J != Buf.numExternals(); ++J) {
      double V = Buf.readExt(J, C);
      bool Ok = int(J) == VmIdx ? (V >= P.VmLo && V <= P.VmHi)
                                : (std::fabs(V) <= P.StateMagLimit);
      if (!Ok)
        return false;
    }
  }
  return true;
}

bool EnsembleRunner::scanIsHealthy() const {
  // Fast path: no quarantined member yet, one vectorized pass.
  if (QuarantinedCount == 0)
    return Simulator::scanIsHealthy();
  // Member-partitioned scan: quarantined slices are pinned to their last
  // healthy state each step, but they must never fail the population
  // even if a pin lands mid-restore; everyone else is scanned normally.
  for (int64_t M = 0; M != numMembers(); ++M)
    if (Members[size_t(M)].Status != MemberStatus::Quarantined &&
        !memberSliceHealthy(M))
      return false;
  return true;
}

void EnsembleRunner::restoreMemberSlice(int64_t M) {
  unsigned NumSv = Model.program().NumSv;
  int64_t Begin = M * CellsPer, End = Begin + CellsPer;
  for (int64_t C = Begin; C != End; ++C) {
    for (unsigned S = 0; S != NumSv; ++S)
      Buf.writeState(C, S, Buf.snapshotState(Ck.Snap, C, S));
    for (size_t J = 0; J != Buf.numExternals(); ++J)
      Buf.writeExt(J, C, Ck.Snap.Exts[J][size_t(C)]);
  }
}

void EnsembleRunner::rerunMemberWindow(int64_t M, int64_t Window,
                                       int Substeps) {
  int64_t Begin = M * CellsPer, End = Begin + CellsPer;
  // AoSoA vector kernels must start on a block boundary, so widen the
  // range outward to whole blocks and save/restore the neighbor cells
  // caught in it — only this member's trajectory may change.
  int64_t BW = int64_t(std::max(Buf.blockWidth(), 1u));
  int64_t RBegin = Begin - (Begin % BW);
  int64_t REnd = std::min((End + BW - 1) / BW * BW, Opts.NumCells);
  unsigned NumSv = Model.program().NumSv;
  size_t NumExt = Buf.numExternals();
  size_t PerCell = size_t(NumSv) + NumExt;
  NeighborCells.clear();
  for (int64_t C = RBegin; C != REnd; ++C)
    if (C < Begin || C >= End)
      NeighborCells.push_back(C);
  NeighborBuf.resize(NeighborCells.size() * PerCell);
  for (size_t I = 0; I != NeighborCells.size(); ++I)
    Buf.gatherCell(NeighborCells[I], &NeighborBuf[I * PerCell],
                   &NeighborBuf[I * PerCell] + NumSv);

  double MT = Ck.T;
  double SubDt = Opts.Dt / Substeps;
  bool TraceHere = Opts.RecordTrace && VmIdx >= 0 &&
                   Opts.TraceCell >= Begin && Opts.TraceCell < End;
  for (int64_t Step = 0; Step != Window; ++Step) {
    for (int S = 0; S != Substeps; ++S) {
      KernelArgs Args;
      Args.State = Buf.state();
      Args.Exts = Buf.extPointers();
      Args.Params = Params.data();
      Args.Start = RBegin;
      Args.End = REnd;
      Args.NumCells = Opts.NumCells;
      Args.Dt = SubDt;
      Args.T = MT;
      Args.Luts = &SimLuts;
      Model.computeStep(Args);
      if (hasVoltageCoupling()) {
        // Same stimulus formula as voltageStage, at the member-local
        // re-run time.
        double Phase = MT;
        if (Opts.StimPeriod > 0)
          Phase = std::fmod(MT, Opts.StimPeriod);
        double Stim = (Phase >= Opts.StimStart &&
                       Phase < Opts.StimStart + Opts.StimDuration)
                          ? Opts.StimStrength
                          : 0.0;
        double *Vm = Buf.ext(size_t(VmIdx));
        const double *Iion = Buf.ext(size_t(IionIdx));
        for (int64_t C = RBegin; C != REnd; ++C)
          Vm[C] += SubDt * (Stim - Iion[C]);
      }
      MT += SubDt;
    }
    if (Substeps > 1)
      Report.Substeps += Substeps - 1;
    // The failed fast-path window already pushed trace entries for these
    // steps; overwrite them with the healed trajectory when the traced
    // cell lives in this member.
    if (TraceHere && Ck.TraceLen + size_t(Step) < Trace.size())
      Trace[Ck.TraceLen + size_t(Step)] =
          Buf.readExt(size_t(VmIdx), Opts.TraceCell);
  }

  for (size_t I = 0; I != NeighborCells.size(); ++I)
    Buf.scatterCell(NeighborCells[I], &NeighborBuf[I * PerCell],
                    &NeighborBuf[I * PerCell] + NumSv);
}

void EnsembleRunner::rerunMemberScalar(int64_t M, int64_t Window) {
  int64_t Begin = M * CellsPer, End = Begin + CellsPer;
  unsigned NumSv = Model.program().NumSv;
  size_t NumExt = Buf.numExternals();
  std::vector<double> Sv(NumSv), Ext(NumExt);
  double MT = Ck.T;
  bool TraceHere = Opts.RecordTrace && VmIdx >= 0 &&
                   Opts.TraceCell >= Begin && Opts.TraceCell < End;
  for (int64_t Step = 0; Step != Window; ++Step) {
    double Phase = MT;
    if (Opts.StimPeriod > 0)
      Phase = std::fmod(MT, Opts.StimPeriod);
    double Stim = (Phase >= Opts.StimStart &&
                   Phase < Opts.StimStart + Opts.StimDuration)
                      ? Opts.StimStrength
                      : 0.0;
    for (int64_t C = Begin; C != End; ++C) {
      Buf.gatherCell(C, Sv.data(), Ext.data());
      KernelArgs Args;
      Args.Params = Params.data();
      Args.Start = 0;
      Args.End = 1;
      Args.NumCells = 1;
      Args.Dt = Opts.Dt;
      Args.T = MT;
      Args.Exts.resize(NumExt);
      for (size_t J = 0; J != NumExt; ++J)
        Args.Exts[J] = &Ext[J];
      Args.State = Sv.data();
      RecoveryModel->computeStep(Args);
      if (hasVoltageCoupling())
        Ext[size_t(VmIdx)] +=
            Opts.Dt * (Stim - Ext[size_t(IionIdx)]);
      Buf.scatterCell(C, Sv.data(), Ext.data());
    }
    MT += Opts.Dt;
    if (TraceHere && Ck.TraceLen + size_t(Step) < Trace.size())
      Trace[Ck.TraceLen + size_t(Step)] =
          Buf.readExt(size_t(VmIdx), Opts.TraceCell);
  }
}

void EnsembleRunner::quarantineMember(int64_t M, QuarantineReason R) {
  int64_t Begin = M * CellsPer, End = Begin + CellsPer;
  // Pin every cell of the member to its value in the last healthy
  // checkpoint; finishStep keeps re-pinning them each step, so the fast
  // path can keep streaming over the lanes without the member's poison
  // parameters ever counting against population health again.
  for (int64_t C = Begin; C != End; ++C)
    freezeCell(C);
  restoreFrozenCells();
  Member &S = Members[size_t(M)];
  S.Status = MemberStatus::Quarantined;
  S.Reason = R;
  S.QuarantineStep = Ck.StepCount;
  ++QuarantinedCount;
  telemetry::counter("sim.ensemble.quarantined").add(1);
}

void EnsembleRunner::recoverWindow(int64_t Window) {
  telemetry::TraceSpan Span("ensemble-recovery", "sim");
  auto T0 = Clock::now();
  double ScanSecondsAtEntry = Report.ScanSeconds;
  const GuardRailOptions &G = Opts.Guard;
  ++Report.FaultEvents;

  // Map faulty cells onto members, skipping quarantined slices (their
  // pins can transiently read dirty if an injector pokes them).
  std::vector<int64_t> BadMembers;
  int64_t BadCells = 0;
  for (int64_t C : faultyCells()) {
    int64_t M = C / CellsPer;
    if (Members[size_t(M)].Status == MemberStatus::Quarantined)
      continue;
    ++BadCells;
    if (BadMembers.empty() || BadMembers.back() != M)
      BadMembers.push_back(M);
  }
  Report.FaultyCells += BadCells;

  // Corrupted LUT tables poison every re-run identically; skip straight
  // to the scalar-exact rung, as the base ladder does.
  bool TablesBroken = !SimLuts.allFinite();

  // Members are handled serially in ascending order: the ladder for one
  // member touches only its own slice (plus saved-and-restored block
  // neighbors), which is what makes the outcome independent of thread
  // count and of which other members fault.
  for (int64_t M : BadMembers) {
    Member &S = Members[size_t(M)];
    S.FaultSteps += Window;

    // Rung 1: re-integrate just this member's slice from its view of
    // the last healthy checkpoint, halving dt per retry.
    bool Healed = false;
    for (int Retry = 1; !TablesBroken && !Healed && Retry <= G.MaxRetries;
         ++Retry) {
      restoreMemberSlice(M);
      ++Report.Retries;
      ++S.DtRetries;
      rerunMemberWindow(M, Window, 1 << Retry);
      Healed = memberSliceHealthy(M);
    }
    if (Healed) {
      if (S.Status == MemberStatus::Ok)
        S.Status = MemberStatus::Recovered;
      continue;
    }

    // Rung 2: exact-scalar re-run of just this slice at nominal dt; on
    // success the member stays on the scalar path for the rest of the
    // run.
    if (G.AllowScalarFallback && ensureRecoveryModel()) {
      restoreMemberSlice(M);
      rerunMemberScalar(M, Window);
      if (memberSliceHealthy(M)) {
        for (int64_t C = M * CellsPer; C != (M + 1) * CellsPer; ++C)
          degradeToScalar(C);
        S.Status = MemberStatus::ScalarExact;
        continue;
      }
      quarantineMember(M, QuarantineReason::ScalarFault);
      continue;
    }

    // Rung 3: no scalar fallback left — the member hit its dt floor.
    quarantineMember(M, QuarantineReason::DtFloor);
  }

  // Defensive last resort, mirroring the base ladder: anything still
  // unhealthy (e.g. a fault that straddles the member pattern) is frozen
  // in place so the population is clean by construction.
  if (!timedScan()) {
    for (int64_t C : faultyCells())
      if (Members[size_t(C / CellsPer)].Status != MemberStatus::Quarantined)
        freezeCell(C);
    restoreFrozenCells();
  }
  takeCheckpoint();
  double ScanPortion = Report.ScanSeconds - ScanSecondsAtEntry;
  Report.RecoverySeconds += secondsSince(T0) - ScanPortion;
}

//===----------------------------------------------------------------------===//
// Checkpoint integration (v3 ensemble section)
//===----------------------------------------------------------------------===//

void EnsembleRunner::annotateCheckpoint(CheckpointData &C) const {
  C.EnsembleMembers = numMembers();
  C.EnsembleCellsPerMember = CellsPer;
  C.EnsembleSpecHash = SpecHash;
  C.EnsembleStatus.resize(Members.size());
  for (size_t M = 0; M != Members.size(); ++M) {
    const Member &S = Members[M];
    C.EnsembleStatus[M] = {uint8_t(S.Status), uint8_t(S.Reason), S.DtRetries,
                           S.FaultSteps, S.QuarantineStep};
  }
}

Status EnsembleRunner::validateResume(const CheckpointData &C) const {
  if (C.TissueNX > 0)
    return Status::error("cannot resume: checkpoint is a tissue run; "
                         "resume it with a tissue simulator");
  if (C.EnsembleMembers == 0)
    return Status::error("cannot resume: checkpoint is not an ensemble "
                         "run; resume it with a plain simulator");
  if (C.EnsembleMembers != numMembers() ||
      C.EnsembleCellsPerMember != CellsPer)
    return Status::error(
        "cannot resume: ensemble shape mismatch (checkpoint has " +
        std::to_string(C.EnsembleMembers) + " members x " +
        std::to_string(C.EnsembleCellsPerMember) + " cells, this sweep is " +
        std::to_string(numMembers()) + " x " + std::to_string(CellsPer) +
        ")");
  if (C.EnsembleSpecHash != SpecHash)
    return Status::error("cannot resume: checkpoint was captured under a "
                         "different sweep (spec hash mismatch)");
  if (int64_t(C.EnsembleStatus.size()) != numMembers())
    return Status::error("cannot resume: ensemble member-status section "
                         "does not match the member count");
  return Status::success();
}

void EnsembleRunner::applyResume(const CheckpointData &C) {
  QuarantinedCount = 0;
  for (size_t M = 0; M != Members.size(); ++M) {
    const CheckpointData::EnsembleMember &E = C.EnsembleStatus[M];
    Member &S = Members[M];
    S.Status = MemberStatus(E.Status);
    S.Reason = QuarantineReason(E.Reason);
    S.DtRetries = E.DtRetries;
    S.FaultSteps = E.FaultSteps;
    S.QuarantineStep = E.QuarantineStep;
    if (S.Status == MemberStatus::Quarantined)
      ++QuarantinedCount;
  }
}
