//===- Diffusion.cpp ------------------------------------------------------===//

#include "sim/Diffusion.h"

#include "runtime/VecMath.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

using namespace limpet;
using namespace limpet::sim;

const char *limpet::sim::diffusionMethodName(DiffusionMethod M) {
  switch (M) {
  case DiffusionMethod::FTCS:
    return "ftcs";
  case DiffusionMethod::CrankNicolson:
    return "cn";
  }
  return "ftcs";
}

Expected<DiffusionMethod>
limpet::sim::parseDiffusionMethod(std::string_view Name) {
  if (Name == "ftcs" || Name == "explicit")
    return DiffusionMethod::FTCS;
  if (Name == "cn" || Name == "crank-nicolson" || Name == "cranknicolson")
    return DiffusionMethod::CrankNicolson;
  return Status::error("unknown diffusion method '" + std::string(Name) +
                       "' (expected 'ftcs' or 'cn')");
}

DiffusionOperator::DiffusionOperator(const TissueGrid &GIn, double SigmaIn,
                                     DiffusionMethod MIn)
    : G(GIn), Sigma(SigmaIn), M(MIn) {
  if (!G.valid()) {
    G.NX = std::max<int64_t>(G.NX, 1);
    G.NY = std::max<int64_t>(G.NY, 1);
    if (!(G.Dx > 0))
      G.Dx = 0.025;
  }
  if (!(Sigma >= 0))
    Sigma = 0;
  Snap.resize(size_t(G.numNodes()), 0.0);
}

double DiffusionOperator::maxStableDt() const {
  if (M == DiffusionMethod::CrankNicolson)
    return std::numeric_limits<double>::infinity();
  if (Sigma <= 0)
    return std::numeric_limits<double>::infinity();
  double Dims = G.is2D() ? 2.0 : 1.0;
  return G.Dx * G.Dx / (2.0 * Sigma * Dims);
}

void DiffusionOperator::publish(const double *Vm, int64_t Begin,
                                int64_t End) {
  Begin = std::max<int64_t>(Begin, 0);
  End = std::min(End, G.numNodes());
  if (Begin < End)
    std::memcpy(Snap.data() + Begin, Vm + Begin,
                size_t(End - Begin) * sizeof(double));
}

void DiffusionOperator::applyFromSnapshot(double *Vm, double Dt,
                                          int64_t Begin, int64_t End) {
  Begin = std::max<int64_t>(Begin, 0);
  End = std::min(End, G.numNodes());
  if (Begin >= End || Sigma <= 0 || Dt <= 0)
    return;
  double K = Sigma * Dt / (G.Dx * G.Dx);
  if (G.is2D())
    applyFTCS2D(Vm, K, K, Begin, End);
  else
    applyFTCS1D(Vm, K, Begin, End);
}

void DiffusionOperator::applyFTCS1D(double *Vm, double K, int64_t Begin,
                                    int64_t End) {
  const double *S = Snap.data();
  int64_t N = G.numNodes();
  // Boundary nodes in flux form (ghost = edge value, i.e. zero boundary
  // flux), so the update telescopes and total Vm is conserved.
  if (Begin == 0)
    Vm[0] = S[0] + K * (S[std::min<int64_t>(1, N - 1)] - S[0]);
  if (End == N && N > 1)
    Vm[N - 1] = S[N - 1] + K * (S[N - 2] - S[N - 1]);
  vecmath::stencil3(Vm, S, K, std::max<int64_t>(Begin, 1),
                    std::min(End, N - 1));
}

void DiffusionOperator::applyFTCS2D(double *Vm, double KX, double KY,
                                    int64_t Begin, int64_t End) {
  const int64_t NX = G.NX, NY = G.NY;
  for (int64_t Y = Begin / NX; Y * NX < End; ++Y) {
    int64_t RowBegin = Y * NX;
    int64_t XLo = std::max(Begin, RowBegin) - RowBegin;
    int64_t XHi = std::min(End, RowBegin + NX) - RowBegin;
    const double *Row = Snap.data() + RowBegin;
    // No-flux rows: the ghost row outside the sheet is the edge row
    // itself (zero flux in flux form).
    const double *Up = Y > 0 ? Row - NX : Row;
    const double *Dn = Y + 1 < NY ? Row + NX : Row;
    double *Out = Vm + RowBegin;
    if (XLo == 0) {
      int64_t XR = std::min<int64_t>(1, NX - 1);
      Out[0] = Row[0] + KX * (Row[XR] - Row[0]) +
               KY * (Up[0] - 2.0 * Row[0] + Dn[0]);
    }
    if (XHi == NX && NX > 1) {
      int64_t E = NX - 1;
      Out[E] = Row[E] + KX * (Row[E - 1] - Row[E]) +
               KY * (Up[E] - 2.0 * Row[E] + Dn[E]);
    }
    vecmath::stencil5Row(Out, Row, Up, Dn, KX, KY,
                         std::max<int64_t>(XLo, 1),
                         std::min<int64_t>(XHi, NX - 1));
  }
}

void DiffusionOperator::applyCrankNicolson(double *Vm, double Dt) {
  assert(!G.is2D() && "Crank-Nicolson solve is 1D only");
  int64_t N = G.numNodes();
  if (N < 2 || Sigma <= 0 || Dt <= 0)
    return;
  double R2 = 0.5 * Sigma * Dt / (G.Dx * G.Dx);
  CnRhs.resize(size_t(N));
  CnC.resize(size_t(N));

  // Right-hand side: the explicit trapezoidal half, in the same flux
  // form as FTCS (no-flux boundaries).
  CnRhs[0] = Vm[0] + R2 * (Vm[1] - Vm[0]);
  for (int64_t I = 1; I < N - 1; ++I)
    CnRhs[size_t(I)] = Vm[I] + R2 * (Vm[I - 1] - 2.0 * Vm[I] + Vm[I + 1]);
  CnRhs[size_t(N - 1)] = Vm[N - 1] + R2 * (Vm[N - 2] - Vm[N - 1]);

  // Thomas sweep over (I - R2*L): diagonal 1 + R2*degree, off-diagonals
  // -R2; degree is 1 at the no-flux ends, 2 in the interior.
  double Diag0 = 1.0 + R2;
  CnC[0] = -R2 / Diag0;
  CnRhs[0] /= Diag0;
  for (int64_t I = 1; I < N; ++I) {
    double Diag = 1.0 + R2 * (I == N - 1 ? 1.0 : 2.0);
    double Inv = 1.0 / (Diag + R2 * CnC[size_t(I - 1)]);
    CnC[size_t(I)] = -R2 * Inv;
    CnRhs[size_t(I)] = (CnRhs[size_t(I)] + R2 * CnRhs[size_t(I - 1)]) * Inv;
  }
  Vm[N - 1] = CnRhs[size_t(N - 1)];
  for (int64_t I = N - 2; I >= 0; --I)
    Vm[I] = CnRhs[size_t(I)] - CnC[size_t(I)] * Vm[I + 1];
}

void DiffusionOperator::step(double *Vm, double Dt) {
  if (M == DiffusionMethod::CrankNicolson && !G.is2D()) {
    applyCrankNicolson(Vm, Dt);
    return;
  }
  publish(Vm, 0, G.numNodes());
  applyFromSnapshot(Vm, Dt, 0, G.numNodes());
}

uint64_t DiffusionOperator::bytesLoadedPerStep() const {
  // Publish reads Vm once; the stencil (or CN rhs + sweep) reads the
  // snapshot once. Modeled minimum traffic, like the kernel byte counts.
  return 2 * uint64_t(G.numNodes()) * sizeof(double);
}

uint64_t DiffusionOperator::bytesStoredPerStep() const {
  // Publish writes the snapshot; the stencil writes Vm.
  return 2 * uint64_t(G.numNodes()) * sizeof(double);
}
