//===- Stimulus.h - Scriptable tissue stimulus protocols --------*- C++-*-===//
//
// Stimulus protocols for the tissue layer: an ordered list of regional
// current-injection events, each a rectangular node region, an onset
// time, a pulse duration/strength and an optional pulse train (period x
// count). Activity is a pure function of simulation time, so applying a
// protocol is deterministic, cell-local, and bit-identical across shard
// counts and across checkpoint/resume.
//
// Factories cover the standard electrophysiology protocols — S1-S2
// premature pacing (CV restitution) and cross-field stimulation (spiral
// wave induction) — and parse() accepts the --stim=<proto> grammar
// documented in docs/TISSUE.md:
//
//   s1s2:period=300,count=8,s2=260,amp=40,dur=2,width=5
//   cross:s1amp=40,s1dur=2,s2start=165,s2amp=40,s2dur=3
//   region:x0=0,x1=4,y0=0,y1=-1,start=1,dur=2,amp=30,period=100,count=0
//   none
//
// Multiple clauses can be chained with ';' and every key has a default,
// so "s1s2" alone is a valid protocol.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_SIM_STIMULUS_H
#define LIMPET_SIM_STIMULUS_H

#include "sim/Grid.h"
#include "support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace limpet {
namespace sim {

/// An inclusive rectangular node region; -1 means "to the grid edge".
struct StimRegion {
  int64_t X0 = 0, X1 = -1;
  int64_t Y0 = 0, Y1 = -1;
};

/// One stimulus event: \p Strength is injected over \p Region during
/// [Start + k*Period, Start + k*Period + Duration) for pulse indices
/// k in [0, Count) (Count <= 0 = unlimited; Period <= 0 = single pulse).
struct StimEvent {
  StimRegion Region;
  double Start = 1.0;
  double Duration = 2.0;
  double Strength = 30.0;
  double Period = 0.0;
  int64_t Count = 1;
};

/// An ordered list of stimulus events; concurrent active events add.
struct StimulusProtocol {
  std::vector<StimEvent> Events;

  bool empty() const { return Events.empty(); }

  /// Whether \p E injects current at time \p T (pure function of T).
  static bool activeAt(const StimEvent &E, double T);

  /// Total injected current density at \p T for a cell at (X, Y).
  double currentAt(double T, int64_t X, int64_t Y,
                   const TissueGrid &G) const;

  /// A currently active event with its region resolved against the grid
  /// (inclusive node bounds, -1 edges expanded).
  struct ActiveStim {
    int64_t X0, X1, Y0, Y1;
    double Strength;
  };

  /// Collects the events active at \p T into \p Out (cleared first).
  /// Computed once per step by the tissue driver, then applied per shard
  /// inside the voltage stage.
  void collectActive(double T, const TissueGrid &G,
                     std::vector<ActiveStim> &Out) const;

  /// S1 pacing train at the x=0 edge (width \p EdgeWidth columns)
  /// followed by one premature S2 at coupling interval \p S2Interval
  /// after the last S1.
  static StimulusProtocol s1s2(double S1Period, int64_t S1Count,
                               double S2Interval, double Strength,
                               double Duration, int64_t EdgeWidth);

  /// Cross-field induction: S1 plane wave from the x=0 edge, then an S2
  /// covering the lower half of the sheet (y < NY/2) at \p S2Start.
  static StimulusProtocol crossField(const TissueGrid &G, double S1Strength,
                                     double S1Duration, double S2Start,
                                     double S2Strength, double S2Duration);

  /// Parses the --stim=<proto> grammar (';'-chained clauses). Unknown
  /// protocol names and malformed key=value lists are recoverable
  /// errors.
  static Expected<StimulusProtocol> parse(const std::string &Spec,
                                          const TissueGrid &G);

  /// Canonical spec string (parse(str()) round-trips); "none" when empty.
  std::string str() const;
};

} // namespace sim
} // namespace limpet

#endif // LIMPET_SIM_STIMULUS_H
