//===- TissueSimulator.cpp ------------------------------------------------===//

#include "sim/TissueSimulator.h"

#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <limits>

using namespace limpet;
using namespace limpet::sim;
using namespace limpet::exec;

namespace {

double quietNaN() { return std::numeric_limits<double>::quiet_NaN(); }

TissueOptions sanitizeTissue(TissueOptions T) {
  if (T.Grid.NX < 1)
    T.Grid.NX = 1;
  if (T.Grid.NY < 1)
    T.Grid.NY = 1;
  if (!std::isfinite(T.Grid.Dx) || T.Grid.Dx <= 0)
    T.Grid.Dx = 0.025;
  if (!std::isfinite(T.Sigma) || T.Sigma < 0)
    T.Sigma = 0;
  // The tridiagonal solve is 1D-only; a 2D sheet downgrades recoverably
  // to the explicit stencil (preflight() still enforces its CFL limit).
  if (T.Method == DiffusionMethod::CrankNicolson && T.Grid.is2D())
    T.Method = DiffusionMethod::FTCS;
  if (T.Stim.empty()) {
    // Default protocol: the single-population stimulus knobs as a pulse
    // train on the x=0 edge (a planar wavefront source).
    StimEvent E;
    E.Region = {0, std::max<int64_t>(T.Grid.NX / 16, 1) - 1, 0, -1};
    E.Start = T.Sim.StimStart;
    E.Duration = T.Sim.StimDuration;
    E.Strength = T.Sim.StimStrength;
    E.Period = T.Sim.StimPeriod;
    E.Count = T.Sim.StimPeriod > 0 ? 0 : 1; // unlimited train / one pulse
    T.Stim.Events.push_back(E);
  }
  return T;
}

SimOptions simOptionsFor(const TissueOptions &T) {
  TissueOptions S = sanitizeTissue(T);
  SimOptions O = S.Sim;
  O.NumCells = S.Grid.numNodes();
  // The base voltage stage never runs (advance() is overridden); zero the
  // scalar stimulus anyway so no code path can double-apply it.
  O.StimStrength = 0;
  return O;
}

} // namespace

TissueSimulator::TissueSimulator(const CompiledModel &Model,
                                 const TissueOptions &OptsIn)
    : Simulator(Model, simOptionsFor(OptsIn)),
      TOpts(sanitizeTissue(OptsIn)),
      Diff(TOpts.Grid, TOpts.Sigma, TOpts.Method) {
  // Node count matches the population by construction.
  (void)Buf.attachGrid(TOpts.Grid);
  buildPipeline();
}

void TissueSimulator::buildPipeline() {
  if (VmIdx < 0 || IionIdx < 0)
    return; // preflight() reports this; the pipeline stays empty.
  double *Vm = Buf.ext(size_t(VmIdx));
  if (TOpts.Method == DiffusionMethod::CrankNicolson &&
      !TOpts.Grid.is2D()) {
    // Serial tridiagonal solve on shard 0; the stage barrier keeps every
    // other shard out of the field while it runs, so the result is
    // shard-count independent.
    PipelineStage Cn;
    Cn.Name = "diffuse-cn";
    Cn.Run = [this, Vm](unsigned Shard, int64_t, int64_t) {
      if (Shard == 0)
        Diff.applyCrankNicolson(Vm, HalfDt);
    };
    DiffPlan.Stages.push_back(std::move(Cn));
  } else {
    PipelineStage Publish;
    Publish.Name = "diffuse-publish";
    Publish.Run = [this, Vm](unsigned, int64_t Begin, int64_t End) {
      Diff.publish(Vm, Begin, End);
    };
    PipelineStage Apply;
    Apply.Name = "diffuse-apply";
    Apply.Run = [this, Vm](unsigned, int64_t Begin, int64_t End) {
      Diff.applyFromSnapshot(Vm, HalfDt, Begin, End);
    };
    DiffPlan.Stages.push_back(std::move(Publish));
    DiffPlan.Stages.push_back(std::move(Apply));
  }

  VoltStage.Name = "voltage-stim";
  VoltStage.Run = [this, Vm](unsigned, int64_t Begin, int64_t End) {
    const double *Iion = Buf.ext(size_t(IionIdx));
    double Dt = StageDt;
    for (int64_t C = Begin; C < End; ++C)
      Vm[C] -= Dt * Iion[C];
    const TissueGrid &G = TOpts.Grid;
    int64_t YLo = G.yOf(Begin), YHi = G.yOf(End - 1);
    for (const StimulusProtocol::ActiveStim &A : Active) {
      for (int64_t Y = std::max(A.Y0, YLo); Y <= std::min(A.Y1, YHi);
           ++Y) {
        int64_t Lo = std::max(G.nodeAt(A.X0, Y), Begin);
        int64_t Hi = std::min(G.nodeAt(A.X1, Y) + 1, End);
        for (int64_t C = Lo; C < Hi; ++C)
          Vm[C] += Dt * A.Strength;
      }
    }
  };
}

Status TissueSimulator::preflight() const {
  if (!hasVoltageCoupling())
    return Status::error("model '" + model().info().Name +
                         "' has no Vm/Iion externals; tissue coupling "
                         "needs the monodomain convention");
  if (TOpts.Method == DiffusionMethod::FTCS && TOpts.Sigma > 0) {
    double Limit = Diff.maxStableDt();
    double Applied = 0.5 * Opts.Dt; // Strang half-step
    if (Applied > Limit)
      return Status::error(
          "FTCS diffusion is unstable at dt=" + std::to_string(Opts.Dt) +
          " (half-step " + std::to_string(Applied) +
          " ms exceeds the CFL limit " + std::to_string(Limit) +
          " ms); reduce dt or sigma, increase dx, or use --diffusion=cn");
  }
  return Status::success();
}

void TissueSimulator::advance(double Dt) {
  bool HasFallback = Report.CellsDegraded > 0;
  diffusionHalf(0.5 * Dt);
  if (HasFallback)
    runScalarFallback(Dt, /*Gather=*/true);
  computeStage(Dt);
  if (HasFallback)
    runScalarFallback(Dt, /*Gather=*/false);
  voltageStimStage(Dt);
  diffusionHalf(0.5 * Dt);
  T += Dt;
  if (TrackActivation)
    updateActivation();
}

void TissueSimulator::diffusionHalf(double Dt) {
  if (TOpts.Sigma <= 0 || DiffPlan.Stages.empty())
    return;
  HalfDt = Dt;
  Sched.runPlan(DiffPlan, Dt, T);
  // The roofline's second regime: modeled stencil traffic, alongside the
  // kernel byte counters the compute stage accumulates.
  static telemetry::Counter &Loaded =
      telemetry::counter("sim.bytes.stencil.loaded");
  static telemetry::Counter &Stored =
      telemetry::counter("sim.bytes.stencil.stored");
  Loaded.add(Diff.bytesLoadedPerStep());
  Stored.add(Diff.bytesStoredPerStep());
}

void TissueSimulator::voltageStimStage(double Dt) {
  if (!hasVoltageCoupling())
    return;
  TOpts.Stim.collectActive(T, TOpts.Grid, Active);
  StageDt = Dt;
  Sched.runStage(VoltStage, Dt, T);
}

void TissueSimulator::enableActivationMap(double Threshold) {
  TrackActivation = true;
  ActThreshold = Threshold;
  ActTime.assign(size_t(Opts.NumCells), quietNaN());
  PrevVm.assign(size_t(Opts.NumCells), quietNaN());
  if (VmIdx >= 0) {
    const double *Vm = Buf.ext(size_t(VmIdx));
    std::copy(Vm, Vm + Opts.NumCells, PrevVm.begin());
  }
}

void TissueSimulator::updateActivation() {
  if (VmIdx < 0)
    return;
  const double *Vm = Buf.ext(size_t(VmIdx));
  for (int64_t C = 0; C != Opts.NumCells; ++C) {
    if (std::isnan(ActTime[size_t(C)]) && Vm[C] >= ActThreshold &&
        PrevVm[size_t(C)] < ActThreshold)
      ActTime[size_t(C)] = T;
    PrevVm[size_t(C)] = Vm[C];
  }
}

double TissueSimulator::activationTime(int64_t Cell) const {
  if (!TrackActivation || Cell < 0 || Cell >= int64_t(ActTime.size()))
    return quietNaN();
  return ActTime[size_t(Cell)];
}

double TissueSimulator::conductionVelocity(int64_t CellA,
                                           int64_t CellB) const {
  double TA = activationTime(CellA), TB = activationTime(CellB);
  if (std::isnan(TA) || std::isnan(TB) || TA == TB)
    return quietNaN();
  const TissueGrid &G = TOpts.Grid;
  double DX = double(G.xOf(CellA) - G.xOf(CellB));
  double DY = double(G.yOf(CellA) - G.yOf(CellB));
  double Dist = std::sqrt(DX * DX + DY * DY) * G.Dx; // cm
  return Dist / std::fabs(TB - TA);                  // cm/ms
}

void TissueSimulator::annotateCheckpoint(CheckpointData &C) const {
  C.TissueNX = TOpts.Grid.NX;
  C.TissueNY = TOpts.Grid.NY;
  C.TissueDx = TOpts.Grid.Dx;
  C.TissueSigma = TOpts.Sigma;
  C.TissueMethod = uint8_t(TOpts.Method);
  C.TissueStim = TOpts.Stim.str();
}

Status TissueSimulator::validateResume(const CheckpointData &C) const {
  if (C.TissueNX <= 0)
    return Status::error("cannot resume: checkpoint is not a tissue run; "
                         "resume it with a plain simulator");
  if (C.TissueNX != TOpts.Grid.NX || C.TissueNY != TOpts.Grid.NY ||
      C.TissueDx != TOpts.Grid.Dx)
    return Status::error(
        "cannot resume: tissue geometry mismatch (checkpoint " +
        std::to_string(C.TissueNX) + "x" + std::to_string(C.TissueNY) +
        ", this run " + std::to_string(TOpts.Grid.NX) + "x" +
        std::to_string(TOpts.Grid.NY) + ")");
  if (C.TissueSigma != TOpts.Sigma ||
      C.TissueMethod != uint8_t(TOpts.Method))
    return Status::error(
        "cannot resume: diffusion settings mismatch (checkpoint sigma=" +
        std::to_string(C.TissueSigma) + " method=" +
        diffusionMethodName(DiffusionMethod(C.TissueMethod)) +
        ", this run sigma=" + std::to_string(TOpts.Sigma) + " method=" +
        diffusionMethodName(TOpts.Method) + ")");
  if (C.TissueStim != TOpts.Stim.str())
    return Status::error("cannot resume: stimulus protocol mismatch "
                         "(checkpoint '" +
                         C.TissueStim + "', this run '" +
                         TOpts.Stim.str() + "')");
  return Status::success();
}
