//===- Checkpoint.cpp -----------------------------------------------------===//

#include "sim/Checkpoint.h"

#include "compiler/Artifact.h"
#include "compiler/Serialize.h"
#include "support/Signals.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

using namespace limpet;
using namespace limpet::sim;
using compiler::ByteReader;
using compiler::ByteWriter;

namespace fs = std::filesystem;

namespace {

/// "LMPC" little-endian.
constexpr uint32_t kMagic = 0x43504d4cu;

/// Mirror of StateBuffer's AoSoA padding rule, used to cross-check the
/// serialized state-array length against the declared shape.
int64_t paddedCellsFor(uint8_t Layout, int64_t NumCells, uint32_t BlockW) {
  if (codegen::StateLayout(Layout) != codegen::StateLayout::AoSoA)
    return NumCells;
  int64_t BW = int64_t(std::max(BlockW, 1u));
  return (NumCells + BW - 1) / BW * BW;
}

void writeDoubles(ByteWriter &W, const std::vector<double> &V) {
  W.u64(uint64_t(V.size()));
  for (double D : V)
    W.f64(D);
}

/// Reads a double vector whose length is validated against the remaining
/// payload before any allocation happens.
bool readDoubles(ByteReader &R, std::vector<double> &V) {
  uint64_t N = R.u64();
  if (R.failed() || N * 8 > R.remaining())
    return false;
  V.resize(size_t(N));
  for (double &D : V)
    D = R.f64();
  return !R.failed();
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialization
//===----------------------------------------------------------------------===//

std::string sim::serializeCheckpoint(const CheckpointData &C) {
  ByteWriter P; // payload
  P.str(C.ModelName);
  P.u64(C.SourceHash);

  const exec::EngineConfig &Cfg = C.Config;
  P.u32(Cfg.Width);
  P.u8(uint8_t(Cfg.Layout));
  P.u8(Cfg.FastMath);
  P.u8(Cfg.EnableLuts);
  P.u8(Cfg.CubicLut);
  P.u8(Cfg.RunPasses);
  P.str(Cfg.PassPipeline);

  P.i64(C.NumCells);
  P.u32(C.NumSv);
  P.u32(C.NumExts);
  P.u8(C.Layout);
  P.u32(C.BlockW);

  P.i64(C.StepCount);
  P.f64(C.T);
  P.f64(C.Dt);

  writeDoubles(P, C.Params);
  writeDoubles(P, C.State);
  for (const std::vector<double> &E : C.Exts)
    writeDoubles(P, E);
  writeDoubles(P, C.Trace);

  const RunReport &R = C.Report;
  P.i64(R.StepsTaken);
  P.i64(R.HealthScans);
  P.i64(R.FaultEvents);
  P.i64(R.FaultyCells);
  P.i64(R.Retries);
  P.i64(R.Substeps);
  P.i64(R.CellsDegraded);
  P.i64(R.CellsFrozen);
  P.f64(R.ScanSeconds);
  P.f64(R.RecoverySeconds);
  P.f64(R.RunSeconds);

  P.u64(uint64_t(C.Modes.size()));
  for (uint8_t M : C.Modes)
    P.u8(M);

  P.u32(uint32_t(C.Frozen.size()));
  for (const CheckpointData::FrozenCell &F : C.Frozen) {
    P.i64(F.Cell);
    for (double D : F.Sv)
      P.f64(D);
    for (double D : F.Ext)
      P.f64(D);
  }

  // Tissue section (v2).
  P.i64(C.TissueNX);
  P.i64(C.TissueNY);
  P.f64(C.TissueDx);
  P.f64(C.TissueSigma);
  P.u8(C.TissueMethod);
  P.str(C.TissueStim);

  // Ensemble section (v3).
  P.i64(C.EnsembleMembers);
  P.i64(C.EnsembleCellsPerMember);
  P.u64(C.EnsembleSpecHash);
  for (const CheckpointData::EnsembleMember &M : C.EnsembleStatus) {
    P.u8(M.Status);
    P.u8(M.Reason);
    P.i64(M.DtRetries);
    P.i64(M.FaultSteps);
    P.i64(M.QuarantineStep);
  }

  ByteWriter W;
  W.u32(kMagic);
  W.u32(C.FormatVersion);
  W.u64(compiler::fnv1a64(P.Out));
  W.Out += P.Out;
  return W.Out;
}

Expected<CheckpointData> sim::deserializeCheckpoint(std::string_view Bytes) {
  auto Err = [](const char *Msg) {
    return Expected<CheckpointData>(
        Status::error(std::string("checkpoint: ") + Msg));
  };
  ByteReader H(Bytes);
  if (Bytes.size() < 16)
    return Err("truncated header");
  if (H.u32() != kMagic)
    return Err("bad magic (not a limpet checkpoint)");
  uint32_t Version = H.u32();
  if (Version != kCheckpointFormatVersion)
    return Err("format version mismatch");
  uint64_t Checksum = H.u64();
  std::string_view Payload = Bytes.substr(16);
  if (compiler::fnv1a64(Payload) != Checksum)
    return Err("checksum mismatch (corrupted or truncated)");

  ByteReader R(Payload);
  CheckpointData C;
  C.FormatVersion = Version;
  C.ModelName = R.str();
  C.SourceHash = R.u64();

  exec::EngineConfig &Cfg = C.Config;
  Cfg.Width = R.u32();
  Cfg.Layout = codegen::StateLayout(R.u8());
  Cfg.FastMath = R.u8() != 0;
  Cfg.EnableLuts = R.u8() != 0;
  Cfg.CubicLut = R.u8() != 0;
  Cfg.RunPasses = R.u8() != 0;
  Cfg.PassPipeline = R.str();

  C.NumCells = R.i64();
  C.NumSv = R.u32();
  C.NumExts = R.u32();
  C.Layout = R.u8();
  C.BlockW = R.u32();
  if (R.failed() || C.NumCells < 0)
    return Err("malformed shape header");

  C.StepCount = R.i64();
  C.T = R.f64();
  C.Dt = R.f64();

  if (!readDoubles(R, C.Params) || !readDoubles(R, C.State))
    return Err("truncated parameter/state section");
  // The state array must cover exactly the padded population the declared
  // shape implies; anything else is an inconsistent (hand-edited) file.
  if (int64_t(C.State.size()) !=
      paddedCellsFor(C.Layout, C.NumCells, C.BlockW) * int64_t(C.NumSv))
    return Err("state array does not match the declared shape");
  C.Exts.resize(C.NumExts);
  for (std::vector<double> &E : C.Exts) {
    if (!readDoubles(R, E))
      return Err("truncated external section");
    if (int64_t(E.size()) != C.NumCells)
      return Err("external array does not match the declared shape");
  }
  if (!readDoubles(R, C.Trace))
    return Err("truncated trace section");

  RunReport &Rep = C.Report;
  Rep.StepsTaken = R.i64();
  Rep.HealthScans = R.i64();
  Rep.FaultEvents = R.i64();
  Rep.FaultyCells = R.i64();
  Rep.Retries = R.i64();
  Rep.Substeps = R.i64();
  Rep.CellsDegraded = R.i64();
  Rep.CellsFrozen = R.i64();
  Rep.ScanSeconds = R.f64();
  Rep.RecoverySeconds = R.f64();
  Rep.RunSeconds = R.f64();

  uint64_t NumModes = R.u64();
  if (R.failed() || NumModes > R.remaining())
    return Err("truncated mode section");
  if (NumModes != 0 && int64_t(NumModes) != C.NumCells)
    return Err("mode array does not match the declared shape");
  C.Modes.resize(size_t(NumModes));
  for (uint8_t &M : C.Modes)
    M = R.u8();

  uint32_t NumFrozen = R.u32();
  size_t FrozenBytes = 8 + 8 * (size_t(C.NumSv) + C.NumExts);
  if (R.failed() || size_t(NumFrozen) * FrozenBytes > R.remaining())
    return Err("truncated frozen-cell section");
  C.Frozen.resize(NumFrozen);
  for (CheckpointData::FrozenCell &F : C.Frozen) {
    F.Cell = R.i64();
    if (F.Cell < 0 || F.Cell >= C.NumCells)
      return Err("frozen cell index out of range");
    F.Sv.resize(C.NumSv);
    for (double &D : F.Sv)
      D = R.f64();
    F.Ext.resize(C.NumExts);
    for (double &D : F.Ext)
      D = R.f64();
  }

  C.TissueNX = R.i64();
  C.TissueNY = R.i64();
  C.TissueDx = R.f64();
  C.TissueSigma = R.f64();
  C.TissueMethod = R.u8();
  C.TissueStim = R.str();
  if (C.TissueNX < 0 || C.TissueNY < 1 ||
      (C.TissueNX > 0 && C.TissueNX * C.TissueNY != C.NumCells))
    return Err("tissue grid does not match the declared population");

  C.EnsembleMembers = R.i64();
  C.EnsembleCellsPerMember = R.i64();
  C.EnsembleSpecHash = R.u64();
  if (R.failed() || C.EnsembleMembers < 0 ||
      (C.EnsembleMembers > 0 &&
       (C.EnsembleCellsPerMember < 1 ||
        C.EnsembleMembers * C.EnsembleCellsPerMember != C.NumCells)))
    return Err("ensemble shape does not match the declared population");
  constexpr size_t kMemberBytes = 2 + 3 * 8;
  if (size_t(C.EnsembleMembers) * kMemberBytes > R.remaining())
    return Err("truncated ensemble member section");
  C.EnsembleStatus.resize(size_t(C.EnsembleMembers));
  for (CheckpointData::EnsembleMember &M : C.EnsembleStatus) {
    M.Status = R.u8();
    M.Reason = R.u8();
    M.DtRetries = R.i64();
    M.FaultSteps = R.i64();
    M.QuarantineStep = R.i64();
  }

  if (R.failed())
    return Err("truncated payload");
  if (R.remaining() != 0)
    return Err("trailing bytes after payload");
  return C;
}

//===----------------------------------------------------------------------===//
// Files
//===----------------------------------------------------------------------===//

Status sim::writeCheckpointFile(const CheckpointData &C,
                                const std::string &Path) {
  return compiler::writeFileAtomic(serializeCheckpoint(C), Path);
}

Expected<CheckpointData> sim::readCheckpointFile(const std::string &Path) {
  std::string Bytes;
  if (Status S = compiler::readFileBytes(Path, Bytes); !S)
    return Expected<CheckpointData>(
        Status::error("checkpoint: " + S.message()));
  return deserializeCheckpoint(Bytes);
}

//===----------------------------------------------------------------------===//
// CheckpointStore
//===----------------------------------------------------------------------===//

CheckpointStore::CheckpointStore(std::string Dir, int Retain)
    : Dir(std::move(Dir)), Retain(std::max(Retain, 1)) {}

Status CheckpointStore::prepare() const {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec)
    return Status::error("cannot create checkpoint directory '" + Dir +
                         "': " + Ec.message());
  // Probe with the real write path so permission problems surface here,
  // as one recoverable error, instead of mid-run.
  std::string Probe = Dir + "/.limpet-probe";
  if (Status S = compiler::writeFileAtomic("limpet", Probe); !S)
    return Status::error("checkpoint directory '" + Dir +
                         "' is not writable (" + S.message() + ")");
  std::remove(Probe.c_str());
  return Status::success();
}

std::string CheckpointStore::pathForStep(int64_t Step) const {
  char Name[32];
  std::snprintf(Name, sizeof Name, "ckpt-%012lld.lmpc",
                (long long)std::max<int64_t>(Step, 0));
  return Dir + "/" + Name;
}

std::vector<std::string> CheckpointStore::list() const {
  std::vector<std::pair<int64_t, std::string>> Found;
  std::error_code Ec;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, Ec)) {
    std::string Name = E.path().filename().string();
    // ckpt-<digits>.lmpc, anything else (temp files, strangers) ignored.
    if (Name.size() != 22 || Name.rfind("ckpt-", 0) != 0 ||
        Name.compare(17, 5, ".lmpc") != 0)
      continue;
    int64_t Step = 0;
    bool Digits = true;
    for (size_t I = 5; I != 17 && Digits; ++I) {
      char Ch = Name[I];
      Digits = Ch >= '0' && Ch <= '9';
      Step = Step * 10 + (Ch - '0');
    }
    if (Digits)
      Found.emplace_back(Step, E.path().string());
  }
  std::sort(Found.begin(), Found.end());
  std::vector<std::string> Paths;
  Paths.reserve(Found.size());
  for (auto &[Step, Path] : Found)
    Paths.push_back(std::move(Path));
  return Paths;
}

void CheckpointStore::prune() const {
  std::vector<std::string> Paths = list();
  for (size_t I = 0; I + size_t(Retain) < Paths.size(); ++I)
    std::remove(Paths[I].c_str());
}

Status CheckpointStore::write(const CheckpointData &C) const {
  if (Status S = writeCheckpointFile(C, pathForStep(C.StepCount)); !S)
    return S;
  prune();
  return Status::success();
}

Expected<CheckpointData>
CheckpointStore::loadNewestValid(std::string *PathOut,
                                 int *SkippedOut) const {
  std::vector<std::string> Paths = list();
  int Skipped = 0;
  for (auto It = Paths.rbegin(); It != Paths.rend(); ++It) {
    Expected<CheckpointData> C = readCheckpointFile(*It);
    if (C) {
      if (PathOut)
        *PathOut = *It;
      if (SkippedOut)
        *SkippedOut = Skipped;
      return C;
    }
    // Corrupt or truncated (e.g. the process died mid-crash before PR 4's
    // atomic rename existed, or the disk did): fall back to the next
    // newest instead of giving up.
    ++Skipped;
  }
  if (SkippedOut)
    *SkippedOut = Skipped;
  std::string Note = Skipped
                         ? " (" + std::to_string(Skipped) +
                               " corrupt/truncated checkpoint(s) skipped)"
                         : "";
  return Expected<CheckpointData>(Status::error(
      "no valid checkpoint found in '" + Dir + "'" + Note));
}

//===----------------------------------------------------------------------===//
// Graceful shutdown
//===----------------------------------------------------------------------===//

// Thin forwarders: all signal disposition lives in support/Signals so
// there is exactly one installer (sigaction with save/restore) in the
// process. Kept here so existing sim:: callers and tests are unaffected.

void sim::installShutdownHandlers() { support::installShutdownHandlers(); }

bool sim::shutdownRequested() { return support::shutdownRequested(); }

void sim::requestShutdown() { support::requestShutdown(); }

void sim::clearShutdownRequest() { support::clearShutdownRequest(); }
