//===- Registry.h - The 43-model evaluation suite ---------------*- C++-*-===//
//
// The registry of the 43 ionic models the paper evaluates (Sec. 4):
// classical models are faithful hand-written EasyML (ClassicModels.h);
// the remaining openCARP model names are carried by structurally
// calibrated synthetic models (SyntheticModel.h). Each entry records the
// paper's small/medium/large class: 8 small, 22 medium, 13 large.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_MODELS_REGISTRY_H
#define LIMPET_MODELS_REGISTRY_H

#include <string>
#include <vector>

namespace limpet {
namespace models {

struct ModelEntry {
  std::string Name;
  std::string Source;    ///< EasyML text
  char SizeClass;        ///< 'S', 'M' or 'L'
  bool IsClassic;        ///< faithful literature transcription
};

/// All 43 models, ordered small -> medium -> large.
const std::vector<ModelEntry> &modelRegistry();

/// Finds a model by name; returns null if absent.
const ModelEntry *findModel(std::string_view Name);

/// Number of models in each class (8/22/13).
size_t countClass(char SizeClass);

} // namespace models
} // namespace limpet

#endif // LIMPET_MODELS_REGISTRY_H
