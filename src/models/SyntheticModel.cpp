//===- SyntheticModel.cpp -------------------------------------------------===//

#include "models/SyntheticModel.h"

#include "support/StringUtils.h"

#include <cmath>

using namespace limpet;
using namespace limpet::models;

namespace {

/// Deterministic splitmix64 generator so model sources are reproducible.
class Rng {
public:
  explicit Rng(uint64_t Seed) : X(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t next() {
    X += 0x9E3779B97F4A7C15ull;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
    Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
    return Z ^ (Z >> 31);
  }

  /// Uniform double in [Lo, Hi].
  double uniform(double Lo, double Hi) {
    double U = double(next() >> 11) * 0x1.0p-53;
    return Lo + U * (Hi - Lo);
  }

  /// Uniform integer in [0, N).
  int pick(int N) { return int(next() % uint64_t(N)); }

private:
  uint64_t X;
};

std::string fmt(double V) {
  // Round to a compact but faithful literal.
  return formatDouble(V);
}

/// Emits one gate-rate expression of Vm (all four templates are
/// LUT-tabulatable and physiologically shaped).
std::string rateExpr(Rng &R) {
  double Mag = R.uniform(0.02, 2.0);
  double Off = R.uniform(15.0, 80.0);
  double Slope = R.uniform(6.0, 25.0);
  switch (R.pick(4)) {
  case 0:
    // Pure exponential rate.
    return fmt(Mag) + "*exp(-(Vm+" + fmt(Off) + ")/" + fmt(Slope) + ")";
  case 1: {
    // Linear-over-expm1 with a singularity guard (the HH alpha_m shape).
    std::string Shift = "(Vm+" + fmt(Off) + ")";
    return "((fabs(" + Shift + ")<1e-6) ? " + fmt(Mag * Slope) + " : " +
           fmt(Mag) + "*" + Shift + "/(1.0-exp(-" + Shift + "/" +
           fmt(Slope) + ")))";
  }
  case 2:
    // Sigmoidal rate.
    return fmt(Mag) + "/(1.0+exp((Vm+" + fmt(Off) + ")/" + fmt(Slope) +
           "))";
  default:
    // Exponential over sigmoid (Beeler-Reuter j/d/f shapes).
    return fmt(Mag) + "*exp(-(Vm+" + fmt(Off) + ")/" + fmt(Slope * 2) +
           ")/(1.0+exp(-(Vm+" + fmt(Off - 10) + ")/" + fmt(Slope) + "))";
  }
}

} // namespace

std::string models::generateSyntheticEasyML(const SyntheticSpec &Spec) {
  Rng R(Spec.Seed);
  std::string S;
  S += "# Synthetic ionic model '" + Spec.Name +
       "' (structurally calibrated workload; see DESIGN.md)\n";
  S += "Vm; .external(); .nodal();";
  if (Spec.UseLut)
    S += " .lookup(-100, 100, 0.05);";
  S += "\nIion; .external(); .nodal();\n";
  S += "Vm_init = -85.0;\n\n";

  // Gates -----------------------------------------------------------------
  for (int G = 0; G != Spec.NumGates; ++G) {
    std::string Gate = "g" + std::to_string(G);
    S += "alpha_" + Gate + " = " + rateExpr(R) + ";\n";
    S += "beta_" + Gate + " = " + rateExpr(R) + ";\n";
    S += "diff_" + Gate + " = alpha_" + Gate + "*(1.0-" + Gate + ") - beta_" +
         Gate + "*" + Gate + ";\n";
    S += Gate + "_init = " + fmt(R.uniform(0.05, 0.95)) + ";\n";
    // Mostly Rush-Larsen (the openCARP default for gates); a few Sundnes.
    S += Gate + "; .method(" + (G % 5 == 4 ? "sundnes" : "rush_larsen") +
         ");\n\n";
  }

  // Markov occupancies ------------------------------------------------------
  for (int M = 0; M != Spec.NumMarkov; ++M) {
    std::string V = "mk" + std::to_string(M);
    S += "ropen_" + V + " = " + rateExpr(R) + ";\n";
    S += "rclose_" + V + " = " + rateExpr(R) + ";\n";
    S += "diff_" + V + " = ropen_" + V + "*(1.0-" + V + ") - rclose_" + V +
         "*" + V + ";\n";
    S += V + "_init = " + fmt(R.uniform(0.1, 0.9)) + ";\n";
    S += V + "; .method(markov_be);\n\n";
  }

  // rk2/rk4 relaxation variables ---------------------------------------------
  auto EmitRelax = [&](const std::string &Prefix, int Count,
                       const char *Method) {
    for (int I = 0; I != Count; ++I) {
      std::string V = Prefix + std::to_string(I);
      double Tau = R.uniform(2.0, 40.0);
      double Off = R.uniform(20.0, 70.0);
      double Slope = R.uniform(5.0, 15.0);
      S += V + "_inf = 1.0/(1.0+exp(-(Vm+" + fmt(Off) + ")/" + fmt(Slope) +
           "));\n";
      S += "diff_" + V + " = (" + V + "_inf - " + V + ")/" + fmt(Tau) +
           ";\n";
      S += V + "_init = " + fmt(R.uniform(0.1, 0.9)) + ";\n";
      S += V + "; .method(" + Method + ");\n\n";
    }
  };
  EmitRelax("r2v", Spec.NumRk2, "rk2");
  EmitRelax("r4v", Spec.NumRk4, "rk4");

  // Concentration pools --------------------------------------------------------
  for (int P = 0; P != Spec.NumPools; ++P) {
    std::string V = "c" + std::to_string(P);
    double Rest = R.uniform(0.1, 2.0);
    double Tau = R.uniform(20.0, 200.0);
    double Couple = R.uniform(1e-5, 5e-4);
    double ERev = R.uniform(-90.0, 60.0);
    S += "diff_" + V + " = (" + fmt(Rest) + " - " + V + ")/" + fmt(Tau) +
         " + " + fmt(Couple) + "*(" + fmt(ERev) + " - Vm);\n";
    S += V + "_init = " + fmt(Rest) + ";\n\n";
  }

  // Parameters ---------------------------------------------------------------
  S += "group{ ";
  for (int C = 0; C != Spec.NumCurrents; ++C)
    S += "gcond" + std::to_string(C) + " = " +
         fmt(R.uniform(0.05, 0.45)) + "; ";
  S += "}.param();\n\n";

  // Currents -------------------------------------------------------------------
  std::string Sum;
  int TotalGateLike = Spec.NumGates + Spec.NumMarkov + Spec.NumRk2 +
                      Spec.NumRk4;
  auto GateName = [&](int I) -> std::string {
    I %= TotalGateLike > 0 ? TotalGateLike : 1;
    if (I < Spec.NumGates)
      return "g" + std::to_string(I);
    I -= Spec.NumGates;
    if (I < Spec.NumMarkov)
      return "mk" + std::to_string(I);
    I -= Spec.NumMarkov;
    if (I < Spec.NumRk2)
      return "r2v" + std::to_string(I);
    I -= Spec.NumRk2;
    return "r4v" + std::to_string(I);
  };

  for (int C = 0; C != Spec.NumCurrents; ++C) {
    std::string I = "I" + std::to_string(C);
    std::string Ga = TotalGateLike ? GateName(C) : "1.0";
    std::string Gb = TotalGateLike ? GateName(C + 1) : "1.0";
    double ERev = R.uniform(0.0, 1.0) < 0.3 ? R.uniform(20.0, 60.0)
                                            : R.uniform(-95.0, -40.0);
    int Power = 1 + R.pick(3);
    std::string GatePart = Ga;
    for (int Rep = 1; Rep < Power; ++Rep)
      GatePart += "*" + Ga;
    std::string Expr = "gcond" + std::to_string(C) + "*" + GatePart + "*" +
                       Gb + "*(Vm - (" + fmt(ERev) + "))";
    if (Spec.HeavyMath) {
      // ISAC_Hu-like models: costly math directly on state (not
      // LUT-tabulatable because it mixes Vm with state variables).
      std::string Pool =
          Spec.NumPools ? "c" + std::to_string(C % Spec.NumPools) : Ga;
      Expr += " + " + fmt(R.uniform(0.01, 0.1)) + "*sinh((Vm - (" +
              fmt(ERev) + "))/" + fmt(R.uniform(30.0, 60.0)) + ")*pow(" +
              Ga + "+0.5, " + fmt(R.uniform(1.2, 2.8)) + ")*log(1.0+fabs(" +
              Pool + "))";
    } else if (Spec.NumPools && C % 3 == 2) {
      // A Nernst-like reversal from a pool concentration.
      std::string Pool = "c" + std::to_string(C % Spec.NumPools);
      Expr = "gcond" + std::to_string(C) + "*" + GatePart +
             "*(Vm - 26.7*log((" + Pool + "+1.0)/0.4))";
    }
    S += I + " = " + Expr + ";\n";
    Sum += (C ? " + " : "") + I;
  }
  S += "\nIion = " + Sum + ";\n";
  return S;
}
