//===- ClassicModels.cpp --------------------------------------------------===//

#include "models/ClassicModels.h"

using namespace limpet;
using namespace limpet::models;

namespace {

// --- Hodgkin-Huxley 1952 (squid axon, shifted to mV) ----------------------
constexpr const char HodgkinHuxleySrc[] = R"EML(
# Hodgkin & Huxley (1952), J Physiol 117:500-544.
Vm; .external(); .nodal(); .lookup(-100, 100, 0.05);
Iion; .external(); .nodal();
Vm_init = -65.0;

group{ gNa = 120.0; gK = 36.0; gL = 0.3;
       ENa = 50.0; EK = -77.0; EL = -54.387; }.param();

alpha_m = (fabs(Vm+40.0) < 1e-6) ? 1.0
          : 0.1*(Vm+40.0)/(1.0-exp(-(Vm+40.0)/10.0));
beta_m  = 4.0*exp(-(Vm+65.0)/18.0);
alpha_h = 0.07*exp(-(Vm+65.0)/20.0);
beta_h  = 1.0/(1.0+exp(-(Vm+35.0)/10.0));
alpha_n = (fabs(Vm+55.0) < 1e-6) ? 0.1
          : 0.01*(Vm+55.0)/(1.0-exp(-(Vm+55.0)/10.0));
beta_n  = 0.125*exp(-(Vm+65.0)/80.0);

diff_m = alpha_m*(1.0-m) - beta_m*m;
diff_h = alpha_h*(1.0-h) - beta_h*h;
diff_n = alpha_n*(1.0-n) - beta_n*n;
m_init = 0.0529; h_init = 0.5961; n_init = 0.3177;
m; .method(rush_larsen);
h; .method(rush_larsen);
n; .method(rush_larsen);

INa = gNa*m*m*m*h*(Vm-ENa);
IK  = gK*n*n*n*n*(Vm-EK);
IL  = gL*(Vm-EL);
Iion = INa + IK + IL;
)EML";

// --- Beeler-Reuter 1977 -----------------------------------------------------
constexpr const char BeelerReuterSrc[] = R"EML(
# Beeler & Reuter (1977), J Physiol 268:177-210. Ventricular myocyte.
Vm; .external(); .nodal(); .lookup(-100, 100, 0.05);
Iion; .external(); .nodal();
Vm_init = -84.574;

group{ gNa = 4.0; gNaC = 0.003; ENa = 50.0; gs = 0.09; }.param();

alpha_m = (fabs(Vm+47.0) < 1e-6) ? 10.0
          : -(Vm+47.0)/(exp(-0.1*(Vm+47.0))-1.0);
beta_m  = 40.0*exp(-0.056*(Vm+72.0));
alpha_h = 0.126*exp(-0.25*(Vm+77.0));
beta_h  = 1.7/(exp(-0.082*(Vm+22.5))+1.0);
alpha_j = 0.055*exp(-0.25*(Vm+78.0))/(exp(-0.2*(Vm+78.0))+1.0);
beta_j  = 0.3/(exp(-0.1*(Vm+32.0))+1.0);
alpha_d = 0.095*exp(-0.01*(Vm-5.0))/(exp(-0.072*(Vm-5.0))+1.0);
beta_d  = 0.07*exp(-0.017*(Vm+44.0))/(exp(0.05*(Vm+44.0))+1.0);
alpha_f = 0.012*exp(-0.008*(Vm+28.0))/(exp(0.15*(Vm+28.0))+1.0);
beta_f  = 0.0065*exp(-0.02*(Vm+30.0))/(exp(-0.2*(Vm+30.0))+1.0);
alpha_x1 = 0.0005*exp(0.083*(Vm+50.0))/(exp(0.057*(Vm+50.0))+1.0);
beta_x1  = 0.0013*exp(-0.06*(Vm+20.0))/(exp(-0.04*(Vm+20.0))+1.0);

diff_m  = alpha_m*(1.0-m) - beta_m*m;
diff_h  = alpha_h*(1.0-h) - beta_h*h;
diff_j  = alpha_j*(1.0-j) - beta_j*j;
diff_d  = alpha_d*(1.0-d) - beta_d*d;
diff_f  = alpha_f*(1.0-f) - beta_f*f;
diff_x1 = alpha_x1*(1.0-x1) - beta_x1*x1;
m_init = 0.011; h_init = 0.988; j_init = 0.975;
d_init = 0.003; f_init = 0.994; x1_init = 0.0001;
m;  .method(rush_larsen);
h;  .method(rush_larsen);
j;  .method(rush_larsen);
d;  .method(rush_larsen);
f;  .method(rush_larsen);
x1; .method(rush_larsen);

Es = -82.3 - 13.0287*log(Cai);
INa = (gNa*m*m*m*h*j + gNaC)*(Vm-ENa);
Is  = gs*d*f*(Vm-Es);
Ix1 = x1*0.8*(exp(0.04*(Vm+77.0))-1.0)/exp(0.04*(Vm+35.0));
IK1 = 0.35*(4.0*(exp(0.04*(Vm+85.0))-1.0)
        /(exp(0.08*(Vm+53.0))+exp(0.04*(Vm+53.0)))
      + 0.2*((fabs(Vm+23.0) < 1e-6) ? 25.0
             : (Vm+23.0)/(1.0-exp(-0.04*(Vm+23.0)))));

diff_Cai = -1.0e-7*Is + 0.07*(1.0e-7 - Cai);
Cai_init = 1.0e-7;

Iion = INa + Is + Ix1 + IK1;
)EML";

// --- Luo-Rudy 1991 -----------------------------------------------------------
constexpr const char LuoRudy91Src[] = R"EML(
# Luo & Rudy (1991), Circ Res 68:1501-1526. Guinea pig ventricle.
Vm; .external(); .nodal(); .lookup(-100, 100, 0.05);
Iion; .external(); .nodal();
Vm_init = -84.38;

group{ gNa = 23.0; ENa = 54.4; gsi = 0.09;
       gK = 0.282; EK = -77.0; EK1 = -87.2; }.param();

alpha_m = (fabs(Vm+47.13) < 1e-6) ? 3.2
          : 0.32*(Vm+47.13)/(1.0-exp(-0.1*(Vm+47.13)));
beta_m  = 0.08*exp(-Vm/11.0);
alpha_h = (Vm < -40.0) ? 0.135*exp(-(80.0+Vm)/6.8) : 0.0;
beta_h  = (Vm < -40.0)
          ? 3.56*exp(0.079*Vm)+310000.0*exp(0.35*Vm)
          : 1.0/(0.13*(1.0+exp(-(Vm+10.66)/11.1)));
alpha_j = (Vm < -40.0)
          ? (-127140.0*exp(0.2444*Vm)-0.00003474*exp(-0.04391*Vm))
            *(Vm+37.78)/(1.0+exp(0.311*(Vm+79.23)))
          : 0.0;
beta_j  = (Vm < -40.0)
          ? 0.1212*exp(-0.01052*Vm)/(1.0+exp(-0.1378*(Vm+40.14)))
          : 0.3*exp(-0.0000002535*Vm)/(1.0+exp(-0.1*(Vm+32.0)));
alpha_d = 0.095*exp(-0.01*(Vm-5.0))/(1.0+exp(-0.072*(Vm-5.0)));
beta_d  = 0.07*exp(-0.017*(Vm+44.0))/(1.0+exp(0.05*(Vm+44.0)));
alpha_f = 0.012*exp(-0.008*(Vm+28.0))/(1.0+exp(0.15*(Vm+28.0)));
beta_f  = 0.0065*exp(-0.02*(Vm+30.0))/(1.0+exp(-0.2*(Vm+30.0)));
alpha_X = 0.0005*exp(0.083*(Vm+50.0))/(1.0+exp(0.057*(Vm+50.0)));
beta_X  = 0.0013*exp(-0.06*(Vm+20.0))/(1.0+exp(-0.04*(Vm+20.0)));

diff_m = alpha_m*(1.0-m) - beta_m*m;
diff_h = alpha_h*(1.0-h) - beta_h*h;
diff_j = alpha_j*(1.0-j) - beta_j*j;
diff_d = alpha_d*(1.0-d) - beta_d*d;
diff_f = alpha_f*(1.0-f) - beta_f*f;
diff_X = alpha_X*(1.0-X) - beta_X*X;
m_init = 0.0017; h_init = 0.9832; j_init = 0.9895;
d_init = 0.003;  f_init = 0.9999; X_init = 0.0057;
m; .method(rush_larsen);
h; .method(rush_larsen);
j; .method(rush_larsen);
d; .method(rush_larsen);
f; .method(rush_larsen);
X; .method(rush_larsen);

Esi = 7.7 - 13.0287*log(Cai);
INa = gNa*m*m*m*h*j*(Vm-ENa);
Isi = gsi*d*f*(Vm-Esi);
Xi  = (Vm > -100.0)
      ? ((fabs(Vm+77.0) < 1e-6) ? 0.608
         : 2.837*(exp(0.04*(Vm+77.0))-1.0)/((Vm+77.0)*exp(0.04*(Vm+35.0))))
      : 1.0;
IK  = gK*X*Xi*(Vm-EK);
ak1 = 1.02/(1.0+exp(0.2385*(Vm-EK1-59.215)));
bk1 = (0.49124*exp(0.08032*(Vm-EK1+5.476))
       + exp(0.06175*(Vm-EK1-594.31)))
      /(1.0+exp(-0.5143*(Vm-EK1+4.753)));
K1inf = ak1/(ak1+bk1);
IK1 = 0.6047*K1inf*(Vm-EK1);
Kp  = 1.0/(1.0+exp((7.488-Vm)/5.98));
IKp = 0.0183*Kp*(Vm-EK1);
Ib  = 0.03921*(Vm+59.87);

diff_Cai = -0.0001*Isi + 0.07*(0.0001 - Cai);
Cai_init = 0.0002;

Iion = INa + Isi + IK + IK1 + IKp + Ib;
)EML";

// --- Drouhard-Roberge 1987 (modified Beeler-Reuter INa) -----------------------
constexpr const char DrouhardRobergeSrc[] = R"EML(
# Drouhard & Roberge (1987), Comput Biomed Res 20:333-350.
Vm; .external(); .nodal(); .lookup(-100, 100, 0.05);
Iion; .external(); .nodal();
Vm_init = -84.0;

group{ gNa = 15.0; ENa = 40.0; gs = 0.09; }.param();

alpha_m = (fabs(Vm+42.65) < 1e-6) ? 4.0909
          : 0.9*(Vm+42.65)/(1.0-exp(-0.22*(Vm+42.65)));
beta_m  = 1.437*exp(-0.085*(Vm+39.75));
alpha_h = 0.1*exp(-0.193*(Vm+79.65));
beta_h  = 1.7/(1.0+exp(-0.095*(Vm+20.4)));
alpha_d = 0.095*exp(-0.01*(Vm-5.0))/(1.0+exp(-0.072*(Vm-5.0)));
beta_d  = 0.07*exp(-0.017*(Vm+44.0))/(1.0+exp(0.05*(Vm+44.0)));
alpha_f = 0.012*exp(-0.008*(Vm+28.0))/(1.0+exp(0.15*(Vm+28.0)));
beta_f  = 0.0065*exp(-0.02*(Vm+30.0))/(1.0+exp(-0.2*(Vm+30.0)));

diff_m = alpha_m*(1.0-m) - beta_m*m;
diff_h = alpha_h*(1.0-h) - beta_h*h;
diff_d = alpha_d*(1.0-d) - beta_d*d;
diff_f = alpha_f*(1.0-f) - beta_f*f;
m_init = 0.01; h_init = 0.99; d_init = 0.003; f_init = 0.99;
m; .method(rush_larsen);
h; .method(rush_larsen);
d; .method(rush_larsen);
f; .method(rush_larsen);

Es = -82.3 - 13.0287*log(Cai);
INa = gNa*m*m*m*h*(Vm-ENa);
Is  = gs*d*f*(Vm-Es);
IK1 = 0.35*(4.0*(exp(0.04*(Vm+85.0))-1.0)
        /(exp(0.08*(Vm+53.0))+exp(0.04*(Vm+53.0)))
      + 0.2*((fabs(Vm+23.0) < 1e-6) ? 25.0
             : (Vm+23.0)/(1.0-exp(-0.04*(Vm+23.0)))));

diff_Cai = -1.0e-7*Is + 0.07*(1.0e-7 - Cai);
Cai_init = 1.0e-7;

Iion = INa + Is + IK1;
)EML";

// --- Noble 1962 (Purkinje fibre) -----------------------------------------------
constexpr const char Noble62Src[] = R"EML(
# Noble (1962), J Physiol 160:317-352. Purkinje fibre adaptation of HH.
Vm; .external(); .nodal(); .lookup(-100, 100, 0.05);
Iion; .external(); .nodal();
Vm_init = -87.0;

group{ gNaMax = 400.0; ENa = 40.0; gL = 0.075; EL = -60.0; }.param();

alpha_m = (fabs(Vm+48.0) < 1e-6) ? 1.0
          : 0.1*(Vm+48.0)/(1.0-exp(-(Vm+48.0)/15.0));
beta_m  = (fabs(Vm+8.0) < 1e-6) ? 0.6
          : 0.12*(Vm+8.0)/(exp((Vm+8.0)/5.0)-1.0);
alpha_h = 0.17*exp(-(Vm+90.0)/20.0);
beta_h  = 1.0/(1.0+exp(-(Vm+42.0)/10.0));
alpha_n = (fabs(Vm+50.0) < 1e-6) ? 0.001
          : 0.0001*(Vm+50.0)/(1.0-exp(-(Vm+50.0)/10.0));
beta_n  = 0.002*exp(-(Vm+90.0)/80.0);

diff_m = alpha_m*(1.0-m) - beta_m*m;
diff_h = alpha_h*(1.0-h) - beta_h*h;
diff_n = alpha_n*(1.0-n) - beta_n*n;
m_init = 0.076; h_init = 0.606; n_init = 0.473;
m; .method(rush_larsen);
h; .method(rush_larsen);
n; .method(rush_larsen);

gNa = gNaMax*m*m*m*h;
gK1 = 1.2*exp(-(Vm+90.0)/50.0) + 0.015*exp((Vm+90.0)/60.0);
gK2 = 1.2*n*n*n*n;
INa = (gNa + 0.14)*(Vm-ENa);
IK  = (gK1 + gK2)*(Vm+100.0);
IL  = gL*(Vm-EL);
Iion = INa + IK + IL;
)EML";

// --- Mitchell-Schaeffer 2003 ------------------------------------------------------
constexpr const char MitchellSchaefferSrc[] = R"EML(
# Mitchell & Schaeffer (2003), Bull Math Biol 65:767-793.
Vm; .external(); .nodal();
Iion; .external(); .nodal();
Vm_init = -80.0;

group{ tau_in = 0.3; tau_out = 6.0; tau_open = 120.0; tau_close = 150.0;
       v_gate = 0.13; V_min = -80.0; V_max = 20.0; }.param();

u = (Vm - V_min)/(V_max - V_min);
J_in  = h*u*u*(1.0-u)/tau_in;
J_out = -u/tau_out;

if (u < v_gate) {
  dh = (1.0-h)/tau_open;
} else {
  dh = -h/tau_close;
}
diff_h = dh;
h_init = 1.0;

Iion = -(J_in + J_out)*(V_max - V_min);
)EML";

// --- Aliev-Panfilov 1996 --------------------------------------------------------
constexpr const char AlievPanfilovSrc[] = R"EML(
# Aliev & Panfilov (1996), Chaos Solitons Fractals 7:293-301.
Vm; .external(); .nodal();
Iion; .external(); .nodal();
Vm_init = -80.0;

group{ k = 8.0; a = 0.15; eps0 = 0.002; mu1 = 0.2; mu2 = 0.3;
       t_scale = 0.0129; }.param();

u = (Vm + 80.0)/100.0;
eps = eps0 + mu1*w/(u + mu2);
diff_w = t_scale*eps*(-w - k*u*(u - a - 1.0));
w_init = 0.0;

Iion = 100.0*t_scale*(k*u*(u - a)*(u - 1.0) + u*w);
)EML";

// --- Fenton-Karma 1998 -------------------------------------------------------------
constexpr const char FentonKarmaSrc[] = R"EML(
# Fenton & Karma (1998), Chaos 8:20-47. Three-variable reentry model.
Vm; .external(); .nodal();
Iion; .external(); .nodal();
Vm_init = -85.0;

group{ u_c = 0.13; u_v = 0.04; g_fi = 4.0;
       tau_r = 33.33; tau_si = 29.0; tau_0 = 12.5;
       tau_vp = 3.33; tau_vm1 = 1250.0; tau_vm2 = 19.6;
       tau_wp = 870.0; tau_wm = 41.0;
       u_csi = 0.85; kk = 10.0; }.param();

u = (Vm + 85.0)/100.0;
p = (u < u_c) ? 0.0 : 1.0;
q = (u < u_v) ? 0.0 : 1.0;

tau_vm = q*tau_vm1 + (1.0-q)*tau_vm2;
diff_v = (1.0-p)*(1.0-v)/tau_vm - p*v/tau_vp;
diff_w = (1.0-p)*(1.0-w)/tau_wm - p*w/tau_wp;
v_init = 1.0;
w_init = 1.0;

J_fi = -v*p*(1.0-u)*(u-u_c)*g_fi;
J_so = u*(1.0-p)/tau_0 + p/tau_r;
J_si = -w*(1.0+tanh(kk*(u-u_csi)))/(2.0*tau_si);

Iion = 100.0*(J_fi + J_so + J_si);
)EML";

// --- Plonsey (passive membrane with a single recovery variable) ------------------------
constexpr const char PlonseySrc[] = R"EML(
# Plonsey-style passive membrane patch with linear recovery.
Vm; .external(); .nodal();
Iion; .external(); .nodal();
Vm_init = -85.0;

group{ gm = 0.15; Em = -85.0; gw = 0.02; }.param();

diff_w = 0.05*((Vm - Em) - 4.0*w);
w_init = 0.0;

Iion = gm*(Vm - Em) + gw*w;
)EML";

// --- Pathmanathan (paper Listing 1, modified) --------------------------------------------
constexpr const char PathmanathanSrc[] = R"EML(
# Modified Pathmanathan-Gray verification model (paper Listing 1).
Vm; .external(); .nodal(); .lookup(-100, 100, 0.05);
Iion; .external(); .nodal();
group{ u1; u2; u3; }.nodal();

group{ Cm = 200.0; beta = 1.0; xi = 3.0; }.param();
u1_init = 0.0; u2_init = 0.0; u3_init = 0.0; Vm_init = 0.0;
diff_u3 = 0.0;
diff_u2 = -(u1+u3-Vm)*cube(u2);
diff_u1 = square(u1+u3-Vm)*square(u2)+0.5*(u1+u3-Vm);
u1; .method(rk2);

Iion = (-(Cm/2.0)*(u1+u3-Vm)*square(u2)*(Vm-u3)+beta);
)EML";

} // namespace

const std::vector<ClassicModel> &models::classicModels() {
  static const std::vector<ClassicModel> Models = {
      {"HodgkinHuxley", HodgkinHuxleySrc, 'M'},
      {"BeelerReuter", BeelerReuterSrc, 'M'},
      {"LuoRudy91", LuoRudy91Src, 'M'},
      {"DrouhardRoberge", DrouhardRobergeSrc, 'S'},
      {"Noble62", Noble62Src, 'M'},
      {"MitchellSchaeffer", MitchellSchaefferSrc, 'S'},
      {"AlievPanfilov", AlievPanfilovSrc, 'S'},
      {"FentonKarma", FentonKarmaSrc, 'M'},
      {"Plonsey", PlonseySrc, 'S'},
      {"Pathmanathan", PathmanathanSrc, 'S'},
  };
  return Models;
}
