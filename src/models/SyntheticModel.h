//===- SyntheticModel.h - Structured ionic-model generator ------*- C++-*-===//
//
// Generates EasyML sources for synthetic-but-structurally-faithful ionic
// models. The openCARP model suite the paper evaluates is not available
// offline, so the non-classical entries of the 43-model registry are
// produced by this generator, calibrated per model to the paper's
// small/medium/large classes: Hodgkin-Huxley-style gates with exponential
// rate functions (Rush-Larsen integrated, LUT-tabulatable), relaxing
// concentration pools, Markov-chain occupancies (markov_be), and a sum of
// conductance currents feeding Iion. See DESIGN.md, substitution 4.
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_MODELS_SYNTHETICMODEL_H
#define LIMPET_MODELS_SYNTHETICMODEL_H

#include <cstdint>
#include <string>

namespace limpet {
namespace models {

/// Shape parameters of one synthetic ionic model.
struct SyntheticSpec {
  std::string Name;
  uint64_t Seed = 1;

  int NumGates = 4;       ///< HH gates (rush_larsen / sundnes)
  int NumPools = 1;       ///< concentration-like fe variables
  int NumMarkov = 0;      ///< Markov occupancies (markov_be)
  int NumRk2 = 0;         ///< extra rk2-integrated variables
  int NumRk4 = 0;         ///< extra rk4-integrated variables
  int NumCurrents = 3;    ///< conductance currents summed into Iion
  bool UseLut = true;     ///< mark Vm with .lookup(-100, 100, 0.05)
  bool HeavyMath = false; ///< extra pow/log per current (ISAC_Hu-like)
};

/// Renders the EasyML source for \p Spec. Deterministic in Seed.
std::string generateSyntheticEasyML(const SyntheticSpec &Spec);

} // namespace models
} // namespace limpet

#endif // LIMPET_MODELS_SYNTHETICMODEL_H
