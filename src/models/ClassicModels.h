//===- ClassicModels.h - Hand-written EasyML ionic models -------*- C++-*-===//
//
// Faithful EasyML transcriptions of classical ionic models from the
// literature (Hodgkin-Huxley 1952, Beeler-Reuter 1977, Luo-Rudy 1991,
// Drouhard-Roberge 1987, Noble 1962, Mitchell-Schaeffer 2003,
// Aliev-Panfilov 1996, Fenton-Karma 1998, Plonsey, and the modified
// Pathmanathan model from the paper's Listing 1).
//
//===----------------------------------------------------------------------===//

#ifndef LIMPET_MODELS_CLASSICMODELS_H
#define LIMPET_MODELS_CLASSICMODELS_H

#include <string_view>
#include <vector>

namespace limpet {
namespace models {

struct ClassicModel {
  std::string_view Name;
  std::string_view Source;
  char SizeClass; ///< 'S', 'M' or 'L' (paper classification)
};

/// All hand-written classical models.
const std::vector<ClassicModel> &classicModels();

} // namespace models
} // namespace limpet

#endif // LIMPET_MODELS_CLASSICMODELS_H
