//===- Registry.cpp -------------------------------------------------------===//

#include "models/Registry.h"

#include "models/ClassicModels.h"
#include "models/SyntheticModel.h"

using namespace limpet;
using namespace limpet::models;

namespace {

struct SynthEntry {
  const char *Name;
  char SizeClass;
  SyntheticSpec Spec;
};

/// Builds the synthetic entries: openCARP model names carried by
/// calibrated workloads (DESIGN.md, substitution 4). Gate/pool/current
/// counts scale with the paper's class: small models have a handful of
/// state variables, large models tens of them with many currents.
std::vector<SynthEntry> syntheticEntries() {
  auto Spec = [](const char *Name, uint64_t Seed, int Gates, int Pools,
                 int Markov, int Rk2, int Rk4, int Currents, bool Lut,
                 bool Heavy) {
    SyntheticSpec S;
    S.Name = Name;
    S.Seed = Seed;
    S.NumGates = Gates;
    S.NumPools = Pools;
    S.NumMarkov = Markov;
    S.NumRk2 = Rk2;
    S.NumRk4 = Rk4;
    S.NumCurrents = Currents;
    S.UseLut = Lut;
    S.HeavyMath = Heavy;
    return S;
  };

  std::vector<SynthEntry> E;
  // --- small (3 synthetic + 5 classic = 8) -------------------------------
  // ISAC_Hu: costly math, no LUT (the paper calls this out explicitly).
  E.push_back({"ISAC_Hu", 'S',
               Spec("ISAC_Hu", 101, 1, 1, 0, 0, 0, 3, false, true)});
  E.push_back({"IKChCheng", 'S',
               Spec("IKChCheng", 102, 2, 0, 0, 0, 0, 2, true, false)});
  E.push_back({"Stress_Lumens", 'S',
               Spec("Stress_Lumens", 103, 1, 2, 0, 1, 0, 2, false, false)});

  // --- medium (17 synthetic + 5 classic = 22) ------------------------------
  E.push_back({"Stress_Niederer", 'M',
               Spec("Stress_Niederer", 201, 4, 3, 0, 1, 0, 5, false, false)});
  E.push_back({"MacCannell", 'M',
               Spec("MacCannell", 202, 4, 1, 0, 0, 0, 4, true, false)});
  E.push_back({"Maleckar", 'M',
               Spec("Maleckar", 203, 8, 2, 0, 0, 0, 8, true, false)});
  E.push_back({"Nygren", 'M',
               Spec("Nygren", 204, 9, 3, 0, 0, 0, 8, true, false)});
  E.push_back({"Ramirez", 'M',
               Spec("Ramirez", 205, 8, 2, 0, 1, 0, 7, true, false)});
  E.push_back({"Kurata", 'M',
               Spec("Kurata", 206, 7, 2, 0, 0, 0, 7, true, false)});
  E.push_back({"HilgemannNoble", 'M',
               Spec("HilgemannNoble", 207, 5, 3, 0, 0, 0, 6, true, false)});
  E.push_back({"DiFrancescoNoble", 'M',
               Spec("DiFrancescoNoble", 208, 6, 3, 0, 0, 0, 7, true, false)});
  E.push_back({"FoxMcHargGilmour", 'M',
               Spec("FoxMcHargGilmour", 209, 8, 2, 0, 0, 0, 8, true,
                    false)});
  E.push_back({"Campbell", 'M',
               Spec("Campbell", 210, 5, 2, 0, 1, 0, 5, true, false)});
  E.push_back({"Sachse", 'M',
               Spec("Sachse", 211, 5, 1, 1, 0, 0, 5, true, false)});
  E.push_back({"Stewart", 'M',
               Spec("Stewart", 212, 9, 2, 0, 0, 0, 8, true, false)});
  E.push_back({"LuoRudy94", 'M',
               Spec("LuoRudy94", 213, 8, 3, 0, 0, 0, 8, true, false)});
  E.push_back({"Demir", 'M',
               Spec("Demir", 214, 7, 3, 0, 0, 0, 7, true, false)});
  E.push_back({"Inada", 'M',
               Spec("Inada", 215, 7, 2, 0, 1, 0, 7, true, false)});
  E.push_back({"Courtemanche", 'M',
               Spec("Courtemanche", 216, 10, 3, 0, 0, 0, 9, true, false)});
  E.push_back({"ARPF", 'M',
               Spec("ARPF", 217, 8, 2, 0, 0, 1, 7, true, false)});

  // --- large (13 synthetic) --------------------------------------------------
  E.push_back({"OHara", 'L',
               Spec("OHara", 301, 14, 4, 2, 1, 0, 14, true, false)});
  E.push_back({"GrandiPanditVoigt", 'L',
               Spec("GrandiPanditVoigt", 302, 15, 4, 1, 0, 1, 16, true,
                    true)});
  E.push_back({"GrandiPasqualiniBers", 'L',
               Spec("GrandiPasqualiniBers", 303, 14, 4, 1, 0, 0, 14, true,
                    true)});
  E.push_back({"WangSobie", 'L',
               Spec("WangSobie", 304, 12, 3, 2, 0, 0, 12, true, false)});
  E.push_back({"TenTusscherPanfilov", 'L',
               Spec("TenTusscherPanfilov", 305, 12, 4, 0, 1, 0, 12, true,
                    false)});
  E.push_back({"IyerMazhariWinslow", 'L',
               Spec("IyerMazhariWinslow", 306, 13, 3, 3, 0, 0, 13, true,
                    false)});
  E.push_back({"Shannon", 'L',
               Spec("Shannon", 307, 13, 4, 1, 0, 0, 13, true, false)});
  E.push_back({"UCLA_RAB", 'L',
               Spec("UCLA_RAB", 308, 12, 4, 1, 1, 0, 12, true, false)});
  E.push_back({"Mahajan", 'L',
               Spec("Mahajan", 309, 12, 3, 1, 0, 0, 12, true, false)});
  E.push_back({"PanditGiles", 'L',
               Spec("PanditGiles", 310, 11, 3, 1, 0, 0, 11, true, false)});
  E.push_back({"HundRudy", 'L',
               Spec("HundRudy", 311, 12, 4, 1, 0, 0, 12, true, false)});
  E.push_back({"LivshitzRudy", 'L',
               Spec("LivshitzRudy", 312, 11, 3, 0, 1, 0, 11, true, false)});
  E.push_back({"ClancyRudy", 'L',
               Spec("ClancyRudy", 313, 11, 3, 3, 0, 0, 12, true, false)});
  return E;
}

std::vector<ModelEntry> buildRegistry() {
  std::vector<ModelEntry> Registry;
  for (const ClassicModel &C : classicModels())
    Registry.push_back({std::string(C.Name), std::string(C.Source),
                        C.SizeClass, /*IsClassic=*/true});
  for (const SynthEntry &S : syntheticEntries())
    Registry.push_back({S.Name, generateSyntheticEasyML(S.Spec), S.SizeClass,
                        /*IsClassic=*/false});
  // Order small -> medium -> large, stable within a class.
  std::vector<ModelEntry> Ordered;
  for (char Class : {'S', 'M', 'L'})
    for (ModelEntry &M : Registry)
      if (M.SizeClass == Class)
        Ordered.push_back(std::move(M));
  return Ordered;
}

} // namespace

const std::vector<ModelEntry> &models::modelRegistry() {
  static const std::vector<ModelEntry> Registry = buildRegistry();
  return Registry;
}

const ModelEntry *models::findModel(std::string_view Name) {
  for (const ModelEntry &M : modelRegistry())
    if (M.Name == Name)
      return &M;
  return nullptr;
}

size_t models::countClass(char SizeClass) {
  size_t N = 0;
  for (const ModelEntry &M : modelRegistry())
    if (M.SizeClass == SizeClass)
      ++N;
  return N;
}
