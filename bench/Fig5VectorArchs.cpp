//===- Fig5VectorArchs.cpp - paper Figure 5 -------------------------------------===//
//
// Geometric-mean speedup of limpetMLIR over the baseline for the three
// vector "architectures" (SSE ≙ 2 lanes, AVX2 ≙ 4, AVX-512 ≙ 8) across
// thread counts 1..32 (powers of two). Paper expectation: AVX-512 > AVX2
// > SSE at every thread count; overall geomean across everything 2.90x.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <map>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::exec;

int main() {
  BenchProtocol Protocol = BenchProtocol::fromEnv(2048, 30, 1);
  printBanner("Figure 5: geomean speedup per vector architecture vs. "
              "threads",
              "Fig. 5 (AVX-512 > AVX2 > SSE; overall geomean 2.90x)",
              Protocol);

  const unsigned ThreadCounts[] = {1, 2, 4, 8, 16, 32};
  const unsigned Widths[] = {2, 4, 8};
  const char *WidthNames[] = {"SSE(w2)", "AVX2(w4)", "AVX-512(w8)"};

  ModelCache Cache;
  // speedups[width][threads] = vector of per-model speedups.
  std::map<unsigned, std::map<unsigned, std::vector<double>>> Speedups;

  for (const models::ModelEntry *M : selectedModels()) {
    const CompiledModel &Base = Cache.get(*M, EngineConfig::baseline());
    std::map<unsigned, double> BaseTime;
    for (unsigned T : ThreadCounts)
      BaseTime[T] = timeSimulation(Base, Protocol, T);
    for (unsigned W : Widths) {
      const CompiledModel &Vec = Cache.get(*M, EngineConfig::limpetMLIR(W));
      for (unsigned T : ThreadCounts) {
        double TVec = timeSimulation(Vec, Protocol, T);
        Speedups[W][T].push_back(BaseTime[T] / TVec);
      }
    }
  }

  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"architecture", "t=1", "t=2", "t=4", "t=8", "t=16",
                  "t=32"});
  std::vector<double> Everything;
  for (size_t WI = 0; WI != 3; ++WI) {
    std::vector<std::string> Row = {WidthNames[WI]};
    for (unsigned T : ThreadCounts) {
      auto &V = Speedups[Widths[WI]][T];
      Row.push_back(formatFixed(geomean(V), 2) + "x");
      Everything.insert(Everything.end(), V.begin(), V.end());
    }
    Rows.push_back(std::move(Row));
  }
  std::printf("%s", renderTable(Rows).c_str());
  std::printf("\noverall geomean (all models x architectures x threads): "
              "%.2fx   (paper: 2.90x)\n",
              geomean(Everything));
  return 0;
}
