//===- Fig4Scaling.cpp - paper Figure 4 ----------------------------------------===//
//
// Average execution time of the three model classes (small/medium/large)
// for the baseline and limpetMLIR versions across 1..32 threads. The
// paper shows near-ideal scaling for large models, flattening curves for
// small models, and the limpetMLIR lines consistently below the baseline
// for medium/large classes.
//
// Hardware gate: single-core container — thread curves are flat here.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <map>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::exec;

int main() {
  BenchProtocol Protocol = BenchProtocol::fromEnv(2048, 40, 1);
  printBanner("Figure 4: class-average execution time vs. threads",
              "Fig. 4 (large models scale near-ideally; small flatten)",
              Protocol);

  const unsigned ThreadCounts[] = {1, 2, 4, 8, 16, 32};
  ModelCache Cache;

  // Accumulate average times per (class, version, threads).
  std::map<char, std::map<unsigned, double>> BaseAvg, VecAvg;
  std::map<char, int> ClassCount;

  for (const models::ModelEntry *M : selectedModels()) {
    const CompiledModel &Base = Cache.get(*M, EngineConfig::baseline());
    const CompiledModel &Vec = Cache.get(*M, EngineConfig::limpetMLIR(8));
    ++ClassCount[M->SizeClass];
    for (unsigned T : ThreadCounts) {
      BaseAvg[M->SizeClass][T] += timeSimulation(Base, Protocol, T);
      VecAvg[M->SizeClass][T] += timeSimulation(Vec, Protocol, T);
    }
  }

  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"class", "version", "t=1", "t=2", "t=4", "t=8", "t=16",
                  "t=32"});
  for (char C : {'S', 'M', 'L'}) {
    if (!ClassCount[C])
      continue;
    for (bool IsVec : {false, true}) {
      std::vector<std::string> Row = {
          className(C), IsVec ? "limpetMLIR" : "baseline"};
      for (unsigned T : ThreadCounts) {
        double Avg = (IsVec ? VecAvg : BaseAvg)[C][T] / ClassCount[C];
        Row.push_back(formatFixed(Avg * 1000, 1) + "ms");
      }
      Rows.push_back(std::move(Row));
    }
  }
  std::printf("%s", renderTable(Rows).c_str());
  std::printf("\npaper shape: per-class averages drop ~linearly with "
              "threads on a 32-core machine;\nlarge-model limpetMLIR stays "
              "8-10x below baseline at every thread count.\n");
  return 0;
}
