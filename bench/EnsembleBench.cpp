//===- EnsembleBench.cpp - batched sweep vs independent simulators --------===//
//
// The ensemble engine's amortization claim, measured: an N-point
// parameter sweep stepped as ONE packed population (one lowered compile,
// one LUT build, one shard plan, contiguous vector blocks across member
// boundaries) against the same N points run as N independent Simulators
// (shared compile, but per-instance construction and a 1-cell scalar
// stepping loop each). Timed regions include construction, because the
// per-member setup cost is exactly what the ensemble amortizes.
//
// LIMPET_BENCH_CELLS sets the member count (1 cell per member); the
// NDJSON rows feed the same bench_compare.py gate as the figure benches.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "easyml/Sema.h"
#include "sim/Ensemble.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::exec;

namespace {

const char *kBenchTitle = "Ensemble: N-member sweep vs N independent "
                          "simulators (cell-steps/s)";

double averaged(std::vector<double> Times, const BenchProtocol &P) {
  if (P.DropExtrema && Times.size() >= 3) {
    std::sort(Times.begin(), Times.end());
    Times.erase(Times.begin());
    Times.pop_back();
  }
  double Sum = 0;
  for (double S : Times)
    Sum += S;
  return Sum / double(Times.size());
}

} // namespace

int main() {
  BenchProtocol Protocol = BenchProtocol::fromEnv(1024, 100, 3);
  printBanner(kBenchTitle,
              "engine extension: fault-isolated batched parameter sweeps "
              "(not a paper figure)",
              Protocol);

  const models::ModelEntry *Entry = models::findModel("HodgkinHuxley");
  if (!Entry) {
    std::fprintf(stderr, "error: HodgkinHuxley not in the registry\n");
    return 1;
  }
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(Entry->Name, Entry->Source, Diags);
  if (!Info) {
    std::fprintf(stderr, "error: frontend: %s\n", Diags.str().c_str());
    return 1;
  }

  const int64_t Members = std::max<int64_t>(Protocol.NumCells, 2);
  const EngineConfig Cfg = EngineConfig::limpetMLIR(8);
  std::string Sweep =
      "gNa=90:130:" + std::to_string(Members); // N distinct points

  // One lowered compile for the whole sweep, timed: this is the cold
  // cost the ensemble pays once, against N x per-instance setup below.
  auto TSetup0 = std::chrono::steady_clock::now();
  Expected<sim::EnsembleSpec> Spec = sim::EnsembleSpec::fromSweep(Sweep, 1);
  if (!Spec) {
    std::fprintf(stderr, "error: %s\n", Spec.status().message().c_str());
    return 1;
  }
  Expected<sim::EnsembleModel> EM =
      sim::buildEnsembleModel(*Info, std::move(*Spec), Cfg);
  if (!EM) {
    std::fprintf(stderr, "error: %s\n", EM.status().message().c_str());
    return 1;
  }
  double EnsembleCompileSec = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - TSetup0)
                                  .count();

  // The independent baseline shares ONE compiled model (the VM reads
  // parameters at run time), so the comparison isolates per-instance
  // setup + stepping; a per-member *compile* would only widen the gap.
  ModelCache Cache;
  const CompiledModel &Base = Cache.get(*Entry, Cfg);

  auto MemberValue = [&](int64_t M) {
    return 90.0 + 40.0 * double(M) / double(Members - 1);
  };

  struct Row {
    std::string Label;
    unsigned Threads;
    double Seconds;
  };
  std::vector<Row> Result;
  int Repeats = std::max(Protocol.Repeats, 1);

  // Batched: construct + run the whole sweep as one population.
  for (unsigned Threads : {1u, 2u, 8u}) {
    std::vector<double> Times;
    for (int R = 0; R != Repeats; ++R) {
      auto T0 = std::chrono::steady_clock::now();
      sim::SimOptions Opts;
      Opts.NumSteps = Protocol.NumSteps;
      Opts.NumThreads = Threads;
      Opts.StimPeriod = 20.0;
      Opts.Guard.Enabled = Protocol.GuardRails;
      sim::EnsembleRunner S(*EM, Opts);
      S.run();
      Times.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - T0)
                          .count());
      if (S.membersOk() != Members) {
        std::fprintf(stderr, "error: sweep lost members\n");
        return 1;
      }
    }
    Result.push_back({"ensemble", Threads, averaged(Times, Protocol)});
  }

  // Independent: N fresh Simulators, each one member's point via
  // setParam, stepped back to back (1 cell each, so extra threads
  // cannot help; the loop is the N-jobs-on-one-box shape).
  {
    std::vector<double> Times;
    for (int R = 0; R != Repeats; ++R) {
      auto T0 = std::chrono::steady_clock::now();
      for (int64_t M = 0; M != Members; ++M) {
        sim::SimOptions Opts;
        Opts.NumCells = 1;
        Opts.NumSteps = Protocol.NumSteps;
        Opts.StimPeriod = 20.0;
        Opts.Guard.Enabled = Protocol.GuardRails;
        sim::Simulator S(Base, Opts);
        (void)S.setParam("gNa", MemberValue(M));
        S.run();
      }
      Times.push_back(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - T0)
                          .count());
    }
    Result.push_back({"independent", 1, averaged(Times, Protocol)});
  }

  double CellSteps = double(Members) * double(Protocol.NumSteps);
  double IndependentSec = Result.back().Seconds;

  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"variant", "threads", "members", "cell-steps/s",
                  "ns/cell-step", "seconds", "speedup"});
  for (const Row &R : Result) {
    BenchStat S;
    S.Bench = kBenchTitle;
    S.Model = Entry->Name;
    S.Config = R.Label;
    S.Threads = R.Threads;
    S.Cells = Members;
    S.Steps = Protocol.NumSteps;
    S.Repeats = Repeats;
    S.Seconds = R.Seconds;
    S.NsPerCellStep = R.Seconds * 1e9 / CellSteps;
    S.CellStepsPerSec = CellSteps / R.Seconds;
    recordBenchStat(S);
    Rows.push_back({R.Label, std::to_string(R.Threads),
                    std::to_string(Members),
                    formatFixed(S.CellStepsPerSec, 0),
                    formatFixed(S.NsPerCellStep, 2),
                    formatFixed(R.Seconds, 4),
                    formatFixed(IndependentSec / R.Seconds, 2) + "x"});
  }
  std::printf("%s", renderTable(Rows).c_str());
  std::printf("\nensemble cold setup (spec + lowered compile): %s ms, "
              "amortized over %lld members\n",
              formatFixed(EnsembleCompileSec * 1e3, 1).c_str(),
              (long long)Members);
  std::printf("expected shape: the packed sweep wins even single-threaded "
              "(vector blocks\nspan member boundaries, one LUT build, one "
              "scheduler) and scales with\nthreads; the independent loop "
              "pays per-instance setup and scalar 1-cell\nstepping, and "
              "cannot use threads at all.\n");
  return 0;
}
