//===- TabAutovecComparison.cpp - paper Sec. 5 ------------------------------------===//
//
// The paper's discussion compares icc's auto-vectorization (OpenMP simd,
// 2.19x AVX-512 geomean) against limpetMLIR (3.37x): auto-vectorization
// vectorizes the arithmetic but cannot restructure the data layout. The
// analogue here is the vector engine with the unmodified AoS layout
// ("auto-vec-like") versus full limpetMLIR (AoSoA).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::exec;

int main() {
  BenchProtocol Protocol = BenchProtocol::fromEnv(4096, 80, 3);
  printBanner("Sec. 5 table: auto-vectorizer-like vs. limpetMLIR (8 "
              "lanes, 1 thread)",
              "Sec. 5 (icc auto-vec 2.19x vs limpetMLIR 3.37x)", Protocol);

  ModelCache Cache;
  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"model", "class", "auto-vec-like", "limpetMLIR"});
  std::vector<double> AutoAll, FullAll;

  for (const models::ModelEntry *M : selectedModels()) {
    const CompiledModel &Base = Cache.get(*M, EngineConfig::baseline());
    double TBase = timeSimulation(Base, Protocol, 1);
    double SAuto =
        TBase /
        timeSimulation(Cache.get(*M, EngineConfig::autoVecLike(8)),
                       Protocol, 1);
    double SFull =
        TBase /
        timeSimulation(Cache.get(*M, EngineConfig::limpetMLIR(8)),
                       Protocol, 1);
    AutoAll.push_back(SAuto);
    FullAll.push_back(SFull);
    Rows.push_back({M->Name, className(M->SizeClass),
                    formatFixed(SAuto, 2) + "x",
                    formatFixed(SFull, 2) + "x"});
  }

  std::printf("%s", renderTable(Rows).c_str());
  std::printf("\ngeomean: auto-vec-like %.2fx, limpetMLIR %.2fx   "
              "(paper: 2.19x vs 3.37x)\n",
              geomean(AutoAll), geomean(FullAll));
  return 0;
}
