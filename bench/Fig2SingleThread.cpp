//===- Fig2SingleThread.cpp - paper Figure 2 ---------------------------------===//
//
// Per-model speedup of limpetMLIR (8-lane vectors ≙ AVX-512, AoSoA layout,
// vector LUT + math) over the openCARP baseline (scalar, AoS, libm), on a
// single thread, over all 43 models ordered small -> medium -> large.
//
// Paper expectation: geomean 5.25x on AVX-512, peaks >15x on some models,
// low/irregular speedups for small models, consistent speedups for large
// ones. Absolute magnitudes here are lower (interpreted engines instead of
// native MLIR codegen; see EXPERIMENTS.md), but the shape carries.
//
// When the box has a C++ toolchain a third column measures the native
// kernel tier — the same vector configuration lowered to machine code via
// the KernelEmitter (docs/COMPILER.md). This is the closest analogue to
// the paper's actual MLIR-compiled kernels; on a compiler-less box the
// column silently repeats the VM timing (ModelCache falls back).
//
// A fourth column measures each model at its autotuned execution point
// (--width=auto): the per-model (layout, width) winner from the persisted
// tuning record, tuned on first use. Its NDJSON rows are labeled "auto"
// so the row key stays stable across hosts that tune to different points.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <map>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::exec;

int main() {
  BenchProtocol Protocol = BenchProtocol::fromEnv(4096, 100, 3);
  printBanner("Figure 2: per-model speedup, 1 thread, 8-lane vectors "
              "(AVX-512 analogue)",
              "Fig. 2 (geomean 5.25x, peak >26x)", Protocol);

  ModelCache Cache;
  // Compile the configurations of every selected model up front, fanned
  // out over the thread pool (warm LIMPET_CACHE_DIR runs skip codegen).
  // The auto column compiles at the autotuned execution point: persisted
  // records are reused, otherwise the tuner benchmarks every registry
  // point once and persists the winner.
  Cache.setAutotune(true);
  Cache.prewarm(selectedModels(),
                {EngineConfig::baseline(), EngineConfig::limpetMLIR(8),
                 EngineConfig::autoTuned()});
  // Probe whether the native tier is live on this box with the first
  // model; one warning instead of 43.
  bool NativeLive = false;
  {
    const std::vector<const models::ModelEntry *> Sel = selectedModels();
    if (!Sel.empty())
      NativeLive = Cache.get(*Sel.front(), EngineConfig::limpetMLIR(8),
                             EngineTier::Native)
                       .usingNativeTier();
    if (!NativeLive)
      std::fprintf(stderr,
                   "warning: native kernel tier unavailable (no C++ "
                   "toolchain?); native column repeats the VM timing\n");
  }
  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"model", "class", "baseline(s)", "limpetMLIR(s)",
                  "native(s)", "auto(s)", "speedup", "native-speedup",
                  "auto-speedup"});
  std::vector<double> All, AllNative, AllAuto;
  std::map<char, std::vector<double>> PerClass;
  sim::RunReport Guard;

  for (const models::ModelEntry *M : selectedModels()) {
    const CompiledModel &Base = Cache.get(*M, EngineConfig::baseline());
    const CompiledModel &Vec = Cache.get(*M, EngineConfig::limpetMLIR(8));
    const CompiledModel &Nat =
        Cache.get(*M, EngineConfig::limpetMLIR(8), EngineTier::Native);
    const CompiledModel &Auto = Cache.get(*M, EngineConfig::autoTuned());
    double TBase = timeSimulation(Base, Protocol, 1, &Guard);
    double TVec = timeSimulation(Vec, Protocol, 1, &Guard);
    double TNat = timeSimulation(Nat, Protocol, 1, &Guard);
    // The label "auto" keeps the NDJSON row key stable across machines
    // whose tuners resolve different concrete points.
    double TAuto = timeSimulation(Auto, Protocol, 1, &Guard, "auto");
    double Speedup = TBase / TVec;
    double NatSpeedup = TBase / TNat;
    double AutoSpeedup = TBase / TAuto;
    All.push_back(Speedup);
    AllNative.push_back(NatSpeedup);
    AllAuto.push_back(AutoSpeedup);
    PerClass[M->SizeClass].push_back(Speedup);
    Rows.push_back({M->Name, className(M->SizeClass),
                    formatFixed(TBase, 4), formatFixed(TVec, 4),
                    formatFixed(TNat, 4), formatFixed(TAuto, 4),
                    formatFixed(Speedup, 2) + "x",
                    formatFixed(NatSpeedup, 2) + "x",
                    formatFixed(AutoSpeedup, 2) + "x"});
  }

  std::printf("%s", renderTable(Rows).c_str());
  std::printf("\ngeomean speedup (all):    %.2fx   (paper: 5.25x)\n",
              geomean(All));
  std::printf("geomean native speedup:   %.2fx   (%s)\n", geomean(AllNative),
              NativeLive ? "compiled kernel tier" : "VM fallback");
  std::printf("geomean auto speedup:     %.2fx   (tuned execution point "
              "per model)\n",
              geomean(AllAuto));
  for (char C : {'S', 'M', 'L'})
    if (!PerClass[C].empty())
      std::printf("geomean speedup (%-6s): %.2fx\n", className(C).c_str(),
                  geomean(PerClass[C]));
  if (Protocol.GuardRails)
    std::printf("\nguard-rail %s", Guard.str().c_str());
  return 0;
}
