//===- MicroBenchmarks.cpp - google-benchmark microbenchmarks --------------------===//
//
// Component-level microbenchmarks backing the figure-level results:
// vectorizable math vs libm (the SVML substitution), LUT interpolation vs
// recomputation, layout access patterns, engine dispatch overhead, and
// frontend/codegen compile time.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "easyml/Sema.h"
#include "models/Registry.h"
#include "runtime/Lut.h"
#include "runtime/VecMath.h"
#include "support/Telemetry.h"

#include <benchmark/benchmark.h>
#include <cmath>
#include <random>

using namespace limpet;

namespace {

std::vector<double> voltages(size_t N) {
  std::mt19937_64 Rng(42);
  std::uniform_real_distribution<double> Dist(-90.0, 40.0);
  std::vector<double> V(N);
  for (double &X : V)
    X = Dist(Rng);
  return V;
}

//===----------------------------------------------------------------------===//
// VecMath vs libm (the SVML substitution)
//===----------------------------------------------------------------------===//

void BM_LibmExp(benchmark::State &State) {
  auto X = voltages(4096);
  for (auto _ : State) {
    double Sum = 0;
    for (double V : X)
      Sum += std::exp(V * 0.04);
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * 4096);
}
BENCHMARK(BM_LibmExp);

void BM_VecMathExp(benchmark::State &State) {
  auto X = voltages(4096);
  for (auto _ : State) {
    double Sum = 0;
    for (double V : X)
      Sum += vecmath::fastExp(V * 0.04);
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * 4096);
}
BENCHMARK(BM_VecMathExp);

void BM_LibmTanh(benchmark::State &State) {
  auto X = voltages(4096);
  for (auto _ : State) {
    double Sum = 0;
    for (double V : X)
      Sum += std::tanh(V * 0.1);
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * 4096);
}
BENCHMARK(BM_LibmTanh);

void BM_VecMathTanh(benchmark::State &State) {
  auto X = voltages(4096);
  for (auto _ : State) {
    double Sum = 0;
    for (double V : X)
      Sum += vecmath::fastTanh(V * 0.1);
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * 4096);
}
BENCHMARK(BM_VecMathTanh);

//===----------------------------------------------------------------------===//
// LUT interpolation vs direct recomputation (Sec. 3.4.2 microcosm)
//===----------------------------------------------------------------------===//

void BM_GateRatesRecompute(benchmark::State &State) {
  auto X = voltages(4096);
  for (auto _ : State) {
    double Sum = 0;
    for (double V : X) {
      // A Hodgkin-Huxley-like rate pair.
      double A = 0.1 * (V + 40.0) / (1.0 - vecmath::fastExp(-(V + 40.0) / 10.0));
      double B = 4.0 * vecmath::fastExp(-(V + 65.0) / 18.0);
      Sum += A + B;
    }
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * 4096);
}
BENCHMARK(BM_GateRatesRecompute);

void BM_GateRatesLutInterp(benchmark::State &State) {
  runtime::LutTable T(-100, 100, 0.05, 2);
  for (int R = 0; R != T.rows(); ++R) {
    double V = T.rowX(R);
    T.at(R, 0) = 0.1 * (V + 40.0) / (1.0 - std::exp(-(V + 40.0) / 10.0));
    T.at(R, 1) = 4.0 * std::exp(-(V + 65.0) / 18.0);
  }
  auto X = voltages(4096);
  for (auto _ : State) {
    double Sum = 0;
    for (double V : X) {
      int64_t Idx;
      double Frac;
      T.coord(V, Idx, Frac);
      Sum += T.interp(Idx, Frac, 0) + T.interp(Idx, Frac, 1);
    }
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * 4096);
}
BENCHMARK(BM_GateRatesLutInterp);

//===----------------------------------------------------------------------===//
// Layout access patterns (Sec. 3.4.1 microcosm)
//===----------------------------------------------------------------------===//

constexpr int64_t LayoutCells = 8192;
constexpr int64_t LayoutSv = 20;

template <codegen::StateLayout Layout>
void BM_LayoutSweep(benchmark::State &State) {
  std::vector<double> Data(size_t(LayoutCells) * LayoutSv, 1.0);
  for (auto _ : State) {
    double Sum = 0;
    // Vector-style traversal: for each sv, touch 8-cell blocks.
    for (int64_t C = 0; C + 8 <= LayoutCells; C += 8)
      for (int64_t Sv = 0; Sv != LayoutSv; ++Sv)
        for (int64_t L = 0; L != 8; ++L)
          Sum += Data[size_t(codegen::stateIndex(Layout, C + L, Sv,
                                                 LayoutSv, LayoutCells, 8))];
    benchmark::DoNotOptimize(Sum);
  }
  State.SetBytesProcessed(State.iterations() * LayoutCells * LayoutSv * 8);
}
BENCHMARK(BM_LayoutSweep<codegen::StateLayout::AoS>)->Name("BM_LayoutAoS");
BENCHMARK(BM_LayoutSweep<codegen::StateLayout::SoA>)->Name("BM_LayoutSoA");
BENCHMARK(BM_LayoutSweep<codegen::StateLayout::AoSoA>)
    ->Name("BM_LayoutAoSoA");

//===----------------------------------------------------------------------===//
// Whole-kernel step cost per engine (dispatch amortization)
//===----------------------------------------------------------------------===//

void benchKernelStep(benchmark::State &State, const char *ModelName,
                     exec::EngineConfig Cfg) {
  static bench::ModelCache Cache;
  const models::ModelEntry *M = models::findModel(ModelName);
  const exec::CompiledModel &Model = Cache.get(*M, Cfg);
  sim::SimOptions Opts;
  Opts.NumCells = 4096;
  Opts.NumSteps = 1;
  sim::Simulator S(Model, Opts);
  telemetry::RuntimeCounters Before = telemetry::runtimeCounters();
  for (auto _ : State)
    S.step();
  State.SetItemsProcessed(State.iterations() * Opts.NumCells);

  // One NDJSON record per benchmark (LIMPET_BENCH_STATS), with the
  // per-cell-step rates derived from the telemetry deltas.
  telemetry::RuntimeCounters After = telemetry::runtimeCounters();
  bench::BenchStat Stat;
  Stat.Bench = "MicroBenchmarks/kernel-step";
  Stat.Model = ModelName;
  Stat.Config = exec::engineConfigName(Cfg);
  Stat.Cells = Opts.NumCells;
  Stat.Steps = State.iterations();
  Stat.Seconds =
      double(After.KernelNs - Before.KernelNs) / 1e9;
  uint64_t DCells = After.CellSteps - Before.CellSteps;
  uint64_t DNs = After.KernelNs - Before.KernelNs;
  Stat.NsPerCellStep = DCells ? double(DNs) / double(DCells) : 0.0;
  Stat.CellStepsPerSec = DNs ? double(DCells) * 1e9 / double(DNs) : 0.0;
  Stat.LutInterps = After.LutInterps - Before.LutInterps;
  Stat.FastMathCalls = After.FastMathCalls - Before.FastMathCalls;
  Stat.LibmCalls = After.LibmCalls - Before.LibmCalls;
  bench::recordBenchStat(Stat);
}

void BM_StepCourtemancheScalar(benchmark::State &State) {
  benchKernelStep(State, "Courtemanche", exec::EngineConfig::baseline());
}
BENCHMARK(BM_StepCourtemancheScalar);

void BM_StepCourtemancheVec8(benchmark::State &State) {
  benchKernelStep(State, "Courtemanche", exec::EngineConfig::limpetMLIR(8));
}
BENCHMARK(BM_StepCourtemancheVec8);

void BM_StepOHaraScalar(benchmark::State &State) {
  benchKernelStep(State, "OHara", exec::EngineConfig::baseline());
}
BENCHMARK(BM_StepOHaraScalar);

void BM_StepOHaraVec8(benchmark::State &State) {
  benchKernelStep(State, "OHara", exec::EngineConfig::limpetMLIR(8));
}
BENCHMARK(BM_StepOHaraVec8);

//===----------------------------------------------------------------------===//
// Compile-time cost of the full pipeline
//===----------------------------------------------------------------------===//

void BM_CompileHodgkinHuxley(benchmark::State &State) {
  const models::ModelEntry *M = models::findModel("HodgkinHuxley");
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
    auto Compiled = exec::CompiledModel::compile(
        *Info, exec::EngineConfig::limpetMLIR(8));
    benchmark::DoNotOptimize(Compiled->program().Body.size());
  }
}
BENCHMARK(BM_CompileHodgkinHuxley);

void BM_CompileOHara(benchmark::State &State) {
  const models::ModelEntry *M = models::findModel("OHara");
  for (auto _ : State) {
    DiagnosticEngine Diags;
    auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
    auto Compiled = exec::CompiledModel::compile(
        *Info, exec::EngineConfig::limpetMLIR(8));
    benchmark::DoNotOptimize(Compiled->program().Body.size());
  }
}
BENCHMARK(BM_CompileOHara);

} // namespace
