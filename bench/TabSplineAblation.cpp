//===- TabSplineAblation.cpp - paper Sec. 7 future work --------------------------===//
//
// The paper's conclusion proposes "an efficient spline interpolation
// method to replace or complement the currently used linear
// interpolation". This bench implements that study: four-point cubic
// interpolation permits a much coarser table for the same accuracy, so
// the interesting trade-off is (rows x columns) memory footprint and
// per-lookup cost versus accuracy.
//
// Protocol: a LUT-heavy model is run with (a) linear interpolation at the
// model's native step, (b) cubic at the native step, (c) cubic at a 10x
// coarser step. Accuracy is the state-checksum deviation from the exact
// (no-LUT) run after a full simulation.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "easyml/Sema.h"
#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::exec;

namespace {

/// Re-scales every .lookup step in a model source by \p Factor.
std::string coarsenLookups(const std::string &Source, double Factor) {
  std::string Out;
  size_t Pos = 0;
  while (true) {
    size_t At = Source.find(".lookup(", Pos);
    if (At == std::string::npos) {
      Out += Source.substr(Pos);
      return Out;
    }
    size_t Close = Source.find(')', At);
    Out += Source.substr(Pos, At - Pos);
    std::string Args = Source.substr(At + 8, Close - At - 8);
    auto Parts = splitString(Args, ',');
    double Step = std::atof(Parts[2].c_str()) * Factor;
    Out += ".lookup(" + Parts[0] + "," + Parts[1] + ", " +
           formatDouble(Step) + ")";
    Pos = Close + 1;
  }
}

struct Arm {
  const char *Label;
  double Time = 0;
  double Error = 0;
  size_t TableDoubles = 0;
};

} // namespace

int main() {
  BenchProtocol Protocol = BenchProtocol::fromEnv(4096, 120, 3);
  printBanner("Sec. 7 future-work table: spline vs linear LUT "
              "interpolation",
              "Conclusion ('efficient spline interpolation ... to replace "
              "or complement')",
              Protocol);

  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"model", "arm", "table KiB", "time(s)",
                  "|err| vs exact"});

  for (const char *Name : {"HodgkinHuxley", "BeelerReuter", "Courtemanche",
                           "OHara"}) {
    const models::ModelEntry *M = models::findModel(Name);
    if (!M)
      continue;

    auto RunArm = [&](const std::string &Source, EngineConfig Cfg,
                      Arm &Out) {
      DiagnosticEngine Diags;
      auto Info = easyml::compileModelInfo(M->Name, Source, Diags);
      auto Model = CompiledModel::compile(*Info, Cfg);
      Out.Time = timeSimulation(*Model, Protocol, 1);
      sim::SimOptions Opts;
      Opts.NumCells = 64;
      Opts.NumSteps = Protocol.NumSteps;
      Opts.StimPeriod = 100.0;
      sim::Simulator S(*Model, Opts);
      S.run();
      Out.Error = S.stateChecksum();
      for (const auto &T : Model->luts().Tables)
        Out.TableDoubles += size_t(T.rows()) * size_t(T.cols());
    };

    EngineConfig Exact = EngineConfig::limpetMLIR(8);
    Exact.EnableLuts = false;
    EngineConfig Linear = EngineConfig::limpetMLIR(8);
    EngineConfig Cubic = EngineConfig::limpetMLIR(8);
    Cubic.CubicLut = true;

    Arm ArmExact{"exact"}, ArmLin{"linear"}, ArmCubic{"cubic"},
        ArmCoarse{"cubic 10x coarser"};
    RunArm(M->Source, Exact, ArmExact);
    RunArm(M->Source, Linear, ArmLin);
    RunArm(M->Source, Cubic, ArmCubic);
    RunArm(coarsenLookups(M->Source, 10.0), Cubic, ArmCoarse);

    for (Arm *A : {&ArmExact, &ArmLin, &ArmCubic, &ArmCoarse}) {
      double Err = std::fabs(A->Error - ArmExact.Error) /
                   std::max(std::fabs(ArmExact.Error), 1e-9);
      Rows.push_back({M->Name, A->Label,
                      formatFixed(double(A->TableDoubles) * 8 / 1024, 0),
                      formatFixed(A->Time, 4),
                      A == &ArmExact ? std::string("-")
                                     : formatDouble(Err)});
    }
  }

  std::printf("%s", renderTable(Rows).c_str());
  std::printf("\nexpected shape: cubic at the native step is slightly "
              "slower but far more\naccurate; cubic at a 10x coarser step "
              "matches linear accuracy with a 10x\nsmaller table "
              "footprint — the trade the paper's future work targets.\n");
  return 0;
}
