//===- TabLutAblation.cpp - paper Sec. 3.4.2 -------------------------------------===//
//
// Impact of LUT acceleration (Sec. 3.4.2): each LUT-marked model is run
// with tables enabled and disabled, for the scalar baseline and the
// 8-lane vector engine. The paper reports >6x from LUT utilization on
// some models and emphasizes that the interpolation itself must be
// vectorized to keep the speedup.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::exec;

int main() {
  BenchProtocol Protocol = BenchProtocol::fromEnv(4096, 80, 3);
  printBanner("Sec. 3.4.2 table: LUT acceleration ablation",
              "Sec. 3.4.2 (>6x from LUT utilization on some models)",
              Protocol);

  ModelCache Cache;
  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"model", "class", "lut cols", "scalar lut gain",
                  "vector lut gain"});
  std::vector<double> ScalarGains, VectorGains;

  for (const models::ModelEntry *M : selectedModels()) {
    // Only models that mark a lookup variable participate.
    if (M->Source.find(".lookup(") == std::string::npos)
      continue;

    EngineConfig ScalarLut = EngineConfig::baseline();
    EngineConfig ScalarNoLut = EngineConfig::baseline();
    ScalarNoLut.EnableLuts = false;
    EngineConfig VecLut = EngineConfig::limpetMLIR(8);
    EngineConfig VecNoLut = EngineConfig::limpetMLIR(8);
    VecNoLut.EnableLuts = false;

    const CompiledModel &WithLut = Cache.get(*M, ScalarLut);
    double ScalarGain =
        timeSimulation(Cache.get(*M, ScalarNoLut), Protocol, 1) /
        timeSimulation(WithLut, Protocol, 1);
    double VectorGain =
        timeSimulation(Cache.get(*M, VecNoLut), Protocol, 1) /
        timeSimulation(Cache.get(*M, VecLut), Protocol, 1);
    ScalarGains.push_back(ScalarGain);
    VectorGains.push_back(VectorGain);
    Rows.push_back(
        {M->Name, className(M->SizeClass),
         std::to_string(WithLut.kernel().Program.Luts.totalColumns()),
         formatFixed(ScalarGain, 2) + "x", formatFixed(VectorGain, 2) + "x"});
  }

  std::printf("%s", renderTable(Rows).c_str());
  std::printf("\ngeomean LUT gain: scalar %.2fx, vector %.2fx\n",
              geomean(ScalarGains), geomean(VectorGains));
  std::printf("(paper: LUTs reach >6x over non-LUT on LUT-heavy models)\n");
  return 0;
}
