//===- Fig6Roofline.cpp - paper Figure 6 ----------------------------------------===//
//
// Roofline data for every model under the limpetMLIR configuration:
// operational intensity (flops/byte, from the bytecode instrumentation in
// place of the paper's hardware counters + MLIR instrumentation) and
// achieved GFlops/s (counted flops / measured time). The machine ceilings
// are measured with ERT-style microkernels (peak FMA throughput and
// stream bandwidth), mirroring the paper's use of the Empirical Roofline
// Tool (760 GFlops/s, 199 GB/s DRAM, 1052 GB/s L1 on their machine).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "runtime/VecMath.h"
#include "sim/Diffusion.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::exec;

namespace {

/// Peak floating-point throughput: independent FMA chains the compiler
/// vectorizes and unrolls.
double measurePeakGflops() {
  constexpr int Lanes = 64;
  alignas(64) double Acc[Lanes];
  alignas(64) double Mul[Lanes];
  for (int I = 0; I != Lanes; ++I) {
    Acc[I] = 1.0 + I * 1e-9;
    Mul[I] = 1.0 + 1e-9;
  }
  const int64_t Iters = 4'000'000;
  auto T0 = std::chrono::steady_clock::now();
  for (int64_t K = 0; K != Iters; ++K)
    for (int I = 0; I != Lanes; ++I)
      Acc[I] = Acc[I] * Mul[I] + 1e-9;
  auto T1 = std::chrono::steady_clock::now();
  double Sink = 0;
  for (int I = 0; I != Lanes; ++I)
    Sink += Acc[I];
  double Secs = std::chrono::duration<double>(T1 - T0).count();
  double Flops = double(Iters) * Lanes * 2; // mul + add per FMA
  // Keep the sink alive.
  if (Sink == 42.0)
    std::printf(" ");
  return Flops / Secs / 1e9;
}

/// Stream-triad bandwidth over an array far larger than LLC.
double measureStreamBandwidth() {
  const size_t N = 32u << 20; // 256 MiB of doubles across three arrays
  std::vector<double> A(N, 1.0), B(N, 2.0), C(N, 3.0);
  auto T0 = std::chrono::steady_clock::now();
  const int Reps = 3;
  for (int R = 0; R != Reps; ++R)
    for (size_t I = 0; I != N; ++I)
      A[I] = B[I] + 0.5 * C[I];
  auto T1 = std::chrono::steady_clock::now();
  double Secs = std::chrono::duration<double>(T1 - T0).count();
  double Bytes = double(Reps) * N * 3 * sizeof(double);
  if (A[N / 2] == 42.0)
    std::printf(" ");
  return Bytes / Secs / 1e9;
}

/// L1-resident bandwidth: repeated triad over a 16 KiB working set.
double measureL1Bandwidth() {
  constexpr size_t N = 2048; // 16 KiB
  alignas(64) static double A[N], B[N], C[N];
  for (size_t I = 0; I != N; ++I) {
    A[I] = 1;
    B[I] = 2;
    C[I] = 3;
  }
  const int64_t Reps = 400'000;
  auto T0 = std::chrono::steady_clock::now();
  for (int64_t R = 0; R != Reps; ++R) {
    for (size_t I = 0; I != N; ++I)
      A[I] = B[I] + 0.5 * C[I];
    // Compiler barrier so the repetition loop is not folded away.
    asm volatile("" ::: "memory");
  }
  auto T1 = std::chrono::steady_clock::now();
  double Secs = std::chrono::duration<double>(T1 - T0).count();
  if (A[N / 2] == 42.0)
    std::printf(" ");
  return double(Reps) * N * 3 * sizeof(double) / Secs / 1e9;
}

} // namespace

int main() {
  BenchProtocol Protocol = BenchProtocol::fromEnv(4096, 80, 3);
  printBanner("Figure 6: roofline model (operational intensity vs. "
              "GFlops/s)",
              "Fig. 6 (ERT: 760 GFlops/s peak, 199 GB/s DRAM, 1052 GB/s "
              "L1 on the paper's machine)",
              Protocol);

  std::printf("measuring machine ceilings (ERT analogue)...\n");
  double Peak = measurePeakGflops();
  double Dram = measureStreamBandwidth();
  double L1 = measureL1Bandwidth();
  std::printf("peak compute:    %7.1f GFlops/s\n", Peak);
  std::printf("DRAM bandwidth:  %7.1f GB/s\n", Dram);
  std::printf("L1 bandwidth:    %7.1f GB/s\n\n", L1);

  ModelCache Cache;
  Cache.prewarm(selectedModels(), {EngineConfig::limpetMLIR(8)});
  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"model", "class", "flops/cell", "bytes/cell", "OI(F/B)",
                  "GFlops/s", "bound", "bytes dev"});

  // Cross-check of the static traffic model against the runtime counters:
  // the modeled bytes (per-cell counts x cells x steps x repeats) and the
  // measured BytesLoaded/BytesStored deltas come from independent paths
  // (bytecode analysis vs. per-chunk accounting), so a large deviation
  // means the roofline's OI axis is lying. Zero counters (telemetry-off
  // build) render as "n/a".
  double WorstDev = 0;
  for (const models::ModelEntry *M : selectedModels()) {
    const CompiledModel &Vec = Cache.get(*M, EngineConfig::limpetMLIR(8));
    const InstrCounts &Counts = Vec.program().Counts;
    telemetry::RuntimeCounters Before = telemetry::runtimeCounters();
    double Time = timeSimulation(Vec, Protocol, 1);
    telemetry::RuntimeCounters After = telemetry::runtimeCounters();
    double TotalFlops = Counts.FlopsPerCell * double(Protocol.NumCells) *
                        double(Protocol.NumSteps);
    double Gflops = TotalFlops / Time / 1e9;
    double OI = Counts.operationalIntensity();
    // A model is memory-bound when its roofline ceiling is the bandwidth
    // line: OI * DRAM bandwidth < peak.
    bool MemoryBound = OI * Dram < Peak;

    double MeasuredBytes = double(After.BytesLoaded - Before.BytesLoaded) +
                           double(After.BytesStored - Before.BytesStored);
    // timeSimulation runs every repeat (extrema are only dropped from the
    // timing average), so the counters cover Repeats full simulations.
    double ModeledBytes =
        (Counts.LoadBytesPerCell + Counts.StoreBytesPerCell) *
        double(Vec.paddedCells(Protocol.NumCells)) *
        double(Protocol.NumSteps) * double(std::max(Protocol.Repeats, 1));
    std::string Dev = "n/a";
    if (MeasuredBytes > 0 && ModeledBytes > 0) {
      double DevPct = (MeasuredBytes - ModeledBytes) / ModeledBytes * 100.0;
      WorstDev = std::max(WorstDev, std::fabs(DevPct));
      Dev = formatFixed(DevPct, 2) + "%";
    }
    Rows.push_back(
        {M->Name, className(M->SizeClass),
         formatFixed(Counts.FlopsPerCell, 0),
         formatFixed(Counts.LoadBytesPerCell + Counts.StoreBytesPerCell, 0),
         formatFixed(OI, 2), formatFixed(Gflops, 2),
         MemoryBound ? "memory" : "compute", Dev});
  }
  // The tissue stencil row: the bandwidth-bound second regime the ionic
  // kernels never reach. One FTCS step is a handful of flops per node
  // against four doubles of modeled traffic (snapshot publish + 3-point
  // read + write), so its operational intensity pins it far left of the
  // ridge — the regime the sim.bytes.stencil.* counters quantify in
  // tissue runs.
  {
    const int64_t Nodes = 1 << 20;
    const int64_t Steps = 40;
    sim::TissueGrid G{Nodes, 1, 0.025};
    sim::DiffusionOperator D(G, 0.001, sim::DiffusionMethod::FTCS);
    std::vector<double> Vm(size_t(Nodes), 0.0);
    for (int64_t J = 0; J < Nodes; ++J)
      Vm[size_t(J)] = -84.0 + double(J % 61);
    auto T0 = std::chrono::steady_clock::now();
    for (int64_t S = 0; S < Steps; ++S)
      D.step(Vm.data(), 0.1);
    auto T1 = std::chrono::steady_clock::now();
    double Secs = std::chrono::duration<double>(T1 - T0).count();
    if (Vm[size_t(Nodes / 2)] == 42.0)
      std::printf(" ");
    double FlopsPerNode = vecmath::FlopCost::Stencil3;
    double BytesPerNode =
        double(D.bytesLoadedPerStep() + D.bytesStoredPerStep()) /
        double(Nodes);
    double OI = FlopsPerNode / BytesPerNode;
    double Gflops = FlopsPerNode * double(Nodes) * double(Steps) / Secs / 1e9;
    Rows.push_back({"ftcs-stencil", "tissue", formatFixed(FlopsPerNode, 0),
                    formatFixed(BytesPerNode, 0), formatFixed(OI, 2),
                    formatFixed(Gflops, 2),
                    OI * Dram < Peak ? "memory" : "compute", "n/a"});
  }

  std::printf("%s", renderTable(Rows).c_str());
  std::printf("\nmodeled-vs-counter bytes cross-check: worst deviation "
              "%.2f%% (0%% means the\nstatic traffic model and the runtime "
              "byte counters agree exactly)\n",
              WorstDev);
  std::printf("\npaper shape: most models sit left of the ridge "
              "(memory-bound); large\ncompute-heavy models "
              "(GrandiPanditVoigt) approach the compute roof, and\n"
              "small models achieve <20 GFlops/s. The tissue stencil row "
              "is the extreme\nmemory-bound anchor: a few flops per node "
              "against a streaming pass.\n");
  return 0;
}
