//===- Fig3Threads32.cpp - paper Figure 3 -------------------------------------===//
//
// Per-model speedup of limpetMLIR over the baseline, both running on 32
// threads (paper: 32 physical cores; geomean 1.93x — 0.83x small, 1.34x
// medium, 6.03x large; small models suffer synchronization overheads).
//
// Hardware gate: this container exposes a single core, so 32 threads are
// oversubscribed and parallel scaling is flat; the per-model vector-vs-
// scalar comparison is still meaningful (see EXPERIMENTS.md).
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/StringUtils.h"

#include <cstdio>
#include <map>
#include <thread>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::exec;

int main() {
  BenchProtocol Protocol = BenchProtocol::fromEnv(4096, 60, 3);
  printBanner("Figure 3: per-model speedup, 32 threads, 8-lane vectors",
              "Fig. 3 (geomean 1.93x; 0.83x/1.34x/6.03x by class)",
              Protocol);
  std::printf("hardware: %u core(s) available; 32 threads oversubscribe\n\n",
              std::thread::hardware_concurrency());

  const unsigned Threads = 32;
  ModelCache Cache;
  Cache.prewarm(selectedModels(),
                {EngineConfig::baseline(), EngineConfig::limpetMLIR(8)});
  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"model", "class", "baseline(s)", "limpetMLIR(s)",
                  "native(s)", "speedup", "native-speedup"});
  std::vector<double> All, AllNative;
  std::map<char, std::vector<double>> PerClass;

  for (const models::ModelEntry *M : selectedModels()) {
    const CompiledModel &Base = Cache.get(*M, EngineConfig::baseline());
    const CompiledModel &Vec = Cache.get(*M, EngineConfig::limpetMLIR(8));
    // Native kernel tier: same configuration, machine code instead of the
    // bytecode VM; silently identical to Vec on a compiler-less box.
    const CompiledModel &Nat =
        Cache.get(*M, EngineConfig::limpetMLIR(8), EngineTier::Native);
    double TBase = timeSimulation(Base, Protocol, Threads);
    double TVec = timeSimulation(Vec, Protocol, Threads);
    double TNat = timeSimulation(Nat, Protocol, Threads);
    double Speedup = TBase / TVec;
    double NatSpeedup = TBase / TNat;
    All.push_back(Speedup);
    AllNative.push_back(NatSpeedup);
    PerClass[M->SizeClass].push_back(Speedup);
    Rows.push_back({M->Name, className(M->SizeClass),
                    formatFixed(TBase, 4), formatFixed(TVec, 4),
                    formatFixed(TNat, 4), formatFixed(Speedup, 2) + "x",
                    formatFixed(NatSpeedup, 2) + "x"});
  }

  std::printf("%s", renderTable(Rows).c_str());
  std::printf("\ngeomean speedup (all):    %.2fx   (paper: 1.93x)\n",
              geomean(All));
  std::printf("geomean native speedup:   %.2fx\n", geomean(AllNative));
  for (char C : {'S', 'M', 'L'})
    if (!PerClass[C].empty())
      std::printf("geomean speedup (%-6s): %.2fx\n", className(C).c_str(),
                  geomean(PerClass[C]));
  return 0;
}
