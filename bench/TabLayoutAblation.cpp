//===- TabLayoutAblation.cpp - paper Sec. 4.4 -----------------------------------===//
//
// Impact of the AoS -> AoSoA data-layout transformation (Sec. 3.4.1 /
// 4.4): the 8-lane vector engine with the openCARP AoS layout (gathers
// and scatters) versus the AoSoA layout (contiguous vector load/store),
// both against the scalar baseline. SoA is included for completeness.
//
// Paper datapoints: Stress_Niederer 4.98x -> 6.03x at 32 threads; overall
// geomean 3.12x -> 3.37x with the layout transformation.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::codegen;
using namespace limpet::exec;

int main() {
  BenchProtocol Protocol = BenchProtocol::fromEnv(4096, 80, 3);
  printBanner("Sec. 4.4 table: data-layout ablation (vector engine, 8 "
              "lanes)",
              "Sec. 4.4 (geomean 3.12x AoS -> 3.37x AoSoA)", Protocol);

  ModelCache Cache;
  std::vector<std::vector<std::string>> Rows;
  Rows.push_back(
      {"model", "class", "AoS", "SoA", "AoSoA", "AoSoA/AoS"});
  std::vector<double> AoSAll, SoAAll, AoSoAAll;

  for (const models::ModelEntry *M : selectedModels()) {
    const CompiledModel &Base = Cache.get(*M, EngineConfig::baseline());
    double TBase = timeSimulation(Base, Protocol, 1);

    EngineConfig AoSCfg = EngineConfig::limpetMLIR(8);
    AoSCfg.Layout = StateLayout::AoS;
    EngineConfig SoACfg = EngineConfig::limpetMLIR(8);
    SoACfg.Layout = StateLayout::SoA;
    EngineConfig AoSoACfg = EngineConfig::limpetMLIR(8); // AoSoA default

    double SAoS = TBase / timeSimulation(Cache.get(*M, AoSCfg), Protocol, 1);
    double SSoA = TBase / timeSimulation(Cache.get(*M, SoACfg), Protocol, 1);
    double SAoSoA =
        TBase / timeSimulation(Cache.get(*M, AoSoACfg), Protocol, 1);
    AoSAll.push_back(SAoS);
    SoAAll.push_back(SSoA);
    AoSoAAll.push_back(SAoSoA);
    Rows.push_back({M->Name, className(M->SizeClass),
                    formatFixed(SAoS, 2) + "x", formatFixed(SSoA, 2) + "x",
                    formatFixed(SAoSoA, 2) + "x",
                    formatFixed(SAoSoA / SAoS, 2)});
  }

  std::printf("%s", renderTable(Rows).c_str());
  std::printf("\ngeomean speedup vs baseline: AoS %.2fx, SoA %.2fx, AoSoA "
              "%.2fx\n",
              geomean(AoSAll), geomean(SoAAll), geomean(AoSoAAll));
  std::printf("(paper: 3.12x without the layout transformation, 3.37x "
              "with it)\n");
  return 0;
}
