//===- TissueBench.cpp - tissue engine throughput -------------------------===//
//
// Throughput of the operator-split reaction-diffusion engine: cell-steps/s
// of a TissueSimulator run (diffusion half-steps + ionic kernel + voltage/
// stimulus stage) over a 1D cable and a 2D sheet at 1/2/8 threads. The
// grids scale with LIMPET_BENCH_CELLS so the smoke protocol stays cheap;
// the NDJSON rows (bench/model/config/threads/cells/steps keys) feed the
// same bench_compare.py regression gate as the figure benches.
//
// The interesting shape: the ionic kernel is compute-bound and scales
// with threads, while the stencil stages are bandwidth-bound, so the
// tissue step's scaling sits between the two — the roofline's second
// regime made visible in wall time.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchHarness.h"
#include "sim/TissueSimulator.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace limpet;
using namespace limpet::bench;
using namespace limpet::exec;

namespace {

const char *kBenchTitle = "Tissue: reaction-diffusion cell-steps/s "
                          "(stencil + halo pipeline)";

/// Times Repeats full tissue runs (fresh simulator each, like
/// timeSimulation) and returns the extrema-dropped average seconds.
double timeTissue(const CompiledModel &Model, const sim::TissueOptions &T,
                  const BenchProtocol &Protocol) {
  std::vector<double> Times;
  int Repeats = std::max(Protocol.Repeats, 1);
  for (int R = 0; R != Repeats; ++R) {
    sim::TissueSimulator S(Model, T);
    auto T0 = std::chrono::steady_clock::now();
    S.run();
    auto T1 = std::chrono::steady_clock::now();
    Times.push_back(std::chrono::duration<double>(T1 - T0).count());
  }
  if (Protocol.DropExtrema && Times.size() >= 3) {
    std::sort(Times.begin(), Times.end());
    Times.erase(Times.begin());
    Times.pop_back();
  }
  double Sum = 0;
  for (double S : Times)
    Sum += S;
  return Sum / double(Times.size());
}

} // namespace

int main() {
  BenchProtocol Protocol = BenchProtocol::fromEnv(4096, 100, 3);
  printBanner(kBenchTitle,
              "engine extension: tissue-scale monodomain stepping (not a "
              "paper figure)",
              Protocol);

  const models::ModelEntry *Entry = models::findModel("HodgkinHuxley");
  if (!Entry) {
    std::fprintf(stderr, "error: HodgkinHuxley not in the registry\n");
    return 1;
  }
  ModelCache Cache;
  const CompiledModel &Model = Cache.get(*Entry, EngineConfig::limpetMLIR(8));

  // Grid cases scale with the protocol's cell budget: a 1D cable of all
  // cells and the nearest square 2D sheet.
  int64_t Side = std::max<int64_t>(int64_t(std::sqrt(double(Protocol.NumCells))), 2);
  struct GridCase {
    const char *Label;
    sim::TissueGrid Grid;
  } Cases[] = {
      {"ftcs-1d", {Protocol.NumCells, 1, 0.025}},
      {"ftcs-2d", {Side, Side, 0.025}},
  };

  std::vector<std::vector<std::string>> Rows;
  Rows.push_back({"grid", "threads", "cell-steps/s", "ns/cell-step",
                  "stencil GB/s", "seconds"});

  telemetry::Registry &Reg = telemetry::Registry::instance();
  for (const GridCase &C : Cases) {
    for (unsigned Threads : {1u, 2u, 8u}) {
      sim::TissueOptions T;
      T.Grid = C.Grid;
      T.Sigma = 0.001;
      T.Sim.NumSteps = Protocol.NumSteps;
      T.Sim.Dt = 0.01;
      T.Sim.NumThreads = Threads;
      T.Sim.Guard.Enabled = Protocol.GuardRails;

      uint64_t Loaded0 = Reg.value("sim.bytes.stencil.loaded");
      uint64_t Stored0 = Reg.value("sim.bytes.stencil.stored");
      telemetry::RuntimeCounters Before = telemetry::runtimeCounters();
      double Seconds = timeTissue(Model, T, Protocol);
      telemetry::RuntimeCounters After = telemetry::runtimeCounters();
      uint64_t StencilLoaded = Reg.value("sim.bytes.stencil.loaded") - Loaded0;
      uint64_t StencilStored = Reg.value("sim.bytes.stencil.stored") - Stored0;

      int64_t Nodes = C.Grid.numNodes();
      double CellSteps = double(Nodes) * double(Protocol.NumSteps);
      double CellStepsPerSec = CellSteps / Seconds;
      // Stencil traffic per timed second (all repeats ran the counters).
      int Repeats = std::max(Protocol.Repeats, 1);
      double StencilGBs = double(StencilLoaded + StencilStored) /
                          double(Repeats) / Seconds / 1e9;

      BenchStat S;
      S.Bench = kBenchTitle;
      S.Model = Entry->Name;
      S.Config = C.Label;
      S.Threads = Threads;
      S.Cells = Nodes;
      S.Steps = Protocol.NumSteps;
      S.Repeats = Repeats;
      S.Seconds = Seconds;
      S.NsPerCellStep = Seconds * 1e9 / CellSteps;
      S.CellStepsPerSec = CellStepsPerSec;
      S.LutInterps = After.LutInterps - Before.LutInterps;
      S.FastMathCalls = After.FastMathCalls - Before.FastMathCalls;
      S.LibmCalls = After.LibmCalls - Before.LibmCalls;
      // Modeled traffic of the timed region: ionic kernel bytes plus the
      // stencil's publish/apply passes.
      S.BytesLoaded = (After.BytesLoaded - Before.BytesLoaded) + StencilLoaded;
      S.BytesStored = (After.BytesStored - Before.BytesStored) + StencilStored;
      recordBenchStat(S);

      Rows.push_back({std::to_string(C.Grid.NX) + "x" +
                          std::to_string(C.Grid.NY),
                      std::to_string(Threads),
                      formatFixed(CellStepsPerSec, 0),
                      formatFixed(S.NsPerCellStep, 2),
                      formatFixed(StencilGBs, 2), formatFixed(Seconds, 4)});
    }
  }
  std::printf("%s", renderTable(Rows).c_str());
  std::printf("\nexpected shape: throughput grows with threads but "
              "sub-linearly — the\nionic stage scales while the "
              "bandwidth-bound stencil stages saturate;\nthe 2D sheet "
              "pays the wider 5-point halo.\n");
  return 0;
}
