//===- CheckpointTests.cpp - Durable checkpoint/resume tests --------------===//
//
// The durability contract (docs/ROBUSTNESS.md): checkpoints round-trip
// bit-exactly for every layout x width, every truncation or corruption of
// a checkpoint file parses to a recoverable error (never UB, never a
// misparse), the store rotates to its retained count and falls back to
// the newest file that still checksums, and a resumed run reaches a final
// state bit-identical to a run that was never interrupted.
//
//===----------------------------------------------------------------------===//

#include "compiler/Serialize.h"
#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Checkpoint.h"
#include "sim/Simulator.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <limits>
#include <unistd.h>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::sim;

namespace {

std::optional<CompiledModel> compileByName(const char *Name,
                                           EngineConfig Cfg) {
  const models::ModelEntry *M = models::findModel(Name);
  EXPECT_NE(M, nullptr);
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return CompiledModel::compile(*Info, Cfg);
}

/// A unique, empty temp directory per test.
std::string freshDir(const char *Tag) {
  std::string Dir = ::testing::TempDir() + "limpet-ckpt-" + Tag + "-" +
                    std::to_string(::getpid());
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

SimOptions runOpts(int64_t Cells, int64_t Steps, bool Guard = false) {
  SimOptions Opts;
  Opts.NumCells = Cells;
  Opts.NumSteps = Steps;
  Opts.StimPeriod = 20.0;
  Opts.Guard.Enabled = Guard;
  return Opts;
}

/// The wall-clock accumulators are the one legitimately nondeterministic
/// part of a checkpoint; zero them so serialized checkpoints of equal
/// simulations compare byte-for-byte.
CheckpointData normalized(CheckpointData C) {
  C.Report.ScanSeconds = 0;
  C.Report.RecoverySeconds = 0;
  C.Report.RunSeconds = 0;
  return C;
}

/// The engine configurations the durability contract must hold for:
/// scalar AoS, vectorized AoSoA at width 4 and 8, and the
/// auto-vectorizer-like AoS gathers.
std::vector<EngineConfig> coverageConfigs() {
  return {EngineConfig::baseline(), EngineConfig::limpetMLIR(4),
          EngineConfig::limpetMLIR(8), EngineConfig::autoVecLike(4)};
}

} // namespace

//===----------------------------------------------------------------------===//
// Serialization round trip
//===----------------------------------------------------------------------===//

TEST(CheckpointRoundTrip, BitExactPerLayoutAndWidth) {
  for (const EngineConfig &Cfg : coverageConfigs()) {
    auto M = compileByName("HodgkinHuxley", Cfg);
    ASSERT_TRUE(M.has_value());
    SimOptions Opts = runOpts(/*Cells=*/10, /*Steps=*/40);
    Opts.RecordTrace = true;
    Simulator S(*M, Opts);
    S.run();

    CheckpointData C = S.captureCheckpoint();
    std::string Bytes = serializeCheckpoint(C);
    Expected<CheckpointData> D = deserializeCheckpoint(Bytes);
    ASSERT_TRUE(bool(D)) << engineConfigName(Cfg) << ": "
                         << D.status().message();
    // Re-serializing the parse must reproduce the identical bytes: that
    // covers every field, every double bit pattern, and AoSoA padding.
    EXPECT_EQ(serializeCheckpoint(*D), Bytes) << engineConfigName(Cfg);
    EXPECT_EQ(D->StepCount, 40);
    EXPECT_EQ(D->Trace.size(), 40u);
    EXPECT_EQ(D->NumCells, 10);
  }
}

TEST(CheckpointRoundTrip, GuardRailStateSurvives) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts = runOpts(/*Cells=*/8, /*Steps=*/64, /*Guard=*/true);
  Simulator S(*M, Opts);
  // A persistent fault in one cell walks it down the degradation ladder,
  // so the checkpoint has nontrivial Modes/Frozen/Report content.
  S.setFaultInjector([](Simulator &Sim) {
    Sim.pokeState(3, 0, std::numeric_limits<double>::infinity());
  });
  S.run();
  ASSERT_GT(S.report().FaultEvents, 0);

  CheckpointData C = S.captureCheckpoint();
  EXPECT_FALSE(C.Modes.empty());
  EXPECT_FALSE(C.Frozen.empty());
  std::string Bytes = serializeCheckpoint(C);
  Expected<CheckpointData> D = deserializeCheckpoint(Bytes);
  ASSERT_TRUE(bool(D)) << D.status().message();
  EXPECT_EQ(serializeCheckpoint(*D), Bytes);
  EXPECT_EQ(D->Report.FaultEvents, S.report().FaultEvents);
  EXPECT_EQ(D->Frozen.size(), C.Frozen.size());
}

//===----------------------------------------------------------------------===//
// Corruption and truncation
//===----------------------------------------------------------------------===//

TEST(CheckpointCorruption, TruncationAtEveryPrefixIsRecoverable) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  Simulator S(*M, runOpts(/*Cells=*/3, /*Steps=*/5));
  S.run();
  std::string Bytes = serializeCheckpoint(S.captureCheckpoint());
  ASSERT_GT(Bytes.size(), 16u);
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    Expected<CheckpointData> D =
        deserializeCheckpoint(std::string_view(Bytes).substr(0, Len));
    EXPECT_FALSE(bool(D)) << "prefix of " << Len << " bytes parsed";
  }
}

TEST(CheckpointCorruption, EveryFlippedByteIsRecoverable) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  Simulator S(*M, runOpts(/*Cells=*/2, /*Steps=*/3));
  S.run();
  std::string Bytes = serializeCheckpoint(S.captureCheckpoint());
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::string Bad = Bytes;
    Bad[I] = char(Bad[I] ^ 0x5a);
    Expected<CheckpointData> D = deserializeCheckpoint(Bad);
    EXPECT_FALSE(bool(D)) << "corrupt byte " << I << " parsed";
  }
}

TEST(CheckpointCorruption, VersionMismatchIsRefusedNotMisparsed) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  Simulator S(*M, runOpts(/*Cells=*/2, /*Steps=*/1));
  S.run();
  std::string Bytes = serializeCheckpoint(S.captureCheckpoint());
  Bytes[4] = char(Bytes[4] + 1); // version u32 follows the magic
  Expected<CheckpointData> D = deserializeCheckpoint(Bytes);
  ASSERT_FALSE(bool(D));
  EXPECT_NE(D.status().message().find("version"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Store: rotation, retention, newest-valid fallback
//===----------------------------------------------------------------------===//

TEST(CheckpointStore, RotationKeepsNewestRetainFiles) {
  std::string Dir = freshDir("rotate");
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  Simulator S(*M, runOpts(/*Cells=*/4, /*Steps=*/10));
  CheckpointStore Store(Dir, /*Retain=*/2);
  ASSERT_TRUE(bool(Store.prepare()));
  for (int I = 0; I != 5; ++I) {
    S.run(); // +10 steps each time
    ASSERT_TRUE(bool(Store.write(S.captureCheckpoint())));
  }
  std::vector<std::string> Files = Store.list();
  ASSERT_EQ(Files.size(), 2u);
  EXPECT_NE(Files[0].find("ckpt-000000000040.lmpc"), std::string::npos);
  EXPECT_NE(Files[1].find("ckpt-000000000050.lmpc"), std::string::npos);
  std::filesystem::remove_all(Dir);
}

TEST(CheckpointStore, FallsBackToNewestValidCheckpoint) {
  std::string Dir = freshDir("fallback");
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  Simulator S(*M, runOpts(/*Cells=*/4, /*Steps=*/10));
  CheckpointStore Store(Dir, /*Retain=*/3);
  for (int I = 0; I != 3; ++I) {
    S.run();
    ASSERT_TRUE(bool(Store.write(S.captureCheckpoint())));
  }
  std::vector<std::string> Files = Store.list();
  ASSERT_EQ(Files.size(), 3u);

  // Truncate the newest (a crash mid-write on a filesystem without atomic
  // rename) and corrupt the second newest.
  {
    std::string Bytes;
    ASSERT_TRUE(bool(compiler::readFileBytes(Files[2], Bytes)));
    std::ofstream(Files[2], std::ios::binary | std::ios::trunc)
        .write(Bytes.data(), std::streamsize(Bytes.size() / 2));
    std::ofstream(Files[1], std::ios::binary | std::ios::in)
        .write("garbage", 7);
  }

  std::string Path;
  int Skipped = 0;
  Expected<CheckpointData> C = Store.loadNewestValid(&Path, &Skipped);
  ASSERT_TRUE(bool(C)) << C.status().message();
  EXPECT_EQ(Skipped, 2);
  EXPECT_EQ(Path, Files[0]);
  EXPECT_EQ(C->StepCount, 10);
  std::filesystem::remove_all(Dir);
}

TEST(CheckpointStore, EmptyDirectoryIsARecoverableError) {
  std::string Dir = freshDir("empty");
  CheckpointStore Store(Dir);
  Expected<CheckpointData> C = Store.loadNewestValid();
  ASSERT_FALSE(bool(C));
  EXPECT_NE(C.status().message().find("no valid checkpoint"),
            std::string::npos);
  std::filesystem::remove_all(Dir);
}

TEST(CheckpointStore, UnpreparableDirectoryIsARecoverableError) {
  // /dev/null is a file, so mkdir -p under it must fail cleanly.
  CheckpointStore Store("/dev/null/sub");
  Status S = Store.prepare();
  ASSERT_FALSE(bool(S));
  EXPECT_NE(S.message().find("checkpoint directory"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Resume
//===----------------------------------------------------------------------===//

TEST(CheckpointResume, ResumedRunIsBitIdenticalAcrossLayouts) {
  for (const EngineConfig &Cfg : coverageConfigs()) {
    auto M = compileByName("HodgkinHuxley", Cfg);
    ASSERT_TRUE(M.has_value());

    // Reference: one uninterrupted 128-step run.
    SimOptions Opts = runOpts(/*Cells=*/10, /*Steps=*/128);
    Opts.RecordTrace = true;
    Simulator Ref(*M, Opts);
    Ref.run();

    // Interrupted: 64 steps, checkpoint, a *fresh* simulator resumes and
    // chases the same 128-step total.
    SimOptions Half = Opts;
    Half.NumSteps = 64;
    Simulator First(*M, Half);
    First.run();
    CheckpointData C = First.captureCheckpoint();

    Simulator Second(*M, Opts);
    ASSERT_TRUE(bool(Second.resumeFrom(C))) << engineConfigName(Cfg);
    Second.run();

    EXPECT_EQ(Second.stepsDone(), 128) << engineConfigName(Cfg);
    EXPECT_EQ(serializeCheckpoint(normalized(Second.captureCheckpoint())),
              serializeCheckpoint(normalized(Ref.captureCheckpoint())))
        << engineConfigName(Cfg) << ": resumed state differs";
  }
}

TEST(CheckpointResume, GuardedResumeIsBitIdentical) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  // 64/128 are multiples of the scan interval (8), so the interrupted
  // run's windows line up with the uninterrupted run's.
  SimOptions Opts = runOpts(/*Cells=*/8, /*Steps=*/128, /*Guard=*/true);
  Simulator Ref(*M, Opts);
  Ref.run();

  SimOptions Half = Opts;
  Half.NumSteps = 64;
  Simulator First(*M, Half);
  First.run();
  Simulator Second(*M, Opts);
  ASSERT_TRUE(bool(Second.resumeFrom(First.captureCheckpoint())));
  Second.run();

  EXPECT_EQ(serializeCheckpoint(normalized(Second.captureCheckpoint())),
            serializeCheckpoint(normalized(Ref.captureCheckpoint())));
  EXPECT_EQ(Second.report().HealthScans, Ref.report().HealthScans);
}

TEST(CheckpointResume, RefusesMismatchedModelConfigShapeAndHash) {
  auto M4 = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  Simulator S(*M4, runOpts(/*Cells=*/8, /*Steps=*/8));
  S.run();
  CheckpointData C = S.captureCheckpoint();

  // Different model.
  auto Other = compileByName("BeelerReuter", EngineConfig::limpetMLIR(4));
  Simulator OtherSim(*Other, runOpts(8, 8));
  EXPECT_FALSE(bool(OtherSim.resumeFrom(C)));

  // Same model, different engine configuration.
  auto MBase = compileByName("HodgkinHuxley", EngineConfig::baseline());
  Simulator BaseSim(*MBase, runOpts(8, 8));
  EXPECT_FALSE(bool(BaseSim.resumeFrom(C)));

  // Same model and config, different population size.
  Simulator Bigger(*M4, runOpts(16, 8));
  EXPECT_FALSE(bool(Bigger.resumeFrom(C)));

  // Stale model: the source hash the checkpoint was stamped with does not
  // match the hash the resuming driver computed.
  SimOptions HashOpts = runOpts(8, 8);
  HashOpts.Checkpoint.SourceHash = 0x1111;
  Simulator Stamped(*M4, HashOpts);
  CheckpointData Stale = Stamped.captureCheckpoint();
  SimOptions OtherHash = runOpts(8, 8);
  OtherHash.Checkpoint.SourceHash = 0x2222;
  Simulator Resumer(*M4, OtherHash);
  Status St = Resumer.resumeFrom(Stale);
  ASSERT_FALSE(bool(St));
  EXPECT_NE(St.message().find("source"), std::string::npos);

  // And the matching hash is accepted.
  Simulator SameHash(*M4, HashOpts);
  EXPECT_TRUE(bool(SameHash.resumeFrom(Stale)));
}

//===----------------------------------------------------------------------===//
// Durable cadence and graceful shutdown inside run()
//===----------------------------------------------------------------------===//

TEST(DurableRun, CadenceWritesAndRotatesCheckpoints) {
  std::string Dir = freshDir("cadence");
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts = runOpts(/*Cells=*/4, /*Steps=*/35);
  Opts.Checkpoint.Dir = Dir;
  Opts.Checkpoint.EveryN = 10;
  Opts.Checkpoint.Retain = 2;
  Simulator S(*M, Opts);
  S.run();
  EXPECT_FALSE(S.interrupted());
  CheckpointStore Store(Dir, 2);
  std::vector<std::string> Files = Store.list();
  ASSERT_EQ(Files.size(), 2u); // steps 10, 20, 30 written; 2 retained
  EXPECT_NE(Files[0].find("ckpt-000000000020"), std::string::npos);
  EXPECT_NE(Files[1].find("ckpt-000000000030"), std::string::npos);
  std::filesystem::remove_all(Dir);
}

TEST(DurableRun, ShutdownRequestStopsWithFinalCheckpoint) {
  clearShutdownRequest();
  std::string Dir = freshDir("shutdown");
  auto M = compileByName("HodgkinHuxley", EngineConfig::limpetMLIR(4));
  SimOptions Opts = runOpts(/*Cells=*/8, /*Steps=*/1000);
  Opts.Checkpoint.Dir = Dir;
  Opts.Checkpoint.EveryN = 400;
  Simulator S(*M, Opts);
  // Deterministic kill-at-step: the injector runs after each completed
  // step, exactly where a SIGTERM would be noticed at the next boundary.
  S.setFaultInjector([](Simulator &Sim) {
    if (Sim.stepsDone() == 123)
      requestShutdown();
  });
  S.run();
  clearShutdownRequest();

  EXPECT_TRUE(S.interrupted());
  EXPECT_EQ(S.stepsDone(), 123);
  CheckpointStore Store(Dir);
  std::string Path;
  Expected<CheckpointData> C = Store.loadNewestValid(&Path);
  ASSERT_TRUE(bool(C)) << C.status().message();
  EXPECT_EQ(C->StepCount, 123);

  // The interrupted run plus a resume must equal the uninterrupted run.
  Simulator Resumed(*M, runOpts(8, 1000));
  ASSERT_TRUE(bool(Resumed.resumeFrom(*C)));
  Resumed.run();
  Simulator Ref(*M, runOpts(8, 1000));
  Ref.run();
  EXPECT_EQ(serializeCheckpoint(normalized(Resumed.captureCheckpoint())),
            serializeCheckpoint(normalized(Ref.captureCheckpoint())));
  std::filesystem::remove_all(Dir);
}
