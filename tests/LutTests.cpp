//===- LutTests.cpp - LUT analysis + runtime table tests -----------------------===//

#include "codegen/MLIRCodeGen.h"
#include "easyml/Sema.h"
#include "exec/CompiledModel.h"
#include "runtime/Lut.h"

#include <cmath>
#include <gtest/gtest.h>
#include <limits>

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::exec;
using namespace limpet::runtime;

namespace {

easyml::ModelInfo infoOf(const std::string &Src) {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("lut", Src, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return *Info;
}

//===----------------------------------------------------------------------===//
// Runtime table
//===----------------------------------------------------------------------===//

TEST(LutTable, DimensionsAndRowPositions) {
  LutTable T(-100, 100, 0.05, 3);
  EXPECT_EQ(T.rows(), 4001);
  EXPECT_EQ(T.cols(), 3);
  EXPECT_DOUBLE_EQ(T.rowX(0), -100);
  EXPECT_DOUBLE_EQ(T.rowX(4000), 100);
}

TEST(LutTable, InterpolatesLinearFunctionExactly) {
  LutTable T(0, 10, 0.5, 1);
  for (int R = 0; R != T.rows(); ++R)
    T.at(R, 0) = 3.0 * T.rowX(R) + 1.0;
  for (double X : {0.0, 0.25, 3.3, 9.99, 10.0})
    EXPECT_NEAR(T.lookup(X, 0), 3.0 * X + 1.0, 1e-12) << X;
}

TEST(LutTable, QuadraticInterpolationErrorBound) {
  // |f - interp| <= h^2/8 * max|f''| for linear interpolation.
  double H = 0.05;
  LutTable T(-5, 5, H, 1);
  for (int R = 0; R != T.rows(); ++R)
    T.at(R, 0) = std::exp(T.rowX(R));
  double Bound = H * H / 8.0 * std::exp(5.0) * 1.001;
  for (double X = -5; X <= 5; X += 0.013)
    EXPECT_LE(std::fabs(T.lookup(X, 0) - std::exp(X)), Bound) << X;
}

TEST(LutTable, ClampsOutOfRange) {
  LutTable T(0, 1, 0.1, 1);
  for (int R = 0; R != T.rows(); ++R)
    T.at(R, 0) = T.rowX(R);
  EXPECT_NEAR(T.lookup(-50.0, 0), 0.0, 1e-12);
  EXPECT_NEAR(T.lookup(50.0, 0), 1.0, 1e-12);
}

TEST(LutTable, CoordIsBranchFreeConsistent) {
  LutTable T(-1, 1, 0.25, 1);
  int64_t Idx;
  double Frac;
  T.coord(-1.0, Idx, Frac);
  EXPECT_EQ(Idx, 0);
  EXPECT_DOUBLE_EQ(Frac, 0.0);
  T.coord(1.0, Idx, Frac);
  EXPECT_EQ(Idx, T.rows() - 2);
  EXPECT_DOUBLE_EQ(Frac, 1.0);
  T.coord(0.3, Idx, Frac);
  EXPECT_GE(Frac, 0.0);
  EXPECT_LT(Frac, 1.0);
  EXPECT_NEAR(T.rowX(int(Idx)) + Frac * T.step(), 0.3, 1e-12);
}

TEST(LutTable, NanInputClampsToRowZero) {
  // Regression: the original clamp chain (Pos < 0 ? 0 : (Pos > Max ? Max
  // : Pos)) let a NaN survive to the int64_t cast — undefined behavior.
  // The reordered chain must deterministically land NaN on row 0/frac 0.
  LutTable T(-1, 1, 0.25, 1);
  for (int R = 0; R != T.rows(); ++R)
    T.at(R, 0) = T.rowX(R);
  double NaN = std::numeric_limits<double>::quiet_NaN();
  int64_t Idx = -1;
  double Frac = -1;
  T.coord(NaN, Idx, Frac);
  EXPECT_EQ(Idx, 0);
  EXPECT_DOUBLE_EQ(Frac, 0.0);
  EXPECT_DOUBLE_EQ(T.lookup(NaN, 0), T.rowX(0));
  // Infinities clamp to the table edges as before.
  T.coord(std::numeric_limits<double>::infinity(), Idx, Frac);
  EXPECT_EQ(Idx, T.rows() - 2);
  EXPECT_DOUBLE_EQ(Frac, 1.0);
  T.coord(-std::numeric_limits<double>::infinity(), Idx, Frac);
  EXPECT_EQ(Idx, 0);
  EXPECT_DOUBLE_EQ(Frac, 0.0);
}

TEST(LutTable, AllFiniteDetectsCorruption) {
  LutTable T(0, 1, 0.5, 2);
  EXPECT_TRUE(T.allFinite());
  T.at(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(T.allFinite());
  T.at(1, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(T.allFinite());
  T.at(1, 1) = 1e300;
  EXPECT_TRUE(T.allFinite());

  LutTableSet Set;
  Set.Tables.push_back(T);
  EXPECT_TRUE(Set.allFinite());
  Set.Tables.push_back(LutTable(0, 1, 0.5, 1));
  Set.Tables.back().at(0, 0) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(Set.allFinite());
}

//===----------------------------------------------------------------------===//
// Extraction
//===----------------------------------------------------------------------===//

TEST(LutAnalysis, ExtractsVmOnlyTranscendentals) {
  auto Info = infoOf(
      "Vm; .external(); .lookup(-100, 100, 0.05);\nIion; .external();\n"
      "r = exp(Vm/25.0)/(1.0+exp(Vm/10.0));\n"
      "diff_w = r*(1.0-w) - 0.5*w;\nw_init = 0.5;\nIion = w;");
  ModelProgram P = buildModelProgram(Info);
  ASSERT_EQ(P.Luts.Tables.size(), 1u);
  EXPECT_GE(P.Luts.Tables[0].Columns.size(), 1u);
  // Every column references only Vm.
  for (const easyml::ExprPtr &Col : P.Luts.Tables[0].Columns)
    for (const std::string &V : easyml::exprFreeVars(*Col))
      EXPECT_EQ(V, "Vm");
}

TEST(LutAnalysis, DoesNotTabulateStateMixedExprs) {
  auto Info = infoOf(
      "Vm; .external(); .lookup(-100, 100, 0.05);\nIion; .external();\n"
      "diff_w = exp(Vm*w/25.0) - w;\nw_init = 0.5;\nIion = w;");
  ModelProgram P = buildModelProgram(Info);
  // exp(Vm*w) mixes state: not tabulatable.
  EXPECT_EQ(P.Luts.totalColumns(), 0u);
}

TEST(LutAnalysis, DeduplicatesIdenticalColumns) {
  auto Info = infoOf(
      "Vm; .external(); .lookup(-100, 100, 0.05);\nIion; .external();\n"
      "a = exp(Vm/25.0);\nb = exp(Vm/25.0);\n"
      "diff_w = a*(1.0-w) - b*w;\nw_init = 0.5;\nIion = w;");
  ModelProgram P = buildModelProgram(Info);
  EXPECT_EQ(P.Luts.totalColumns(), 1u);
}

TEST(LutAnalysis, ParamsAllowedInColumns) {
  auto Info = infoOf(
      "Vm; .external(); .lookup(-100, 100, 0.05);\nIion; .external();\n"
      "group{ k = 25.0; }.param();\n"
      "diff_w = exp(Vm/k) - w;\nw_init = 0.5;\nIion = w;");
  ModelProgram P = buildModelProgram(Info);
  EXPECT_EQ(P.Luts.totalColumns(), 1u);
}

TEST(LutAnalysis, CheapExprsNotTabulated) {
  auto Info = infoOf(
      "Vm; .external(); .lookup(-100, 100, 0.05);\nIion; .external();\n"
      "diff_w = (Vm + 2.0)*0.1 - w;\nw_init = 0.5;\nIion = w;");
  ModelProgram P = buildModelProgram(Info);
  // Linear Vm arithmetic is cheaper than an interpolation.
  EXPECT_EQ(P.Luts.totalColumns(), 0u);
}

//===----------------------------------------------------------------------===//
// End-to-end accuracy and parameter baking
//===----------------------------------------------------------------------===//

double runOneCellStep(const CompiledModel &M, double VmValue,
                      const double *Params) {
  std::vector<double> State(M.stateArraySize(1));
  M.initializeState(State.data(), 1);
  std::vector<double> Ext = {VmValue, 0.0};
  KernelArgs Args;
  Args.State = State.data();
  Args.Exts = {&Ext[0], &Ext[1]};
  Args.Params = Params;
  Args.Start = 0;
  Args.End = 1;
  Args.NumCells = 1;
  Args.Dt = 0.01;
  M.computeStep(Args);
  return M.readState(State.data(), 0, 0, 1);
}

TEST(LutEndToEnd, LutMatchesNoLutWithinInterpolationError) {
  auto Info = infoOf(
      "Vm; .external(); .lookup(-100, 100, 0.05);\nIion; .external();\n"
      "r = exp(Vm/20.0);\ndiff_w = r*(1.0-w) - 0.4*w;\nw_init = 0.5;\n"
      "Iion = w;");
  EngineConfig WithLut = EngineConfig::baseline();
  EngineConfig NoLut = EngineConfig::baseline();
  NoLut.EnableLuts = false;
  auto M1 = CompiledModel::compile(Info, WithLut);
  auto M2 = CompiledModel::compile(Info, NoLut);
  ASSERT_TRUE(M1 && M2);
  std::vector<double> Params; // no params
  for (double Vm : {-95.0, -40.0, -40.025, 0.0, 33.3, 99.0}) {
    double W1 = runOneCellStep(*M1, Vm, Params.data());
    double W2 = runOneCellStep(*M2, Vm, Params.data());
    EXPECT_NEAR(W1, W2, 2e-5) << Vm; // h^2/8 * f'' * dt headroom
  }
}

TEST(LutEndToEnd, ParamChangeRebuildsTables) {
  auto Info = infoOf(
      "Vm; .external(); .lookup(-100, 100, 0.05);\nIion; .external();\n"
      "group{ k = 20.0; }.param();\n"
      "r = exp(Vm/k);\ndiff_w = r - w;\nw_init = 0.0;\nIion = w;");
  auto M = CompiledModel::compile(Info, EngineConfig::baseline());
  ASSERT_TRUE(M.has_value());

  double DefaultParams[] = {20.0};
  double W1 = runOneCellStep(*M, 10.0, DefaultParams);
  EXPECT_NEAR(W1, 0.01 * std::exp(10.0 / 20.0), 1e-6);

  double NewParams[] = {40.0};
  M->rebuildLuts(NewParams);
  double W2 = runOneCellStep(*M, 10.0, NewParams);
  EXPECT_NEAR(W2, 0.01 * std::exp(10.0 / 40.0), 1e-6);
}

//===----------------------------------------------------------------------===//
// Cubic spline interpolation (the paper's future-work extension)
//===----------------------------------------------------------------------===//

TEST(LutCubic, ExactOnCubicPolynomials) {
  // Catmull-Rom reproduces cubics exactly on interior intervals.
  LutTable T(0, 10, 0.5, 1);
  auto F = [](double X) { return 0.3 * X * X * X - X * X + 2 * X - 5; };
  for (int R = 0; R != T.rows(); ++R)
    T.at(R, 0) = F(T.rowX(R));
  for (double X = 1.0; X <= 9.0; X += 0.013) {
    int64_t Idx;
    double Frac;
    T.coord(X, Idx, Frac);
    EXPECT_NEAR(T.interpCubic(Idx, Frac, 0), F(X), 1e-9) << X;
  }
}

TEST(LutCubic, FourthOrderVsLinearSecondOrder) {
  // On exp, halving the step must shrink the cubic error ~16x and the
  // linear error ~4x.
  auto MaxErr = [](double Step, bool Cubic) {
    LutTable T(-2, 2, Step, 1);
    for (int R = 0; R != T.rows(); ++R)
      T.at(R, 0) = std::exp(T.rowX(R));
    double Err = 0;
    for (double X = -1.5; X <= 1.5; X += 0.0017) {
      int64_t Idx;
      double Frac;
      T.coord(X, Idx, Frac);
      double V = Cubic ? T.interpCubic(Idx, Frac, 0) : T.interp(Idx, Frac, 0);
      Err = std::max(Err, std::fabs(V - std::exp(X)));
    }
    return Err;
  };
  double LinRatio = MaxErr(0.2, false) / MaxErr(0.1, false);
  double CubRatio = MaxErr(0.2, true) / MaxErr(0.1, true);
  EXPECT_NEAR(LinRatio, 4.0, 1.0);
  EXPECT_GT(CubRatio, 9.0); // ~16 in theory; edges soften it slightly
  // And cubic beats linear outright at the same step.
  EXPECT_LT(MaxErr(0.1, true), MaxErr(0.1, false) / 20.0);
}

TEST(LutCubic, ClampsAtTableEdges) {
  LutTable T(0, 1, 0.25, 1);
  for (int R = 0; R != T.rows(); ++R)
    T.at(R, 0) = T.rowX(R);
  int64_t Idx;
  double Frac;
  T.coord(-5.0, Idx, Frac);
  EXPECT_TRUE(std::isfinite(T.interpCubic(Idx, Frac, 0)));
  T.coord(5.0, Idx, Frac);
  EXPECT_TRUE(std::isfinite(T.interpCubic(Idx, Frac, 0)));
  EXPECT_NEAR(T.interpCubic(Idx, Frac, 0), 1.0, 1e-12);
}

TEST(LutCubic, EndToEndCloserThanLinearAtCoarseStep) {
  // With a deliberately coarse table, the cubic configuration tracks the
  // exact (no-LUT) computation much more closely than linear.
  auto Info = infoOf(
      "Vm; .external(); .lookup(-100, 100, 2.0);\nIion; .external();\n"
      "r = exp(Vm/20.0);\ndiff_w = r*(1.0-w) - 0.4*w;\nw_init = 0.5;\n"
      "Iion = w;");
  EngineConfig NoLut = EngineConfig::baseline();
  NoLut.EnableLuts = false;
  EngineConfig Linear = EngineConfig::baseline();
  EngineConfig Cubic = EngineConfig::baseline();
  Cubic.CubicLut = true;
  auto MExact = CompiledModel::compile(Info, NoLut);
  auto MLin = CompiledModel::compile(Info, Linear);
  auto MCub = CompiledModel::compile(Info, Cubic);
  ASSERT_TRUE(MExact && MLin && MCub);
  std::vector<double> Params;
  double ErrLin = 0, ErrCub = 0;
  for (double Vm = -80.0; Vm <= 80.0; Vm += 1.7) {
    double Exact = runOneCellStep(*MExact, Vm, Params.data());
    ErrLin = std::max(ErrLin,
                      std::fabs(runOneCellStep(*MLin, Vm, Params.data()) -
                                Exact));
    ErrCub = std::max(ErrCub,
                      std::fabs(runOneCellStep(*MCub, Vm, Params.data()) -
                                Exact));
  }
  EXPECT_LT(ErrCub, ErrLin / 10.0);
}

TEST(LutCubic, VectorEngineMatchesScalar) {
  auto Info = infoOf(
      "Vm; .external(); .lookup(-100, 100, 0.5);\nIion; .external();\n"
      "r = exp(Vm/20.0);\ndiff_w = r*(1.0-w) - 0.4*w;\nw_init = 0.5;\n"
      "Iion = w;");
  EngineConfig ScalarCubic = EngineConfig::baseline();
  ScalarCubic.CubicLut = true;
  EngineConfig VecCubic = EngineConfig::limpetMLIR(8);
  VecCubic.CubicLut = true;
  VecCubic.FastMath = false; // isolate the interpolation path
  auto A = CompiledModel::compile(Info, ScalarCubic);
  auto B = CompiledModel::compile(Info, VecCubic);
  ASSERT_TRUE(A && B);
  std::vector<double> Params;
  for (double Vm : {-77.3, -12.0, 0.0, 45.9})
    EXPECT_DOUBLE_EQ(runOneCellStep(*A, Vm, Params.data()),
                     runOneCellStep(*B, Vm, Params.data()))
        << Vm;
}

TEST(LutEndToEnd, OutOfRangeVmClampsStably) {
  auto Info = infoOf(
      "Vm; .external(); .lookup(-100, 100, 0.05);\nIion; .external();\n"
      "r = exp(Vm/30.0);\ndiff_w = r - w;\nw_init = 0.0;\nIion = w;");
  auto M = CompiledModel::compile(Info, EngineConfig::baseline());
  std::vector<double> Params;
  double WExtreme = runOneCellStep(*M, 1e6, Params.data());
  EXPECT_TRUE(std::isfinite(WExtreme));
  EXPECT_NEAR(WExtreme, 0.01 * std::exp(100.0 / 30.0), 1e-4);
}

} // namespace
