//===- LayoutTests.cpp - state layout indexing tests ----------------------------===//

#include "codegen/KernelSpec.h"

#include <gtest/gtest.h>
#include <set>

using namespace limpet::codegen;

namespace {

TEST(StateLayout, Names) {
  EXPECT_EQ(stateLayoutName(StateLayout::AoS), "aos");
  EXPECT_EQ(stateLayoutName(StateLayout::SoA), "soa");
  EXPECT_EQ(stateLayoutName(StateLayout::AoSoA), "aosoa");
}

TEST(StateLayout, AoSIndexing) {
  // cell-major: struct of NumSv doubles per cell.
  EXPECT_EQ(stateIndex(StateLayout::AoS, 0, 0, 5, 100, 8), 0);
  EXPECT_EQ(stateIndex(StateLayout::AoS, 0, 4, 5, 100, 8), 4);
  EXPECT_EQ(stateIndex(StateLayout::AoS, 3, 2, 5, 100, 8), 17);
}

TEST(StateLayout, SoAIndexing) {
  EXPECT_EQ(stateIndex(StateLayout::SoA, 0, 0, 5, 100, 8), 0);
  EXPECT_EQ(stateIndex(StateLayout::SoA, 7, 2, 5, 100, 8), 207);
}

TEST(StateLayout, AoSoAIndexing) {
  // Block of 8 cells: sv-major within a block, lane-minor.
  EXPECT_EQ(stateIndex(StateLayout::AoSoA, 0, 0, 5, 100, 8), 0);
  EXPECT_EQ(stateIndex(StateLayout::AoSoA, 1, 0, 5, 100, 8), 1);
  EXPECT_EQ(stateIndex(StateLayout::AoSoA, 0, 1, 5, 100, 8), 8);
  EXPECT_EQ(stateIndex(StateLayout::AoSoA, 8, 0, 5, 100, 8), 40);
  EXPECT_EQ(stateIndex(StateLayout::AoSoA, 9, 3, 5, 100, 8), 40 + 24 + 1);
}

TEST(StateLayout, AoSoALanesContiguousPerSv) {
  // The vector engine requires the W lanes of one sv to be contiguous.
  for (int64_t Block = 0; Block != 3; ++Block)
    for (int64_t Sv = 0; Sv != 4; ++Sv) {
      int64_t Base =
          stateIndex(StateLayout::AoSoA, Block * 8, Sv, 4, 64, 8);
      for (int64_t Lane = 0; Lane != 8; ++Lane)
        EXPECT_EQ(stateIndex(StateLayout::AoSoA, Block * 8 + Lane, Sv, 4,
                             64, 8),
                  Base + Lane);
    }
}

TEST(StateLayout, BijectiveOverPopulation) {
  // Every (cell, sv) maps to a distinct slot for each layout.
  const int64_t Cells = 24, NumSv = 3, W = 8;
  for (StateLayout L :
       {StateLayout::AoS, StateLayout::SoA, StateLayout::AoSoA}) {
    std::set<int64_t> Seen;
    for (int64_t C = 0; C != Cells; ++C)
      for (int64_t S = 0; S != NumSv; ++S) {
        int64_t Idx = stateIndex(L, C, S, NumSv, Cells, W);
        EXPECT_GE(Idx, 0);
        EXPECT_TRUE(Seen.insert(Idx).second)
            << stateLayoutName(L) << " collision at cell " << C << " sv "
            << S;
      }
    EXPECT_EQ(Seen.size(), size_t(Cells * NumSv));
  }
}

TEST(KernelABI, ArgumentPositions) {
  KernelABI Abi;
  Abi.NumExternals = 2;
  Abi.NumParams = 3;
  Abi.NumStateVars = 4;
  EXPECT_EQ(Abi.stateArg(), 0u);
  EXPECT_EQ(Abi.externalArg(0), 1u);
  EXPECT_EQ(Abi.externalArg(1), 2u);
  EXPECT_EQ(Abi.paramsArg(), 3u);
  EXPECT_EQ(Abi.startArg(), 4u);
  EXPECT_EQ(Abi.endArg(), 5u);
  EXPECT_EQ(Abi.numCellsArg(), 6u);
  EXPECT_EQ(Abi.dtArg(), 7u);
  EXPECT_EQ(Abi.tArg(), 8u);
  EXPECT_EQ(Abi.numArgs(), 9u);
}

} // namespace
