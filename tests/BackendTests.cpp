//===- BackendTests.cpp - exec/Backend unit tests -------------------------===//

#include "easyml/Sema.h"
#include "exec/Backend.h"
#include "exec/CompiledModel.h"
#include "exec/Engine.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::codegen;
using namespace limpet::exec;

namespace {

constexpr const char TestModel[] = R"(
Vm; .external(); .nodal();
Iion; .external();
group{ g = 0.5; E = -80.0; }.param();
Vm_init = -80.0;
rate = exp(Vm/30.0)/(1.0+exp(Vm/15.0));
diff_w = rate*(1.0-w) - 0.3*w;
w_init = 0.25;
diff_c = 0.01*(1.0 - c) - 0.001*Vm;
c_init = 1.0;
Iion = g*(Vm - E)*w + c*0.1;
)";

easyml::ModelInfo testInfo() {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("test", TestModel, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return *Info;
}

TEST(Backend, RegistryCoversEverySupportedWidth) {
  for (unsigned W : SupportedWidths) {
    for (bool Fast : {false, true}) {
      const Backend *B = tryResolveBackend(W, Fast);
      ASSERT_NE(B, nullptr) << "width " << W;
      EXPECT_EQ(B->width(), W);
      EXPECT_EQ(B->fastMath(), Fast);
      EXPECT_EQ(B->vectorized(), W > 1);
      EXPECT_FALSE(std::string(B->name()).empty());
      EXPECT_EQ(B, tryResolveBackend(W, Fast)); // stable singletons
    }
  }
  EXPECT_EQ(tryResolveBackend(3, false), nullptr);
  EXPECT_EQ(tryResolveBackend(0, false), nullptr);
  // Width 16 has no specialized burn; it resolves exactly when the probed
  // host registered a runtime-width backend for it.
  EXPECT_EQ(tryResolveBackend(16, true) != nullptr,
            BackendRegistry::global().supportsWidth(16));
}

TEST(Backend, LayoutCapabilities) {
  // AoSoA interleaves lanes at the block width, which only a vector
  // engine can step.
  const Backend *Scalar = tryResolveBackend(1, false);
  const Backend *Vec = tryResolveBackend(4, true);
  ASSERT_NE(Scalar, nullptr);
  ASSERT_NE(Vec, nullptr);
  EXPECT_TRUE(Scalar->supportsLayout(StateLayout::AoS));
  EXPECT_TRUE(Scalar->supportsLayout(StateLayout::SoA));
  EXPECT_FALSE(Scalar->supportsLayout(StateLayout::AoSoA));
  EXPECT_TRUE(Vec->supportsLayout(StateLayout::AoSoA));
}

TEST(EngineConfigValidate, AcceptsFactoryConfigs) {
  EXPECT_TRUE(EngineConfig::baseline().validate());
  EXPECT_TRUE(EngineConfig::recovery().validate());
  for (unsigned W : {2u, 4u, 8u}) {
    EXPECT_TRUE(EngineConfig::limpetMLIR(W).validate());
    EXPECT_TRUE(EngineConfig::autoVecLike(W).validate());
  }
}

TEST(EngineConfigValidate, RejectsBadConfigsRecoverably) {
  EngineConfig Cfg = EngineConfig::baseline();
  Cfg.Width = 3;
  Status S = Cfg.validate();
  EXPECT_FALSE(S);
  EXPECT_NE(S.message().find("width"), std::string::npos);

  Cfg = EngineConfig::baseline();
  Cfg.Layout = StateLayout::AoSoA; // Width stays 1
  S = Cfg.validate();
  EXPECT_FALSE(S);
  EXPECT_NE(S.message().find("AoSoA"), std::string::npos);

  Cfg = EngineConfig::baseline();
  Cfg.CubicLut = true;
  Cfg.EnableLuts = false;
  EXPECT_FALSE(Cfg.validate());
}

TEST(EngineConfigValidate, CompileRejectsWhatValidateRejects) {
  easyml::ModelInfo Info = testInfo();
  EngineConfig Cfg = EngineConfig::baseline();
  Cfg.Layout = StateLayout::AoSoA;
  std::string Error;
  EXPECT_FALSE(CompiledModel::compile(Info, Cfg, &Error).has_value());
  EXPECT_EQ(Error, Cfg.validate().message());
}

TEST(Backend, CompiledModelResolvesItsBackendAtCompileTime) {
  easyml::ModelInfo Info = testInfo();
  auto M = CompiledModel::compile(Info, EngineConfig::limpetMLIR(4));
  ASSERT_TRUE(M.has_value());
  ASSERT_NE(M->backend(), nullptr);
  EXPECT_EQ(M->backend(), tryResolveBackend(4, true));
}

/// One kernel invocation over [Start, End) against a fresh population.
std::vector<double> stepOnce(const CompiledModel &M, int64_t Cells,
                             std::vector<std::pair<int64_t, int64_t>> Chunks,
                             bool ViaShim) {
  std::vector<double> State(M.stateArraySize(Cells));
  M.initializeState(State.data(), Cells);
  std::vector<double> Vm(Cells), Iion(Cells, 0.0);
  for (int64_t C = 0; C != Cells; ++C)
    Vm[C] = -90.0 + double(C % 37) * 4.0;
  std::vector<double> Params = M.defaultParams();
  runtime::LutTableSet Luts = M.buildLuts(Params.data());

  for (auto [Start, End] : Chunks) {
    KernelArgs Args;
    Args.State = State.data();
    Args.Exts = {Vm.data(), Iion.data()};
    Args.Params = Params.data();
    Args.Start = Start;
    Args.End = End;
    Args.NumCells = Cells;
    Args.Dt = 0.02;
    Args.T = 0.0;
    Args.Luts = &Luts;
    if (ViaShim)
      EXPECT_TRUE(runKernel(M.program(), Args, M.config().Width,
                            M.config().FastMath));
    else
      M.computeStep(Args);
  }

  std::vector<double> Out;
  for (int64_t C = 0; C != Cells; ++C) {
    Out.push_back(M.readState(State.data(), C, 0, Cells));
    Out.push_back(M.readState(State.data(), C, 1, Cells));
    Out.push_back(Iion[C]);
  }
  return Out;
}

struct DispatchCase {
  unsigned Width;
  StateLayout Layout;
};

class BackendDispatch : public ::testing::TestWithParam<DispatchCase> {};

/// The unified dispatch (whole range, vector main + scalar tail) must be
/// bit-identical to stepping the aligned main and the ragged tail as
/// separate chunks — i.e. the epilogue split changes nothing.
TEST_P(BackendDispatch, RaggedRangeEqualsSplitChunks) {
  auto [Width, Layout] = GetParam();
  easyml::ModelInfo Info = testInfo();
  EngineConfig Cfg = EngineConfig::limpetMLIR(Width);
  Cfg.Layout = Layout;
  auto M = CompiledModel::compile(Info, Cfg);
  ASSERT_TRUE(M.has_value());

  const int64_t Cells = 37; // 37 % W != 0 for every vector width
  int64_t Main = Cells / Width * Width;
  std::vector<double> Whole = stepOnce(*M, Cells, {{0, Cells}}, false);
  std::vector<double> Split =
      stepOnce(*M, Cells, {{0, Main}, {Main, Cells}}, false);
  ASSERT_EQ(Whole.size(), Split.size());
  for (size_t I = 0; I != Whole.size(); ++I)
    EXPECT_EQ(Whole[I], Split[I]) << "element " << I;
}

/// runKernel is a thin shim over the same backend the model resolved at
/// compile time; both entry points must agree bit-for-bit.
TEST_P(BackendDispatch, RunKernelShimMatchesCompiledModelStep) {
  auto [Width, Layout] = GetParam();
  easyml::ModelInfo Info = testInfo();
  EngineConfig Cfg = EngineConfig::limpetMLIR(Width);
  Cfg.Layout = Layout;
  auto M = CompiledModel::compile(Info, Cfg);
  ASSERT_TRUE(M.has_value());

  std::vector<double> Direct = stepOnce(*M, 37, {{0, 37}}, false);
  std::vector<double> Shim = stepOnce(*M, 37, {{0, 37}}, true);
  ASSERT_EQ(Direct.size(), Shim.size());
  for (size_t I = 0; I != Direct.size(); ++I)
    EXPECT_EQ(Direct[I], Shim[I]) << "element " << I;
}

INSTANTIATE_TEST_SUITE_P(
    WidthsAndLayouts, BackendDispatch,
    ::testing::Values(DispatchCase{2, StateLayout::AoS},
                      DispatchCase{2, StateLayout::SoA},
                      DispatchCase{2, StateLayout::AoSoA},
                      DispatchCase{4, StateLayout::AoS},
                      DispatchCase{4, StateLayout::SoA},
                      DispatchCase{4, StateLayout::AoSoA},
                      DispatchCase{8, StateLayout::AoS},
                      DispatchCase{8, StateLayout::SoA},
                      DispatchCase{8, StateLayout::AoSoA}));

} // namespace
