//===- KernelGoldenTests.cpp - end-to-end IR golden tests -----------------------===//
//
// Locks down the exact optimized IR the pipeline produces for a small
// reference model, in both scalar and vectorized forms. Any change to
// codegen, the pass pipeline or the vectorizer that alters the emitted
// kernel shows up here first.
//
//===----------------------------------------------------------------------===//

#include "codegen/Vectorize.h"
#include "easyml/Sema.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace limpet;
using namespace limpet::codegen;

namespace {

// dw/dt = a*(Vm - E) - b*w with Iion = g*(Vm - E): minimal but covers
// params, state, externals and constant folding (2.0*0.05 folds to 0.1).
constexpr const char RefModel[] = R"(
Vm; .external();
Iion; .external();
group{ g = 0.5; E = -80.0; }.param();
Vm_init = -80.0;
diff_w = (2.0*0.05)*(Vm - E) - 0.2*w;
w_init = 0.0;
Iion = g*(Vm - E);
)";

GeneratedKernel makeRef(StateLayout Layout, unsigned W) {
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo("ref", RefModel, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  CodeGenOptions Options;
  Options.Layout = Layout;
  Options.AoSoABlockWidth = W;
  return generateKernel(*Info, Options);
}

TEST(KernelGolden, ScalarKernelAoS) {
  GeneratedKernel K = makeRef(StateLayout::AoS, 8);
  EXPECT_EQ(ir::printOp(K.ScalarFunc),
            R"(func.func @compute(%arg0: memref<?xf64>, %arg1: memref<?xf64>, %arg2: memref<?xf64>, %arg3: memref<?xf64>, %arg4: i64, %arg5: i64, %arg6: i64, %arg7: f64, %arg8: f64) {
  %0 = arith.constant_int {value = 1} : i64
  %1 = arith.constant_int {value = 0} : i64
  %2 = memref.load %arg3, %1 {limpet.role = "param", limpet.index = 0} : f64
  %3 = memref.load %arg3, %0 {limpet.role = "param", limpet.index = 1} : f64
  %4 = arith.constant {value = 0.1} : f64
  %5 = arith.constant {value = 0.2} : f64
  scf.for %arg9 = %arg4 to %arg5 step %0 {
    %6 = memref.load %arg1, %arg9 {limpet.role = "ext", limpet.index = 0} : f64
    %7 = arith.subf %6, %3 : f64
    %8 = arith.mulf %2, %7 : f64
    %9 = memref.load %arg0, %arg9 {limpet.role = "state", limpet.index = 0} : f64
    %10 = arith.mulf %4, %7 : f64
    %11 = arith.mulf %5, %9 : f64
    %12 = arith.subf %10, %11 : f64
    %13 = arith.mulf %arg7, %12 : f64
    %14 = arith.addf %9, %13 : f64
    memref.store %14, %arg0, %arg9 {limpet.role = "state", limpet.index = 0}
    memref.store %8, %arg2, %arg9 {limpet.role = "ext", limpet.index = 1}
    scf.yield
  }
  func.return
}
)");
}

TEST(KernelGolden, VectorKernelAoSoA) {
  GeneratedKernel K = makeRef(StateLayout::AoSoA, 4);
  ir::Operation *Vec = vectorizeKernel(K, 4);
  EXPECT_EQ(ir::printOp(Vec),
            R"(func.func @compute_vec4(%arg0: memref<?xf64>, %arg1: memref<?xf64>, %arg2: memref<?xf64>, %arg3: memref<?xf64>, %arg4: i64, %arg5: i64, %arg6: i64, %arg7: f64, %arg8: f64) {
  %0 = arith.constant_int {value = 1} : i64
  %1 = arith.constant_int {value = 0} : i64
  %2 = memref.load %arg3, %1 {limpet.role = "param", limpet.index = 0} : f64
  %3 = memref.load %arg3, %0 {limpet.role = "param", limpet.index = 1} : f64
  %4 = arith.constant_int {value = 4} : i64
  %5 = arith.constant {value = 0.1} : f64
  %6 = arith.constant {value = 0.2} : f64
  %7 = vector.broadcast %3 : vector<4xf64>
  %8 = vector.broadcast %2 : vector<4xf64>
  %9 = vector.broadcast %5 : vector<4xf64>
  %10 = vector.broadcast %6 : vector<4xf64>
  %11 = vector.broadcast %arg7 : vector<4xf64>
  scf.for %arg9 = %arg4 to %arg5 step %4 {
    %12 = vector.load %arg1, %arg9 {limpet.role = "ext", limpet.index = 0} : vector<4xf64>
    %13 = arith.subf %12, %7 : vector<4xf64>
    %14 = arith.mulf %8, %13 : vector<4xf64>
    %15 = vector.load %arg0, %arg9 {limpet.role = "state", limpet.index = 0} : vector<4xf64>
    %16 = arith.mulf %9, %13 : vector<4xf64>
    %17 = arith.mulf %10, %15 : vector<4xf64>
    %18 = arith.subf %16, %17 : vector<4xf64>
    %19 = arith.mulf %11, %18 : vector<4xf64>
    %20 = arith.addf %15, %19 : vector<4xf64>
    vector.store %20, %arg0, %arg9 {limpet.role = "state", limpet.index = 0}
    vector.store %14, %arg2, %arg9 {limpet.role = "ext", limpet.index = 1}
    scf.yield
  }
  func.return
}
)");
}

TEST(KernelGolden, ConstantFoldingHappened) {
  // 2.0*0.05 must have been folded by the preprocessor / constant-fold
  // pass: no multiplication by 2 or 0.05 survives.
  GeneratedKernel K = makeRef(StateLayout::AoS, 8);
  std::string IR = ir::printOp(K.ScalarFunc);
  EXPECT_EQ(IR.find("value = 2}"), std::string::npos);
  EXPECT_EQ(IR.find("0.05"), std::string::npos);
  EXPECT_NE(IR.find("value = 0.1}"), std::string::npos);
}

} // namespace
