//===- SimulatorTests.cpp - sim/Simulator unit tests ----------------------------===//

#include "easyml/Sema.h"
#include "models/Registry.h"
#include "sim/Simulator.h"

#include <cmath>
#include <gtest/gtest.h>
#include <limits>

using namespace limpet;
using namespace limpet::exec;
using namespace limpet::sim;

namespace {

std::optional<CompiledModel> compileByName(const char *Name,
                                           EngineConfig Cfg) {
  const models::ModelEntry *M = models::findModel(Name);
  EXPECT_NE(M, nullptr);
  DiagnosticEngine Diags;
  auto Info = easyml::compileModelInfo(M->Name, M->Source, Diags);
  EXPECT_TRUE(Info.has_value()) << Diags.str();
  return CompiledModel::compile(*Info, Cfg);
}

TEST(Simulator, AdvancesTimeAndSteps) {
  auto M = compileByName("Plonsey", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 10;
  Opts.NumSteps = 5;
  Opts.Dt = 0.02;
  Simulator S(*M, Opts);
  EXPECT_EQ(S.stepsDone(), 0);
  S.run();
  EXPECT_EQ(S.stepsDone(), 5);
  EXPECT_NEAR(S.time(), 0.1, 1e-12);
}

TEST(Simulator, StateInitializedFromModelInits) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 4;
  Simulator S(*M, Opts);
  // m/h/n inits.
  EXPECT_NEAR(S.stateOf(0, 0), 0.0529, 1e-12);
  EXPECT_NEAR(S.stateOf(3, 1), 0.5961, 1e-12);
  EXPECT_NEAR(S.vm(2), -65.0, 1e-12);
}

TEST(Simulator, StimulusDepolarizes) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 4;
  Opts.NumSteps = 400; // 4 ms
  Opts.StimStart = 1.0;
  Opts.StimDuration = 1.0;
  Opts.StimStrength = 40.0;
  Opts.RecordTrace = true;
  Simulator S(*M, Opts);
  S.run();
  double Peak = -1e9;
  for (double V : S.trace())
    Peak = std::max(Peak, V);
  EXPECT_GT(Peak, 0.0); // the AP overshoots 0 mV
  EXPECT_LT(Peak, 60.0);
}

TEST(Simulator, NoStimulusStaysNearRest) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 4;
  Opts.NumSteps = 500;
  Opts.StimStrength = 0.0;
  Simulator S(*M, Opts);
  S.run();
  EXPECT_NEAR(S.vm(0), -65.0, 3.0);
}

TEST(Simulator, PeriodicStimulusRepeats) {
  // Hodgkin-Huxley repolarizes within ~15 ms, so a 20 ms pacing period
  // over 40 ms must elicit two action potentials.
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 2;
  Opts.NumSteps = 4000; // 40 ms
  Opts.StimPeriod = 20.0;
  Opts.StimStrength = 40.0;
  Opts.StimDuration = 1.0;
  Opts.RecordTrace = true;
  Simulator S(*M, Opts);
  S.run();
  int Upstrokes = 0;
  bool Above = false;
  for (double V : S.trace()) {
    if (!Above && V > -20.0) {
      ++Upstrokes;
      Above = true;
    }
    if (V < -55.0)
      Above = false;
  }
  EXPECT_GE(Upstrokes, 2);
}

TEST(Simulator, SetParamAffectsDynamics) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 2;
  Opts.NumSteps = 300;
  Simulator S1(*M, Opts), S2(*M, Opts);
  S2.setParam("gNa", 0.0); // block sodium: no AP
  EXPECT_DOUBLE_EQ(S2.param("gNa"), 0.0);
  S1.run();
  S2.run();
  EXPECT_NE(S1.stateChecksum(), S2.stateChecksum());
  EXPECT_LT(S2.vm(0), -20.0); // blocked cell never overshoots
}

TEST(Simulator, TraceRecordsEveryStep) {
  auto M = compileByName("Plonsey", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 3;
  Opts.NumSteps = 17;
  Opts.RecordTrace = true;
  Opts.TraceCell = 2;
  Simulator S(*M, Opts);
  S.run();
  EXPECT_EQ(S.trace().size(), 17u);
}

TEST(Simulator, AllCellsEvolveIdenticallyWithUniformState) {
  auto M = compileByName("FentonKarma", EngineConfig::limpetMLIR(4));
  SimOptions Opts;
  Opts.NumCells = 13;
  Opts.NumSteps = 100;
  Simulator S(*M, Opts);
  S.run();
  for (int64_t C = 1; C != Opts.NumCells; ++C) {
    EXPECT_DOUBLE_EQ(S.vm(C), S.vm(0)) << C;
    EXPECT_DOUBLE_EQ(S.stateOf(C, 0), S.stateOf(0, 0)) << C;
  }
}

TEST(Simulator, SetParamUnknownNameIsRecoverable) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 2;
  Simulator S(*M, Opts);
  double Before = S.stateChecksum();
  Status St = S.setParam("no_such_param", 1.0);
  EXPECT_FALSE(St.isOk());
  EXPECT_NE(St.message().find("no_such_param"), std::string::npos);
  EXPECT_NE(St.message().find("HodgkinHuxley"), std::string::npos);
  // The failed set must leave the simulation untouched.
  EXPECT_DOUBLE_EQ(S.stateChecksum(), Before);
  EXPECT_TRUE(S.setParam("gNa", 100.0).isOk());
}

TEST(Simulator, SetParamNonFiniteValueIsRecoverable) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 2;
  Simulator S(*M, Opts);
  double Prev = S.param("gNa");
  EXPECT_FALSE(S.setParam("gNa", std::nan("")).isOk());
  EXPECT_FALSE(
      S.setParam("gNa", std::numeric_limits<double>::infinity()).isOk());
  EXPECT_DOUBLE_EQ(S.param("gNa"), Prev);
}

TEST(Simulator, ParamAccessorsReportUnknownNames) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 2;
  Simulator S(*M, Opts);
  EXPECT_TRUE(std::isnan(S.param("bogus")));
  Expected<double> P = S.tryParam("bogus");
  EXPECT_FALSE(P.hasValue());
  EXPECT_NE(P.status().message().find("bogus"), std::string::npos);
  Expected<double> G = S.tryParam("gK");
  ASSERT_TRUE(G.hasValue());
  EXPECT_GT(*G, 0.0);
}

TEST(Simulator, VmOutOfRangeCellIsRecoverable) {
  auto M = compileByName("HodgkinHuxley", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 4;
  Simulator S(*M, Opts);
  EXPECT_TRUE(std::isnan(S.vm(-1)));
  EXPECT_TRUE(std::isnan(S.vm(4)));
  EXPECT_TRUE(std::isnan(S.stateOf(0, 999)));
  EXPECT_TRUE(std::isnan(S.externalOf(99, 0)));
  Expected<double> V = S.tryVm(17);
  EXPECT_FALSE(V.hasValue());
  EXPECT_NE(V.status().message().find("out of range"), std::string::npos);
  ASSERT_TRUE(S.tryVm(3).hasValue());
  EXPECT_NEAR(*S.tryVm(3), -65.0, 1e-12);
}

TEST(Simulator, PathologicalOptionsAreSanitized) {
  auto M = compileByName("Plonsey", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 0;
  Opts.NumSteps = -5;
  Opts.Dt = std::nan("");
  Opts.TraceCell = 77;
  Simulator S(*M, Opts);
  EXPECT_EQ(S.options().NumCells, 1);
  EXPECT_EQ(S.options().NumSteps, 0);
  EXPECT_GT(S.options().Dt, 0.0);
  EXPECT_EQ(S.options().TraceCell, 0);
  S.run(); // zero steps, must not crash
  EXPECT_EQ(S.stepsDone(), 0);
}

TEST(Simulator, HasVoltageCouplingForSuiteModels) {
  auto M = compileByName("Pathmanathan", EngineConfig::baseline());
  SimOptions Opts;
  Opts.NumCells = 2;
  Simulator S(*M, Opts);
  EXPECT_TRUE(S.hasVoltageCoupling());
}

} // namespace
